// Command wire-bench measures the HTTP front end (internal/wire) with the
// closed-loop load harness (internal/loadgen): a seeded client population
// drives an admission-controlled ReplicaSet through warmup/inject/recover
// phases over real HTTP on a loopback listener, and an SCBR
// subscribe/publish/poll workload runs through the same server. A second,
// freshly built stack replays the identical workload; every deterministic
// counter must match bit-for-bit (runs_equal), because the counters are
// pure functions of the seed — HTTP moves the bytes but decides nothing.
//
// The JSON splits cleanly: "deterministic" (sent/served/shed, bytes,
// payload-size histogram buckets, sim-cycle totals, SCBR delivery counts)
// is gated by cmd/bench-check against the committed baseline; "wallclock"
// (latency quantiles, throughput) measures the host and is informational.
//
// With -pprof the serving process exposes /debug/pprof on the same
// listener for profiling a longer -ticks run.
//
// Usage:
//
//	wire-bench [-json] [-ticks N] [-pprof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/loadgen"
	"securecloud/internal/microsvc"
	"securecloud/internal/scbr"
	"securecloud/internal/stats"
	"securecloud/internal/wire"
)

const serviceName = "plane/wire-bench"

// authToken gates the bench server's /scbr/* and /plane/* surface so the
// measured path is the secured one (bearer check on every request).
const authToken = "wire-bench-token"

// planeDriver adapts the HTTP plane clients to the loadgen Driver.
type planeDriver struct {
	rs      *microsvc.ReplicaSet
	clients []*microsvc.PlaneClient
}

func (d *planeDriver) Send(client int, tenant string, reqs []loadgen.Request) ([]uint64, error) {
	pr := make([]microsvc.PlaneRequest, len(reqs))
	for i, r := range reqs {
		pr[i] = microsvc.PlaneRequest{Key: r.Key, Body: r.Body}
	}
	return d.clients[client].SendTenantIDs(tenant, pr)
}

func (d *planeDriver) Poll(client int) ([]loadgen.Reply, error) {
	reps, err := d.clients[client].Poll(0)
	if err != nil {
		return nil, err
	}
	out := make([]loadgen.Reply, len(reps))
	for i, r := range reps {
		out[i] = loadgen.Reply{ID: r.ID, Shed: r.Shed}
	}
	return out, nil
}

func (d *planeDriver) Step() error {
	_, err := d.rs.Step()
	return err
}

// stack is one fully built serving stack: attested plane + broker behind
// one wire server on a loopback listener.
type stack struct {
	bus    *eventbus.Bus
	rs     *microsvc.ReplicaSet
	gw     *wire.PlaneGateway
	broker *scbr.Broker
	keys   attest.ServiceKeys
	svc    *attest.Service
	policy attest.Policy
	srv    *http.Server
	url    string
}

func buildStack(inject int, pprofOn bool) (*stack, error) {
	bus := eventbus.New()
	svc := attest.NewService()
	kb := attest.NewKeyBroker(svc)
	var root cryptbox.Key
	root[0] = 0x9E
	keys, err := microsvc.NewServiceKeys(root, serviceName, "wire/req", "wire/resp")
	if err != nil {
		return nil, err
	}
	kb.Register(serviceName, attest.Policy{AllowedMRSigner: []cryptbox.Digest{microsvc.ReplicaSigner(serviceName)}}, keys)
	rs, err := microsvc.NewReplicaSet(bus, svc, kb, serviceName,
		func(req []byte) ([]byte, error) { return append([]byte("ok:"), req...), nil },
		microsvc.ReplicaSetConfig{
			Replicas: 2, InTopic: "wire/req", OutTopic: "wire/resp",
			Admission: &microsvc.AdmissionConfig{
				// Rate 2/tick with a 4-deep queue per tenant: the warmup
				// and recover phases (1 req/tick) sail through, the inject
				// phase (4 req/tick) saturates the bucket and sheds — the
				// deterministic overload the histogram should show.
				Default:         microsvc.TenantPolicy{Weight: 1, Rate: 2, Burst: 2, MaxQueue: 4},
				DispatchPerStep: inject,
			},
		})
	if err != nil {
		return nil, err
	}
	gw, err := wire.NewPlaneGateway(bus, serviceName, keys, "wire/req", "wire/resp")
	if err != nil {
		rs.Stop()
		return nil, err
	}

	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	signer[0] = 0x5C
	e, err := p.ECreate(64<<20, signer)
	if err != nil {
		rs.Stop()
		return nil, err
	}
	if _, err := e.EAdd([]byte("scbr-broker-v1")); err != nil {
		rs.Stop()
		return nil, err
	}
	if err := e.EInit(); err != nil {
		rs.Stop()
		return nil, err
	}
	broker, err := scbr.NewBroker(e, scbr.DefaultBrokerConfig())
	if err != nil {
		rs.Stop()
		return nil, err
	}
	quoter, err := svc.Provision(p, "wire-bench-platform")
	if err != nil {
		rs.Stop()
		return nil, err
	}

	ws := wire.NewServer(wire.Config{
		Broker: broker, Quoter: quoter, AuthToken: authToken,
		Sources: []stats.Source{rs}, Pprof: pprofOn,
	})
	ws.RegisterPlane(serviceName, gw)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rs.Stop()
		return nil, err
	}
	srv := &http.Server{Handler: ws.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &stack{
		bus: bus, rs: rs, gw: gw, broker: broker, keys: keys, svc: svc,
		policy: attest.Policy{AllowedMRSigner: []cryptbox.Digest{signer}},
		srv:    srv, url: "http://" + ln.Addr().String(),
	}, nil
}

func (s *stack) close() {
	_ = s.srv.Close()
	s.gw.Close()
	s.rs.Stop()
}

// runOnce builds a fresh stack, replays the whole workload over HTTP, and
// returns the deterministic counter map plus the informational wall-clock
// figures. A nonzero rps switches the generator open-loop: requests arrive
// at the target aggregate rate (inject at 4×) on the generator's clock
// instead of one batch per closed-loop round trip.
func runOnce(ticks int, rps float64, pprofOn bool) (map[string]float64, map[string]float64, error) {
	s, err := buildStack(64, pprofOn)
	if err != nil {
		return nil, nil, err
	}
	defer s.close()

	const clients = 4
	spec := loadgen.Spec{
		Clients:    clients,
		Seed:       1109,
		Keys:       32,
		Tenants:    []string{"t0", "t1", "t2", "t3"},
		PayloadMin: 48,
		PayloadMax: 768,
		Phases: []loadgen.Phase{
			{Name: "warmup", Ticks: ticks, PerClient: 1},
			{Name: "inject", Ticks: 2 * ticks, PerClient: 4},
			{Name: "recover", Ticks: ticks, PerClient: 1},
		},
		DrainTicks: 3 * ticks,
	}
	if rps > 0 {
		spec.OpenLoop = &loadgen.OpenLoopSpec{TargetRPS: rps}
	}
	drv := &planeDriver{rs: s.rs}
	for c := 0; c < clients; c++ {
		tr := wire.NewPlaneTransport(s.url, serviceName, http.DefaultClient).WithAuth(authToken)
		pc, err := microsvc.NewPlaneClientTransport(serviceName, s.keys.Request, tr)
		if err != nil {
			return nil, nil, err
		}
		defer pc.Close()
		drv.clients = append(drv.clients, pc)
	}
	res, err := loadgen.Run(spec, drv)
	if err != nil {
		return nil, nil, err
	}

	// SCBR over the same server: six subscribers on adjacent price bands,
	// one publisher sweeping the range — every delivery count is a pure
	// function of the band layout. Every dial attests the broker enclave
	// against the bench's signer policy before handing over its filters,
	// so the measured path includes the wire attestation round trip.
	dialOpts := wire.SCBRDialOpts{Auth: authToken, Service: s.svc, Policy: s.policy}
	sub := make([]*wire.SCBRClient, 6)
	var delivered, polled int
	for i := range sub {
		sc, err := wire.DialSCBROpts(s.url, fmt.Sprintf("sub-%d", i), http.DefaultClient, dialOpts)
		if err != nil {
			return nil, nil, err
		}
		if _, err := sc.Subscribe(scbr.Subscription{Preds: []scbr.Predicate{
			{Attr: "price", Interval: scbr.Interval{Lo: float64(i * 10), Hi: float64(i*10 + 14)}},
		}}); err != nil {
			return nil, nil, err
		}
		sub[i] = sc
	}
	pubc, err := wire.DialSCBROpts(s.url, "pub-0", http.DefaultClient, dialOpts)
	if err != nil {
		return nil, nil, err
	}
	for v := 0; v < 60; v += 3 {
		n, err := pubc.Publish(scbr.Event{Attrs: map[string]float64{"price": float64(v)}, Payload: []byte{byte(v)}})
		if err != nil {
			return nil, nil, err
		}
		delivered += n
	}
	for _, sc := range sub {
		evs, err := sc.Poll()
		if err != nil {
			return nil, nil, err
		}
		polled += len(evs)
	}

	det := map[string]float64{
		"plane_sent":       float64(res.Sent),
		"plane_served":     float64(res.Served),
		"plane_shed":       float64(res.Shed),
		"plane_lost":       float64(res.Lost),
		"bytes_sent":       float64(res.BytesSent),
		"phase_warmup":     float64(res.PhaseSent["warmup"]),
		"phase_inject":     float64(res.PhaseSent["inject"]),
		"phase_recover":    float64(res.PhaseSent["recover"]),
		"scbr_delivered":   float64(delivered),
		"scbr_polled":      float64(polled),
		"scbr_subscribers": float64(len(sub)),
	}
	for i, c := range res.Sizes.BucketCounts() {
		det[fmt.Sprintf("sizehist_b%02d", i)] = float64(c)
	}
	for k, v := range s.rs.Snapshot() {
		det["sim_"+k] = v
	}
	for k, v := range s.gw.Snapshot() {
		det["gw_"+k] = v
	}

	lat := res.Latency
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	wall := map[string]float64{
		"p50_us":     us(lat.Quantile(0.50)),
		"p95_us":     us(lat.Quantile(0.95)),
		"p99_us":     us(lat.Quantile(0.99)),
		"max_us":     us(lat.Max()),
		"mean_us":    lat.Mean() / 1e3,
		"elapsed_ms": float64(res.Elapsed.Milliseconds()),
		"rps":        float64(res.Sent) / res.Elapsed.Seconds(),
	}
	return det, wall, nil
}

// timingQuantiles summarizes one latency histogram for the timing report.
func timingQuantiles(h *loadgen.Histogram) map[string]float64 {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return map[string]float64{
		"p50_us":  us(h.Quantile(0.50)),
		"p95_us":  us(h.Quantile(0.95)),
		"max_us":  us(h.Max()),
		"mean_us": h.Mean() / 1e3,
	}
}

// runTiming measures per-request round-trip latency through two paths to
// the same plane — the HTTP PlaneTransport on a loopback listener vs an
// in-process PlaneClient on the event bus — across payload sizes, one
// request per step so queueing never blurs the transport cost. Everything
// it reports is wall-clock: informational only, never gated.
func runTiming(requests int, sizes []int) (map[string]map[string]map[string]float64, error) {
	s, err := buildStack(64, false)
	if err != nil {
		return nil, err
	}
	defer s.close()

	httpTr := wire.NewPlaneTransport(s.url, serviceName, http.DefaultClient).WithAuth(authToken)
	httpClient, err := microsvc.NewPlaneClientTransport(serviceName, s.keys.Request, httpTr)
	if err != nil {
		return nil, err
	}
	defer httpClient.Close()
	busClient, err := microsvc.NewPlaneClient(s.bus, serviceName, s.keys, "wire/req", "wire/resp")
	if err != nil {
		return nil, err
	}
	defer busClient.Close()

	out := map[string]map[string]map[string]float64{
		"http":   make(map[string]map[string]float64),
		"inproc": make(map[string]map[string]float64),
	}
	measure := func(c *microsvc.PlaneClient, size int) (*loadgen.Histogram, error) {
		h := loadgen.NewHistogram(loadgen.LatencyBounds())
		body := make([]byte, size)
		for i := range body {
			body[i] = byte(i)
		}
		for r := 0; r < requests; r++ {
			t0 := time.Now()
			// Tenant rotation keeps the admission bucket (rate 2/tick) from
			// ever shedding the serial probe stream.
			tenant := fmt.Sprintf("t%d", r%4)
			if _, err := c.SendTenantIDs(tenant, []microsvc.PlaneRequest{{Key: "k0000", Body: body}}); err != nil {
				return nil, err
			}
			var got int
			for step := 0; got == 0 && step < 64; step++ {
				if _, err := s.rs.Step(); err != nil {
					return nil, err
				}
				reps, err := c.Poll(0)
				if err != nil {
					return nil, err
				}
				got = len(reps)
			}
			if got == 0 {
				return nil, fmt.Errorf("timing: no reply after 64 steps (size %d)", size)
			}
			h.Observe(time.Since(t0).Nanoseconds())
		}
		return h, nil
	}
	for _, size := range sizes {
		key := fmt.Sprintf("payload_%d", size)
		hh, err := measure(httpClient, size)
		if err != nil {
			return nil, fmt.Errorf("http %s: %w", key, err)
		}
		out["http"][key] = timingQuantiles(hh)
		hb, err := measure(busClient, size)
		if err != nil {
			return nil, fmt.Errorf("inproc %s: %w", key, err)
		}
		out["inproc"][key] = timingQuantiles(hb)
	}
	return out, nil
}

func main() {
	jsonOut := flag.Bool("json", false, "emit JSON")
	ticks := flag.Int("ticks", 8, "warmup phase ticks (inject is 2x, drain 3x)")
	rps := flag.Float64("rps", 0, "open-loop target RPS (0 = closed-loop, the gated default)")
	timing := flag.Bool("timing", false, "measure HTTP-vs-in-process per-request latency instead of the load run")
	timingReqs := flag.Int("timing-requests", 200, "requests per transport per payload size in -timing mode")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof on the bench server")
	flag.Parse()

	if *timing {
		start := time.Now()
		sizes := []int{64, 512, 4096}
		res, err := runTiming(*timingReqs, sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wire-bench:", err)
			os.Exit(1)
		}
		if *jsonOut {
			out := struct {
				Mode        string                                   `json:"mode"`
				Requests    int                                      `json:"requests"`
				Sizes       []int                                    `json:"payload_sizes"`
				Transports  map[string]map[string]map[string]float64 `json:"transports"`
				TotalWallMS int64                                    `json:"total_wall_ms"`
			}{"timing", *timingReqs, sizes, res, time.Since(start).Milliseconds()}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				fmt.Fprintln(os.Stderr, "wire-bench:", err)
				os.Exit(1)
			}
			return
		}
		for _, tr := range []string{"http", "inproc"} {
			for _, size := range sizes {
				q := res[tr][fmt.Sprintf("payload_%d", size)]
				fmt.Printf("%-7s payload=%-5d p50=%.0fus p95=%.0fus mean=%.0fus max=%.0fus\n",
					tr, size, q["p50_us"], q["p95_us"], q["mean_us"], q["max_us"])
			}
		}
		return
	}

	start := time.Now()
	det1, wall, err := runOnce(*ticks, *rps, *pprofOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-bench:", err)
		os.Exit(1)
	}
	det2, _, err := runOnce(*ticks, *rps, *pprofOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-bench:", err)
		os.Exit(1)
	}
	runsEqual := len(det1) == len(det2)
	if runsEqual {
		for k, v := range det1 {
			if det2[k] != v {
				fmt.Fprintf(os.Stderr, "wire-bench: %s differs across runs: %v vs %v\n", k, v, det2[k])
				runsEqual = false
			}
		}
	}

	out := struct {
		Ticks         int                `json:"ticks"`
		Deterministic map[string]float64 `json:"deterministic"`
		RunsEqual     bool               `json:"runs_equal"`
		Wallclock     map[string]float64 `json:"wallclock"`
		TotalWallMS   int64              `json:"total_wall_ms"`
	}{*ticks, det1, runsEqual, wall, time.Since(start).Milliseconds()}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "wire-bench:", err)
			os.Exit(1)
		}
		if !runsEqual {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("wire-bench: %d ticks, runs_equal=%v\n", *ticks, runsEqual)
	keys := make([]string, 0, len(det1))
	for k := range det1 {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %g\n", k, det1[k])
	}
	fmt.Printf("  wallclock: p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus rps=%.0f\n",
		wall["p50_us"], wall["p95_us"], wall["p99_us"], wall["max_us"], wall["rps"])
	if !runsEqual {
		os.Exit(1)
	}
}
