// Command wire-bench measures the HTTP front end (internal/wire) with the
// closed-loop load harness (internal/loadgen): a seeded client population
// drives an admission-controlled ReplicaSet through warmup/inject/recover
// phases over real HTTP on a loopback listener, and an SCBR
// subscribe/publish/poll workload runs through the same server. A second,
// freshly built stack replays the identical workload; every deterministic
// counter must match bit-for-bit (runs_equal), because the counters are
// pure functions of the seed — HTTP moves the bytes but decides nothing.
//
// The JSON splits cleanly: "deterministic" (sent/served/shed, bytes,
// payload-size histogram buckets, sim-cycle totals, SCBR delivery counts)
// is gated by cmd/bench-check against the committed baseline; "wallclock"
// (latency quantiles, throughput) measures the host and is informational.
//
// With -pprof the serving process exposes /debug/pprof on the same
// listener for profiling a longer -ticks run.
//
// Usage:
//
//	wire-bench [-json] [-ticks N] [-pprof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/loadgen"
	"securecloud/internal/microsvc"
	"securecloud/internal/scbr"
	"securecloud/internal/stats"
	"securecloud/internal/wire"
)

const serviceName = "plane/wire-bench"

// authToken gates the bench server's /scbr/* and /plane/* surface so the
// measured path is the secured one (bearer check on every request).
const authToken = "wire-bench-token"

// planeDriver adapts the HTTP plane clients to the loadgen Driver.
type planeDriver struct {
	rs      *microsvc.ReplicaSet
	clients []*microsvc.PlaneClient
}

func (d *planeDriver) Send(client int, tenant string, reqs []loadgen.Request) ([]uint64, error) {
	pr := make([]microsvc.PlaneRequest, len(reqs))
	for i, r := range reqs {
		pr[i] = microsvc.PlaneRequest{Key: r.Key, Body: r.Body}
	}
	return d.clients[client].SendTenantIDs(tenant, pr)
}

func (d *planeDriver) Poll(client int) ([]loadgen.Reply, error) {
	reps, err := d.clients[client].Poll(0)
	if err != nil {
		return nil, err
	}
	out := make([]loadgen.Reply, len(reps))
	for i, r := range reps {
		out[i] = loadgen.Reply{ID: r.ID, Shed: r.Shed}
	}
	return out, nil
}

func (d *planeDriver) Step() error {
	_, err := d.rs.Step()
	return err
}

// stack is one fully built serving stack: attested plane + broker behind
// one wire server on a loopback listener.
type stack struct {
	rs     *microsvc.ReplicaSet
	gw     *wire.PlaneGateway
	broker *scbr.Broker
	keys   attest.ServiceKeys
	svc    *attest.Service
	policy attest.Policy
	srv    *http.Server
	url    string
}

func buildStack(inject int, pprofOn bool) (*stack, error) {
	bus := eventbus.New()
	svc := attest.NewService()
	kb := attest.NewKeyBroker(svc)
	var root cryptbox.Key
	root[0] = 0x9E
	keys, err := microsvc.NewServiceKeys(root, serviceName, "wire/req", "wire/resp")
	if err != nil {
		return nil, err
	}
	kb.Register(serviceName, attest.Policy{AllowedMRSigner: []cryptbox.Digest{microsvc.ReplicaSigner(serviceName)}}, keys)
	rs, err := microsvc.NewReplicaSet(bus, svc, kb, serviceName,
		func(req []byte) ([]byte, error) { return append([]byte("ok:"), req...), nil },
		microsvc.ReplicaSetConfig{
			Replicas: 2, InTopic: "wire/req", OutTopic: "wire/resp",
			Admission: &microsvc.AdmissionConfig{
				// Rate 2/tick with a 4-deep queue per tenant: the warmup
				// and recover phases (1 req/tick) sail through, the inject
				// phase (4 req/tick) saturates the bucket and sheds — the
				// deterministic overload the histogram should show.
				Default:         microsvc.TenantPolicy{Weight: 1, Rate: 2, Burst: 2, MaxQueue: 4},
				DispatchPerStep: inject,
			},
		})
	if err != nil {
		return nil, err
	}
	gw, err := wire.NewPlaneGateway(bus, serviceName, keys, "wire/req", "wire/resp")
	if err != nil {
		rs.Stop()
		return nil, err
	}

	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	signer[0] = 0x5C
	e, err := p.ECreate(64<<20, signer)
	if err != nil {
		rs.Stop()
		return nil, err
	}
	if _, err := e.EAdd([]byte("scbr-broker-v1")); err != nil {
		rs.Stop()
		return nil, err
	}
	if err := e.EInit(); err != nil {
		rs.Stop()
		return nil, err
	}
	broker, err := scbr.NewBroker(e, scbr.DefaultBrokerConfig())
	if err != nil {
		rs.Stop()
		return nil, err
	}
	quoter, err := svc.Provision(p, "wire-bench-platform")
	if err != nil {
		rs.Stop()
		return nil, err
	}

	ws := wire.NewServer(wire.Config{
		Broker: broker, Quoter: quoter, AuthToken: authToken,
		Sources: []stats.Source{rs}, Pprof: pprofOn,
	})
	ws.RegisterPlane(serviceName, gw)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rs.Stop()
		return nil, err
	}
	srv := &http.Server{Handler: ws.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &stack{
		rs: rs, gw: gw, broker: broker, keys: keys, svc: svc,
		policy: attest.Policy{AllowedMRSigner: []cryptbox.Digest{signer}},
		srv:    srv, url: "http://" + ln.Addr().String(),
	}, nil
}

func (s *stack) close() {
	_ = s.srv.Close()
	s.gw.Close()
	s.rs.Stop()
}

// runOnce builds a fresh stack, replays the whole workload over HTTP, and
// returns the deterministic counter map plus the informational wall-clock
// figures.
func runOnce(ticks int, pprofOn bool) (map[string]float64, map[string]float64, error) {
	s, err := buildStack(64, pprofOn)
	if err != nil {
		return nil, nil, err
	}
	defer s.close()

	const clients = 4
	spec := loadgen.Spec{
		Clients:    clients,
		Seed:       1109,
		Keys:       32,
		Tenants:    []string{"t0", "t1", "t2", "t3"},
		PayloadMin: 48,
		PayloadMax: 768,
		Phases: []loadgen.Phase{
			{Name: "warmup", Ticks: ticks, PerClient: 1},
			{Name: "inject", Ticks: 2 * ticks, PerClient: 4},
			{Name: "recover", Ticks: ticks, PerClient: 1},
		},
		DrainTicks: 3 * ticks,
	}
	drv := &planeDriver{rs: s.rs}
	for c := 0; c < clients; c++ {
		tr := wire.NewPlaneTransport(s.url, serviceName, http.DefaultClient).WithAuth(authToken)
		pc, err := microsvc.NewPlaneClientTransport(serviceName, s.keys.Request, tr)
		if err != nil {
			return nil, nil, err
		}
		defer pc.Close()
		drv.clients = append(drv.clients, pc)
	}
	res, err := loadgen.Run(spec, drv)
	if err != nil {
		return nil, nil, err
	}

	// SCBR over the same server: six subscribers on adjacent price bands,
	// one publisher sweeping the range — every delivery count is a pure
	// function of the band layout. Every dial attests the broker enclave
	// against the bench's signer policy before handing over its filters,
	// so the measured path includes the wire attestation round trip.
	dialOpts := wire.SCBRDialOpts{Auth: authToken, Service: s.svc, Policy: s.policy}
	sub := make([]*wire.SCBRClient, 6)
	var delivered, polled int
	for i := range sub {
		sc, err := wire.DialSCBROpts(s.url, fmt.Sprintf("sub-%d", i), http.DefaultClient, dialOpts)
		if err != nil {
			return nil, nil, err
		}
		if _, err := sc.Subscribe(scbr.Subscription{Preds: []scbr.Predicate{
			{Attr: "price", Interval: scbr.Interval{Lo: float64(i * 10), Hi: float64(i*10 + 14)}},
		}}); err != nil {
			return nil, nil, err
		}
		sub[i] = sc
	}
	pubc, err := wire.DialSCBROpts(s.url, "pub-0", http.DefaultClient, dialOpts)
	if err != nil {
		return nil, nil, err
	}
	for v := 0; v < 60; v += 3 {
		n, err := pubc.Publish(scbr.Event{Attrs: map[string]float64{"price": float64(v)}, Payload: []byte{byte(v)}})
		if err != nil {
			return nil, nil, err
		}
		delivered += n
	}
	for _, sc := range sub {
		evs, err := sc.Poll()
		if err != nil {
			return nil, nil, err
		}
		polled += len(evs)
	}

	det := map[string]float64{
		"plane_sent":       float64(res.Sent),
		"plane_served":     float64(res.Served),
		"plane_shed":       float64(res.Shed),
		"plane_lost":       float64(res.Lost),
		"bytes_sent":       float64(res.BytesSent),
		"phase_warmup":     float64(res.PhaseSent["warmup"]),
		"phase_inject":     float64(res.PhaseSent["inject"]),
		"phase_recover":    float64(res.PhaseSent["recover"]),
		"scbr_delivered":   float64(delivered),
		"scbr_polled":      float64(polled),
		"scbr_subscribers": float64(len(sub)),
	}
	for i, c := range res.Sizes.BucketCounts() {
		det[fmt.Sprintf("sizehist_b%02d", i)] = float64(c)
	}
	for k, v := range s.rs.Snapshot() {
		det["sim_"+k] = v
	}
	for k, v := range s.gw.Snapshot() {
		det["gw_"+k] = v
	}

	lat := res.Latency
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	wall := map[string]float64{
		"p50_us":     us(lat.Quantile(0.50)),
		"p95_us":     us(lat.Quantile(0.95)),
		"p99_us":     us(lat.Quantile(0.99)),
		"max_us":     us(lat.Max()),
		"mean_us":    lat.Mean() / 1e3,
		"elapsed_ms": float64(res.Elapsed.Milliseconds()),
		"rps":        float64(res.Sent) / res.Elapsed.Seconds(),
	}
	return det, wall, nil
}

func main() {
	jsonOut := flag.Bool("json", false, "emit JSON")
	ticks := flag.Int("ticks", 8, "warmup phase ticks (inject is 2x, drain 3x)")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof on the bench server")
	flag.Parse()

	start := time.Now()
	det1, wall, err := runOnce(*ticks, *pprofOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-bench:", err)
		os.Exit(1)
	}
	det2, _, err := runOnce(*ticks, *pprofOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-bench:", err)
		os.Exit(1)
	}
	runsEqual := len(det1) == len(det2)
	if runsEqual {
		for k, v := range det1 {
			if det2[k] != v {
				fmt.Fprintf(os.Stderr, "wire-bench: %s differs across runs: %v vs %v\n", k, v, det2[k])
				runsEqual = false
			}
		}
	}

	out := struct {
		Ticks         int                `json:"ticks"`
		Deterministic map[string]float64 `json:"deterministic"`
		RunsEqual     bool               `json:"runs_equal"`
		Wallclock     map[string]float64 `json:"wallclock"`
		TotalWallMS   int64              `json:"total_wall_ms"`
	}{*ticks, det1, runsEqual, wall, time.Since(start).Milliseconds()}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "wire-bench:", err)
			os.Exit(1)
		}
		if !runsEqual {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("wire-bench: %d ticks, runs_equal=%v\n", *ticks, runsEqual)
	keys := make([]string, 0, len(det1))
	for k := range det1 {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %g\n", k, det1[k])
	}
	fmt.Printf("  wallclock: p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus rps=%.0f\n",
		wall["p50_us"], wall["p95_us"], wall["p99_us"], wall["max_us"], wall["rps"])
	if !runsEqual {
		os.Exit(1)
	}
}
