// Command pull-bench drives the content-addressed sealed data plane — the
// chunk-granular registry plus the container engine's parallel verified
// pull — and reports both wall-clock (simulator speed) and simulated
// metrics (modeled costs).
//
// The workload builds a fleet of images sharing a multi-chunk base layer,
// pushes them through the deduplicating registry, and then pulls three
// ways on a node with a shared blob cache:
//
//  1. cold: the first image on an empty node — every unique chunk crosses.
//  2. shared: a sibling image — only its unique app layer crosses, the
//     base comes from the cache (cross-image dedup at the node).
//  3. warm: the first image again, as a second replica boot — zero chunks
//     cross.
//
// The whole sequence runs once per worker count in {1,2,4,8}. Worker count
// is execution-only: every simulated metric (chunks fetched, dedup hits,
// per-layer verification cycles, faults) must be bit-identical across the
// sweep, and the warm pull must fetch exactly zero chunks — the driver
// exits nonzero otherwise. The -json output's "deterministic" object is
// consumed by scripts/bench_check.sh to gate regressions in CI.
//
// Usage:
//
//	pull-bench [-images K] [-base-kb N] [-app-kb N] [-seed S] [-json]
package main

import (
	"bytes"
	"crypto/ed25519"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"securecloud/internal/container"
	"securecloud/internal/enclave"
	"securecloud/internal/image"
	"securecloud/internal/registry"
	"securecloud/internal/shield"
	"securecloud/internal/sim"
)

// pull is the JSON record of one pull's deterministic metrics plus wall
// clock (host speed only, never gated).
type pull struct {
	WallNS         int64   `json:"wall_ns"`
	Layers         int     `json:"layers"`
	ChunksTotal    int     `json:"chunks_total"`
	UniqueChunks   int     `json:"unique_chunks"`
	DedupHits      int     `json:"dedup_hits"`
	CacheHits      int     `json:"cache_hits"`
	ChunksFetched  int     `json:"chunks_fetched"`
	BytesFetched   int64   `json:"bytes_fetched"`
	SerialCycles   uint64  `json:"sim_cycles_serial"`
	CriticalCycles uint64  `json:"sim_cycles_critical"`
	SimSpeedup     float64 `json:"sim_speedup"`
	Faults         uint64  `json:"faults"`
}

func record(ps container.PullStats, wall time.Duration) pull {
	p := pull{
		WallNS:         wall.Nanoseconds(),
		Layers:         ps.Layers,
		ChunksTotal:    ps.ChunksTotal,
		UniqueChunks:   ps.UniqueChunks,
		DedupHits:      ps.DedupHits,
		CacheHits:      ps.CacheHits,
		ChunksFetched:  ps.ChunksFetch,
		BytesFetched:   ps.BytesFetched,
		SerialCycles:   uint64(ps.SerialCycles),
		CriticalCycles: uint64(ps.CriticalCycles),
		SimSpeedup:     1,
		Faults:         ps.Faults,
	}
	if ps.CriticalCycles > 0 {
		p.SimSpeedup = float64(ps.SerialCycles) / float64(ps.CriticalCycles)
	}
	return p
}

// deterministicEqual compares everything but wall clock.
func deterministicEqual(a, b pull) bool {
	a.WallNS, b.WallNS = 0, 0
	return a == b
}

// compressibleData mimics real layer content: low-entropy, so the
// transfer codec's compression stage does real work.
func compressibleData(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte('a' + rng.Intn(16))
	}
	return out
}

func main() {
	images := flag.Int("images", 3, "images sharing one base layer")
	baseKB := flag.Int("base-kb", 512, "shared base layer size (KiB)")
	appKB := flag.Int("app-kb", 192, "per-image app layer size (KiB)")
	seed := flag.Int64("seed", 42, "workload seed")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pull-bench: "+format+"\n", args...)
		os.Exit(1)
	}

	// ---- Build the image fleet and push it through the registry ----
	reg := registry.New()
	rng := sim.NewRand(*seed)
	base := compressibleData(rng, *baseKB<<10)
	var imgs []*image.Image
	for i := 0; i < *images; i++ {
		priv := ed25519.NewKeyFromSeed(bytes.Repeat([]byte{byte(i + 1)}, ed25519.SeedSize))
		img, err := image.NewBuilder("bench/app", fmt.Sprintf("v%d", i)).
			AddLayer(map[string][]byte{"/lib/base": base}).
			AddLayer(map[string][]byte{container.EntrypointPath: compressibleData(rng, *appKB<<10)}).
			SetEntrypoint(container.EntrypointPath).
			SetEnclaveSize(1 << 20).
			Build(priv)
		if err != nil {
			fail("%v", err)
		}
		imgs = append(imgs, img)
	}
	pushStart := time.Now()
	for _, img := range imgs {
		if err := reg.Push(img); err != nil {
			fail("%v", err)
		}
	}
	pushWall := time.Since(pushStart)
	regStats := reg.Stats()

	// ---- The pull sequence, swept across worker counts ----
	workerSweep := []int{1, 2, 4, 8}
	type seq struct {
		Cold   pull `json:"cold"`
		Shared pull `json:"shared"`
		Warm   pull `json:"warm"`
	}
	var first seq
	workersEqual := true
	for wi, workers := range workerSweep {
		cache := container.NewBlobCache()
		eng := container.NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), reg, nil)
		eng.Cache = cache
		eng.PullWorkers = workers

		var s seq
		start := time.Now()
		img, ps, err := eng.PullImage("bench/app", "v0")
		if err != nil {
			fail("cold pull: %v", err)
		}
		s.Cold = record(ps, time.Since(start))
		if err := img.Verify(); err != nil {
			fail("cold pull verification: %v", err)
		}

		start = time.Now()
		if _, ps, err = eng.PullImage("bench/app", "v1"); err != nil {
			fail("shared pull: %v", err)
		}
		s.Shared = record(ps, time.Since(start))

		start = time.Now()
		if _, ps, err = eng.PullImage("bench/app", "v0"); err != nil {
			fail("warm pull: %v", err)
		}
		s.Warm = record(ps, time.Since(start))

		if s.Warm.ChunksFetched != 0 || s.Warm.BytesFetched != 0 {
			fail("warm pull fetched %d chunks (%d bytes); the node cache is broken",
				s.Warm.ChunksFetched, s.Warm.BytesFetched)
		}
		if wi == 0 {
			first = s
			continue
		}
		if !deterministicEqual(s.Cold, first.Cold) ||
			!deterministicEqual(s.Shared, first.Shared) ||
			!deterministicEqual(s.Warm, first.Warm) {
			workersEqual = false
			fmt.Fprintf(os.Stderr, "pull-bench: metrics differ at %d workers:\n  got  %+v\n  want %+v\n",
				workers, s, first)
		}
	}
	if !workersEqual {
		fail("pull metrics are not worker-count invariant")
	}

	out := struct {
		Config struct {
			Images  int   `json:"images"`
			BaseKB  int   `json:"base_kb"`
			AppKB   int   `json:"app_kb"`
			Seed    int64 `json:"seed"`
			Workers []int `json:"worker_sweep"`
		} `json:"config"`
		Registry struct {
			WallNS    int64  `json:"push_wall_ns"`
			Manifests int    `json:"manifests"`
			Layers    int    `json:"layers"`
			Blobs     int    `json:"blobs"`
			BlobBytes int64  `json:"blob_bytes"`
			DedupHits uint64 `json:"dedup_hits"`
		} `json:"registry"`
		Pulls         seq                `json:"pulls"`
		WorkersEqual  bool               `json:"workers_equal"`
		Deterministic map[string]float64 `json:"deterministic"`
	}{}
	out.Config.Images = *images
	out.Config.BaseKB = *baseKB
	out.Config.AppKB = *appKB
	out.Config.Seed = *seed
	out.Config.Workers = workerSweep
	out.Registry.WallNS = pushWall.Nanoseconds()
	out.Registry.Manifests = regStats.Manifests
	out.Registry.Layers = regStats.Layers
	out.Registry.Blobs = regStats.Blobs
	out.Registry.BlobBytes = regStats.BlobBytes
	out.Registry.DedupHits = regStats.DedupHits
	out.Pulls = first
	out.WorkersEqual = workersEqual
	out.Deterministic = map[string]float64{
		"registry_blobs":           float64(regStats.Blobs),
		"registry_blob_bytes":      float64(regStats.BlobBytes),
		"registry_dedup_hits":      float64(regStats.DedupHits),
		"cold_chunks_fetched":      float64(first.Cold.ChunksFetched),
		"cold_unique_chunks":       float64(first.Cold.UniqueChunks),
		"cold_bytes_fetched":       float64(first.Cold.BytesFetched),
		"cold_sim_cycles_serial":   float64(first.Cold.SerialCycles),
		"cold_sim_cycles_critical": float64(first.Cold.CriticalCycles),
		"cold_faults":              float64(first.Cold.Faults),
		"shared_chunks_fetched":    float64(first.Shared.ChunksFetched),
		"shared_cache_hits":        float64(first.Shared.CacheHits),
		"shared_sim_cycles_serial": float64(first.Shared.SerialCycles),
		"warm_chunks_fetched":      float64(first.Warm.ChunksFetched),
		"warm_cache_hits":          float64(first.Warm.CacheHits),
		"warm_sim_cycles_serial":   float64(first.Warm.SerialCycles),
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail("%v", err)
		}
		return
	}
	fmt.Printf("registry: %d images, %d layers -> %d blobs (%d KiB), %d dedup hits, pushed in %.1fms\n",
		regStats.Manifests, regStats.Layers, regStats.Blobs, regStats.BlobBytes>>10,
		regStats.DedupHits, float64(pushWall.Nanoseconds())/1e6)
	fmt.Printf("cold:   %d/%d chunks fetched (%d KiB), %d sim-cycles serial, %d critical (%.2fx layer-per-core), %d faults, %.1fms wall\n",
		first.Cold.ChunksFetched, first.Cold.ChunksTotal, first.Cold.BytesFetched>>10,
		first.Cold.SerialCycles, first.Cold.CriticalCycles, first.Cold.SimSpeedup,
		first.Cold.Faults, float64(first.Cold.WallNS)/1e6)
	fmt.Printf("shared: %d chunks fetched, %d from node cache (cross-image dedup)\n",
		first.Shared.ChunksFetched, first.Shared.CacheHits)
	fmt.Printf("warm:   %d chunks fetched (second replica boots from the node cache)\n",
		first.Warm.ChunksFetched)
	fmt.Printf("metrics bit-identical across workers %v: %v\n", workerSweep, workersEqual)
}
