// Command sgx-probe reports the simulated platform's cost model and runs
// the micro-benchmarks that calibrate it: cache-hit vs DRAM vs MEE access
// cost, EPC fault cost, enclave transition cost, and the resulting
// in/out-of-enclave cost ratios for streaming and random access patterns
// at several working-set sizes. Useful for sanity-checking any cost-model
// change before re-running the paper experiments.
package main

import (
	"flag"
	"fmt"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

func main() {
	flag.Parse()
	cfg := enclave.DefaultConfig()

	fmt.Println("# simulated SGX v1 platform")
	fmt.Printf("EPC            : %d MiB (%d MiB usable after SGX metadata)\n",
		cfg.EPCBytes>>20, (cfg.EPCBytes-cfg.EPCReservedBytes)>>20)
	fmt.Printf("LLC            : %d MiB, %d-way, %d B lines\n", cfg.LLCBytes>>20, cfg.LLCWays, cfg.LineSize)
	fmt.Printf("page size      : %d B\n", cfg.PageSize)
	fmt.Println("\n# cost model (cycles)")
	fmt.Printf("LLC hit        : %d\n", cfg.Cost.LLCHit)
	fmt.Printf("DRAM (outside) : %d\n", cfg.Cost.DRAMAccess)
	fmt.Printf("MEE (inside)   : %d\n", cfg.Cost.MEEAccess)
	fmt.Printf("EPC fault      : %d\n", cfg.Cost.EPCFault)
	fmt.Printf("minor fault    : %d\n", cfg.Cost.MinorFault)
	fmt.Printf("EENTER/EEXIT   : %d\n", cfg.Cost.Transition)
	fmt.Printf("AEX            : %d\n", cfg.Cost.AEX)

	fmt.Println("\n# random-access cost ratio by working set (cycles/access, 64 B strided random)")
	fmt.Printf("%-16s %-12s %-12s %-8s\n", "working-set", "inside", "outside", "ratio")
	for _, mb := range []uint64{4, 32, 64, 96, 128, 192, 256} {
		in := measure(true, mb<<20)
		out := measure(false, mb<<20)
		fmt.Printf("%-16s %-12.0f %-12.0f %-8.1f\n",
			fmt.Sprintf("%d MiB", mb), in, out, in/out)
	}
}

// measure walks a working set pseudo-randomly and returns cycles/access.
func measure(inside bool, wsBytes uint64) float64 {
	p := enclave.NewPlatform(enclave.Config{})
	var mem *enclave.Memory
	var base uint64
	if inside {
		var signer cryptbox.Digest
		enc, err := p.ECreate(wsBytes+(1<<20), signer)
		if err != nil {
			panic(err)
		}
		if _, err := enc.EAdd([]byte("probe")); err != nil {
			panic(err)
		}
		if err := enc.EInit(); err != nil {
			panic(err)
		}
		arena, err := enc.HeapArena()
		if err != nil {
			panic(err)
		}
		base = arena.Alloc(int(wsBytes - (64 << 10)))
		mem = enc.Memory()
	} else {
		mem = p.UntrustedMemory()
		base = p.AllocUntrusted(wsBytes)
		// Pre-touch, mirroring EADD preload inside.
		for a := base; a < base+wsBytes; a += p.Config().PageSize {
			mem.Access(a, 1, true)
		}
	}
	rng := sim.NewRand(7)
	// Warm up residency, then measure.
	const accesses = 30000
	for i := 0; i < accesses/2; i++ {
		mem.Access(base+rng.Uint64()%(wsBytes-64), 8, false)
	}
	mem.ResetAccounting()
	for i := 0; i < accesses; i++ {
		mem.Access(base+rng.Uint64()%(wsBytes-64), 8, false)
	}
	return float64(mem.Cycles()) / accesses
}
