// Command durability-bench measures what the delta durability pipeline
// saves over the full-snapshot baseline, in both directions of the wire:
//
//   - publish: after a small mutation, an incremental snapshot re-packs
//     only the dirty shard and publishes strictly fewer chunks — and
//     charges strictly fewer sim-cycles — than a full snapshot of the
//     identical state (measured on a twin store against its own registry,
//     so convergent dedup cannot flatter either side).
//   - recover: a node that already pulled the previous snapshot recovers
//     the delta chain by fetching only the cache-missing chunks — strictly
//     fewer than its own cold recovery fetched — then replays the
//     post-snapshot WAL tail, and must land bit-identical to a
//     never-crashed twin.
//
// The whole cycle runs once per worker count in {1,2,4,8}. Worker count is
// execution-only: every simulated metric (chunks published and fetched,
// pack and replay cycles, GC retirements) must be bit-identical across the
// sweep — the driver exits nonzero otherwise, as it does if the delta ever
// fails to beat the full baseline. The -json output's "deterministic"
// object is consumed by scripts/bench_check.sh to gate regressions in CI.
//
// Usage:
//
//	durability-bench [-shards N] [-batches N] [-seed S] [-json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/kvstore"
	"securecloud/internal/registry"
	"securecloud/internal/shield"
)

// result is one worker-count run's deterministic metrics plus wall clock
// (host speed only, never gated).
type result struct {
	WallNS int64 `json:"wall_ns"`

	BaseSnapshotChunks int    `json:"base_snapshot_chunks"`
	BaseSnapshotCycles uint64 `json:"base_snapshot_cycles"`

	ColdChunksFetched int `json:"cold_chunks_fetched"`
	ColdCacheHits     int `json:"cold_cache_hits"`

	DeltaShardsPacked   int    `json:"delta_shards_packed"`
	DeltaShardsReused   int    `json:"delta_shards_reused"`
	DeltaSnapshotChunks int    `json:"delta_snapshot_chunks"`
	DeltaChunksDeduped  int    `json:"delta_chunks_deduped"`
	DeltaSnapshotCycles uint64 `json:"delta_snapshot_cycles"`

	FullSnapshotChunks int    `json:"full_snapshot_chunks"`
	FullSnapshotCycles uint64 `json:"full_snapshot_cycles"`

	GCSegmentsRetired int   `json:"gc_segments_retired"`
	GCBytesRetired    int64 `json:"gc_bytes_retired"`

	DeltaChunksFetched int `json:"delta_chunks_fetched"`
	DeltaCacheHits     int `json:"delta_cache_hits"`
	ReplayRecords      int `json:"replay_records"`
	ChainLinks         int `json:"chain_links"`

	RecoveredStateEqual bool `json:"recovered_state_equal"`
}

// deterministicEqual compares everything but wall clock.
func deterministicEqual(a, b result) bool {
	a.WallNS, b.WallNS = 0, 0
	return a == b
}

// genBatches mirrors the kvstore test workload: a deterministic batch
// stream with overwrites across a small key space.
func genBatches(seed int64, n, perBatch int) [][]kvstore.Pair {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]kvstore.Pair, n)
	for i := range out {
		batch := make([]kvstore.Pair, perBatch)
		for j := range batch {
			v := make([]byte, 24+rng.Intn(40))
			rng.Read(v)
			batch[j] = kvstore.Pair{Key: fmt.Sprintf("key-%03d", rng.Intn(48)), Value: v}
		}
		out[i] = batch
	}
	return out
}

// newNode builds an engine (with an empty node blob cache) against reg.
func newNode(reg *registry.Registry, workers int) *container.Engine {
	eng := container.NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), reg, nil)
	eng.Cache = container.NewBlobCache()
	eng.PullWorkers = workers
	return eng
}

func run(shards, workers, batches int, seed int64, fail func(string, ...any)) result {
	start := time.Now()
	sealKey, err := cryptbox.KeyFromBytes(bytes.Repeat([]byte{0x5A}, cryptbox.KeySize))
	if err != nil {
		fail("%v", err)
	}
	base := genBatches(seed, batches, 14)
	mutation := []kvstore.Pair{{Key: "key-007", Value: bytes.Repeat([]byte{0xEE}, 32)}}
	tail := []kvstore.Pair{{Key: "key-011", Value: bytes.Repeat([]byte{0xC3}, 32)}}

	// ---- Node A: the primary store, base load, first (full) snapshot ----
	regA := registry.New()
	cfgA := kvstore.DurableConfig{
		Shards: shards, Workers: workers, Seed: seed,
		Service: "bench/durable", SealKey: sealKey,
		Registry: regA, Engine: newNode(regA, workers),
	}
	dsA, err := kvstore.NewDurableStore(cfgA)
	if err != nil {
		fail("%v", err)
	}
	for _, b := range base {
		if err := dsA.PutBatch(b); err != nil {
			fail("%v", err)
		}
	}
	baseSnap, err := dsA.Snapshot()
	if err != nil {
		fail("base snapshot: %v", err)
	}

	// ---- Node B: cold recovery (empty cache), then the delta cycle ----
	cfgB := cfgA
	cfgB.Engine = newNode(regA, workers)
	dsB, cold, err := kvstore.RecoverDurableStore(cfgB, dsA.WALSegments())
	if err != nil {
		fail("cold recovery: %v", err)
	}
	if err := dsB.PutBatch(mutation); err != nil {
		fail("%v", err)
	}
	deltaSnap, err := dsB.Snapshot()
	if err != nil {
		fail("delta snapshot: %v", err)
	}
	gc := dsB.GC()
	if err := dsB.PutBatch(tail); err != nil {
		fail("%v", err)
	}

	// ---- Twin C: identical state against its own registry, so the full
	// snapshot baseline is measured without cross-dedup against A's chunks.
	// It also receives the tail batch, becoming the never-crashed reference.
	regC := registry.New()
	cfgC := cfgA
	cfgC.Registry = regC
	cfgC.Engine = newNode(regC, workers)
	dsC, err := kvstore.NewDurableStore(cfgC)
	if err != nil {
		fail("%v", err)
	}
	for _, b := range base {
		if err := dsC.PutBatch(b); err != nil {
			fail("%v", err)
		}
	}
	if err := dsC.PutBatch(mutation); err != nil {
		fail("%v", err)
	}
	fullSnap, err := dsC.SnapshotFull()
	if err != nil {
		fail("full snapshot: %v", err)
	}
	if err := dsC.PutBatch(tail); err != nil {
		fail("%v", err)
	}

	// ---- Crash B; warm recovery on the same node (warm blob cache) ----
	dsR, warm, err := kvstore.RecoverDurableStore(cfgB, dsB.WALSegments())
	if err != nil {
		fail("warm recovery: %v", err)
	}
	got, err := dsR.StateDigest()
	if err != nil {
		fail("%v", err)
	}
	want, err := dsC.StateDigest()
	if err != nil {
		fail("%v", err)
	}

	return result{
		WallNS:              time.Since(start).Nanoseconds(),
		BaseSnapshotChunks:  baseSnap.ChunksPublished,
		BaseSnapshotCycles:  uint64(baseSnap.PackCycles),
		ColdChunksFetched:   cold.ChunksFetched,
		ColdCacheHits:       cold.CacheHits,
		DeltaShardsPacked:   deltaSnap.ShardsPacked,
		DeltaShardsReused:   deltaSnap.ShardsReused,
		DeltaSnapshotChunks: deltaSnap.ChunksPublished,
		DeltaChunksDeduped:  deltaSnap.ChunksDeduped,
		DeltaSnapshotCycles: uint64(deltaSnap.PackCycles),
		FullSnapshotChunks:  fullSnap.ChunksPublished,
		FullSnapshotCycles:  uint64(fullSnap.PackCycles),
		GCSegmentsRetired:   gc.SegmentsRetired,
		GCBytesRetired:      gc.BytesRetired,
		DeltaChunksFetched:  warm.ChunksFetched,
		DeltaCacheHits:      warm.CacheHits,
		ReplayRecords:       warm.RecordsReplayed,
		ChainLinks:          warm.ChainLinks,
		RecoveredStateEqual: got == want,
	}
}

func main() {
	shards := flag.Int("shards", 8, "durable store shard count")
	batches := flag.Int("batches", 6, "base-load batches (14 pairs each)")
	seed := flag.Int64("seed", 42, "workload seed")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "durability-bench: "+format+"\n", args...)
		os.Exit(1)
	}

	workerSweep := []int{1, 2, 4, 8}
	var first result
	workersEqual := true
	for wi, workers := range workerSweep {
		r := run(*shards, workers, *batches, *seed, fail)
		if wi == 0 {
			first = r
			continue
		}
		if !deterministicEqual(r, first) {
			workersEqual = false
			fmt.Fprintf(os.Stderr, "durability-bench: metrics differ at %d workers:\n  got  %+v\n  want %+v\n",
				workers, r, first)
		}
	}
	if !workersEqual {
		fail("durability metrics are not worker-count invariant")
	}
	// The delta must actually beat the baseline — in chunks and cycles on
	// the publish side, and in fetches on the recovery side.
	if first.DeltaSnapshotChunks >= first.FullSnapshotChunks {
		fail("delta snapshot published %d chunks, full published %d",
			first.DeltaSnapshotChunks, first.FullSnapshotChunks)
	}
	if first.DeltaSnapshotCycles >= first.FullSnapshotCycles {
		fail("delta snapshot charged %d cycles, full charged %d",
			first.DeltaSnapshotCycles, first.FullSnapshotCycles)
	}
	if first.DeltaChunksFetched == 0 || first.DeltaChunksFetched >= first.ColdChunksFetched {
		fail("warm delta recovery fetched %d chunks, cold fetched %d",
			first.DeltaChunksFetched, first.ColdChunksFetched)
	}
	if !first.RecoveredStateEqual {
		fail("recovered state differs from the never-crashed twin")
	}

	equal := 0.0
	if first.RecoveredStateEqual {
		equal = 1
	}
	out := struct {
		Config struct {
			Shards  int   `json:"shards"`
			Batches int   `json:"batches"`
			Seed    int64 `json:"seed"`
			Workers []int `json:"worker_sweep"`
		} `json:"config"`
		Run           result             `json:"run"`
		WorkersEqual  bool               `json:"workers_equal"`
		Deterministic map[string]float64 `json:"deterministic"`
	}{}
	out.Config.Shards = *shards
	out.Config.Batches = *batches
	out.Config.Seed = *seed
	out.Config.Workers = workerSweep
	out.Run = first
	out.WorkersEqual = workersEqual
	out.Deterministic = map[string]float64{
		"base_snapshot_chunks":  float64(first.BaseSnapshotChunks),
		"base_snapshot_cycles":  float64(first.BaseSnapshotCycles),
		"cold_chunks_fetched":   float64(first.ColdChunksFetched),
		"cold_cache_hits":       float64(first.ColdCacheHits),
		"delta_shards_packed":   float64(first.DeltaShardsPacked),
		"delta_shards_reused":   float64(first.DeltaShardsReused),
		"delta_snapshot_chunks": float64(first.DeltaSnapshotChunks),
		"delta_chunks_deduped":  float64(first.DeltaChunksDeduped),
		"delta_snapshot_cycles": float64(first.DeltaSnapshotCycles),
		"full_snapshot_chunks":  float64(first.FullSnapshotChunks),
		"full_snapshot_cycles":  float64(first.FullSnapshotCycles),
		"gc_segments_retired":   float64(first.GCSegmentsRetired),
		"gc_bytes_retired":      float64(first.GCBytesRetired),
		"delta_chunks_fetched":  float64(first.DeltaChunksFetched),
		"delta_cache_hits":      float64(first.DeltaCacheHits),
		"replay_records":        float64(first.ReplayRecords),
		"chain_links":           float64(first.ChainLinks),
		"recovered_state_equal": equal,
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail("%v", err)
		}
		return
	}
	fmt.Printf("publish: delta %d chunks / %d cycles (packed %d, reused %d) vs full %d chunks / %d cycles\n",
		first.DeltaSnapshotChunks, first.DeltaSnapshotCycles,
		first.DeltaShardsPacked, first.DeltaShardsReused,
		first.FullSnapshotChunks, first.FullSnapshotCycles)
	fmt.Printf("recover: warm delta fetched %d chunks (%d cache hits, %d records replayed, %d chain links) vs cold %d\n",
		first.DeltaChunksFetched, first.DeltaCacheHits, first.ReplayRecords,
		first.ChainLinks, first.ColdChunksFetched)
	fmt.Printf("gc: %d segments (%d bytes) retired; recovered state equal: %v\n",
		first.GCSegmentsRetired, first.GCBytesRetired, first.RecoveredStateEqual)
	fmt.Printf("metrics bit-identical across workers %v: %v\n", workerSweep, workersEqual)
}
