// Command bench-check is the bench-regression gate: it extracts every
// deterministic simulated metric from the newest committed BENCH_N.json
// and fails when any value drifts from the committed baseline
// (scripts/bench_baseline.json).
//
// Deterministic metrics — sim-cycles, fault counts, figure values — are
// pure functions of the workload and the cost model, so any drift is a
// semantic change to the simulator or its data structures, never noise.
// Wall-clock fields are ignored: they measure the host. The check also
// verifies internal consistency inside the bench file itself (parallel
// sweeps bit-identical to sequential ones, per-cpu broker runs agreeing),
// which catches nondeterminism even before a baseline exists.
//
// Usage:
//
//	bench-check [-bench BENCH_N.json] [-baseline scripts/bench_baseline.json] [-update]
//
// -update rewrites the baseline from the bench file; do this deliberately
// in the PR that intentionally changes the cost model or workload, the
// same discipline as GOLDEN_UPDATE=1 for the golden tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// tolerance absorbs JSON float round-tripping, nothing more: deterministic
// metrics must match to better than one part per billion.
const tolerance = 1e-9

type baseline struct {
	Source  string             `json:"source"`
	Metrics map[string]float64 `json:"metrics"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench-check: "+format+"\n", args...)
	os.Exit(1)
}

// latestBench returns the BENCH_N.json with the highest N in dir.
func latestBench(dir string) (string, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	re := regexp.MustCompile(`BENCH_(\d+)\.json$`)
	best, bestN := "", -1
	for _, e := range entries {
		m := re.FindStringSubmatch(e)
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > bestN {
			best, bestN = e, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_N.json found in %s", dir)
	}
	return best, nil
}

func num(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

// extract pulls every deterministic metric out of one bench file into a
// flat name → value map, and runs the file's internal consistency checks.
func extract(doc map[string]any) (map[string]float64, []string) {
	metrics := make(map[string]float64)
	var problems []string

	// Broker throughput: the simulated metrics must agree across every
	// -cpu entry (that is the determinism statement), then gate once.
	if arr, ok := doc["broker_publish_parallel"].([]any); ok && len(arr) > 0 {
		fields := []string{"sim_cycles_per_match", "sim_critical_cycles_per_match", "faults_per_match", "sim_speedup"}
		for _, f := range fields {
			var first float64
			for i, e := range arr {
				obj, ok := e.(map[string]any)
				if !ok {
					continue
				}
				v, ok := num(obj[f])
				if !ok {
					problems = append(problems, fmt.Sprintf("broker entry %d missing %s", i, f))
					continue
				}
				if i == 0 {
					first = v
					metrics["broker."+f] = v
				} else if v != first {
					problems = append(problems, fmt.Sprintf(
						"broker %s differs across -cpu entries: %v vs %v (nondeterministic)", f, first, v))
				}
			}
		}
	}

	if arr, ok := doc["cache_miss_vs_swap"].([]any); ok {
		for _, e := range arr {
			obj, ok := e.(map[string]any)
			if !ok {
				continue
			}
			name, _ := obj["case"].(string)
			for _, f := range []string{"sim_cycles_per_match", "faults_per_match"} {
				if v, ok := num(obj[f]); ok {
					metrics["cachemiss."+name+"."+f] = v
				}
			}
		}
	}

	figPoints := func(key string) map[float64]map[string]float64 {
		out := make(map[float64]map[string]float64)
		sweep, ok := doc[key].(map[string]any)
		if !ok {
			return nil
		}
		points, ok := sweep["points"].([]any)
		if !ok {
			return nil
		}
		for _, p := range points {
			obj, ok := p.(map[string]any)
			if !ok {
				continue
			}
			mb, ok := num(obj["OccupancyMB"])
			if !ok {
				continue
			}
			vals := make(map[string]float64)
			for _, f := range []string{"TimeRatio", "FaultRatio", "InsideCyclesPerOp", "OutsideCyclesPerOp", "InsideFaults", "OutsideFaults"} {
				if v, ok := num(obj[f]); ok {
					vals[f] = v
				}
			}
			out[mb] = vals
		}
		return out
	}
	seq := figPoints("figure3_reduced_sweep")
	for mb, vals := range seq {
		for f, v := range vals {
			metrics[fmt.Sprintf("figure3.%gmb.%s", mb, f)] = v
		}
	}
	if par := figPoints("figure3_reduced_sweep_parallel"); par != nil && seq != nil {
		for mb, vals := range seq {
			for f, v := range vals {
				pv, ok := par[mb][f]
				if !ok {
					problems = append(problems, fmt.Sprintf("parallel sweep missing %gMB %s", mb, f))
					continue
				}
				if pv != v {
					problems = append(problems, fmt.Sprintf(
						"figure3 %gMB %s: parallel %v != sequential %v (nondeterministic)", mb, f, pv, v))
				}
			}
		}
	}

	if app, ok := doc["app_bench"].(map[string]any); ok {
		if det, ok := app["deterministic"].(map[string]any); ok {
			for name, v := range det {
				if f, ok := num(v); ok {
					metrics["app."+name] = f
				}
			}
		}
		// The driver's own cross-worker-count determinism verdict: every
		// scenario's adaptation trace and cycle totals must have been
		// bit-identical across the worker sweep.
		if scenarios, ok := app["scenarios"].([]any); ok {
			for _, s := range scenarios {
				obj, ok := s.(map[string]any)
				if !ok {
					continue
				}
				name, _ := obj["name"].(string)
				if eq, ok := obj["trace_equal_across_workers"].(bool); ok && !eq {
					problems = append(problems, fmt.Sprintf(
						"app_bench: scenario %s adaptation trace differed across worker counts (nondeterministic)", name))
				}
			}
		}
		// Lab scenarios carry their own assertion tables (admission, shed,
		// retry and per-tenant bounds); a failed table is a robustness
		// regression, gated exactly like metric drift.
		if labs, ok := app["lab_scenarios"].([]any); ok {
			for _, s := range labs {
				obj, ok := s.(map[string]any)
				if !ok {
					continue
				}
				name, _ := obj["name"].(string)
				if eq, ok := obj["trace_equal_across_workers"].(bool); ok && !eq {
					problems = append(problems, fmt.Sprintf(
						"app_bench: lab scenario %s differed across worker counts (nondeterministic)", name))
				}
				if passed, ok := obj["assertions_passed"].(bool); ok && !passed {
					detail := ""
					if fails, ok := obj["assertion_failures"].([]any); ok {
						for _, f := range fails {
							if msg, ok := f.(string); ok {
								detail += "; " + msg
							}
						}
					}
					problems = append(problems, fmt.Sprintf(
						"app_bench: lab scenario %s assertion table failed%s", name, detail))
				}
			}
		}
		// Durability invariants, gated explicitly on top of the assertion
		// tables: crash-with-state-loss recovery must land bit-identical to
		// the never-crashed twin, and a revoked service must serve nothing
		// while revoked (fail closed). These are correctness statements, not
		// just figures, so they get their own failure messages.
		if det, ok := app["deterministic"].(map[string]any); ok {
			if v, ok := num(det["lab_crash-state_recovered_state_equal"]); ok && v != 1 {
				problems = append(problems,
					"app_bench: crash-state recovery diverged from the never-crashed twin (recovered_state_equal != 1)")
			}
			if v, ok := num(det["lab_key-revocation_served_phase_inject"]); ok && v != 0 {
				problems = append(problems, fmt.Sprintf(
					"app_bench: revoked service served %v requests during the revocation window, want 0 (fail-open)", v))
			}
			// Cluster invariants: a partitioned replica must never serve a
			// routed request (fail-open through the partition), and a
			// byzantine registry must never land a tampered chunk in any
			// node's blob cache (cache poisoning).
			if v, ok := num(det["lab_node-partition_served_via_unreachable"]); ok && v != 0 {
				problems = append(problems, fmt.Sprintf(
					"app_bench: %v requests served via an unreachable replica during the partition, want 0 (fail-open)", v))
			}
			if v, ok := num(det["lab_byzantine-registry_tampered_cached"]); ok && v != 0 {
				problems = append(problems, fmt.Sprintf(
					"app_bench: %v tampered chunks found cached on cluster nodes, want 0 (cache poisoning)", v))
			}
		}
		// The overload A/B: admission on bounds the backlog, admission off
		// diverges. If the contrast collapses, the controller stopped doing
		// its job (or the spike stopped overloading) — fail either way.
		if c, ok := app["admission_contrast"].(map[string]any); ok {
			if okFlag, ok := c["contrast_ok"].(bool); ok && !okFlag {
				problems = append(problems, fmt.Sprintf(
					"app_bench: admission contrast broken (admission backlog %v vs no-admission %v)",
					c["admission_backlog_final"], c["noadmission_backlog_final"]))
			}
		}
	}

	if pb, ok := doc["pull_bench"].(map[string]any); ok {
		if det, ok := pb["deterministic"].(map[string]any); ok {
			for name, v := range det {
				if f, ok := num(v); ok {
					metrics["pull."+name] = f
				}
			}
		}
		// The driver's own cross-worker-count determinism verdict, plus the
		// node-cache statement: a warm second-replica pull fetches nothing.
		if eq, ok := pb["workers_equal"].(bool); ok && !eq {
			problems = append(problems,
				"pull_bench: pull metrics differed across worker counts (nondeterministic)")
		}
		if det, ok := pb["deterministic"].(map[string]any); ok {
			if warm, ok := num(det["warm_chunks_fetched"]); ok && warm != 0 {
				problems = append(problems, fmt.Sprintf(
					"pull_bench: warm pull fetched %v chunks, want 0 (blob cache broken)", warm))
			}
		}
	}

	if kv, ok := doc["kv_bench"].(map[string]any); ok {
		if det, ok := kv["deterministic"].(map[string]any); ok {
			for name, v := range det {
				if f, ok := num(v); ok {
					metrics["kv."+name] = f
				}
			}
		}
		// The driver's own cross-check against the sequential store.
		if kvSec, ok := kv["kv"].(map[string]any); ok {
			if match, ok := kvSec["results_match_plain"].(bool); ok && !match {
				problems = append(problems, "kv_bench: sharded store results diverged from sequential store")
			}
		}
	}

	if db, ok := doc["durability_bench"].(map[string]any); ok {
		if det, ok := db["deterministic"].(map[string]any); ok {
			for name, v := range det {
				if f, ok := num(v); ok {
					metrics["durability."+name] = f
				}
			}
		}
		// The driver's own cross-worker-count determinism verdict, plus the
		// delta-durability statements: a warm delta recovery must fetch
		// strictly fewer chunks than its own cold recovery, the incremental
		// snapshot must publish strictly fewer chunks (and charge strictly
		// fewer cycles) than the full baseline of identical state, and the
		// recovered store must land bit-identical to the never-crashed twin.
		if eq, ok := db["workers_equal"].(bool); ok && !eq {
			problems = append(problems,
				"durability_bench: metrics differed across worker counts (nondeterministic)")
		}
		if det, ok := db["deterministic"].(map[string]any); ok {
			delta, okD := num(det["delta_chunks_fetched"])
			cold, okC := num(det["cold_chunks_fetched"])
			if okD && okC && delta >= cold {
				problems = append(problems, fmt.Sprintf(
					"durability_bench: warm delta recovery fetched %v chunks, cold fetched %v (delta chain not saving traffic)", delta, cold))
			}
			dc, okDC := num(det["delta_snapshot_chunks"])
			fc, okFC := num(det["full_snapshot_chunks"])
			if okDC && okFC && dc >= fc {
				problems = append(problems, fmt.Sprintf(
					"durability_bench: delta snapshot published %v chunks, full published %v (incremental publish not saving chunks)", dc, fc))
			}
			dcy, okDY := num(det["delta_snapshot_cycles"])
			fcy, okFY := num(det["full_snapshot_cycles"])
			if okDY && okFY && dcy >= fcy {
				problems = append(problems, fmt.Sprintf(
					"durability_bench: delta snapshot charged %v cycles, full charged %v (incremental publish not saving work)", dcy, fcy))
			}
			if v, ok := num(det["recovered_state_equal"]); ok && v != 1 {
				problems = append(problems,
					"durability_bench: recovered state diverged from the never-crashed twin (recovered_state_equal != 1)")
			}
		}
	}

	if wb, ok := doc["wire_bench"].(map[string]any); ok {
		if det, ok := wb["deterministic"].(map[string]any); ok {
			for name, v := range det {
				if f, ok := num(v); ok {
					metrics["wire."+name] = f
				}
			}
		}
		// The driver's own back-to-back determinism verdict: the same
		// seeded workload replayed over a freshly built HTTP stack must
		// reproduce every deterministic counter bit-for-bit.
		if eq, ok := wb["runs_equal"].(bool); ok && !eq {
			problems = append(problems,
				"wire_bench: deterministic counters differed across back-to-back runs (nondeterministic)")
		}
		if det, ok := wb["deterministic"].(map[string]any); ok {
			if lost, ok := num(det["plane_lost"]); ok && lost != 0 {
				problems = append(problems, fmt.Sprintf(
					"wire_bench: %v requests never answered within the run, want 0 (reply loss over HTTP)", lost))
			}
			if rej, ok := num(det["gw_rejected"]); ok && rej != 0 {
				problems = append(problems, fmt.Sprintf(
					"wire_bench: gateway rejected %v well-formed frames, want 0", rej))
			}
		}
	}

	return metrics, problems
}

func main() {
	benchPath := flag.String("bench", "", "bench file to check (default: highest BENCH_N.json in the repo root)")
	basePath := flag.String("baseline", "scripts/bench_baseline.json", "committed baseline")
	update := flag.Bool("update", false, "rewrite the baseline from the bench file instead of checking")
	flag.Parse()

	if *benchPath == "" {
		p, err := latestBench(".")
		if err != nil {
			fail("%v", err)
		}
		*benchPath = p
	}
	raw, err := os.ReadFile(*benchPath)
	if err != nil {
		fail("%v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		fail("parsing %s: %v", *benchPath, err)
	}
	metrics, problems := extract(doc)
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "bench-check: %s: %s\n", *benchPath, p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	if len(metrics) == 0 {
		fail("%s contained no deterministic metrics", *benchPath)
	}

	if *update {
		out, err := json.MarshalIndent(baseline{Source: filepath.Base(*benchPath), Metrics: metrics}, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(*basePath, append(out, '\n'), 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("bench-check: recorded %d metrics from %s into %s\n", len(metrics), *benchPath, *basePath)
		return
	}

	baseRaw, err := os.ReadFile(*basePath)
	if err != nil {
		fail("baseline missing (record with -update): %v", err)
	}
	var base baseline
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		fail("parsing %s: %v", *basePath, err)
	}

	names := make(map[string]struct{}, len(metrics)+len(base.Metrics))
	for n := range metrics {
		names[n] = struct{}{}
	}
	for n := range base.Metrics {
		names[n] = struct{}{}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	drifted := 0
	for _, n := range sorted {
		got, haveGot := metrics[n]
		want, haveWant := base.Metrics[n]
		switch {
		case !haveWant:
			fmt.Fprintf(os.Stderr, "bench-check: new metric %s = %v not in baseline (refresh with -update)\n", n, got)
			drifted++
		case !haveGot:
			fmt.Fprintf(os.Stderr, "bench-check: baseline metric %s missing from %s (benchmark dropped?)\n", n, *benchPath)
			drifted++
		case math.Abs(got-want) > tolerance*math.Max(1, math.Abs(want)):
			fmt.Fprintf(os.Stderr, "bench-check: DRIFT %s: %v, baseline %v\n", n, got, want)
			drifted++
		}
	}
	if drifted > 0 {
		fail("%d deterministic metric(s) drifted vs %s — a semantic simulator change; update the baseline only if intended", drifted, *basePath)
	}
	fmt.Printf("bench-check: %s: %d deterministic metrics match %s\n", *benchPath, len(metrics), *basePath)
}
