// Command genpack-sim regenerates the paper's §VI energy claim: GenPack's
// generational scheduling versus the spread, random and first-fit
// baselines over a synthetic day of typical data-centre load on a
// 100-server cluster.
//
// Usage:
//
//	genpack-sim [-servers N] [-ticks N] [-arrivals RATE] [-seed S]
package main

import (
	"flag"
	"os"

	"securecloud/internal/genpack"
)

func main() {
	servers := flag.Int("servers", 100, "cluster size")
	ticks := flag.Int64("ticks", 1440, "simulation horizon in minutes")
	arrivals := flag.Float64("arrivals", 5.5, "mean container arrivals per minute")
	seed := flag.Int64("seed", 42, "trace seed")
	flag.Parse()

	traceCfg := genpack.DefaultTrace(*seed)
	traceCfg.Ticks = *ticks
	traceCfg.ArrivalsPerTick = *arrivals

	results := genpack.EnergyExperiment(genpack.ClusterConfig{Servers: *servers}, traceCfg)
	genpack.WriteResults(os.Stdout, results)
}
