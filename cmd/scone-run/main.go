// Command scone-run demonstrates the complete secure-container workflow
// of paper §V-A (Figure 2) from the command line: build a secure image,
// push it through an untrusted registry (optionally over HTTP), pull it on
// an untrusted SGX node, attest, inject the SCF, execute, and read the
// container's encrypted output. With -tamper, the registry corrupts the
// image after push, and the run must fail verification.
//
// Usage:
//
//	scone-run [-nodes N] [-http] [-tamper]
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/core"
	"securecloud/internal/fsshield"
	"securecloud/internal/image"
	"securecloud/internal/registry"
)

func main() {
	nodes := flag.Int("nodes", 2, "number of SGX nodes in the simulated cloud")
	useHTTP := flag.Bool("http", false, "push/pull the image over the registry's HTTP API")
	tamper := flag.Bool("tamper", false, "corrupt the image in the registry after push (must be detected)")
	flag.Parse()

	svc := attest.NewService()
	cloud, err := core.NewCloud(*nodes, svc)
	check(err)
	owner, err := core.NewOwner(svc)
	check(err)

	fmt.Println("[owner ] building secure image demo/scone-run:1.0")
	deployment, err := owner.Deploy(cloud, core.ServiceSpec{
		Name: "demo/scone-run",
		Tag:  "1.0",
		Code: []byte("SCONE-RUN-DEMO-BINARY"),
		Files: map[string][]byte{
			"/etc/secret.conf": []byte("api-key=SECRET-123"),
			"/etc/public.conf": []byte("log-level=info"),
		},
		Protect: map[string]fsshield.Mode{
			"/etc/secret.conf": fsshield.ModeEncrypted,
			"/etc/public.conf": fsshield.ModeIntegrityOnly,
		},
		Args: []string{"serve", "--port=8443"},
	})
	check(err)

	if *useHTTP {
		fmt.Println("[owner ] round-tripping image through the registry HTTP API")
		srv := httptest.NewServer(cloud.Registry.Handler())
		defer srv.Close()
		client := registry.NewClient(srv.URL)
		check(client.Push(deployment.Image))
		img, err := client.Pull("demo/scone-run", "1.0")
		check(err)
		check(img.Verify())
		fmt.Println("[cloud ] HTTP pull verified:", img.Ref())
	}

	if *tamper {
		fmt.Println("[attack] registry operator corrupts the entrypoint layer")
		cloud.Registry.TamperLayer(deployment.Image.Manifest.LayerDigests[0], func(l *image.Layer) {
			l.Files[container.EntrypointPath] = []byte("BACKDOORED")
		})
		_, err := cloud.Run(0, deployment, owner)
		if err == nil {
			fmt.Println("FATAL: tampered image executed")
			os.Exit(1)
		}
		fmt.Println("[cloud ] execution refused:", err)
		return
	}

	c, err := cloud.Run(0, deployment, owner)
	check(err)
	fmt.Printf("[cloud ] container %s running on %s (TCB %d MiB)\n",
		c.ID, cloud.Node(0).ID, c.Runtime.TCBBytes()>>20)

	secret, err := c.Runtime.FS().ReadFile("/etc/secret.conf")
	check(err)
	fmt.Println("[enclave] read protected config:", string(secret))

	check(c.Runtime.Stdout([]byte("listening on :8443")))
	lines, err := cloud.ReadStdout(0, deployment)
	check(err)
	for _, l := range lines {
		fmt.Println("[owner ] decrypted stdout:", string(l))
	}
	u := c.Usage()
	fmt.Printf("[billing] %v, %d syscalls, %d page faults, %d AEX\n",
		u.CPUCycles, u.Syscalls, u.PageFaults, u.AEX)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scone-run:", err)
		os.Exit(1)
	}
}
