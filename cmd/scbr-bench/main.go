// Command scbr-bench regenerates Figure 3 of the SecureCloud paper: the
// in/out-of-enclave ratios of SCBR registration time (left axis) and page
// faults (right axis) as the subscription database grows from below to
// well beyond the EPC capacity.
//
// Usage:
//
//	scbr-bench [-ops N] [-payload BYTES] [-points 60,80,...,220]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"securecloud/internal/enclave"
	"securecloud/internal/scbr"
	"securecloud/internal/sim"
)

func main() {
	ops := flag.Int("ops", 1500, "registrations measured per point")
	payload := flag.Int("payload", 2048, "routing-state bytes per subscription")
	points := flag.String("points", "60,80,100,120,140,160,180,200,220", "occupancy points in MB")
	seed := flag.Int64("seed", 42, "workload seed")
	faultCost := flag.Uint64("faultcost", 0,
		"override the EPC page-fault cost in cycles (0 = model default; published\n"+
			"measurements span ~40k-200k cycles; ~200k reproduces the paper's 18x)")
	jsonOut := flag.Bool("json", false, "emit results as JSON (points + wall-clock) instead of the table")
	parallel := flag.Int("parallel", 1,
		"run up to N occupancy points concurrently (each point is an independent\n"+
			"pair of simulated platforms, so values are bit-identical to -parallel 1;\n"+
			"only the wall clock changes)")
	flag.Parse()

	cfg := scbr.DefaultFigure3Config()
	cfg.MeasureOps = *ops
	cfg.PayloadBytes = *payload
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.OccupanciesMB = nil
	for _, s := range strings.Split(*points, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scbr-bench: bad point %q: %v\n", s, err)
			os.Exit(1)
		}
		cfg.OccupanciesMB = append(cfg.OccupanciesMB, v)
	}

	platform := enclave.DefaultConfig()
	if *faultCost > 0 {
		platform.Cost.EPCFault = sim.Cycles(*faultCost)
		cfg.Platform = platform
	}
	if !*jsonOut {
		fmt.Printf("platform: EPC %d MiB (%d MiB usable), LLC %d MiB, EPC fault %d cycles\n",
			platform.EPCBytes>>20,
			(platform.EPCBytes-platform.EPCReservedBytes)>>20,
			platform.LLCBytes>>20, platform.Cost.EPCFault)
	}

	start := time.Now()
	results, err := scbr.RunFigure3(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scbr-bench: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if *jsonOut {
		out := struct {
			WallClockSeconds float64             `json:"wall_clock_seconds"`
			MeasureOps       int                 `json:"measure_ops"`
			PayloadBytes     int                 `json:"payload_bytes"`
			Seed             int64               `json:"seed"`
			Parallel         int                 `json:"parallel"`
			Points           []scbr.Figure3Point `json:"points"`
		}{elapsed.Seconds(), cfg.MeasureOps, cfg.PayloadBytes, cfg.Seed, cfg.Parallel, results}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "scbr-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	scbr.WriteFigure3(os.Stdout, results)
	fmt.Printf("# sweep wall clock: %.2fs\n", elapsed.Seconds())
}
