// Command app-bench drives the application plane's closed-loop
// fault-injection scenarios end to end: a deterministic load schedule
// flows through an attested ReplicaSet while the orchestrator samples
// queue depths and service cycles each simulated millisecond and adapts.
//
// Two scenario families run. The four legacy scenarios (replica crash,
// load spike, hot-key skew, slow replica) exercise the orchestrator's
// scaling rules; the declarative lab matrix (overload, noisy-neighbor,
// cascade, slow-network, recovery) exercises tenant-aware admission
// control — token buckets, weighted-fair dequeue, shed-with-retry-after,
// hot-key splitting and client retry — and each lab spec carries its own
// assertion table, whose verdict is recorded in the JSON and gated by
// cmd/bench-check.
//
// Each scenario runs once per worker count (default 1,2,4,8). Worker count
// is execution-only, so the adaptation trace, the per-replica cycle totals
// and every deterministic metric must be bit-identical across the sweep —
// the command verifies this itself and reports trace_equal_across_workers;
// scripts/bench_check.sh fails CI if it is false or if any deterministic
// metric drifts from the committed baseline.
//
// The overload lab spec additionally runs a WithoutAdmission contrast arm:
// the same spike with the controller stripped. Admission on must bound the
// final backlog; admission off must let it grow past 8× that bound — the
// admission_contrast block records both figures and contrast_ok.
//
// Usage:
//
//	app-bench [-workers 1,2,4,8] [-ticks N] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"securecloud/internal/microsvc"
)

type scenarioOut struct {
	Name                    string   `json:"name"`
	Ticks                   int      `json:"ticks"`
	WorkerCounts            []int    `json:"worker_counts"`
	TraceEqualAcrossWorkers bool     `json:"trace_equal_across_workers"`
	TraceHash               string   `json:"trace_hash"`
	Trace                   []string `json:"trace"`

	Sent               int     `json:"sent"`
	Served             uint64  `json:"served"`
	Failed             uint64  `json:"failed"`
	Backlog            int     `json:"backlog"`
	Launched           int     `json:"replicas_launched"`
	FinalReplicas      int     `json:"final_replicas"`
	RequestsPerReplica float64 `json:"requests_per_replica"`

	SerialCycles   uint64  `json:"sim_cycles_serial"`
	CriticalCycles uint64  `json:"sim_cycles_critical"`
	SimSpeedup     float64 `json:"sim_speedup"`
	Faults         uint64  `json:"faults"`
	FrontCycles    uint64  `json:"sim_cycles_front"`

	InjectTick        int     `json:"inject_tick"`
	FirstReactionTick int     `json:"first_reaction_tick"`
	AdaptLatencySimMS float64 `json:"adapt_latency_sim_ms"`
	WallNS            int64   `json:"wall_ns"`
}

// labOut is one declarative lab scenario's record: the worker-sweep
// determinism verdict, the spec's own assertion verdict, and the full
// deterministic metric table (admission, retry and per-tenant figures
// included).
type labOut struct {
	Name                    string   `json:"name"`
	Ticks                   int      `json:"ticks"`
	WorkerCounts            []int    `json:"worker_counts"`
	TraceEqualAcrossWorkers bool     `json:"trace_equal_across_workers"`
	TraceHash               string   `json:"trace_hash"`
	AssertionsPassed        bool     `json:"assertions_passed"`
	AssertionFailures       []string `json:"assertion_failures,omitempty"`

	Served           uint64 `json:"served"`
	Shed             uint64 `json:"shed"`
	Splits           uint64 `json:"splits"`
	RetriesSent      uint64 `json:"retries_sent"`
	RetriesAbandoned uint64 `json:"retries_abandoned"`
	Backlog          int    `json:"backlog"`

	Metrics map[string]float64 `json:"metrics"`
	WallNS  int64              `json:"wall_ns"`
}

// contrastOut is the overload A/B: identical spike, admission on vs
// stripped (WithoutAdmission). ContrastOK is the robustness statement
// bench-check gates: with admission the backlog stays bounded, without it
// the backlog diverges.
type contrastOut struct {
	Scenario                string  `json:"scenario"`
	AdmissionBacklogFinal   float64 `json:"admission_backlog_final"`
	AdmissionShed           float64 `json:"admission_shed"`
	AdmissionMaxWaitSimMS   float64 `json:"admission_max_wait_sim_ms"`
	NoAdmissionBacklogFinal float64 `json:"noadmission_backlog_final"`
	NoAdmissionServed       float64 `json:"noadmission_served"`
	ContrastOK              bool    `json:"contrast_ok"`
}

func main() {
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts to sweep (execution-only)")
	ticks := flag.Int("ticks", 0, "override scenario tick count (0 = scenario default)")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "app-bench: "+format+"\n", args...)
		os.Exit(1)
	}

	var workerCounts []int
	for _, f := range strings.Split(*workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w <= 0 {
			fail("bad -workers value %q", f)
		}
		workerCounts = append(workerCounts, w)
	}
	if len(workerCounts) == 0 {
		fail("empty -workers sweep")
	}

	out := struct {
		Scenarios     []scenarioOut      `json:"scenarios"`
		Lab           []labOut           `json:"lab_scenarios"`
		Contrast      *contrastOut       `json:"admission_contrast,omitempty"`
		Deterministic map[string]float64 `json:"deterministic"`
	}{Deterministic: make(map[string]float64)}

	allEqual := true
	for _, sc := range microsvc.DefaultScenarios() {
		if *ticks > 0 {
			sc.Ticks = *ticks
		}
		var so scenarioOut
		var ref microsvc.ScenarioResult
		equal := true
		start := time.Now()
		for i, w := range workerCounts {
			sc.Workers = w
			res, err := microsvc.RunScenario(sc)
			if err != nil {
				fail("scenario %s workers=%d: %v", sc.Name, w, err)
			}
			if i == 0 {
				ref = res
				continue
			}
			if res.TraceHash != ref.TraceHash ||
				res.SerialCycles != ref.SerialCycles ||
				res.CriticalCycles != ref.CriticalCycles ||
				res.Faults != ref.Faults ||
				res.Served != ref.Served ||
				res.FrontCycles != ref.FrontCycles {
				equal = false
				fmt.Fprintf(os.Stderr,
					"app-bench: scenario %s NONDETERMINISTIC at workers=%d (trace %s vs %s, cycles %d vs %d)\n",
					sc.Name, w, res.TraceHash, ref.TraceHash, res.SerialCycles, ref.SerialCycles)
			}
		}
		so = scenarioOut{
			Name:                    ref.Name,
			Ticks:                   ref.Ticks,
			WorkerCounts:            workerCounts,
			TraceEqualAcrossWorkers: equal,
			TraceHash:               ref.TraceHash,
			Trace:                   ref.Trace,
			Sent:                    ref.Sent,
			Served:                  ref.Served,
			Failed:                  ref.Failed,
			Backlog:                 ref.Backlog,
			Launched:                ref.Launched,
			FinalReplicas:           ref.FinalReplicas,
			RequestsPerReplica:      ref.RequestsPerReplica,
			SerialCycles:            uint64(ref.SerialCycles),
			CriticalCycles:          uint64(ref.CriticalCycles),
			SimSpeedup:              ref.SimSpeedup,
			Faults:                  ref.Faults,
			FrontCycles:             uint64(ref.FrontCycles),
			InjectTick:              ref.InjectTick,
			FirstReactionTick:       ref.FirstReactionTick,
			AdaptLatencySimMS:       ref.AdaptLatencySimMS,
			WallNS:                  time.Since(start).Nanoseconds() / int64(len(workerCounts)),
		}
		out.Scenarios = append(out.Scenarios, so)
		allEqual = allEqual && equal

		p := func(metric string, v float64) {
			out.Deterministic[ref.Name+"_"+metric] = v
		}
		p("served", float64(ref.Served))
		p("failed", float64(ref.Failed))
		p("backlog", float64(ref.Backlog))
		p("replicas_launched", float64(ref.Launched))
		p("final_replicas", float64(ref.FinalReplicas))
		p("requests_per_replica", ref.RequestsPerReplica)
		p("sim_cycles_serial", float64(ref.SerialCycles))
		p("sim_cycles_critical", float64(ref.CriticalCycles))
		p("sim_cycles_front", float64(ref.FrontCycles))
		p("faults", float64(ref.Faults))
		p("trace_len", float64(len(ref.Trace)))
		p("first_reaction_tick", float64(ref.FirstReactionTick))
		p("adapt_latency_sim_ms", ref.AdaptLatencySimMS)
	}

	// Declarative lab matrix: every metric in the result table must be
	// bit-identical across the worker sweep, and every spec's assertion
	// table must pass. Both verdicts land in the JSON for bench-check.
	allAsserted := true
	var overloadRef microsvc.ScenarioResult
	for _, spec := range append(microsvc.LabScenarios(), microsvc.ClusterLabScenarios()...) {
		if *ticks > 0 {
			spec.Ticks = *ticks
		}
		var ref microsvc.ScenarioResult
		equal := true
		start := time.Now()
		for i, w := range workerCounts {
			spec.Workers = w
			res, err := microsvc.RunSpec(spec)
			if err != nil {
				fail("lab scenario %s workers=%d: %v", spec.Name, w, err)
			}
			if i == 0 {
				ref = res
				continue
			}
			if res.TraceHash != ref.TraceHash || !metricsEqual(res.Metrics, ref.Metrics) {
				equal = false
				fmt.Fprintf(os.Stderr,
					"app-bench: lab scenario %s NONDETERMINISTIC at workers=%d (trace %s vs %s)\n",
					spec.Name, w, res.TraceHash, ref.TraceHash)
			}
		}
		if spec.Name == "overload" {
			overloadRef = ref
		}
		out.Lab = append(out.Lab, labOut{
			Name:                    ref.Name,
			Ticks:                   ref.Ticks,
			WorkerCounts:            workerCounts,
			TraceEqualAcrossWorkers: equal,
			TraceHash:               ref.TraceHash,
			AssertionsPassed:        ref.AssertionsPassed,
			AssertionFailures:       ref.AssertionFailures,
			Served:                  ref.Served,
			Shed:                    ref.Shed,
			Splits:                  ref.Splits,
			RetriesSent:             ref.RetriesSent,
			RetriesAbandoned:        ref.RetriesAbandoned,
			Backlog:                 ref.Backlog,
			Metrics:                 ref.Metrics,
			WallNS:                  time.Since(start).Nanoseconds() / int64(len(workerCounts)),
		})
		allEqual = allEqual && equal
		allAsserted = allAsserted && ref.AssertionsPassed
		for _, f := range ref.AssertionFailures {
			fmt.Fprintf(os.Stderr, "app-bench: lab scenario %s ASSERTION FAILED: %s\n", ref.Name, f)
		}
		for m, v := range ref.Metrics {
			out.Deterministic["lab_"+ref.Name+"_"+m] = v
		}
		out.Deterministic["lab_"+ref.Name+"_assertions_passed"] = b2f(ref.AssertionsPassed)
	}

	// Contrast arm: the overload spike without the admission controller.
	// The run is deterministic, so one worker count suffices.
	if overloadRef.Name != "" && *ticks == 0 {
		for _, spec := range microsvc.LabScenarios() {
			if spec.Name != "overload" {
				continue
			}
			noadm := spec.WithoutAdmission()
			noadm.Workers = workerCounts[0]
			res, err := microsvc.RunSpec(noadm)
			if err != nil {
				fail("contrast arm %s: %v", noadm.Name, err)
			}
			admBacklog := overloadRef.Metrics["backlog_final"]
			noBacklog := res.Metrics["backlog_final"]
			c := &contrastOut{
				Scenario:                spec.Name,
				AdmissionBacklogFinal:   admBacklog,
				AdmissionShed:           overloadRef.Metrics["shed"],
				AdmissionMaxWaitSimMS:   overloadRef.Metrics["max_wait_sim_ms"],
				NoAdmissionBacklogFinal: noBacklog,
				NoAdmissionServed:       res.Metrics["served"],
				ContrastOK: overloadRef.Shed > 0 &&
					noBacklog >= 8*math.Max(1, admBacklog),
			}
			out.Contrast = c
			out.Deterministic["overload_noadm_backlog_final"] = noBacklog
			out.Deterministic["overload_noadm_served"] = res.Metrics["served"]
			out.Deterministic["overload_contrast_ok"] = b2f(c.ContrastOK)
			if !c.ContrastOK {
				fmt.Fprintf(os.Stderr,
					"app-bench: CONTRAST BROKEN: admission backlog %.0f vs no-admission backlog %.0f (shed %.0f)\n",
					admBacklog, noBacklog, overloadRef.Metrics["shed"])
			}
			allAsserted = allAsserted && c.ContrastOK
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail("%v", err)
		}
	} else {
		for _, so := range out.Scenarios {
			fmt.Printf("%-14s served=%-5d launched=%d final=%d req/replica=%.1f latency=%.1f sim-ms speedup=%.2fx det=%v\n",
				so.Name, so.Served, so.Launched, so.FinalReplicas,
				so.RequestsPerReplica, so.AdaptLatencySimMS, so.SimSpeedup,
				so.TraceEqualAcrossWorkers)
		}
		for _, lo := range out.Lab {
			fmt.Printf("lab:%-14s served=%-5d shed=%-5d splits=%-4d retries=%d/%d backlog=%d det=%v asserts=%v\n",
				lo.Name, lo.Served, lo.Shed, lo.Splits,
				lo.RetriesSent, lo.RetriesAbandoned, lo.Backlog,
				lo.TraceEqualAcrossWorkers, lo.AssertionsPassed)
		}
		if c := out.Contrast; c != nil {
			fmt.Printf("contrast:%s admission backlog=%.0f (shed=%.0f, max-wait=%.0f sim-ms) vs no-admission backlog=%.0f ok=%v\n",
				c.Scenario, c.AdmissionBacklogFinal, c.AdmissionShed,
				c.AdmissionMaxWaitSimMS, c.NoAdmissionBacklogFinal, c.ContrastOK)
		}
	}
	if !allEqual {
		fail("adaptation traces differ across worker counts")
	}
	if !allAsserted {
		fail("lab scenario assertions or the admission contrast failed")
	}
}

// metricsEqual reports whether two deterministic metric tables are
// bit-identical — same keys, same float64 values.
func metricsEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
