// Command app-bench drives the application plane's closed-loop
// fault-injection scenarios (replica crash, load spike, hot-key skew,
// slow replica) end to end: a deterministic load schedule flows through an
// attested ReplicaSet while the orchestrator samples queue depths and
// service cycles each simulated millisecond and adapts.
//
// Each scenario runs once per worker count (default 1,2,4,8). Worker count
// is execution-only, so the adaptation trace, the per-replica cycle totals
// and the fault counts must be bit-identical across the sweep — the
// command verifies this itself and reports trace_equal_across_workers;
// scripts/bench_check.sh fails CI if it is false or if any deterministic
// metric drifts from the committed baseline.
//
// Reported per scenario: requests per replica ever launched, the summed
// vs critical-path cycle decomposition across replica enclaves (the
// shard-per-core scaling statement), and the adaptation latency in
// simulated milliseconds from fault injection to the orchestrator's first
// reaction.
//
// Usage:
//
//	app-bench [-workers 1,2,4,8] [-ticks N] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"securecloud/internal/microsvc"
)

type scenarioOut struct {
	Name                    string   `json:"name"`
	Ticks                   int      `json:"ticks"`
	WorkerCounts            []int    `json:"worker_counts"`
	TraceEqualAcrossWorkers bool     `json:"trace_equal_across_workers"`
	TraceHash               string   `json:"trace_hash"`
	Trace                   []string `json:"trace"`

	Sent               int     `json:"sent"`
	Served             uint64  `json:"served"`
	Failed             uint64  `json:"failed"`
	Backlog            int     `json:"backlog"`
	Launched           int     `json:"replicas_launched"`
	FinalReplicas      int     `json:"final_replicas"`
	RequestsPerReplica float64 `json:"requests_per_replica"`

	SerialCycles   uint64  `json:"sim_cycles_serial"`
	CriticalCycles uint64  `json:"sim_cycles_critical"`
	SimSpeedup     float64 `json:"sim_speedup"`
	Faults         uint64  `json:"faults"`
	FrontCycles    uint64  `json:"sim_cycles_front"`

	InjectTick        int     `json:"inject_tick"`
	FirstReactionTick int     `json:"first_reaction_tick"`
	AdaptLatencySimMS float64 `json:"adapt_latency_sim_ms"`
	WallNS            int64   `json:"wall_ns"`
}

func main() {
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts to sweep (execution-only)")
	ticks := flag.Int("ticks", 0, "override scenario tick count (0 = scenario default)")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "app-bench: "+format+"\n", args...)
		os.Exit(1)
	}

	var workerCounts []int
	for _, f := range strings.Split(*workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w <= 0 {
			fail("bad -workers value %q", f)
		}
		workerCounts = append(workerCounts, w)
	}
	if len(workerCounts) == 0 {
		fail("empty -workers sweep")
	}

	out := struct {
		Scenarios     []scenarioOut      `json:"scenarios"`
		Deterministic map[string]float64 `json:"deterministic"`
	}{Deterministic: make(map[string]float64)}

	allEqual := true
	for _, sc := range microsvc.DefaultScenarios() {
		if *ticks > 0 {
			sc.Ticks = *ticks
		}
		var so scenarioOut
		var ref microsvc.ScenarioResult
		equal := true
		start := time.Now()
		for i, w := range workerCounts {
			sc.Workers = w
			res, err := microsvc.RunScenario(sc)
			if err != nil {
				fail("scenario %s workers=%d: %v", sc.Name, w, err)
			}
			if i == 0 {
				ref = res
				continue
			}
			if res.TraceHash != ref.TraceHash ||
				res.SerialCycles != ref.SerialCycles ||
				res.CriticalCycles != ref.CriticalCycles ||
				res.Faults != ref.Faults ||
				res.Served != ref.Served ||
				res.FrontCycles != ref.FrontCycles {
				equal = false
				fmt.Fprintf(os.Stderr,
					"app-bench: scenario %s NONDETERMINISTIC at workers=%d (trace %s vs %s, cycles %d vs %d)\n",
					sc.Name, w, res.TraceHash, ref.TraceHash, res.SerialCycles, ref.SerialCycles)
			}
		}
		so = scenarioOut{
			Name:                    ref.Name,
			Ticks:                   ref.Ticks,
			WorkerCounts:            workerCounts,
			TraceEqualAcrossWorkers: equal,
			TraceHash:               ref.TraceHash,
			Trace:                   ref.Trace,
			Sent:                    ref.Sent,
			Served:                  ref.Served,
			Failed:                  ref.Failed,
			Backlog:                 ref.Backlog,
			Launched:                ref.Launched,
			FinalReplicas:           ref.FinalReplicas,
			RequestsPerReplica:      ref.RequestsPerReplica,
			SerialCycles:            uint64(ref.SerialCycles),
			CriticalCycles:          uint64(ref.CriticalCycles),
			SimSpeedup:              ref.SimSpeedup,
			Faults:                  ref.Faults,
			FrontCycles:             uint64(ref.FrontCycles),
			InjectTick:              ref.InjectTick,
			FirstReactionTick:       ref.FirstReactionTick,
			AdaptLatencySimMS:       ref.AdaptLatencySimMS,
			WallNS:                  time.Since(start).Nanoseconds() / int64(len(workerCounts)),
		}
		out.Scenarios = append(out.Scenarios, so)
		allEqual = allEqual && equal

		p := func(metric string, v float64) {
			out.Deterministic[ref.Name+"_"+metric] = v
		}
		p("served", float64(ref.Served))
		p("failed", float64(ref.Failed))
		p("backlog", float64(ref.Backlog))
		p("replicas_launched", float64(ref.Launched))
		p("final_replicas", float64(ref.FinalReplicas))
		p("requests_per_replica", ref.RequestsPerReplica)
		p("sim_cycles_serial", float64(ref.SerialCycles))
		p("sim_cycles_critical", float64(ref.CriticalCycles))
		p("sim_cycles_front", float64(ref.FrontCycles))
		p("faults", float64(ref.Faults))
		p("trace_len", float64(len(ref.Trace)))
		p("first_reaction_tick", float64(ref.FirstReactionTick))
		p("adapt_latency_sim_ms", ref.AdaptLatencySimMS)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail("%v", err)
		}
	} else {
		for _, so := range out.Scenarios {
			fmt.Printf("%-14s served=%-5d launched=%d final=%d req/replica=%.1f latency=%.1f sim-ms speedup=%.2fx det=%v\n",
				so.Name, so.Served, so.Launched, so.FinalReplicas,
				so.RequestsPerReplica, so.AdaptLatencySimMS, so.SimSpeedup,
				so.TraceEqualAcrossWorkers)
		}
	}
	if !allEqual {
		fail("adaptation traces differ across worker counts")
	}
}
