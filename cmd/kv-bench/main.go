// Command kv-bench drives the sharded secure key/value store and the
// parallel secure map/reduce engine — the storage and compute analogues of
// the sharded SCBR broker — and reports both wall-clock (simulator speed)
// and simulated metrics (modeled costs).
//
// Two workloads run:
//
//  1. A batch key/value workload: PutBatch then GetBatch over a store that
//     exceeds each shard's EPC, reporting per-shard sim-cycle totals, the
//     serial-sum vs critical-path decomposition (the shard-per-core
//     scaling statement), and fault counts.
//  2. A smartgrid-billing end-to-end pipeline: a simulated metering fleet
//     streams readings into the sharded store in per-tick batches, the
//     full day is scanned back out, and per-feeder consumption is
//     aggregated by the parallel secure map/reduce engine with a sealed
//     shuffle.
//
// Every simulated metric is deterministic: shard and worker-enclave counts
// are topology parameters (pinned per run), execution parallelism never
// changes totals. The -json output's "deterministic" object is consumed by
// scripts/bench_check.sh to gate regressions in CI.
//
// Usage:
//
//	kv-bench [-records N] [-shards P] [-workers W] [-ticks T] [-meters M] [-json]
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/kvstore"
	"securecloud/internal/mapreduce"
	"securecloud/internal/sim"
	"securecloud/internal/smartgrid"
)

// shardPlatform is the shrunken per-shard platform: a 2 MiB EPC so the
// default workload is swap-bound — the regime where sharding matters.
func shardPlatform() enclave.Config {
	return enclave.Config{
		EPCBytes:         2 << 20,
		EPCReservedBytes: 512 << 10,
		LLCBytes:         256 << 10,
		LLCWays:          8,
		LineSize:         64,
		PageSize:         4096,
	}
}

// phase is the serial/critical decomposition of one batch phase across
// shards or workers.
type phase struct {
	WallNS        int64   `json:"wall_ns"`
	SerialCycles  uint64  `json:"sim_cycles_serial"`
	CritCycles    uint64  `json:"sim_cycles_critical"`
	SimSpeedup    float64 `json:"sim_speedup"`
	Faults        uint64  `json:"faults"`
	CyclesPerOp   float64 `json:"sim_cycles_per_op"`
	OpsInPhase    int     `json:"ops"`
	FaultsPerKOps float64 `json:"faults_per_kop"`
}

func decompose(before, after []sim.Cycles, faults uint64, ops int, wall time.Duration) phase {
	var sum, max uint64
	for i := range after {
		d := uint64(after[i] - before[i])
		sum += d
		if d > max {
			max = d
		}
	}
	sp := 1.0
	if max > 0 {
		sp = float64(sum) / float64(max)
	}
	p := phase{
		WallNS:       wall.Nanoseconds(),
		SerialCycles: sum,
		CritCycles:   max,
		SimSpeedup:   sp,
		Faults:       faults,
		OpsInPhase:   ops,
	}
	if ops > 0 {
		p.CyclesPerOp = float64(sum) / float64(ops)
		p.FaultsPerKOps = 1000 * float64(faults) / float64(ops)
	}
	return p
}

func main() {
	records := flag.Int("records", 16000, "records in the key/value workload")
	shards := flag.Int("shards", 4, "store shards (topology: pin when comparing runs)")
	workers := flag.Int("workers", 0, "batch fan-out workers (execution only; 0 = GOMAXPROCS)")
	mrWorkers := flag.Int("mr-workers", 4, "map/reduce worker enclaves (topology)")
	reducers := flag.Int("reducers", 8, "shuffle partitions")
	ticks := flag.Int64("ticks", 96, "smartgrid ticks ingested")
	meters := flag.Int("meters", 200, "smartgrid fleet size")
	seed := flag.Int64("seed", 42, "workload seed")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	out := struct {
		Config struct {
			Records   int   `json:"records"`
			Shards    int   `json:"shards"`
			MRWorkers int   `json:"mr_workers"`
			Reducers  int   `json:"reducers"`
			Ticks     int64 `json:"ticks"`
			Meters    int   `json:"meters"`
			Seed      int64 `json:"seed"`
		} `json:"config"`
		KV struct {
			Put              phase `json:"put"`
			Get              phase `json:"get"`
			ResultsMatch     bool  `json:"results_match_plain"`
			StoreFootprintMB int   `json:"store_records"`
		} `json:"kv"`
		Smartgrid struct {
			Ingest          phase   `json:"ingest"`
			Scan            phase   `json:"scan"`
			MapPhase        phase   `json:"map"`
			ReducePhase     phase   `json:"reduce"`
			Readings        int     `json:"readings"`
			Feeders         int     `json:"feeders"`
			TotalKWh        float64 `json:"total_kwh"`
			MapReduceWallNS int64   `json:"wall_ns_mapreduce"`
			WallNSTotals    int64   `json:"wall_ns_total"`
		} `json:"smartgrid_billing"`
		Deterministic map[string]float64 `json:"deterministic"`
	}{}
	out.Config.Records = *records
	out.Config.Shards = *shards
	out.Config.MRWorkers = *mrWorkers
	out.Config.Reducers = *reducers
	out.Config.Ticks = *ticks
	out.Config.Meters = *meters
	out.Config.Seed = *seed
	out.Deterministic = make(map[string]float64)

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "kv-bench: %v\n", err)
		os.Exit(1)
	}

	// ---- Workload 1: batch key/value over the sharded store ----
	var key cryptbox.Key
	key[0] = 0x5C
	ss, err := kvstore.NewShardedStore(key, kvstore.ShardedStoreConfig{
		Shards:     *shards,
		Workers:    *workers,
		Seed:       *seed,
		Accounted:  true,
		Platform:   shardPlatform(),
		ShardBytes: 32 << 20,
	})
	if err != nil {
		fail(err)
	}
	pairs := make([]kvstore.Pair, *records)
	rng := sim.NewRand(*seed)
	for i := range pairs {
		val := make([]byte, 200+(i%7)*40)
		rng.Read(val)
		pairs[i] = kvstore.Pair{Key: fmt.Sprintf("rec-%08d", (i*2654435761)%*records), Value: val}
	}
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = p.Key
	}

	before := ss.ShardCycles()
	f0 := ss.Faults()
	start := time.Now()
	if err := ss.PutBatch(pairs); err != nil {
		fail(err)
	}
	out.KV.Put = decompose(before, ss.ShardCycles(), ss.Faults()-f0, len(pairs), time.Since(start))

	before = ss.ShardCycles()
	f0 = ss.Faults()
	start = time.Now()
	got, err := ss.GetBatch(keys)
	if err != nil {
		fail(err)
	}
	out.KV.Get = decompose(before, ss.ShardCycles(), ss.Faults()-f0, len(keys), time.Since(start))
	out.KV.StoreFootprintMB = ss.Len()

	// Self-check against the sequential reference store.
	plain, err := kvstore.New(key, *seed)
	if err != nil {
		fail(err)
	}
	if err := plain.PutBatch(pairs); err != nil {
		fail(err)
	}
	want, err := plain.GetBatch(keys)
	if err != nil {
		fail(err)
	}
	out.KV.ResultsMatch = len(got) == len(want)
	for i := range got {
		if !out.KV.ResultsMatch {
			break
		}
		if string(got[i]) != string(want[i]) {
			out.KV.ResultsMatch = false
		}
	}

	out.Deterministic["kv_put_sim_cycles_serial"] = float64(out.KV.Put.SerialCycles)
	out.Deterministic["kv_put_sim_cycles_critical"] = float64(out.KV.Put.CritCycles)
	out.Deterministic["kv_put_faults"] = float64(out.KV.Put.Faults)
	out.Deterministic["kv_get_sim_cycles_serial"] = float64(out.KV.Get.SerialCycles)
	out.Deterministic["kv_get_sim_cycles_critical"] = float64(out.KV.Get.CritCycles)
	out.Deterministic["kv_get_faults"] = float64(out.KV.Get.Faults)

	// ---- Workload 2: smartgrid billing end to end ----
	e2eStart := time.Now()
	fleet := smartgrid.NewFleet(smartgrid.FleetConfig{
		Seed:            *seed,
		Meters:          *meters,
		MetersPerFeeder: 50,
		TicksPerDay:     288,
		BaseLoadKW:      0.8,
	})
	gridStore, err := kvstore.NewShardedStore(key, kvstore.ShardedStoreConfig{
		Shards:     *shards,
		Workers:    *workers,
		Seed:       *seed + 1,
		Accounted:  true,
		Platform:   shardPlatform(),
		ShardBytes: 32 << 20,
	})
	if err != nil {
		fail(err)
	}

	// Ingest: one PutBatch per tick — meters → kvstore.
	nReadings := 0
	before = gridStore.ShardCycles()
	f0 = gridStore.Faults()
	start = time.Now()
	for tick := int64(0); tick < *ticks; tick++ {
		readings, _ := fleet.Tick(tick)
		batch := make([]kvstore.Pair, len(readings))
		for i, r := range readings {
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], math.Float64bits(r.PowerKW))
			batch[i] = kvstore.Pair{
				Key:   fmt.Sprintf("%s|%s|%06d", r.Feeder, r.MeterID, tick),
				Value: v[:],
			}
		}
		nReadings += len(batch)
		if err := gridStore.PutBatch(batch); err != nil {
			fail(err)
		}
	}
	out.Smartgrid.Ingest = decompose(before, gridStore.ShardCycles(), gridStore.Faults()-f0, nReadings, time.Since(start))
	out.Smartgrid.Readings = nReadings

	// Scan the day back out of the store.
	before = gridStore.ShardCycles()
	f0 = gridStore.Faults()
	start = time.Now()
	day, err := gridStore.Range("", "")
	if err != nil {
		fail(err)
	}
	out.Smartgrid.Scan = decompose(before, gridStore.ShardCycles(), gridStore.Faults()-f0, len(day), time.Since(start))

	// Aggregate per-feeder consumption with the parallel secure engine.
	input := make([]mapreduce.KV, len(day))
	for i, p := range day {
		input[i] = mapreduce.KV{Key: p.Key, Value: p.Value}
	}
	var rootKey cryptbox.Key
	rootKey[0] = 0x77
	engine, err := mapreduce.NewParallelSecureEngine(rootKey, mapreduce.ParallelConfig{
		Workers:     *mrWorkers,
		Platform:    shardPlatform(),
		WorkerBytes: 16 << 20,
	})
	if err != nil {
		fail(err)
	}
	defer engine.Close()
	const hoursPerTick = 24.0 / 288
	job := mapreduce.Job{
		Name:  "feeder-billing",
		Input: input,
		Map: func(key string, value []byte, emit func(string, []byte)) {
			feeder := key[:strings.IndexByte(key, '|')]
			emit(feeder, value)
		},
		Reduce: func(key string, values [][]byte) ([]byte, error) {
			var kwh float64
			for _, v := range values {
				kwh += math.Float64frombits(binary.LittleEndian.Uint64(v)) * hoursPerTick
			}
			var outv [8]byte
			binary.LittleEndian.PutUint64(outv[:], math.Float64bits(kwh))
			return outv[:], nil
		},
		Reducers: *reducers,
	}
	start = time.Now()
	totals, err := engine.Run(job)
	if err != nil {
		fail(err)
	}
	out.Smartgrid.MapReduceWallNS = time.Since(start).Nanoseconds()
	st := engine.Stats()
	out.Smartgrid.MapPhase = phase{
		SerialCycles: uint64(st.MapSerialCycles),
		CritCycles:   uint64(st.MapCriticalCycles),
		SimSpeedup:   st.MapSpeedup(),
		Faults:       st.MapFaults,
		OpsInPhase:   len(input),
	}
	out.Smartgrid.ReducePhase = phase{
		SerialCycles: uint64(st.ReduceSerialCycles),
		CritCycles:   uint64(st.ReduceCriticalCycles),
		SimSpeedup:   st.ReduceSpeedup(),
		Faults:       st.ReduceFaults,
		OpsInPhase:   len(totals),
	}
	out.Smartgrid.Feeders = len(totals)
	feeders := make([]string, 0, len(totals))
	for f := range totals {
		feeders = append(feeders, f)
	}
	sort.Strings(feeders)
	for _, f := range feeders {
		out.Smartgrid.TotalKWh += math.Float64frombits(binary.LittleEndian.Uint64(totals[f]))
	}
	out.Smartgrid.WallNSTotals = time.Since(e2eStart).Nanoseconds()

	out.Deterministic["grid_ingest_sim_cycles_serial"] = float64(out.Smartgrid.Ingest.SerialCycles)
	out.Deterministic["grid_ingest_faults"] = float64(out.Smartgrid.Ingest.Faults)
	out.Deterministic["grid_scan_sim_cycles_serial"] = float64(out.Smartgrid.Scan.SerialCycles)
	out.Deterministic["grid_map_sim_cycles_serial"] = float64(st.MapSerialCycles)
	out.Deterministic["grid_map_sim_cycles_critical"] = float64(st.MapCriticalCycles)
	out.Deterministic["grid_reduce_sim_cycles_serial"] = float64(st.ReduceSerialCycles)
	out.Deterministic["grid_reduce_sim_cycles_critical"] = float64(st.ReduceCriticalCycles)
	out.Deterministic["grid_map_faults"] = float64(st.MapFaults)
	out.Deterministic["grid_reduce_faults"] = float64(st.ReduceFaults)
	out.Deterministic["grid_total_kwh"] = math.Round(out.Smartgrid.TotalKWh*1e6) / 1e6

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("kv: %d records across %d shards\n", len(pairs), *shards)
	fmt.Printf("  put: %d sim-cycles serial, %d critical (%.2fx shard-per-core), %d faults, %.1fms wall\n",
		out.KV.Put.SerialCycles, out.KV.Put.CritCycles, out.KV.Put.SimSpeedup,
		out.KV.Put.Faults, float64(out.KV.Put.WallNS)/1e6)
	fmt.Printf("  get: %d sim-cycles serial, %d critical (%.2fx), %d faults, %.1fms wall\n",
		out.KV.Get.SerialCycles, out.KV.Get.CritCycles, out.KV.Get.SimSpeedup,
		out.KV.Get.Faults, float64(out.KV.Get.WallNS)/1e6)
	fmt.Printf("  results match sequential store: %v\n", out.KV.ResultsMatch)
	fmt.Printf("smartgrid billing: %d readings, %d feeders, %.3f kWh total\n",
		out.Smartgrid.Readings, out.Smartgrid.Feeders, out.Smartgrid.TotalKWh)
	fmt.Printf("  ingest: %d sim-cycles (%.2fx), %d faults\n",
		out.Smartgrid.Ingest.SerialCycles, out.Smartgrid.Ingest.SimSpeedup, out.Smartgrid.Ingest.Faults)
	fmt.Printf("  map:    %d sim-cycles serial, %d critical (%.2fx enclave-per-worker)\n",
		out.Smartgrid.MapPhase.SerialCycles, out.Smartgrid.MapPhase.CritCycles, out.Smartgrid.MapPhase.SimSpeedup)
	fmt.Printf("  reduce: %d sim-cycles serial, %d critical (%.2fx)\n",
		out.Smartgrid.ReducePhase.SerialCycles, out.Smartgrid.ReducePhase.CritCycles, out.Smartgrid.ReducePhase.SimSpeedup)
	fmt.Printf("  end-to-end wall: %.1fms\n", float64(out.Smartgrid.WallNSTotals)/1e6)
}
