#!/usr/bin/env bash
# wire_timing.sh — the HTTP-tax measurement: per-request round-trip latency
# through the wire front end's HTTP PlaneTransport vs an in-process
# PlaneClient on the event bus, across payload sizes, one request in flight
# at a time. Everything it prints is wall-clock (it measures the host's
# loopback stack and JSON/HTTP overhead), so the output is informational
# only — folded into BENCH_<n>.json as "wire_timing" but never gated by
# bench-check. Run from the repo root:
#
#   scripts/wire_timing.sh [requests]
#
# requests sets the sample count per transport per payload size (default
# 200).
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${1:-200}"
exec go run ./cmd/wire-bench -timing -timing-requests "$REQUESTS" -json
