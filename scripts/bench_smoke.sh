#!/usr/bin/env bash
# bench_smoke.sh — the per-PR performance smoke: a reduced Figure 3 sweep
# through cmd/scbr-bench plus the CacheMissVsSwap benchmark, folded into one
# BENCH_<n>.json recording wall-clock (simulator speed) next to sim-cycle
# metrics (modeled costs). Run from the repo root:
#
#   scripts/bench_smoke.sh [N]
#
# N selects the output file BENCH_N.json (default 1). The sweep is reduced
# (3 points, 200 ops) so the smoke finishes in well under a minute; the
# full-fidelity nine-point sweep remains `go run ./cmd/scbr-bench`.
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-1}"
OUT="BENCH_${N}.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "bench-smoke: reduced Figure 3 sweep (60,120,200 MB @ 200 ops)" >&2
go run ./cmd/scbr-bench -ops 200 -points 60,120,200 -payload 1200 -json \
    >"$TMP/sweep.json"

# The same sweep with points fanned across goroutines: values must be
# bit-identical (independent twin platforms per point); only wall clock
# may differ — on multicore hosts it shrinks toward 1/3.
echo "bench-smoke: parallel Figure 3 sweep (-parallel 3)" >&2
go run ./cmd/scbr-bench -ops 200 -points 60,120,200 -payload 1200 -json \
    -parallel 3 >"$TMP/sweep_par.json"

# Sharded KV store + parallel secure map/reduce, including the smartgrid
# billing end-to-end pipeline. All sim metrics in its "deterministic"
# object are gated by scripts/bench_check.sh.
echo "bench-smoke: kv-bench (sharded store + parallel map/reduce + smartgrid billing)" >&2
go run ./cmd/kv-bench -json >"$TMP/kv.json"

# Application plane: the four closed-loop fault-injection scenarios
# (crash, load spike, hot-key skew, slow replica) plus the declarative
# admission lab (overload, noisy-neighbor, cascade, slow-network,
# recovery, crash-state, key-revocation, delta-durability), the simulated multi-node
# cluster lab (node-crash, node-partition, byzantine-registry — placement
# locality, partition fail-closed and cache-poisoning tripwires) and the
# overload admission-on/off contrast arm, each swept across worker counts
# 1,2,4,8. The driver itself asserts that adaptation traces, cycle totals
# and every lab metric — including the per-node cluster figures — are
# bit-identical across the sweep and that each lab spec's assertion table
# passes; the deterministic metrics, assertion verdicts and the contrast
# flag are gated by scripts/bench_check.sh.
echo "bench-smoke: app-bench (orchestrated replica-set scenarios + admission & cluster labs, workers 1,2,4,8)" >&2
go run ./cmd/app-bench -json >"$TMP/app.json"

# Content-addressed data plane: chunk-granular registry push with dedup,
# then cold / shared-base / warm pulls through the node blob cache, swept
# across pull worker counts 1,2,4,8. The driver itself asserts that all
# simulated metrics are bit-identical across the sweep and that the warm
# (second-replica) pull fetches zero chunks; the deterministic metrics are
# gated by scripts/bench_check.sh.
echo "bench-smoke: pull-bench (chunk registry + parallel verified pulls, workers 1,2,4,8)" >&2
go run ./cmd/pull-bench -json >"$TMP/pull.json"

# Wire front end: the seeded closed-loop HTTP workload (warmup / inject /
# recover through an admission-controlled plane, plus SCBR over HTTP) run
# twice on fresh stacks. All counters in its "deterministic" object —
# including runs_equal — are gated by scripts/bench_check.sh; the latency
# quantiles in "wallclock" measure the host and are informational.
echo "bench-smoke: wire-bench (HTTP plane + SCBR closed-loop load, run twice)" >&2
go run ./cmd/wire-bench -json >"$TMP/wire.json"

# HTTP-vs-in-process timing: the same plane probed one request at a time
# through the HTTP PlaneTransport and an in-process bus client, across
# payload sizes. Pure wall-clock (it measures the host's loopback stack),
# so the whole section is informational — never gated.
echo "bench-smoke: wire-bench -timing (HTTP vs in-process per-request latency)" >&2
go run ./cmd/wire-bench -timing -timing-requests 100 -json >"$TMP/wire_timing.json"

# Delta durability: incremental snapshot vs full-snapshot baseline, warm
# delta recovery vs cold recovery, WAL-segment GC — swept across worker
# counts 1,2,4,8. The driver itself asserts worker invariance and that the
# delta strictly beats the baseline in chunks, cycles and fetches; the
# "deterministic" object is gated by scripts/bench_check.sh.
echo "bench-smoke: durability-bench (delta snapshots + warm recovery + WAL GC, workers 1,2,4,8)" >&2
go run ./cmd/durability-bench -json >"$TMP/durability.json"

echo "bench-smoke: go test -bench=CacheMissVsSwap -benchtime=1x" >&2
go test -run '^$' -bench 'CacheMissVsSwap' -benchtime=1x . >"$TMP/bench.txt" 2>&1 \
    || { cat "$TMP/bench.txt" >&2; exit 1; }

# Parallel broker throughput at GOMAXPROCS 1 and 4. The simulated metrics
# (sim-cycles/match, faults/match, sim-speedup) are deterministic and must
# be identical across -cpu settings; wall-clock ns/op additionally shows
# host scaling when the machine has real cores to offer.
echo "bench-smoke: go test -bench=BrokerPublishParallel -cpu 1,4" >&2
go test -run '^$' -bench 'BrokerPublishParallel' -benchtime 2000x -cpu 1,4 \
    ./internal/scbr >"$TMP/par.txt" 2>&1 \
    || { cat "$TMP/par.txt" >&2; exit 1; }

awk '
/^BenchmarkBrokerPublishParallel/ {
    cpus=1
    if (match($1, /-[0-9]+$/)) cpus = substr($1, RSTART+1)
    ns=""; faults=""; cycles=""; crit=""; speedup=""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "faults/match") faults = $i
        if ($(i+1) == "sim-cycles/match") cycles = $i
        if ($(i+1) == "sim-critical-cycles/match") crit = $i
        if ($(i+1) == "sim-speedup") speedup = $i
    }
    printf "%s{\"gomaxprocs\":%s,\"wall_ns_per_publish\":%s,\"faults_per_match\":%s,\"sim_cycles_per_match\":%s,\"sim_critical_cycles_per_match\":%s,\"sim_speedup\":%s}", sep, cpus, ns, faults, cycles, crit, speedup
    sep=","
}
BEGIN { printf "[" } END { printf "]" }
' "$TMP/par.txt" >"$TMP/par.json"

# Fold `store=NMB  iters  X ns/op  F faults/match  C sim-cycles/match` lines
# into JSON objects.
awk '
/^BenchmarkCacheMissVsSwap/ {
    name=$1; sub(/^BenchmarkCacheMissVsSwap\//, "", name); sub(/-[0-9]+$/, "", name)
    ns=""; faults=""; cycles=""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "faults/match") faults = $i
        if ($(i+1) == "sim-cycles/match") cycles = $i
    }
    printf "%s{\"case\":\"%s\",\"wall_ns_per_op\":%s,\"faults_per_match\":%s,\"sim_cycles_per_match\":%s}", sep, name, ns, faults, cycles
    sep=","
}
BEGIN { printf "[" } END { printf "]" }
' "$TMP/bench.txt" >"$TMP/cachemiss.json"

# scripts/seed_baseline.json (committed) records the pre-optimization seed
# measurements this trajectory is judged against; embed it when present.
SEED_BASELINE="scripts/seed_baseline.json"
{
    echo "{"
    echo "  \"generated_by\": \"scripts/bench_smoke.sh\","
    echo "  \"date_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"go_version\": \"$(go env GOVERSION)\","
    if [ -f "$SEED_BASELINE" ]; then
        echo "  \"seed_baseline\": $(cat "$SEED_BASELINE"),"
    fi
    echo "  \"host_cpus\": $(nproc),"
    echo "  \"kv_bench\": $(cat "$TMP/kv.json"),"
    echo "  \"app_bench\": $(cat "$TMP/app.json"),"
    echo "  \"pull_bench\": $(cat "$TMP/pull.json"),"
    echo "  \"wire_bench\": $(cat "$TMP/wire.json"),"
    echo "  \"wire_timing\": $(cat "$TMP/wire_timing.json"),"
    echo "  \"durability_bench\": $(cat "$TMP/durability.json"),"
    echo "  \"cache_miss_vs_swap\": $(cat "$TMP/cachemiss.json"),"
    echo "  \"broker_publish_parallel\": $(cat "$TMP/par.json"),"
    echo "  \"figure3_reduced_sweep\": $(cat "$TMP/sweep.json"),"
    echo "  \"figure3_reduced_sweep_parallel\": $(cat "$TMP/sweep_par.json")"
    echo "}"
} >"$OUT"

echo "bench-smoke: wrote $OUT" >&2
