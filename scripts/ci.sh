#!/usr/bin/env bash
# ci.sh — the per-PR verification gate, runnable locally or in CI (the
# .github/workflows/ci.yml workflow invokes exactly this script):
#
#   scripts/ci.sh
#
# 1. gofmt -l                   (formatting)
# 2. go build ./...             (everything compiles, including examples)
# 3. go vet ./...               (static checks)
# 4. go test ./...              (tier-1: full test suite, goldens included)
# 5. go test -race <concurrent packages>
#                               (the packages with lock-free fast paths,
#                                the sharded broker, the sharded store,
#                                the parallel map/reduce engine, the
#                                application plane: attest/microsvc/
#                                orchestrator, the data plane:
#                                transfer/registry/container, and the
#                                protected-file + shielded-syscall layer
#                                now on the durable WAL/snapshot path:
#                                fsshield/shield/sconert)
# 6. bench-regression gate      (deterministic sim-metrics in the newest
#                                BENCH_N.json must match the committed
#                                baseline — see scripts/bench_check.sh)
# 7. golden-drift gate          (regenerating every golden in a scratch
#                                copy must reproduce the committed files —
#                                catches stale goldens)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "ci: gofmt -l" >&2
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "ci: gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "ci: go build ./..." >&2
go build ./...

echo "ci: go vet ./..." >&2
go vet ./...

echo "ci: go test ./..." >&2
go test ./...

RACE_PKGS=(
    ./internal/sim
    ./internal/enclave
    ./internal/scbr
    ./internal/eventbus
    ./internal/cryptbox
    ./internal/kvstore
    ./internal/mapreduce
    ./internal/attest
    ./internal/microsvc
    ./internal/cluster
    ./internal/orchestrator
    ./internal/transfer
    ./internal/registry
    ./internal/container
    ./internal/fsshield
    ./internal/shield
    ./internal/sconert
    ./internal/httpx
    ./internal/wire
    ./internal/loadgen
)
echo "ci: go test -race ${RACE_PKGS[*]}" >&2
go test -race "${RACE_PKGS[@]}"

echo "ci: bench-regression gate" >&2
scripts/bench_check.sh

# Golden-drift gate: rerun every golden recorder with GOLDEN_UPDATE=1 in a
# scratch copy of the tree and require `git diff --exit-code` to stay
# silent on testdata — i.e. the committed goldens are exactly what the
# current code regenerates. The scratch copy commits the working tree
# first so the diff isolates what GOLDEN_UPDATE changed, not what the
# developer was editing.
echo "ci: golden-drift gate (GOLDEN_UPDATE=1 in scratch copy)" >&2
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
cp -a "$PWD" "$SCRATCH/repo"
(
    cd "$SCRATCH/repo"
    git add -A >/dev/null 2>&1
    git -c user.email=ci@local -c user.name=ci commit -qm golden-gate-baseline --allow-empty --no-verify
    GOLDEN_UPDATE=1 go test -run 'Golden' ./internal/enclave ./internal/scbr >/dev/null
    if ! git diff --exit-code -- '*testdata*'; then
        echo "ci: goldens are stale — regenerate with GOLDEN_UPDATE=1 and commit" >&2
        exit 1
    fi
)

echo "ci: OK" >&2
