#!/usr/bin/env bash
# ci.sh — the per-PR verification gate, runnable locally or in CI:
#
#   scripts/ci.sh
#
# 1. go build ./...            (everything compiles, including examples)
# 2. go vet ./...              (static checks)
# 3. go test ./...             (tier-1: full test suite, goldens included)
# 4. go test -race <concurrent packages>
#                              (the packages with lock-free fast paths and
#                               the sharded broker's concurrent pipeline)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "ci: go build ./..." >&2
go build ./...

echo "ci: go vet ./..." >&2
go vet ./...

echo "ci: go test ./..." >&2
go test ./...

RACE_PKGS=(
    ./internal/sim
    ./internal/enclave
    ./internal/scbr
    ./internal/eventbus
    ./internal/cryptbox
)
echo "ci: go test -race ${RACE_PKGS[*]}" >&2
go test -race "${RACE_PKGS[@]}"

echo "ci: OK" >&2
