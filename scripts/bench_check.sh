#!/usr/bin/env bash
# bench_check.sh — the bench-regression gate, wired into scripts/ci.sh.
#
# Parses the newest committed BENCH_N.json and fails if any deterministic
# sim-metric (sim-cycles/match, faults/match, figure values, kv-bench and
# map/reduce cycle totals) drifts from scripts/bench_baseline.json. The
# deterministic metrics are pure functions of workload + cost model, so a
# drift is a semantic simulator change, never measurement noise.
#
#   scripts/bench_check.sh            # gate (CI mode)
#   scripts/bench_check.sh -update    # deliberately refresh the baseline
set -euo pipefail
cd "$(dirname "$0")/.."

if ! ls BENCH_*.json >/dev/null 2>&1; then
    echo "bench-check: no BENCH_N.json committed yet; nothing to gate" >&2
    exit 0
fi
go run ./cmd/bench-check "$@"
