// Benchmarks regenerating every quantitative statement of the SecureCloud
// paper (DATE '17). Each benchmark reports the simulated-cycle metrics the
// corresponding figure/claim is about. Wall-clock ns/op measures the
// simulator itself — with the batched accounting fast path (see the "cost
// model & performance" section in doc.go) it is tracked per PR by
// scripts/bench_smoke.sh as the simulator-speed trajectory.
//
// Full-fidelity sweeps (all nine x-axis points of Figure 3, full ops) run
// via the cmd/ tools; the benchmarks use reduced but shape-preserving
// configurations so `go test -bench=.` finishes in minutes.
package securecloud_test

import (
	"fmt"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/core"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/fsshield"
	"securecloud/internal/genpack"
	"securecloud/internal/mapreduce"
	"securecloud/internal/scbr"
	"securecloud/internal/sconert"
	"securecloud/internal/shield"
)

// BenchmarkFigure3Registration regenerates Figure 3 (both axes): the
// in/out-of-enclave ratio of SCBR registration cost and page faults as the
// subscription store grows past the EPC. Reported metrics per occupancy:
// time-ratio (left axis) and fault-ratio (right axis, paper plots ×10³).
func BenchmarkFigure3Registration(b *testing.B) {
	for _, mb := range []float64{60, 120, 200} {
		b.Run(fmt.Sprintf("occupancy=%.0fMB", mb), func(b *testing.B) {
			cfg := scbr.DefaultFigure3Config()
			cfg.OccupanciesMB = []float64{mb}
			cfg.MeasureOps = 400
			for i := 0; i < b.N; i++ {
				points, err := scbr.RunFigure3(cfg)
				if err != nil {
					b.Fatal(err)
				}
				p := points[0]
				b.ReportMetric(p.TimeRatio, "time-ratio")
				b.ReportMetric(p.FaultRatio, "fault-ratio")
				b.ReportMetric(p.InsideCyclesPerOp, "in-cycles/op")
				b.ReportMetric(p.OutsideCyclesPerOp, "out-cycles/op")
			}
		})
	}
}

// buildIndexOnEnclave populates an SCBR index of the target size on a
// fresh enclave and returns it with its workload generator.
func buildIndexOnEnclave(b *testing.B, targetMB int) (*scbr.Index, *scbr.Workload, *enclave.Enclave) {
	b.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	enc, err := p.ECreate(uint64(targetMB+32)<<20, signer)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("scbr")); err != nil {
		b.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		b.Fatal(err)
	}
	arena, err := enc.HeapArena()
	if err != nil {
		b.Fatal(err)
	}
	ix := scbr.NewIndex(scbr.IndexConfig{
		Mem: enc.Memory(), Arena: arena, PayloadBytes: 1200, CheckCost: 450,
	})
	w := scbr.NewWorkload(scbr.DefaultWorkload(42))
	for ix.MemoryBytes() < int64(targetMB)<<20 {
		ix.Insert(w.NextSubscription())
	}
	return ix, w, enc
}

// BenchmarkCacheMissVsSwap reproduces the §V-B observation that cache
// misses impose limited overhead while EPC swapping is catastrophic:
// matching cost per publication with the store resident (40 MB, cache-miss
// bound) versus beyond the EPC (200 MB, swap bound).
func BenchmarkCacheMissVsSwap(b *testing.B) {
	for _, mb := range []int{40, 200} {
		b.Run(fmt.Sprintf("store=%dMB", mb), func(b *testing.B) {
			ix, w, enc := buildIndexOnEnclave(b, mb)
			events := make([]scbr.Event, 256)
			for i := range events {
				events[i] = w.NextEvent()
			}
			enc.Memory().ResetAccounting()
			start := enc.Memory().Cycles()
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Match(events[i%len(events)])
				n++
			}
			b.StopTimer()
			cycles := float64(enc.Memory().Cycles()-start) / float64(n)
			b.ReportMetric(cycles, "sim-cycles/match")
			b.ReportMetric(float64(enc.Memory().Faults())/float64(n), "faults/match")
		})
	}
}

// BenchmarkSCBRMatchContainmentVsNaive is the containment-index ablation:
// "a reduced number of comparisons is required whenever a message must be
// matched" (§V-B).
func BenchmarkSCBRMatchContainmentVsNaive(b *testing.B) {
	ix := scbr.NewIndex(scbr.IndexConfig{})
	w := scbr.NewWorkload(scbr.DefaultWorkload(7))
	for i := 0; i < 30000; i++ {
		ix.Insert(w.NextSubscription())
	}
	events := make([]scbr.Event, 128)
	for i := range events {
		events[i] = w.NextEvent()
	}
	b.Run("containment", func(b *testing.B) {
		start := ix.Checks()
		n := 0
		for i := 0; i < b.N; i++ {
			ix.Match(events[i%len(events)])
			n++
		}
		b.ReportMetric(float64(ix.Checks()-start)/float64(n), "comparisons/match")
	})
	b.Run("naive", func(b *testing.B) {
		start := ix.Checks()
		n := 0
		for i := 0; i < b.N; i++ {
			ix.MatchNaive(events[i%len(events)])
			n++
		}
		b.ReportMetric(float64(ix.Checks()-start)/float64(n), "comparisons/match")
	})
}

// BenchmarkSyscallSyncVsAsync reproduces the SCONE design point (§IV):
// the asynchronous shielded syscall interface avoids the enclave world
// switch that the synchronous path pays on every call.
func BenchmarkSyscallSyncVsAsync(b *testing.B) {
	for _, mode := range []shield.CallMode{shield.ModeSync, shield.ModeAsync} {
		b.Run(mode.String(), func(b *testing.B) {
			p := enclave.NewPlatform(enclave.Config{})
			var signer cryptbox.Digest
			enc, err := p.ECreate(1<<20, signer)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := enc.EAdd([]byte("svc")); err != nil {
				b.Fatal(err)
			}
			if err := enc.EInit(); err != nil {
				b.Fatal(err)
			}
			s := shield.New(enc, shield.NewHost(), mode)
			fd, err := s.Open("/bench", nil)
			if err != nil {
				b.Fatal(err)
			}
			payload := []byte("8-byte..")
			enc.Memory().ResetAccounting()
			start := enc.Memory().Cycles()
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Write(fd, payload); err != nil {
					b.Fatal(err)
				}
				n++
			}
			b.StopTimer()
			b.ReportMetric(float64(enc.Memory().Cycles()-start)/float64(n), "sim-cycles/syscall")
		})
	}
}

// BenchmarkSchedulerAmortisation is the SCONE user-level-threading
// ablation: M tasks on N TCS pay N world switches instead of M.
func BenchmarkSchedulerAmortisation(b *testing.B) {
	run := func(b *testing.B, perTask bool) {
		p := enclave.NewPlatform(enclave.Config{})
		var signer cryptbox.Digest
		enc, _ := p.ECreate(1<<20, signer)
		_, _ = enc.EAdd([]byte("svc"))
		_ = enc.EInit()
		const tasks = 256
		start := enc.Memory().Cycles()
		n := 0
		for i := 0; i < b.N; i++ {
			if perTask {
				for t := 0; t < tasks; t++ {
					_ = enc.EEnter()
					_ = enc.EExit()
				}
			} else {
				sched := sconert.NewScheduler(enc, 4)
				for t := 0; t < tasks; t++ {
					sched.Go(func() {})
				}
				if err := sched.Run(); err != nil {
					b.Fatal(err)
				}
			}
			n += tasks
		}
		b.ReportMetric(float64(enc.Memory().Cycles()-start)/float64(n), "sim-cycles/task")
	}
	b.Run("enter-per-task", func(b *testing.B) { run(b, true) })
	b.Run("user-level-mxn", func(b *testing.B) { run(b, false) })
}

// BenchmarkGenPackEnergy regenerates the §VI claim: up to 23% energy
// savings for typical data-centre workloads versus a conventional spread
// deployment.
func BenchmarkGenPackEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := genpack.EnergyExperiment(genpack.ClusterConfig{Servers: 100}, genpack.DefaultTrace(42))
		var gp, sp genpack.Result
		for _, r := range results {
			switch r.Policy {
			case "genpack":
				gp = r
			case "spread":
				sp = r
			}
		}
		b.ReportMetric(100*genpack.Savings(gp, sp), "savings-%")
		b.ReportMetric(gp.EnergyWh, "genpack-Wh")
		b.ReportMetric(sp.EnergyWh, "spread-Wh")
	}
}

// BenchmarkGenPackMonitorAblation isolates GenPack's runtime-monitoring
// design choice: the same generational scheduler with and without the
// nursery profiling that tightens reservations to observed usage.
func BenchmarkGenPackMonitorAblation(b *testing.B) {
	run := func(b *testing.B, monitored bool) {
		for i := 0; i < b.N; i++ {
			cfg := genpack.DefaultTrace(42)
			sched := genpack.NewGenPack()
			if !monitored {
				sched.Monitor = nil
			}
			cl := genpack.NewCluster(genpack.ClusterConfig{Servers: 100})
			res := genpack.Simulate(cl, sched, genpack.GenerateTrace(cfg), cfg.Ticks)
			b.ReportMetric(res.EnergyWh, "Wh")
			b.ReportMetric(res.MeanServers, "mean-servers-on")
			b.ReportMetric(float64(res.Violations), "violations")
		}
	}
	b.Run("monitored", func(b *testing.B) { run(b, true) })
	b.Run("declared-demand", func(b *testing.B) { run(b, false) })
}

// BenchmarkSecureContainerBoot measures the Figure 2 startup path: pull,
// verify, build enclave, attest, SCF injection.
func BenchmarkSecureContainerBoot(b *testing.B) {
	svc := attest.NewService()
	cloud, err := core.NewCloud(1, svc)
	if err != nil {
		b.Fatal(err)
	}
	owner, err := core.NewOwner(svc)
	if err != nil {
		b.Fatal(err)
	}
	d, err := owner.Deploy(cloud, core.ServiceSpec{
		Name: "bench/boot", Code: []byte("BENCH-BINARY"),
		Files:   map[string][]byte{"/etc/cfg": []byte("x=1")},
		Protect: map[string]fsshield.Mode{"/etc/cfg": fsshield.ModeEncrypted},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := cloud.Run(0, d, owner)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Stop()
		b.StartTimer()
	}
}

// BenchmarkSecureMapReduceOverhead compares the secure engine (enclave
// workers + sealed shuffle) against the plain engine on the smart-grid
// aggregation workload (§III-B(3)).
func BenchmarkSecureMapReduceOverhead(b *testing.B) {
	input := make([]mapreduce.KV, 2000)
	for i := range input {
		input[i] = mapreduce.KV{
			Key:   fmt.Sprintf("zone%d/meter%d", i%8, i),
			Value: []byte(fmt.Sprintf("%d", 100+i%50)),
		}
	}
	job := mapreduce.Job{
		Name:  "zone-count",
		Input: input,
		Map: func(key string, value []byte, emit func(string, []byte)) {
			emit(key[:5], []byte{1})
		},
		Reduce: func(key string, values [][]byte) ([]byte, error) {
			return []byte(fmt.Sprintf("%d", len(values))), nil
		},
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mapreduce.Run(job); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("secure", func(b *testing.B) {
		p := enclave.NewPlatform(enclave.Config{})
		var root cryptbox.Key
		eng, err := mapreduce.NewSecureEngine(p, 4, root)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(job); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnclaveRandomAccess is the memory-hierarchy micro-benchmark
// behind Figure 3: random 8-byte reads over working sets below and above
// the EPC, inside vs outside.
func BenchmarkEnclaveRandomAccess(b *testing.B) {
	for _, mb := range []uint64{32, 192} {
		for _, inside := range []bool{true, false} {
			name := fmt.Sprintf("ws=%dMB/inside=%v", mb, inside)
			b.Run(name, func(b *testing.B) {
				p := enclave.NewPlatform(enclave.Config{})
				var mem *enclave.Memory
				var base uint64
				ws := mb << 20
				if inside {
					var signer cryptbox.Digest
					enc, _ := p.ECreate(ws+(1<<20), signer)
					_, _ = enc.EAdd([]byte("probe"))
					_ = enc.EInit()
					arena, _ := enc.HeapArena()
					base = arena.Alloc(int(ws - (64 << 10)))
					mem = enc.Memory()
				} else {
					mem = p.UntrustedMemory()
					base = p.AllocUntrusted(ws)
				}
				rng := uint64(0x9E3779B97F4A7C15)
				start := mem.Cycles()
				n := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					mem.Access(base+rng%(ws-64), 8, false)
					n++
				}
				b.StopTimer()
				b.ReportMetric(float64(mem.Cycles()-start)/float64(n), "sim-cycles/access")
			})
		}
	}
}

// BenchmarkContainerThroughput drives encrypted stdout records through a
// running secure container — the steady-state data-path cost of the stack.
func BenchmarkContainerThroughput(b *testing.B) {
	svc := attest.NewService()
	cloud, err := core.NewCloud(1, svc)
	if err != nil {
		b.Fatal(err)
	}
	owner, err := core.NewOwner(svc)
	if err != nil {
		b.Fatal(err)
	}
	d, err := owner.Deploy(cloud, core.ServiceSpec{Name: "bench/tp", Code: []byte("B")})
	if err != nil {
		b.Fatal(err)
	}
	c, err := cloud.Run(0, d, owner)
	if err != nil {
		b.Fatal(err)
	}
	line := []byte("meter-00042 1.234 kW")
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Runtime.Stdout(line); err != nil {
			b.Fatal(err)
		}
	}
}
