// Billing demo: the big-data path of §III-B(3) end to end, on the
// concurrent stack. A day of sub-minute meter readings is aggregated with
// the parallel secure map/reduce engine (enclave-per-worker, sealed
// shuffle), the per-meter totals land in the sharded secure structured
// data store (shard-per-core, batched ingest), and a day-ahead load
// forecast is fitted for capacity planning — none of it visible to the
// cloud in plaintext, and every simulated figure deterministic.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"strconv"

	"securecloud/internal/cryptbox"
	"securecloud/internal/kvstore"
	"securecloud/internal/mapreduce"
	"securecloud/internal/smartgrid"
)

func main() {
	const ticksPerDay = 288 // 5-minute billing granularity
	fleet := smartgrid.NewFleet(smartgrid.FleetConfig{
		Seed: 7, Meters: 400, MetersPerFeeder: 50, TicksPerDay: ticksPerDay, BaseLoadKW: 0.8,
	})

	// Collect one day of readings and train the forecaster on the fly.
	var input []mapreduce.KV
	fc := smartgrid.NewForecaster(ticksPerDay)
	for tick := int64(0); tick < ticksPerDay; tick++ {
		readings, feederKW := fleet.Tick(tick)
		var total float64
		for _, kw := range feederKW {
			total += kw
		}
		fc.Observe(tick, total)
		for _, r := range readings {
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], math.Float64bits(r.PowerKW))
			input = append(input, mapreduce.KV{
				Key:   r.Feeder + "|" + r.MeterID,
				Value: v[:],
			})
		}
	}
	fmt.Printf("collected %d readings from %d meters\n", len(input), fleet.Config().Meters)

	// Parallel secure map/reduce: per-meter kWh totals, computed by worker
	// enclaves (one simulated platform each) over a sealed shuffle.
	rootKey, err := cryptbox.NewRandomKey()
	if err != nil {
		log.Fatal(err)
	}
	engine, err := mapreduce.NewParallelSecureEngine(rootKey, mapreduce.ParallelConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	const hoursPerTick = 24.0 / ticksPerDay
	job := mapreduce.Job{
		Name:  "daily-billing",
		Input: input,
		Map: func(key string, value []byte, emit func(string, []byte)) {
			emit(key, value) // key already feeder|meter
		},
		Reduce: func(key string, values [][]byte) ([]byte, error) {
			var kwh float64
			for _, v := range values {
				kw := math.Float64frombits(binary.LittleEndian.Uint64(v))
				kwh += kw * hoursPerTick
			}
			return []byte(strconv.FormatFloat(kwh, 'f', 3, 64)), nil
		},
		Reducers: 8,
	}
	totals, err := engine.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("map/reduce produced %d per-meter daily totals (sealed shuffle)\n", len(totals))
	fmt.Printf("  map %.2fx, reduce %.2fx enclave-per-worker sim-speedup\n",
		st.MapSpeedup(), st.ReduceSpeedup())

	// Store the totals in the sharded secure structured data store with
	// one batched write. Keys are feeder|meter, so a feeder's bill is one
	// ordered range scan.
	storeKey, err := cryptbox.NewRandomKey()
	if err != nil {
		log.Fatal(err)
	}
	store, err := kvstore.NewShardedStore(storeKey, kvstore.ShardedStoreConfig{Shards: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	batch := make([]kvstore.Pair, 0, len(totals))
	for key, kwh := range totals {
		batch = append(batch, kvstore.Pair{Key: key, Value: kwh})
	}
	if err := store.PutBatch(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("billing store: %d encrypted rows across %d shards\n", store.Len(), store.Shards())

	// Feeder-level bill via an ordered prefix scan.
	rows, err := store.Range("feeder-002|", "feeder-002|~")
	if err != nil {
		log.Fatal(err)
	}
	var feederKWh float64
	for _, r := range rows {
		v, err := strconv.ParseFloat(string(r.Value), 64)
		if err != nil {
			log.Fatal(err)
		}
		feederKWh += v
	}
	fmt.Printf("feeder-002: %d meters, %.1f kWh billed\n", len(rows), feederKWh)

	// Day-ahead forecast for tomorrow evening's peak window.
	if fc.Ready() {
		peakTick := int64(math.Round(ticksPerDay * 0.8))
		pred, err := fc.Forecast(ticksPerDay + peakTick)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day-ahead forecast for the evening peak: %.1f kW\n", pred)
	}
}
