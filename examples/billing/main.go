// Billing demo: the big-data path of §III-B(3) end to end. A day of
// sub-minute meter readings is aggregated with the secure map/reduce
// engine (enclave workers, sealed shuffle), the per-meter totals land in
// the secure structured data store (encrypted rows, feeder-indexed), and
// a day-ahead load forecast is fitted for capacity planning — none of it
// visible to the cloud in plaintext.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"strconv"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/kvstore"
	"securecloud/internal/mapreduce"
	"securecloud/internal/smartgrid"
)

func main() {
	const ticksPerDay = 288 // 5-minute billing granularity
	fleet := smartgrid.NewFleet(smartgrid.FleetConfig{
		Seed: 7, Meters: 400, MetersPerFeeder: 50, TicksPerDay: ticksPerDay, BaseLoadKW: 0.8,
	})

	// Collect one day of readings and train the forecaster on the fly.
	var input []mapreduce.KV
	fc := smartgrid.NewForecaster(ticksPerDay)
	for tick := int64(0); tick < ticksPerDay; tick++ {
		readings, feederKW := fleet.Tick(tick)
		var total float64
		for _, kw := range feederKW {
			total += kw
		}
		fc.Observe(tick, total)
		for _, r := range readings {
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], math.Float64bits(r.PowerKW))
			input = append(input, mapreduce.KV{
				Key:   r.MeterID + "|" + r.Feeder,
				Value: v[:],
			})
		}
	}
	fmt.Printf("collected %d readings from %d meters\n", len(input), fleet.Config().Meters)

	// Secure map/reduce: per-meter kWh totals, computed by enclave
	// workers over a sealed shuffle.
	platform := enclave.NewPlatform(enclave.Config{})
	rootKey, err := cryptbox.NewRandomKey()
	if err != nil {
		log.Fatal(err)
	}
	engine, err := mapreduce.NewSecureEngine(platform, 4, rootKey)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	const hoursPerTick = 24.0 / ticksPerDay
	job := mapreduce.Job{
		Name:  "daily-billing",
		Input: input,
		Map: func(key string, value []byte, emit func(string, []byte)) {
			emit(key, value) // key already meter|feeder
		},
		Reduce: func(key string, values [][]byte) ([]byte, error) {
			var kwh float64
			for _, v := range values {
				kw := math.Float64frombits(binary.LittleEndian.Uint64(v))
				kwh += kw * hoursPerTick
			}
			return []byte(strconv.FormatFloat(kwh, 'f', 3, 64)), nil
		},
		Reducers: 8,
	}
	totals, err := engine.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("map/reduce produced %d per-meter daily totals (sealed shuffle)\n", len(totals))

	// Store the totals in the secure structured data store.
	storeKey, err := cryptbox.NewRandomKey()
	if err != nil {
		log.Fatal(err)
	}
	store, err := kvstore.New(storeKey, 1)
	if err != nil {
		log.Fatal(err)
	}
	table, err := kvstore.NewTable(store, "billing", kvstore.Schema{
		Columns: []string{"meter_id", "feeder", "kwh"},
	}, "feeder")
	if err != nil {
		log.Fatal(err)
	}
	for key, kwh := range totals {
		var meter, feeder string
		for i := range key {
			if key[i] == '|' {
				meter, feeder = key[:i], key[i+1:]
				break
			}
		}
		if err := table.Insert(kvstore.Row{"meter_id": meter, "feeder": feeder, "kwh": string(kwh)}); err != nil {
			log.Fatal(err)
		}
	}
	n, _ := table.Count()
	fmt.Printf("billing table: %d encrypted rows\n", n)

	// Feeder-level bill via the secondary index.
	rows, err := table.Lookup("feeder", "feeder-002")
	if err != nil {
		log.Fatal(err)
	}
	var feederKWh float64
	for _, r := range rows {
		v, err := strconv.ParseFloat(r["kwh"], 64)
		if err != nil {
			log.Fatal(err)
		}
		feederKWh += v
	}
	fmt.Printf("feeder-002: %d meters, %.1f kWh billed\n", len(rows), feederKWh)

	// Persist a sealed snapshot (what goes to untrusted disk).
	snap, err := store.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed snapshot: %d bytes at store version %d\n", len(snap), store.Version())

	// Day-ahead forecast for tomorrow evening's peak window.
	if fc.Ready() {
		peakTick := int64(math.Round(ticksPerDay * 0.8))
		pred, err := fc.Forecast(ticksPerDay + peakTick)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day-ahead forecast for the evening peak: %.1f kW\n", pred)
	}
}
