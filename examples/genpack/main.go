// GenPack demo (paper §IV + §VI): schedule a synthetic day of data-centre
// containers with the generational scheduler and compare its energy use
// against the spread, random and first-fit strategies — reproducing the
// paper's "up to 23% energy savings" claim and showing where the savings
// come from (fewer powered servers at higher utilisation).
package main

import (
	"fmt"
	"os"

	"securecloud/internal/genpack"
)

func main() {
	traceCfg := genpack.DefaultTrace(42)
	clusterCfg := genpack.ClusterConfig{Servers: 100}

	fmt.Printf("cluster: %d servers, %d ticks (~1 day), ~%.1f container arrivals/min\n\n",
		clusterCfg.Servers, traceCfg.Ticks, traceCfg.ArrivalsPerTick)

	results := genpack.EnergyExperiment(clusterCfg, traceCfg)
	genpack.WriteResults(os.Stdout, results)

	// Show the generational structure after a standalone GenPack run.
	cluster := genpack.NewCluster(clusterCfg)
	sched := genpack.NewGenPack()
	trace := genpack.GenerateTrace(traceCfg)
	res := genpack.Simulate(cluster, sched, trace, traceCfg.Ticks)

	fmt.Printf("\ngenpack end state (after %d promotions):\n", res.Migrations)
	for _, gen := range []genpack.Generation{genpack.Nursery, genpack.Young, genpack.Old} {
		servers := cluster.Generation(gen)
		on, containers := 0, 0
		var util float64
		for _, s := range servers {
			if s.On() {
				on++
				util += s.Utilization()
			}
			containers += s.Count()
		}
		mean := 0.0
		if on > 0 {
			mean = util / float64(on)
		}
		fmt.Printf("  %-8s %3d servers, %3d powered, %4d containers, mean util %.0f%%\n",
			gen, len(servers), on, containers, 100*mean)
	}
}
