// Smart-grid demo: both use cases of paper §VI on the full SecureCloud
// stack. A simulated metering fleet streams sub-minute readings through
// the encrypted event bus into an enclave-hosted analytics micro-service,
// which (1) detects power theft by comparing feeder instrumentation with
// reported meter sums, and (2) raises power-quality events the moment a
// feeder's voltage sags — while the cloud provider only ever sees
// ciphertext.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"securecloud/internal/attest"
	"securecloud/internal/core"
	"securecloud/internal/cryptbox"
	"securecloud/internal/eventbus"
	"securecloud/internal/microsvc"
	"securecloud/internal/smartgrid"
)

// tickPayload is the bus message carrying one tick of fleet telemetry.
type tickPayload struct {
	Tick     int64               `json:"tick"`
	Readings []smartgrid.Reading `json:"readings"`
	FeederKW map[string]float64  `json:"feeder_kw"`
}

func main() {
	svc := attest.NewService()
	cloud, err := core.NewCloud(2, svc)
	if err != nil {
		log.Fatal(err)
	}
	owner, err := core.NewOwner(svc)
	if err != nil {
		log.Fatal(err)
	}

	// The analytics micro-service runs inside an enclave on node 0.
	node := cloud.Node(0)
	var signer cryptbox.Digest
	enc, err := node.Platform.ECreate(64<<20, signer)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("grid-analytics-v1")); err != nil {
		log.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		log.Fatal(err)
	}

	detector := smartgrid.NewTheftDetector()
	quality := smartgrid.NewQualityMonitor()
	reqKey, err := owner.TopicKey("analytics-req")
	if err != nil {
		log.Fatal(err)
	}
	analytics, err := microsvc.New("grid-analytics", enc, reqKey, func(req []byte) ([]byte, error) {
		var p tickPayload
		if err := json.Unmarshal(req, &p); err != nil {
			return nil, err
		}
		var out []string
		for _, a := range detector.Observe(p.Tick, p.Readings, p.FeederKW) {
			out = append(out, fmt.Sprintf("THEFT %s shortfall %.2f kW suspects %v", a.Feeder, a.GapKW, a.Suspects))
		}
		for _, e := range quality.Observe(p.Tick, p.Readings) {
			out = append(out, "QUALITY "+e.String())
		}
		if out == nil {
			return nil, nil
		}
		return json.Marshal(out)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Wire it between the readings topic and the alerts topic.
	worker, err := microsvc.NewBusWorker(analytics, cloud.Bus, owner.AppRoot, "grid/readings", "grid/alerts")
	if err != nil {
		log.Fatal(err)
	}
	readingsKey, _ := owner.TopicKey("grid/readings")
	pub, err := eventbus.NewPublisher(cloud.Bus, "grid/readings", readingsKey)
	if err != nil {
		log.Fatal(err)
	}
	alertsKey, _ := owner.TopicKey("grid/alerts")
	alerts, err := eventbus.NewSubscriber(cloud.Bus, "grid/alerts", alertsKey)
	if err != nil {
		log.Fatal(err)
	}

	// The fleet: 500 meters; a thief on feeder-002 and a voltage sag on
	// feeder-004 midway through the run.
	fleet := smartgrid.NewFleet(smartgrid.FleetConfig{
		Seed: 42, Meters: 500, MetersPerFeeder: 50, TicksPerDay: 2880, BaseLoadKW: 0.8,
	})
	// The theft starts after the first detector window, once per-meter
	// consumption profiles are established; the sag hits mid-run.
	fleet.InjectTheft(2*50+7, 120, 0.25) // meter-00107 under-reports 75%
	fleet.InjectSag(4, 180, 186, 0.82)   // 3-minute sag on feeder-004

	const horizon = 3 * 120 // three detector windows
	for tick := int64(0); tick < horizon; tick++ {
		readings, feederKW := fleet.Tick(tick)
		body, err := json.Marshal(tickPayload{Tick: tick, Readings: readings, FeederKW: feederKW})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := pub.Publish(body); err != nil {
			log.Fatal(err)
		}
		if _, err := worker.Step(); err != nil {
			log.Fatal(err)
		}
	}

	// Drain the alert topic — decrypted with the owner's topic key.
	msgs, err := alerts.Receive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d ticks; %d alert batches:\n", horizon, len(msgs))
	for _, m := range msgs {
		var batch []string
		if err := json.Unmarshal(m, &batch); err != nil {
			log.Fatal(err)
		}
		for _, a := range batch {
			fmt.Println("  ", a)
		}
	}
	fmt.Printf("enclave charged %v; %d EPC faults\n",
		enc.Memory().Cycles(), enc.Memory().Faults())
}
