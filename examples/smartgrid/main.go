// Smart-grid demo: both use cases of paper §VI end to end on the unified
// application plane. A simulated metering fleet streams sub-minute
// readings through the encrypted event bus into an *attested* analytics
// ReplicaSet — enclave-per-replica workers whose keys were released by the
// KeyBroker only against verified quotes — which detects power theft and
// voltage sags per feeder; every reading is simultaneously ingested into
// the sharded secure key/value store, and at end of day per-feeder billing
// is aggregated by the parallel secure map/reduce engine. A closed-loop
// orchestrator supervises the replica set the whole time: when a replica
// is crashed mid-run it is replaced within one simulated-millisecond
// monitoring tick, and the adaptation trace is printed at the end. The
// cloud provider sees ciphertext, queue depths and cycle counters — never
// a reading.
package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"sort"
	"strings"
	"sync"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/kvstore"
	"securecloud/internal/mapreduce"
	"securecloud/internal/microsvc"
	"securecloud/internal/orchestrator"
	"securecloud/internal/sim"
	"securecloud/internal/smartgrid"
)

// feederPayload is one tick of one feeder's telemetry — the unit the
// plane routes by feeder key, so a feeder's history always lands on the
// same replica.
type feederPayload struct {
	Tick     int64               `json:"tick"`
	Feeder   string              `json:"feeder"`
	Readings []smartgrid.Reading `json:"readings"`
	TrueKW   float64             `json:"true_kw"`
}

// shardPlatform is the storage shards' platform: a small EPC so the day's
// readings exceed it and the store pays realistic paging costs.
func shardPlatform() enclave.Config {
	return enclave.Config{
		EPCBytes:         2 << 20,
		EPCReservedBytes: 512 << 10,
		LLCBytes:         256 << 10,
		LLCWays:          8,
		LineSize:         64,
		PageSize:         4096,
	}
}

func main() {
	svc := attest.NewService()
	kb := attest.NewKeyBroker(svc)
	bus := eventbus.New()

	// The analytics service: per-feeder theft detection and power-quality
	// monitoring inside replica enclaves. Feeder affinity means each
	// feeder's detector state lives on exactly one replica at a time.
	var mu sync.Mutex
	type feederState struct {
		detector *smartgrid.TheftDetector
		quality  *smartgrid.QualityMonitor
	}
	states := make(map[string]*feederState)
	stateOf := func(feeder string) *feederState {
		mu.Lock()
		defer mu.Unlock()
		st, ok := states[feeder]
		if !ok {
			st = &feederState{
				detector: smartgrid.NewTheftDetector(),
				quality:  smartgrid.NewQualityMonitor(),
			}
			states[feeder] = st
		}
		return st
	}
	handler := func(req []byte) ([]byte, error) {
		var p feederPayload
		if err := json.Unmarshal(req, &p); err != nil {
			return nil, err
		}
		st := stateOf(p.Feeder)
		var out []string
		for _, a := range st.detector.Observe(p.Tick, p.Readings, map[string]float64{p.Feeder: p.TrueKW}) {
			out = append(out, fmt.Sprintf("THEFT %s shortfall %.2f kW suspects %v", a.Feeder, a.GapKW, a.Suspects))
		}
		for _, e := range st.quality.Observe(p.Tick, p.Readings) {
			out = append(out, "QUALITY "+e.String())
		}
		if out == nil {
			return nil, nil
		}
		return json.Marshal(out)
	}

	var appRoot cryptbox.Key
	appRoot[0] = 0x5D
	keys, err := microsvc.NewServiceKeys(appRoot, "grid/analytics", "grid/readings", "grid/alerts")
	if err != nil {
		log.Fatal(err)
	}
	kb.Register("grid/analytics",
		attest.Policy{AllowedMRSigner: []cryptbox.Digest{microsvc.ReplicaSigner("grid/analytics")}}, keys)

	rs, err := microsvc.NewReplicaSet(bus, svc, kb, "grid/analytics", handler,
		microsvc.ReplicaSetConfig{
			Replicas:   2,
			InTopic:    "grid/readings",
			OutTopic:   "grid/alerts",
			TickBudget: sim.MillisToCycles(1),
		})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Stop()
	orch, err := orchestrator.New(orchestrator.Target{
		MaxQueueDepth: 8, MinReplicas: 2, MaxReplicas: 4, ScaleInBelow: 1,
	}, rs, rs.ReplicaHandles()...)
	if err != nil {
		log.Fatal(err)
	}
	client, err := microsvc.NewPlaneClient(bus, "grid/analytics", keys, "grid/readings", "grid/alerts")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// The sharded secure store ingesting every reading for billing.
	var storeKey cryptbox.Key
	storeKey[0] = 0x5C
	store, err := kvstore.NewShardedStore(storeKey, kvstore.ShardedStoreConfig{
		Shards:     4,
		Seed:       42,
		Accounted:  true,
		Platform:   shardPlatform(),
		ShardBytes: 32 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The fleet: 200 meters on 4 feeders; a thief on feeder-002 and a
	// voltage sag on feeder-003 midway through; a replica crash at tick
	// 150 to exercise the orchestrator.
	fleet := smartgrid.NewFleet(smartgrid.FleetConfig{
		Seed: 42, Meters: 200, MetersPerFeeder: 50, TicksPerDay: 2880, BaseLoadKW: 0.8,
	})
	fleet.InjectTheft(2*50+7, 120, 0.25) // meter-00107 under-reports 75%
	fleet.InjectSag(3, 180, 186, 0.82)   // 3-minute sag on feeder-003

	const horizon = 2 * 120 // two detector windows
	const crashTick = 150
	var alerts []string
	nReadings := 0
	for tick := int64(0); tick < horizon; tick++ {
		if tick == crashTick {
			if id := rs.InjectCrash(0); id != "" {
				fmt.Printf("t%03d injected crash of %s\n", tick, id)
			}
		}
		readings, feederKW := fleet.Tick(tick)

		// Group by feeder: one sealed plane request per feeder per tick,
		// plus one store batch for the whole tick.
		byFeeder := make(map[string][]smartgrid.Reading)
		batch := make([]kvstore.Pair, len(readings))
		for i, r := range readings {
			byFeeder[r.Feeder] = append(byFeeder[r.Feeder], r)
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], math.Float64bits(r.PowerKW))
			batch[i] = kvstore.Pair{
				Key:   fmt.Sprintf("%s|%s|%06d", r.Feeder, r.MeterID, tick),
				Value: v[:],
			}
		}
		feeders := make([]string, 0, len(byFeeder))
		for f := range byFeeder {
			feeders = append(feeders, f)
		}
		sort.Strings(feeders)
		reqs := make([]microsvc.PlaneRequest, 0, len(feeders))
		for _, f := range feeders {
			body, err := json.Marshal(feederPayload{
				Tick: tick, Feeder: f, Readings: byFeeder[f], TrueKW: feederKW[f],
			})
			if err != nil {
				log.Fatal(err)
			}
			reqs = append(reqs, microsvc.PlaneRequest{Key: f, Body: body})
		}
		if err := client.SendBatch(reqs); err != nil {
			log.Fatal(err)
		}
		nReadings += len(batch)
		if err := store.PutBatch(batch); err != nil {
			log.Fatal(err)
		}

		// One closed-loop tick: serve, observe, collect alerts.
		if _, err := rs.Step(); err != nil {
			log.Fatal(err)
		}
		if _, err := orch.Observe(); err != nil {
			log.Fatal(err)
		}
		replies, err := client.Replies()
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range replies {
			var batch []string
			if err := json.Unmarshal(r.Body, &batch); err != nil {
				log.Fatal(err)
			}
			for _, a := range batch {
				alerts = append(alerts, fmt.Sprintf("t%03d %s", tick, a))
			}
		}
	}

	fmt.Printf("\nprocessed %d ticks (%d readings) through %d attested replicas; alerts:\n",
		horizon, nReadings, rs.Replicas())
	for _, a := range alerts {
		fmt.Println("  ", a)
	}
	fmt.Println("\nadaptation trace:")
	for _, l := range orch.Trace() {
		fmt.Println("  ", l)
	}

	// End of day: scan the store and bill per feeder with the parallel
	// secure map/reduce engine.
	day, err := store.Range("", "")
	if err != nil {
		log.Fatal(err)
	}
	input := make([]mapreduce.KV, len(day))
	for i, p := range day {
		input[i] = mapreduce.KV{Key: p.Key, Value: p.Value}
	}
	var mrRoot cryptbox.Key
	mrRoot[0] = 0x77
	engine, err := mapreduce.NewParallelSecureEngine(mrRoot, mapreduce.ParallelConfig{
		Workers:     4,
		Platform:    shardPlatform(),
		WorkerBytes: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	hoursPerTick := 24.0 / float64(fleet.Config().TicksPerDay)
	totals, err := engine.Run(mapreduce.Job{
		Name:  "feeder-billing",
		Input: input,
		Map: func(key string, value []byte, emit func(string, []byte)) {
			emit(key[:strings.IndexByte(key, '|')], value)
		},
		Reduce: func(key string, values [][]byte) ([]byte, error) {
			var kwh float64
			for _, v := range values {
				kwh += math.Float64frombits(binary.LittleEndian.Uint64(v)) * hoursPerTick
			}
			var out [8]byte
			binary.LittleEndian.PutUint64(out[:], math.Float64bits(kwh))
			return out[:], nil
		},
		Reducers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	feeders := make([]string, 0, len(totals))
	for f := range totals {
		feeders = append(feeders, f)
	}
	sort.Strings(feeders)
	fmt.Printf("\nbilling over %d stored readings (4 store shards, 4 map/reduce enclaves):\n", len(day))
	for _, f := range feeders {
		fmt.Printf("  %s: %.3f kWh\n", f, math.Float64frombits(binary.LittleEndian.Uint64(totals[f])))
	}

	tot := rs.Totals()
	st := engine.Stats()
	fmt.Printf("\nplane accounting: %d replica enclaves ever launched, %d cycles summed / %d critical path (%.2fx), front-end %d cycles\n",
		tot.Launched, tot.SerialCycles, tot.CriticalCycles,
		float64(tot.SerialCycles)/float64(tot.CriticalCycles), tot.FrontCycles)
	fmt.Printf("map/reduce: %.2fx map, %.2fx reduce enclave-per-worker sim-speedup\n",
		st.MapSpeedup(), st.ReduceSpeedup())
	fmt.Printf("key releases for grid/analytics: %d, every one against a verified quote\n",
		kb.Released("grid/analytics"))
}
