// Overload: the plane under a tenant spike, twice. First ungoverned —
// a greedy tenant floods the request topic and the backlog grows without
// bound. Then with an AdmissionConfig — per-tenant token buckets and
// weighted-fair dequeue keep the polite tenant's share, the greedy
// tenant's excess is shed at arrival with a sealed retry-after reply,
// and the client's exponential-backoff retry drains the sheds once the
// spike passes. Everything is simulated time, so both runs are exactly
// reproducible.
package main

import (
	"fmt"
	"log"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/eventbus"
	"securecloud/internal/microsvc"
	"securecloud/internal/sim"
)

const service = "plane/demo"

// run drives 30 ticks of two-tenant load — "polite" at a steady 20
// req/tick, "greedy" spiking to 200 req/tick for ticks 10-19 — against a
// two-replica plane, and reports the final backlog and per-tenant shed.
func run(adm *microsvc.AdmissionConfig) (backlog int, stats microsvc.AdmissionSnapshot) {
	bus := eventbus.New()
	svc := attest.NewService()
	kb := attest.NewKeyBroker(svc)

	var root cryptbox.Key
	root[0] = 0xD0
	keys, err := microsvc.NewServiceKeys(root, service, "d/req", "d/resp")
	if err != nil {
		log.Fatal(err)
	}
	kb.Register(service,
		attest.Policy{AllowedMRSigner: []cryptbox.Digest{microsvc.ReplicaSigner(service)}}, keys)

	rs, err := microsvc.NewReplicaSet(bus, svc, kb, service,
		func(req []byte) ([]byte, error) { return []byte("ok"), nil },
		microsvc.ReplicaSetConfig{
			Replicas: 2, InTopic: "d/req", OutTopic: "d/resp",
			TickBudget:    sim.MillisToCycles(1),
			RequestCycles: 60_000,
			Admission:     adm,
		})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Stop()
	client, err := microsvc.NewPlaneClient(bus, service, keys, "d/req", "d/resp")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.EnableRetry(microsvc.RetryPolicy{MaxAttempts: 4})

	for t := 1; t <= 30; t++ {
		now := float64(t)
		if _, err := client.DueRetries(now); err != nil {
			log.Fatal(err)
		}
		greedy := 20
		if t >= 10 && t < 20 {
			greedy = 200
		}
		send := func(tenant string, n int) {
			batch := make([]microsvc.PlaneRequest, n)
			for i := range batch {
				batch[i] = microsvc.PlaneRequest{
					Key:  fmt.Sprintf("%s-%02d", tenant, i%16),
					Body: []byte("payload"),
				}
			}
			if err := client.SendTenant(tenant, batch); err != nil {
				log.Fatal(err)
			}
		}
		send("polite", 20)
		send("greedy", greedy)
		if _, err := rs.Step(); err != nil {
			log.Fatal(err)
		}
		if _, err := client.Poll(now); err != nil {
			log.Fatal(err)
		}
	}
	return rs.Backlog(), rs.AdmissionStats()
}

func main() {
	backlog, _ := run(nil)
	fmt.Printf("ungoverned:  backlog after spike = %d (grows with the spike)\n", backlog)

	backlog, stats := run(&microsvc.AdmissionConfig{
		Default: microsvc.TenantPolicy{Weight: 1, Rate: 60, Burst: 120, MaxQueue: 64},
		Tenants: map[string]microsvc.TenantPolicy{
			"polite": {Weight: 3, Rate: 30, Burst: 60, MaxQueue: 64},
			"greedy": {Weight: 1, Rate: 60, Burst: 90, MaxQueue: 48},
		},
		MaxGlobalQueue: 128,
		TickMillis:     1,
	})
	fmt.Printf("admission:   backlog after spike = %d\n", backlog)
	for _, tenant := range []string{"polite", "greedy"} {
		ts := stats.ByTenant[tenant]
		fmt.Printf("  %-7s admitted=%-4d dispatched=%-4d shed=%d (sheds count retried re-arrivals)\n",
			tenant, ts.Admitted, ts.Dispatched, ts.Shed)
	}
}
