// Quickstart: build a secure container image in a trusted environment,
// push it through an untrusted registry, execute it on an untrusted SGX
// node, and exchange encrypted messages with it — the complete Figure 2
// workflow of the SecureCloud paper — then serve it replicated on the
// application plane: every replica boots through the container path
// (attest → SCF release → service-key release → subscribe) and no key
// ever leaves the owner except to a verified enclave.
package main

import (
	"fmt"
	"log"
	"strings"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/core"
	"securecloud/internal/cryptbox"
	"securecloud/internal/fsshield"
	"securecloud/internal/microsvc"
)

func main() {
	// The attestation service is the one party both sides trust (the
	// Intel Attestation Service analogue).
	svc := attest.NewService()

	// The untrusted cloud: three SGX nodes, a registry, an event bus.
	cloud, err := core.NewCloud(3, svc)
	if err != nil {
		log.Fatal(err)
	}
	// The application owner's trusted environment.
	owner, err := core.NewOwner(svc)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Build + deploy a micro-service with an encrypted config file.
	deployment, err := owner.Deploy(cloud, core.ServiceSpec{
		Name: "demo/hello",
		Tag:  "1.0",
		Code: []byte("HELLO-MICROSERVICE-BINARY"),
		Files: map[string][]byte{
			"/etc/greeting": []byte("hello from inside the enclave"),
		},
		Protect: map[string]fsshield.Mode{
			"/etc/greeting": fsshield.ModeEncrypted,
		},
		Args: []string{"serve"},
		Env:  map[string]string{"MODE": "demo"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed:", deployment.Image.Ref())

	// 2. The cloud pulls, verifies, attests and boots the container. The
	// SCF (stream keys, FS protection key) travels over the attested
	// channel; the node never sees it.
	c, err := cloud.Run(0, deployment, owner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running:", c.ID, "state:", c.State())

	// 3. Inside the enclave the protected file is plaintext.
	greeting, err := c.Runtime.FS().ReadFile("/etc/greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read inside enclave:", string(greeting))

	// 4. The container writes to stdout; the host stores only ciphertext,
	// the owner decrypts with the SCF.
	if err := c.Runtime.Stdout([]byte("service ready")); err != nil {
		log.Fatal(err)
	}
	lines, err := cloud.ReadStdout(0, deployment)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println("owner read from encrypted stdout:", string(l))
	}

	// 5. Resource accounting for billing.
	u := c.Usage()
	fmt.Printf("usage: %d simulated cycles, %d MiB enclave, %d syscalls, %d page faults\n",
		u.CPUCycles, u.MemoryBytes>>20, u.Syscalls, u.PageFaults)

	// 6. The same image, replicated on the application plane. The owner
	// registers the service keys with a KeyBroker under the image's
	// expected measurement; each replica then launches on its own fresh
	// node through the full container path and fetches its keys over the
	// attested channel. There is no other way onto the plane.
	kb := attest.NewKeyBroker(svc)
	m, err := container.ExpectedMeasurement(deployment.Image)
	if err != nil {
		log.Fatal(err)
	}
	keys, err := microsvc.NewServiceKeys(owner.AppRoot, "demo/hello", "hello/req", "hello/resp")
	if err != nil {
		log.Fatal(err)
	}
	kb.Register("demo/hello", attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}, keys)

	// The replicas share one node-local blob cache: the first boot pulls
	// the image's chunks from the registry, every later boot is warm.
	cache := container.NewBlobCache()
	rs, err := microsvc.NewContainerReplicaSet(cloud.Bus, svc, kb, "demo/hello",
		func(req []byte) ([]byte, error) {
			return []byte("HELLO, " + strings.ToUpper(string(req))), nil
		},
		microsvc.ReplicaSetConfig{Replicas: 2, InTopic: "hello/req", OutTopic: "hello/resp"},
		microsvc.ContainerSpec{Registry: cloud.Registry, CAS: owner.CAS, Image: "demo/hello", Tag: "1.0", Cache: cache})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Stop()
	cs := cache.Stats()
	fmt.Printf("data plane: %d chunks (%d KiB) fetched once, %d warm-boot chunk hits across replicas\n",
		cs.Stores, cs.Bytes>>10, cs.Hits)

	client, err := microsvc.NewPlaneClient(cloud.Bus, "demo/hello", keys, "hello/req", "hello/resp")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	for _, who := range []string{"alice", "bob", "carol"} {
		if err := client.Send("user/"+who, []byte(who)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := rs.Step(); err != nil {
		log.Fatal(err)
	}
	replies, err := client.Replies()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range replies {
		fmt.Printf("plane reply for %s: %s\n", r.Key, r.Body)
	}
	tot := rs.Totals()
	fmt.Printf("plane: %d replicas served %d requests; %d key releases, all against verified quotes\n",
		tot.Live, tot.Served, kb.Released("demo/hello"))
}
