// Quickstart: build a secure container image in a trusted environment,
// push it through an untrusted registry, execute it on an untrusted SGX
// node, and exchange encrypted messages with it — the complete Figure 2
// workflow of the SecureCloud paper in one file.
package main

import (
	"fmt"
	"log"

	"securecloud/internal/attest"
	"securecloud/internal/core"
	"securecloud/internal/fsshield"
)

func main() {
	// The attestation service is the one party both sides trust (the
	// Intel Attestation Service analogue).
	svc := attest.NewService()

	// The untrusted cloud: three SGX nodes, a registry, an event bus.
	cloud, err := core.NewCloud(3, svc)
	if err != nil {
		log.Fatal(err)
	}
	// The application owner's trusted environment.
	owner, err := core.NewOwner(svc)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Build + deploy a micro-service with an encrypted config file.
	deployment, err := owner.Deploy(cloud, core.ServiceSpec{
		Name: "demo/hello",
		Tag:  "1.0",
		Code: []byte("HELLO-MICROSERVICE-BINARY"),
		Files: map[string][]byte{
			"/etc/greeting": []byte("hello from inside the enclave"),
		},
		Protect: map[string]fsshield.Mode{
			"/etc/greeting": fsshield.ModeEncrypted,
		},
		Args: []string{"serve"},
		Env:  map[string]string{"MODE": "demo"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed:", deployment.Image.Ref())

	// 2. The cloud pulls, verifies, attests and boots the container. The
	// SCF (stream keys, FS protection key) travels over the attested
	// channel; the node never sees it.
	c, err := cloud.Run(0, deployment, owner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running:", c.ID, "state:", c.State())

	// 3. Inside the enclave the protected file is plaintext.
	greeting, err := c.Runtime.FS().ReadFile("/etc/greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read inside enclave:", string(greeting))

	// 4. The container writes to stdout; the host stores only ciphertext,
	// the owner decrypts with the SCF.
	if err := c.Runtime.Stdout([]byte("service ready")); err != nil {
		log.Fatal(err)
	}
	lines, err := cloud.ReadStdout(0, deployment)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println("owner read from encrypted stdout:", string(l))
	}

	// 5. Resource accounting for billing.
	u := c.Usage()
	fmt.Printf("usage: %d simulated cycles, %d MiB enclave, %d syscalls, %d page faults\n",
		u.CPUCycles, u.MemoryBytes>>20, u.Syscalls, u.PageFaults)
}
