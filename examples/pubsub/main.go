// Secure content-based routing demo (paper §V-B) on the application
// plane: smart-meter gateways publish encrypted readings onto the event
// bus, an *attested* gateway micro-service — a ReplicaSet whose replicas
// obtained their keys from the KeyBroker against verified quotes — opens
// them inside its enclaves and feeds them into the SCBR broker, which
// routes by content (feeder scope and measurement ranges) to subscribers
// that attested the broker before trusting it with their filters. No
// component of the pipeline bypasses attestation, and the cloud only ever
// sees ciphertext.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/microsvc"
	"securecloud/internal/scbr"
)

// rawReading is one meter sample as the gateway receives it off the bus.
type rawReading struct {
	Feeder  float64 `json:"feeder"`
	Voltage float64 `json:"voltage"`
	Note    string  `json:"note"`
}

func main() {
	// One attestation service anchors everything: the broker node, the
	// gateway replicas, and the key broker all verify against it.
	svc := attest.NewService()

	// Broker platform + attestation.
	p := enclave.NewPlatform(enclave.Config{})
	quoter, err := svc.Provision(p, "broker-node")
	if err != nil {
		log.Fatal(err)
	}
	var signer cryptbox.Digest
	enc, err := p.ECreate(256<<20, signer)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("scbr-broker-v1")); err != nil {
		log.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		log.Fatal(err)
	}
	// One shard keeps both filters in a single containment forest so the
	// nesting diagnostics below are exact; production brokers default to a
	// shard per core (see BrokerConfig.Shards).
	cfg := scbr.DefaultBrokerConfig()
	cfg.Shards = 1
	broker, err := scbr.NewBroker(enc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Clients attest the broker before trusting it with filters.
	m, _ := enc.Measurement()
	policy := attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}

	operator, err := scbr.Connect(broker, "grid-operator", svc, quoter, policy)
	if err != nil {
		log.Fatal(err)
	}
	maintenance, err := scbr.Connect(broker, "maintenance-team", svc, quoter, policy)
	if err != nil {
		log.Fatal(err)
	}
	gatewaySession, err := scbr.Connect(broker, "meter-gateway", svc, quoter, policy)
	if err != nil {
		log.Fatal(err)
	}

	// The operator wants all low-voltage events anywhere; maintenance
	// only cares about feeder 7.
	anyLowVoltage, _ := scbr.NewSubscription(0, map[string]scbr.Interval{
		"voltage": {Lo: 0, Hi: 0.9 * 230},
	})
	feeder7LowVoltage, _ := scbr.NewSubscription(0, map[string]scbr.Interval{
		"voltage": {Lo: 0, Hi: 0.9 * 230},
		"feeder":  {Lo: 7, Hi: 7},
	})
	if _, err := operator.Subscribe(broker, anyLowVoltage); err != nil {
		log.Fatal(err)
	}
	if _, err := maintenance.Subscribe(broker, feeder7LowVoltage); err != nil {
		log.Fatal(err)
	}
	fmt.Println("index depth:", broker.Index().Depth(), "(feeder-7 filter nests under the general one)")

	// The attested gateway: meters publish sealed readings onto the bus;
	// the gateway's replicas open them inside their enclaves and publish
	// SCBR events. Its keys exist nowhere but the owner and the verified
	// replica enclaves. Workers=1 keeps the shared broker session
	// serialized; the replicas still each run on their own platform.
	bus := eventbus.New()
	kb := attest.NewKeyBroker(svc)
	var appRoot cryptbox.Key
	appRoot[0] = 0x9A
	keys, err := microsvc.NewServiceKeys(appRoot, "grid/gateway", "grid/raw", "grid/acks")
	if err != nil {
		log.Fatal(err)
	}
	kb.Register("grid/gateway",
		attest.Policy{AllowedMRSigner: []cryptbox.Digest{microsvc.ReplicaSigner("grid/gateway")}}, keys)

	routed := 0
	gateway, err := microsvc.NewReplicaSet(bus, svc, kb, "grid/gateway",
		func(req []byte) ([]byte, error) {
			var r rawReading
			if err := json.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			n, err := gatewaySession.Publish(broker, scbr.Event{
				Attrs:   map[string]float64{"voltage": r.Voltage, "feeder": r.Feeder},
				Payload: []byte(r.Note),
			})
			if err != nil {
				return nil, err
			}
			routed += n
			return nil, nil
		},
		microsvc.ReplicaSetConfig{Replicas: 2, Workers: 1, InTopic: "grid/raw", OutTopic: "grid/acks"})
	if err != nil {
		log.Fatal(err)
	}
	defer gateway.Stop()

	// Meters: publications arrive as sealed bus frames keyed by feeder.
	meters, err := microsvc.NewPlaneClient(bus, "grid/gateway", keys, "grid/raw", "grid/acks")
	if err != nil {
		log.Fatal(err)
	}
	defer meters.Close()
	events := []rawReading{
		{Voltage: 195, Feeder: 7, Note: "sag on feeder 7"},
		{Voltage: 231, Feeder: 3, Note: "nominal feeder 3"},
		{Voltage: 188, Feeder: 3, Note: "sag on feeder 3"},
	}
	for _, e := range events {
		body, _ := json.Marshal(e)
		if err := meters.Send(fmt.Sprintf("feeder-%02.0f", e.Feeder), body); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := gateway.Step(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway routed %d sealed readings into %d content deliveries\n", len(events), routed)

	opEvents, _ := operator.Receive(broker)
	mtEvents, _ := maintenance.Receive(broker)
	fmt.Printf("operator received %d events (all sags)\n", len(opEvents))
	fmt.Printf("maintenance received %d event(s) (feeder 7 only)\n", len(mtEvents))

	// Load the index with a synthetic filter population and show the
	// containment ablation.
	w := scbr.NewWorkload(scbr.DefaultWorkload(7))
	for i := 0; i < 20000; i++ {
		s := w.NextSubscription()
		if _, err := gatewaySession.Subscribe(broker, s); err != nil {
			log.Fatal(err)
		}
	}
	probe := w.NextEvent()
	before := broker.Index().Checks()
	broker.Index().Match(probe)
	pruned := broker.Index().Checks() - before
	before = broker.Index().Checks()
	broker.Index().MatchNaive(probe)
	naive := broker.Index().Checks() - before
	fmt.Printf("matching over %d filters: containment forest %d comparisons vs naive %d (%.1fx fewer)\n",
		broker.Index().Count(), pruned, naive, float64(naive)/float64(pruned))
	gwTotals := gateway.Totals()
	fmt.Printf("broker enclave: %v, %d EPC faults; gateway replicas: %d cycles across %d enclaves\n",
		enc.Memory().Cycles(), enc.Memory().Faults(), gwTotals.SerialCycles, gwTotals.Live)
}
