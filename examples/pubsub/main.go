// Secure content-based routing demo (paper §V-B): an SCBR broker runs its
// matching engine inside an enclave; publishers and subscribers attest the
// broker, establish session keys, and exchange encrypted publications and
// subscriptions. The demo routes smart-grid events by content (feeder
// scope and measurement ranges) and prints the containment index's
// statistics — including how many comparisons the covering relations
// saved versus a naive matcher.
package main

import (
	"fmt"
	"log"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/scbr"
)

func main() {
	// Broker platform + attestation.
	svc := attest.NewService()
	p := enclave.NewPlatform(enclave.Config{})
	quoter, err := svc.Provision(p, "broker-node")
	if err != nil {
		log.Fatal(err)
	}
	var signer cryptbox.Digest
	enc, err := p.ECreate(256<<20, signer)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("scbr-broker-v1")); err != nil {
		log.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		log.Fatal(err)
	}
	// One shard keeps both filters in a single containment forest so the
	// nesting diagnostics below are exact; production brokers default to a
	// shard per core (see BrokerConfig.Shards).
	cfg := scbr.DefaultBrokerConfig()
	cfg.Shards = 1
	broker, err := scbr.NewBroker(enc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Clients attest the broker before trusting it with filters.
	m, _ := enc.Measurement()
	policy := attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}

	operator, err := scbr.Connect(broker, "grid-operator", svc, quoter, policy)
	if err != nil {
		log.Fatal(err)
	}
	maintenance, err := scbr.Connect(broker, "maintenance-team", svc, quoter, policy)
	if err != nil {
		log.Fatal(err)
	}
	meters, err := scbr.Connect(broker, "meter-gateway", svc, quoter, policy)
	if err != nil {
		log.Fatal(err)
	}

	// The operator wants all low-voltage events anywhere; maintenance
	// only cares about feeder 7.
	anyLowVoltage, _ := scbr.NewSubscription(0, map[string]scbr.Interval{
		"voltage": {Lo: 0, Hi: 0.9 * 230},
	})
	feeder7LowVoltage, _ := scbr.NewSubscription(0, map[string]scbr.Interval{
		"voltage": {Lo: 0, Hi: 0.9 * 230},
		"feeder":  {Lo: 7, Hi: 7},
	})
	if _, err := operator.Subscribe(broker, anyLowVoltage); err != nil {
		log.Fatal(err)
	}
	if _, err := maintenance.Subscribe(broker, feeder7LowVoltage); err != nil {
		log.Fatal(err)
	}
	fmt.Println("index depth:", broker.Index().Depth(), "(feeder-7 filter nests under the general one)")

	// Publications: a sag on feeder 7 and a normal reading on feeder 3.
	events := []scbr.Event{
		{Attrs: map[string]float64{"voltage": 195, "feeder": 7}, Payload: []byte("sag on feeder 7")},
		{Attrs: map[string]float64{"voltage": 231, "feeder": 3}, Payload: []byte("nominal feeder 3")},
		{Attrs: map[string]float64{"voltage": 188, "feeder": 3}, Payload: []byte("sag on feeder 3")},
	}
	for _, e := range events {
		n, err := meters.Publish(broker, e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %q -> %d subscriber(s)\n", e.Payload, n)
	}

	opEvents, _ := operator.Receive(broker)
	mtEvents, _ := maintenance.Receive(broker)
	fmt.Printf("operator received %d events (all sags)\n", len(opEvents))
	fmt.Printf("maintenance received %d event(s) (feeder 7 only)\n", len(mtEvents))

	// Load the index with a synthetic filter population and show the
	// containment ablation.
	w := scbr.NewWorkload(scbr.DefaultWorkload(7))
	for i := 0; i < 20000; i++ {
		s := w.NextSubscription()
		if _, err := meters.Subscribe(broker, s); err != nil {
			log.Fatal(err)
		}
	}
	probe := w.NextEvent()
	before := broker.Index().Checks()
	broker.Index().Match(probe)
	pruned := broker.Index().Checks() - before
	before = broker.Index().Checks()
	broker.Index().MatchNaive(probe)
	naive := broker.Index().Checks() - before
	fmt.Printf("matching over %d filters: containment forest %d comparisons vs naive %d (%.1fx fewer)\n",
		broker.Index().Count(), pruned, naive, float64(naive)/float64(pruned))
	fmt.Printf("broker enclave: %v, %d EPC faults\n",
		enc.Memory().Cycles(), enc.Memory().Faults())
}
