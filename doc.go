// Package securecloud is a from-scratch Go reproduction of "SecureCloud:
// Secure Big Data Processing in Untrusted Clouds" (Kelbert et al.,
// DATE 2017): a layered platform for running big data applications as
// attested micro-services inside (simulated) Intel SGX enclaves on
// untrusted cloud infrastructure.
//
// The library lives under internal/ in bottom-up layers:
//
//   - sim, cryptbox, enclave, attest — the substrates: deterministic cycle
//     accounting, authenticated encryption, a cycle-cost SGX v1 simulator
//     (EPC paging, MEE, lifecycle, measurement, sealing) and remote
//     attestation.
//   - fsshield, shield, sconert, image, registry, container — the SCONE
//     secure-container layer: protected file systems, shielded syscalls,
//     the SCF/CAS startup protocol, and the secure Docker workflow.
//   - eventbus, microsvc, scbr — the micro-service and messaging layer,
//     including the SCBR content-based router whose EPC-paging behaviour
//     is the paper's Figure 3.
//   - kvstore, mapreduce, genpack, smartgrid — the big data layer: secure
//     structured storage, secure map/reduce, the GenPack generational
//     scheduler (the 23% energy claim) and the smart-grid use cases.
//   - core — the top-level platform API gluing cloud and owner sides.
//
// The benchmarks in bench_test.go regenerate every quantitative statement
// of the paper; see EXPERIMENTS.md for paper-vs-measured results.
//
// # Cost model & performance
//
// All simulated costs flow through one hot path: enclave.Memory.Access
// walks the cache lines of an access, consulting the shared LLC and EPC
// models, and charges cycles into a sim.Counter ledger while advancing the
// platform's sim.Clock. That path is engineered so the simulator's own
// overhead stays far below the costs it models:
//
//   - Typed causes. Accounting categories ("llc-hit", "epc-fault", ...)
//     are interned once as sim.Cause values — small integers indexing a
//     fixed-size array ledger in sim.Counter. Charging is an array add; no
//     string hashing or map insertion happens per event. The string-keyed
//     Charge/Cost/Events/Snapshot API remains as a compatibility shim.
//
//   - Batched commits. Access accumulates per-cause event counts in stack
//     locals while it walks lines, then commits once: one ledger charge,
//     one fault-counter update and one atomic clock advance per call,
//     instead of three lock acquisitions per 64-byte line. Because every
//     per-event cost is a fixed platform constant, the batched totals are
//     bit-identical to per-line charging — golden tests in internal/enclave
//     and internal/scbr pin this equivalence exactly.
//
//   - Bulk access APIs. AccessRange (contiguous), AccessN (scattered, e.g.
//     every record of a bucket) and AccessStride (page warm-up loops) let
//     data structures charge a whole node, payload or batch under a single
//     platform-lock acquisition and a single commit. The SCBR index,
//     kvstore, fsshield and eventbus layers all charge through these.
//
//   - An O(ways) LLC. The set-associative cache keeps flat tag/last-use
//     arrays; a hit updates one stamp instead of memmoving the set into
//     recency order, and eviction picks the minimum stamp — exactly
//     classic LRU, so hit/miss sequences are unchanged.
//
// The sim.Clock advance is a single atomic add, so concurrent Memory views
// on one platform never serialize on time-keeping. Fault counters and the
// ledger reset together under the platform mutex (Memory.ResetAccounting),
// so harnesses never observe a half-reset view.
//
// A practical consequence: wall-clock ns/op in the benchmarks is now a
// meaningful signal of simulator speed itself (the modeled costs are the
// sim-cycle metrics). scripts/bench_smoke.sh records both in BENCH_*.json
// to track the simulator-performance trajectory across PRs.
package securecloud
