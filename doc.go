// Package securecloud is a from-scratch Go reproduction of "SecureCloud:
// Secure Big Data Processing in Untrusted Clouds" (Kelbert et al.,
// DATE 2017): a layered platform for running big data applications as
// attested micro-services inside (simulated) Intel SGX enclaves on
// untrusted cloud infrastructure.
//
// The library lives under internal/ in bottom-up layers:
//
//   - sim, cryptbox, enclave, attest — the substrates: deterministic cycle
//     accounting, authenticated encryption, a cycle-cost SGX v1 simulator
//     (EPC paging, MEE, lifecycle, measurement, sealing) and remote
//     attestation.
//   - fsshield, shield, sconert, image, registry, container — the SCONE
//     secure-container layer: protected file systems, shielded syscalls,
//     the SCF/CAS startup protocol, and the secure Docker workflow.
//   - eventbus, microsvc, scbr — the micro-service and messaging layer,
//     including the SCBR content-based router whose EPC-paging behaviour
//     is the paper's Figure 3.
//   - kvstore, mapreduce, genpack, smartgrid — the big data layer: secure
//     structured storage, secure map/reduce, the GenPack generational
//     scheduler (the 23% energy claim) and the smart-grid use cases.
//   - core — the top-level platform API gluing cloud and owner sides.
//
// The benchmarks in bench_test.go regenerate every quantitative statement
// of the paper; see EXPERIMENTS.md for paper-vs-measured results.
package securecloud
