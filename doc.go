// Package securecloud is a from-scratch Go reproduction of "SecureCloud:
// Secure Big Data Processing in Untrusted Clouds" (Kelbert et al.,
// DATE 2017): a layered platform for running big data applications as
// attested micro-services inside (simulated) Intel SGX enclaves on
// untrusted cloud infrastructure.
//
// The library lives under internal/ in bottom-up layers:
//
//   - sim, cryptbox, enclave, attest — the substrates: deterministic cycle
//     accounting, authenticated encryption, a cycle-cost SGX v1 simulator
//     (EPC paging, MEE, lifecycle, measurement, sealing) and remote
//     attestation.
//   - fsshield, shield, sconert, image, registry, container — the SCONE
//     secure-container layer: protected file systems, shielded syscalls,
//     the SCF/CAS startup protocol, and the secure Docker workflow.
//   - eventbus, microsvc, scbr — the micro-service and messaging layer,
//     including the SCBR content-based router whose EPC-paging behaviour
//     is the paper's Figure 3.
//   - kvstore, mapreduce, genpack, smartgrid — the big data layer: secure
//     structured storage, secure map/reduce, the GenPack generational
//     scheduler (the 23% energy claim) and the smart-grid use cases.
//   - core — the top-level platform API gluing cloud and owner sides.
//
// The benchmarks in bench_test.go regenerate every quantitative statement
// of the paper; see EXPERIMENTS.md for paper-vs-measured results.
//
// # Cost model & performance
//
// All simulated costs flow through one hot path: enclave.Memory.Access
// walks the cache lines of an access, consulting the shared LLC and EPC
// models, and charges cycles into a sim.Counter ledger while advancing the
// platform's sim.Clock. That path is engineered so the simulator's own
// overhead stays far below the costs it models:
//
//   - Typed causes. Accounting categories ("llc-hit", "epc-fault", ...)
//     are interned once as sim.Cause values — small integers indexing a
//     fixed-size array ledger in sim.Counter. Charging is an array add; no
//     string hashing or map insertion happens per event. The string-keyed
//     Charge/Cost/Events/Snapshot API remains as a compatibility shim.
//
//   - Batched commits. Access accumulates per-cause event counts in stack
//     locals while it walks lines, then commits once: one ledger charge,
//     one fault-counter update and one atomic clock advance per call,
//     instead of three lock acquisitions per 64-byte line. Because every
//     per-event cost is a fixed platform constant, the batched totals are
//     bit-identical to per-line charging — golden tests in internal/enclave
//     and internal/scbr pin this equivalence exactly.
//
//   - Bulk access APIs. AccessRange (contiguous), AccessN (scattered, e.g.
//     every record of a bucket) and AccessStride (page warm-up loops) let
//     data structures charge a whole node, payload or batch under a single
//     platform-lock acquisition and a single commit. The SCBR index,
//     kvstore, fsshield and eventbus layers all charge through these.
//
//   - An O(ways) LLC. The set-associative cache keeps flat tag/last-use
//     arrays; a hit updates one stamp instead of memmoving the set into
//     recency order, and eviction picks the minimum stamp — exactly
//     classic LRU, so hit/miss sequences are unchanged.
//
// The sim.Clock advance is a single atomic add, so concurrent Memory views
// on one platform never serialize on time-keeping. Fault counters and the
// ledger reset together under the platform mutex (Memory.ResetAccounting),
// so harnesses never observe a half-reset view.
//
// A practical consequence: wall-clock ns/op in the benchmarks is now a
// meaningful signal of simulator speed itself (the modeled costs are the
// sim-cycle metrics). scripts/bench_smoke.sh records both in BENCH_*.json
// to track the simulator-performance trajectory across PRs.
//
// # Concurrency & CI gates
//
// The routing, storage and compute layers all run shard-per-core while
// keeping every simulated figure deterministic. The pattern is the same in
// each layer: partition the data structure, give every partition its own
// simulated platform + enclave (enclave.NewWorker), write-lock only the
// home partition, and fan reads/batches out through a bounded worker set
// (sim.ParallelFor) with read-only snapshot accounting:
//
//   - Routing: the broker's subscription store is a scbr.ShardedIndex —
//     P containment forests keyed by subscription ID (ID mod P), each on
//     its own simulated platform + enclave, the partitioned-broker
//     deployment where every core owns a slice of the filter set.
//     Insert/Unsubscribe write-lock only the home shard; Publish matches
//     all shards through a bounded worker fan-out and merges results into
//     ascending-ID order.
//
//   - Storage: kvstore.ShardedStore partitions the secure structured data
//     store by key hash (FNV mod P). Point reads (Get/GetBatch) charge
//     read-only snapshot spans under the shard's read lock; PutBatch and
//     GetBatch fan out across shards while applying each shard's sub-batch
//     in slice order, so batch results and per-shard costs are independent
//     of the worker count. Property tests pin ShardedStore ≡ Store
//     results and bit-identical per-shard cycles across worker counts for
//     every shard count in {1,2,4,8}.
//
//   - Compute: mapreduce.ParallelSecureEngine runs the secure map/reduce
//     engine enclave-per-worker. The input splits across worker enclaves;
//     every intermediate record is sealed before leaving its enclave;
//     shuffle partitions hash to workers (partition mod Workers) for the
//     reduce phase. Per-phase stats report the summed-worker vs
//     critical-path cycle decomposition — the same scaling statement the
//     sharded broker makes.
//
// In every layer the shard/worker-enclave count is a *topology* parameter
// (it changes placement and therefore the figures) while execution
// parallelism (Workers/MaxParallel) never changes totals — pin the former
// when comparing runs, vary the latter freely.
//
//   - Snapshot match reads. Concurrent matches charge their traversals
//     through enclave.Memory.BeginSnapshotSpan: probes consult — but never
//     mutate — LLC and EPC state, with a span-local overlay so re-touches
//     within one operation behave as hits (as they would after a mutating
//     first touch; evictions a real run might trigger are deferred). Since
//     nothing mutates, probe totals commute: aggregate sim-cycles and
//     faults are bit-identical for any interleaving and any GOMAXPROCS.
//     The platform mutex is held only for the final ledger commit, so
//     matches on different shards — and on the same shard — run in
//     parallel.
//
//   - What stays under the platform mutex. All mutating accounting: index
//     registrations (ordinary spans hold the shard platform's mutex for
//     the traversal), fault-counter and ledger commits, enclave
//     transitions on the broker's front enclave, and every figure-3 /
//     golden path, which still runs the exact single-threaded model PR 1
//     pinned. Golden tests are unchanged.
//
//   - Determinism guarantees. Single-threaded figures are bit-identical to
//     the committed goldens. The Figure 3 sweep's points build independent
//     twin platforms, so `scbr-bench -parallel N` runs them concurrently
//     with bit-identical values. BenchmarkBrokerPublishParallel measures
//     per-op sim-cycles/faults in a sequential pass against the frozen
//     store — identical at every -cpu setting — and reports sim-speedup,
//     the summed-shard-cycles to critical-path (slowest shard) ratio an
//     ideal shard-per-core machine realises.
//
// The hot envelope path pairs this with a compact binary publication/
// subscription codec (JSON remains the client-facing form; the broker
// sniffs both), interned per-session AEAD contexts (cryptbox.CachedBox),
// pooled scratch buffers, and delivery sealing outside every broker lock.
// The event bus gained PublishBatch/PollBatch (one mutex acquisition per
// batch, one seal per message however many subscribers fan out) and prunes
// per-subscriber lease state on Subscriber.Close.
//
// # Application plane
//
// The attest, microsvc, orchestrator and container layers compose into one
// integrated plane that runs replicated micro-services the way the paper
// describes (§III-B(2), §V-A, §VI). The flow is:
//
//   - Key release (attest.KeyBroker). The owner registers each service's
//     request key and topic stream keys under an attestation policy.
//     Release happens only against a verified quote, over the attested
//     X25519 sealed channel shared with the CAS (attest.SealToVerdict /
//     OpenSealed); there is no unsealed release path, and the ReplicaSet
//     constructors accept a KeyBroker, never raw keys. Verified quotes are
//     cached by (platform, measurement) plus the hash of the exact signed
//     body — a forged quote can never ride a cached verdict — and both
//     service revocation (KeyBroker.Revoke) and platform revocation
//     (Service.Revoke) take effect immediately, cache or no cache.
//
//   - Serve (microsvc.ReplicaSet). A service runs as N enclave-per-replica
//     workers behind an attested front-end dispatcher. Every component
//     boots the paper's sequence — attest, fetch keys, subscribe — either
//     directly (enclave.NewSignedWorker on a fresh platform) or through
//     the full container path (container.LaunchNode + Engine.Run: image
//     pull, enclave build, SCONE boot with SCF release, then service-key
//     release). Requests travel as frames: a cleartext routing key plus
//     the body sealed under the request key; the front-end routes by key
//     hash over the replica order (key affinity), and bodies are opened
//     only inside the owning replica's enclave under accounting spans.
//
//   - Orchestrate (orchestrator + ReplicaSet as Launcher). Each Step is
//     one monitoring tick of a closed simulated-time loop: replicas serve
//     within a cycle budget (sim.MillisToCycles per tick), then Observe
//     samples queue depths (atomic counters plus eventbus
//     Subscriber.Depth — sampling never blocks serving) and service
//     cycles, and reacts the same tick: scale-out past MaxQueueDepth,
//     scale-in when idle, restart on crash and on the straggler rule
//     (Target.MaxServiceCycles). Retired replicas requeue their pending
//     work, so adaptation never loses requests.
//
// Which figures are what: replica count, platform config and routing are
// topology — they change placement and therefore per-replica cycle
// totals. Execution parallelism (ReplicaSetConfig.Workers) is execution —
// each replica owns a whole simulated platform, routing is a pure
// function of key and replica order, and replies flush in replica order,
// so traces and totals are bit-identical at any worker count. The four
// fault-injection scenarios (replica crash, load spike, hot-key skew,
// slow replica; microsvc.DefaultScenarios) pin everything that shapes
// them — seed, load schedule, injections, budgets — so their adaptation
// traces are deterministic artifacts: cmd/app-bench re-runs each scenario
// at worker counts 1,2,4,8, asserts bit-identical traces and totals, and
// BENCH_N.json gates the per-scenario cycle totals, adaptation latencies
// (in sim-ms) and trace lengths against scripts/bench_baseline.json.
//
// # Admission & overload
//
// The plane survives overload by refusing work deterministically instead
// of queueing it unboundedly. Giving ReplicaSetConfig an AdmissionConfig
// puts a tenant-aware admission controller between the front-end's poll
// and the replicas' queues:
//
//   - Tenant envelope. PlaneClient.SendTenant tags each request with a
//     tenant and a client-assigned id using a second frame version: the
//     two bytes where a legacy frame keeps its key length hold the
//     reserved magic 0xFFFF (SendBatch rejects keys that long), followed
//     by a flags byte, the tenant, the id, and then the usual key +
//     sealed body. Untagged requests keep the legacy layout bit for bit,
//     and replies echo the request's envelope, so a plane without an
//     AdmissionConfig is byte-identical to the pre-admission plane.
//
//   - Token buckets and weighted-fair dequeue. Each tenant has a
//     TenantPolicy (Weight, Rate, Burst, MaxQueue); buckets refill once
//     per Step and dispatch proceeds in weighted rounds over the sorted
//     tenant order, so shares are a pure function of config and arrival
//     order — never of map iteration or worker interleaving.
//
//   - Bounded queues and shed. A request arriving past its tenant's
//     MaxQueue or the global MaxGlobalQueue bound is shed at arrival
//     (admitted requests are never shed later) with a sealed reply
//     carrying a deterministic retry-after hint in sim-ms: the time the
//     tenant's queue needs to drain at its refill rate, capped at 64
//     steps. PlaneClient.EnableRetry turns the hints into exponential
//     backoff (hint × 2^attempt), re-sending due retries in (due, id)
//     order; work a retired replica requeues re-enters Step ahead of
//     admission, so it is neither charged twice nor shed twice.
//
//   - Hot-key splitting. When one key exceeds HotKeyPerStep dispatches in
//     a step and its home replica's queue is at least SplitDepth deep,
//     the overflow rotates across SplitWays neighbours — trading strict
//     key affinity for bounded straggler latency, deterministically.
//
// The declarative scenario lab (microsvc.ScenarioSpec, RunSpec) drives
// all of it closed-loop: a spec is pure data — tenants with load
// profiles (uniform, genpack batch-arrival, smartgrid streaming), a
// fault table, an admission config and an assertion table over the
// result's flat metric map — so a new scenario is ~20 lines.
// microsvc.LabScenarios pins eight: overload, noisy-neighbor, cascade,
// slow-network, recovery, crash-state, key-revocation and
// delta-durability; the legacy
// scenarios run through the same engine via Scenario.Spec, replaying the
// exact pre-engine RNG stream.
// cmd/app-bench sweeps the lab across worker counts, asserts every
// metric bit-identical, evaluates each spec's assertions, and runs the
// overload spike once more with the controller stripped
// (ScenarioSpec.WithoutAdmission): admission on must bound the final
// backlog, admission off must let it diverge past 8× that bound.
// cmd/bench-check fails CI on a failed assertion table, a broken
// contrast, or drift in any lab metric.
//
// Because the simulated metrics are deterministic, they are CI-gated.
// scripts/ci.sh — run locally or by .github/workflows/ci.yml — enforces,
// beyond fmt/build/vet/test and -race on the concurrent packages
// (sim, enclave, scbr, eventbus, cryptbox, kvstore, mapreduce, the
// application plane: attest, microsvc, orchestrator, the data plane:
// transfer, registry, container, and the protected-file layer under the
// durable WAL: fsshield, shield, sconert):
//
//   - The bench-regression gate (scripts/bench_check.sh): every
//     deterministic metric in the newest BENCH_N.json — sim-cycles/match,
//     faults/match, Figure 3 point values, kv-bench and map/reduce cycle
//     totals — must match scripts/bench_baseline.json exactly. Wall-clock
//     fields are never gated (they measure the host). Deterministic means
//     deterministic: a drift is a semantic change to the simulator or its
//     data structures, so the gate fails the build rather than averaging.
//
//   - The golden-drift gate: the golden recorders rerun with
//     GOLDEN_UPDATE=1 in a scratch copy of the tree, and git diff must
//     stay silent on testdata — the committed goldens are exactly what the
//     current code regenerates.
//
// To change modeled costs deliberately: regenerate goldens with
// GOLDEN_UPDATE=1 go test ./..., regenerate BENCH_N.json with
// scripts/bench_smoke.sh N, refresh the metric baseline with
// scripts/bench_check.sh -update, and commit all three together so the PR
// diff shows the intended figure changes.
//
// # Durability & recovery
//
// kvstore.DurableStore makes the sharded secure store survive total
// process loss by reusing the data plane's sealed-chunk machinery for its
// own persistence artifacts:
//
//   - Per-shard sealed WAL. Every PutBatch group-commits one WAL record
//     per touched shard before the in-enclave tables apply: the batch's
//     ops encode to a compact codec, seal convergently
//     (transfer.SealConvergent — identical log segments dedup like any
//     other chunk), and the record carries the convergent key wrapped
//     under the shard's WAL key plus a MAC bound to the log's identity
//     and position (fsshield.ChunkAAD over name, epoch, record index), so
//     records cannot be reordered, transplanted across shards or replayed
//     across epochs. Torn tails are part of the contract: damage confined
//     to the final record reads as a clean crash point and truncates;
//     damage earlier in the log is a hard ErrWALCorrupt. A fuzz target
//     (FuzzDecodeWALRecord) pins that every input lands in exactly
//     torn, corrupt or valid.
//
//   - Incremental sealed snapshots. Snapshot tracks per-shard dirty
//     state: a shard untouched since its last packed snapshot publishes a
//     tiny reuse record chaining to its parent manifest instead of
//     re-packing — the delta scales with what changed, not with the
//     dataset. Dirty shards serialize their table, pack it convergently
//     (transfer.PackConvergent) and publish the blob set through
//     internal/registry — chunk-granular, content-addressed, and deduped
//     against every image layer and prior snapshot already stored, so
//     even a packed shard republishes only its changed chunks. Every
//     snapshot record (packed or reuse) seals under a per-shard key
//     derived from the service key the attest.KeyBroker released, with
//     both the sequence number and the parent sequence bound into the
//     AAD: a chain cannot be spliced, re-pointed or rolled back without
//     failing authentication. The registry refuses sequence rollbacks and
//     keeps the chain's history addressable (SnapshotAt); packed shards
//     roll their WAL to a fresh epoch, reused shards keep their current
//     (empty) one.
//
//   - WAL-segment GC. Rolled epochs stay as sealed segments until
//     DurableStore.GC retires the ones the newest durable snapshot has
//     made redundant — strictly below the shard's replay epoch, minus a
//     configurable retention margin of newest sealed epochs
//     (GCRetainEpochs, default 1). GC never collects past the newest
//     published snapshot: a shard that has never snapshotted retires
//     nothing, so the byte set recovery needs is never narrowed.
//
//   - Recovery. RecoverDurableStore walks each shard's delta chain from
//     the latest record back to its packed ancestor — verifying every
//     link's parent binding, refusing missing links, spliced parents and
//     non-monotonic epochs — then pulls only the chunks its node cache is
//     missing via container.Engine.PullBlobSet (the same parallel
//     verified pull as image boot: per-chunk digest verification, tamper
//     isolation, warm BlobCache hits) and replays only the post-snapshot
//     WAL tail inside accounting spans. A warm node recovering a delta
//     chain therefore fetches the changed chunks, not the dataset.
//     Snapshot-bootstrap and log-replay sim-cycles are topology
//     (worker-invariant), so RecoveryStats is CI-gated like every other
//     simulated figure. Two fuzz targets pin the adversarial floor:
//     FuzzDecodeWALRecord (every WAL input lands torn, corrupt or valid)
//     and FuzzRecoverSnapshotChain (every chain mutation — spliced
//     parent, dropped link, bitflip, truncation, tampered chunk — either
//     recovers the exact reference state or is refused).
//
// The crash-state lab scenario drives the whole loop closed: replicas
// crash with total state loss mid-run, recover from snapshot + tail, and
// must come back bit-identical to a never-crashed twin fed the same
// request stream; delta-durability narrows the working set so most shards
// go cold, exercising reuse chains, chain-walking recovery and GC under
// the same bit-identical pin; key-revocation drives the fail-closed half,
// revoking the service mid-run so replacement replicas are denied keys
// until a reinstate lets them re-attest. cmd/durability-bench measures
// the delta against the full-snapshot baseline — publish chunks and
// cycles, warm-vs-cold recovery fetches, GC retirements — swept across
// worker counts and gated by cmd/bench-check.
//
// # Cluster & placement
//
// internal/cluster turns the implicit single node into a simulated
// multi-node SGX cluster: N nodes, each owning its own enclave platforms,
// its own node-local container.BlobCache, and its own attested KeyBroker
// session ("cluster/node<i>"), joined to the origin registry by links
// whose chunk-transfer cost is the analytic transfer.LinkCost model
// (per-chunk latency + per-KiB cycles, summed atomically so concurrent
// fetch workers cannot reorder the totals). The orchestrator grows a
// placement axis to match: a Placer scores candidate NodeInfo snapshots
// by blob-cache locality (warm fraction of the service image's chunk set)
// against current load, with ties broken on the lowest node index — a
// pure function of the candidate set, pinned permutation-invariant by
// property test. microsvc.ClusterSet rides the replica set on top: the
// front-end boots on the gateway (node 0, warming its cache), every
// replica boots where the placer says, and a boot that fails chunk
// verification isolates its node before the error propagates.
//
// Node-level faults map onto the plane's existing reactions: a node
// crash kills its replicas (the orchestrator reschedules onto surviving
// nodes — the warm-vs-cold fetch contrast is a gated metric,
// warm_lt_cold_ok); a network partition makes a node's link refuse and
// its replicas unreachable (routed requests shed deterministically with
// retry-after; served_via_unreachable is the fail-open tripwire, gated
// to zero); a byzantine registry serves one node tampered chunks (pulls
// fail closed on digest verification, the node isolates, placement
// routes around it; tampered_cached — a full cache audit — is the
// cache-poisoning tripwire, gated to zero). Three lab scenarios
// (node-crash, node-partition, byzantine-registry) drive these loops
// closed, swept across workers 1,2,4,8 with every per-node figure
// bit-identical.
//
// Node count, capacity, link cost and placer weights are topology; host
// workers remain execution-only. Components report their counters
// through one shared surface, stats.Source (flat name → float64
// snapshots, implemented by the registry, blob cache, scheduler, replica
// set and cluster), which is what folds the per-node figures into the
// gated scenario metric tables.
//
// # Data plane
//
// Image distribution — the paper's secure Docker workflow (Figure 2)
// carried by its "efficient transmission of large amounts of data"
// component (§III-B(3)) — runs on one content-addressed sealed data plane
// built from three layers:
//
//   - internal/transfer is the chunk substrate: payloads stream through
//     Pack/Unpack (io.Reader/io.Writer, one chunk resident at a time),
//     each chunk compressed with pooled flate state, sealed, and pinned
//     under a Merkle root. Convergent mode (PackConvergent) seals every
//     chunk under a key derived from its own content with a deterministic
//     nonce, so identical content produces bit-identical sealed bytes;
//     the per-chunk keys ride in the manifest, which is the trusted
//     artifact anyway. Manifest validation pins the leaf count to the
//     declared geometry (the forged-count guard, mirrored from the scbr
//     codec), and a fuzz target covers manifest decoding.
//
//   - internal/registry stores layers chunk-granularly: every layer is
//     encoded deterministically (image.Layer.Encode, length-prefixed and
//     parseable, distinct from the digest-defining canonical form) and
//     chunked convergently, and blobs are keyed by chunk content digest.
//     Dedup keying is exactly that digest: a base layer shared by N
//     images is stored once, and Registry.Stats counts the hits. The
//     HTTP front end serves image manifests, layer chunk manifests and
//     single blobs, with digest-conditional GET (ETag/If-None-Match) on
//     the content-addressed endpoints.
//
//   - internal/container pulls: Engine.PullImage fetches the manifests,
//     computes the unique chunk set, classifies it against the node-local
//     BlobCache, fans the missing chunks out across workers
//     (sim.ParallelFor), verifies each against its digest before it may
//     enter the cache (a digest can never map to wrong bytes, so the
//     cache is unpoisonable by construction), and reassembles each layer
//     inside a per-layer verification enclave charged through the
//     transfer receiver. Failed chunks fail alone; everything verified
//     stays cached, so retrying a partial pull resumes instead of
//     restarting. Engines sharing one BlobCache give the Nth replica on
//     a node a zero-fetch boot — microsvc's container-mode ReplicaSet
//     wires exactly that.
//
// Topology vs execution: the chunk set, the dedup and cache outcomes and
// the per-layer enclaves are topology — pure functions of image bytes and
// cache state. Pull worker count is execution only. Every PullStats field
// (chunks fetched, dedup hits, serial vs critical-path cycles, faults) is
// therefore bit-identical across worker counts; cmd/pull-bench sweeps
// workers 1,2,4,8, asserts exactly that plus the zero-fetch warm boot,
// and its deterministic metrics land in BENCH_N.json where
// scripts/bench_check.sh gates them like every other simulated figure.
//
// # Wire front end & wall-clock benchmarking
//
// internal/wire puts real HTTP in front of the attested plane without
// moving any trust there: SCBR subscribe/publish/poll and ReplicaSet
// send/poll-reply endpoints carry the existing sealed envelopes verbatim
// as request and response bodies, so the front end relays bytes it cannot
// open — a compromised server degrades availability, never
// confidentiality. Confidentiality alone does not close the control
// surface, though, so the wire locks it down explicitly: an SCBR
// handshake never displaces a live session (rotating a client ID's key
// requires Rehandshake, a proof sealed under the current session key —
// without this, any network peer could re-key a victim's ID and have its
// future deliveries sealed to the attacker), SCBR polls are destructive
// drains and therefore demand a sealed single-use token with a monotonic
// anti-replay counter, wire clients can attest the broker enclave through
// nonce-bound quotes (/scbr/quote + DialSCBROpts) before handing over
// filters just like in-process scbr.Connect, and Config.AuthToken
// optionally gates the whole /scbr/* + /plane/* surface behind a bearer
// token for deployments beyond a trusted loopback. The plane gateway
// validates ingress frames structurally (microsvc.CheckFrame) and routes
// reply frames to per-tenant mailboxes by their cleartext tenant header —
// one polling client per tenant, each mailbox capped (drop-oldest, the
// mail_dropped counter) so forged tenant IDs cannot grow memory without
// bound; the frame-batch codec clamps claimed counts by the physical
// minimum before allocating (the forged-count guard again) and rejects
// trailing garbage; bodies are bounded via internal/httpx, the plumbing
// shared with the registry's front end, and client-side reads are capped
// symmetrically. A PlaneClient built over wire.PlaneTransport is
// byte-for-byte the in-process client — the wire tests prove the sealed
// replies identical because the bus fans the same frames to both.
//
// This is where the repo's two kinds of performance measurement meet.
// Sim-cycle figures are modeled costs: deterministic, bit-identical
// across hosts, gated by scripts/bench_check.sh. Wall-clock figures
// measure the host and are informational only. internal/loadgen keeps
// the two cleanly apart: its closed-loop harness (fixed client
// population, seeded key/tenant/payload mix, warmup/inject/recover
// phases in lockstep ticks) produces counters and payload-size histogram
// buckets that are pure functions of the spec — gated — while its
// fixed-bucket latency histogram (p50/p95/p99/max) times real HTTP round
// trips — informational. cmd/wire-bench runs the whole stack twice on
// fresh loopback servers and asserts every deterministic counter matches
// bit-for-bit (runs_equal, gated); `wire-bench -pprof` additionally
// mounts net/http/pprof on the bench listener, which is how the hot-path
// work is found: profile, fold allocations out of the frame/seal paths
// (exact-capacity contiguous seal buffers, precomputed AADs, slice-based
// admission histograms), and prove the wins with go test -benchmem
// before/after while bench-check pins every sim metric unchanged.
package securecloud
