module securecloud

go 1.24.0
