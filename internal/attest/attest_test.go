package attest

import (
	"errors"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

func signer(b byte) cryptbox.Digest {
	var d cryptbox.Digest
	for i := range d {
		d[i] = b
	}
	return d
}

func buildEnclave(t *testing.T, p *enclave.Platform, code []byte, sgn cryptbox.Digest) *enclave.Enclave {
	t.Helper()
	e, err := p.ECreate(1<<20, sgn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EAdd(code); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQuoteVerifyHappyPath(t *testing.T) {
	svc := NewService()
	p := enclave.NewPlatform(enclave.Config{})
	q, err := svc.Provision(p, "dc1-rack3-node7")
	if err != nil {
		t.Fatal(err)
	}
	e := buildEnclave(t, p, []byte("microservice"), signer(1))
	r, _ := e.CreateReport([]byte("tls-key-hash"))
	quote, err := q.Quote(r)
	if err != nil {
		t.Fatal(err)
	}
	v, err := svc.Verify(quote)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := e.Measurement()
	if v.MREnclave != m {
		t.Fatal("verdict MRENCLAVE mismatch")
	}
	if v.MRSigner != signer(1) {
		t.Fatal("verdict MRSIGNER mismatch")
	}
	if string(v.Data[:12]) != "tls-key-hash" {
		t.Fatal("report data not carried through")
	}
}

func TestQuoteRejectsForeignReport(t *testing.T) {
	svc := NewService()
	p1 := enclave.NewPlatform(enclave.Config{})
	p2 := enclave.NewPlatform(enclave.Config{})
	q1, _ := svc.Provision(p1, "node1")
	e2 := buildEnclave(t, p2, []byte("x"), signer(1))
	r, _ := e2.CreateReport(nil)
	if _, err := q1.Quote(r); !errors.Is(err, ErrBadReport) {
		t.Fatalf("quoting a foreign report: err = %v, want ErrBadReport", err)
	}
}

func TestVerifyRejectsUnknownPlatform(t *testing.T) {
	svcA, svcB := NewService(), NewService()
	p := enclave.NewPlatform(enclave.Config{})
	q, _ := svcA.Provision(p, "node1")
	e := buildEnclave(t, p, []byte("x"), signer(1))
	r, _ := e.CreateReport(nil)
	quote, _ := q.Quote(r)
	if _, err := svcB.Verify(quote); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("err = %v, want ErrUnknownPlatform", err)
	}
}

func TestVerifyRejectsTamperedQuote(t *testing.T) {
	svc := NewService()
	p := enclave.NewPlatform(enclave.Config{})
	q, _ := svc.Provision(p, "node1")
	e := buildEnclave(t, p, []byte("x"), signer(1))
	r, _ := e.CreateReport(nil)
	quote, _ := q.Quote(r)

	bad := quote
	bad.Report.MREnclave[0] ^= 1
	if _, err := svc.Verify(bad); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered measurement: err = %v, want ErrBadSignature", err)
	}
	bad = quote
	bad.Signature = append([]byte(nil), quote.Signature...)
	bad.Signature[0] ^= 1
	if _, err := svc.Verify(bad); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered signature: err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsRevokedPlatform(t *testing.T) {
	svc := NewService()
	p := enclave.NewPlatform(enclave.Config{})
	q, _ := svc.Provision(p, "node1")
	e := buildEnclave(t, p, []byte("x"), signer(1))
	r, _ := e.CreateReport(nil)
	quote, _ := q.Quote(r)
	svc.Revoke("node1")
	if _, err := svc.Verify(quote); err == nil {
		t.Fatal("revoked platform's quote verified")
	}
}

func TestProvisionRejectsDuplicateID(t *testing.T) {
	svc := NewService()
	p := enclave.NewPlatform(enclave.Config{})
	if _, err := svc.Provision(p, "node1"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Provision(p, "node1"); err == nil {
		t.Fatal("duplicate provisioning accepted")
	}
}

func TestPolicyCheck(t *testing.T) {
	svc := NewService()
	p := enclave.NewPlatform(enclave.Config{})
	q, _ := svc.Provision(p, "node1")
	e := buildEnclave(t, p, []byte("svc-v1"), signer(7))
	m, _ := e.Measurement()

	byMeasurement := Policy{AllowedMREnclave: []cryptbox.Digest{m}}
	bySigner := Policy{AllowedMRSigner: []cryptbox.Digest{signer(7)}}
	denyAll := Policy{}

	if _, err := AttestEnclave(e, q, svc, byMeasurement, nil); err != nil {
		t.Fatalf("measurement policy rejected genuine enclave: %v", err)
	}
	if _, err := AttestEnclave(e, q, svc, bySigner, nil); err != nil {
		t.Fatalf("signer policy rejected genuine enclave: %v", err)
	}
	if _, err := AttestEnclave(e, q, svc, denyAll, nil); !errors.Is(err, ErrPolicy) {
		t.Fatalf("empty policy allowed enclave: %v", err)
	}
}

func TestPolicyBlocksImpostorCode(t *testing.T) {
	svc := NewService()
	p := enclave.NewPlatform(enclave.Config{})
	q, _ := svc.Provision(p, "node1")
	genuine := buildEnclave(t, p, []byte("genuine"), signer(1))
	impostor := buildEnclave(t, p, []byte("impostor"), signer(1))
	m, _ := genuine.Measurement()
	policy := Policy{AllowedMREnclave: []cryptbox.Digest{m}}
	if _, err := AttestEnclave(impostor, q, svc, policy, nil); !errors.Is(err, ErrPolicy) {
		t.Fatalf("impostor passed measurement policy: %v", err)
	}
}

func TestPolicyMinSVNTCBRecovery(t *testing.T) {
	svc := NewService()
	p := enclave.NewPlatform(enclave.Config{})
	q, _ := svc.Provision(p, "node1")

	buildV := func(svn uint16, code string) *enclave.Enclave {
		e, err := p.ECreate(1<<20, signer(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetSVN(svn); err != nil {
			t.Fatal(err)
		}
		if _, err := e.EAdd([]byte(code)); err != nil {
			t.Fatal(err)
		}
		if err := e.EInit(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	vulnerable := buildV(1, "service-v1")
	patched := buildV(2, "service-v2")

	policy := Policy{AllowedMRSigner: []cryptbox.Digest{signer(1)}, MinSVN: 2}
	if _, err := AttestEnclave(vulnerable, q, svc, policy, nil); !errors.Is(err, ErrPolicy) {
		t.Fatalf("vulnerable SVN accepted: %v", err)
	}
	v, err := AttestEnclave(patched, q, svc, policy, nil)
	if err != nil {
		t.Fatalf("patched build rejected: %v", err)
	}
	if v.SVN != 2 {
		t.Fatalf("verdict SVN = %d", v.SVN)
	}
}

func TestSetSVNAfterInitRejected(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	e := buildEnclave(t, p, []byte("x"), signer(1))
	if err := e.SetSVN(3); err == nil {
		t.Fatal("SVN change after EINIT accepted")
	}
}

func TestAttestEnclaveUninitialised(t *testing.T) {
	svc := NewService()
	p := enclave.NewPlatform(enclave.Config{})
	q, _ := svc.Provision(p, "node1")
	e, _ := p.ECreate(1<<20, signer(1))
	if _, err := AttestEnclave(e, q, svc, Policy{}, nil); err == nil {
		t.Fatal("attested an uninitialised enclave")
	}
}
