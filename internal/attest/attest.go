// Package attest implements remote attestation for simulated SGX enclaves,
// mirroring the Intel SGX attestation architecture: a quoting enclave on
// each platform converts locally verifiable reports into remotely
// verifiable quotes, and an attestation service (the analogue of the Intel
// Attestation Service, IAS) validates quotes for relying parties.
//
// SecureCloud relies on this chain to release secrets to containers: the
// startup configuration file (SCF) with file-system keys and stream keys is
// delivered only to an enclave whose identity has been verified (paper
// §V-A). Signing uses Ed25519 from the standard library; platforms are
// provisioned with their attestation key pair at manufacture time, which
// the Service records like Intel's provisioning service records EPID group
// membership.
package attest

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// Errors returned by quoting and verification.
var (
	ErrUnknownPlatform = errors.New("attest: unknown platform")
	ErrBadReport       = errors.New("attest: local report verification failed")
	ErrBadSignature    = errors.New("attest: quote signature invalid")
	ErrPolicy          = errors.New("attest: enclave identity not allowed by policy")
)

// Quote is a remotely verifiable attestation statement.
type Quote struct {
	PlatformID string
	Report     enclave.Report
	Signature  []byte
}

// signedBody returns the bytes covered by the quote signature. The local
// MAC is excluded: it is platform-secret keyed and meaningless remotely.
func (q Quote) signedBody() []byte {
	body := q.Report
	body.MAC = [cryptbox.MACSize]byte{}
	return append([]byte(q.PlatformID+"|"), body.Marshal()...)
}

// Quoter is the quoting enclave of one platform. It holds the platform's
// attestation private key and turns local reports into quotes after
// verifying them against the platform report key.
type Quoter struct {
	platform   *enclave.Platform
	platformID string
	priv       ed25519.PrivateKey
}

// Quote verifies a local report and signs it into a Quote.
func (q *Quoter) Quote(r enclave.Report) (Quote, error) {
	if !q.platform.VerifyReport(r) {
		return Quote{}, ErrBadReport
	}
	out := Quote{PlatformID: q.platformID, Report: r}
	out.Signature = ed25519.Sign(q.priv, out.signedBody())
	return out, nil
}

// PlatformID returns the provisioned platform identity.
func (q *Quoter) PlatformID() string { return q.platformID }

// Service is the attestation verification service trusted by relying
// parties (the IAS analogue). It knows the attestation public key of every
// provisioned platform.
type Service struct {
	mu        sync.RWMutex
	platforms map[string]ed25519.PublicKey
	revoked   map[string]bool
}

// NewService returns an empty attestation service.
func NewService() *Service {
	return &Service{
		platforms: make(map[string]ed25519.PublicKey),
		revoked:   make(map[string]bool),
	}
}

// Provision generates an attestation key pair for platform p, registers the
// public half with the service under platformID, and returns the platform's
// quoting enclave. This models the one-time provisioning protocol run at
// platform manufacture.
func (s *Service) Provision(p *enclave.Platform, platformID string) (*Quoter, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: generating attestation key: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.platforms[platformID]; dup {
		return nil, fmt.Errorf("attest: platform %q already provisioned", platformID)
	}
	s.platforms[platformID] = pub
	return &Quoter{platform: p, platformID: platformID, priv: priv}, nil
}

// Revoke marks a platform's attestation key as revoked (e.g. after a
// microcode compromise); its quotes no longer verify.
func (s *Service) Revoke(platformID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revoked[platformID] = true
}

// IsRevoked reports whether a platform's attestation key has been revoked.
// Relying parties that cache verification results must re-check this on
// every release decision: revocation must take effect immediately, not at
// the next cache miss.
func (s *Service) IsRevoked(platformID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.revoked[platformID]
}

// Verdict is the outcome of quote verification.
type Verdict struct {
	PlatformID string
	MREnclave  cryptbox.Digest
	MRSigner   cryptbox.Digest
	// SVN is the enclave's security version (ISVSVN).
	SVN uint16
	// Data echoes the report data (typically a channel binding).
	Data [enclave.ReportDataSize]byte
}

// Verify validates a quote and returns the attested identity.
func (s *Service) Verify(q Quote) (Verdict, error) {
	s.mu.RLock()
	pub, ok := s.platforms[q.PlatformID]
	revoked := s.revoked[q.PlatformID]
	s.mu.RUnlock()
	if !ok {
		return Verdict{}, ErrUnknownPlatform
	}
	if revoked {
		return Verdict{}, fmt.Errorf("%w: platform %q revoked", ErrBadSignature, q.PlatformID)
	}
	if !ed25519.Verify(pub, q.signedBody(), q.Signature) {
		return Verdict{}, ErrBadSignature
	}
	return Verdict{
		PlatformID: q.PlatformID,
		MREnclave:  q.Report.MREnclave,
		MRSigner:   q.Report.MRSigner,
		SVN:        q.Report.SVN,
		Data:       q.Report.Data,
	}, nil
}

// Policy is a relying party's allow-list over attested identities. A zero
// policy allows nothing; add at least one measurement or signer. MinSVN
// additionally rejects enclaves whose security version predates the
// required one — SGX's TCB-recovery mechanism: after a vulnerability fix,
// relying parties raise MinSVN and old builds stop receiving secrets.
type Policy struct {
	AllowedMREnclave []cryptbox.Digest
	AllowedMRSigner  []cryptbox.Digest
	MinSVN           uint16
}

// Check returns nil when the verdict satisfies the policy: either the exact
// measurement or the signer is allow-listed, and the security version is
// recent enough.
func (p Policy) Check(v Verdict) error {
	if v.SVN < p.MinSVN {
		return fmt.Errorf("%w: svn %d below required %d", ErrPolicy, v.SVN, p.MinSVN)
	}
	for _, m := range p.AllowedMREnclave {
		if v.MREnclave == m {
			return nil
		}
	}
	for _, s := range p.AllowedMRSigner {
		if v.MRSigner == s {
			return nil
		}
	}
	return fmt.Errorf("%w: mrenclave=%s mrsigner=%s", ErrPolicy, v.MREnclave, v.MRSigner)
}

// AttestEnclave is the full client-side flow: create a report carrying
// userData inside e, quote it with the platform quoter, verify it at the
// service, and check the relying party's policy.
func AttestEnclave(e *enclave.Enclave, q *Quoter, s *Service, policy Policy, userData []byte) (Verdict, error) {
	r, err := e.CreateReport(userData)
	if err != nil {
		return Verdict{}, err
	}
	quote, err := q.Quote(r)
	if err != nil {
		return Verdict{}, err
	}
	v, err := s.Verify(quote)
	if err != nil {
		return Verdict{}, err
	}
	if err := policy.Check(v); err != nil {
		return Verdict{}, err
	}
	return v, nil
}
