package attest

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// KeyBroker errors.
var (
	ErrUnknownService = errors.New("attest: no keys registered for service")
	ErrServiceRevoked = errors.New("attest: service key release revoked")
)

// ServiceKeys is everything one micro-service needs to join the
// application plane: the request key its clients seal requests under, and
// the stream keys of the bus topics it consumes and produces. In the paper
// these travel inside the SCF; here they are the KeyBroker's release
// payload, delivered over the attested sealed channel.
type ServiceKeys struct {
	Request cryptbox.Key            `json:"request"`
	Topics  map[string]cryptbox.Key `json:"topics"`
}

// Topic returns the stream key of one topic and whether it was released.
func (k ServiceKeys) Topic(name string) (cryptbox.Key, bool) {
	key, ok := k.Topics[name]
	return key, ok
}

// Derive returns a key derived from the released request key for an
// auxiliary duty of the service — per-shard WAL sealing, snapshot manifest
// sealing. Deriving (instead of registering one key per duty) keeps the
// broker's release payload fixed while still giving every duty its own
// key, and the derivation chain roots every durability artifact in a key
// that only an attested replica could have obtained.
func (k ServiceKeys) Derive(label string) (cryptbox.Key, error) {
	return cryptbox.DeriveKey(k.Request, "svc-derive|"+label)
}

// keyEntry is one registered service: its release policy, its keys, and
// its revocation state.
type keyEntry struct {
	policy   Policy
	keys     ServiceKeys
	revoked  bool
	released uint64
}

// cacheKey identifies one verified quote. The cache is organised by
// (platform, measurement) — the identity pair replicas of one service on
// one node share — but additionally pins the hash of the exact signed body
// and signature: a cache hit must never release keys to a quote whose
// report data (the channel key share!) was not itself signature-verified,
// otherwise a forger could ride a cached verdict with their own channel
// key. The hash makes cache poisoning structurally impossible while still
// skipping the Ed25519 verification for genuinely repeated quotes.
type cacheKey struct {
	platform    string
	measurement cryptbox.Digest
	body        cryptbox.Digest
}

// KeyBroker is the paper's CAS/SCF release path specialised for service
// keys (§V-A): it holds each micro-service's request and stream keys and
// releases them only to an enclave whose quote verifies against the
// attestation service and whose identity satisfies the service's policy.
// Replicas of the application plane have no other way to obtain keys — the
// ReplicaSet constructors take a KeyBroker, never raw keys.
type KeyBroker struct {
	svc *Service

	mu      sync.Mutex
	entries map[string]*keyEntry
	cache   map[cacheKey]Verdict
	hits    uint64
	misses  uint64
}

// NewKeyBroker builds a key broker trusting the given attestation service.
func NewKeyBroker(svc *Service) *KeyBroker {
	return &KeyBroker{
		svc:     svc,
		entries: make(map[string]*keyEntry),
		cache:   make(map[cacheKey]Verdict),
	}
}

// Register stores keys to be released for service to enclaves matching
// policy. Re-registering replaces the entry (and clears a revocation) —
// the owner rotating keys or updating the policy for a new build.
func (kb *KeyBroker) Register(service string, policy Policy, keys ServiceKeys) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	kb.entries[service] = &keyEntry{policy: policy, keys: keys}
}

// Revoke stops all further releases for service. Already-released keys
// cannot be clawed back (the paper's trust model accepts this); what
// revocation guarantees is that no new replica — including one presenting
// a previously verified, cached quote — receives keys afterwards.
func (kb *KeyBroker) Revoke(service string) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if e, ok := kb.entries[service]; ok {
		e.revoked = true
	}
}

// CacheStats returns (hits, misses) of the quote-verification cache.
func (kb *KeyBroker) CacheStats() (hits, misses uint64) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	return kb.hits, kb.misses
}

// Released returns how many times service's keys have been released.
func (kb *KeyBroker) Released(service string) uint64 {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if e, ok := kb.entries[service]; ok {
		return e.released
	}
	return 0
}

// maxQuoteCache bounds the verification cache. Fresh boots carry fresh
// channel keys in their report data, so their cache entries never hit
// again; when the cache fills it is reset wholesale — an epoch flush, the
// simplest policy that keeps the broker's footprint bounded while still
// serving the genuinely-repeated-quote case between flushes.
const maxQuoteCache = 1024

// verify validates a quote, consulting the verification cache. Platform
// revocation is re-checked on every call even on a cache hit — a cached
// verdict must never outlive the platform's standing.
func (kb *KeyBroker) verify(q Quote) (Verdict, error) {
	if kb.svc.IsRevoked(q.PlatformID) {
		return Verdict{}, fmt.Errorf("%w: platform %q revoked", ErrBadSignature, q.PlatformID)
	}
	ck := cacheKey{
		platform:    q.PlatformID,
		measurement: q.Report.MREnclave,
		body:        cryptbox.Sum(append(q.signedBody(), q.Signature...)),
	}
	kb.mu.Lock()
	v, ok := kb.cache[ck]
	if ok {
		kb.hits++
	} else {
		kb.misses++
	}
	kb.mu.Unlock()
	if ok {
		return v, nil
	}
	v, err := kb.svc.Verify(q)
	if err != nil {
		return Verdict{}, err
	}
	kb.mu.Lock()
	if len(kb.cache) >= maxQuoteCache {
		kb.cache = make(map[cacheKey]Verdict)
	}
	kb.cache[ck] = v
	kb.mu.Unlock()
	return v, nil
}

// Release verifies a quote, checks the service's policy and revocation
// state, and returns the service keys sealed to the channel key share in
// the quote's report data, alongside the broker's ephemeral public key.
// There is no unsealed variant: keys leave the broker encrypted to an
// attested enclave or not at all.
func (kb *KeyBroker) Release(service string, q Quote) (pub, sealed []byte, err error) {
	// Registration and revocation are map lookups — settle them before
	// paying for (and caching) a signature verification.
	kb.mu.Lock()
	e, ok := kb.entries[service]
	revoked := ok && e.revoked
	kb.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownService, service)
	}
	if revoked {
		return nil, nil, fmt.Errorf("%w: %s", ErrServiceRevoked, service)
	}
	v, err := kb.verify(q)
	if err != nil {
		return nil, nil, err
	}
	if err := e.policy.Check(v); err != nil {
		return nil, nil, err
	}
	payload, err := json.Marshal(e.keys)
	if err != nil {
		return nil, nil, err
	}
	pub, sealed, err = SealToVerdict(v, releaseLabel(service), payload)
	if err != nil {
		return nil, nil, err
	}
	// Re-check standing at the last moment: a Revoke that completed while
	// this release was in flight must win, or its "no further releases"
	// guarantee would have a window.
	kb.mu.Lock()
	cur, ok := kb.entries[service]
	if !ok || cur.revoked {
		kb.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %s", ErrServiceRevoked, service)
	}
	cur.released++
	kb.mu.Unlock()
	return pub, sealed, nil
}

// releaseLabel binds a release channel to the service it releases for, so
// a response for one service cannot be fed to a replica of another.
func releaseLabel(service string) string { return "svc-keys|" + service }

// FetchServiceKeys runs the replica-side startup protocol: generate an
// ephemeral channel key inside the enclave, bind its public half into an
// attestation report, quote it, present the quote to the key broker, and
// open the sealed response. This is the only path by which application-
// plane services obtain their keys.
func FetchServiceKeys(enc *enclave.Enclave, quoter *Quoter, kb *KeyBroker, service string) (ServiceKeys, error) {
	priv, err := NewChannelKey()
	if err != nil {
		return ServiceKeys{}, err
	}
	report, err := enc.CreateReport(priv.PublicKey().Bytes())
	if err != nil {
		return ServiceKeys{}, err
	}
	quote, err := quoter.Quote(report)
	if err != nil {
		return ServiceKeys{}, err
	}
	pub, sealed, err := kb.Release(service, quote)
	if err != nil {
		return ServiceKeys{}, err
	}
	raw, err := OpenSealed(priv, pub, sealed, releaseLabel(service))
	if err != nil {
		return ServiceKeys{}, err
	}
	var keys ServiceKeys
	if err := json.Unmarshal(raw, &keys); err != nil {
		return ServiceKeys{}, fmt.Errorf("attest: decoding service keys: %w", err)
	}
	return keys, nil
}
