package attest

import (
	"errors"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

func testKeys(t *testing.T) ServiceKeys {
	t.Helper()
	var root cryptbox.Key
	root[0] = 0x4B
	req, err := cryptbox.DeriveKey(root, "req")
	if err != nil {
		t.Fatal(err)
	}
	in, err := cryptbox.DeriveKey(root, "in")
	if err != nil {
		t.Fatal(err)
	}
	return ServiceKeys{Request: req, Topics: map[string]cryptbox.Key{"svc/in": in}}
}

// brokerFixture provisions one platform, builds one enclave on it, and
// registers keys for "svc" released to that enclave's measurement.
func brokerFixture(t *testing.T) (*Service, *KeyBroker, *Quoter, *enclave.Enclave, ServiceKeys) {
	t.Helper()
	svc := NewService()
	kb := NewKeyBroker(svc)
	p := enclave.NewPlatform(enclave.Config{})
	q, err := svc.Provision(p, "node-a")
	if err != nil {
		t.Fatal(err)
	}
	e := buildEnclave(t, p, []byte("svc-code"), signer(3))
	m, err := e.Measurement()
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(t)
	kb.Register("svc", Policy{AllowedMREnclave: []cryptbox.Digest{m}}, keys)
	return svc, kb, q, e, keys
}

func TestFetchServiceKeysHappyPath(t *testing.T) {
	_, kb, q, e, want := brokerFixture(t)
	got, err := FetchServiceKeys(e, q, kb, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if got.Request != want.Request {
		t.Fatal("request key mismatch")
	}
	k, ok := got.Topic("svc/in")
	if !ok || k != want.Topics["svc/in"] {
		t.Fatal("topic key mismatch")
	}
	if kb.Released("svc") != 1 {
		t.Fatalf("Released = %d", kb.Released("svc"))
	}
}

func TestReleaseDeniedByPolicy(t *testing.T) {
	svc, kb, q, _, _ := brokerFixture(t)
	impostor := buildEnclave(t, enclavePlatform(q), []byte("impostor-code"), signer(3))
	if _, err := FetchServiceKeys(impostor, q, kb, "svc"); !errors.Is(err, ErrPolicy) {
		t.Fatalf("impostor got keys: err = %v, want ErrPolicy", err)
	}
	_ = svc
}

func enclavePlatform(q *Quoter) *enclave.Platform { return q.platform }

func TestReleaseUnknownService(t *testing.T) {
	_, kb, q, e, _ := brokerFixture(t)
	if _, err := FetchServiceKeys(e, q, kb, "other"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v, want ErrUnknownService", err)
	}
}

func TestReleaseRejectsForgedQuote(t *testing.T) {
	_, kb, _, e, _ := brokerFixture(t)
	r, err := e.CreateReport(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	forged := Quote{PlatformID: "node-a", Report: r, Signature: make([]byte, 64)}
	if _, _, err := kb.Release("svc", forged); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged quote released keys: err = %v, want ErrBadSignature", err)
	}
}

// TestQuoteReplayAcrossPlatforms: a genuine quote from platform A,
// re-presented under platform B's identity, must fail — before and after
// the broker's cache has been warmed for platform A. The signed body binds
// the platform ID, and the cache key includes the platform, so the replay
// neither verifies nor rides A's cached verdict.
func TestQuoteReplayAcrossPlatforms(t *testing.T) {
	svc := NewService()
	kb := NewKeyBroker(svc)
	pa := enclave.NewPlatform(enclave.Config{})
	qa, err := svc.Provision(pa, "node-a")
	if err != nil {
		t.Fatal(err)
	}
	pb := enclave.NewPlatform(enclave.Config{})
	if _, err := svc.Provision(pb, "node-b"); err != nil {
		t.Fatal(err)
	}
	e := buildEnclave(t, pa, []byte("svc-code"), signer(3))
	m, _ := e.Measurement()
	kb.Register("svc", Policy{AllowedMREnclave: []cryptbox.Digest{m}}, testKeys(t))

	priv, err := NewChannelKey()
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.CreateReport(priv.PublicKey().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	quote, err := qa.Quote(r)
	if err != nil {
		t.Fatal(err)
	}

	// Cold cache: the cross-platform replay fails signature verification.
	replay := quote
	replay.PlatformID = "node-b"
	if _, _, err := kb.Release("svc", replay); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("cold replay: err = %v, want ErrBadSignature", err)
	}

	// Warm the cache with the genuine quote, then replay again: the cached
	// verdict for (node-a, m) must not leak to a node-b presentation.
	if _, _, err := kb.Release("svc", quote); err != nil {
		t.Fatal(err)
	}
	if _, _, err := kb.Release("svc", replay); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("warm replay: err = %v, want ErrBadSignature", err)
	}
}

// TestRevocationAfterRelease: once the owner revokes a service, subsequent
// releases fail even for a quote whose verification is already cached —
// the exact scenario a revocation system must not lose to its cache.
func TestRevocationAfterRelease(t *testing.T) {
	_, kb, q, e, _ := brokerFixture(t)
	if _, err := FetchServiceKeys(e, q, kb, "svc"); err != nil {
		t.Fatal(err)
	}
	kb.Revoke("svc")
	if _, err := FetchServiceKeys(e, q, kb, "svc"); !errors.Is(err, ErrServiceRevoked) {
		t.Fatalf("release after revocation: err = %v, want ErrServiceRevoked", err)
	}
	// Re-registering (a new build / rotated keys) clears the revocation.
	m, _ := e.Measurement()
	kb.Register("svc", Policy{AllowedMREnclave: []cryptbox.Digest{m}}, testKeys(t))
	if _, err := FetchServiceKeys(e, q, kb, "svc"); err != nil {
		t.Fatalf("release after re-registration: %v", err)
	}
}

// TestPlatformRevocationBeatsCache: revoking the platform at the
// attestation service stops releases immediately, even though the broker
// has a cached verdict for the exact quote being re-presented.
func TestPlatformRevocationBeatsCache(t *testing.T) {
	svc, kb, q, e, _ := brokerFixture(t)
	priv, err := NewChannelKey()
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.CreateReport(priv.PublicKey().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	quote, err := q.Quote(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := kb.Release("svc", quote); err != nil {
		t.Fatal(err)
	}
	svc.Revoke("node-a")
	if _, _, err := kb.Release("svc", quote); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("cached quote released after platform revocation: err = %v", err)
	}
}

// TestQuoteCacheHits: re-presenting the same quote skips the Ed25519
// verification; a different quote (fresh report data) misses.
func TestQuoteCacheHits(t *testing.T) {
	_, kb, q, e, _ := brokerFixture(t)
	priv, _ := NewChannelKey()
	r, err := e.CreateReport(priv.PublicKey().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	quote, err := q.Quote(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := kb.Release("svc", quote); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := kb.CacheStats()
	if hits != 2 || misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 2/1", hits, misses)
	}
	// A fresh attestation run (new channel key, new report data) is a new
	// quote and must be re-verified.
	if _, err := FetchServiceKeys(e, q, kb, "svc"); err != nil {
		t.Fatal(err)
	}
	_, misses = kb.CacheStats()
	if misses != 2 {
		t.Fatalf("fresh quote did not miss: misses = %d", misses)
	}
}

// TestSealedReleaseConfidential: the release payload on the wire opens
// only with the channel private key — a host relaying the exchange, or a
// party guessing the wrong label, learns nothing.
func TestSealedReleaseConfidential(t *testing.T) {
	_, kb, q, e, _ := brokerFixture(t)
	priv, _ := NewChannelKey()
	r, _ := e.CreateReport(priv.PublicKey().Bytes())
	quote, _ := q.Quote(r)
	pub, sealed, err := kb.Release("svc", quote)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSealed(priv, pub, sealed, "svc-keys|other"); err == nil {
		t.Fatal("sealed keys opened under the wrong protocol label")
	}
	wrong, _ := NewChannelKey()
	if _, err := OpenSealed(wrong, pub, sealed, "svc-keys|svc"); err == nil {
		t.Fatal("sealed keys opened with the wrong channel key")
	}
	if _, err := OpenSealed(priv, pub, sealed, "svc-keys|svc"); err != nil {
		t.Fatalf("legitimate open failed: %v", err)
	}
}
