package stats

import (
	"reflect"
	"testing"
)

type fakeSource struct {
	name string
	m    map[string]float64
}

func (f fakeSource) StatsName() string            { return f.name }
func (f fakeSource) Snapshot() map[string]float64 { return f.m }

func TestCollectPrefixesAndSkipsNil(t *testing.T) {
	got := Collect(
		fakeSource{"a", map[string]float64{"x": 1, "y": 2}},
		nil,
		fakeSource{"b", map[string]float64{"x": 3}},
	)
	want := map[string]float64{"a.x": 1, "a.y": 2, "b.x": 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Collect = %v, want %v", got, want)
	}
}

func TestKeysSorted(t *testing.T) {
	got := Keys(map[string]float64{"b": 1, "a": 2, "c": 3})
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

// TestRepoSourcesCompile is in the implementing packages' own tests; here
// we only pin that the interface stays satisfiable by a value type.
var _ Source = fakeSource{}
