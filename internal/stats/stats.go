// Package stats defines the repo-wide snapshot surface: a Source is
// anything that can report its deterministic counters as a flat
// name → float64 map. The registry, the blob cache, the replica set, the
// SCONE scheduler and the simulated cluster all implement it, so bench
// drivers (and a future /metrics endpoint) enumerate snapshots uniformly
// instead of growing one bespoke Stats() shape per package.
//
// Snapshot values are simulated figures (cycles, counts, bytes) — pure
// functions of config and workload, never of host timing — so a collected
// map is directly gateable by the bench baseline.
package stats

import "sort"

// Source exposes one component's counters as a flat metric map.
type Source interface {
	// StatsName is the component's stable snapshot prefix (e.g. "registry",
	// "cluster"). It must not contain '.'.
	StatsName() string
	// Snapshot returns the current counters. Keys are flat metric names;
	// values are deterministic simulated figures. The returned map is a
	// copy the caller may mutate.
	Snapshot() map[string]float64
}

// Collect merges the snapshots of several sources into one flat map, each
// key prefixed "<name>.". Later sources win on (pathological) duplicate
// names.
func Collect(sources ...Source) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range sources {
		if s == nil {
			continue
		}
		name := s.StatsName()
		for k, v := range s.Snapshot() {
			out[name+"."+k] = v
		}
	}
	return out
}

// Keys returns the sorted key set of a snapshot — the deterministic
// iteration order for emitting or gating a collected map.
func Keys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
