package stats

import (
	"securecloud/internal/cluster"
	"securecloud/internal/container"
	"securecloud/internal/microsvc"
	"securecloud/internal/registry"
	"securecloud/internal/sconert"
)

// Compile-time pins: the repo's snapshot-bearing components satisfy Source.
var (
	_ Source = (*registry.Registry)(nil)
	_ Source = (*container.BlobCache)(nil)
	_ Source = (*sconert.Scheduler)(nil)
	_ Source = (*microsvc.ReplicaSet)(nil)
	_ Source = (*cluster.Cluster)(nil)
)
