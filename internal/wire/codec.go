// Package wire is the HTTP front end over the attested plane: SCBR
// publish/subscribe-poll and ReplicaSet send/poll-reply endpoints that
// carry the existing sealed envelopes verbatim as request and response
// bodies. The transport is untrusted by construction — every byte crossing
// it is already sealed to keys the front end never holds, so HTTP adds
// reach, not trust. The package also exports a Prometheus-style /metrics
// endpoint over the shared stats.Source surface and optional pprof wiring
// for wall-clock profiling.
//
// Exposing the plane to the network also exposes its control surface, and
// confidentiality alone is not enough there. Three guards close the holes
// an anonymous peer would otherwise have: a handshake never displaces a
// live SCBR session (re-keying requires Rehandshake's proof of the old
// session key, so client IDs cannot be taken over); SCBR polls are
// destructive drains and therefore demand a sealed single-use token under
// the session key (replay-protected by a monotonic counter); and
// per-tenant plane mailboxes are capped (DefaultMailboxCap, drop-oldest)
// so forged cleartext tenant IDs cannot grow memory without bound.
// Config.AuthToken optionally gates the whole /scbr/* + /plane/* surface
// behind a bearer token; without it, anonymous peers still cannot read or
// forge sealed traffic or hijack sessions, but they CAN poll plane reply
// mailboxes by tenant ID and submit structurally valid frames — run
// tokenless only on trusted (loopback) networks. Config.Quoter serves
// nonce-bound broker quotes so DialSCBROpts can attest the broker before
// handing over subscription filters, like in-process scbr.Connect.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadBatch flags a malformed frame batch body.
var ErrBadBatch = errors.New("wire: bad frame batch")

// Batch wire form: u32 frame count, then per frame u32 length + bytes,
// all big-endian. Frames are opaque sealed envelopes; the codec moves
// bytes and validates structure only.

// EncodeBatch renders frames into the batch wire form.
func EncodeBatch(frames [][]byte) []byte {
	n := 4
	for _, f := range frames {
		n += 4 + len(f)
	}
	b := make([]byte, 0, n)
	b = binary.BigEndian.AppendUint32(b, uint32(len(frames)))
	for _, f := range frames {
		b = binary.BigEndian.AppendUint32(b, uint32(len(f)))
		b = append(b, f...)
	}
	return b
}

// DecodeBatch parses the batch wire form. The claimed count is clamped by
// the physical minimum (4 bytes of length prefix per frame) before any
// allocation, so a forged count cannot pre-size a huge slice; short frames
// and trailing garbage are rejected outright.
func DecodeBatch(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadBatch, len(b))
	}
	count := int(binary.BigEndian.Uint32(b))
	rest := b[4:]
	if count > len(rest)/4 {
		return nil, fmt.Errorf("%w: count %d exceeds body capacity", ErrBadBatch, count)
	}
	frames := make([][]byte, count)
	for i := range frames {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated at frame %d", ErrBadBatch, i)
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if n > len(rest) {
			return nil, fmt.Errorf("%w: frame %d claims %d of %d bytes", ErrBadBatch, i, n, len(rest))
		}
		frames[i] = rest[:n:n]
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, len(rest))
	}
	return frames, nil
}
