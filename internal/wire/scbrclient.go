package wire

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"securecloud/internal/attest"
	"securecloud/internal/enclave"
	"securecloud/internal/scbr"
)

// SCBRClient is an SCBR endpoint reached over the wire server. The
// handshake and every envelope are the same bytes the in-process client
// exchanges — the server relays them to the broker without opening
// anything, so a compromised front end degrades availability, never
// confidentiality. Polls carry a sealed single-use token (the broker
// refuses drains without proof of the session key), and a live client ID
// can only be re-keyed through Rehandshake, which proves possession of the
// current key.
type SCBRClient struct {
	base string
	id   string
	hc   *http.Client
	auth string
	c    *scbr.Client
}

// SCBRDialOpts tunes DialSCBROpts. The zero value dials like DialSCBR:
// no bearer token, no attestation.
type SCBRDialOpts struct {
	// Auth is the wire server's bearer token (Config.AuthToken), sent as
	// `Authorization: Bearer <token>` on every request.
	Auth string
	// Service and Policy, when Service is non-nil, attest the broker
	// before the handshake: the dialer fetches a nonce-bound quote from
	// /scbr/quote, verifies it at the attestation service and checks the
	// relying-party policy — the wire analogue of scbr.Connect's
	// in-process attestation, refusing to hand filters to an unverified
	// router.
	Service *attest.Service
	Policy  attest.Policy
}

// wireQuote is the JSON rendering of an attest.Quote on /scbr/quote.
type wireQuote struct {
	PlatformID string `json:"platform_id"`
	Report     []byte `json:"report"`
	Signature  []byte `json:"signature"`
}

// DialSCBR performs the X25519 handshake over HTTP and returns a
// session-keyed client (no bearer token, no attestation — see
// DialSCBROpts for both).
func DialSCBR(baseURL, clientID string, hc *http.Client) (*SCBRClient, error) {
	return DialSCBROpts(baseURL, clientID, hc, SCBRDialOpts{})
}

// DialSCBROpts dials like DialSCBR with a bearer token and/or broker
// attestation (see SCBRDialOpts).
func DialSCBROpts(baseURL, clientID string, hc *http.Client, opts SCBRDialOpts) (*SCBRClient, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	if opts.Service != nil {
		if err := attestBroker(hc, baseURL, opts.Auth, opts.Service, opts.Policy); err != nil {
			return nil, err
		}
	}
	h, err := scbr.BeginHandshake(clientID)
	if err != nil {
		return nil, err
	}
	brokerPub, err := doRequest(hc, http.MethodPost, baseURL+"/scbr/handshake/"+clientID, opts.Auth, h.Public())
	if err != nil {
		return nil, err
	}
	c, err := h.Finish(brokerPub)
	if err != nil {
		return nil, err
	}
	return &SCBRClient{base: baseURL, id: clientID, hc: hc, auth: opts.Auth, c: c}, nil
}

// attestBroker fetches a fresh, nonce-bound quote of the broker enclave
// over the wire and verifies it against the attestation service and the
// caller's policy before any filter crosses the transport.
func attestBroker(hc *http.Client, baseURL, auth string, svc *attest.Service, policy attest.Policy) error {
	var nonce [32]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return err
	}
	body, err := doRequest(hc, http.MethodGet,
		baseURL+"/scbr/quote?nonce="+hex.EncodeToString(nonce[:]), auth, nil)
	if err != nil {
		return fmt.Errorf("wire: broker quote: %w", err)
	}
	var wq wireQuote
	if err := json.Unmarshal(body, &wq); err != nil {
		return fmt.Errorf("wire: broker quote: %w", err)
	}
	report, ok := enclave.UnmarshalReport(wq.Report)
	if !ok {
		return fmt.Errorf("wire: broker quote: malformed report")
	}
	v, err := svc.Verify(attest.Quote{PlatformID: wq.PlatformID, Report: report, Signature: wq.Signature})
	if err != nil {
		return fmt.Errorf("wire: broker attestation failed: %w", err)
	}
	if !bytes.Equal(v.Data[:len(nonce)], nonce[:]) {
		return fmt.Errorf("wire: broker quote: nonce mismatch (replayed quote?)")
	}
	if err := policy.Check(v); err != nil {
		return fmt.Errorf("wire: broker attestation failed: %w", err)
	}
	return nil
}

// Rehandshake rotates the session key in place, proving possession of the
// current one — the only way a live client ID can be re-keyed over the
// wire (a bare handshake against a live session is rejected with 409).
func (s *SCBRClient) Rehandshake() error {
	h, err := scbr.BeginHandshake(s.id)
	if err != nil {
		return err
	}
	sealed, err := s.c.SealRehandshake(h)
	if err != nil {
		return err
	}
	brokerPub, err := doRequest(s.hc, http.MethodPost, s.base+"/scbr/rehandshake/"+s.id, s.auth, sealed)
	if err != nil {
		return err
	}
	c, err := h.Finish(brokerPub)
	if err != nil {
		return err
	}
	s.c = c
	return nil
}

func (s *SCBRClient) postSealed(path string, sealed []byte, out any) error {
	body, err := doRequest(s.hc, http.MethodPost, s.base+path+"/"+s.id, s.auth, sealed)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

// Subscribe registers a subscription and returns its broker-assigned ID.
func (s *SCBRClient) Subscribe(sub scbr.Subscription) (uint64, error) {
	sealed, err := s.c.SealSubscriptionBytes(sub)
	if err != nil {
		return 0, err
	}
	var res struct {
		ID uint64 `json:"id"`
	}
	if err := s.postSealed("/scbr/subscribe", sealed, &res); err != nil {
		return 0, err
	}
	return res.ID, nil
}

// Publish routes an event through the broker and returns how many
// subscribers it was delivered to.
func (s *SCBRClient) Publish(e scbr.Event) (int, error) {
	sealed, err := s.c.SealEventBytes(e)
	if err != nil {
		return 0, err
	}
	var res struct {
		Delivered int `json:"delivered"`
	}
	if err := s.postSealed("/scbr/publish", sealed, &res); err != nil {
		return 0, err
	}
	return res.Delivered, nil
}

// Poll drains and opens this client's pending deliveries. The request
// carries a sealed single-use poll token, so only the session holder can
// trigger the (destructive) drain.
func (s *SCBRClient) Poll() ([]scbr.Event, error) {
	token, err := s.c.SealPollToken()
	if err != nil {
		return nil, err
	}
	body, err := doRequest(s.hc, http.MethodPost, s.base+"/scbr/poll/"+s.id, s.auth, token)
	if err != nil {
		return nil, err
	}
	frames, err := DecodeBatch(body)
	if err != nil {
		return nil, err
	}
	events := make([]scbr.Event, 0, len(frames))
	for _, f := range frames {
		e, err := s.c.OpenDeliverySealed(f)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return events, nil
}
