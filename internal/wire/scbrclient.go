package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"securecloud/internal/scbr"
)

// SCBRClient is an SCBR endpoint reached over the wire server. The
// handshake and every envelope are the same bytes the in-process client
// exchanges — the server relays them to the broker without opening
// anything, so a compromised front end degrades availability, never
// confidentiality.
type SCBRClient struct {
	base string
	id   string
	hc   *http.Client
	c    *scbr.Client
}

// DialSCBR performs the X25519 handshake over HTTP and returns a
// session-keyed client.
func DialSCBR(baseURL, clientID string, hc *http.Client) (*SCBRClient, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	h, err := scbr.BeginHandshake(clientID)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Post(baseURL+"/scbr/handshake/"+clientID, "application/octet-stream", bytes.NewReader(h.Public()))
	if err != nil {
		return nil, err
	}
	brokerPub, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("wire: scbr handshake: %s: %s", resp.Status, bytes.TrimSpace(brokerPub))
	}
	if readErr != nil {
		return nil, readErr
	}
	c, err := h.Finish(brokerPub)
	if err != nil {
		return nil, err
	}
	return &SCBRClient{base: baseURL, id: clientID, hc: hc, c: c}, nil
}

func (s *SCBRClient) postSealed(path string, sealed []byte, out any) error {
	resp, err := s.hc.Post(s.base+path+"/"+s.id, "application/octet-stream", bytes.NewReader(sealed))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("wire: %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	if readErr != nil {
		return readErr
	}
	return json.Unmarshal(body, out)
}

// Subscribe registers a subscription and returns its broker-assigned ID.
func (s *SCBRClient) Subscribe(sub scbr.Subscription) (uint64, error) {
	sealed, err := s.c.SealSubscriptionBytes(sub)
	if err != nil {
		return 0, err
	}
	var res struct {
		ID uint64 `json:"id"`
	}
	if err := s.postSealed("/scbr/subscribe", sealed, &res); err != nil {
		return 0, err
	}
	return res.ID, nil
}

// Publish routes an event through the broker and returns how many
// subscribers it was delivered to.
func (s *SCBRClient) Publish(e scbr.Event) (int, error) {
	sealed, err := s.c.SealEventBytes(e)
	if err != nil {
		return 0, err
	}
	var res struct {
		Delivered int `json:"delivered"`
	}
	if err := s.postSealed("/scbr/publish", sealed, &res); err != nil {
		return 0, err
	}
	return res.Delivered, nil
}

// Poll drains and opens this client's pending deliveries.
func (s *SCBRClient) Poll() ([]scbr.Event, error) {
	resp, err := s.hc.Get(s.base + "/scbr/poll/" + s.id)
	if err != nil {
		return nil, err
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("wire: scbr poll: %s", resp.Status)
	}
	if readErr != nil {
		return nil, readErr
	}
	frames, err := DecodeBatch(body)
	if err != nil {
		return nil, err
	}
	events := make([]scbr.Event, 0, len(frames))
	for _, f := range frames {
		e, err := s.c.OpenDeliverySealed(f)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return events, nil
}
