package wire

import (
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"securecloud/internal/attest"
	"securecloud/internal/enclave"
	"securecloud/internal/httpx"
	"securecloud/internal/scbr"
	"securecloud/internal/stats"
)

// DefaultMaxBody bounds request bodies when Config.MaxBody is unset.
const DefaultMaxBody = 1 << 20

// Config shapes a wire server. All fields are optional: a zero config
// serves only /metrics (over no sources).
type Config struct {
	// Broker enables the SCBR endpoints.
	Broker *scbr.Broker
	// Sources feed /metrics (gateways registered via RegisterPlane are
	// added automatically).
	Sources []stats.Source
	// Pprof mounts net/http/pprof under /debug/pprof/ for wall-clock
	// profiling of the serving path. Off by default: profiles leak timing
	// detail, so exposure is an explicit choice.
	Pprof bool
	// MaxBody bounds any request body in bytes (default DefaultMaxBody).
	MaxBody int64
	// AuthToken, when set, gates every /scbr/*, /plane/* and pprof
	// endpoint behind `Authorization: Bearer <token>` (constant-time
	// compare). The sealed envelopes already protect confidentiality and
	// integrity end to end; the token closes the remaining availability
	// surface — unauthenticated peers draining mailboxes, filling tenant
	// queues, or burning broker CPU. /metrics stays open: it exposes
	// counters only. Leave empty only on trusted networks (loopback
	// benches) — the package doc spells out what an anonymous peer can
	// then do.
	AuthToken string
	// Quoter, with Broker set, enables GET /scbr/quote?nonce=<hex>: a
	// fresh nonce-bound quote of the broker enclave, so wire clients can
	// attest the broker before handing over subscription filters
	// (DialSCBROpts), matching the in-process scbr.Connect flow.
	Quoter *attest.Quoter
}

// Server is the HTTP front end. Build with NewServer, attach plane
// gateways with RegisterPlane, then mount Handler().
type Server struct {
	cfg      Config
	maxBody  int64
	gateways map[string]*PlaneGateway
}

// NewServer builds a wire server from cfg.
func NewServer(cfg Config) *Server {
	maxBody := cfg.MaxBody
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	return &Server{cfg: cfg, maxBody: maxBody, gateways: make(map[string]*PlaneGateway)}
}

// RegisterPlane mounts a gateway under /plane/{service}/. Call before
// Handler.
func (s *Server) RegisterPlane(service string, gw *PlaneGateway) {
	s.gateways[service] = gw
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	if s.cfg.Broker != nil {
		mux.HandleFunc("POST /scbr/handshake/{client}", s.auth(s.scbrHandshake))
		mux.HandleFunc("POST /scbr/rehandshake/{client}", s.auth(s.scbrRehandshake))
		mux.HandleFunc("POST /scbr/subscribe/{client}", s.auth(s.scbrEnvelope(scbr.KindSubscription)))
		mux.HandleFunc("POST /scbr/publish/{client}", s.auth(s.scbrEnvelope(scbr.KindPublication)))
		mux.HandleFunc("POST /scbr/poll/{client}", s.auth(s.scbrPoll))
		if s.cfg.Quoter != nil {
			mux.HandleFunc("GET /scbr/quote", s.auth(s.scbrQuote))
		}
	}
	mux.HandleFunc("POST /plane/{service}/send", s.auth(s.planeSend))
	mux.HandleFunc("GET /plane/{service}/poll", s.auth(s.planePoll))
	mux.HandleFunc("GET /metrics", s.metrics)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", s.auth(pprof.Index))
		mux.HandleFunc("/debug/pprof/cmdline", s.auth(pprof.Cmdline))
		mux.HandleFunc("/debug/pprof/profile", s.auth(pprof.Profile))
		mux.HandleFunc("/debug/pprof/symbol", s.auth(pprof.Symbol))
		mux.HandleFunc("/debug/pprof/trace", s.auth(pprof.Trace))
	}
	return mux
}

// auth wraps h behind the bearer-token gate when Config.AuthToken is set
// (a no-op otherwise). The comparison is constant-time; only token length
// can leak.
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.AuthToken == "" {
		return h
	}
	want := []byte("Bearer " + s.cfg.AuthToken)
	return func(w http.ResponseWriter, req *http.Request) {
		got := []byte(req.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			http.Error(w, "wire: missing or invalid bearer token", http.StatusUnauthorized)
			return
		}
		h(w, req)
	}
}

// scbrErrCode maps broker errors onto HTTP statuses: a displaced-session
// attempt is a conflict, a failed possession proof or replayed token is
// forbidden, an unknown client is not found, anything else a bad request.
func scbrErrCode(err error) int {
	switch {
	case errors.Is(err, scbr.ErrSessionExists):
		return http.StatusConflict
	case errors.Is(err, scbr.ErrBadEnvelope), errors.Is(err, scbr.ErrReplayedToken):
		return http.StatusForbidden
	case errors.Is(err, scbr.ErrUnknownClient):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// scbrHandshake relays the X25519 handshake: the body is the client's raw
// public key, the response the broker's. Session secrets never cross here
// — both sides derive them. The broker refuses to displace a live session
// (409): without that, any network peer could re-handshake a victim's
// client ID and have its future deliveries sealed to the attacker's key.
func (s *Server) scbrHandshake(w http.ResponseWriter, req *http.Request) {
	body, ok := httpx.ReadBody(w, req, s.maxBody)
	if !ok {
		return
	}
	brokerPub, err := s.cfg.Broker.Handshake(req.PathValue("client"), body)
	if err != nil {
		http.Error(w, err.Error(), scbrErrCode(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(brokerPub)
}

// scbrRehandshake rotates a live session: the body is the client's new
// public key sealed under the current session key — proof of possession,
// the only path that may replace an established session.
func (s *Server) scbrRehandshake(w http.ResponseWriter, req *http.Request) {
	body, ok := httpx.ReadBody(w, req, s.maxBody)
	if !ok {
		return
	}
	brokerPub, err := s.cfg.Broker.Rehandshake(req.PathValue("client"), body)
	if err != nil {
		http.Error(w, err.Error(), scbrErrCode(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(brokerPub)
}

// scbrQuote serves a fresh quote of the broker enclave bound to the
// caller's nonce (hex, at most enclave.ReportDataSize bytes) — the
// attestation evidence DialSCBROpts verifies before the handshake.
func (s *Server) scbrQuote(w http.ResponseWriter, req *http.Request) {
	nonce, err := hex.DecodeString(req.URL.Query().Get("nonce"))
	if err != nil || len(nonce) > enclave.ReportDataSize {
		http.Error(w, fmt.Sprintf("wire: nonce must be hex, at most %d bytes", enclave.ReportDataSize), http.StatusBadRequest)
		return
	}
	r, err := s.cfg.Broker.Enclave().CreateReport(nonce)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	q, err := s.cfg.Quoter.Quote(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	httpx.WriteJSON(w, wireQuote{PlatformID: q.PlatformID, Report: q.Report.Marshal(), Signature: q.Signature})
}

// scbrEnvelope serves subscribe and publish: the body is the sealed
// envelope payload, the response a JSON result. The envelope kind and
// client ID come from the route, so a client cannot smuggle one kind's
// payload through the other's endpoint — the sealed AAD binds both.
func (s *Server) scbrEnvelope(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		body, ok := httpx.ReadBody(w, req, s.maxBody)
		if !ok {
			return
		}
		env := scbr.Envelope{ClientID: req.PathValue("client"), Kind: kind, Sealed: body}
		switch kind {
		case scbr.KindSubscription:
			id, err := s.cfg.Broker.Subscribe(env)
			if err != nil {
				http.Error(w, err.Error(), scbrErrCode(err))
				return
			}
			httpx.WriteJSON(w, map[string]uint64{"id": id})
		default:
			delivered, err := s.cfg.Broker.Publish(env)
			if err != nil {
				http.Error(w, err.Error(), scbrErrCode(err))
				return
			}
			httpx.WriteJSON(w, map[string]int{"delivered": delivered})
		}
	}
}

// scbrPoll drains a client's pending deliveries as a batch of sealed
// delivery bodies. Draining is destructive, so the request body must be a
// sealed single-use poll token (scbr.Client.SealPollToken): without it,
// any peer that could name a client ID could silently destroy its queue.
func (s *Server) scbrPoll(w http.ResponseWriter, req *http.Request) {
	body, ok := httpx.ReadBody(w, req, s.maxBody)
	if !ok {
		return
	}
	dels, err := s.cfg.Broker.DrainSealed(req.PathValue("client"), body)
	if err != nil {
		http.Error(w, err.Error(), scbrErrCode(err))
		return
	}
	frames := make([][]byte, len(dels))
	for i, d := range dels {
		frames[i] = d.Sealed
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(EncodeBatch(frames))
}

func (s *Server) gateway(w http.ResponseWriter, req *http.Request) (*PlaneGateway, bool) {
	gw, ok := s.gateways[req.PathValue("service")]
	if !ok {
		http.Error(w, fmt.Sprintf("wire: unknown service %q", req.PathValue("service")), http.StatusNotFound)
		return nil, false
	}
	return gw, true
}

// planeSend accepts a batch of sealed request frames for one service.
func (s *Server) planeSend(w http.ResponseWriter, req *http.Request) {
	gw, ok := s.gateway(w, req)
	if !ok {
		return
	}
	body, ok := httpx.ReadBody(w, req, s.maxBody)
	if !ok {
		return
	}
	frames, err := DecodeBatch(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n, err := gw.SendFrames(frames)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	httpx.WriteJSON(w, map[string]int{"accepted": n})
}

// planePoll drains one tenant's reply frames (?tenant=, default the empty
// tenant) as a frame batch.
func (s *Server) planePoll(w http.ResponseWriter, req *http.Request) {
	gw, ok := s.gateway(w, req)
	if !ok {
		return
	}
	frames, err := gw.PollTenant(req.URL.Query().Get("tenant"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(EncodeBatch(frames))
}

// metrics renders every source snapshot in the Prometheus text exposition
// format: securecloud_<source>_<key> value, one line each, sorted — dots
// in stat keys become underscores.
func (s *Server) metrics(w http.ResponseWriter, req *http.Request) {
	sources := make([]stats.Source, 0, len(s.cfg.Sources)+len(s.gateways))
	sources = append(sources, s.cfg.Sources...)
	for _, gw := range s.gateways {
		sources = append(sources, gw)
	}
	flat := stats.Collect(sources...)
	lines := make([]string, 0, len(flat))
	for k, v := range flat {
		name := "securecloud_" + strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(k)
		lines = append(lines, fmt.Sprintf("%s %g\n", name, v))
	}
	sort.Strings(lines)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, l := range lines {
		_, _ = fmt.Fprint(w, l)
	}
}
