package wire

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"securecloud/internal/httpx"
	"securecloud/internal/scbr"
	"securecloud/internal/stats"
)

// DefaultMaxBody bounds request bodies when Config.MaxBody is unset.
const DefaultMaxBody = 1 << 20

// Config shapes a wire server. All fields are optional: a zero config
// serves only /metrics (over no sources).
type Config struct {
	// Broker enables the SCBR endpoints.
	Broker *scbr.Broker
	// Sources feed /metrics (gateways registered via RegisterPlane are
	// added automatically).
	Sources []stats.Source
	// Pprof mounts net/http/pprof under /debug/pprof/ for wall-clock
	// profiling of the serving path. Off by default: profiles leak timing
	// detail, so exposure is an explicit choice.
	Pprof bool
	// MaxBody bounds any request body in bytes (default DefaultMaxBody).
	MaxBody int64
}

// Server is the HTTP front end. Build with NewServer, attach plane
// gateways with RegisterPlane, then mount Handler().
type Server struct {
	cfg      Config
	maxBody  int64
	gateways map[string]*PlaneGateway
}

// NewServer builds a wire server from cfg.
func NewServer(cfg Config) *Server {
	maxBody := cfg.MaxBody
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	return &Server{cfg: cfg, maxBody: maxBody, gateways: make(map[string]*PlaneGateway)}
}

// RegisterPlane mounts a gateway under /plane/{service}/. Call before
// Handler.
func (s *Server) RegisterPlane(service string, gw *PlaneGateway) {
	s.gateways[service] = gw
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	if s.cfg.Broker != nil {
		mux.HandleFunc("POST /scbr/handshake/{client}", s.scbrHandshake)
		mux.HandleFunc("POST /scbr/subscribe/{client}", s.scbrEnvelope(scbr.KindSubscription))
		mux.HandleFunc("POST /scbr/publish/{client}", s.scbrEnvelope(scbr.KindPublication))
		mux.HandleFunc("GET /scbr/poll/{client}", s.scbrPoll)
	}
	mux.HandleFunc("POST /plane/{service}/send", s.planeSend)
	mux.HandleFunc("GET /plane/{service}/poll", s.planePoll)
	mux.HandleFunc("GET /metrics", s.metrics)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// scbrHandshake relays the X25519 handshake: the body is the client's raw
// public key, the response the broker's. Session secrets never cross here
// — both sides derive them.
func (s *Server) scbrHandshake(w http.ResponseWriter, req *http.Request) {
	body, ok := httpx.ReadBody(w, req, s.maxBody)
	if !ok {
		return
	}
	brokerPub, err := s.cfg.Broker.Handshake(req.PathValue("client"), body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(brokerPub)
}

// scbrEnvelope serves subscribe and publish: the body is the sealed
// envelope payload, the response a JSON result. The envelope kind and
// client ID come from the route, so a client cannot smuggle one kind's
// payload through the other's endpoint — the sealed AAD binds both.
func (s *Server) scbrEnvelope(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		body, ok := httpx.ReadBody(w, req, s.maxBody)
		if !ok {
			return
		}
		env := scbr.Envelope{ClientID: req.PathValue("client"), Kind: kind, Sealed: body}
		switch kind {
		case scbr.KindSubscription:
			id, err := s.cfg.Broker.Subscribe(env)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			httpx.WriteJSON(w, map[string]uint64{"id": id})
		default:
			delivered, err := s.cfg.Broker.Publish(env)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			httpx.WriteJSON(w, map[string]int{"delivered": delivered})
		}
	}
}

// scbrPoll drains a client's pending deliveries as a batch of sealed
// delivery bodies.
func (s *Server) scbrPoll(w http.ResponseWriter, req *http.Request) {
	dels := s.cfg.Broker.Drain(req.PathValue("client"))
	frames := make([][]byte, len(dels))
	for i, d := range dels {
		frames[i] = d.Sealed
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(EncodeBatch(frames))
}

func (s *Server) gateway(w http.ResponseWriter, req *http.Request) (*PlaneGateway, bool) {
	gw, ok := s.gateways[req.PathValue("service")]
	if !ok {
		http.Error(w, fmt.Sprintf("wire: unknown service %q", req.PathValue("service")), http.StatusNotFound)
		return nil, false
	}
	return gw, true
}

// planeSend accepts a batch of sealed request frames for one service.
func (s *Server) planeSend(w http.ResponseWriter, req *http.Request) {
	gw, ok := s.gateway(w, req)
	if !ok {
		return
	}
	body, ok := httpx.ReadBody(w, req, s.maxBody)
	if !ok {
		return
	}
	frames, err := DecodeBatch(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n, err := gw.SendFrames(frames)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	httpx.WriteJSON(w, map[string]int{"accepted": n})
}

// planePoll drains one tenant's reply frames (?tenant=, default the empty
// tenant) as a frame batch.
func (s *Server) planePoll(w http.ResponseWriter, req *http.Request) {
	gw, ok := s.gateway(w, req)
	if !ok {
		return
	}
	frames, err := gw.PollTenant(req.URL.Query().Get("tenant"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(EncodeBatch(frames))
}

// metrics renders every source snapshot in the Prometheus text exposition
// format: securecloud_<source>_<key> value, one line each, sorted — dots
// in stat keys become underscores.
func (s *Server) metrics(w http.ResponseWriter, req *http.Request) {
	sources := make([]stats.Source, 0, len(s.cfg.Sources)+len(s.gateways))
	sources = append(sources, s.cfg.Sources...)
	for _, gw := range s.gateways {
		sources = append(sources, gw)
	}
	flat := stats.Collect(sources...)
	lines := make([]string, 0, len(flat))
	for k, v := range flat {
		name := "securecloud_" + strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(k)
		lines = append(lines, fmt.Sprintf("%s %g\n", name, v))
	}
	sort.Strings(lines)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, l := range lines {
		_, _ = fmt.Fprint(w, l)
	}
}
