package wire

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// DefaultMaxResp bounds client-side response reads — the mirror image of
// the server's DefaultMaxBody guard: a hostile or broken server cannot
// balloon a client's memory with an unbounded body. Poll batches are the
// largest legitimate responses, so the cap is generous.
const DefaultMaxResp = 16 << 20

// readAllCapped reads r to EOF, failing if the body exceeds max bytes.
func readAllCapped(r io.Reader, max int64) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(b)) > max {
		return nil, fmt.Errorf("wire: response body over %d bytes", max)
	}
	return b, nil
}

// doRequest issues one HTTP request with the optional bearer token and a
// capped response read, turning non-200 statuses into errors carrying the
// (truncated) response text.
func doRequest(hc *http.Client, method, url, auth string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if auth != "" {
		req.Header.Set("Authorization", "Bearer "+auth)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := readAllCapped(resp.Body, 4096)
		return nil, fmt.Errorf("wire: %s %s: %s: %s", method, url, resp.Status, bytes.TrimSpace(msg))
	}
	return readAllCapped(resp.Body, DefaultMaxResp)
}
