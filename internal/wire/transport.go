package wire

import (
	"fmt"
	"net/http"
	"net/url"

	"securecloud/internal/microsvc"
)

// PlaneTransport carries sealed plane frames over the wire server's
// /plane/{service} endpoints. It implements microsvc.Transport, so a
// PlaneClient built on it is byte-for-byte the same client as the
// in-process one — only the hop differs. The transport remembers which
// tenants it has sent for and polls each of their mailboxes on receive.
//
// Mailboxes are keyed by tenant, not by client: run at most ONE transport
// per tenant against a given gateway. Two clients polling the same tenant
// would steal each other's reply frames — whichever polls first drains
// the shared mailbox, and replies whose request IDs the other client does
// not recognize are dropped. cmd/wire-bench assigns each client its own
// tenant for exactly this reason.
type PlaneTransport struct {
	base    string // e.g. http://127.0.0.1:8080/plane/checkout
	hc      *http.Client
	auth    string
	tenants []string
	seen    map[string]bool
}

var _ microsvc.Transport = (*PlaneTransport)(nil)

// NewPlaneTransport builds a transport for one service behind baseURL.
// See the type comment: one transport per tenant.
func NewPlaneTransport(baseURL, service string, hc *http.Client) *PlaneTransport {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &PlaneTransport{
		base: baseURL + "/plane/" + url.PathEscape(service),
		hc:   hc,
		seen: make(map[string]bool),
	}
}

// WithAuth sets the bearer token (the server's Config.AuthToken) sent on
// every request, and returns the transport for chaining.
func (t *PlaneTransport) WithAuth(token string) *PlaneTransport {
	t.auth = token
	return t
}

// SendFrames implements microsvc.Transport.
func (t *PlaneTransport) SendFrames(frames [][]byte) error {
	for _, f := range frames {
		tenant, _, err := microsvc.PeekFrameTenant(f)
		if err != nil {
			return err
		}
		if !t.seen[tenant] {
			t.seen[tenant] = true
			t.tenants = append(t.tenants, tenant)
		}
	}
	_, err := doRequest(t.hc, http.MethodPost, t.base+"/send", t.auth, EncodeBatch(frames))
	return err
}

// RecvFrames implements microsvc.Transport: it polls the mailbox of every
// tenant this transport has sent for, in first-send order, and returns the
// concatenated reply frames.
func (t *PlaneTransport) RecvFrames() ([][]byte, error) {
	var out [][]byte
	for _, tenant := range t.tenants {
		body, err := doRequest(t.hc, http.MethodGet, t.base+"/poll?tenant="+url.QueryEscape(tenant), t.auth, nil)
		if err != nil {
			return nil, fmt.Errorf("wire: poll %s: %w", tenant, err)
		}
		frames, err := DecodeBatch(body)
		if err != nil {
			return nil, err
		}
		out = append(out, frames...)
	}
	return out, nil
}

// Close implements microsvc.Transport.
func (t *PlaneTransport) Close() {}
