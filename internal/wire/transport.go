package wire

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"securecloud/internal/microsvc"
)

// PlaneTransport carries sealed plane frames over the wire server's
// /plane/{service} endpoints. It implements microsvc.Transport, so a
// PlaneClient built on it is byte-for-byte the same client as the
// in-process one — only the hop differs. The transport remembers which
// tenants it has sent for and polls each of their mailboxes on receive.
type PlaneTransport struct {
	base    string // e.g. http://127.0.0.1:8080/plane/checkout
	hc      *http.Client
	tenants []string
	seen    map[string]bool
}

var _ microsvc.Transport = (*PlaneTransport)(nil)

// NewPlaneTransport builds a transport for one service behind baseURL.
func NewPlaneTransport(baseURL, service string, hc *http.Client) *PlaneTransport {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &PlaneTransport{
		base: baseURL + "/plane/" + url.PathEscape(service),
		hc:   hc,
		seen: make(map[string]bool),
	}
}

func (t *PlaneTransport) post(url string, body []byte) error {
	resp, err := t.hc.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("wire: %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// SendFrames implements microsvc.Transport.
func (t *PlaneTransport) SendFrames(frames [][]byte) error {
	for _, f := range frames {
		tenant, _, err := microsvc.PeekFrameTenant(f)
		if err != nil {
			return err
		}
		if !t.seen[tenant] {
			t.seen[tenant] = true
			t.tenants = append(t.tenants, tenant)
		}
	}
	return t.post(t.base+"/send", EncodeBatch(frames))
}

// RecvFrames implements microsvc.Transport: it polls the mailbox of every
// tenant this transport has sent for, in first-send order, and returns the
// concatenated reply frames.
func (t *PlaneTransport) RecvFrames() ([][]byte, error) {
	var out [][]byte
	for _, tenant := range t.tenants {
		resp, err := t.hc.Get(t.base + "/poll?tenant=" + url.QueryEscape(tenant))
		if err != nil {
			return nil, err
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("wire: poll %s: %s", tenant, resp.Status)
		}
		if readErr != nil {
			return nil, readErr
		}
		frames, err := DecodeBatch(body)
		if err != nil {
			return nil, err
		}
		out = append(out, frames...)
	}
	return out, nil
}

// Close implements microsvc.Transport.
func (t *PlaneTransport) Close() {}
