package wire

import (
	"fmt"
	"sync"

	"securecloud/internal/attest"
	"securecloud/internal/eventbus"
	"securecloud/internal/microsvc"
)

// PlaneGateway bridges HTTP clients to one ReplicaSet's request/reply
// topics. It owns a publisher on the request topic and a subscriber on the
// reply topic, and routes reply frames into per-tenant mailboxes by their
// cleartext tenant header — it never opens a sealed body. Ingress frames
// are structurally validated (and shed-flag frames rejected) before they
// touch the bus, so a hostile HTTP client cannot inject what an in-process
// client could not.
type PlaneGateway struct {
	name string
	pub  *eventbus.Publisher
	sub  *eventbus.Subscriber

	mu        sync.Mutex
	mail      map[string][][]byte
	framesIn  uint64
	bytesIn   uint64
	rejected  uint64
	framesOut uint64
	bytesOut  uint64
	polls     uint64
}

// NewPlaneGateway opens the gateway endpoints for the named service from
// its released key set.
func NewPlaneGateway(bus *eventbus.Bus, name string, keys attest.ServiceKeys, inTopic, outTopic string) (*PlaneGateway, error) {
	inKey, ok := keys.Topic(inTopic)
	if !ok {
		return nil, fmt.Errorf("wire: gateway has no stream key for %s", inTopic)
	}
	outKey, ok := keys.Topic(outTopic)
	if !ok {
		return nil, fmt.Errorf("wire: gateway has no stream key for %s", outTopic)
	}
	pub, err := eventbus.NewPublisher(bus, inTopic, inKey)
	if err != nil {
		return nil, err
	}
	sub, err := eventbus.NewSubscriber(bus, outTopic, outKey)
	if err != nil {
		return nil, err
	}
	return &PlaneGateway{name: name, pub: pub, sub: sub, mail: make(map[string][][]byte)}, nil
}

// SendFrames validates and publishes a batch of sealed request frames. The
// batch is all-or-nothing: one malformed or shed-flagged frame rejects the
// whole request, so partial batches never reach the plane.
func (g *PlaneGateway) SendFrames(frames [][]byte) (int, error) {
	for i, f := range frames {
		if err := microsvc.CheckFrame(f); err != nil {
			g.mu.Lock()
			g.rejected++
			g.mu.Unlock()
			return 0, fmt.Errorf("wire: frame %d: %w", i, err)
		}
	}
	if len(frames) == 0 {
		return 0, nil
	}
	if _, err := g.pub.PublishBatch(frames); err != nil {
		return 0, err
	}
	g.mu.Lock()
	g.framesIn += uint64(len(frames))
	for _, f := range frames {
		g.bytesIn += uint64(len(f))
	}
	g.mu.Unlock()
	return len(frames), nil
}

// PollTenant drains the reply frames routed to one tenant (the empty
// tenant collects legacy, untenanted frames). Freshly arrived bus frames
// are sorted into mailboxes first, so interleaved tenants never see each
// other's replies.
func (g *PlaneGateway) PollTenant(tenant string) ([][]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Receive is serialized under the gateway lock: the subscriber tracks
	// its replay horizon unlocked, counting on a single-consumer caller.
	batch, err := g.sub.Receive()
	if err != nil {
		return nil, err
	}
	for _, f := range batch {
		t, _, err := microsvc.PeekFrameTenant(f)
		if err != nil {
			// An unparseable reply frame cannot be routed; count and drop.
			g.rejected++
			continue
		}
		g.mail[t] = append(g.mail[t], f)
	}
	out := g.mail[tenant]
	delete(g.mail, tenant)
	g.polls++
	g.framesOut += uint64(len(out))
	for _, f := range out {
		g.bytesOut += uint64(len(f))
	}
	return out, nil
}

// Close tears down the gateway's bus endpoints.
func (g *PlaneGateway) Close() { g.sub.Close() }

// StatsName implements stats.Source.
func (g *PlaneGateway) StatsName() string { return "wire_" + g.name }

// Snapshot implements stats.Source.
func (g *PlaneGateway) Snapshot() map[string]float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	pending := 0
	for _, q := range g.mail {
		pending += len(q)
	}
	return map[string]float64{
		"frames_in":     float64(g.framesIn),
		"bytes_in":      float64(g.bytesIn),
		"frames_out":    float64(g.framesOut),
		"bytes_out":     float64(g.bytesOut),
		"rejected":      float64(g.rejected),
		"polls":         float64(g.polls),
		"mailbox_depth": float64(pending),
	}
}
