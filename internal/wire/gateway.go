package wire

import (
	"fmt"
	"sync"

	"securecloud/internal/attest"
	"securecloud/internal/eventbus"
	"securecloud/internal/microsvc"
)

// DefaultMailboxCap bounds each tenant's reply mailbox in frames. Tenant
// IDs on ingress frames are cleartext and unverified (the gateway cannot
// open seals), so an attacker can manufacture reply traffic for tenants
// nobody polls; the cap turns that from unbounded memory growth into a
// bounded window with drop-oldest accounting (the mail_dropped counter).
const DefaultMailboxCap = 1024

// PlaneGateway bridges HTTP clients to one ReplicaSet's request/reply
// topics. It owns a publisher on the request topic and a subscriber on the
// reply topic, and routes reply frames into per-tenant mailboxes by their
// cleartext tenant header — it never opens a sealed body. Ingress frames
// are structurally validated (and shed-flag frames rejected) before they
// touch the bus, so a hostile HTTP client cannot inject what an in-process
// client could not.
//
// Mailboxes are keyed by tenant, so at most one polling client per tenant
// may be live at a time (see PlaneTransport); each mailbox holds at most
// MailboxCap frames, oldest dropped first.
type PlaneGateway struct {
	name string
	pub  *eventbus.Publisher
	sub  *eventbus.Subscriber

	mu          sync.Mutex
	mail        map[string][][]byte
	mailCap     int
	framesIn    uint64
	bytesIn     uint64
	rejected    uint64
	framesOut   uint64
	bytesOut    uint64
	polls       uint64
	mailDropped uint64
}

// NewPlaneGateway opens the gateway endpoints for the named service from
// its released key set.
func NewPlaneGateway(bus *eventbus.Bus, name string, keys attest.ServiceKeys, inTopic, outTopic string) (*PlaneGateway, error) {
	inKey, ok := keys.Topic(inTopic)
	if !ok {
		return nil, fmt.Errorf("wire: gateway has no stream key for %s", inTopic)
	}
	outKey, ok := keys.Topic(outTopic)
	if !ok {
		return nil, fmt.Errorf("wire: gateway has no stream key for %s", outTopic)
	}
	pub, err := eventbus.NewPublisher(bus, inTopic, inKey)
	if err != nil {
		return nil, err
	}
	sub, err := eventbus.NewSubscriber(bus, outTopic, outKey)
	if err != nil {
		return nil, err
	}
	return &PlaneGateway{name: name, pub: pub, sub: sub, mail: make(map[string][][]byte), mailCap: DefaultMailboxCap}, nil
}

// SetMailboxCap overrides the per-tenant mailbox bound (frames); n < 1
// restores DefaultMailboxCap. Call before serving traffic.
func (g *PlaneGateway) SetMailboxCap(n int) {
	if n < 1 {
		n = DefaultMailboxCap
	}
	g.mu.Lock()
	g.mailCap = n
	g.mu.Unlock()
}

// SendFrames validates and publishes a batch of sealed request frames. The
// batch is all-or-nothing: one malformed or shed-flagged frame rejects the
// whole request, so partial batches never reach the plane.
func (g *PlaneGateway) SendFrames(frames [][]byte) (int, error) {
	for i, f := range frames {
		if err := microsvc.CheckFrame(f); err != nil {
			g.mu.Lock()
			g.rejected++
			g.mu.Unlock()
			return 0, fmt.Errorf("wire: frame %d: %w", i, err)
		}
	}
	if len(frames) == 0 {
		return 0, nil
	}
	if _, err := g.pub.PublishBatch(frames); err != nil {
		return 0, err
	}
	g.mu.Lock()
	g.framesIn += uint64(len(frames))
	for _, f := range frames {
		g.bytesIn += uint64(len(f))
	}
	g.mu.Unlock()
	return len(frames), nil
}

// PollTenant drains the reply frames routed to one tenant (the empty
// tenant collects legacy, untenanted frames). Freshly arrived bus frames
// are sorted into mailboxes first, so interleaved tenants never see each
// other's replies.
func (g *PlaneGateway) PollTenant(tenant string) ([][]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Receive is serialized under the gateway lock: the subscriber tracks
	// its replay horizon unlocked, counting on a single-consumer caller.
	batch, err := g.sub.Receive()
	if err != nil {
		return nil, err
	}
	for _, f := range batch {
		t, _, err := microsvc.PeekFrameTenant(f)
		if err != nil {
			// An unparseable reply frame cannot be routed; count and drop.
			g.rejected++
			continue
		}
		q := g.mail[t]
		if len(q) >= g.mailCap {
			// Full mailbox: drop oldest, compacting in place so a
			// never-polled tenant's backing array stays bounded too.
			drop := len(q) - g.mailCap + 1
			g.mailDropped += uint64(drop)
			q = append(q[:0], q[drop:]...)
		}
		g.mail[t] = append(q, f)
	}
	out := g.mail[tenant]
	delete(g.mail, tenant)
	g.polls++
	g.framesOut += uint64(len(out))
	for _, f := range out {
		g.bytesOut += uint64(len(f))
	}
	return out, nil
}

// Close tears down the gateway's bus endpoints.
func (g *PlaneGateway) Close() { g.sub.Close() }

// StatsName implements stats.Source.
func (g *PlaneGateway) StatsName() string { return "wire_" + g.name }

// Snapshot implements stats.Source.
func (g *PlaneGateway) Snapshot() map[string]float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	pending := 0
	for _, q := range g.mail {
		pending += len(q)
	}
	return map[string]float64{
		"frames_in":     float64(g.framesIn),
		"bytes_in":      float64(g.bytesIn),
		"frames_out":    float64(g.framesOut),
		"bytes_out":     float64(g.bytesOut),
		"rejected":      float64(g.rejected),
		"polls":         float64(g.polls),
		"mailbox_depth": float64(pending),
		"mail_dropped":  float64(g.mailDropped),
	}
}
