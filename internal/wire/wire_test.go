package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/microsvc"
	"securecloud/internal/scbr"
)

// planeFixture boots a bus + attestation stack + one replica set with a
// wire server in front, and returns the running test server.
type planeFixture struct {
	bus    *eventbus.Bus
	keys   attest.ServiceKeys
	rs     *microsvc.ReplicaSet
	gw     *PlaneGateway
	server *Server
	ts     *httptest.Server
}

func newPlaneFixture(t *testing.T, name string, cfg microsvc.ReplicaSetConfig, wcfg Config) *planeFixture {
	t.Helper()
	bus := eventbus.New()
	svc := attest.NewService()
	kb := attest.NewKeyBroker(svc)
	var root cryptbox.Key
	root[0] = 0x5E
	keys, err := microsvc.NewServiceKeys(root, name, cfg.InTopic, cfg.OutTopic)
	if err != nil {
		t.Fatal(err)
	}
	kb.Register(name, attest.Policy{AllowedMRSigner: []cryptbox.Digest{microsvc.ReplicaSigner(name)}}, keys)
	rs, err := microsvc.NewReplicaSet(bus, svc, kb, name,
		func(req []byte) ([]byte, error) { return bytes.ToUpper(req), nil }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Stop)
	gw, err := NewPlaneGateway(bus, name, keys, cfg.InTopic, cfg.OutTopic)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	wcfg.Sources = append(wcfg.Sources, rs)
	server := NewServer(wcfg)
	server.RegisterPlane(name, gw)
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(ts.Close)
	return &planeFixture{bus: bus, keys: keys, rs: rs, gw: gw, server: server, ts: ts}
}

func httpPlaneClient(t *testing.T, fx *planeFixture, name string) *microsvc.PlaneClient {
	t.Helper()
	tr := NewPlaneTransport(fx.ts.URL, name, fx.ts.Client())
	client, err := microsvc.NewPlaneClientTransport(name, fx.keys.Request, tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return client
}

func TestPlaneOverHTTP(t *testing.T) {
	fx := newPlaneFixture(t, "plane/upper",
		microsvc.ReplicaSetConfig{Replicas: 2, InTopic: "up/req", OutTopic: "up/resp"}, Config{})
	client := httpPlaneClient(t, fx, "plane/upper")

	reqs := make([]microsvc.PlaneRequest, 12)
	for i := range reqs {
		reqs[i] = microsvc.PlaneRequest{Key: fmt.Sprintf("k%02d", i), Body: []byte(fmt.Sprintf("body %d", i))}
	}
	if _, err := client.SendTenantIDs("acme", reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.rs.Step(); err != nil {
		t.Fatal(err)
	}
	replies, err := client.Poll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != len(reqs) {
		t.Fatalf("got %d replies, want %d", len(replies), len(reqs))
	}
	for _, rep := range replies {
		if rep.Shed {
			t.Fatalf("unexpected shed reply id %d", rep.ID)
		}
		if rep.Tenant != "acme" {
			t.Fatalf("reply tenant %q, want acme", rep.Tenant)
		}
		if !bytes.HasPrefix(rep.Body, []byte("BODY ")) {
			t.Fatalf("reply body %q not uppercased", rep.Body)
		}
	}
}

// TestHTTPRepliesByteIdenticalToInProcess is the property test: the bus
// fans the same sealed reply frames to every reply-topic subscriber, so
// the frames the HTTP gateway hands out must be byte-identical to what an
// in-process subscriber of the same plane sees — HTTP adds a hop, not a
// re-encryption.
func TestHTTPRepliesByteIdenticalToInProcess(t *testing.T) {
	fx := newPlaneFixture(t, "plane/echo",
		microsvc.ReplicaSetConfig{Replicas: 1, InTopic: "echo/req", OutTopic: "echo/resp"}, Config{})

	outKey, _ := fx.keys.Topic("echo/resp")
	inproc, err := eventbus.NewSubscriber(fx.bus, "echo/resp", outKey)
	if err != nil {
		t.Fatal(err)
	}
	defer inproc.Close()

	client := httpPlaneClient(t, fx, "plane/echo")
	reqs := []microsvc.PlaneRequest{
		{Key: "a", Body: []byte("one")},
		{Key: "b", Body: []byte("two")},
		{Key: "c", Body: []byte("three")},
	}
	if _, err := client.SendTenantIDs("t1", reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.rs.Step(); err != nil {
		t.Fatal(err)
	}

	inprocFrames, err := inproc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := fx.ts.Client().Get(fx.ts.URL + "/plane/plane%2Fecho/poll?tenant=t1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	httpFrames, err := DecodeBatch(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(httpFrames) != len(inprocFrames) || len(httpFrames) != len(reqs) {
		t.Fatalf("frame counts differ: http=%d inproc=%d want=%d", len(httpFrames), len(inprocFrames), len(reqs))
	}
	for i := range httpFrames {
		if !bytes.Equal(httpFrames[i], inprocFrames[i]) {
			t.Fatalf("frame %d differs between HTTP and in-process delivery", i)
		}
	}
}

func TestConcurrentHTTPClients(t *testing.T) {
	fx := newPlaneFixture(t, "plane/conc",
		microsvc.ReplicaSetConfig{Replicas: 4, InTopic: "conc/req", OutTopic: "conc/resp"}, Config{})

	const clients = 8
	const perClient = 10
	var wg sync.WaitGroup
	pcs := make([]*microsvc.PlaneClient, clients)
	for c := range pcs {
		pcs[c] = httpPlaneClient(t, fx, "plane/conc")
	}
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			reqs := make([]microsvc.PlaneRequest, perClient)
			for i := range reqs {
				reqs[i] = microsvc.PlaneRequest{Key: fmt.Sprintf("c%d-k%d", c, i), Body: []byte("x")}
			}
			if _, err := pcs[c].SendTenantIDs(fmt.Sprintf("tenant-%d", c), reqs); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := fx.rs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]int, clients)
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			replies, err := pcs[c].Poll(0)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got[c] = len(replies)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	for c, n := range got {
		if n != perClient {
			t.Fatalf("client %d got %d replies, want %d", c, n, perClient)
		}
	}
}

func TestRejectsMalformedAndOversized(t *testing.T) {
	fx := newPlaneFixture(t, "plane/guard",
		microsvc.ReplicaSetConfig{Replicas: 1, InTopic: "g/req", OutTopic: "g/resp"},
		Config{MaxBody: 4096})
	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := fx.ts.Client().Post(fx.ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("/plane/plane%2Fguard/send", []byte{1, 2}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated batch: got %d, want 400", resp.StatusCode)
	}
	forged := binary.BigEndian.AppendUint32(nil, 1<<30)
	if resp := post("/plane/plane%2Fguard/send", forged); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged count: got %d, want 400", resp.StatusCode)
	}
	garbage := EncodeBatch([][]byte{{0, 1, 2}})
	garbage = append(garbage, 0xFF)
	if resp := post("/plane/plane%2Fguard/send", garbage); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing garbage: got %d, want 400", resp.StatusCode)
	}
	// A structurally valid batch holding a frame that fails CheckFrame.
	if resp := post("/plane/plane%2Fguard/send", EncodeBatch([][]byte{{9, 9, 9}})); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad frame: got %d, want 400", resp.StatusCode)
	}
	if resp := post("/plane/plane%2Fguard/send", make([]byte, 8192)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d, want 413", resp.StatusCode)
	}
	if resp := post("/plane/nope/send", EncodeBatch(nil)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown service: got %d, want 404", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	fx := newPlaneFixture(t, "plane/met",
		microsvc.ReplicaSetConfig{Replicas: 1, InTopic: "m/req", OutTopic: "m/resp"}, Config{})
	client := httpPlaneClient(t, fx, "plane/met")
	if _, err := client.SendTenantIDs("", []microsvc.PlaneRequest{{Key: "k", Body: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	resp, err := fx.ts.Client().Get(fx.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"securecloud_wire_plane_met_frames_in 1", "securecloud_plane_served "} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestPprofGating(t *testing.T) {
	off := httptest.NewServer(NewServer(Config{}).Handler())
	defer off.Close()
	resp, err := off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: got %d, want 404", resp.StatusCode)
	}
	on := httptest.NewServer(NewServer(Config{Pprof: true}).Handler())
	defer on.Close()
	resp, err = on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on: got %d, want 200", resp.StatusCode)
	}
}

func TestSCBROverHTTP(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	signer[0] = 0x5C
	e, err := p.ECreate(64<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EAdd([]byte("scbr-broker-v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	broker, err := scbr.NewBroker(e, scbr.DefaultBrokerConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(Config{Broker: broker}).Handler())
	defer ts.Close()

	sub, err := DialSCBR(ts.URL, "wire-sub", ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := DialSCBR(ts.URL, "wire-pub", ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	subID, err := sub.Subscribe(scbr.Subscription{Preds: []scbr.Predicate{
		{Attr: "price", Interval: scbr.Interval{Lo: 10, Hi: 20}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if subID == 0 {
		t.Fatal("subscribe returned id 0")
	}
	delivered, err := pub.Publish(scbr.Event{Attrs: map[string]float64{"price": 15}, Payload: []byte("in range")})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if _, err := pub.Publish(scbr.Event{Attrs: map[string]float64{"price": 99}, Payload: []byte("out of range")}); err != nil {
		t.Fatal(err)
	}
	events, err := sub.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || string(events[0].Payload) != "in range" {
		t.Fatalf("poll got %v, want one in-range event", events)
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{{}},
		{{1}, {2, 3}, make([]byte, 1000)},
	}
	for _, frames := range cases {
		got, err := DecodeBatch(EncodeBatch(frames))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(frames) {
			t.Fatalf("round trip %d frames -> %d", len(frames), len(got))
		}
		for i := range got {
			if !bytes.Equal(got[i], frames[i]) {
				t.Fatalf("frame %d differs", i)
			}
		}
	}
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("empty body should fail")
	}
	if _, err := DecodeBatch(binary.BigEndian.AppendUint32(nil, 1<<31)); err == nil {
		t.Fatal("forged count should fail")
	}
}

// scbrFixture boots a broker enclave with a provisioned quoting enclave
// behind a wire server, for the session-security and attestation tests.
type scbrFixture struct {
	ts     *httptest.Server
	broker *scbr.Broker
	svc    *attest.Service
	quoter *attest.Quoter
	signer cryptbox.Digest
}

func newSCBRFixture(t *testing.T, mutate func(*Config)) *scbrFixture {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	signer[0] = 0x5C
	e, err := p.ECreate(64<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EAdd([]byte("scbr-broker-v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	broker, err := scbr.NewBroker(e, scbr.DefaultBrokerConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc := attest.NewService()
	quoter, err := svc.Provision(p, "wire-test-platform")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Broker: broker, Quoter: quoter}
	if mutate != nil {
		mutate(&cfg)
	}
	ts := httptest.NewServer(NewServer(cfg).Handler())
	t.Cleanup(ts.Close)
	return &scbrFixture{ts: ts, broker: broker, svc: svc, quoter: quoter, signer: signer}
}

func TestSCBRSessionTakeoverRejected(t *testing.T) {
	fx := newSCBRFixture(t, nil)
	victim, err := DialSCBR(fx.ts.URL, "victim", fx.ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Subscribe(scbr.Subscription{Preds: []scbr.Predicate{
		{Attr: "a", Interval: scbr.Interval{Lo: 0, Hi: 10}},
	}}); err != nil {
		t.Fatal(err)
	}

	// A second handshake for a live client ID must be refused: accepting
	// it would seal the victim's future deliveries to the attacker's key.
	if _, err := DialSCBR(fx.ts.URL, "victim", fx.ts.Client()); err == nil {
		t.Fatal("re-handshake of a live session succeeded (session takeover)")
	} else if !strings.Contains(err.Error(), "409") {
		t.Fatalf("takeover dial error %v, want 409 conflict", err)
	}

	// The victim's session still works end to end.
	pub, err := DialSCBR(fx.ts.URL, "pub", fx.ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := pub.Publish(scbr.Event{Attrs: map[string]float64{"a": 5}, Payload: []byte("v1")}); err != nil || n != 1 {
		t.Fatalf("publish: n=%d err=%v", n, err)
	}
	if evs, err := victim.Poll(); err != nil || len(evs) != 1 {
		t.Fatalf("victim poll: %v err=%v", evs, err)
	}

	// A rehandshake without proof of the session key is forbidden.
	resp, err := fx.ts.Client().Post(fx.ts.URL+"/scbr/rehandshake/victim", "application/octet-stream", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unproven rehandshake: got %d, want 403", resp.StatusCode)
	}

	// The real holder rotates its key and keeps receiving.
	if err := victim.Rehandshake(); err != nil {
		t.Fatal(err)
	}
	if n, err := pub.Publish(scbr.Event{Attrs: map[string]float64{"a": 6}, Payload: []byte("v2")}); err != nil || n != 1 {
		t.Fatalf("post-rotate publish: n=%d err=%v", n, err)
	}
	evs, err := victim.Poll()
	if err != nil || len(evs) != 1 || string(evs[0].Payload) != "v2" {
		t.Fatalf("post-rotate poll: %v err=%v", evs, err)
	}
}

func TestSCBRPollRequiresSealedToken(t *testing.T) {
	fx := newSCBRFixture(t, nil)
	sub, err := DialSCBR(fx.ts.URL, "sub", fx.ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe(scbr.Subscription{Preds: []scbr.Predicate{
		{Attr: "a", Interval: scbr.Interval{Lo: 0, Hi: 10}},
	}}); err != nil {
		t.Fatal(err)
	}
	pub, err := DialSCBR(fx.ts.URL, "pub", fx.ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(scbr.Event{Attrs: map[string]float64{"a": 1}, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}

	// The old unauthenticated GET drain is gone.
	resp, err := fx.ts.Client().Get(fx.ts.URL + "/scbr/poll/sub")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET poll: got %d, want 405", resp.StatusCode)
	}
	// A tokenless POST cannot drain either.
	resp, err = fx.ts.Client().Post(fx.ts.URL+"/scbr/poll/sub", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tokenless poll: got %d, want 403", resp.StatusCode)
	}

	// A captured token replays to a 403; the queue survives both attempts.
	token, err := sub.c.SealPollToken()
	if err != nil {
		t.Fatal(err)
	}
	resp, err = fx.ts.Client().Post(fx.ts.URL+"/scbr/poll/sub", "application/octet-stream", bytes.NewReader(token))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid token: got %d, want 200", resp.StatusCode)
	}
	frames, err := DecodeBatch(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("valid token drained %d frames, want 1", len(frames))
	}
	if _, err := pub.Publish(scbr.Event{Attrs: map[string]float64{"a": 2}, Payload: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	resp, err = fx.ts.Client().Post(fx.ts.URL+"/scbr/poll/sub", "application/octet-stream", bytes.NewReader(token))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replayed token: got %d, want 403", resp.StatusCode)
	}
	// The client's own Poll (fresh token) still drains the pending event.
	evs, err := sub.Poll()
	if err != nil || len(evs) != 1 || string(evs[0].Payload) != "two" {
		t.Fatalf("post-replay poll: %v err=%v", evs, err)
	}
}

func TestDialSCBRAttestsBroker(t *testing.T) {
	fx := newSCBRFixture(t, nil)
	// Policy allowing the broker's signer: dial succeeds and works.
	cli, err := DialSCBROpts(fx.ts.URL, "attested", fx.ts.Client(), SCBRDialOpts{
		Service: fx.svc,
		Policy:  attest.Policy{AllowedMRSigner: []cryptbox.Digest{fx.signer}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Subscribe(scbr.Subscription{Preds: []scbr.Predicate{
		{Attr: "a", Interval: scbr.Interval{Lo: 0, Hi: 1}},
	}}); err != nil {
		t.Fatal(err)
	}
	// An empty policy allows nothing: the dial refuses before handing
	// over any filter.
	if _, err := DialSCBROpts(fx.ts.URL, "strict", fx.ts.Client(), SCBRDialOpts{
		Service: fx.svc,
		Policy:  attest.Policy{},
	}); err == nil {
		t.Fatal("dial succeeded against a policy that allows nothing")
	}
	// A verifier that never provisioned the platform rejects the quote.
	if _, err := DialSCBROpts(fx.ts.URL, "foreign", fx.ts.Client(), SCBRDialOpts{
		Service: attest.NewService(),
		Policy:  attest.Policy{AllowedMRSigner: []cryptbox.Digest{fx.signer}},
	}); err == nil {
		t.Fatal("dial succeeded with a quote from an unknown platform")
	}
}

func TestWireAuthTokenGate(t *testing.T) {
	fx := newPlaneFixture(t, "plane/auth",
		microsvc.ReplicaSetConfig{Replicas: 1, InTopic: "auth/req", OutTopic: "auth/resp"},
		Config{AuthToken: "sekrit"})

	// Anonymous and wrong-token requests bounce off every plane endpoint.
	resp, err := fx.ts.Client().Get(fx.ts.URL + "/plane/plane%2Fauth/poll?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous poll: got %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, fx.ts.URL+"/plane/plane%2Fauth/send", bytes.NewReader(EncodeBatch(nil)))
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = fx.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token send: got %d, want 401", resp.StatusCode)
	}
	// Metrics stay open: counters only, no control surface.
	resp, err = fx.ts.Client().Get(fx.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics under auth: got %d, want 200", resp.StatusCode)
	}

	// A tokened transport works end to end.
	tr := NewPlaneTransport(fx.ts.URL, "plane/auth", fx.ts.Client()).WithAuth("sekrit")
	client, err := microsvc.NewPlaneClientTransport("plane/auth", fx.keys.Request, tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	if _, err := client.SendTenantIDs("acme", []microsvc.PlaneRequest{{Key: "k", Body: []byte("hi")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.rs.Step(); err != nil {
		t.Fatal(err)
	}
	replies, err := client.Poll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || string(replies[0].Body) != "HI" {
		t.Fatalf("tokened round trip got %v", replies)
	}
}

func TestMailboxCapDropsOldest(t *testing.T) {
	fx := newPlaneFixture(t, "plane/cap",
		microsvc.ReplicaSetConfig{Replicas: 1, InTopic: "cap/req", OutTopic: "cap/resp"}, Config{})
	fx.gw.SetMailboxCap(4)
	client := httpPlaneClient(t, fx, "plane/cap")

	reqs := make([]microsvc.PlaneRequest, 12)
	for i := range reqs {
		reqs[i] = microsvc.PlaneRequest{Key: fmt.Sprintf("k%02d", i), Body: []byte("x")}
	}
	if _, err := client.SendTenantIDs("hoarder", reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.rs.Step(); err != nil {
		t.Fatal(err)
	}
	// Poll a DIFFERENT tenant: the gateway routes the 12 replies into
	// hoarder's mailbox, which must cap at 4 with 8 dropped — an attacker
	// stuffing tenants nobody polls cannot grow memory without bound.
	resp, err := fx.ts.Client().Get(fx.ts.URL + "/plane/plane%2Fcap/poll?tenant=nobody")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	snap := fx.gw.Snapshot()
	if snap["mailbox_depth"] != 4 || snap["mail_dropped"] != 8 {
		t.Fatalf("after cap: depth=%v dropped=%v, want 4/8", snap["mailbox_depth"], snap["mail_dropped"])
	}
	resp, err = fx.ts.Client().Get(fx.ts.URL + "/plane/plane%2Fcap/poll?tenant=hoarder")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	frames, err := DecodeBatch(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("capped mailbox drained %d frames, want 4", len(frames))
	}
}
