package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/microsvc"
	"securecloud/internal/scbr"
)

// planeFixture boots a bus + attestation stack + one replica set with a
// wire server in front, and returns the running test server.
type planeFixture struct {
	bus    *eventbus.Bus
	keys   attest.ServiceKeys
	rs     *microsvc.ReplicaSet
	gw     *PlaneGateway
	server *Server
	ts     *httptest.Server
}

func newPlaneFixture(t *testing.T, name string, cfg microsvc.ReplicaSetConfig, wcfg Config) *planeFixture {
	t.Helper()
	bus := eventbus.New()
	svc := attest.NewService()
	kb := attest.NewKeyBroker(svc)
	var root cryptbox.Key
	root[0] = 0x5E
	keys, err := microsvc.NewServiceKeys(root, name, cfg.InTopic, cfg.OutTopic)
	if err != nil {
		t.Fatal(err)
	}
	kb.Register(name, attest.Policy{AllowedMRSigner: []cryptbox.Digest{microsvc.ReplicaSigner(name)}}, keys)
	rs, err := microsvc.NewReplicaSet(bus, svc, kb, name,
		func(req []byte) ([]byte, error) { return bytes.ToUpper(req), nil }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Stop)
	gw, err := NewPlaneGateway(bus, name, keys, cfg.InTopic, cfg.OutTopic)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	wcfg.Sources = append(wcfg.Sources, rs)
	server := NewServer(wcfg)
	server.RegisterPlane(name, gw)
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(ts.Close)
	return &planeFixture{bus: bus, keys: keys, rs: rs, gw: gw, server: server, ts: ts}
}

func httpPlaneClient(t *testing.T, fx *planeFixture, name string) *microsvc.PlaneClient {
	t.Helper()
	tr := NewPlaneTransport(fx.ts.URL, name, fx.ts.Client())
	client, err := microsvc.NewPlaneClientTransport(name, fx.keys.Request, tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return client
}

func TestPlaneOverHTTP(t *testing.T) {
	fx := newPlaneFixture(t, "plane/upper",
		microsvc.ReplicaSetConfig{Replicas: 2, InTopic: "up/req", OutTopic: "up/resp"}, Config{})
	client := httpPlaneClient(t, fx, "plane/upper")

	reqs := make([]microsvc.PlaneRequest, 12)
	for i := range reqs {
		reqs[i] = microsvc.PlaneRequest{Key: fmt.Sprintf("k%02d", i), Body: []byte(fmt.Sprintf("body %d", i))}
	}
	if _, err := client.SendTenantIDs("acme", reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.rs.Step(); err != nil {
		t.Fatal(err)
	}
	replies, err := client.Poll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != len(reqs) {
		t.Fatalf("got %d replies, want %d", len(replies), len(reqs))
	}
	for _, rep := range replies {
		if rep.Shed {
			t.Fatalf("unexpected shed reply id %d", rep.ID)
		}
		if rep.Tenant != "acme" {
			t.Fatalf("reply tenant %q, want acme", rep.Tenant)
		}
		if !bytes.HasPrefix(rep.Body, []byte("BODY ")) {
			t.Fatalf("reply body %q not uppercased", rep.Body)
		}
	}
}

// TestHTTPRepliesByteIdenticalToInProcess is the property test: the bus
// fans the same sealed reply frames to every reply-topic subscriber, so
// the frames the HTTP gateway hands out must be byte-identical to what an
// in-process subscriber of the same plane sees — HTTP adds a hop, not a
// re-encryption.
func TestHTTPRepliesByteIdenticalToInProcess(t *testing.T) {
	fx := newPlaneFixture(t, "plane/echo",
		microsvc.ReplicaSetConfig{Replicas: 1, InTopic: "echo/req", OutTopic: "echo/resp"}, Config{})

	outKey, _ := fx.keys.Topic("echo/resp")
	inproc, err := eventbus.NewSubscriber(fx.bus, "echo/resp", outKey)
	if err != nil {
		t.Fatal(err)
	}
	defer inproc.Close()

	client := httpPlaneClient(t, fx, "plane/echo")
	reqs := []microsvc.PlaneRequest{
		{Key: "a", Body: []byte("one")},
		{Key: "b", Body: []byte("two")},
		{Key: "c", Body: []byte("three")},
	}
	if _, err := client.SendTenantIDs("t1", reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.rs.Step(); err != nil {
		t.Fatal(err)
	}

	inprocFrames, err := inproc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := fx.ts.Client().Get(fx.ts.URL + "/plane/plane%2Fecho/poll?tenant=t1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	httpFrames, err := DecodeBatch(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(httpFrames) != len(inprocFrames) || len(httpFrames) != len(reqs) {
		t.Fatalf("frame counts differ: http=%d inproc=%d want=%d", len(httpFrames), len(inprocFrames), len(reqs))
	}
	for i := range httpFrames {
		if !bytes.Equal(httpFrames[i], inprocFrames[i]) {
			t.Fatalf("frame %d differs between HTTP and in-process delivery", i)
		}
	}
}

func TestConcurrentHTTPClients(t *testing.T) {
	fx := newPlaneFixture(t, "plane/conc",
		microsvc.ReplicaSetConfig{Replicas: 4, InTopic: "conc/req", OutTopic: "conc/resp"}, Config{})

	const clients = 8
	const perClient = 10
	var wg sync.WaitGroup
	pcs := make([]*microsvc.PlaneClient, clients)
	for c := range pcs {
		pcs[c] = httpPlaneClient(t, fx, "plane/conc")
	}
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			reqs := make([]microsvc.PlaneRequest, perClient)
			for i := range reqs {
				reqs[i] = microsvc.PlaneRequest{Key: fmt.Sprintf("c%d-k%d", c, i), Body: []byte("x")}
			}
			if _, err := pcs[c].SendTenantIDs(fmt.Sprintf("tenant-%d", c), reqs); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := fx.rs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]int, clients)
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			replies, err := pcs[c].Poll(0)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got[c] = len(replies)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	for c, n := range got {
		if n != perClient {
			t.Fatalf("client %d got %d replies, want %d", c, n, perClient)
		}
	}
}

func TestRejectsMalformedAndOversized(t *testing.T) {
	fx := newPlaneFixture(t, "plane/guard",
		microsvc.ReplicaSetConfig{Replicas: 1, InTopic: "g/req", OutTopic: "g/resp"},
		Config{MaxBody: 4096})
	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := fx.ts.Client().Post(fx.ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("/plane/plane%2Fguard/send", []byte{1, 2}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated batch: got %d, want 400", resp.StatusCode)
	}
	forged := binary.BigEndian.AppendUint32(nil, 1<<30)
	if resp := post("/plane/plane%2Fguard/send", forged); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged count: got %d, want 400", resp.StatusCode)
	}
	garbage := EncodeBatch([][]byte{{0, 1, 2}})
	garbage = append(garbage, 0xFF)
	if resp := post("/plane/plane%2Fguard/send", garbage); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing garbage: got %d, want 400", resp.StatusCode)
	}
	// A structurally valid batch holding a frame that fails CheckFrame.
	if resp := post("/plane/plane%2Fguard/send", EncodeBatch([][]byte{{9, 9, 9}})); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad frame: got %d, want 400", resp.StatusCode)
	}
	if resp := post("/plane/plane%2Fguard/send", make([]byte, 8192)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d, want 413", resp.StatusCode)
	}
	if resp := post("/plane/nope/send", EncodeBatch(nil)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown service: got %d, want 404", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	fx := newPlaneFixture(t, "plane/met",
		microsvc.ReplicaSetConfig{Replicas: 1, InTopic: "m/req", OutTopic: "m/resp"}, Config{})
	client := httpPlaneClient(t, fx, "plane/met")
	if _, err := client.SendTenantIDs("", []microsvc.PlaneRequest{{Key: "k", Body: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	resp, err := fx.ts.Client().Get(fx.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"securecloud_wire_plane_met_frames_in 1", "securecloud_plane_served "} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestPprofGating(t *testing.T) {
	off := httptest.NewServer(NewServer(Config{}).Handler())
	defer off.Close()
	resp, err := off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: got %d, want 404", resp.StatusCode)
	}
	on := httptest.NewServer(NewServer(Config{Pprof: true}).Handler())
	defer on.Close()
	resp, err = on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on: got %d, want 200", resp.StatusCode)
	}
}

func TestSCBROverHTTP(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	signer[0] = 0x5C
	e, err := p.ECreate(64<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EAdd([]byte("scbr-broker-v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	broker, err := scbr.NewBroker(e, scbr.DefaultBrokerConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(Config{Broker: broker}).Handler())
	defer ts.Close()

	sub, err := DialSCBR(ts.URL, "wire-sub", ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := DialSCBR(ts.URL, "wire-pub", ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	subID, err := sub.Subscribe(scbr.Subscription{Preds: []scbr.Predicate{
		{Attr: "price", Interval: scbr.Interval{Lo: 10, Hi: 20}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if subID == 0 {
		t.Fatal("subscribe returned id 0")
	}
	delivered, err := pub.Publish(scbr.Event{Attrs: map[string]float64{"price": 15}, Payload: []byte("in range")})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if _, err := pub.Publish(scbr.Event{Attrs: map[string]float64{"price": 99}, Payload: []byte("out of range")}); err != nil {
		t.Fatal(err)
	}
	events, err := sub.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || string(events[0].Payload) != "in range" {
		t.Fatalf("poll got %v, want one in-range event", events)
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{{}},
		{{1}, {2, 3}, make([]byte, 1000)},
	}
	for _, frames := range cases {
		got, err := DecodeBatch(EncodeBatch(frames))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(frames) {
			t.Fatalf("round trip %d frames -> %d", len(frames), len(got))
		}
		for i := range got {
			if !bytes.Equal(got[i], frames[i]) {
				t.Fatalf("frame %d differs", i)
			}
		}
	}
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("empty body should fail")
	}
	if _, err := DecodeBatch(binary.BigEndian.AppendUint32(nil, 1<<31)); err == nil {
		t.Fatal("forged count should fail")
	}
}
