package scbr

import (
	"errors"
	"fmt"
	"sync"
)

// Router is one node of an SCBR router overlay. SCBR deployments connect
// brokers in a tree: subscriptions propagate towards the root so that
// publications can flow back down only along branches with matching
// interest. Covering relations are exploited on the control path too — a
// router never announces a subscription to its parent when an
// already-announced filter covers it, which keeps upstream routing tables
// (and upstream enclave memory, cf. Figure 3) small.
//
// Each router's matching state lives in its own (optionally enclave-
// accounted) indexes: one for local clients, one per neighbour link.
type Router struct {
	id     string
	parent *Router

	mu       sync.Mutex
	children map[string]*Router
	// local matches subscriptions of clients attached to this router.
	local *Index
	// interests[neighbour] matches filters announced by that neighbour
	// (children and, implicitly, the parent's interest is whatever we
	// announced upward).
	interests map[string]*Index
	// announced tracks the filters this router forwarded to its parent,
	// used for the covering check.
	announced []Subscription
	// deliveries collects locally matched subscription IDs per publish.
	delivered map[uint64]int
	// hops counts inter-router forwards (the overlay-efficiency metric).
	hops uint64
}

// Overlay errors.
var (
	ErrNotNeighbour = errors.New("scbr: router is not a neighbour")
)

// NewRouter creates a router; parent may be nil for the root.
func NewRouter(id string, parent *Router) *Router {
	r := &Router{
		id:        id,
		parent:    parent,
		children:  make(map[string]*Router),
		local:     NewIndex(IndexConfig{}),
		interests: make(map[string]*Index),
		delivered: make(map[uint64]int),
	}
	if parent != nil {
		parent.mu.Lock()
		parent.children[id] = r
		parent.interests[id] = NewIndex(IndexConfig{})
		parent.mu.Unlock()
	}
	return r
}

// ID returns the router identifier.
func (r *Router) ID() string { return r.id }

// Hops returns the number of inter-router forwards this router performed.
func (r *Router) Hops() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hops
}

// AnnouncedUpstream returns how many filters this router forwarded to its
// parent — the covering-aggregation metric.
func (r *Router) AnnouncedUpstream() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.announced)
}

// Subscribe registers a local client subscription and propagates interest
// towards the root, suppressed wherever a covering filter was already
// announced.
func (r *Router) Subscribe(s Subscription) {
	r.local.Insert(s)
	r.propagateUp(s)
}

// propagateUp announces s to the parent unless covered.
func (r *Router) propagateUp(s Subscription) {
	if r.parent == nil {
		return
	}
	r.mu.Lock()
	for _, a := range r.announced {
		if a.Covers(s) {
			r.mu.Unlock()
			return // upstream already receives a superset
		}
	}
	r.announced = append(r.announced, s)
	r.mu.Unlock()

	r.parent.mu.Lock()
	idx := r.parent.interests[r.id]
	r.parent.mu.Unlock()
	idx.Insert(s)
	// The parent in turn propagates towards the root.
	r.parent.propagateUp(s)
}

// Publish injects a publication at this router and routes it through the
// overlay. It returns the total number of local deliveries across all
// routers.
func (r *Router) Publish(e Event) int {
	return r.route(e, "")
}

// route delivers locally and forwards to every interested neighbour except
// the one the event came from.
func (r *Router) route(e Event, from string) int {
	delivered := len(r.local.Match(e))

	r.mu.Lock()
	var fwdChildren []*Router
	for id, child := range r.children {
		if id == from {
			continue
		}
		if len(r.interests[id].Match(e)) > 0 {
			fwdChildren = append(fwdChildren, child)
		}
	}
	parent := r.parent
	toParent := parent != nil && from != parentLink && r.parentInterested(e)
	if len(fwdChildren) > 0 || toParent {
		r.hops += uint64(len(fwdChildren))
		if toParent {
			r.hops++
		}
	}
	r.mu.Unlock()

	for _, child := range fwdChildren {
		delivered += child.route(e, parentLink)
	}
	if toParent {
		delivered += parent.route(e, r.id)
	}
	return delivered
}

// parentLink is the reserved neighbour name of the upstream link.
const parentLink = "\x00parent"

// parentInterested decides whether to forward an event upward. This
// overlay uses "gravity" routing: subscriptions propagate only towards
// the root, so a router holds no state about what is reachable through
// its parent and must forward every event upward; all pruning happens on
// the downward (per-child interest) links. Hops() measures the resulting
// traffic; the covering aggregation keeps the upward control state small.
func (r *Router) parentInterested(e Event) bool {
	return true
}

// Tree builds a rooted overlay from a parent map: parents[child] = parent
// ID, with exactly one absent entry (the root). It returns the routers by
// ID.
func Tree(edges map[string]string) (map[string]*Router, error) {
	routers := make(map[string]*Router)
	var build func(id string) (*Router, error)
	build = func(id string) (*Router, error) {
		if r, ok := routers[id]; ok {
			return r, nil
		}
		parentID, hasParent := edges[id]
		if !hasParent {
			r := NewRouter(id, nil)
			routers[id] = r
			return r, nil
		}
		if parentID == id {
			return nil, fmt.Errorf("scbr: router %q is its own parent", id)
		}
		p, err := build(parentID)
		if err != nil {
			return nil, err
		}
		r := NewRouter(id, p)
		routers[id] = r
		return r, nil
	}
	for id := range edges {
		if _, err := build(id); err != nil {
			return nil, err
		}
	}
	return routers, nil
}
