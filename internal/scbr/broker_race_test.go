package scbr

import (
	"sync"
	"sync/atomic"
	"testing"

	"securecloud/internal/attest"
)

// TestBrokerConcurrentStress drives Publish, Subscribe, Unsubscribe and
// Drain from many goroutines at once. Run under -race it checks the whole
// locking architecture: the control-state RWMutex, the per-shard
// reader/writer locks, lock-free snapshot probes, and the queues mutex.
func TestBrokerConcurrentStress(t *testing.T) {
	_, enc := brokerEnclave(t)
	bk, err := NewBroker(enc, BrokerConfig{
		PayloadBytes: 256,
		CheckCost:    100,
		Shards:       3,
		MatchWorkers: 4,
		ShardBytes:   16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}

	const nClients = 6
	clients := make([]*Client, nClients)
	for i := range clients {
		c, err := Connect(bk, "client-"+itoa(i), nil, nil, attest.Policy{})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	// A base population so publishes always have something to match.
	for i, c := range clients {
		s, _ := NewSubscription(0, map[string]Interval{"a": iv(0, float64(50+i))})
		if _, err := c.Subscribe(bk, s); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg        sync.WaitGroup
		delivered atomic.Uint64
		failures  atomic.Uint64
	)
	fail := func(err error) {
		if err != nil {
			failures.Add(1)
			t.Error(err)
		}
	}

	// Publishers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := NewWorkload(DefaultWorkload(int64(g)))
			c := clients[g]
			for i := 0; i < 150; i++ {
				e := Event{Attrs: map[string]float64{"a": float64(i % 60)}, Payload: []byte("p")}
				if i%3 == 0 {
					e = w.NextEvent()
				}
				n, err := c.Publish(bk, e)
				fail(err)
				delivered.Add(uint64(n))
			}
		}(g)
	}
	// Subscriber churn: register and remove filters concurrently.
	for g := 3; g < 5; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := clients[g]
			var mine []uint64
			for i := 0; i < 100; i++ {
				s, _ := NewSubscription(0, map[string]Interval{"a": iv(float64(i%20), float64(40+i%20))})
				id, err := c.Subscribe(bk, s)
				fail(err)
				mine = append(mine, id)
				if len(mine) > 10 {
					fail(bk.Unsubscribe(c.ID, mine[0]))
					mine = mine[1:]
				}
			}
		}(g)
	}
	// Drainer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			bk.Drain(clients[i%nClients].ID)
		}
	}()
	wg.Wait()

	if failures.Load() > 0 {
		t.Fatalf("%d operations failed under concurrency", failures.Load())
	}
	if delivered.Load() == 0 {
		t.Fatal("no deliveries under stress; matching broke")
	}
	// The store must still be coherent: every remaining filter matchable.
	e := Event{Attrs: map[string]float64{"a": 10}}
	if got, want := bk.Index().Match(e), bk.Index().MatchNaive(e); !idsEqual(got, want) {
		t.Fatalf("post-stress matcher disagreement:\n got %v\nwant %v", got, want)
	}
}

// TestBrokerBinaryAndJSONClientsInterop pins the dual wire form: a legacy
// JSON envelope and a binary Client envelope land on one broker, and each
// subscriber reads deliveries originating from either.
func TestBrokerBinaryAndJSONClientsInterop(t *testing.T) {
	_, enc := brokerEnclave(t)
	bk, err := NewBroker(enc, DefaultBrokerConfig())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Connect(bk, "sub", nil, nil, attest.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	pubBin, _ := Connect(bk, "pub-bin", nil, nil, attest.Policy{})
	pubJSON, _ := Connect(bk, "pub-json", nil, nil, attest.Policy{})

	// JSON subscription via the legacy path.
	s, _ := NewSubscription(0, map[string]Interval{"v": iv(0, 10)})
	env, err := SealSubscription(sub.key, sub.ID, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bk.Subscribe(env); err != nil {
		t.Fatal(err)
	}

	// Binary publish.
	if n, err := pubBin.Publish(bk, Event{Attrs: map[string]float64{"v": 5}, Payload: []byte("bin")}); err != nil || n != 1 {
		t.Fatalf("binary publish: n=%d err=%v", n, err)
	}
	// JSON publish via the legacy sealer.
	jenv, err := SealPublication(pubJSON.key, pubJSON.ID, Event{Attrs: map[string]float64{"v": 6}, Payload: []byte("json")})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := bk.Publish(jenv); err != nil || n != 1 {
		t.Fatalf("json publish: n=%d err=%v", n, err)
	}

	events, err := sub.Receive(bk)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || string(events[0].Payload) != "bin" || string(events[1].Payload) != "json" {
		t.Fatalf("received %+v", events)
	}
}
