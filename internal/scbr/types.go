// Package scbr implements SCBR, SecureCloud's secure content-based routing
// engine (paper §V-B; Pires et al., Middleware '16): a publish/subscribe
// router whose matching step runs inside an SGX enclave. Outside the
// enclave, publications and subscriptions are encrypted and signed;
// inside, a containment-based index keeps the number of comparisons per
// publication low by exploiting covering relations between filters.
//
// The package is the subject of the paper's only quantitative figure
// (Figure 3): registration throughput collapses once the subscription
// database outgrows the EPC. The index therefore runs against the enclave
// memory model, charging a simulated cost for every node it touches, so
// the harness can regenerate the figure.
package scbr

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"securecloud/internal/cryptbox"
)

// Interval is a closed numeric interval [Lo, Hi]. Equality predicates are
// degenerate intervals with Lo == Hi.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// FullRange is the interval admitting every value.
func FullRange() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// Valid reports whether the interval is non-empty.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// Covers reports whether iv fully contains other.
func (iv Interval) Covers(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Subscription is a conjunctive filter: one interval constraint per
// attribute. An event matches when every constrained attribute has a value
// inside its interval.
type Subscription struct {
	ID uint64 `json:"id"`
	// Preds holds the constraints sorted by attribute name (canonical
	// form, maintained by Normalize).
	Preds []Predicate `json:"preds"`
}

// Predicate constrains one attribute to an interval.
type Predicate struct {
	Attr     string   `json:"attr"`
	Interval Interval `json:"interval"`
}

// Errors for filter construction and envelope handling.
var (
	ErrEmptyFilter   = errors.New("scbr: subscription with no valid predicates")
	ErrBadEnvelope   = errors.New("scbr: envelope authentication failed")
	ErrUnknownClient = errors.New("scbr: unknown client")
)

// NewSubscription builds a canonical subscription from attribute intervals.
func NewSubscription(id uint64, preds map[string]Interval) (Subscription, error) {
	s := Subscription{ID: id}
	for attr, iv := range preds {
		if !iv.Valid() {
			return Subscription{}, fmt.Errorf("scbr: empty interval on %q", attr)
		}
		s.Preds = append(s.Preds, Predicate{Attr: attr, Interval: iv})
	}
	if len(s.Preds) == 0 {
		return Subscription{}, ErrEmptyFilter
	}
	s.Normalize()
	return s, nil
}

// Normalize sorts predicates by attribute, establishing canonical form.
func (s *Subscription) Normalize() {
	sort.Slice(s.Preds, func(i, j int) bool { return s.Preds[i].Attr < s.Preds[j].Attr })
}

// get returns the interval constraining attr, if any.
func (s Subscription) get(attr string) (Interval, bool) {
	i := sort.Search(len(s.Preds), func(i int) bool { return s.Preds[i].Attr >= attr })
	if i < len(s.Preds) && s.Preds[i].Attr == attr {
		return s.Preds[i].Interval, true
	}
	return Interval{}, false
}

// Event is a publication: attribute/value pairs plus an opaque payload.
type Event struct {
	Attrs   map[string]float64 `json:"attrs"`
	Payload []byte             `json:"payload"`
}

// Matches reports whether e satisfies every predicate of s.
func (s Subscription) Matches(e Event) bool {
	for _, p := range s.Preds {
		v, ok := e.Attrs[p.Attr]
		if !ok || !p.Interval.Contains(v) {
			return false
		}
	}
	return true
}

// attrVal is one attribute of an eventView.
type attrVal struct {
	attr string
	val  float64
}

// eventView is an event's attributes in sorted order: the matcher-internal
// representation that lets a filter check run as a linear merge against the
// (equally sorted) predicate list instead of one map lookup per predicate.
type eventView []attrVal

// viewOf flattens an event's attribute map into sorted form. Built once
// per matched event, amortized over every node the traversal visits.
func viewOf(e Event) eventView {
	ev := make(eventView, 0, len(e.Attrs))
	for a, v := range e.Attrs {
		ev = append(ev, attrVal{attr: a, val: v})
	}
	sort.Slice(ev, func(i, j int) bool { return ev[i].attr < ev[j].attr })
	return ev
}

// matchesView is Matches against the sorted view; results are identical.
func (s Subscription) matchesView(ev eventView) bool {
	j := 0
	for i := range s.Preds {
		p := &s.Preds[i]
		for j < len(ev) && ev[j].attr < p.Attr {
			j++
		}
		if j >= len(ev) || ev[j].attr != p.Attr || !p.Interval.Contains(ev[j].val) {
			return false
		}
	}
	return true
}

// Covers reports whether s is at least as general as other: every event
// matching other also matches s. For conjunctive interval filters this
// holds iff for every predicate of s, other constrains the same attribute
// with an interval contained in s's. Both predicate lists are in canonical
// sorted order, so the check is a single linear merge.
func (s Subscription) Covers(other Subscription) bool {
	j := 0
	for i := range s.Preds {
		p := &s.Preds[i]
		for j < len(other.Preds) && other.Preds[j].Attr < p.Attr {
			j++
		}
		if j < len(other.Preds) && other.Preds[j].Attr == p.Attr {
			if !p.Interval.Covers(other.Preds[j].Interval) {
				return false
			}
			continue
		}
		// other is unconstrained on this attribute: it admits values
		// outside p unless p admits everything.
		if !p.Interval.Covers(FullRange()) {
			return false
		}
	}
	return true
}

// StorageBytes estimates the in-index footprint of the subscription: node
// header plus per-predicate records. Mirrors SCBR's C structures closely
// enough for memory-occupancy accounting.
func (s Subscription) StorageBytes() int {
	const nodeHeader = 64 // id, child vector header, parent link, bookkeeping
	const perPred = 32    // attr id, two float64 bounds, flags
	return nodeHeader + perPred*len(s.Preds)
}

// ---- Encrypted envelopes (the outside-the-enclave representation) ----

// Envelope is an encrypted, authenticated wrapper carrying either a
// subscription or a publication between clients and the broker. Routers
// and the untrusted network only ever see Envelopes.
type Envelope struct {
	ClientID string `json:"client_id"`
	Kind     string `json:"kind"` // "sub" | "pub"
	Sealed   []byte `json:"sealed"`
}

// envelope kinds.
const (
	KindSubscription = "sub"
	KindPublication  = "pub"
)

// SealSubscription encrypts a subscription for the broker under the
// client's session key.
func SealSubscription(key cryptbox.Key, clientID string, s Subscription) (Envelope, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return Envelope{}, err
	}
	return seal(key, clientID, KindSubscription, raw)
}

// SealPublication encrypts an event for the broker.
func SealPublication(key cryptbox.Key, clientID string, e Event) (Envelope, error) {
	raw, err := json.Marshal(e)
	if err != nil {
		return Envelope{}, err
	}
	return seal(key, clientID, KindPublication, raw)
}

// seal builds a one-shot AEAD context for the bare-key legacy API. Session
// keys are ephemeral, so they must not be interned process-wide
// (cryptbox.CachedBox never evicts); hot paths hold a per-session Box.
func seal(key cryptbox.Key, clientID, kind string, raw []byte) (Envelope, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return Envelope{}, err
	}
	return sealWith(box, clientID, kind, raw)
}

// sealWith is the hot-path seal using an already-interned AEAD context.
func sealWith(box *cryptbox.Box, clientID, kind string, raw []byte) (Envelope, error) {
	sealed, err := box.Seal(raw, []byte(kind+"|"+clientID))
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{ClientID: clientID, Kind: kind, Sealed: sealed}, nil
}

// openEnvelope authenticates and decrypts an envelope with the client's
// session key (one-shot context; see seal).
func openEnvelope(key cryptbox.Key, env Envelope) ([]byte, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return openEnvelopeWith(box, env)
}

// openEnvelopeWith is openEnvelope with an already-interned AEAD context.
func openEnvelopeWith(box *cryptbox.Box, env Envelope) ([]byte, error) {
	raw, err := box.Open(env.Sealed, []byte(env.Kind+"|"+env.ClientID))
	if err != nil {
		return nil, ErrBadEnvelope
	}
	return raw, nil
}

// Delivery is an encrypted notification from the broker to a subscriber.
type Delivery struct {
	SubscriberID string `json:"subscriber_id"`
	Sealed       []byte `json:"sealed"`
}

// OpenDelivery decrypts a delivery at the subscriber. The payload is
// whichever wire form the publisher used (binary or JSON) — the broker
// forwards the decrypted publication bytes verbatim.
func OpenDelivery(key cryptbox.Key, d Delivery) (Event, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return Event{}, err
	}
	raw, err := box.Open(d.Sealed, []byte("delivery|"+d.SubscriberID))
	if err != nil {
		return Event{}, ErrBadEnvelope
	}
	return decodeEvent(raw)
}
