package scbr

import (
	"testing"
)

// grid builds the test overlay:
//
//	      root
//	     /    \
//	   west    east
//	  /    \
//	w1      w2
func grid(t *testing.T) map[string]*Router {
	t.Helper()
	routers, err := Tree(map[string]string{
		"west": "root",
		"east": "root",
		"w1":   "west",
		"w2":   "west",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(routers) != 5 {
		t.Fatalf("built %d routers", len(routers))
	}
	return routers
}

func TestTreeRejectsSelfParent(t *testing.T) {
	if _, err := Tree(map[string]string{"a": "a"}); err == nil {
		t.Fatal("self-parent accepted")
	}
}

func TestLocalDelivery(t *testing.T) {
	r := NewRouter("solo", nil)
	s, _ := NewSubscription(1, map[string]Interval{"v": iv(0, 10)})
	r.Subscribe(s)
	if n := r.Publish(Event{Attrs: map[string]float64{"v": 5}}); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if n := r.Publish(Event{Attrs: map[string]float64{"v": 50}}); n != 0 {
		t.Fatalf("non-matching delivered %d", n)
	}
}

func TestCrossRouterDelivery(t *testing.T) {
	routers := grid(t)
	s, _ := NewSubscription(1, map[string]Interval{"v": iv(0, 10)})
	routers["w1"].Subscribe(s)

	// Publish at the opposite corner of the tree.
	if n := routers["east"].Publish(Event{Attrs: map[string]float64{"v": 7}}); n != 1 {
		t.Fatalf("delivered %d across the overlay, want 1", n)
	}
	if n := routers["east"].Publish(Event{Attrs: map[string]float64{"v": 70}}); n != 0 {
		t.Fatalf("non-matching delivered %d", n)
	}
}

func TestDeliveryToMultipleSubtrees(t *testing.T) {
	routers := grid(t)
	s1, _ := NewSubscription(1, map[string]Interval{"v": iv(0, 10)})
	s2, _ := NewSubscription(2, map[string]Interval{"v": iv(5, 15)})
	s3, _ := NewSubscription(3, map[string]Interval{"v": iv(100, 200)})
	routers["w1"].Subscribe(s1)
	routers["east"].Subscribe(s2)
	routers["w2"].Subscribe(s3)

	if n := routers["w2"].Publish(Event{Attrs: map[string]float64{"v": 7}}); n != 2 {
		t.Fatalf("delivered %d, want 2 (w1 and east)", n)
	}
}

func TestDownwardPruning(t *testing.T) {
	routers := grid(t)
	s, _ := NewSubscription(1, map[string]Interval{"v": iv(0, 10)})
	routers["east"].Subscribe(s)

	before := routers["west"].Hops()
	// Publication at root matching only east must not descend into west.
	if n := routers["root"].Publish(Event{Attrs: map[string]float64{"v": 5}}); n != 1 {
		t.Fatalf("delivered %d", n)
	}
	if routers["west"].Hops() != before {
		t.Fatal("event descended into an uninterested subtree")
	}
}

func TestCoveringAggregationUpstream(t *testing.T) {
	routers := grid(t)
	wide, _ := NewSubscription(1, map[string]Interval{"v": iv(0, 100)})
	routers["w1"].Subscribe(wide)
	// Narrower filters at the same router must not be re-announced.
	for id := uint64(2); id <= 10; id++ {
		narrow, _ := NewSubscription(id, map[string]Interval{"v": iv(10, 20)})
		routers["w1"].Subscribe(narrow)
	}
	if got := routers["w1"].AnnouncedUpstream(); got != 1 {
		t.Fatalf("announced %d filters upstream, want 1 (covering aggregation)", got)
	}
	// And west aggregates towards root too.
	if got := routers["west"].AnnouncedUpstream(); got != 1 {
		t.Fatalf("west announced %d, want 1", got)
	}
	// Deliveries still reach all 10 local filters.
	if n := routers["east"].Publish(Event{Attrs: map[string]float64{"v": 15}}); n != 10 {
		t.Fatalf("delivered %d, want 10", n)
	}
}

func TestAggregationReducesUpstreamState(t *testing.T) {
	routers := grid(t)
	w := NewWorkload(DefaultWorkload(31))
	total := 0
	for i := 0; i < 2000; i++ {
		routers["w1"].Subscribe(w.NextSubscription())
		total++
	}
	announced := routers["w1"].AnnouncedUpstream()
	if announced >= total/2 {
		t.Fatalf("aggregation weak: %d of %d filters announced upstream", announced, total)
	}
}

func TestOverlayMatchesSingleBrokerSemantics(t *testing.T) {
	// The overlay must deliver exactly what one big index would.
	routers := grid(t)
	reference := NewIndex(IndexConfig{})
	w := NewWorkload(DefaultWorkload(17))
	ids := []string{"root", "west", "east", "w1", "w2"}
	for i := 0; i < 1000; i++ {
		s := w.NextSubscription()
		reference.Insert(s)
		routers[ids[i%len(ids)]].Subscribe(s)
	}
	for i := 0; i < 100; i++ {
		e := w.NextEvent()
		want := len(reference.Match(e))
		got := routers[ids[i%len(ids)]].Publish(e)
		if got != want {
			t.Fatalf("event %d: overlay delivered %d, single broker %d", i, got, want)
		}
	}
}

func TestHopsAccounting(t *testing.T) {
	routers := grid(t)
	s, _ := NewSubscription(1, map[string]Interval{"v": iv(0, 10)})
	routers["east"].Subscribe(s)
	routers["w1"].Publish(Event{Attrs: map[string]float64{"v": 5}})
	// w1 -> west -> root -> east: three forwards, one per router.
	totalHops := routers["w1"].Hops() + routers["west"].Hops() + routers["root"].Hops()
	if totalHops != 3 {
		t.Fatalf("total hops = %d, want 3", totalHops)
	}
}
