package scbr

import (
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

// ErrSessionExists rejects a handshake that would displace a live session.
// Re-keying a live client ID requires proof of the current session key
// (Rehandshake) — otherwise any peer that can reach the broker could take
// over a client ID and have future deliveries sealed to its own key.
var ErrSessionExists = errors.New("scbr: session already established")

// ErrReplayedToken rejects a poll token whose counter is not strictly
// greater than the last one the session accepted.
var ErrReplayedToken = errors.New("scbr: poll token replayed")

// Broker is the SCBR routing engine. Its matching state (the containment
// index) lives inside enclaves; clients talk to it in encrypted envelopes
// over per-client session keys established with an attested Diffie-Hellman
// exchange. The untrusted host routing the envelopes learns neither filters
// nor publication content — the privacy property that motivates SCBR
// (§V-B).
//
// Concurrency model (shard-per-core): the subscription store is a
// ShardedIndex — one containment forest per shard, each on its own
// simulated platform — so Publish matches all shards in parallel through
// read-only snapshot spans while Subscribe/Unsubscribe lock only the home
// shard of the affected ID. Broker-level control state (sessions, ownership)
// sits behind a reader/writer lock that Publish only ever read-locks, and
// delivery queues behind their own mutex, appended once per publish after
// all per-subscriber sealing has happened outside any lock.
type Broker struct {
	enc *enclave.Enclave
	six *ShardedIndex

	mu       sync.RWMutex // sessions, owners, nextSub
	sessions map[string]*session
	owners   map[uint64]string
	nextSub  uint64

	qmu    sync.Mutex
	queues map[string][]Delivery
}

// session is one client's established state: its AEAD context, the
// precomputed delivery AAD, and the highest poll-token counter accepted
// (the replay horizon for DrainSealed).
type session struct {
	id      string
	box     *cryptbox.Box
	aad     []byte // "delivery|<clientID>"
	pollSeq atomic.Uint64
}

func aadPoll(clientID string) []byte        { return []byte("poll|" + clientID) }
func aadRehandshake(clientID string) []byte { return []byte("rehandshake|" + clientID) }

// BrokerConfig sizes the broker.
type BrokerConfig struct {
	// PayloadBytes per subscription in the index (routing state).
	PayloadBytes int
	// CheckCost is the CPU cost per filter comparison.
	CheckCost sim.Cycles
	// Shards is the number of index shards (0 = GOMAXPROCS). A topology
	// parameter: it determines subscription placement and therefore the
	// simulated figures — pin it when comparing runs.
	Shards int
	// MatchWorkers bounds the per-publish match fan-out (0 = GOMAXPROCS).
	// Execution-only: simulated totals are identical for any value.
	MatchWorkers int
	// ShardBytes sizes each shard enclave (0 = the broker enclave's size).
	ShardBytes uint64
}

// DefaultBrokerConfig mirrors the SCBR prototype's footprint.
func DefaultBrokerConfig() BrokerConfig {
	return BrokerConfig{PayloadBytes: 2048, CheckCost: 450}
}

// NewBroker builds a broker whose matching state lives on shard enclaves
// configured like enc's platform (enc itself remains the attested front
// door charged for enclave transitions).
func NewBroker(enc *enclave.Enclave, cfg BrokerConfig) (*Broker, error) {
	shardBytes := cfg.ShardBytes
	if shardBytes == 0 {
		shardBytes = enc.Size()
	}
	six, err := NewShardedIndex(ShardedIndexConfig{
		Shards:       cfg.Shards,
		Workers:      cfg.MatchWorkers,
		PayloadBytes: cfg.PayloadBytes,
		CheckCost:    cfg.CheckCost,
		Accounted:    true,
		Platform:     enc.Platform().Config(),
		ShardBytes:   shardBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Broker{
		enc:      enc,
		six:      six,
		sessions: make(map[string]*session),
		owners:   make(map[uint64]string),
		queues:   make(map[string][]Delivery),
	}, nil
}

// Index exposes the underlying sharded index (diagnostics, benchmarks).
func (b *Broker) Index() *ShardedIndex { return b.six }

// Enclave returns the broker's front enclave.
func (b *Broker) Enclave() *enclave.Enclave { return b.enc }

// Handshake is the broker half of the session establishment: it receives
// the client's X25519 public key and returns the broker's. The session key
// is derived inside the enclave. A handshake never displaces a live
// session (ErrSessionExists): otherwise any peer that can name a client ID
// would have the victim's future deliveries sealed to its own key. Rotate
// a live session with Rehandshake, which proves possession of the old key.
func (b *Broker) Handshake(clientID string, clientPub []byte) ([]byte, error) {
	return b.establish(clientID, clientPub, false)
}

// Rehandshake rotates an established session: sealedPub is the client's
// NEW X25519 public key sealed under the CURRENT session key with AAD
// "rehandshake|<clientID>" (Client.SealRehandshake). Possession of the old
// key is what authorizes replacement, so a hostile front end or network
// peer cannot take over a live client ID.
func (b *Broker) Rehandshake(clientID string, sealedPub []byte) ([]byte, error) {
	sess, err := b.session(clientID)
	if err != nil {
		return nil, err
	}
	newPub, err := sess.box.Open(sealedPub, aadRehandshake(clientID))
	if err != nil {
		return nil, ErrBadEnvelope
	}
	return b.establish(clientID, newPub, true)
}

// establish derives a session from a client public key and installs it.
// The ECDH work runs before the lock; the liveness check and the map write
// are one critical section, so two racing fresh handshakes cannot both win.
func (b *Broker) establish(clientID string, clientPub []byte, replace bool) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(clientPub)
	if err != nil {
		return nil, fmt.Errorf("scbr: client key: %w", err)
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	shared, err := priv.ECDH(pub)
	if err != nil {
		return nil, err
	}
	key, err := sessionKeyFrom(shared, clientID)
	if err != nil {
		return nil, err
	}
	// Session keys are ephemeral (fresh X25519 exchange per handshake), so
	// the AEAD context lives in the session record — not in the process-
	// wide CachedBox intern table, which never evicts — and dies with it.
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	if _, live := b.sessions[clientID]; live && !replace {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (rotate it with Rehandshake)", ErrSessionExists, clientID)
	}
	b.sessions[clientID] = &session{id: clientID, box: box, aad: []byte("delivery|" + clientID)}
	b.mu.Unlock()
	return priv.PublicKey().Bytes(), nil
}

func sessionKeyFrom(shared []byte, clientID string) (cryptbox.Key, error) {
	raw, err := cryptbox.HKDF(shared, nil, []byte("scbr-session|"+clientID), cryptbox.KeySize)
	if err != nil {
		return cryptbox.Key{}, err
	}
	return cryptbox.KeyFromBytes(raw)
}

func (b *Broker) session(clientID string) (*session, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	s, ok := b.sessions[clientID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClient, clientID)
	}
	return s, nil
}

// Subscribe registers an encrypted subscription and returns its broker-
// assigned ID. The matching step — decrypt, containment search, insert —
// runs inside the enclave (one entry per request). Only the home shard of
// the new ID is write-locked.
func (b *Broker) Subscribe(env Envelope) (uint64, error) {
	sess, err := b.session(env.ClientID)
	if err != nil {
		return 0, err
	}
	if err := b.enc.EEnter(); err != nil {
		return 0, err
	}
	defer func() { _ = b.enc.EExit() }()

	raw, err := openEnvelopeWith(sess.box, env)
	if err != nil {
		return 0, err
	}
	s, err := decodeSubscription(raw)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	b.nextSub++
	s.ID = b.nextSub
	b.owners[s.ID] = env.ClientID
	b.mu.Unlock()
	s.Normalize()
	b.six.Insert(s)
	return s.ID, nil
}

// Unsubscribe removes a subscription. Only the client that registered it
// may remove it; the broker enforces ownership inside the enclave.
func (b *Broker) Unsubscribe(clientID string, subID uint64) error {
	if _, err := b.session(clientID); err != nil {
		return err
	}
	b.mu.RLock()
	owner, ok := b.owners[subID]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("scbr: unknown subscription %d", subID)
	}
	if owner != clientID {
		return fmt.Errorf("scbr: subscription %d not owned by %s", subID, clientID)
	}
	if err := b.enc.EEnter(); err != nil {
		return err
	}
	defer func() { _ = b.enc.EExit() }()
	if b.six.Remove(subID) {
		b.mu.Lock()
		delete(b.owners, subID)
		b.mu.Unlock()
	}
	return nil
}

// Publish routes an encrypted publication: decrypt inside the enclave,
// match against all index shards in parallel, and enqueue one re-encrypted
// delivery per matching subscriber under that subscriber's session key.
// The decrypted plaintext is reused verbatim as the delivery payload (no
// re-encode), per-subscriber sealing runs outside every broker lock with
// the session's interned AEAD, and the queues lock is taken once.
func (b *Broker) Publish(env Envelope) (delivered int, err error) {
	sess, err := b.session(env.ClientID)
	if err != nil {
		return 0, err
	}
	if err := b.enc.EEnter(); err != nil {
		return 0, err
	}
	defer func() { _ = b.enc.EExit() }()

	raw, err := openEnvelopeWith(sess.box, env)
	if err != nil {
		return 0, err
	}
	e, err := decodeEvent(raw)
	if err != nil {
		return 0, err
	}
	matched := b.six.Match(e)
	if len(matched) == 0 {
		return 0, nil
	}

	// Resolve matched IDs to unique subscriber sessions under the read
	// lock. matched is in ascending ID order, so the recipient list — and
	// with it delivery order — is deterministic.
	b.mu.RLock()
	seen := make(map[string]bool, len(matched))
	recipients := make([]*session, 0, len(matched))
	for _, subID := range matched {
		client := b.owners[subID]
		if client == "" || seen[client] {
			continue
		}
		seen[client] = true
		if cs := b.sessions[client]; cs != nil {
			recipients = append(recipients, cs)
		}
	}
	b.mu.RUnlock()

	// Seal outside any lock; the AEAD context and AAD are per-session
	// precomputed, the payload is the already-decrypted raw plaintext.
	// All per-recipient deliveries seal into one contiguous buffer of
	// exact capacity (the AEAD overhead is fixed), so the fan-out costs
	// two allocations instead of one per recipient; capacity-capped
	// sub-slices keep the Delivery views independent.
	dels := make([]Delivery, len(recipients))
	capTotal := 0
	for _, cs := range recipients {
		capTotal += len(raw) + cs.box.Overhead()
	}
	buf := make([]byte, 0, capTotal)
	for i, cs := range recipients {
		start := len(buf)
		var err error
		buf, err = cs.box.SealAppend(buf, raw, cs.aad)
		if err != nil {
			return 0, err
		}
		dels[i] = Delivery{SubscriberID: cs.id, Sealed: buf[start:len(buf):len(buf)]}
	}

	b.qmu.Lock()
	for i := range dels {
		b.queues[dels[i].SubscriberID] = append(b.queues[dels[i].SubscriberID], dels[i])
	}
	b.qmu.Unlock()
	return len(dels), nil
}

// Drain returns and clears a client's pending deliveries (what the
// untrusted transport would push to the subscriber). Draining is
// destructive, so only callers trusted with the *Broker itself (in-process
// code) should use it directly — a remote front end must use DrainSealed,
// which demands proof of the session key.
func (b *Broker) Drain(clientID string) []Delivery {
	b.qmu.Lock()
	defer b.qmu.Unlock()
	out := b.queues[clientID]
	delete(b.queues, clientID)
	return out
}

// DrainSealed is Drain behind proof of session: token is an 8-byte
// big-endian counter sealed under the session key with AAD
// "poll|<clientID>" (Client.SealPollToken), strictly greater than any
// counter this session has accepted. An unauthenticated peer cannot drain
// (and thereby destroy) another client's queue, and a captured token
// cannot be replayed.
func (b *Broker) DrainSealed(clientID string, token []byte) ([]Delivery, error) {
	sess, err := b.session(clientID)
	if err != nil {
		return nil, err
	}
	raw, err := sess.box.Open(token, aadPoll(clientID))
	if err != nil {
		return nil, ErrBadEnvelope
	}
	if len(raw) != 8 {
		return nil, fmt.Errorf("scbr: poll token is %d bytes, want 8", len(raw))
	}
	seq := binary.BigEndian.Uint64(raw)
	for {
		cur := sess.pollSeq.Load()
		if seq <= cur {
			return nil, fmt.Errorf("%w: counter %d, horizon %d", ErrReplayedToken, seq, cur)
		}
		if sess.pollSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	return b.Drain(clientID), nil
}

// Client is an SCBR publisher/subscriber endpoint holding its session key.
type Client struct {
	ID      string
	key     cryptbox.Key
	box     *cryptbox.Box
	aad     []byte // "delivery|<clientID>", precomputed once
	pollSeq atomic.Uint64
}

// ClientHello is the client half of the session handshake, split in two so
// the broker's Handshake can be reached over any transport — in-process or
// the wire package's HTTP endpoint. BeginHandshake mints the ephemeral
// X25519 key; the caller carries Public() to the broker and feeds the
// broker's public key to Finish.
type ClientHello struct {
	clientID string
	priv     *ecdh.PrivateKey
}

// BeginHandshake starts a session establishment for clientID.
func BeginHandshake(clientID string) (*ClientHello, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &ClientHello{clientID: clientID, priv: priv}, nil
}

// Public returns the client's X25519 public key — what the broker's
// Handshake takes.
func (h *ClientHello) Public() []byte { return h.priv.PublicKey().Bytes() }

// Finish derives the session from the broker's public key and returns the
// established client.
func (h *ClientHello) Finish(brokerPub []byte) (*Client, error) {
	bp, err := ecdh.X25519().NewPublicKey(brokerPub)
	if err != nil {
		return nil, fmt.Errorf("scbr: broker key: %w", err)
	}
	shared, err := h.priv.ECDH(bp)
	if err != nil {
		return nil, err
	}
	key, err := sessionKeyFrom(shared, h.clientID)
	if err != nil {
		return nil, err
	}
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return &Client{ID: h.clientID, key: key, box: box, aad: []byte("delivery|" + h.clientID)}, nil
}

// Connect establishes a session with the broker. When svc and quoter are
// non-nil the client first attests the broker's enclave against policy —
// refusing to hand filters to an unverified router.
func Connect(b *Broker, clientID string, svc *attest.Service, quoter *attest.Quoter, policy attest.Policy) (*Client, error) {
	if svc != nil && quoter != nil {
		if _, err := attest.AttestEnclave(b.enc, quoter, svc, policy, nil); err != nil {
			return nil, fmt.Errorf("scbr: broker attestation failed: %w", err)
		}
	}
	h, err := BeginHandshake(clientID)
	if err != nil {
		return nil, err
	}
	brokerPub, err := b.Handshake(clientID, h.Public())
	if err != nil {
		return nil, err
	}
	return h.Finish(brokerPub)
}

// Subscribe seals and registers a subscription using the compact binary
// wire form (the JSON SealSubscription path remains for external callers).
func (c *Client) Subscribe(b *Broker, s Subscription) (uint64, error) {
	buf := cryptbox.GetScratch()
	defer func() { cryptbox.PutScratch(buf) }() // closure: buf may be regrown below
	buf, err := appendSubscriptionBinary(buf, s)
	if err != nil {
		return 0, err
	}
	env, err := sealWith(c.box, c.ID, KindSubscription, buf)
	if err != nil {
		return 0, err
	}
	return b.Subscribe(env)
}

// Publish seals and routes an event in the compact binary wire form.
func (c *Client) Publish(b *Broker, e Event) (int, error) {
	buf := cryptbox.GetScratch()
	defer func() { cryptbox.PutScratch(buf) }() // closure: buf may be regrown below
	buf, err := appendEventBinary(buf, e)
	if err != nil {
		return 0, err
	}
	env, err := sealWith(c.box, c.ID, KindPublication, buf)
	if err != nil {
		return 0, err
	}
	return b.Publish(env)
}

// Receive drains and decrypts pending deliveries with the client's held
// AEAD context.
func (c *Client) Receive(b *Broker) ([]Event, error) {
	var out []Event
	for _, d := range b.Drain(c.ID) {
		e, err := c.OpenDeliverySealed(d.Sealed)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// SealSubscriptionBytes seals s into the envelope body the broker's
// Subscribe expects — the compact binary wire form under the session key,
// AAD-bound to KindSubscription and the client ID. The bytes are exactly
// what Subscribe puts in Envelope.Sealed, so a remote transport (the wire
// package) carries the already-tested envelope form with no new crypto.
func (c *Client) SealSubscriptionBytes(s Subscription) ([]byte, error) {
	buf := cryptbox.GetScratch()
	defer func() { cryptbox.PutScratch(buf) }() // closure: buf may be regrown below
	buf, err := appendSubscriptionBinary(buf, s)
	if err != nil {
		return nil, err
	}
	return c.box.Seal(buf, []byte(KindSubscription+"|"+c.ID))
}

// SealEventBytes seals e into the envelope body the broker's Publish
// expects (see SealSubscriptionBytes).
func (c *Client) SealEventBytes(e Event) ([]byte, error) {
	buf := cryptbox.GetScratch()
	defer func() { cryptbox.PutScratch(buf) }() // closure: buf may be regrown below
	buf, err := appendEventBinary(buf, e)
	if err != nil {
		return nil, err
	}
	return c.box.Seal(buf, []byte(KindPublication+"|"+c.ID))
}

// SealPollToken mints the next poll authorization for DrainSealed: the
// client's own monotonically increasing counter, sealed under the session
// key. Each token is single-use (the broker advances its replay horizon to
// the token's counter), so mint a fresh one per poll.
func (c *Client) SealPollToken() ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], c.pollSeq.Add(1))
	return c.box.Seal(buf[:], aadPoll(c.ID))
}

// SealRehandshake seals the new handshake's public key under the current
// session key — the possession proof Broker.Rehandshake demands before it
// lets a live session be re-keyed.
func (c *Client) SealRehandshake(h *ClientHello) ([]byte, error) {
	return c.box.Seal(h.Public(), aadRehandshake(c.ID))
}

// OpenDeliverySealed authenticates and decodes one sealed delivery payload
// (a Delivery.Sealed, however it was transported).
func (c *Client) OpenDeliverySealed(sealed []byte) (Event, error) {
	raw, err := c.box.Open(sealed, c.aad)
	if err != nil {
		return Event{}, ErrBadEnvelope
	}
	return decodeEvent(raw)
}
