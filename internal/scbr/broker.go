package scbr

import (
	"crypto/ecdh"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"sync"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

// Broker is the SCBR routing engine. Its matching state (the containment
// index) lives inside an enclave; clients talk to it in encrypted
// envelopes over per-client session keys established with an attested
// Diffie-Hellman exchange. The untrusted host routing the envelopes learns
// neither filters nor publication content — the privacy property that
// motivates SCBR (§V-B).
type Broker struct {
	enc *enclave.Enclave
	ix  *Index

	mu       sync.Mutex
	sessions map[string]cryptbox.Key // clientID -> session key
	owners   map[uint64]string       // subscription ID -> clientID
	queues   map[string][]Delivery
	nextSub  uint64
}

// BrokerConfig sizes the broker.
type BrokerConfig struct {
	// PayloadBytes per subscription in the index (routing state).
	PayloadBytes int
	// CheckCost is the CPU cost per filter comparison.
	CheckCost sim.Cycles
}

// DefaultBrokerConfig mirrors the SCBR prototype's footprint.
func DefaultBrokerConfig() BrokerConfig {
	return BrokerConfig{PayloadBytes: 2048, CheckCost: 450}
}

// NewBroker builds a broker whose index lives on the enclave heap.
func NewBroker(enc *enclave.Enclave, cfg BrokerConfig) (*Broker, error) {
	arena, err := enc.HeapArena()
	if err != nil {
		return nil, err
	}
	ix := NewIndex(IndexConfig{
		Mem:          enc.Memory(),
		Arena:        arena,
		PayloadBytes: cfg.PayloadBytes,
		CheckCost:    cfg.CheckCost,
	})
	return &Broker{
		enc:      enc,
		ix:       ix,
		sessions: make(map[string]cryptbox.Key),
		owners:   make(map[uint64]string),
		queues:   make(map[string][]Delivery),
	}, nil
}

// Index exposes the underlying index (diagnostics, benchmarks).
func (b *Broker) Index() *Index { return b.ix }

// Enclave returns the broker's enclave.
func (b *Broker) Enclave() *enclave.Enclave { return b.enc }

// Handshake is the broker half of the session establishment: it receives
// the client's X25519 public key and returns the broker's. The session key
// is derived inside the enclave.
func (b *Broker) Handshake(clientID string, clientPub []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(clientPub)
	if err != nil {
		return nil, fmt.Errorf("scbr: client key: %w", err)
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	shared, err := priv.ECDH(pub)
	if err != nil {
		return nil, err
	}
	key, err := sessionKeyFrom(shared, clientID)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.sessions[clientID] = key
	b.mu.Unlock()
	return priv.PublicKey().Bytes(), nil
}

func sessionKeyFrom(shared []byte, clientID string) (cryptbox.Key, error) {
	raw, err := cryptbox.HKDF(shared, nil, []byte("scbr-session|"+clientID), cryptbox.KeySize)
	if err != nil {
		return cryptbox.Key{}, err
	}
	return cryptbox.KeyFromBytes(raw)
}

func (b *Broker) session(clientID string) (cryptbox.Key, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	k, ok := b.sessions[clientID]
	if !ok {
		return cryptbox.Key{}, fmt.Errorf("%w: %s", ErrUnknownClient, clientID)
	}
	return k, nil
}

// Subscribe registers an encrypted subscription and returns its broker-
// assigned ID. The matching step — decrypt, containment search, insert —
// runs inside the enclave (one entry per request).
func (b *Broker) Subscribe(env Envelope) (uint64, error) {
	key, err := b.session(env.ClientID)
	if err != nil {
		return 0, err
	}
	if err := b.enc.EEnter(); err != nil {
		return 0, err
	}
	defer func() { _ = b.enc.EExit() }()

	raw, err := openEnvelope(key, env)
	if err != nil {
		return 0, err
	}
	var s Subscription
	if err := json.Unmarshal(raw, &s); err != nil {
		return 0, fmt.Errorf("scbr: decoding subscription: %w", err)
	}
	b.mu.Lock()
	b.nextSub++
	s.ID = b.nextSub
	b.owners[s.ID] = env.ClientID
	b.mu.Unlock()
	s.Normalize()
	b.ix.Insert(s)
	return s.ID, nil
}

// Unsubscribe removes a subscription. Only the client that registered it
// may remove it; the broker enforces ownership inside the enclave.
func (b *Broker) Unsubscribe(clientID string, subID uint64) error {
	if _, err := b.session(clientID); err != nil {
		return err
	}
	b.mu.Lock()
	owner, ok := b.owners[subID]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("scbr: unknown subscription %d", subID)
	}
	if owner != clientID {
		return fmt.Errorf("scbr: subscription %d not owned by %s", subID, clientID)
	}
	if err := b.enc.EEnter(); err != nil {
		return err
	}
	defer func() { _ = b.enc.EExit() }()
	b.ix.Remove(subID)
	b.mu.Lock()
	delete(b.owners, subID)
	b.mu.Unlock()
	return nil
}

// Publish routes an encrypted publication: decrypt inside the enclave,
// match against the containment index, and enqueue one re-encrypted
// delivery per matching subscriber under that subscriber's session key.
func (b *Broker) Publish(env Envelope) (delivered int, err error) {
	key, err := b.session(env.ClientID)
	if err != nil {
		return 0, err
	}
	if err := b.enc.EEnter(); err != nil {
		return 0, err
	}
	defer func() { _ = b.enc.EExit() }()

	raw, err := openEnvelope(key, env)
	if err != nil {
		return 0, err
	}
	var e Event
	if err := json.Unmarshal(raw, &e); err != nil {
		return 0, fmt.Errorf("scbr: decoding publication: %w", err)
	}
	matched := b.ix.Match(e)

	payload, err := json.Marshal(e)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := make(map[string]bool, len(matched))
	for _, subID := range matched {
		client := b.owners[subID]
		if client == "" || seen[client] {
			continue
		}
		seen[client] = true
		ck := b.sessions[client]
		box, err := cryptbox.NewBox(ck)
		if err != nil {
			return delivered, err
		}
		sealed, err := box.Seal(payload, []byte("delivery|"+client))
		if err != nil {
			return delivered, err
		}
		b.queues[client] = append(b.queues[client], Delivery{SubscriberID: client, Sealed: sealed})
		delivered++
	}
	return delivered, nil
}

// Drain returns and clears a client's pending deliveries (what the
// untrusted transport would push to the subscriber).
func (b *Broker) Drain(clientID string) []Delivery {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.queues[clientID]
	b.queues[clientID] = nil
	return out
}

// Client is an SCBR publisher/subscriber endpoint holding its session key.
type Client struct {
	ID  string
	key cryptbox.Key
}

// Connect establishes a session with the broker. When svc and quoter are
// non-nil the client first attests the broker's enclave against policy —
// refusing to hand filters to an unverified router.
func Connect(b *Broker, clientID string, svc *attest.Service, quoter *attest.Quoter, policy attest.Policy) (*Client, error) {
	if svc != nil && quoter != nil {
		if _, err := attest.AttestEnclave(b.enc, quoter, svc, policy, nil); err != nil {
			return nil, fmt.Errorf("scbr: broker attestation failed: %w", err)
		}
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	brokerPub, err := b.Handshake(clientID, priv.PublicKey().Bytes())
	if err != nil {
		return nil, err
	}
	bp, err := ecdh.X25519().NewPublicKey(brokerPub)
	if err != nil {
		return nil, err
	}
	shared, err := priv.ECDH(bp)
	if err != nil {
		return nil, err
	}
	key, err := sessionKeyFrom(shared, clientID)
	if err != nil {
		return nil, err
	}
	return &Client{ID: clientID, key: key}, nil
}

// Subscribe seals and registers a subscription.
func (c *Client) Subscribe(b *Broker, s Subscription) (uint64, error) {
	env, err := SealSubscription(c.key, c.ID, s)
	if err != nil {
		return 0, err
	}
	return b.Subscribe(env)
}

// Publish seals and routes an event.
func (c *Client) Publish(b *Broker, e Event) (int, error) {
	env, err := SealPublication(c.key, c.ID, e)
	if err != nil {
		return 0, err
	}
	return b.Publish(env)
}

// Receive drains and decrypts pending deliveries.
func (c *Client) Receive(b *Broker) ([]Event, error) {
	var out []Event
	for _, d := range b.Drain(c.ID) {
		e, err := OpenDelivery(c.key, d)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
