package scbr

import (
	"math/rand"

	"securecloud/internal/sim"
)

// WorkloadConfig parameterises the synthetic subscription workload used by
// the Figure 3 harness. Subscriptions are drawn from a virtual containment
// hierarchy — the structure content-based workloads exhibit in practice
// (broad topic filters covering narrower regional filters covering
// individual feeder filters) and the structure SCBR's index exploits.
type WorkloadConfig struct {
	Seed int64
	// Branch is the fan-out of the virtual hierarchy at every level
	// (used when Branches is nil).
	Branch int
	// Branches optionally sets a distinct fan-out per level; its length
	// overrides Depth.
	Branches []int
	// Depth is the number of hierarchy levels below the roots.
	Depth int
	// MinDepth is the minimum subscription depth (default 1). Deeper
	// populations make registration descend — and read — more of the
	// stored database.
	MinDepth int
	// DepthWeights optionally gives the probability of each depth
	// (1-based; normalised internally). When set it overrides
	// MinDepth/uniform depth selection.
	DepthWeights []float64
	// Attrs is the attribute-universe size for the event noise attribute.
	Attrs int
	// ZipfS skews which hierarchy branches are popular (>1).
	ZipfS float64
}

// DefaultWorkload mirrors the SCBR evaluation's filter population: a
// containment hierarchy that fans out modestly near the roots (few, hot,
// general filters) and widely at depth (many, cold, specific filters), so
// a registration's containment search reads a database-size-proportional
// slice of stored filters.
func DefaultWorkload(seed int64) WorkloadConfig {
	return WorkloadConfig{
		Seed:     seed,
		Branches: []int{8, 16, 64, 64, 64},
		// A thin skeleton of broad filters plus a deep majority of
		// specific ones: registrations then read child lists spread
		// across the whole stored database, which is what makes the
		// working set track occupancy (Figure 3's x-axis).
		DepthWeights: []float64{0.05, 0.05, 0.20, 0.35, 0.35},
		Attrs:        100,
		ZipfS:        1.1,
	}
}

// Workload generates subscriptions and matching publications.
type Workload struct {
	cfg    WorkloadConfig
	rng    *rand.Rand
	zipfs  []*rand.Zipf // one per level
	widths []float64    // interval width per level (index 0 = level 1)
	nextID uint64
}

// NewWorkload builds a generator.
func NewWorkload(cfg WorkloadConfig) *Workload {
	if cfg.Branch <= 0 {
		cfg.Branch = 16
	}
	if len(cfg.Branches) > 0 {
		cfg.Depth = len(cfg.Branches)
	} else {
		if cfg.Depth <= 0 {
			cfg.Depth = 4
		}
		cfg.Branches = make([]int, cfg.Depth)
		for i := range cfg.Branches {
			cfg.Branches[i] = cfg.Branch
		}
	}
	if cfg.MinDepth <= 0 {
		cfg.MinDepth = 1
	}
	if cfg.MinDepth > cfg.Depth {
		cfg.MinDepth = cfg.Depth
	}
	if cfg.Attrs <= 0 {
		cfg.Attrs = 100
	}
	rng := sim.NewRand(cfg.Seed)
	w := &Workload{cfg: cfg, rng: rng}
	width := 1e9
	for _, b := range cfg.Branches {
		width /= float64(b)
		w.widths = append(w.widths, width)
		w.zipfs = append(w.zipfs, sim.Zipf(rng, cfg.ZipfS, uint64(b)))
	}
	return w
}

// levelWidth returns the interval width of hierarchy level l (1-based).
func (w *Workload) levelWidth(l int) float64 { return w.widths[l-1] }

// drawDepth samples a subscription depth from DepthWeights, or uniformly
// over [MinDepth, Depth] when no weights are configured.
func (w *Workload) drawDepth() int {
	if len(w.cfg.DepthWeights) == 0 {
		return w.cfg.MinDepth + w.rng.Intn(w.cfg.Depth-w.cfg.MinDepth+1)
	}
	n := len(w.cfg.DepthWeights)
	if n > w.cfg.Depth {
		n = w.cfg.Depth
	}
	var total float64
	for _, p := range w.cfg.DepthWeights[:n] {
		total += p
	}
	v := w.rng.Float64() * total
	for i, p := range w.cfg.DepthWeights[:n] {
		v -= p
		if v < 0 {
			return i + 1
		}
	}
	return n
}

// NextSubscription draws one subscription: a random-depth path through the
// hierarchy (Zipf-skewed branch choices) expressed as nested interval
// predicates, one per scope level. Prefix paths cover extension paths;
// identical paths are equivalent filters and land in the index's
// equivalence buckets.
func (w *Workload) NextSubscription() Subscription {
	w.nextID++
	depth := w.drawDepth()

	lo := 0.0
	var preds []Predicate
	for l := 1; l <= depth; l++ {
		width := w.levelWidth(l)
		branch := float64(w.zipfs[l-1].Uint64())
		lo += branch * width
		preds = append(preds, Predicate{
			Attr:     scopeAttr(l),
			Interval: Interval{Lo: lo, Hi: lo + width},
		})
	}
	s := Subscription{ID: w.nextID, Preds: preds}
	s.Normalize()
	return s
}

// NextEvent draws a publication that lands somewhere in the hierarchy, so
// matching exercises the same index regions registration populates.
func (w *Workload) NextEvent() Event {
	attrs := make(map[string]float64, w.cfg.Depth+1)
	lo := 0.0
	for l := 1; l <= w.cfg.Depth; l++ {
		width := w.levelWidth(l)
		branch := float64(w.zipfs[l-1].Uint64())
		lo += branch * width
		v := lo + w.rng.Float64()*width
		attrs[scopeAttr(l)] = v
	}
	attrs[leafAttr(w.rng.Intn(w.cfg.Attrs))] = w.rng.Float64() * float64(w.nextID+1)
	return Event{Attrs: attrs, Payload: []byte("payload")}
}

// scopeAttrs interns the per-level attribute names: every predicate and
// event shares one string object per level instead of allocating a copy,
// which shrinks the live heap the GC marks and lets equality compares take
// the pointer-identity fast path.
var scopeAttrs = [...]string{
	"scope0", "scope1", "scope2", "scope3", "scope4",
	"scope5", "scope6", "scope7", "scope8", "scope9",
}

func scopeAttr(level int) string {
	if level >= 0 && level < len(scopeAttrs) {
		return scopeAttrs[level]
	}
	// Deeper levels keep the historical single-rune suffix so attribute
	// names — and with them canonical predicate order and every derived
	// metric — are unchanged for any configurable depth.
	return "scope" + string(rune('0'+level))
}

func leafAttr(i int) string {
	return "leaf" + itoa(i)
}

// itoa is a tiny allocation-free integer formatter for attribute names.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 && i > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
