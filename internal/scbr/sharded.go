package scbr

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

// ShardedIndexConfig sizes a sharded containment index.
type ShardedIndexConfig struct {
	// Shards is the number of index shards (0 = GOMAXPROCS). The shard
	// count is a *topology* parameter: it decides where each subscription
	// lives and therefore every simulated figure. Fix it when comparing
	// runs; vary Workers freely instead.
	Shards int
	// Workers bounds the fan-out of one Match across shards
	// (0 = GOMAXPROCS). Purely an execution parameter — totals are
	// identical for any worker count.
	Workers int
	// PayloadBytes and CheckCost parameterise each shard's Index.
	PayloadBytes int
	CheckCost    sim.Cycles
	// Accounted builds each shard on its own simulated platform + enclave
	// (shard-per-core), sized ShardBytes, configured by Platform. With
	// Accounted false the shards are plain data structures.
	Accounted  bool
	Platform   enclave.Config
	ShardBytes uint64
}

// indexShard is one shard: an Index plus the reader/writer lock that makes
// the snapshot-read discipline safe. Matches hold the read side and use
// Index.MatchSnapshot (mutates nothing); Insert/Remove hold the write side.
type indexShard struct {
	mu  sync.RWMutex
	ix  *Index
	enc *enclave.Enclave
	mem *enclave.Memory // nil when unaccounted
}

// ShardedIndex is the concurrent form of the SCBR subscription store: the
// containment forest is partitioned into Shards independent Indexes keyed
// by subscription ID, each (when accounted) living in its own enclave on
// its own simulated platform — the shard-per-core deployment where every
// core runs one matcher replica against its slice of the filter set, as a
// partitioned broker cluster would across machines.
//
// Writes (Insert/Remove) lock only their shard. Match fans out across all
// shards through a bounded worker set; each per-shard match charges a
// read-only snapshot span, so concurrent matches never perturb one
// another's simulated costs: aggregate sim-cycles and faults are
// bit-identical for any interleaving and any worker count. Match results
// merge into ascending subscription-ID order — deterministic across runs
// and across shard counts.
type ShardedIndex struct {
	shards  []*indexShard
	workers int
	// snapChecks accumulates comparison counts from snapshot matches, which
	// cannot write the per-Index counter lock-free.
	snapChecks atomic.Uint64
}

// NewShardedIndex builds the sharded store.
func NewShardedIndex(cfg ShardedIndexConfig) (*ShardedIndex, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	sx := &ShardedIndex{workers: cfg.Workers}
	for i := 0; i < cfg.Shards; i++ {
		sh := &indexShard{}
		icfg := IndexConfig{PayloadBytes: cfg.PayloadBytes, CheckCost: cfg.CheckCost}
		if cfg.Accounted {
			if cfg.ShardBytes == 0 {
				return nil, fmt.Errorf("scbr: accounted sharded index needs ShardBytes")
			}
			enc, arena, err := enclave.NewWorker(cfg.Platform, cfg.ShardBytes, fmt.Sprintf("scbr-shard-%d", i))
			if err != nil {
				return nil, err
			}
			icfg.Mem = enc.Memory()
			icfg.Arena = arena
			sh.enc = enc
			sh.mem = enc.Memory()
		}
		sh.ix = NewIndex(icfg)
		sx.shards = append(sx.shards, sh)
	}
	return sx, nil
}

// shardFor maps a subscription ID to its home shard.
func (sx *ShardedIndex) shardFor(id uint64) *indexShard {
	return sx.shards[id%uint64(len(sx.shards))]
}

// Shards returns the shard count.
func (sx *ShardedIndex) Shards() int { return len(sx.shards) }

// Insert registers a subscription in its home shard.
func (sx *ShardedIndex) Insert(s Subscription) {
	sh := sx.shardFor(s.ID)
	sh.mu.Lock()
	sh.ix.Insert(s)
	sh.mu.Unlock()
}

// Remove unregisters a subscription, reporting whether it was present.
func (sx *ShardedIndex) Remove(id uint64) bool {
	sh := sx.shardFor(id)
	sh.mu.Lock()
	ok := sh.ix.Remove(id)
	sh.mu.Unlock()
	return ok
}

// forEachShard runs fn(i) for every shard index across at most sx.workers
// concurrent workers.
func (sx *ShardedIndex) forEachShard(fn func(int)) {
	sim.ParallelFor(len(sx.shards), sx.workers, fn)
}

// Match returns the IDs of all subscriptions matching e, in ascending ID
// order, matching every shard in parallel against a read-only snapshot.
// Safe for concurrent use with itself; Insert/Remove serialize against the
// affected shard only.
func (sx *ShardedIndex) Match(e Event) []uint64 {
	parts := make([][]uint64, len(sx.shards))
	var checks atomic.Uint64
	sx.forEachShard(func(i int) {
		sh := sx.shards[i]
		sh.mu.RLock()
		ids, ck := sh.ix.MatchSnapshot(e)
		sh.mu.RUnlock()
		parts[i] = ids
		checks.Add(ck)
	})
	sx.snapChecks.Add(checks.Load())
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]uint64, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	slices.Sort(out)
	return out
}

// MatchNaive checks every stored subscription without pruning (reference
// matcher), in ascending ID order. It takes each shard's write lock (the
// naive walk uses the mutating accounting path).
func (sx *ShardedIndex) MatchNaive(e Event) []uint64 {
	var out []uint64
	for _, sh := range sx.shards {
		sh.mu.Lock()
		out = append(out, sh.ix.MatchNaive(e)...)
		sh.mu.Unlock()
	}
	slices.Sort(out)
	return out
}

// Count returns the number of stored subscriptions.
func (sx *ShardedIndex) Count() int {
	n := 0
	for _, sh := range sx.shards {
		sh.mu.RLock()
		n += sh.ix.Count()
		sh.mu.RUnlock()
	}
	return n
}

// MemoryBytes returns the total simulated occupancy across shards.
func (sx *ShardedIndex) MemoryBytes() int64 {
	var n int64
	for _, sh := range sx.shards {
		sh.mu.RLock()
		n += sh.ix.MemoryBytes()
		sh.mu.RUnlock()
	}
	return n
}

// Checks returns the cumulative cover/match comparisons across shards,
// including snapshot matches.
func (sx *ShardedIndex) Checks() uint64 {
	n := sx.snapChecks.Load()
	for _, sh := range sx.shards {
		sh.mu.RLock()
		n += sh.ix.Checks()
		sh.mu.RUnlock()
	}
	return n
}

// Depth returns the maximum forest depth across shards.
func (sx *ShardedIndex) Depth() int {
	d := 0
	for _, sh := range sx.shards {
		sh.mu.RLock()
		if sd := sh.ix.Depth(); sd > d {
			d = sd
		}
		sh.mu.RUnlock()
	}
	return d
}

// RootFanout returns the total number of forest roots across shards.
func (sx *ShardedIndex) RootFanout() int {
	n := 0
	for _, sh := range sx.shards {
		sh.mu.RLock()
		n += sh.ix.RootFanout()
		sh.mu.RUnlock()
	}
	return n
}

// Cycles returns the total simulated cycles charged across all shard
// memories (zero when unaccounted). Order-independent under concurrent
// snapshot matches, so equal workloads report equal totals at any
// parallelism.
func (sx *ShardedIndex) Cycles() sim.Cycles {
	var n sim.Cycles
	for _, sh := range sx.shards {
		if sh.mem != nil {
			n += sh.mem.Cycles()
		}
	}
	return n
}

// Faults returns total page faults across shard memories.
func (sx *ShardedIndex) Faults() uint64 {
	var n uint64
	for _, sh := range sx.shards {
		if sh.mem != nil {
			n += sh.mem.Faults()
		}
	}
	return n
}

// ShardCycles returns each shard's simulated cycle total (benchmark hook:
// per-op deltas give the critical-path/serial decomposition).
func (sx *ShardedIndex) ShardCycles() []sim.Cycles {
	out := make([]sim.Cycles, len(sx.shards))
	for i, sh := range sx.shards {
		if sh.mem != nil {
			out[i] = sh.mem.Cycles()
		}
	}
	return out
}

// ResetAccounting zeroes every shard memory's ledger and fault counter.
func (sx *ShardedIndex) ResetAccounting() {
	for _, sh := range sx.shards {
		if sh.mem != nil {
			sh.mem.ResetAccounting()
		}
	}
}
