package scbr

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"securecloud/internal/enclave"
)

func sortedIDs(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func idsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedMatchEquivalence is the property test of the matcher family:
// on random workloads, for every shard count, the sharded parallel matcher,
// the pruning matcher, the snapshot matcher and the naive reference all
// return the same ID set. Subscriptions are also randomly removed to
// exercise re-parenting in every shard.
func TestShardedMatchEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed * 977))
			w := NewWorkload(DefaultWorkload(seed + 100))
			ref := NewIndex(IndexConfig{})
			sx, err := NewShardedIndex(ShardedIndexConfig{Shards: shards, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			var live []uint64
			nsubs := 200 + rng.Intn(400)
			for i := 0; i < nsubs; i++ {
				s := w.NextSubscription()
				ref.Insert(s)
				sx.Insert(s)
				live = append(live, s.ID)
			}
			// Remove a random quarter from both stores.
			rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
			for _, id := range live[:len(live)/4] {
				if ref.Remove(id) != sx.Remove(id) {
					t.Fatalf("shards=%d seed=%d: removal disagreement on id %d", shards, seed, id)
				}
			}
			for j := 0; j < 40; j++ {
				e := w.NextEvent()
				naive := sortedIDs(ref.MatchNaive(e))
				pruned := sortedIDs(ref.Match(e))
				snap, _ := ref.MatchSnapshot(e)
				snap = sortedIDs(snap)
				got := sx.Match(e)
				if !idsEqual(naive, pruned) {
					t.Fatalf("shards=%d seed=%d: Match != MatchNaive\n got %v\nwant %v", shards, seed, pruned, naive)
				}
				if !idsEqual(naive, snap) {
					t.Fatalf("shards=%d seed=%d: MatchSnapshot != MatchNaive\n got %v\nwant %v", shards, seed, snap, naive)
				}
				if !idsEqual(naive, got) {
					t.Fatalf("shards=%d seed=%d: ShardedIndex.Match != MatchNaive\n got %v\nwant %v", shards, seed, got, naive)
				}
				if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
					t.Fatalf("shards=%d: sharded match result not sorted: %v", shards, got)
				}
			}
		}
	}
}

// accountedShardedIndex builds a small accounted sharded index on shrunken
// platforms (4 MiB EPC) so both the resident and the swapping regime are
// cheap to reach.
func accountedShardedIndex(t testing.TB, shards int, subs int) (*ShardedIndex, *Workload) {
	t.Helper()
	sx, err := NewShardedIndex(ShardedIndexConfig{
		Shards:       shards,
		Workers:      4,
		PayloadBytes: 600,
		CheckCost:    450,
		Accounted:    true,
		Platform: enclave.Config{
			EPCBytes:         4 << 20,
			EPCReservedBytes: 1 << 20,
			LLCBytes:         256 << 10,
			LLCWays:          8,
			LineSize:         64,
			PageSize:         4096,
		},
		ShardBytes: 24 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(DefaultWorkload(42))
	for i := 0; i < subs; i++ {
		sx.Insert(w.NextSubscription())
	}
	return sx, w
}

// TestShardedMatchDeterministicUnderConcurrency pins the tentpole
// guarantee: publishing the same multiset of events sequentially or from
// many goroutines charges bit-identical aggregate sim-cycles and faults,
// because concurrent matches read a frozen snapshot of each shard.
func TestShardedMatchDeterministicUnderConcurrency(t *testing.T) {
	const shards, subs, nevents = 3, 14000, 96
	run := func(parallel int) (cycles uint64, faults uint64, matched uint64) {
		sx, w := accountedShardedIndex(t, shards, subs)
		events := make([]Event, nevents)
		for i := range events {
			events[i] = w.NextEvent()
		}
		sx.ResetAccounting()
		var total struct {
			sync.Mutex
			n uint64
		}
		var wg sync.WaitGroup
		wg.Add(parallel)
		for g := 0; g < parallel; g++ {
			go func(g int) {
				defer wg.Done()
				n := uint64(0)
				for i := g; i < nevents; i += parallel {
					n += uint64(len(sx.Match(events[i])))
				}
				total.Lock()
				total.n += n
				total.Unlock()
			}(g)
		}
		wg.Wait()
		return uint64(sx.Cycles()), sx.Faults(), total.n
	}
	c1, f1, m1 := run(1)
	c4, f4, m4 := run(4)
	if m1 == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	if c1 != c4 || f1 != f4 || m1 != m4 {
		t.Fatalf("parallel run diverged from sequential:\n seq cycles=%d faults=%d matched=%d\n par cycles=%d faults=%d matched=%d",
			c1, f1, m1, c4, f4, m4)
	}
	if f1 == 0 {
		t.Fatal("expected the swapping regime (nonzero faults); shrink EPC or grow subs")
	}
}

// TestSnapshotMatchLeavesStateFrozen verifies the read-only discipline
// end to end: any number of snapshot matches between two mutating matches
// must not change what the second mutating match is charged.
func TestSnapshotMatchLeavesStateFrozen(t *testing.T) {
	build := func() (*ShardedIndex, []Event) {
		sx, w := accountedShardedIndex(t, 2, 3000)
		events := make([]Event, 8)
		for i := range events {
			events[i] = w.NextEvent()
		}
		return sx, events
	}
	costOf := func(sx *ShardedIndex, e Event) uint64 {
		before := uint64(sx.Cycles())
		sx.MatchNaive(e) // mutating path
		return uint64(sx.Cycles()) - before
	}
	sxA, events := build()
	sxB, _ := build()
	// A: mutate, snapshot-match a lot, mutate. B: mutate, mutate.
	a1 := costOf(sxA, events[0])
	for i := 0; i < 50; i++ {
		sxA.Match(events[i%len(events)])
	}
	b1 := costOf(sxB, events[0])
	aProbe := uint64(sxA.Cycles())
	bProbe := uint64(sxB.Cycles())
	a2 := costOf(sxA, events[1])
	b2 := costOf(sxB, events[1])
	_ = aProbe
	_ = bProbe
	if a1 != b1 {
		t.Fatalf("twin builds diverged before snapshots: %d vs %d", a1, b1)
	}
	if a2 != b2 {
		t.Fatalf("snapshot matches perturbed platform state: follow-up mutating match cost %d, want %d", a2, b2)
	}
}
