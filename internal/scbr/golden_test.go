package scbr

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// The golden tests pin the simulated-cycle outputs of the accounting hot
// path. The values in testdata/ were recorded on the reference (pre-
// optimization) implementation; any fast-path change to sim or enclave must
// reproduce them bit-for-bit. Regenerate only when the cost MODEL itself is
// deliberately changed: GOLDEN_UPDATE=1 go test ./internal/scbr -run Golden
//
// Floats are stored as full-precision strings so the comparison is exact to
// the last bit, not within an epsilon.

// goldenPlatform is a shrunken platform (4 MiB EPC, 256 KiB LLC) so the
// below/above-EPC regimes of the paper are exercised in milliseconds.
func goldenPlatform() enclave.Config {
	return enclave.Config{
		EPCBytes:         4 << 20,
		EPCReservedBytes: 1 << 20,
		LLCBytes:         256 << 10,
		LLCWays:          8,
		LineSize:         64,
		PageSize:         4096,
	}
}

type matchGolden struct {
	Cycles uint64 `json:"sim_cycles"`
	Faults uint64 `json:"faults"`
	IDs    uint64 `json:"matched_ids"` // total matches delivered (workload shape)
}

type figure3Golden struct {
	OccupancyMB string `json:"occupancy_mb"`
	TimeRatio   string `json:"time_ratio"`
	FaultRatio  string `json:"fault_ratio"`
	InFaults    uint64 `json:"in_faults"`
	OutFaults   uint64 `json:"out_faults"`
}

type golden struct {
	MatchResident matchGolden     `json:"match_resident"`
	MatchSwapping matchGolden     `json:"match_swapping"`
	Figure3       []figure3Golden `json:"figure3"`
}

// runGoldenMatch builds a subscription store of targetBytes inside an
// enclave on the golden platform and runs 200 matches, returning the exact
// accounting outcome.
func runGoldenMatch(t *testing.T, targetBytes int64) matchGolden {
	t.Helper()
	p := enclave.NewPlatform(goldenPlatform())
	var signer cryptbox.Digest
	enc, err := p.ECreate(uint64(targetBytes)+(4<<20), signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("scbr-golden")); err != nil {
		t.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		t.Fatal(err)
	}
	arena, err := enc.HeapArena()
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(IndexConfig{
		Mem: enc.Memory(), Arena: arena, PayloadBytes: 600, CheckCost: 450,
	})
	w := NewWorkload(DefaultWorkload(42))
	for ix.MemoryBytes() < targetBytes {
		ix.Insert(w.NextSubscription())
	}
	events := make([]Event, 32)
	for i := range events {
		events[i] = w.NextEvent()
	}
	enc.Memory().ResetAccounting()
	var ids uint64
	for i := 0; i < 200; i++ {
		ids += uint64(len(ix.Match(events[i%len(events)])))
	}
	return matchGolden{
		Cycles: uint64(enc.Memory().Cycles()),
		Faults: enc.Memory().Faults(),
		IDs:    ids,
	}
}

// runGoldenFigure3 sweeps one below-EPC and one above-EPC occupancy on the
// golden platform.
func runGoldenFigure3(t *testing.T) []figure3Golden {
	t.Helper()
	cfg := Figure3Config{
		OccupanciesMB: []float64{1, 6},
		MeasureOps:    100,
		PayloadBytes:  600,
		CheckCost:     450,
		Seed:          42,
		Platform:      goldenPlatform(),
	}
	points, err := RunFigure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]figure3Golden, len(points))
	for i, p := range points {
		out[i] = figure3Golden{
			OccupancyMB: strconv.FormatFloat(p.OccupancyMB, 'g', -1, 64),
			TimeRatio:   strconv.FormatFloat(p.TimeRatio, 'g', -1, 64),
			FaultRatio:  strconv.FormatFloat(p.FaultRatio, 'g', -1, 64),
			InFaults:    p.InsideFaults,
			OutFaults:   p.OutsideFaults,
		}
	}
	return out
}

func goldenPath() string { return filepath.Join("testdata", "golden_metrics.json") }

func TestGoldenDeterminism(t *testing.T) {
	got := golden{
		MatchResident: runGoldenMatch(t, 1<<20), // 1 MB: EPC-resident
		MatchSwapping: runGoldenMatch(t, 6<<20), // 6 MB: swap-bound
		Figure3:       runGoldenFigure3(t),
	}

	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded golden metrics: %s", raw)
		return
	}

	raw, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("golden file missing (record with GOLDEN_UPDATE=1): %v", err)
	}
	var want golden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if got.MatchResident != want.MatchResident {
		t.Errorf("resident match metrics drifted:\n got %+v\nwant %+v", got.MatchResident, want.MatchResident)
	}
	if got.MatchSwapping != want.MatchSwapping {
		t.Errorf("swapping match metrics drifted:\n got %+v\nwant %+v", got.MatchSwapping, want.MatchSwapping)
	}
	if len(got.Figure3) != len(want.Figure3) {
		t.Fatalf("figure3 points = %d, want %d", len(got.Figure3), len(want.Figure3))
	}
	for i := range want.Figure3 {
		if got.Figure3[i] != want.Figure3[i] {
			t.Errorf("figure3[%s] drifted:\n got %+v\nwant %+v",
				want.Figure3[i].OccupancyMB, got.Figure3[i], want.Figure3[i])
		}
	}
}

// TestGoldenRunToRun guards the premise of the golden file: the same seed
// must produce identical metrics on two runs within one process.
func TestGoldenRunToRun(t *testing.T) {
	a := runGoldenMatch(t, 1<<20)
	b := runGoldenMatch(t, 1<<20)
	if a != b {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a, b)
	}
}
