package scbr

import (
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

// IndexConfig wires a containment index to the simulated memory hierarchy.
// With a nil Memory the index runs unaccounted (plain data structure).
type IndexConfig struct {
	// Mem is the accounting view the index's traversals are charged to:
	// an enclave view for the in-enclave broker, an untrusted view for the
	// baseline.
	Mem *enclave.Memory
	// Arena hands out the simulated addresses of index nodes. Required
	// when Mem is set.
	Arena *enclave.Arena
	// PayloadBytes is stored per subscription beyond the filter itself
	// (routing state, client handle, queue pointers). It controls how much
	// memory occupancy each registration adds, which is the x-axis of
	// Figure 3.
	PayloadBytes int
	// CheckCost is the pure-CPU cost of one covering/matching comparison,
	// charged symmetrically in and out of enclaves.
	CheckCost sim.Cycles
}

// node is one resident subscription in the containment forest. Parents
// cover their children: every event matching a child also matches the
// parent, so a failed parent check prunes the whole subtree. Filters
// equivalent to the node's (mutual covering) are stored in its bucket
// rather than as a degenerate chain — the classic pub/sub optimisation for
// popular identical filters.
type node struct {
	sub      Subscription
	children []*node
	bucket   []dupEntry
	addr     uint64
	hdrBytes int
	payBytes int
}

// dupEntry is one equivalent filter sharing a node.
type dupEntry struct {
	id   uint64
	addr uint64
}

// Index is SCBR's containment-forest subscription store. It is not safe
// for concurrent use; the broker serialises access the way the enclave's
// single matching thread does.
type Index struct {
	cfg   IndexConfig
	root  node // sentinel; its children are the forest roots
	count int
	bytes int64

	// traversal statistics for the harness
	checks uint64

	// sp is the open accounting span of the operation in progress: every
	// node probe and record write of one Insert/Match/Remove accumulates
	// into it and commits once when the operation ends.
	sp *enclave.Span

	// lastMatchLen sizes the next Match's result slice: successive matches
	// deliver similar fan-outs, so a right-sized single allocation replaces
	// a doubling growth chain of garbage per call.
	lastMatchLen int
}

// NewIndex builds an index with the given accounting configuration.
func NewIndex(cfg IndexConfig) *Index {
	return &Index{cfg: cfg}
}

// Count returns the number of stored subscriptions.
func (ix *Index) Count() int { return ix.count }

// MemoryBytes returns the simulated occupancy of the subscription store —
// the x-axis of Figure 3.
func (ix *Index) MemoryBytes() int64 { return ix.bytes }

// Checks returns the cumulative number of cover/match comparisons.
func (ix *Index) Checks() uint64 { return ix.checks }

// begin opens the accounting span of one index operation; the returned
// func commits it. With no memory view attached both are no-ops.
func (ix *Index) begin() func() {
	if ix.cfg.Mem == nil {
		return func() {}
	}
	ix.sp = ix.cfg.Mem.BeginSpan()
	return func() {
		ix.sp.End()
		ix.sp = nil
	}
}

// touchFilter charges one comparison against a node: read its header and
// predicate records, pay the comparison CPU cost.
func (ix *Index) touchFilter(n *node) {
	ix.checks++
	if ix.sp != nil {
		ix.sp.AccessCPU(n.addr, n.hdrBytes, false, ix.cfg.CheckCost)
	}
}

// newNode allocates the storage of a subscription.
func (ix *Index) newNode(s Subscription) *node {
	n := &node{
		sub:      s,
		hdrBytes: s.StorageBytes(),
		payBytes: ix.cfg.PayloadBytes,
	}
	total := n.hdrBytes + n.payBytes
	if ix.cfg.Arena != nil {
		n.addr = ix.cfg.Arena.Alloc(total)
	}
	return n
}

// Insert registers a subscription: descend the forest to the most specific
// covering filter, attach below it (or join its equivalence bucket), and
// re-parent any of its siblings the new filter covers. This is the
// "registration" operation measured in Figure 3.
func (ix *Index) Insert(s Subscription) {
	defer ix.begin()()
	cur := &ix.root
	for {
		var next *node
		for _, ch := range cur.children {
			ix.touchFilter(ch)
			if ch.sub.Covers(s) {
				if s.Covers(ch.sub) {
					// Equivalent filter: join the bucket.
					ix.addDup(ch, s)
					return
				}
				next = ch
				break
			}
		}
		if next == nil {
			break
		}
		cur = next
	}
	n := ix.newNode(s)

	// Re-parent children of cur that the new subscription covers.
	var keep, moved []*node
	for _, ch := range cur.children {
		ix.touchFilter(ch)
		if s.Covers(ch.sub) {
			moved = append(moved, ch)
		} else {
			keep = append(keep, ch)
		}
	}
	n.children = moved
	cur.children = append(keep, n)

	// Write the node: header plus payload (routing state).
	if ix.sp != nil {
		ix.sp.Access(n.addr, n.hdrBytes+n.payBytes, true)
	}
	ix.count++
	ix.bytes += int64(n.hdrBytes + n.payBytes)
}

// Match returns the IDs of all subscriptions matching e, pruning subtrees
// whose covering ancestors fail. The result order is deterministic
// (pre-order traversal).
func (ix *Index) Match(e Event) []uint64 {
	defer ix.begin()()
	out := make([]uint64, 0, ix.lastMatchLen+16)
	ix.matchFrom(&ix.root, viewOf(e), &out)
	ix.lastMatchLen = len(out)
	return out
}

func (ix *Index) matchFrom(cur *node, ev eventView, out *[]uint64) {
	for _, ch := range cur.children {
		ix.touchFilter(ch)
		if !ch.sub.matchesView(ev) {
			// Children are covered by ch: nothing below can match.
			continue
		}
		*out = append(*out, ch.sub.ID)
		ix.deliverBucket(ch, out)
		ix.matchFrom(ch, ev, out)
	}
}

// deliverBucket appends all equivalent filters of a matched node, touching
// every entry's routing record within the operation's span.
func (ix *Index) deliverBucket(n *node, out *[]uint64) {
	for _, d := range n.bucket {
		if ix.sp != nil {
			ix.sp.Access(d.addr, 16, false)
		}
		*out = append(*out, d.id)
	}
}

// addDup stores an equivalent filter in a node's bucket, allocating and
// writing its routing record.
func (ix *Index) addDup(n *node, s Subscription) {
	d := dupEntry{id: s.ID}
	size := 16 + ix.cfg.PayloadBytes
	if ix.cfg.Arena != nil {
		d.addr = ix.cfg.Arena.Alloc(size)
	}
	if ix.sp != nil {
		ix.sp.Access(d.addr, size, true)
	}
	n.bucket = append(n.bucket, d)
	ix.count++
	ix.bytes += int64(size)
}

// MatchSnapshot is the concurrent read path of Match: it matches e against
// the index, charging the traversal to a read-only snapshot accounting span
// that probes — but never mutates — the memory model's cache and residency
// state. It touches no Index fields other than the (frozen) forest, so any
// number of MatchSnapshot calls may run concurrently as long as mutators
// (Insert/Remove/Match) are excluded, e.g. by the read side of an RWMutex.
// Because nothing mutates, every interleaving charges identical totals —
// the determinism guarantee the sharded broker builds on.
//
// It returns the matched IDs (pre-order, as Match) and the number of
// cover/match comparisons performed, which the caller accumulates (the
// shared checks counter cannot be written lock-free).
func (ix *Index) MatchSnapshot(e Event) (ids []uint64, checks uint64) {
	var sp *enclave.Span
	if ix.cfg.Mem != nil {
		sp = ix.cfg.Mem.BeginSnapshotSpan()
		defer sp.End()
	}
	out := make([]uint64, 0, 16)
	ev := viewOf(e)
	var walk func(cur *node)
	walk = func(cur *node) {
		for _, ch := range cur.children {
			checks++
			if sp != nil {
				sp.AccessCPU(ch.addr, ch.hdrBytes, false, ix.cfg.CheckCost)
			}
			if !ch.sub.matchesView(ev) {
				continue
			}
			out = append(out, ch.sub.ID)
			for _, d := range ch.bucket {
				if sp != nil {
					sp.Access(d.addr, 16, false)
				}
				out = append(out, d.id)
			}
			walk(ch)
		}
	}
	walk(&ix.root)
	return out, checks
}

// MatchNaive checks every stored subscription without pruning — the
// reference matcher used by tests and the comparison baseline for the
// containment ablation.
func (ix *Index) MatchNaive(e Event) []uint64 {
	defer ix.begin()()
	ev := viewOf(e)
	var out []uint64
	var walk func(*node)
	walk = func(cur *node) {
		for _, ch := range cur.children {
			ix.touchFilter(ch)
			if ch.sub.matchesView(ev) {
				out = append(out, ch.sub.ID)
				ix.deliverBucket(ch, &out)
			}
			walk(ch)
		}
	}
	walk(&ix.root)
	return out
}

// Remove unregisters a subscription by ID. Children of a removed node are
// re-attached to its parent, preserving the covering invariant (a parent
// covers everything below it, transitively). It reports whether the ID
// was present.
func (ix *Index) Remove(id uint64) bool {
	defer ix.begin()()
	return ix.removeFrom(&ix.root, id)
}

func (ix *Index) removeFrom(cur *node, id uint64) bool {
	for i, ch := range cur.children {
		ix.touchFilter(ch)
		if ch.sub.ID == id {
			if len(ch.bucket) > 0 {
				// Equivalent filters share the node: promote the first
				// bucket member to own it; structure is unchanged.
				ch.sub.ID = ch.bucket[0].id
				ch.bucket = ch.bucket[1:]
			} else {
				// Splice the node out; its children keep a covering
				// ancestor (cur covers ch covers them).
				cur.children = append(cur.children[:i], cur.children[i+1:]...)
				cur.children = append(cur.children, ch.children...)
			}
			ix.count--
			ix.bytes -= int64(ch.hdrBytes + ch.payBytes)
			return true
		}
		// Check the bucket for the ID.
		for j, d := range ch.bucket {
			if d.id == id {
				ch.bucket = append(ch.bucket[:j], ch.bucket[j+1:]...)
				ix.count--
				ix.bytes -= int64(16 + ix.cfg.PayloadBytes)
				return true
			}
		}
		if ix.removeFrom(ch, id) {
			return true
		}
	}
	return false
}

// Depth returns the maximum depth of the forest (test/diagnostic hook).
func (ix *Index) Depth() int {
	var depth func(*node) int
	depth = func(cur *node) int {
		best := 0
		for _, ch := range cur.children {
			if d := depth(ch); d > best {
				best = d
			}
		}
		return best + 1
	}
	return depth(&ix.root) - 1
}

// RootFanout returns the number of forest roots (diagnostic hook).
func (ix *Index) RootFanout() int { return len(ix.root.children) }
