package scbr

import (
	"sort"
	"testing"

	"securecloud/internal/enclave"
)

func plainIndex() *Index { return NewIndex(IndexConfig{}) }

func TestInsertBuildsHierarchy(t *testing.T) {
	ix := plainIndex()
	wide, _ := NewSubscription(1, map[string]Interval{"a": iv(0, 100)})
	mid, _ := NewSubscription(2, map[string]Interval{"a": iv(10, 50)})
	narrow, _ := NewSubscription(3, map[string]Interval{"a": iv(20, 30)})
	ix.Insert(wide)
	ix.Insert(mid)
	ix.Insert(narrow)
	if ix.RootFanout() != 1 {
		t.Fatalf("RootFanout = %d, want 1 (everything under the widest filter)", ix.RootFanout())
	}
	if ix.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", ix.Depth())
	}
	if ix.Count() != 3 {
		t.Fatalf("Count = %d", ix.Count())
	}
}

func TestInsertReparentsOnGeneralArrival(t *testing.T) {
	// Insert specifics first, then a general filter that covers them: the
	// general one must adopt them.
	ix := plainIndex()
	n1, _ := NewSubscription(1, map[string]Interval{"a": iv(10, 20)})
	n2, _ := NewSubscription(2, map[string]Interval{"a": iv(30, 40)})
	ix.Insert(n1)
	ix.Insert(n2)
	if ix.RootFanout() != 2 {
		t.Fatalf("RootFanout = %d, want 2 before re-parenting", ix.RootFanout())
	}
	wide, _ := NewSubscription(3, map[string]Interval{"a": iv(0, 100)})
	ix.Insert(wide)
	if ix.RootFanout() != 1 {
		t.Fatalf("RootFanout = %d, want 1 after the general filter adopts both", ix.RootFanout())
	}
	if ix.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", ix.Depth())
	}
}

func TestEquivalentFiltersBucket(t *testing.T) {
	ix := plainIndex()
	for i := uint64(1); i <= 10; i++ {
		s, _ := NewSubscription(i, map[string]Interval{"a": iv(0, 10)})
		ix.Insert(s)
	}
	if ix.RootFanout() != 1 {
		t.Fatalf("RootFanout = %d, want 1 (equivalents bucketed)", ix.RootFanout())
	}
	if ix.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1 (no chains of equivalent filters)", ix.Depth())
	}
	if ix.Count() != 10 {
		t.Fatalf("Count = %d, want 10", ix.Count())
	}
	got := ix.Match(Event{Attrs: map[string]float64{"a": 5}})
	if len(got) != 10 {
		t.Fatalf("matched %d of 10 equivalent filters", len(got))
	}
}

func TestMatchPrunesNonMatchingSubtrees(t *testing.T) {
	ix := plainIndex()
	wide, _ := NewSubscription(1, map[string]Interval{"a": iv(0, 100)})
	inner, _ := NewSubscription(2, map[string]Interval{"a": iv(10, 20)})
	other, _ := NewSubscription(3, map[string]Interval{"a": iv(200, 300)})
	otherInner, _ := NewSubscription(4, map[string]Interval{"a": iv(210, 220)})
	for _, s := range []Subscription{wide, inner, other, otherInner} {
		ix.Insert(s)
	}
	checksBefore := ix.Checks()
	got := ix.Match(Event{Attrs: map[string]float64{"a": 15}})
	spent := ix.Checks() - checksBefore
	if len(got) != 2 {
		t.Fatalf("matched %v, want filters 1 and 2", got)
	}
	// Pruning: the failed root (200..300) is checked once, its child never.
	if spent != 3 {
		t.Fatalf("match used %d checks, want 3 (wide, inner, other-pruned)", spent)
	}
}

// TestMatchEquivalentToNaive cross-validates the pruning matcher against
// the exhaustive one over the synthetic workload.
func TestMatchEquivalentToNaive(t *testing.T) {
	ix := plainIndex()
	w := NewWorkload(DefaultWorkload(7))
	for i := 0; i < 3000; i++ {
		ix.Insert(w.NextSubscription())
	}
	for i := 0; i < 200; i++ {
		e := w.NextEvent()
		a := append([]uint64(nil), ix.Match(e)...)
		b := append([]uint64(nil), ix.MatchNaive(e)...)
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		if len(a) != len(b) {
			t.Fatalf("event %d: pruning matcher found %d, naive %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("event %d: result sets differ at %d", i, j)
			}
		}
	}
}

func TestContainmentIndexCheaperThanNaive(t *testing.T) {
	// The paper: "a reduced number of comparisons is required whenever a
	// message must be matched" — the containment ablation.
	ix := plainIndex()
	w := NewWorkload(DefaultWorkload(11))
	for i := 0; i < 5000; i++ {
		ix.Insert(w.NextSubscription())
	}
	e := w.NextEvent()
	base := ix.Checks()
	ix.Match(e)
	pruned := ix.Checks() - base
	base = ix.Checks()
	ix.MatchNaive(e)
	naive := ix.Checks() - base
	if pruned*2 >= naive {
		t.Fatalf("containment matcher used %d checks vs naive %d — expected >2x reduction", pruned, naive)
	}
}

func TestMemoryAccountingGrows(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	mem := p.UntrustedMemory()
	base := p.AllocUntrusted(32 << 20)
	arena := enclave.NewArena(mem, base, 32<<20)
	ix := NewIndex(IndexConfig{Mem: mem, Arena: arena, PayloadBytes: 512, CheckCost: 60})
	w := NewWorkload(DefaultWorkload(3))
	for i := 0; i < 500; i++ {
		ix.Insert(w.NextSubscription())
	}
	if ix.MemoryBytes() < 500*512 {
		t.Fatalf("MemoryBytes = %d, want at least payload volume", ix.MemoryBytes())
	}
	if mem.Cycles() == 0 {
		t.Fatal("no cycles charged for accounted index")
	}
	if mem.Breakdown()[enclave.CauseCPU] == 0 {
		t.Fatal("no CPU cost charged for comparisons")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a := NewWorkload(DefaultWorkload(5))
	b := NewWorkload(DefaultWorkload(5))
	for i := 0; i < 100; i++ {
		sa, sb := a.NextSubscription(), b.NextSubscription()
		if len(sa.Preds) != len(sb.Preds) {
			t.Fatal("same seed diverged")
		}
		for j := range sa.Preds {
			if sa.Preds[j] != sb.Preds[j] {
				t.Fatal("same seed diverged in predicates")
			}
		}
	}
}

func TestWorkloadProducesCoveringStructure(t *testing.T) {
	ix := plainIndex()
	w := NewWorkload(DefaultWorkload(9))
	for i := 0; i < 2000; i++ {
		ix.Insert(w.NextSubscription())
	}
	if ix.Depth() < 2 {
		t.Fatalf("workload built a flat forest (depth %d); containment structure missing", ix.Depth())
	}
	if ix.RootFanout() > DefaultWorkload(9).Branches[0] {
		t.Fatalf("RootFanout %d exceeds hierarchy branch factor", ix.RootFanout())
	}
}

func TestWorkloadEventsMatchSomething(t *testing.T) {
	ix := plainIndex()
	w := NewWorkload(DefaultWorkload(13))
	for i := 0; i < 2000; i++ {
		ix.Insert(w.NextSubscription())
	}
	matched := 0
	for i := 0; i < 300; i++ {
		if len(ix.Match(w.NextEvent())) > 0 {
			matched++
		}
	}
	// Deep, specific filters mean most events match nothing — as in real
	// CBR deployments — but popular (Zipf-head) paths must be covered.
	if matched < 15 {
		t.Fatalf("only %d/300 events matched anything; workload mismatch", matched)
	}
}

func TestRemoveLeaf(t *testing.T) {
	ix := plainIndex()
	wide, _ := NewSubscription(1, map[string]Interval{"a": iv(0, 100)})
	narrow, _ := NewSubscription(2, map[string]Interval{"a": iv(10, 20)})
	ix.Insert(wide)
	ix.Insert(narrow)
	if !ix.Remove(2) {
		t.Fatal("Remove missed existing ID")
	}
	if ix.Count() != 1 {
		t.Fatalf("Count = %d", ix.Count())
	}
	got := ix.Match(Event{Attrs: map[string]float64{"a": 15}})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after removal Match = %v", got)
	}
	if ix.Remove(2) {
		t.Fatal("double remove reported true")
	}
}

func TestRemoveInteriorLiftsChildren(t *testing.T) {
	ix := plainIndex()
	wide, _ := NewSubscription(1, map[string]Interval{"a": iv(0, 100)})
	mid, _ := NewSubscription(2, map[string]Interval{"a": iv(10, 50)})
	narrow, _ := NewSubscription(3, map[string]Interval{"a": iv(20, 30)})
	ix.Insert(wide)
	ix.Insert(mid)
	ix.Insert(narrow)
	if !ix.Remove(2) {
		t.Fatal("Remove missed interior node")
	}
	// The narrow filter must still be reachable under the wide one.
	got := ix.Match(Event{Attrs: map[string]float64{"a": 25}})
	if len(got) != 2 {
		t.Fatalf("Match after interior removal = %v", got)
	}
	if ix.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2 (child lifted)", ix.Depth())
	}
}

func TestRemoveFromBucket(t *testing.T) {
	ix := plainIndex()
	for i := uint64(1); i <= 3; i++ {
		s, _ := NewSubscription(i, map[string]Interval{"a": iv(0, 10)})
		ix.Insert(s)
	}
	// Remove the node owner (ID 1): a bucket member takes over.
	if !ix.Remove(1) {
		t.Fatal("Remove missed node owner")
	}
	got := ix.Match(Event{Attrs: map[string]float64{"a": 5}})
	if len(got) != 2 {
		t.Fatalf("Match = %v, want 2 survivors", got)
	}
	for _, id := range got {
		if id == 1 {
			t.Fatal("removed ID still delivered")
		}
	}
	// Remove a bucket member directly.
	if !ix.Remove(3) {
		t.Fatal("Remove missed bucket member")
	}
	if got := ix.Match(Event{Attrs: map[string]float64{"a": 5}}); len(got) != 1 {
		t.Fatalf("Match = %v, want 1 survivor", got)
	}
}

func TestRemoveMatchesNaiveAfterChurn(t *testing.T) {
	ix := plainIndex()
	w := NewWorkload(DefaultWorkload(21))
	var ids []uint64
	for i := 0; i < 1500; i++ {
		s := w.NextSubscription()
		ids = append(ids, s.ID)
		ix.Insert(s)
	}
	// Remove every third subscription.
	for i := 0; i < len(ids); i += 3 {
		if !ix.Remove(ids[i]) {
			t.Fatalf("Remove(%d) missed", ids[i])
		}
	}
	for i := 0; i < 50; i++ {
		e := w.NextEvent()
		a := append([]uint64(nil), ix.Match(e)...)
		b := append([]uint64(nil), ix.MatchNaive(e)...)
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		if len(a) != len(b) {
			t.Fatalf("event %d: pruned %d vs naive %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("result sets diverged after churn")
			}
		}
		for _, id := range a {
			if id%3 == 1 { // ids start at 1; removed ids are 1,4,7,...
				t.Fatalf("removed subscription %d still matched", id)
			}
		}
	}
}

func TestFigure3SmokeTest(t *testing.T) {
	// A miniature sweep on a shrunken platform: verifies the ratio rises
	// once the database exceeds the EPC.
	cfg := Figure3Config{
		OccupanciesMB: []float64{1, 8},
		MeasureOps:    300,
		PayloadBytes:  1024,
		CheckCost:     60,
		Seed:          42,
		Platform: enclave.Config{
			EPCBytes:         4 << 20,
			EPCReservedBytes: 1 << 20,
			LLCBytes:         256 << 10,
		},
	}
	points, err := RunFigure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	small, big := points[0], points[1]
	if big.TimeRatio <= small.TimeRatio {
		t.Fatalf("time ratio did not rise past EPC: %.2f -> %.2f", small.TimeRatio, big.TimeRatio)
	}
	if big.TimeRatio < 2 {
		t.Fatalf("beyond-EPC ratio %.2f implausibly low", big.TimeRatio)
	}
	if big.InsideFaults <= small.InsideFaults {
		t.Fatalf("inside faults did not rise: %d -> %d", small.InsideFaults, big.InsideFaults)
	}
}
