package scbr

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func mustEventBinary(t testing.TB, e Event) []byte {
	t.Helper()
	raw, err := appendEventBinary(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func mustSubBinary(t testing.TB, s Subscription) []byte {
	t.Helper()
	raw, err := appendSubscriptionBinary(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestCodecEventRoundtrip(t *testing.T) {
	w := NewWorkload(DefaultWorkload(11))
	for i := 0; i < 50; i++ {
		e := w.NextEvent()
		raw := mustEventBinary(t, e)
		got, err := decodeEventBinary(raw)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got.Attrs, e.Attrs) || string(got.Payload) != string(e.Payload) {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, e)
		}
	}
}

func TestCodecEventDeterministic(t *testing.T) {
	e := Event{Attrs: map[string]float64{"b": 2, "a": 1, "c": 3}, Payload: []byte("p")}
	a := mustEventBinary(t, e)
	for i := 0; i < 10; i++ {
		if string(mustEventBinary(t, e)) != string(a) {
			t.Fatal("equal events encoded to different bytes")
		}
	}
}

func TestCodecSubscriptionRoundtrip(t *testing.T) {
	w := NewWorkload(DefaultWorkload(12))
	for i := 0; i < 50; i++ {
		s := w.NextSubscription()
		raw := mustSubBinary(t, s)
		got, err := decodeSubscriptionBinary(raw)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.ID != s.ID || !reflect.DeepEqual(got.Preds, s.Preds) {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, s)
		}
	}
}

// TestCodecHandlesInfinities: the binary form carries ±Inf bounds (e.g.
// FullRange predicates) that encoding/json rejects outright.
func TestCodecHandlesInfinities(t *testing.T) {
	s := Subscription{ID: 7, Preds: []Predicate{{Attr: "any", Interval: FullRange()}}}
	got, err := decodeSubscriptionBinary(mustSubBinary(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Preds[0].Interval.Lo, -1) || !math.IsInf(got.Preds[0].Interval.Hi, 1) {
		t.Fatalf("infinite bounds lost: %+v", got.Preds[0].Interval)
	}
	if _, err := json.Marshal(s); err == nil {
		t.Log("note: json now accepts Inf?") // documents why binary matters here
	}
}

// TestCodecJSONFallback: the sniffing decoders accept both wire forms, so
// legacy JSON clients and binary clients share one broker.
func TestCodecJSONFallback(t *testing.T) {
	e := Event{Attrs: map[string]float64{"a": 1.5}, Payload: []byte("x")}
	rawJSON, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := decodeEvent(rawJSON)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := decodeEvent(mustEventBinary(t, e))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON.Attrs, fromBin.Attrs) {
		t.Fatalf("wire forms decoded differently: %+v vs %+v", fromJSON, fromBin)
	}
	s := Subscription{ID: 3, Preds: []Predicate{{Attr: "a", Interval: Interval{Lo: 0, Hi: 2}}}}
	rawJSON, _ = json.Marshal(s)
	sj, err := decodeSubscription(rawJSON)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := decodeSubscription(mustSubBinary(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sj, sb) {
		t.Fatalf("wire forms decoded differently: %+v vs %+v", sj, sb)
	}
}

func TestCodecTruncatedFrames(t *testing.T) {
	e := Event{Attrs: map[string]float64{"alpha": 1}, Payload: []byte("payload")}
	raw := mustEventBinary(t, e)
	for cut := 1; cut < len(raw); cut++ {
		if _, err := decodeEventBinary(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	s := Subscription{ID: 1, Preds: []Predicate{{Attr: "alpha", Interval: Interval{Lo: 0, Hi: 1}}}}
	rawS := mustSubBinary(t, s)
	for cut := 1; cut < len(rawS); cut++ {
		if _, err := decodeSubscriptionBinary(rawS[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// FuzzDecodeEvent guards the binary decoder against panics on malformed
// frames (out-of-range lengths, truncations).
func FuzzDecodeEvent(f *testing.F) {
	f.Add(mustEventBinary(f, Event{Attrs: map[string]float64{"a": 1}, Payload: []byte("x")}))
	f.Add([]byte{binMagic, binKindEvent, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte(`{"attrs":{"a":1}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		_, _ = decodeEvent(raw)
		_, _ = decodeSubscription(raw)
	})
}

// TestCodecRejectsOversizeFields: lengths that would wrap the frame's
// prefixes are rejected at encode time instead of emitting corrupt frames.
func TestCodecRejectsOversizeFields(t *testing.T) {
	huge := string(make([]byte, 70000))
	if _, err := appendEventBinary(nil, Event{Attrs: map[string]float64{huge: 1}}); err == nil {
		t.Fatal("oversize attribute name encoded without error")
	}
	s := Subscription{ID: 1, Preds: []Predicate{{Attr: huge, Interval: Interval{Lo: 0, Hi: 1}}}}
	if _, err := appendSubscriptionBinary(nil, s); err == nil {
		t.Fatal("oversize predicate attribute encoded without error")
	}
}

// TestCodecRejectsTrailingGarbage: byte-distinct frames must not decode to
// equal values.
func TestCodecRejectsTrailingGarbage(t *testing.T) {
	eRaw := mustEventBinary(t, Event{Attrs: map[string]float64{"a": 1}, Payload: []byte("p")})
	if _, err := decodeEventBinary(append(eRaw, 0x00)); err == nil {
		t.Fatal("event frame with trailing byte accepted")
	}
	sRaw := mustSubBinary(t, Subscription{ID: 1, Preds: []Predicate{{Attr: "a", Interval: Interval{Lo: 0, Hi: 1}}}})
	if _, err := decodeSubscriptionBinary(append(sRaw, 0x00)); err == nil {
		t.Fatal("subscription frame with trailing byte accepted")
	}
}
