package scbr

import (
	"testing"

	"securecloud/internal/cryptbox"
)

func BenchmarkInsertUnaccounted(b *testing.B) {
	ix := NewIndex(IndexConfig{})
	w := NewWorkload(DefaultWorkload(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(w.NextSubscription())
	}
}

func BenchmarkMatch10k(b *testing.B) {
	ix := NewIndex(IndexConfig{})
	w := NewWorkload(DefaultWorkload(2))
	for i := 0; i < 10000; i++ {
		ix.Insert(w.NextSubscription())
	}
	events := make([]Event, 256)
	for i := range events {
		events[i] = w.NextEvent()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Match(events[i%len(events)])
	}
}

func BenchmarkCovers(b *testing.B) {
	w := NewWorkload(DefaultWorkload(3))
	s1, s2 := w.NextSubscription(), w.NextSubscription()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1.Covers(s2)
	}
}

func BenchmarkSealPublication(b *testing.B) {
	w := NewWorkload(DefaultWorkload(4))
	e := w.NextEvent()
	var key cryptbox.Key
	key[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SealPublication(key, "client", e); err != nil {
			b.Fatal(err)
		}
	}
}
