package scbr

import (
	"math"
	"sync/atomic"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

func BenchmarkInsertUnaccounted(b *testing.B) {
	ix := NewIndex(IndexConfig{})
	w := NewWorkload(DefaultWorkload(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(w.NextSubscription())
	}
}

func BenchmarkMatch10k(b *testing.B) {
	ix := NewIndex(IndexConfig{})
	w := NewWorkload(DefaultWorkload(2))
	for i := 0; i < 10000; i++ {
		ix.Insert(w.NextSubscription())
	}
	events := make([]Event, 256)
	for i := range events {
		events[i] = w.NextEvent()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Match(events[i%len(events)])
	}
}

func BenchmarkCovers(b *testing.B) {
	w := NewWorkload(DefaultWorkload(3))
	s1, s2 := w.NextSubscription(), w.NextSubscription()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1.Covers(s2)
	}
}

// BenchmarkBrokerPublishParallel is the multi-publisher throughput
// benchmark of the sharded broker: pre-sealed publications from several
// publishers drive the full publish→match→deliver pipeline concurrently
// (run with -cpu 1,4 to see core scaling).
//
// The simulated metrics are measured in a deterministic sequential pass
// before the timed loop: with the subscription store frozen, every match
// runs against a read-only snapshot, so per-op sim-cycles and faults are a
// pure function of the workload — bit-identical at every -cpu setting.
// sim-speedup is the simulator's own scaling statement: the ratio of
// summed per-shard match cycles (serial execution) to the per-publish
// critical path (slowest shard), i.e. the speedup an ideal shard-per-core
// machine realises. Wall-clock ns/op additionally shows host scaling when
// real cores exist.
//
// The shard count is pinned (topology parameter) so figures are comparable
// across -cpu runs; only MatchWorkers follows GOMAXPROCS.
func BenchmarkBrokerPublishParallel(b *testing.B) {
	const (
		shards       = 4
		nSubs        = 20000
		nSubscribers = 8
		nPublishers  = 4
		nEvents      = 64
	)
	// Shrunken platform (4 MiB EPC per shard) so the store is swap-bound —
	// the regime where parallel matching matters most.
	platform := enclave.Config{
		EPCBytes:         4 << 20,
		EPCReservedBytes: 1 << 20,
		LLCBytes:         256 << 10,
		LLCWays:          8,
		LineSize:         64,
		PageSize:         4096,
	}
	p := enclave.NewPlatform(platform)
	var signer cryptbox.Digest
	enc, err := p.ECreate(2<<20, signer)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("scbr-bench")); err != nil {
		b.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		b.Fatal(err)
	}
	bk, err := NewBroker(enc, BrokerConfig{
		PayloadBytes: 600,
		CheckCost:    450,
		Shards:       shards,
		ShardBytes:   24 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}

	subscribers := make([]*Client, nSubscribers)
	for i := range subscribers {
		c, err := Connect(bk, "sub-"+itoa(i), nil, nil, attest.Policy{})
		if err != nil {
			b.Fatal(err)
		}
		subscribers[i] = c
	}
	w := NewWorkload(DefaultWorkload(42))
	for i := 0; i < nSubs; i++ {
		if _, err := subscribers[i%nSubscribers].Subscribe(bk, w.NextSubscription()); err != nil {
			b.Fatal(err)
		}
	}
	publishers := make([]*Client, nPublishers)
	for i := range publishers {
		c, err := Connect(bk, "pub-"+itoa(i), nil, nil, attest.Policy{})
		if err != nil {
			b.Fatal(err)
		}
		publishers[i] = c
	}
	events := make([]Event, nEvents)
	for i := range events {
		events[i] = w.NextEvent()
	}
	// Pre-seal the envelopes so the timed loop measures the broker
	// pipeline, not client-side encoding.
	envs := make([][]Envelope, nPublishers)
	for pi, c := range publishers {
		envs[pi] = make([]Envelope, nEvents)
		for i, e := range events {
			raw, err := appendEventBinary(nil, e)
			if err != nil {
				b.Fatal(err)
			}
			env, err := sealWith(c.box, c.ID, KindPublication, raw)
			if err != nil {
				b.Fatal(err)
			}
			envs[pi][i] = env
		}
	}

	// Deterministic accounting pass (see doc comment).
	six := bk.Index()
	six.ResetAccounting()
	var serial, critical uint64
	for i := 0; i < nEvents; i++ {
		before := six.ShardCycles()
		if _, err := bk.Publish(envs[0][i]); err != nil {
			b.Fatal(err)
		}
		after := six.ShardCycles()
		var sum, max uint64
		for s := range after {
			d := uint64(after[s] - before[s])
			sum += d
			if d > max {
				max = d
			}
		}
		serial += sum
		critical += max
	}
	faults := six.Faults()
	for _, c := range subscribers {
		bk.Drain(c.ID)
	}

	b.ResetTimer()
	var pubIdx atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		pi := int(pubIdx.Add(1)-1) % nPublishers
		i := 0
		for pb.Next() {
			if _, err := bk.Publish(envs[pi][i%nEvents]); err != nil {
				b.Error(err)
				return
			}
			i++
			// Keep queues bounded without a drain per publish.
			if i%64 == 0 {
				bk.Drain(subscribers[(i/64)%nSubscribers].ID)
			}
		}
	})
	b.StopTimer()
	for _, c := range subscribers {
		bk.Drain(c.ID)
	}
	// Reported after the timed loop: ResetTimer discards earlier metrics.
	b.ReportMetric(float64(serial)/nEvents, "sim-cycles/match")
	b.ReportMetric(float64(critical)/nEvents, "sim-critical-cycles/match")
	b.ReportMetric(float64(serial)/float64(critical), "sim-speedup")
	b.ReportMetric(float64(faults)/nEvents, "faults/match")
}

// BenchmarkBrokerDeliverySeal isolates the broker's delivery seal path:
// one publication matching many subscribers, so each Publish re-seals the
// plaintext once per recipient session and enqueues the batch. Run with
// -benchmem — the per-delivery allocation count is the profile-identified
// hot path the wire front end optimizes.
func BenchmarkBrokerDeliverySeal(b *testing.B) {
	const nSubscribers = 16
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	enc, err := p.ECreate(64<<20, signer)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("scbr-bench-seal")); err != nil {
		b.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		b.Fatal(err)
	}
	bk, err := NewBroker(enc, BrokerConfig{PayloadBytes: 600, CheckCost: 450, Shards: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Every subscriber registers the same broad filter so one event fans
	// out to all of them — the seal loop dominates.
	w := NewWorkload(DefaultWorkload(7))
	s := w.NextSubscription()
	subscribers := make([]*Client, nSubscribers)
	for i := range subscribers {
		c, err := Connect(bk, "seal-sub-"+itoa(i), nil, nil, attest.Policy{})
		if err != nil {
			b.Fatal(err)
		}
		subscribers[i] = c
		if _, err := c.Subscribe(bk, s); err != nil {
			b.Fatal(err)
		}
	}
	pub, err := Connect(bk, "seal-pub", nil, nil, attest.Policy{})
	if err != nil {
		b.Fatal(err)
	}
	// An event matching the shared subscription: publish it once to learn
	// the delivered count, then time the steady state.
	e := eventCovering(s)
	raw, err := appendEventBinary(nil, e)
	if err != nil {
		b.Fatal(err)
	}
	env, err := sealWith(pub.box, pub.ID, KindPublication, raw)
	if err != nil {
		b.Fatal(err)
	}
	n, err := bk.Publish(env)
	if err != nil {
		b.Fatal(err)
	}
	if n != nSubscribers {
		b.Fatalf("delivered %d, want %d", n, nSubscribers)
	}
	for _, c := range subscribers {
		bk.Drain(c.ID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bk.Publish(env); err != nil {
			b.Fatal(err)
		}
		if i%16 == 15 {
			b.StopTimer()
			for _, c := range subscribers {
				bk.Drain(c.ID)
			}
			b.StartTimer()
		}
	}
}

// eventCovering builds an event that satisfies every predicate of s, so a
// broker holding only s always matches it.
func eventCovering(s Subscription) Event {
	e := Event{Attrs: map[string]float64{}, Payload: []byte("bench-payload")}
	for _, p := range s.Preds {
		v := 0.0
		switch {
		case math.IsInf(p.Interval.Lo, -1) && math.IsInf(p.Interval.Hi, 1):
		case math.IsInf(p.Interval.Lo, -1):
			v = p.Interval.Hi
		case math.IsInf(p.Interval.Hi, 1):
			v = p.Interval.Lo
		default:
			v = (p.Interval.Lo + p.Interval.Hi) / 2
		}
		e.Attrs[p.Attr] = v
	}
	return e
}

func BenchmarkSealPublication(b *testing.B) {
	w := NewWorkload(DefaultWorkload(4))
	e := w.NextEvent()
	var key cryptbox.Key
	key[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SealPublication(key, "client", e); err != nil {
			b.Fatal(err)
		}
	}
}
