package scbr

import (
	"fmt"
	"io"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

// Figure3Point is one x-position of the paper's Figure 3: the in/out-of-
// enclave ratios of registration time and page faults at a given
// subscription-database memory occupancy.
type Figure3Point struct {
	// OccupancyMB is the subscription store size when measurement starts.
	OccupancyMB float64
	// TimeRatio is (cycles per registration inside) / (outside) — the
	// left axis of Figure 3.
	TimeRatio float64
	// FaultRatio is the page-fault ratio over the measurement window with
	// pre-touched memory outside (so the outside count is ~0 and the
	// ratio is dominated by EPC faults) — the right axis, which the paper
	// plots in units of 10^3.
	FaultRatio float64
	// InsideCyclesPerOp / OutsideCyclesPerOp are the absolute simulated
	// costs per registration.
	InsideCyclesPerOp  float64
	OutsideCyclesPerOp float64
	// InsideFaults / OutsideFaults over the measurement window.
	InsideFaults  uint64
	OutsideFaults uint64
}

// Figure3Config parameterises the sweep.
type Figure3Config struct {
	// OccupanciesMB lists the x-axis points. The paper sweeps 60–220 MB.
	OccupanciesMB []float64
	// MeasureOps is the number of registrations timed per point.
	MeasureOps int
	// PayloadBytes per subscription (controls how many filters reach a
	// given occupancy).
	PayloadBytes int
	// CheckCost is CPU per comparison.
	CheckCost sim.Cycles
	// Seed fixes the workload.
	Seed int64
	// Platform overrides the platform configuration (zero = SGX v1
	// defaults).
	Platform enclave.Config
	// Parallel runs up to this many occupancy points concurrently
	// (<=1 = sequential). Every point builds its own pair of platforms and
	// its own workload from Seed, so the sweep is embarrassingly parallel:
	// results are bit-identical to the sequential sweep at any setting.
	Parallel int
}

// DefaultFigure3Config reproduces the paper's sweep.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		OccupanciesMB: []float64{60, 80, 100, 120, 140, 160, 180, 200, 220},
		MeasureOps:    1500,
		PayloadBytes:  1200,
		// One containment comparison costs ~450 cycles of pure compute
		// (descriptor decode, per-attribute interval checks, branchy
		// traversal) — calibrated so that registration is compute-bound
		// while the database is EPC-resident, as the paper's near-1 ratio
		// below 90 MB implies.
		CheckCost: 450,
		Seed:      42,
	}
}

// runRegistration builds a subscription store of the target occupancy on
// the given memory view, then measures per-registration cost.
func runRegistration(mem *enclave.Memory, arena *enclave.Arena, cfg Figure3Config, targetBytes int64) (cyclesPerOp float64, faults uint64) {
	ix := NewIndex(IndexConfig{
		Mem:          mem,
		Arena:        arena,
		PayloadBytes: cfg.PayloadBytes,
		CheckCost:    cfg.CheckCost,
	})
	w := NewWorkload(DefaultWorkload(cfg.Seed))
	for ix.MemoryBytes() < targetBytes {
		ix.Insert(w.NextSubscription())
	}
	mem.ResetAccounting()
	start := mem.Cycles()
	for i := 0; i < cfg.MeasureOps; i++ {
		ix.Insert(w.NextSubscription())
	}
	cycles := mem.Cycles() - start
	return float64(cycles) / float64(cfg.MeasureOps), mem.Faults()
}

// runFigure3Point measures one occupancy point on a fresh pair of twin
// platforms. Points share no state, which is what makes the parallel sweep
// deterministic.
func runFigure3Point(cfg Figure3Config, mb float64) (Figure3Point, error) {
	target := int64(mb * float64(1<<20))
	// Headroom for the measured registrations on top of the build.
	arenaSize := uint64(target) + uint64(cfg.MeasureOps*(cfg.PayloadBytes+512)) + (8 << 20)

	// Inside: enclave sized to hold the database.
	pIn := enclave.NewPlatform(cfg.Platform)
	var signer cryptbox.Digest
	enc, err := pIn.ECreate(arenaSize+(1<<20), signer)
	if err != nil {
		return Figure3Point{}, err
	}
	if _, err := enc.EAdd([]byte("scbr-broker")); err != nil {
		return Figure3Point{}, err
	}
	if err := enc.EInit(); err != nil {
		return Figure3Point{}, err
	}
	arenaIn, err := enc.HeapArena()
	if err != nil {
		return Figure3Point{}, err
	}
	inCycles, inFaults := runRegistration(enc.Memory(), arenaIn, cfg, target)

	// Outside: same workload on a twin platform's untrusted memory.
	// The arena is pre-touched once, mirroring the enclave side where
	// EADD pre-loaded every page at build time — so the measured
	// fault counts compare steady states, not allocator warm-up.
	pOut := enclave.NewPlatform(cfg.Platform)
	memOut := pOut.UntrustedMemory()
	base := pOut.AllocUntrusted(arenaSize)
	pageSize := pOut.Config().PageSize
	nPages := int((arenaSize + pageSize - 1) / pageSize)
	memOut.AccessStride(base, pageSize, nPages, 1, true)
	arenaOut := enclave.NewArena(memOut, base, arenaSize)
	outCycles, outFaults := runRegistration(memOut, arenaOut, cfg, target)

	pt := Figure3Point{
		OccupancyMB:        mb,
		InsideCyclesPerOp:  inCycles,
		OutsideCyclesPerOp: outCycles,
		InsideFaults:       inFaults,
		OutsideFaults:      outFaults,
	}
	if outCycles > 0 {
		pt.TimeRatio = inCycles / outCycles
	}
	den := float64(outFaults)
	if den < 1 {
		den = 1
	}
	pt.FaultRatio = float64(inFaults) / den
	return pt, nil
}

// RunFigure3 executes the sweep and returns one point per occupancy. Each
// point runs the identical workload (same seed) twice: once against an
// enclave memory view, once against an untrusted view on a twin platform.
// With cfg.Parallel > 1 the independent points run across that many
// goroutines; the values are bit-identical to the sequential sweep, only
// the wall clock shrinks.
func RunFigure3(cfg Figure3Config) ([]Figure3Point, error) {
	if len(cfg.OccupanciesMB) == 0 {
		par := cfg.Parallel
		cfg = DefaultFigure3Config()
		cfg.Parallel = par
	}
	out := make([]Figure3Point, len(cfg.OccupanciesMB))
	var (
		mu   sync.Mutex
		errs error
	)
	sim.ParallelFor(len(cfg.OccupanciesMB), cfg.Parallel, func(i int) {
		pt, err := runFigure3Point(cfg, cfg.OccupanciesMB[i])
		if err != nil {
			mu.Lock()
			if errs == nil {
				errs = err
			}
			mu.Unlock()
			return
		}
		out[i] = pt
	})
	if errs != nil {
		return nil, errs
	}
	return out, nil
}

// WriteFigure3 renders the sweep as the table the paper's figure plots.
func WriteFigure3(w io.Writer, points []Figure3Point) {
	fmt.Fprintf(w, "# Figure 3 — Effect of memory swapping (SCBR registration)\n")
	fmt.Fprintf(w, "# EPC usable: see platform config; paper marks 128 MB line\n")
	fmt.Fprintf(w, "%-14s %-12s %-16s %-16s %-16s %-12s\n",
		"occupancy(MB)", "time-ratio", "fault-ratio", "in(cyc/op)", "out(cyc/op)", "in-faults")
	for _, p := range points {
		fmt.Fprintf(w, "%-14.0f %-12.2f %-16.1f %-16.0f %-16.0f %-12d\n",
			p.OccupancyMB, p.TimeRatio, p.FaultRatio, p.InsideCyclesPerOp, p.OutsideCyclesPerOp, p.InsideFaults)
	}
}
