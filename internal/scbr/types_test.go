package scbr

import (
	"testing"
	"testing/quick"

	"securecloud/internal/cryptbox"
)

func iv(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi} }

func sub(t *testing.T, id uint64, preds map[string]Interval) Subscription {
	t.Helper()
	s, err := NewSubscription(id, preds)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIntervalBasics(t *testing.T) {
	if !iv(1, 3).Contains(2) || iv(1, 3).Contains(4) || iv(1, 3).Contains(0.5) {
		t.Fatal("Contains wrong")
	}
	if !iv(1, 3).Contains(1) || !iv(1, 3).Contains(3) {
		t.Fatal("closed endpoints excluded")
	}
	if !iv(0, 10).Covers(iv(2, 5)) || iv(2, 5).Covers(iv(0, 10)) {
		t.Fatal("Covers wrong")
	}
	if !iv(2, 5).Covers(iv(2, 5)) {
		t.Fatal("Covers not reflexive")
	}
	if iv(3, 2).Valid() {
		t.Fatal("empty interval valid")
	}
	if !FullRange().Contains(1e300) || !FullRange().Contains(-1e300) {
		t.Fatal("FullRange not full")
	}
}

func TestNewSubscriptionValidation(t *testing.T) {
	if _, err := NewSubscription(1, nil); err == nil {
		t.Fatal("empty subscription accepted")
	}
	if _, err := NewSubscription(1, map[string]Interval{"a": iv(5, 2)}); err == nil {
		t.Fatal("empty interval accepted")
	}
}

func TestMatches(t *testing.T) {
	s := sub(t, 1, map[string]Interval{"temp": iv(20, 30), "load": iv(0, 100)})
	if !s.Matches(Event{Attrs: map[string]float64{"temp": 25, "load": 50}}) {
		t.Fatal("in-range event rejected")
	}
	if s.Matches(Event{Attrs: map[string]float64{"temp": 35, "load": 50}}) {
		t.Fatal("out-of-range event accepted")
	}
	if s.Matches(Event{Attrs: map[string]float64{"temp": 25}}) {
		t.Fatal("event missing constrained attribute accepted")
	}
	if !s.Matches(Event{Attrs: map[string]float64{"temp": 25, "load": 50, "extra": 1}}) {
		t.Fatal("unconstrained extra attribute rejected")
	}
}

func TestCoversSemantics(t *testing.T) {
	general := sub(t, 1, map[string]Interval{"temp": iv(0, 100)})
	specific := sub(t, 2, map[string]Interval{"temp": iv(20, 30)})
	moreAttrs := sub(t, 3, map[string]Interval{"temp": iv(20, 30), "load": iv(0, 10)})

	if !general.Covers(specific) {
		t.Fatal("wider interval does not cover narrower")
	}
	if specific.Covers(general) {
		t.Fatal("narrower covers wider")
	}
	if !specific.Covers(moreAttrs) {
		t.Fatal("fewer constraints do not cover more constraints")
	}
	if moreAttrs.Covers(specific) {
		t.Fatal("extra constraint covers fewer constraints")
	}
	if !general.Covers(general) {
		t.Fatal("Covers not reflexive")
	}
}

func TestCoversDisjointAttrs(t *testing.T) {
	a := sub(t, 1, map[string]Interval{"x": iv(0, 1)})
	b := sub(t, 2, map[string]Interval{"y": iv(0, 1)})
	if a.Covers(b) || b.Covers(a) {
		t.Fatal("filters on disjoint attributes cover each other")
	}
}

// TestPropCoversSoundness: if s1 covers s2, every event matching s2 must
// match s1 — the semantic definition of covering, checked on random data.
func TestPropCoversSoundness(t *testing.T) {
	f := func(lo1, w1, lo2, w2, ev byte) bool {
		s1, _ := NewSubscription(1, map[string]Interval{
			"a": iv(float64(lo1), float64(lo1)+float64(w1)),
		})
		s2, _ := NewSubscription(2, map[string]Interval{
			"a": iv(float64(lo2), float64(lo2)+float64(w2)),
		})
		e := Event{Attrs: map[string]float64{"a": float64(ev)}}
		if s1.Covers(s2) && s2.Matches(e) && !s1.Matches(e) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCoversTransitive checks transitivity on random nested intervals.
func TestPropCoversTransitive(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2 byte) bool {
		mk := func(lo, hi byte) Subscription {
			l, h := float64(lo), float64(hi)
			if h < l {
				l, h = h, l
			}
			s, _ := NewSubscription(1, map[string]Interval{"a": iv(l, h)})
			return s
		}
		x, y, z := mk(a1, a2), mk(b1, b2), mk(c1, c2)
		if x.Covers(y) && y.Covers(z) && !x.Covers(z) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	key := cryptbox.Key{1, 2, 3}
	s := sub(t, 7, map[string]Interval{"temp": iv(0, 10)})
	env, err := SealSubscription(key, "client-1", s)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := openEnvelope(key, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty envelope body")
	}
	if env.Kind != KindSubscription {
		t.Fatalf("kind = %q", env.Kind)
	}
}

func TestEnvelopeRejectsWrongKeyAndKindSwap(t *testing.T) {
	key := cryptbox.Key{1}
	other := cryptbox.Key{2}
	e := Event{Attrs: map[string]float64{"a": 1}}
	env, _ := SealPublication(key, "c", e)
	if _, err := openEnvelope(other, env); err == nil {
		t.Fatal("wrong key opened envelope")
	}
	// Re-labelling a publication as a subscription must fail (AAD binds
	// the kind).
	env.Kind = KindSubscription
	if _, err := openEnvelope(key, env); err == nil {
		t.Fatal("kind swap undetected")
	}
}

func TestDeliveryRoundTripAndTamper(t *testing.T) {
	key := cryptbox.Key{5}
	box, _ := cryptbox.NewBox(key)
	payload := []byte(`{"attrs":{"a":1},"payload":"eA=="}`)
	sealed, _ := box.Seal(payload, []byte("delivery|sub-1"))
	d := Delivery{SubscriberID: "sub-1", Sealed: sealed}
	e, err := OpenDelivery(key, d)
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs["a"] != 1 {
		t.Fatal("delivery decode wrong")
	}
	d.SubscriberID = "sub-2" // redirecting a delivery must break auth
	if _, err := OpenDelivery(key, d); err == nil {
		t.Fatal("redirected delivery accepted")
	}
}

func TestStorageBytesGrowsWithPredicates(t *testing.T) {
	small := sub(t, 1, map[string]Interval{"a": iv(0, 1)})
	big := sub(t, 2, map[string]Interval{"a": iv(0, 1), "b": iv(0, 1), "c": iv(0, 1)})
	if big.StorageBytes() <= small.StorageBytes() {
		t.Fatal("storage accounting ignores predicate count")
	}
}
