package scbr

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Hot-path envelope codec. Publications and subscriptions crossing the
// broker boundary thousands of times per second were JSON round-trips; the
// binary form below is a flat length-prefixed layout that encodes in one
// append pass and decodes without reflection. JSON remains the client-
// facing representation (SealPublication / SealSubscription and every
// test fixture): the decoder sniffs the first plaintext byte — binMagic
// cannot open a JSON document — so both wire forms interoperate on one
// broker, and deliveries echo whichever form the publisher used.
//
// Layout (little-endian):
//
//	event:        magic kindEvent u32 nattrs { u16 len, attr, f64 value }* u32 plen payload
//	subscription: magic kindSub   u64 id u32 npreds { u16 len, attr, f64 lo, f64 hi }*
//
// Event attributes are encoded in sorted attribute order, so equal events
// encode to equal bytes (deterministic fixtures and cacheable frames).
const (
	binMagic     = 0xB5
	binKindEvent = 0x01
	binKindSub   = 0x02
)

// errTruncated is returned for structurally short binary frames.
var errTruncated = fmt.Errorf("scbr: truncated binary frame")

// errOversize rejects fields that would wrap the frame's length prefixes —
// encoding them anyway would emit a silently corrupt frame.
var errOversize = fmt.Errorf("scbr: field exceeds binary frame limits")

// appendEventBinary appends the binary encoding of e to dst.
func appendEventBinary(dst []byte, e Event) ([]byte, error) {
	attrs := make([]string, 0, len(e.Attrs))
	for a := range e.Attrs {
		if len(a) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: attribute name %d bytes", errOversize, len(a))
		}
		attrs = append(attrs, a)
	}
	if uint64(len(e.Payload)) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: payload %d bytes", errOversize, len(e.Payload))
	}
	sort.Strings(attrs)
	dst = append(dst, binMagic, binKindEvent)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(attrs)))
	for _, a := range attrs {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(a)))
		dst = append(dst, a...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Attrs[a]))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Payload)))
	return append(dst, e.Payload...), nil
}

// appendSubscriptionBinary appends the binary encoding of s to dst.
func appendSubscriptionBinary(dst []byte, s Subscription) ([]byte, error) {
	dst = append(dst, binMagic, binKindSub)
	dst = binary.LittleEndian.AppendUint64(dst, s.ID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Preds)))
	for i := range s.Preds {
		p := &s.Preds[i]
		if len(p.Attr) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: attribute name %d bytes", errOversize, len(p.Attr))
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.Attr)))
		dst = append(dst, p.Attr...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Interval.Lo))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Interval.Hi))
	}
	return dst, nil
}

// binString reads one u16-length-prefixed string.
func binString(raw []byte, off int) (string, int, error) {
	if off+2 > len(raw) {
		return "", 0, errTruncated
	}
	n := int(binary.LittleEndian.Uint16(raw[off:]))
	off += 2
	if off+n > len(raw) {
		return "", 0, errTruncated
	}
	return string(raw[off : off+n]), off + n, nil
}

// decodeEventBinary decodes an appendEventBinary frame.
func decodeEventBinary(raw []byte) (Event, error) {
	if len(raw) < 6 || raw[0] != binMagic || raw[1] != binKindEvent {
		return Event{}, fmt.Errorf("scbr: not a binary event frame")
	}
	n := int(binary.LittleEndian.Uint32(raw[2:]))
	off := 6
	// Pre-size from the claimed count, clamped by what the frame could
	// physically hold (≥10 bytes per attribute) so a forged count cannot
	// force a huge allocation.
	hint := n
	if max := (len(raw) - off) / 10; hint > max {
		hint = max
	}
	e := Event{Attrs: make(map[string]float64, hint)}
	for i := 0; i < n; i++ {
		attr, next, err := binString(raw, off)
		if err != nil {
			return Event{}, err
		}
		off = next
		if off+8 > len(raw) {
			return Event{}, errTruncated
		}
		e.Attrs[attr] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
		off += 8
	}
	if off+4 > len(raw) {
		return Event{}, errTruncated
	}
	plen := int(binary.LittleEndian.Uint32(raw[off:]))
	off += 4
	if off+plen != len(raw) {
		// Short frames are truncated; longer ones carry trailing garbage —
		// either way two byte-distinct frames must not decode equal.
		return Event{}, errTruncated
	}
	if plen > 0 {
		e.Payload = append([]byte(nil), raw[off:off+plen]...)
	}
	return e, nil
}

// decodeSubscriptionBinary decodes an appendSubscriptionBinary frame.
func decodeSubscriptionBinary(raw []byte) (Subscription, error) {
	if len(raw) < 14 || raw[0] != binMagic || raw[1] != binKindSub {
		return Subscription{}, fmt.Errorf("scbr: not a binary subscription frame")
	}
	s := Subscription{ID: binary.LittleEndian.Uint64(raw[2:])}
	n := int(binary.LittleEndian.Uint32(raw[10:]))
	off := 14
	// Clamp the pre-size as in decodeEventBinary (≥18 bytes per predicate).
	hint := n
	if max := (len(raw) - off) / 18; hint > max {
		hint = max
	}
	s.Preds = make([]Predicate, 0, hint)
	for i := 0; i < n; i++ {
		attr, next, err := binString(raw, off)
		if err != nil {
			return Subscription{}, err
		}
		off = next
		if off+16 > len(raw) {
			return Subscription{}, errTruncated
		}
		s.Preds = append(s.Preds, Predicate{Attr: attr, Interval: Interval{
			Lo: math.Float64frombits(binary.LittleEndian.Uint64(raw[off:])),
			Hi: math.Float64frombits(binary.LittleEndian.Uint64(raw[off+8:])),
		}})
		off += 16
	}
	if off != len(raw) {
		return Subscription{}, errTruncated // trailing garbage
	}
	return s, nil
}

// decodeEvent decodes a publication plaintext in either wire form.
func decodeEvent(raw []byte) (Event, error) {
	if len(raw) > 0 && raw[0] == binMagic {
		return decodeEventBinary(raw)
	}
	var e Event
	if err := json.Unmarshal(raw, &e); err != nil {
		return Event{}, fmt.Errorf("scbr: decoding publication: %w", err)
	}
	return e, nil
}

// decodeSubscription decodes a subscription plaintext in either wire form.
func decodeSubscription(raw []byte) (Subscription, error) {
	if len(raw) > 0 && raw[0] == binMagic {
		return decodeSubscriptionBinary(raw)
	}
	var s Subscription
	if err := json.Unmarshal(raw, &s); err != nil {
		return Subscription{}, fmt.Errorf("scbr: decoding subscription: %w", err)
	}
	return s, nil
}
