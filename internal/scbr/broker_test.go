package scbr

import (
	"bytes"
	"errors"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

func brokerEnclave(t *testing.T) (*enclave.Platform, *enclave.Enclave) {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	signer[0] = 0x5C
	e, err := p.ECreate(64<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EAdd([]byte("scbr-broker-v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	return p, e
}

func TestBrokerEndToEnd(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, err := NewBroker(enc, DefaultBrokerConfig())
	if err != nil {
		t.Fatal(err)
	}
	subCli, err := Connect(b, "subscriber-1", nil, nil, attest.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	pubCli, err := Connect(b, "publisher-1", nil, nil, attest.Policy{})
	if err != nil {
		t.Fatal(err)
	}

	s, _ := NewSubscription(0, map[string]Interval{"voltage": iv(220, 240)})
	if _, err := subCli.Subscribe(b, s); err != nil {
		t.Fatal(err)
	}

	n, err := pubCli.Publish(b, Event{
		Attrs:   map[string]float64{"voltage": 231},
		Payload: []byte("feeder-7 reading"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered to %d subscribers, want 1", n)
	}
	events, err := subCli.Receive(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || string(events[0].Payload) != "feeder-7 reading" {
		t.Fatalf("received %v", events)
	}

	// Non-matching publication delivers nothing.
	n, err = pubCli.Publish(b, Event{Attrs: map[string]float64{"voltage": 190}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("non-matching event delivered to %d", n)
	}
}

func TestBrokerRejectsUnknownClient(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	env := Envelope{ClientID: "stranger", Kind: KindPublication, Sealed: []byte("x")}
	if _, err := b.Publish(env); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("err = %v, want ErrUnknownClient", err)
	}
	if _, err := b.Subscribe(env); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("err = %v, want ErrUnknownClient", err)
	}
}

func TestBrokerRejectsForgedEnvelope(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	if _, err := Connect(b, "c1", nil, nil, attest.Policy{}); err != nil {
		t.Fatal(err)
	}
	// An attacker who knows the client ID but not the session key.
	forged, _ := SealPublication(cryptbox.Key{0xFF}, "c1", Event{Attrs: map[string]float64{"a": 1}})
	if _, err := b.Publish(forged); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("err = %v, want ErrBadEnvelope", err)
	}
}

func TestEnvelopesOpaqueOnWire(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	cli, _ := Connect(b, "c1", nil, nil, attest.Policy{})
	s, _ := NewSubscription(0, map[string]Interval{"secret-attr": iv(1, 2)})
	env, err := SealSubscription(cli.key, cli.ID, s)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(env.Sealed, []byte("secret-attr")) {
		t.Fatal("subscription filter readable on the wire")
	}
}

func TestDeliveriesEncryptedPerSubscriber(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	alice, _ := Connect(b, "alice", nil, nil, attest.Policy{})
	bob, _ := Connect(b, "bob", nil, nil, attest.Policy{})
	pub, _ := Connect(b, "pub", nil, nil, attest.Policy{})

	s, _ := NewSubscription(0, map[string]Interval{"a": iv(0, 10)})
	if _, err := alice.Subscribe(b, s); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(b, Event{Attrs: map[string]float64{"a": 5}, Payload: []byte("for alice")}); err != nil {
		t.Fatal(err)
	}
	// Bob cannot decrypt Alice's queued delivery.
	stolen := b.Drain("alice")
	if len(stolen) != 1 {
		t.Fatalf("queued %d deliveries", len(stolen))
	}
	if _, err := OpenDelivery(bob.key, stolen[0]); err == nil {
		t.Fatal("bob decrypted alice's delivery")
	}
	if _, err := OpenDelivery(alice.key, stolen[0]); err != nil {
		t.Fatalf("alice cannot decrypt her own delivery: %v", err)
	}
}

func TestBrokerAttestationGate(t *testing.T) {
	p, enc := brokerEnclave(t)
	svc := attest.NewService()
	quoter, err := svc.Provision(p, "broker-node")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	m, _ := enc.Measurement()

	good := attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}
	if _, err := Connect(b, "c1", svc, quoter, good); err != nil {
		t.Fatalf("attested connect failed: %v", err)
	}
	var wrong cryptbox.Digest
	wrong[0] = 1
	bad := attest.Policy{AllowedMREnclave: []cryptbox.Digest{wrong}}
	if _, err := Connect(b, "c2", svc, quoter, bad); err == nil {
		t.Fatal("client connected to a broker failing its policy")
	}
}

func TestBrokerHandshakeBadKey(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	if _, err := b.Handshake("c1", []byte("short")); err == nil {
		t.Fatal("malformed client key accepted")
	}
}

func TestBrokerOneDeliveryPerSubscriberManyFilters(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	cli, _ := Connect(b, "c1", nil, nil, attest.Policy{})
	pub, _ := Connect(b, "pub", nil, nil, attest.Policy{})
	for i := 0; i < 5; i++ {
		s, _ := NewSubscription(0, map[string]Interval{"a": iv(0, float64(10+i))})
		if _, err := cli.Subscribe(b, s); err != nil {
			t.Fatal(err)
		}
	}
	n, err := pub.Publish(b, Event{Attrs: map[string]float64{"a": 5}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered %d copies to one subscriber with 5 matching filters", n)
	}
}

func TestBrokerUnsubscribe(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	cli, _ := Connect(b, "c1", nil, nil, attest.Policy{})
	pub, _ := Connect(b, "pub", nil, nil, attest.Policy{})
	s, _ := NewSubscription(0, map[string]Interval{"a": iv(0, 10)})
	subID, err := cli.Subscribe(b, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe("c1", subID); err != nil {
		t.Fatal(err)
	}
	n, err := pub.Publish(b, Event{Attrs: map[string]float64{"a": 5}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("delivered to %d after unsubscribe", n)
	}
}

func TestBrokerUnsubscribeOwnershipEnforced(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	alice, _ := Connect(b, "alice", nil, nil, attest.Policy{})
	if _, err := Connect(b, "mallory", nil, nil, attest.Policy{}); err != nil {
		t.Fatal(err)
	}
	s, _ := NewSubscription(0, map[string]Interval{"a": iv(0, 10)})
	subID, _ := alice.Subscribe(b, s)
	if err := b.Unsubscribe("mallory", subID); err == nil {
		t.Fatal("foreign client removed alice's subscription")
	}
	if err := b.Unsubscribe("alice", 9999); err == nil {
		t.Fatal("unknown subscription removed")
	}
	if err := b.Unsubscribe("stranger", subID); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("err = %v, want ErrUnknownClient", err)
	}
}

func TestBrokerChargesEnclaveTransitions(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	cli, _ := Connect(b, "c1", nil, nil, attest.Policy{})
	before := enc.Memory().Breakdown()[enclave.CauseTransition]
	s, _ := NewSubscription(0, map[string]Interval{"a": iv(0, 1)})
	if _, err := cli.Subscribe(b, s); err != nil {
		t.Fatal(err)
	}
	after := enc.Memory().Breakdown()[enclave.CauseTransition]
	if after <= before {
		t.Fatal("subscription request did not charge an enclave entry")
	}
}

func TestHandshakeCannotDisplaceLiveSession(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	victim, err := Connect(b, "c1", nil, nil, attest.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSubscription(0, map[string]Interval{"a": iv(0, 10)})
	if _, err := victim.Subscribe(b, s); err != nil {
		t.Fatal(err)
	}

	// An attacker who knows only the client ID tries a fresh handshake.
	h, err := BeginHandshake("c1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Handshake("c1", h.Public()); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("takeover handshake: err = %v, want ErrSessionExists", err)
	}

	// The victim's session is intact: deliveries still seal to its key.
	pub, _ := Connect(b, "pub", nil, nil, attest.Policy{})
	if _, err := pub.Publish(b, Event{Attrs: map[string]float64{"a": 5}, Payload: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	events, err := victim.Receive(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("victim received %d events, want 1", len(events))
	}
}

func TestRehandshakeRotatesSessionWithProof(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	cli, err := Connect(b, "c1", nil, nil, attest.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSubscription(0, map[string]Interval{"a": iv(0, 10)})
	if _, err := cli.Subscribe(b, s); err != nil {
		t.Fatal(err)
	}

	// A proof sealed under the wrong key is rejected.
	forged, err := BeginHandshake("c1")
	if err != nil {
		t.Fatal(err)
	}
	wrongBox, _ := cryptbox.NewBox(cryptbox.Key{0xFF})
	badProof, _ := wrongBox.Seal(forged.Public(), aadRehandshake("c1"))
	if _, err := b.Rehandshake("c1", badProof); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("forged proof: err = %v, want ErrBadEnvelope", err)
	}

	// The legitimate holder rotates and keeps receiving.
	h, err := BeginHandshake("c1")
	if err != nil {
		t.Fatal(err)
	}
	proof, err := cli.SealRehandshake(h)
	if err != nil {
		t.Fatal(err)
	}
	brokerPub, err := b.Rehandshake("c1", proof)
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := h.Finish(brokerPub)
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := Connect(b, "pub", nil, nil, attest.Policy{})
	if _, err := pub.Publish(b, Event{Attrs: map[string]float64{"a": 3}, Payload: []byte("post-rotate")}); err != nil {
		t.Fatal(err)
	}
	events, err := rotated.Receive(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || string(events[0].Payload) != "post-rotate" {
		t.Fatalf("rotated client received %v", events)
	}
	// The pre-rotation key no longer opens new deliveries.
	if _, err := pub.Publish(b, Event{Attrs: map[string]float64{"a": 3}, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	for _, d := range b.Drain("c1") {
		if _, err := cli.OpenDeliverySealed(d.Sealed); err == nil {
			t.Fatal("old session key still opens post-rotation deliveries")
		}
	}
}

func TestDrainSealedRejectsReplayAndForgery(t *testing.T) {
	_, enc := brokerEnclave(t)
	b, _ := NewBroker(enc, DefaultBrokerConfig())
	cli, err := Connect(b, "c1", nil, nil, attest.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSubscription(0, map[string]Interval{"a": iv(0, 10)})
	if _, err := cli.Subscribe(b, s); err != nil {
		t.Fatal(err)
	}
	pub, _ := Connect(b, "pub", nil, nil, attest.Policy{})
	if _, err := pub.Publish(b, Event{Attrs: map[string]float64{"a": 1}, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}

	// No proof at all.
	if _, err := b.DrainSealed("c1", []byte("junk")); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("garbage token: err = %v, want ErrBadEnvelope", err)
	}
	// A valid token drains once...
	token, err := cli.SealPollToken()
	if err != nil {
		t.Fatal(err)
	}
	dels, err := b.DrainSealed("c1", token)
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 {
		t.Fatalf("drained %d deliveries, want 1", len(dels))
	}
	// ...and a replay of the same bytes is rejected even with new mail.
	if _, err := pub.Publish(b, Event{Attrs: map[string]float64{"a": 2}, Payload: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DrainSealed("c1", token); !errors.Is(err, ErrReplayedToken) {
		t.Fatalf("replayed token: err = %v, want ErrReplayedToken", err)
	}
	// A fresh token still works; the pending delivery survived the replay.
	token2, err := cli.SealPollToken()
	if err != nil {
		t.Fatal(err)
	}
	dels, err = b.DrainSealed("c1", token2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 {
		t.Fatalf("post-replay drain got %d deliveries, want 1", len(dels))
	}
	if _, err := b.DrainSealed("unknown", token2); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("unknown client: err = %v, want ErrUnknownClient", err)
	}
}
