// Package orchestrator implements the fine-granular, highly responsive
// orchestration system of paper §VI (use case 2): monitoring services
// watch the micro-services of an application, detect anomalies within
// (simulated) milliseconds, and react by adapting the virtual
// infrastructure — scaling replicas out and in and re-dispatching load —
// while enforcing quality-of-service targets without touching the
// applications' security properties (the orchestrator only ever sees
// resource metrics and queue depths, never plaintext data).
package orchestrator

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"securecloud/internal/sim"
)

// Metrics is one monitoring sample of one replica.
type Metrics struct {
	// QueueDepth is the replica's pending-request backlog.
	QueueDepth int
	// ServiceCycles is the simulated cost of one request at this replica.
	ServiceCycles sim.Cycles
	// Healthy is false when the replica stopped responding.
	Healthy bool
	// Shed counts requests the service's admission front end rejected in
	// the last serve tick. It is a set-level figure reported identically by
	// every replica of a set: shedding happens before routing, so it cannot
	// be attributed to one replica — but it is the overload signal the
	// control loop needs when admission keeps per-replica queues bounded
	// (deep queues never form, so MaxQueueDepth alone would miss the
	// overload entirely).
	Shed int
}

// Replica is the orchestrator's handle on one running micro-service
// instance. Implementations wrap a container.Container or a microsvc
// worker; tests use fakes.
type Replica interface {
	// ID identifies the replica.
	ID() string
	// Sample returns current metrics.
	Sample() Metrics
}

// Target is the QoS goal for one service.
type Target struct {
	// MaxQueueDepth per replica before scale-out.
	MaxQueueDepth int
	// MinReplicas / MaxReplicas bound the adaptation.
	MinReplicas int
	MaxReplicas int
	// ScaleInBelow is the per-replica queue depth under which the
	// orchestrator retires replicas.
	ScaleInBelow int
	// MaxServiceCycles restarts a replica whose per-request service cost
	// exceeds it — the straggler rule: a replica that turned slow (degraded
	// node, interference) is replaced with a fresh one rather than left to
	// drag the service's tail latency. Zero disables the rule.
	MaxServiceCycles sim.Cycles
	// MaxShedPerTick scales out when the service's admission front end shed
	// more than this many requests in the last tick — the overload signal
	// for admission-controlled services, whose bounded per-replica queues
	// never trip MaxQueueDepth. Zero disables the rule.
	MaxShedPerTick int
}

// DefaultTarget returns a conservative QoS target.
func DefaultTarget() Target {
	return Target{MaxQueueDepth: 32, MinReplicas: 1, MaxReplicas: 16, ScaleInBelow: 4}
}

// Action is one adaptation decision.
type Action struct {
	Kind string // "scale-out" | "scale-in" | "restart"
	// ReplicaID is set for scale-in/restart.
	ReplicaID string
	// Tick is the monitoring tick that triggered the decision.
	Tick int64
	// Reason is a human-readable trigger description.
	Reason string
}

// Launcher creates and retires replicas; the engine side implements it.
type Launcher interface {
	// Launch starts a new replica and returns it.
	Launch() (Replica, error)
	// Retire stops a replica.
	Retire(id string) error
}

// Errors.
var (
	ErrNoReplicas = errors.New("orchestrator: service has no replicas")
)

// Orchestrator supervises one service.
type Orchestrator struct {
	target   Target
	launcher Launcher

	mu       sync.Mutex
	replicas []Replica
	log      []Action
	tick     int64
	// reactions counts adaptations; detection-to-reaction latency is zero
	// ticks in this synchronous design, the simulated counterpart of the
	// paper's millisecond-scale requirement.
	reactions int
}

// New builds an orchestrator over an initial replica set.
func New(target Target, launcher Launcher, initial ...Replica) (*Orchestrator, error) {
	if target.MinReplicas <= 0 {
		target.MinReplicas = 1
	}
	if target.MaxReplicas < target.MinReplicas {
		target.MaxReplicas = target.MinReplicas
	}
	if len(initial) == 0 {
		return nil, ErrNoReplicas
	}
	return &Orchestrator{target: target, launcher: launcher, replicas: initial}, nil
}

// Replicas returns the current replica count.
func (o *Orchestrator) Replicas() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.replicas)
}

// Log returns the adaptation history.
func (o *Orchestrator) Log() []Action {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Action(nil), o.log...)
}

// Observe runs one monitoring tick: sample every replica, detect
// anomalies, react immediately (same tick — the simulated counterpart of
// the paper's millisecond reactions). It returns the actions taken.
//
// Replacement is fail-closed: a launch that the launcher refuses (for
// example the KeyBroker denying key release to a revoked service) aborts
// the tick with the error before the unhealthy replica is retired, so the
// fleet never trades an unhealthy replica for nothing. The dead replica
// stays in the set and the orchestrator retries the replacement on every
// subsequent tick until the launch succeeds — e.g. after the service is
// reinstated and replacements can re-attest.
func (o *Orchestrator) Observe() ([]Action, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tick++
	var actions []Action

	// 1. Health: restart dead and straggling replicas. A replica whose
	// per-request service cost exceeds the target's MaxServiceCycles is
	// treated like a failure — replaced the same tick it is detected.
	for i, r := range o.replicas {
		m := r.Sample()
		reason := ""
		switch {
		case !m.Healthy:
			reason = "replica unhealthy"
		case o.target.MaxServiceCycles > 0 && m.ServiceCycles > o.target.MaxServiceCycles:
			reason = fmt.Sprintf("service cycles %d > %d", m.ServiceCycles, o.target.MaxServiceCycles)
		default:
			continue
		}
		if o.launcher == nil {
			continue
		}
		fresh, err := o.launcher.Launch()
		if err != nil {
			return actions, fmt.Errorf("orchestrator: replacing %s: %w", r.ID(), err)
		}
		_ = o.launcher.Retire(r.ID())
		o.replicas[i] = fresh
		actions = append(actions, o.record(Action{
			Kind: "restart", ReplicaID: r.ID(), Tick: o.tick,
			Reason: reason,
		}))
	}

	// 2. Load: scale out when any replica exceeds the queue target, or —
	// for admission-controlled services — when the front end sheds beyond
	// the tolerated rate (bounded queues hide overload from the depth rule;
	// the shed rate is where it reappears).
	worst, total, shed := 0, 0, 0
	for _, r := range o.replicas {
		m := r.Sample()
		total += m.QueueDepth
		if m.QueueDepth > worst {
			worst = m.QueueDepth
		}
		if m.Shed > shed {
			shed = m.Shed
		}
	}
	overloaded, reason := false, ""
	switch {
	case worst > o.target.MaxQueueDepth:
		overloaded = true
		reason = fmt.Sprintf("queue depth %d > %d", worst, o.target.MaxQueueDepth)
	case o.target.MaxShedPerTick > 0 && shed > o.target.MaxShedPerTick:
		overloaded = true
		reason = fmt.Sprintf("shed %d > %d per tick", shed, o.target.MaxShedPerTick)
	}
	if overloaded && len(o.replicas) < o.target.MaxReplicas && o.launcher != nil {
		fresh, err := o.launcher.Launch()
		if err != nil {
			return actions, fmt.Errorf("orchestrator: scale-out: %w", err)
		}
		o.replicas = append(o.replicas, fresh)
		actions = append(actions, o.record(Action{
			Kind: "scale-out", Tick: o.tick,
			Reason: reason,
		}))
	}

	// 3. Efficiency: scale in when the whole fleet is idle enough that
	// one fewer replica still meets the target. A service that is actively
	// shedding is never idle, however shallow its (bounded) queues look.
	if len(o.replicas) > o.target.MinReplicas && o.launcher != nil && shed == 0 {
		perReplica := total / len(o.replicas)
		if perReplica < o.target.ScaleInBelow && worst < o.target.ScaleInBelow {
			victim := o.replicas[len(o.replicas)-1]
			if err := o.launcher.Retire(victim.ID()); err != nil {
				return actions, fmt.Errorf("orchestrator: scale-in: %w", err)
			}
			o.replicas = o.replicas[:len(o.replicas)-1]
			actions = append(actions, o.record(Action{
				Kind: "scale-in", ReplicaID: victim.ID(), Tick: o.tick,
				Reason: fmt.Sprintf("mean queue depth %d < %d", perReplica, o.target.ScaleInBelow),
			}))
		}
	}
	return actions, nil
}

func (o *Orchestrator) record(a Action) Action {
	o.log = append(o.log, a)
	o.reactions++
	return a
}

// String renders one action deterministically: every field it prints is a
// pure function of the monitoring inputs, so adaptation traces built from
// it are comparable bit-for-bit across runs and worker counts.
func (a Action) String() string {
	if a.ReplicaID == "" {
		return fmt.Sprintf("t%04d %s (%s)", a.Tick, a.Kind, a.Reason)
	}
	return fmt.Sprintf("t%04d %s %s (%s)", a.Tick, a.Kind, a.ReplicaID, a.Reason)
}

// Trace renders the adaptation log as deterministic strings — the
// artifact the benchmark harness hashes and gates: two runs of the same
// scenario must produce byte-identical traces regardless of execution
// parallelism.
func (o *Orchestrator) Trace() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, len(o.log))
	for i, a := range o.log {
		out[i] = a.String()
	}
	return out
}

// Dispatcher routes incoming work to the least-loaded replica — the
// orchestration layer's load balancing over queue-depth metrics.
type Dispatcher struct {
	o *Orchestrator
}

// NewDispatcher builds a dispatcher over an orchestrator's replica set.
func NewDispatcher(o *Orchestrator) *Dispatcher { return &Dispatcher{o: o} }

// Pick returns the replica with the shallowest queue (stable by ID).
func (d *Dispatcher) Pick() (Replica, error) {
	d.o.mu.Lock()
	defer d.o.mu.Unlock()
	if len(d.o.replicas) == 0 {
		return nil, ErrNoReplicas
	}
	sorted := append([]Replica(nil), d.o.replicas...)
	sort.Slice(sorted, func(i, j int) bool {
		di, dj := sorted[i].Sample().QueueDepth, sorted[j].Sample().QueueDepth
		if di != dj {
			return di < dj
		}
		return sorted[i].ID() < sorted[j].ID()
	})
	return sorted[0], nil
}
