package orchestrator

import (
	"errors"
	"sort"
)

// Placement: where a scale-out replica boots, not just how many replicas
// run. The orchestrator's Observe loop decides counts; a Placer decides
// which node hosts each new replica, scoring candidates by blob-cache
// locality (warm chunks for the service's image) against current load.
// Placement is topology: it must be a pure function of the observed
// NodeInfo set — independent of map-iteration order, host timing and
// worker counts — so per-node simulated figures stay bit-identical.

// ErrNoEligibleNode means every candidate node is down, isolated,
// unreachable or at capacity — the launch fails closed and the
// orchestrator retries next tick.
var ErrNoEligibleNode = errors.New("orchestrator: no eligible node for placement")

// NodeInfo is one candidate node's observation at placement time.
type NodeInfo struct {
	// Name is the node's stable identity; Index its topology slot.
	Name  string
	Index int
	// Live is the number of replicas currently placed on the node;
	// Capacity its replica-slot budget (0 = unbounded).
	Live     int
	Capacity int
	// WarmChunks counts the service image's chunks already in the node's
	// blob cache; TotalChunks the image's unique chunk count.
	WarmChunks  int
	TotalChunks int
	// Down / Unreachable / Isolated exclude the node: crashed, cut off by
	// a network partition, or quarantined after serving tampered chunks.
	Down        bool
	Unreachable bool
	Isolated    bool
}

// eligible reports whether the node can accept one more replica.
func (n NodeInfo) eligible() bool {
	if n.Down || n.Unreachable || n.Isolated {
		return false
	}
	return n.Capacity <= 0 || n.Live < n.Capacity
}

// warmFraction is the node's cache-locality score in [0, 1].
func (n NodeInfo) warmFraction() float64 {
	if n.TotalChunks <= 0 {
		return 0
	}
	return float64(n.WarmChunks) / float64(n.TotalChunks)
}

// Placer chooses the node a new replica boots on. Place returns the
// chosen node's Index, or ErrNoEligibleNode when no candidate can host
// it. Implementations must be pure functions of the nodes slice contents
// (any order) — the cluster property tests pin permutation invariance.
type Placer interface {
	Place(nodes []NodeInfo) (int, error)
}

// LocalityPlacer scores each eligible node
//
//	warmFraction·WarmWeight − Live·LoadPenalty
//
// and picks the highest score, breaking ties on the lowest Index. Warm
// caches attract replicas (a warm boot fetches strictly fewer chunks than
// a cold one); load spreads them. The zero value gets sane defaults.
type LocalityPlacer struct {
	// WarmWeight scales the cache-locality term (default 1.5).
	WarmWeight float64
	// LoadPenalty is the score cost per live replica (default 1.0).
	LoadPenalty float64
}

// Place implements Placer.
func (p LocalityPlacer) Place(nodes []NodeInfo) (int, error) {
	warmW := p.WarmWeight
	if warmW == 0 {
		warmW = 1.5
	}
	loadP := p.LoadPenalty
	if loadP == 0 {
		loadP = 1.0
	}
	// Sort a copy by Index so the scan order — and therefore every
	// tie-break — is independent of the caller's slice order.
	cand := append([]NodeInfo(nil), nodes...)
	sort.Slice(cand, func(i, j int) bool { return cand[i].Index < cand[j].Index })
	best := -1
	var bestScore float64
	for _, n := range cand {
		if !n.eligible() {
			continue
		}
		score := n.warmFraction()*warmW - float64(n.Live)*loadP
		if best < 0 || score > bestScore {
			best = n.Index
			bestScore = score
		}
	}
	if best < 0 {
		return 0, ErrNoEligibleNode
	}
	return best, nil
}
