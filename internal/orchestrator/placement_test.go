package orchestrator

import (
	"errors"
	"testing"

	"securecloud/internal/sim"
)

// TestLocalityPlacerScoring pins the scoring rule: warm caches attract,
// load repels, and exact ties break on the lowest index.
func TestLocalityPlacerScoring(t *testing.T) {
	p := LocalityPlacer{}
	cases := []struct {
		name  string
		nodes []NodeInfo
		want  int
	}{
		{"warm beats cold", []NodeInfo{
			{Index: 0, WarmChunks: 0, TotalChunks: 10},
			{Index: 1, WarmChunks: 10, TotalChunks: 10},
		}, 1},
		{"load repels", []NodeInfo{
			{Index: 0, Live: 2, TotalChunks: 10},
			{Index: 1, Live: 0, TotalChunks: 10},
		}, 1},
		{"tie breaks low index", []NodeInfo{
			{Index: 0, TotalChunks: 10},
			{Index: 1, TotalChunks: 10},
			{Index: 2, TotalChunks: 10},
		}, 0},
		{"full warm node skipped", []NodeInfo{
			{Index: 0, WarmChunks: 10, TotalChunks: 10, Live: 1, Capacity: 1},
			{Index: 1, TotalChunks: 10, Capacity: 1},
		}, 1},
		{"down/unreachable/isolated skipped", []NodeInfo{
			{Index: 0, Down: true},
			{Index: 1, Unreachable: true},
			{Index: 2, Isolated: true},
			{Index: 3},
		}, 3},
		{"warm outweighs one live replica", []NodeInfo{
			// warmFraction 1 · 1.5 − 1 · 1.0 = 0.5 > 0 for the cold idle node.
			{Index: 0, WarmChunks: 10, TotalChunks: 10, Live: 1},
			{Index: 1, TotalChunks: 10},
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := p.Place(tc.nodes)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("placed on %d, want %d", got, tc.want)
			}
		})
	}
}

// TestLocalityPlacerNoEligibleNode: every node excluded → fail closed.
func TestLocalityPlacerNoEligibleNode(t *testing.T) {
	p := LocalityPlacer{}
	_, err := p.Place([]NodeInfo{
		{Index: 0, Down: true},
		{Index: 1, Live: 1, Capacity: 1},
	})
	if !errors.Is(err, ErrNoEligibleNode) {
		t.Fatalf("got %v, want ErrNoEligibleNode", err)
	}
	if _, err := p.Place(nil); !errors.Is(err, ErrNoEligibleNode) {
		t.Fatalf("empty candidate set: got %v, want ErrNoEligibleNode", err)
	}
}

// TestLocalityPlacerPermutationInvariant is the placement purity property:
// the chosen node never depends on the order the candidates are presented
// in (map-iteration order must not leak into topology decisions).
func TestLocalityPlacerPermutationInvariant(t *testing.T) {
	p := LocalityPlacer{}
	rng := sim.NewRand(1234)
	for trial := 0; trial < 200; trial++ {
		n := 2 + int(rng.Uint64()%7)
		nodes := make([]NodeInfo, n)
		for i := range nodes {
			nodes[i] = NodeInfo{
				Index:       i,
				Live:        int(rng.Uint64() % 3),
				Capacity:    int(rng.Uint64() % 3), // 0 = unbounded
				WarmChunks:  int(rng.Uint64() % 11),
				TotalChunks: 10,
				Down:        rng.Uint64()%5 == 0,
				Unreachable: rng.Uint64()%7 == 0,
				Isolated:    rng.Uint64()%11 == 0,
			}
		}
		ref, refErr := p.Place(nodes)
		for shuffle := 0; shuffle < 8; shuffle++ {
			perm := append([]NodeInfo(nil), nodes...)
			for i := len(perm) - 1; i > 0; i-- {
				j := int(rng.Uint64() % uint64(i+1))
				perm[i], perm[j] = perm[j], perm[i]
			}
			got, err := p.Place(perm)
			if (err == nil) != (refErr == nil) || got != ref {
				t.Fatalf("trial %d: permutation changed placement: %d/%v vs %d/%v",
					trial, got, err, ref, refErr)
			}
		}
	}
}
