package orchestrator

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// fakeReplica is a controllable Replica.
type fakeReplica struct {
	id      string
	mu      sync.Mutex
	metrics Metrics
}

func (f *fakeReplica) ID() string { return f.id }

func (f *fakeReplica) Sample() Metrics {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.metrics
}

func (f *fakeReplica) set(m Metrics) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.metrics = m
}

// fakeLauncher mints replicas and records retirements.
type fakeLauncher struct {
	mu      sync.Mutex
	next    int
	retired []string
	fail    bool
}

func (l *fakeLauncher) Launch() (Replica, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fail {
		return nil, errors.New("capacity exhausted")
	}
	l.next++
	return &fakeReplica{id: fmt.Sprintf("r%02d", l.next), metrics: Metrics{Healthy: true}}, nil
}

func (l *fakeLauncher) Retire(id string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retired = append(l.retired, id)
	return nil
}

func healthy(id string, depth int) *fakeReplica {
	return &fakeReplica{id: id, metrics: Metrics{Healthy: true, QueueDepth: depth}}
}

func TestNewRequiresReplicas(t *testing.T) {
	if _, err := New(DefaultTarget(), &fakeLauncher{}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
}

func TestScaleOutOnDeepQueue(t *testing.T) {
	l := &fakeLauncher{}
	r := healthy("r00", 100)
	o, err := New(DefaultTarget(), l, r)
	if err != nil {
		t.Fatal(err)
	}
	actions, err := o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Kind != "scale-out" {
		t.Fatalf("actions = %+v", actions)
	}
	if o.Replicas() != 2 {
		t.Fatalf("Replicas = %d", o.Replicas())
	}
}

func TestScaleOutBoundedByMax(t *testing.T) {
	l := &fakeLauncher{}
	target := DefaultTarget()
	target.MaxReplicas = 2
	o, err := New(target, l, healthy("r00", 100), healthy("r01", 100))
	if err != nil {
		t.Fatal(err)
	}
	actions, err := o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 {
		t.Fatalf("scaled beyond MaxReplicas: %+v", actions)
	}
}

func TestScaleInWhenIdle(t *testing.T) {
	l := &fakeLauncher{}
	o, err := New(DefaultTarget(), l, healthy("r00", 0), healthy("r01", 0))
	if err != nil {
		t.Fatal(err)
	}
	actions, err := o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Kind != "scale-in" {
		t.Fatalf("actions = %+v", actions)
	}
	if o.Replicas() != 1 {
		t.Fatalf("Replicas = %d", o.Replicas())
	}
	if len(l.retired) != 1 || l.retired[0] != "r01" {
		t.Fatalf("retired = %v", l.retired)
	}
}

func TestScaleInRespectsMin(t *testing.T) {
	l := &fakeLauncher{}
	o, err := New(DefaultTarget(), l, healthy("r00", 0))
	if err != nil {
		t.Fatal(err)
	}
	actions, err := o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 || o.Replicas() != 1 {
		t.Fatalf("scaled below MinReplicas: %+v", actions)
	}
}

func TestRestartUnhealthyReplicaSameTick(t *testing.T) {
	l := &fakeLauncher{}
	sick := healthy("r-sick", 5)
	sick.set(Metrics{Healthy: false})
	o, err := New(DefaultTarget(), l, sick)
	if err != nil {
		t.Fatal(err)
	}
	actions, err := o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	// Detection latency is zero ticks: the same Observe that saw the
	// failure replaced the replica.
	if len(actions) != 1 || actions[0].Kind != "restart" || actions[0].Tick != 1 {
		t.Fatalf("actions = %+v", actions)
	}
	if o.Replicas() != 1 {
		t.Fatalf("Replicas = %d", o.Replicas())
	}
	if len(l.retired) != 1 || l.retired[0] != "r-sick" {
		t.Fatalf("retired = %v", l.retired)
	}
}

func TestLaunchFailureSurfaced(t *testing.T) {
	l := &fakeLauncher{fail: true}
	o, err := New(DefaultTarget(), l, healthy("r00", 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Observe(); err == nil {
		t.Fatal("launch failure swallowed")
	}
}

func TestAdaptationLog(t *testing.T) {
	l := &fakeLauncher{}
	r := healthy("r00", 100)
	o, _ := New(DefaultTarget(), l, r)
	if _, err := o.Observe(); err != nil {
		t.Fatal(err)
	}
	r.set(Metrics{Healthy: true, QueueDepth: 0})
	// New replica is idle too: scale back in.
	if _, err := o.Observe(); err != nil {
		t.Fatal(err)
	}
	log := o.Log()
	if len(log) != 2 || log[0].Kind != "scale-out" || log[1].Kind != "scale-in" {
		t.Fatalf("log = %+v", log)
	}
}

func TestDispatcherPicksLeastLoaded(t *testing.T) {
	o, err := New(DefaultTarget(), &fakeLauncher{},
		healthy("a", 9), healthy("b", 2), healthy("c", 5))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(o)
	r, err := d.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if r.ID() != "b" {
		t.Fatalf("picked %s, want b", r.ID())
	}
}

func TestClosedLoopConvergesUnderLoadSwing(t *testing.T) {
	// Simulated load swing: a burst arrives, the orchestrator scales out
	// until per-replica depth is within target, then the burst drains and
	// it scales back to the minimum.
	l := &fakeLauncher{}
	first := healthy("r00", 0)
	o, err := New(DefaultTarget(), l, first)
	if err != nil {
		t.Fatal(err)
	}
	pending := 600 // queued requests
	for tick := 0; tick < 100; tick++ {
		// Distribute pending load over replicas, serve 8/replica/tick.
		n := o.Replicas()
		per := pending / n
		o.mu.Lock()
		for _, r := range o.replicas {
			r.(*fakeReplica).set(Metrics{Healthy: true, QueueDepth: per})
		}
		o.mu.Unlock()
		served := 8 * n
		if served > pending {
			served = pending
		}
		pending -= served
		if _, err := o.Observe(); err != nil {
			t.Fatal(err)
		}
	}
	if pending != 0 {
		t.Fatalf("%d requests still pending", pending)
	}
	if got := o.Replicas(); got != 1 {
		t.Fatalf("did not scale back to minimum: %d replicas", got)
	}
	sawOut := false
	for _, a := range o.Log() {
		if a.Kind == "scale-out" {
			sawOut = true
		}
	}
	if !sawOut {
		t.Fatal("burst never triggered scale-out")
	}
}

func TestSlowReplicaRestarted(t *testing.T) {
	l := &fakeLauncher{}
	slow := healthy("r-slow", 5)
	slow.set(Metrics{Healthy: true, QueueDepth: 5, ServiceCycles: 500_000})
	target := DefaultTarget()
	target.MaxServiceCycles = 200_000
	o, err := New(target, l, slow)
	if err != nil {
		t.Fatal(err)
	}
	actions, err := o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Kind != "restart" || actions[0].ReplicaID != "r-slow" {
		t.Fatalf("actions = %+v", actions)
	}
	if len(l.retired) != 1 || l.retired[0] != "r-slow" {
		t.Fatalf("retired = %v", l.retired)
	}
}

func TestSlowRuleDisabledByDefault(t *testing.T) {
	l := &fakeLauncher{}
	slow := healthy("r-slow", 5)
	slow.set(Metrics{Healthy: true, QueueDepth: 5, ServiceCycles: 1 << 40})
	o, err := New(DefaultTarget(), l, slow)
	if err != nil {
		t.Fatal(err)
	}
	actions, err := o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 {
		t.Fatalf("zero MaxServiceCycles still restarted: %+v", actions)
	}
}

func TestTraceDeterministicRendering(t *testing.T) {
	l := &fakeLauncher{}
	r := healthy("r00", 100)
	o, _ := New(DefaultTarget(), l, r)
	if _, err := o.Observe(); err != nil {
		t.Fatal(err)
	}
	r.set(Metrics{Healthy: false})
	if _, err := o.Observe(); err != nil {
		t.Fatal(err)
	}
	trace := o.Trace()
	want := []string{
		"t0001 scale-out (queue depth 100 > 32)",
		"t0002 restart r00 (replica unhealthy)",
		"t0002 scale-in r01 (mean queue depth 0 < 4)",
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q", i, trace[i], want[i])
		}
	}
}

// TestScaleOutOnShedRate: an admission-controlled service keeps queues
// shallow, so overload surfaces as shed rate, not queue depth. The shed
// rule scales out with a deterministic reason string.
func TestScaleOutOnShedRate(t *testing.T) {
	l := &fakeLauncher{}
	r := &fakeReplica{id: "r00", metrics: Metrics{Healthy: true, QueueDepth: 2, Shed: 40}}
	target := DefaultTarget()
	target.MaxShedPerTick = 16
	o, err := New(target, l, r)
	if err != nil {
		t.Fatal(err)
	}
	actions, err := o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Kind != "scale-out" {
		t.Fatalf("actions = %+v", actions)
	}
	if want := "shed 40 > 16 per tick"; actions[0].Reason != want {
		t.Fatalf("reason = %q, want %q", actions[0].Reason, want)
	}
	// Zero MaxShedPerTick disables the rule entirely.
	o2, err := New(DefaultTarget(), l, &fakeReplica{id: "r01",
		metrics: Metrics{Healthy: true, QueueDepth: 2, Shed: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	actions, err = o2.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 {
		t.Fatalf("shed rule fired while disabled: %+v", actions)
	}
}

// TestNoScaleInWhileShedding: shallow bounded queues must not trigger
// scale-in while the front end is actively rejecting work.
func TestNoScaleInWhileShedding(t *testing.T) {
	l := &fakeLauncher{}
	a := &fakeReplica{id: "r00", metrics: Metrics{Healthy: true, QueueDepth: 0, Shed: 5}}
	b := &fakeReplica{id: "r01", metrics: Metrics{Healthy: true, QueueDepth: 0, Shed: 5}}
	target := DefaultTarget()
	target.MaxShedPerTick = 100 // shed below the scale-OUT threshold…
	o, err := New(target, l, a, b)
	if err != nil {
		t.Fatal(err)
	}
	actions, err := o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 {
		t.Fatalf("scaled while shedding: %+v", actions) // …but still no scale-in
	}
	// Once shedding stops, the idle fleet contracts as before.
	a.set(Metrics{Healthy: true})
	b.set(Metrics{Healthy: true})
	actions, err = o.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Kind != "scale-in" {
		t.Fatalf("actions = %+v", actions)
	}
}
