package mapreduce

import (
	"encoding/json"
	"errors"
	"fmt"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sconert"
)

// ErrShuffleTampered is returned when sealed intermediate data fails
// authentication — the untrusted shuffle storage modified, dropped into
// the wrong partition, or replayed a record.
var ErrShuffleTampered = errors.New("mapreduce: shuffle record failed authentication")

// SecureEngine runs jobs with mapper/reducer tasks inside enclaves and all
// intermediate data sealed. Input and output stay plaintext only inside
// the enclaves; the shuffle region models untrusted cloud storage between
// the two phases.
type SecureEngine struct {
	platform *enclave.Platform
	workers  []*enclave.Enclave
	scheds   []*sconert.Scheduler
	rootKey  cryptbox.Key
	hook     ShuffleHook
}

// NewSecureEngine builds worker enclaves on the platform. The root key
// (provisioned via the CAS in a full deployment) derives the per-partition
// shuffle keys.
func NewSecureEngine(p *enclave.Platform, workers int, rootKey cryptbox.Key) (*SecureEngine, error) {
	if workers <= 0 {
		workers = 4
	}
	e := &SecureEngine{platform: p, rootKey: rootKey}
	var signer cryptbox.Digest
	signer[0] = 0x3E
	for i := 0; i < workers; i++ {
		enc, err := p.ECreate(16<<20, signer)
		if err != nil {
			return nil, err
		}
		if _, err := enc.EAdd([]byte(fmt.Sprintf("mr-worker-%d", i))); err != nil {
			return nil, err
		}
		if err := enc.EInit(); err != nil {
			return nil, err
		}
		e.workers = append(e.workers, enc)
		e.scheds = append(e.scheds, sconert.NewScheduler(enc, 2))
	}
	return e, nil
}

// Close destroys the worker enclaves.
func (e *SecureEngine) Close() {
	for _, enc := range e.workers {
		enc.Destroy()
	}
}

// partitionKey derives the sealing key of one shuffle partition.
func (e *SecureEngine) partitionKey(p int) (cryptbox.Key, error) {
	return cryptbox.DeriveKey(e.rootKey, fmt.Sprintf("shuffle-partition-%d", p))
}

// shuffleAAD binds a sealed record to its job and partition.
func shuffleAAD(job string, p int) []byte {
	return []byte(fmt.Sprintf("shuffle|%s|%d", job, p))
}

// sealedShuffle is the untrusted intermediate storage.
type sealedShuffle struct {
	partitions [][][]byte // partition -> sealed records
}

// Run executes the job with enclave workers and a sealed shuffle.
func (e *SecureEngine) Run(job Job) (map[string][]byte, error) {
	if err := job.defaults(); err != nil {
		return nil, err
	}
	shuffle := &sealedShuffle{partitions: make([][][]byte, job.Reducers)}
	splits := splitInput(job.Input, len(e.workers))

	// Map phase: each worker enclave maps a split, sealing every
	// intermediate record before it leaves the enclave.
	type emitBatch struct {
		p      int
		sealed []byte
	}
	results := make(chan []emitBatch, len(splits))
	errs := make(chan error, len(splits))
	for w, split := range splits {
		worker := e.workers[w%len(e.workers)]
		sched := e.scheds[w%len(e.scheds)]
		split := split
		sched.Go(func() {
			var out []emitBatch
			var failed error
			for _, rec := range split {
				job.Map(rec.Key, rec.Value, func(k string, v []byte) {
					if failed != nil {
						return
					}
					p := partition(k, job.Reducers)
					key, err := e.partitionKey(p)
					if err != nil {
						failed = err
						return
					}
					box, err := cryptbox.NewBox(key)
					if err != nil {
						failed = err
						return
					}
					raw, err := json.Marshal(KV{Key: k, Value: v})
					if err != nil {
						failed = err
						return
					}
					sealed, err := box.Seal(raw, shuffleAAD(job.Name, p))
					if err != nil {
						failed = err
						return
					}
					out = append(out, emitBatch{p: p, sealed: sealed})
				})
			}
			if failed != nil {
				errs <- failed
				return
			}
			results <- out
		})
		_ = worker
	}
	for _, s := range e.scheds {
		if err := s.Run(); err != nil {
			return nil, err
		}
	}
	close(results)
	close(errs)
	if err, ok := <-errs; ok && err != nil {
		return nil, err
	}
	for batch := range results {
		for _, b := range batch {
			shuffle.partitions[b.p] = append(shuffle.partitions[b.p], b.sealed)
		}
	}
	if e.hook != nil {
		e.hook(shuffle.partitions)
	}

	// Reduce phase: workers unseal their partition inside the enclave,
	// group and reduce.
	out := make(map[string][]byte)
	outErrs := make(chan error, job.Reducers)
	type reduced struct {
		key   string
		value []byte
	}
	reducedCh := make(chan reduced, 1024)
	for p := 0; p < job.Reducers; p++ {
		p := p
		sched := e.scheds[p%len(e.scheds)]
		sched.Go(func() {
			key, err := e.partitionKey(p)
			if err != nil {
				outErrs <- err
				return
			}
			box, err := cryptbox.NewBox(key)
			if err != nil {
				outErrs <- err
				return
			}
			var recs []KV
			for _, sealed := range shuffle.partitions[p] {
				raw, err := box.Open(sealed, shuffleAAD(job.Name, p))
				if err != nil {
					outErrs <- fmt.Errorf("%w: partition %d", ErrShuffleTampered, p)
					return
				}
				var kv KV
				if err := json.Unmarshal(raw, &kv); err != nil {
					outErrs <- err
					return
				}
				recs = append(recs, kv)
			}
			grouped := groupByKey(recs)
			for _, k := range sortedKeys(grouped) {
				v, err := job.Reduce(k, grouped[k])
				if err != nil {
					outErrs <- fmt.Errorf("mapreduce %s: reduce %q: %w", job.Name, k, err)
					return
				}
				reducedCh <- reduced{key: k, value: v}
			}
		})
	}
	for _, s := range e.scheds {
		if err := s.Run(); err != nil {
			return nil, err
		}
	}
	close(reducedCh)
	close(outErrs)
	if err, ok := <-outErrs; ok && err != nil {
		return nil, err
	}
	for r := range reducedCh {
		out[r.key] = r.value
	}
	return out, nil
}

// ShuffleHook receives the sealed shuffle partitions between the map and
// reduce phases — modelling an attacker with access to the intermediate
// storage. Fault-injection tests mutate records here.
type ShuffleHook func(partitions [][][]byte)

// RunWithShuffleHook is Run with the hook installed for one execution.
func (e *SecureEngine) RunWithShuffleHook(job Job, hook ShuffleHook) (map[string][]byte, error) {
	old := e.hook
	e.hook = hook
	defer func() { e.hook = old }()
	return e.Run(job)
}
