package mapreduce

import (
	"encoding/json"
	"fmt"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

// ParallelConfig sizes a parallel secure engine.
type ParallelConfig struct {
	// Workers is the number of worker enclaves, each on its own simulated
	// platform (enclave-per-worker). It is a *topology* parameter: it
	// decides how the input splits and which worker owns each shuffle
	// partition, and therefore every simulated figure. Fix it when
	// comparing runs; vary MaxParallel freely instead. Defaults to 4.
	Workers int
	// MaxParallel bounds how many workers execute at once (0 = Workers).
	// Purely an execution parameter — outputs and simulated totals are
	// identical for any value, because workers share no simulated state.
	MaxParallel int
	// Platform configures each worker's simulated platform.
	Platform enclave.Config
	// WorkerBytes is each worker enclave's size (default 16 MiB). The
	// enclave heap doubles as the staging region input records and sealed
	// shuffle records stream through, wrapping when the working set
	// exceeds it — exactly how a fixed enclave heap behaves.
	WorkerBytes uint64
}

// mrWorker is one enclave worker: a whole simulated platform, its enclave,
// and a staging region accounting for the records streamed through it.
type mrWorker struct {
	enc  *enclave.Enclave
	mem  *enclave.Memory
	base uint64
	size uint64
	off  uint64
}

// stage returns the simulated address where the next n staged bytes land,
// bumping the staging cursor and wrapping at the region end (a fixed
// enclave heap reused across records). Deterministic: the address sequence
// is a pure function of the record sizes streamed through this worker.
func (w *mrWorker) stage(n int) uint64 {
	sz := uint64(n)
	if sz > w.size {
		sz = w.size // clamp pathological records to the region
	}
	if w.off+sz > w.size {
		w.off = 0
	}
	addr := w.base + w.off
	w.off += sz
	return addr
}

// PhaseStats is the per-phase cycle accounting of one parallel run: per
// worker totals plus the serial-sum and critical-path decomposition, the
// same scaling statement the sharded SCBR broker reports (summed shard
// cycles over the slowest shard = the speedup an ideal enclave-per-core
// machine realises).
type PhaseStats struct {
	WorkerMapCycles      []sim.Cycles
	WorkerReduceCycles   []sim.Cycles
	MapSerialCycles      sim.Cycles
	MapCriticalCycles    sim.Cycles
	ReduceSerialCycles   sim.Cycles
	ReduceCriticalCycles sim.Cycles
	MapFaults            uint64
	ReduceFaults         uint64
	Faults               uint64 // MapFaults + ReduceFaults
}

// MapSpeedup returns serial-over-critical-path for the map phase (1 when
// the phase charged nothing).
func (s PhaseStats) MapSpeedup() float64 { return speedup(s.MapSerialCycles, s.MapCriticalCycles) }

// ReduceSpeedup returns serial-over-critical-path for the reduce phase.
func (s PhaseStats) ReduceSpeedup() float64 {
	return speedup(s.ReduceSerialCycles, s.ReduceCriticalCycles)
}

func speedup(serial, critical sim.Cycles) float64 {
	if critical == 0 {
		return 1
	}
	return float64(serial) / float64(critical)
}

// ParallelSecureEngine runs jobs across worker enclaves that each own a
// whole simulated platform — the enclave-per-worker deployment, extending
// the shard-per-core pattern from routing and storage to compute. The map
// phase splits the input across workers; every intermediate record is
// sealed before it leaves its enclave; shuffle partitions are hashed to
// workers (partition mod Workers) for the reduce phase. Because workers
// share no simulated state and the task-to-worker assignment is fixed by
// topology, outputs and per-worker cycle totals are bit-identical for any
// MaxParallel and any goroutine interleaving; only Workers (the topology)
// changes the figures.
//
// An engine is not safe for concurrent Run calls; each call reuses the
// worker pool.
type ParallelSecureEngine struct {
	cfg     ParallelConfig
	workers []*mrWorker
	rootKey cryptbox.Key
	hook    ShuffleHook
	stats   PhaseStats
}

// NewParallelSecureEngine builds the worker pool. The root key derives the
// per-partition shuffle keys, exactly as in the sequential SecureEngine —
// the two engines' sealed shuffles are interchangeable.
func NewParallelSecureEngine(rootKey cryptbox.Key, cfg ParallelConfig) (*ParallelSecureEngine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxParallel <= 0 {
		cfg.MaxParallel = cfg.Workers
	}
	if cfg.WorkerBytes == 0 {
		cfg.WorkerBytes = 16 << 20
	}
	e := &ParallelSecureEngine{cfg: cfg, rootKey: rootKey}
	for i := 0; i < cfg.Workers; i++ {
		enc, arena, err := enclave.NewWorker(cfg.Platform, cfg.WorkerBytes, fmt.Sprintf("mr-parallel-worker-%d", i))
		if err != nil {
			e.Close()
			return nil, err
		}
		size := arena.Capacity()
		base := arena.Alloc(int(size))
		e.workers = append(e.workers, &mrWorker{
			enc:  enc,
			mem:  enc.Memory(),
			base: base,
			size: size,
		})
	}
	return e, nil
}

// Close destroys the worker enclaves.
func (e *ParallelSecureEngine) Close() {
	for _, w := range e.workers {
		w.enc.Destroy()
	}
}

// Stats returns the phase accounting of the most recent Run.
func (e *ParallelSecureEngine) Stats() PhaseStats { return e.stats }

// partitionBoxes derives one sealing box per shuffle partition, shared
// read-only by all workers (Box is safe for concurrent Seal/Open).
func (e *ParallelSecureEngine) partitionBoxes(reducers int) ([]*cryptbox.Box, error) {
	boxes := make([]*cryptbox.Box, reducers)
	for p := range boxes {
		key, err := cryptbox.DeriveKey(e.rootKey, fmt.Sprintf("shuffle-partition-%d", p))
		if err != nil {
			return nil, err
		}
		boxes[p], err = cryptbox.NewBox(key)
		if err != nil {
			return nil, err
		}
	}
	return boxes, nil
}

// cyclesDelta subtracts a per-worker cycle snapshot, returning the deltas
// plus their sum and max (serial and critical path).
func (e *ParallelSecureEngine) cyclesDelta(before []sim.Cycles) ([]sim.Cycles, sim.Cycles, sim.Cycles) {
	deltas := make([]sim.Cycles, len(e.workers))
	var sum, max sim.Cycles
	for i, w := range e.workers {
		d := w.mem.Cycles() - before[i]
		deltas[i] = d
		sum += d
		if d > max {
			max = d
		}
	}
	return deltas, sum, max
}

func (e *ParallelSecureEngine) cyclesSnapshot() []sim.Cycles {
	out := make([]sim.Cycles, len(e.workers))
	for i, w := range e.workers {
		out[i] = w.mem.Cycles()
	}
	return out
}

func (e *ParallelSecureEngine) faultTotal() uint64 {
	var n uint64
	for _, w := range e.workers {
		n += w.mem.Faults()
	}
	return n
}

// Run executes the job across the worker pool with a sealed shuffle.
func (e *ParallelSecureEngine) Run(job Job) (map[string][]byte, error) {
	if err := job.defaults(); err != nil {
		return nil, err
	}
	boxes, err := e.partitionBoxes(job.Reducers)
	if err != nil {
		return nil, err
	}
	splits := splitInput(job.Input, len(e.workers))
	faults0 := e.faultTotal()

	// Map phase: worker w maps split w inside its enclave, sealing every
	// intermediate record before it leaves. One accounting span covers the
	// whole split (the worker owns its platform exclusively).
	mapBefore := e.cyclesSnapshot()
	perWorker := make([][][][]byte, len(e.workers)) // worker -> partition -> sealed records
	mapErrs := make([]error, len(e.workers))
	sim.ParallelFor(len(splits), e.cfg.MaxParallel, func(w int) {
		mapErrs[w] = e.runMapTask(job, boxes, splits[w], w, perWorker)
	})
	for _, err := range mapErrs {
		if err != nil {
			return nil, err
		}
	}
	mapCycles, mapSerial, mapCritical := e.cyclesDelta(mapBefore)
	faultsAfterMap := e.faultTotal()

	// The shuffle concatenates worker outputs in ascending worker order —
	// deterministic however the map tasks interleaved.
	partitions := make([][][]byte, job.Reducers)
	for p := 0; p < job.Reducers; p++ {
		for w := range perWorker {
			if perWorker[w] != nil {
				partitions[p] = append(partitions[p], perWorker[w][p]...)
			}
		}
	}
	if e.hook != nil {
		e.hook(partitions)
	}

	// Reduce phase: partitions hash to workers (p mod Workers); each
	// worker unseals and reduces its partitions in ascending order.
	reduceBefore := e.cyclesSnapshot()
	perWorkerOut := make([][]KV, len(e.workers))
	reduceErrs := make([]error, len(e.workers))
	sim.ParallelFor(len(e.workers), e.cfg.MaxParallel, func(w int) {
		reduceErrs[w] = e.runReduceTask(job, boxes, partitions, w, perWorkerOut)
	})
	for _, err := range reduceErrs {
		if err != nil {
			return nil, err
		}
	}
	reduceCycles, reduceSerial, reduceCritical := e.cyclesDelta(reduceBefore)

	faultsEnd := e.faultTotal()
	e.stats = PhaseStats{
		WorkerMapCycles:      mapCycles,
		WorkerReduceCycles:   reduceCycles,
		MapSerialCycles:      mapSerial,
		MapCriticalCycles:    mapCritical,
		ReduceSerialCycles:   reduceSerial,
		ReduceCriticalCycles: reduceCritical,
		MapFaults:            faultsAfterMap - faults0,
		ReduceFaults:         faultsEnd - faultsAfterMap,
		Faults:               faultsEnd - faults0,
	}

	out := make(map[string][]byte)
	for _, kvs := range perWorkerOut {
		for _, kv := range kvs {
			out[kv.Key] = kv.Value
		}
	}
	return out, nil
}

// runMapTask maps one split inside worker w's enclave.
func (e *ParallelSecureEngine) runMapTask(job Job, boxes []*cryptbox.Box, split []KV, w int, perWorker [][][][]byte) error {
	wk := e.workers[w]
	out := make([][][]byte, job.Reducers)
	if err := wk.enc.EEnter(); err != nil {
		return err
	}
	defer func() { _ = wk.enc.EExit() }()
	sp := wk.mem.BeginSpan()
	var failed error
	for _, rec := range split {
		// Staging the record into the enclave reads it once.
		sp.Access(wk.stage(len(rec.Key)+len(rec.Value)), len(rec.Key)+len(rec.Value), false)
		job.Map(rec.Key, rec.Value, func(k string, v []byte) {
			if failed != nil {
				return
			}
			p := partition(k, job.Reducers)
			raw, err := json.Marshal(KV{Key: k, Value: v})
			if err != nil {
				failed = err
				return
			}
			sealed, err := boxes[p].Seal(raw, shuffleAAD(job.Name, p))
			if err != nil {
				failed = err
				return
			}
			// The sealed record is assembled in enclave memory before the
			// copy-out to untrusted shuffle storage.
			sp.Access(wk.stage(len(sealed)), len(sealed), true)
			out[p] = append(out[p], sealed)
		})
		if failed != nil {
			break
		}
	}
	sp.End()
	if failed != nil {
		return failed
	}
	perWorker[w] = out
	return nil
}

// runReduceTask unseals and reduces worker w's partitions (p ≡ w mod
// Workers, ascending) inside its enclave.
func (e *ParallelSecureEngine) runReduceTask(job Job, boxes []*cryptbox.Box, partitions [][][]byte, w int, perWorkerOut [][]KV) error {
	owned := 0
	for p := w; p < job.Reducers; p += len(e.workers) {
		owned++
	}
	if owned == 0 {
		return nil
	}
	wk := e.workers[w]
	if err := wk.enc.EEnter(); err != nil {
		return err
	}
	defer func() { _ = wk.enc.EExit() }()
	sp := wk.mem.BeginSpan()
	var out []KV
	var failed error
	for p := w; p < job.Reducers && failed == nil; p += len(e.workers) {
		var recs []KV
		for _, sealed := range partitions[p] {
			// Staging the sealed record into the enclave reads it once.
			sp.Access(wk.stage(len(sealed)), len(sealed), false)
			raw, err := boxes[p].Open(sealed, shuffleAAD(job.Name, p))
			if err != nil {
				failed = fmt.Errorf("%w: partition %d", ErrShuffleTampered, p)
				break
			}
			var kv KV
			if err := json.Unmarshal(raw, &kv); err != nil {
				failed = err
				break
			}
			recs = append(recs, kv)
		}
		if failed != nil {
			break
		}
		grouped := groupByKey(recs)
		for _, k := range sortedKeys(grouped) {
			v, err := job.Reduce(k, grouped[k])
			if err != nil {
				failed = fmt.Errorf("mapreduce %s: reduce %q: %w", job.Name, k, err)
				break
			}
			// The reduced record is written before leaving the enclave.
			sp.Access(wk.stage(len(k)+len(v)), len(k)+len(v), true)
			out = append(out, KV{Key: k, Value: v})
		}
	}
	sp.End()
	if failed != nil {
		return failed
	}
	perWorkerOut[w] = out
	return nil
}

// RunWithShuffleHook is Run with the hook installed for one execution.
func (e *ParallelSecureEngine) RunWithShuffleHook(job Job, hook ShuffleHook) (map[string][]byte, error) {
	old := e.hook
	e.hook = hook
	defer func() { e.hook = old }()
	return e.Run(job)
}
