package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

// smallWorkerPlatform shrinks each worker's platform so map/reduce working
// sets exercise the cache and pager.
func smallWorkerPlatform() enclave.Config {
	return enclave.Config{
		EPCBytes:         128 * 4096,
		EPCReservedBytes: 16 * 4096,
		LLCBytes:         32 << 10,
		LLCWays:          4,
		LineSize:         64,
		PageSize:         4096,
	}
}

func parallelEngine(t testing.TB, workers, maxParallel int) *ParallelSecureEngine {
	t.Helper()
	var root cryptbox.Key
	root[0] = 0x44
	e, err := NewParallelSecureEngine(root, ParallelConfig{
		Workers:     workers,
		MaxParallel: maxParallel,
		Platform:    smallWorkerPlatform(),
		WorkerBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// parallelTestDocs is a deterministic corpus big enough that every worker
// count in {1,2,4,8} gets a non-trivial split.
func parallelTestDocs() map[string]string {
	docs := make(map[string]string)
	for i := 0; i < 64; i++ {
		docs[fmt.Sprintf("doc-%03d", i)] = fmt.Sprintf(
			"alpha beta gamma w%d w%d shared tail", i%7, i%13)
	}
	return docs
}

// TestParallelMatchesPlainAndSecureAcrossWorkerCounts pins the output
// property: for every worker count, the parallel engine's results equal
// both the plain reference engine and the sequential secure engine.
func TestParallelMatchesPlainAndSecureAcrossWorkerCounts(t *testing.T) {
	docs := parallelTestDocs()
	plain, err := Run(wordCountJob(docs))
	if err != nil {
		t.Fatal(err)
	}
	secure, err := secureEngine(t).Run(wordCountJob(docs))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			out, err := parallelEngine(t, workers, 0).Run(wordCountJob(docs))
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(plain) {
				t.Fatalf("parallel %d keys, plain %d", len(out), len(plain))
			}
			for k, v := range plain {
				if !bytes.Equal(out[k], v) {
					t.Fatalf("key %s: parallel %q plain %q", k, out[k], v)
				}
				if !bytes.Equal(secure[k], v) {
					t.Fatalf("key %s: secure %q plain %q", k, secure[k], v)
				}
			}
		})
	}
}

// TestParallelDeterministicCyclesAcrossParallelism pins the concurrency
// contract: for a fixed worker count (topology), per-worker map and reduce
// cycle totals and fault counts are bit-identical at every MaxParallel
// (execution parallelism) and across repeated runs.
func TestParallelDeterministicCyclesAcrossParallelism(t *testing.T) {
	docs := parallelTestDocs()
	// One Job value shared across runs: wordCountJob iterates a Go map, so
	// rebuilding it would shuffle the input order — a different workload,
	// not a determinism failure.
	job := wordCountJob(docs)
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := func(maxParallel int) (PhaseStats, map[string][]byte) {
				e := parallelEngine(t, workers, maxParallel)
				out, err := e.Run(job)
				if err != nil {
					t.Fatal(err)
				}
				return e.Stats(), out
			}
			base, baseOut := run(1)
			if base.MapSerialCycles == 0 || base.ReduceSerialCycles == 0 {
				t.Fatal("phases charged no cycles")
			}
			if base.MapCriticalCycles > base.MapSerialCycles ||
				base.ReduceCriticalCycles > base.ReduceSerialCycles {
				t.Fatal("critical path exceeds serial sum")
			}
			for _, mp := range []int{2, workers, workers * 2} {
				st, out := run(mp)
				for w := range st.WorkerMapCycles {
					if st.WorkerMapCycles[w] != base.WorkerMapCycles[w] {
						t.Fatalf("maxParallel=%d worker %d map cycles %d, want %d",
							mp, w, st.WorkerMapCycles[w], base.WorkerMapCycles[w])
					}
					if st.WorkerReduceCycles[w] != base.WorkerReduceCycles[w] {
						t.Fatalf("maxParallel=%d worker %d reduce cycles %d, want %d",
							mp, w, st.WorkerReduceCycles[w], base.WorkerReduceCycles[w])
					}
				}
				if st.Faults != base.Faults {
					t.Fatalf("maxParallel=%d faults %d, want %d", mp, st.Faults, base.Faults)
				}
				if len(out) != len(baseOut) {
					t.Fatalf("maxParallel=%d output size drifted", mp)
				}
				for k, v := range baseOut {
					if !bytes.Equal(out[k], v) {
						t.Fatalf("maxParallel=%d key %s drifted", mp, k)
					}
				}
			}
		})
	}
}

// TestParallelShuffleIsCiphertext: intermediate records must be opaque in
// the shuffle, exactly as with the sequential secure engine.
func TestParallelShuffleIsCiphertext(t *testing.T) {
	e := parallelEngine(t, 4, 0)
	job := wordCountJob(map[string]string{"d": "SECRETWORD SECRETWORD"})
	var sawPlaintext bool
	if _, err := e.RunWithShuffleHook(job, func(parts [][][]byte) {
		for _, part := range parts {
			for _, rec := range part {
				if bytes.Contains(rec, []byte("SECRETWORD")) {
					sawPlaintext = true
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sawPlaintext {
		t.Fatal("intermediate data visible in shuffle storage")
	}
}

// TestParallelShuffleTamperDetected: a flipped sealed record fails
// authentication in the reduce phase.
func TestParallelShuffleTamperDetected(t *testing.T) {
	e := parallelEngine(t, 4, 0)
	job := wordCountJob(map[string]string{"d": "w1 w2 w3 w4 w5"})
	_, err := e.RunWithShuffleHook(job, func(parts [][][]byte) {
		for _, part := range parts {
			if len(part) > 0 {
				part[0][len(part[0])-1] ^= 1
				return
			}
		}
	})
	if !errors.Is(err, ErrShuffleTampered) {
		t.Fatalf("err = %v, want ErrShuffleTampered", err)
	}
}

// TestParallelShuffleInterchangeable: the two secure engines derive the
// same per-partition keys from one root, so a shuffle sealed by one is
// readable by the other — they implement the same protocol.
func TestParallelShuffleInterchangeable(t *testing.T) {
	var root cryptbox.Key
	root[0] = 0x44
	e := parallelEngine(t, 2, 0)
	job := wordCountJob(map[string]string{"d": "x y z"})
	var captured [][][]byte
	if _, err := e.RunWithShuffleHook(job, func(parts [][][]byte) {
		captured = parts
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for p, part := range captured {
		for _, sealed := range part {
			key, err := cryptbox.DeriveKey(root, fmt.Sprintf("shuffle-partition-%d", p))
			if err != nil {
				t.Fatal(err)
			}
			box, err := cryptbox.NewBox(key)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := box.Open(sealed, shuffleAAD(job.Name, p)); err != nil {
				t.Fatalf("partition %d record not openable with derived key: %v", p, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no sealed records captured")
	}
}

// TestParallelReduceErrorPropagates: a reducer failure surfaces with job
// context, deterministically.
func TestParallelReduceErrorPropagates(t *testing.T) {
	e := parallelEngine(t, 4, 0)
	job := wordCountJob(map[string]string{"d": "x"})
	job.Reduce = func(key string, values [][]byte) ([]byte, error) {
		return nil, errors.New("reduce exploded")
	}
	if _, err := e.Run(job); err == nil || !bytes.Contains([]byte(err.Error()), []byte("reduce exploded")) {
		t.Fatalf("err = %v", err)
	}
}

// TestParallelEmptyInput: an empty job yields an empty result and charges
// no map-phase record costs beyond the fixed enclave entries.
func TestParallelEmptyInput(t *testing.T) {
	e := parallelEngine(t, 4, 0)
	out, err := e.Run(wordCountJob(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty input produced %d keys", len(out))
	}
}

// TestParallelSpeedupReported sanity-checks the scaling statement on a
// skewed workload: serial >= critical, and with several workers carrying
// similar load the speedup exceeds 1.
func TestParallelSpeedupReported(t *testing.T) {
	docs := make(map[string]string)
	for i := 0; i < 128; i++ {
		docs[fmt.Sprintf("d%03d", i)] = "spread the load across every worker evenly now"
	}
	e := parallelEngine(t, 4, 0)
	if _, err := e.Run(wordCountJob(docs)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.MapSpeedup() <= 1.0 {
		t.Fatalf("map speedup %.3f, want > 1 on a balanced 4-worker load", st.MapSpeedup())
	}
	if st.ReduceSpeedup() < 1.0 {
		t.Fatalf("reduce speedup %.3f < 1", st.ReduceSpeedup())
	}
	var sum sim.Cycles
	for _, c := range st.WorkerMapCycles {
		sum += c
	}
	if sum != st.MapSerialCycles {
		t.Fatalf("map serial %d != worker sum %d", st.MapSerialCycles, sum)
	}
}
