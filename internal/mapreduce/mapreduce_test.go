package mapreduce

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// wordCountJob is the canonical test job.
func wordCountJob(docs map[string]string) Job {
	var input []KV
	for k, v := range docs {
		input = append(input, KV{Key: k, Value: []byte(v)})
	}
	return Job{
		Name:  "wordcount",
		Input: input,
		Map: func(key string, value []byte, emit func(string, []byte)) {
			for _, w := range strings.Fields(string(value)) {
				emit(w, []byte{1})
			}
		},
		Reduce: func(key string, values [][]byte) ([]byte, error) {
			n := 0
			for _, v := range values {
				n += int(v[0])
			}
			return []byte(strconv.Itoa(n)), nil
		},
	}
}

func TestWordCount(t *testing.T) {
	out, err := Run(wordCountJob(map[string]string{
		"d1": "the quick brown fox",
		"d2": "the lazy dog and the fox",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if string(out["the"]) != "3" || string(out["fox"]) != "2" || string(out["dog"]) != "1" {
		t.Fatalf("out = %v", out)
	}
}

func TestEmptyInput(t *testing.T) {
	job := wordCountJob(nil)
	out, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty input produced %d keys", len(out))
	}
}

func TestMissingFuncsRejected(t *testing.T) {
	if _, err := Run(Job{}); !errors.Is(err, ErrNoJob) {
		t.Fatalf("err = %v, want ErrNoJob", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	job := wordCountJob(map[string]string{"d": "x"})
	job.Reduce = func(key string, values [][]byte) ([]byte, error) {
		return nil, errors.New("reduce exploded")
	}
	if _, err := Run(job); err == nil || !strings.Contains(err.Error(), "reduce exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestPartitionStable(t *testing.T) {
	for _, key := range []string{"a", "meter-17", "zone/4"} {
		p1, p2 := partition(key, 7), partition(key, 7)
		if p1 != p2 {
			t.Fatal("partition not deterministic")
		}
		if p1 < 0 || p1 >= 7 {
			t.Fatalf("partition out of range: %d", p1)
		}
	}
}

func TestManyWorkersManyReducers(t *testing.T) {
	docs := make(map[string]string)
	for i := 0; i < 200; i++ {
		docs[fmt.Sprintf("d%d", i)] = "alpha beta gamma delta"
	}
	job := wordCountJob(docs)
	job.Workers = 8
	job.Reducers = 16
	out, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"alpha", "beta", "gamma", "delta"} {
		if string(out[w]) != "200" {
			t.Fatalf("%s = %s, want 200", w, out[w])
		}
	}
}

func secureEngine(t *testing.T) *SecureEngine {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	var root cryptbox.Key
	root[0] = 0x44
	e, err := NewSecureEngine(p, 4, root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestSecureMatchesPlain(t *testing.T) {
	docs := map[string]string{
		"d1": "a b c a",
		"d2": "b c d",
		"d3": "a a a e",
	}
	plain, err := Run(wordCountJob(docs))
	if err != nil {
		t.Fatal(err)
	}
	secure, err := secureEngine(t).Run(wordCountJob(docs))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(secure) {
		t.Fatalf("plain %d keys, secure %d keys", len(plain), len(secure))
	}
	for k, v := range plain {
		if !bytes.Equal(secure[k], v) {
			t.Fatalf("key %s: plain %q secure %q", k, v, secure[k])
		}
	}
}

func TestSecureShuffleIsCiphertext(t *testing.T) {
	e := secureEngine(t)
	job := wordCountJob(map[string]string{"d": "SECRETWORD SECRETWORD"})
	var sawPlaintext bool
	if _, err := e.RunWithShuffleHook(job, func(parts [][][]byte) {
		for _, part := range parts {
			for _, rec := range part {
				if bytes.Contains(rec, []byte("SECRETWORD")) {
					sawPlaintext = true
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sawPlaintext {
		t.Fatal("intermediate data visible in shuffle storage")
	}
}

func TestSecureShuffleTamperDetected(t *testing.T) {
	e := secureEngine(t)
	job := wordCountJob(map[string]string{"d": "w1 w2 w3 w4 w5"})
	_, err := e.RunWithShuffleHook(job, func(parts [][][]byte) {
		for _, part := range parts {
			if len(part) > 0 {
				part[0][len(part[0])-1] ^= 1
				return
			}
		}
	})
	if !errors.Is(err, ErrShuffleTampered) {
		t.Fatalf("err = %v, want ErrShuffleTampered", err)
	}
}

func TestSecureShuffleCrossPartitionMoveDetected(t *testing.T) {
	e := secureEngine(t)
	job := wordCountJob(map[string]string{"d": "w1 w2 w3 w4 w5 w6 w7 w8"})
	_, err := e.RunWithShuffleHook(job, func(parts [][][]byte) {
		// Move a sealed record from one partition to another: the AAD
		// binds the partition, so the reducer must reject it.
		var from, to = -1, -1
		for i, p := range parts {
			if len(p) > 0 && from == -1 {
				from = i
			} else if from != -1 && i != from {
				to = i
				break
			}
		}
		if from == -1 || to == -1 {
			return
		}
		parts[to] = append(parts[to], parts[from][0])
	})
	if err != nil && !errors.Is(err, ErrShuffleTampered) {
		t.Fatalf("err = %v, want ErrShuffleTampered or nil-skip", err)
	}
	if err == nil {
		t.Skip("workload landed in one partition; nothing to move")
	}
}

func TestSecureSmartGridAggregation(t *testing.T) {
	// Domain job: per-zone consumption sums over sealed meter readings.
	var input []KV
	for zone := 0; zone < 4; zone++ {
		for m := 0; m < 25; m++ {
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], uint64(100+zone))
			input = append(input, KV{Key: fmt.Sprintf("zone%d/meter%d", zone, m), Value: v[:]})
		}
	}
	job := Job{
		Name:  "zone-sum",
		Input: input,
		Map: func(key string, value []byte, emit func(string, []byte)) {
			zone := strings.SplitN(key, "/", 2)[0]
			emit(zone, value)
		},
		Reduce: func(key string, values [][]byte) ([]byte, error) {
			var sum uint64
			for _, v := range values {
				sum += binary.LittleEndian.Uint64(v)
			}
			var out [8]byte
			binary.LittleEndian.PutUint64(out[:], sum)
			return out[:], nil
		},
		Reducers: 3,
	}
	out, err := secureEngine(t).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d zones", len(out))
	}
	if got := binary.LittleEndian.Uint64(out["zone2"]); got != 25*102 {
		t.Fatalf("zone2 sum = %d, want %d", got, 25*102)
	}
}

func TestSecureEngineChargesEnclaveCycles(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	var root cryptbox.Key
	e, err := NewSecureEngine(p, 2, root)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := e.workers[0].Memory().Cycles()
	if _, err := e.Run(wordCountJob(map[string]string{"d": "a b c"})); err != nil {
		t.Fatal(err)
	}
	if e.workers[0].Memory().Cycles() <= before {
		t.Fatal("secure run charged no enclave cycles")
	}
}

func TestSplitInput(t *testing.T) {
	input := make([]KV, 10)
	splits := splitInput(input, 3)
	total := 0
	for _, s := range splits {
		total += len(s)
	}
	if total != 10 {
		t.Fatalf("splits cover %d of 10", total)
	}
	if got := splitInput(nil, 4); got != nil {
		t.Fatal("empty input produced splits")
	}
}
