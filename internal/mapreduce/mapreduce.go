// Package mapreduce implements SecureCloud's "map/reduce based
// computations" building block (paper §III-B(3)): a small map/reduce
// framework whose secure engine runs mapper and reducer tasks inside
// enclaves and seals all intermediate (shuffle) data, so the untrusted
// cloud sees neither records nor intermediate aggregates.
//
// The plain engine is the functional reference; the secure engine must
// produce identical results while keeping plaintext inside enclaves only —
// cross-checked by the test suite.
package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// KV is one key/value record.
type KV struct {
	Key   string
	Value []byte
}

// MapFunc transforms one input record into intermediate records.
type MapFunc func(key string, value []byte, emit func(key string, value []byte))

// ReduceFunc folds all intermediate values of one key.
type ReduceFunc func(key string, values [][]byte) ([]byte, error)

// Job describes a map/reduce computation.
type Job struct {
	Name     string
	Input    []KV
	Map      MapFunc
	Reduce   ReduceFunc
	Reducers int // number of shuffle partitions (default 4)
	Workers  int // parallel mappers (default 4)
}

// Errors returned by the engines.
var (
	ErrNoJob = errors.New("mapreduce: job needs Map and Reduce functions")
)

func (j *Job) defaults() error {
	if j.Map == nil || j.Reduce == nil {
		return ErrNoJob
	}
	if j.Reducers <= 0 {
		j.Reducers = 4
	}
	if j.Workers <= 0 {
		j.Workers = 4
	}
	return nil
}

// partition assigns an intermediate key to a reducer.
func partition(key string, reducers int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(reducers))
}

// Run executes the job in-process without enclaves — the functional
// reference implementation.
func Run(job Job) (map[string][]byte, error) {
	if err := job.defaults(); err != nil {
		return nil, err
	}
	// Map phase: parallel workers over input splits.
	parts := make([][]KV, job.Reducers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	splits := splitInput(job.Input, job.Workers)
	mapErr := make([]error, len(splits))
	for w, split := range splits {
		wg.Add(1)
		go func(w int, split []KV) {
			defer wg.Done()
			local := make([][]KV, job.Reducers)
			for _, rec := range split {
				job.Map(rec.Key, rec.Value, func(k string, v []byte) {
					p := partition(k, job.Reducers)
					local[p] = append(local[p], KV{Key: k, Value: append([]byte(nil), v...)})
				})
			}
			mu.Lock()
			for p := range local {
				parts[p] = append(parts[p], local[p]...)
			}
			mu.Unlock()
		}(w, split)
	}
	wg.Wait()
	for _, err := range mapErr {
		if err != nil {
			return nil, err
		}
	}
	// Reduce phase.
	out := make(map[string][]byte)
	for p := 0; p < job.Reducers; p++ {
		grouped := groupByKey(parts[p])
		for _, key := range sortedKeys(grouped) {
			v, err := job.Reduce(key, grouped[key])
			if err != nil {
				return nil, fmt.Errorf("mapreduce %s: reduce %q: %w", job.Name, key, err)
			}
			mu.Lock()
			out[key] = v
			mu.Unlock()
		}
	}
	return out, nil
}

// splitInput partitions input into n contiguous splits.
func splitInput(input []KV, n int) [][]KV {
	if n > len(input) {
		n = len(input)
	}
	if n == 0 {
		return nil
	}
	var out [][]KV
	size := (len(input) + n - 1) / n
	for lo := 0; lo < len(input); lo += size {
		hi := lo + size
		if hi > len(input) {
			hi = len(input)
		}
		out = append(out, input[lo:hi])
	}
	return out
}

func groupByKey(recs []KV) map[string][][]byte {
	g := make(map[string][][]byte)
	for _, r := range recs {
		g[r.Key] = append(g[r.Key], r.Value)
	}
	return g
}

func sortedKeys(m map[string][][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
