package loadgen

import (
	"reflect"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket <=10
	}
	for i := 0; i < 9; i++ {
		h.Observe(50) // bucket <=100
	}
	h.Observe(5000) // overflow
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %d, want 10", q)
	}
	if q := h.Quantile(0.95); q != 100 {
		t.Fatalf("p95 = %d, want 100", q)
	}
	if q := h.Quantile(1.0); q != 5000 {
		t.Fatalf("p100 = %d, want observed max 5000", q)
	}
	if h.Max() != 5000 {
		t.Fatalf("max %d", h.Max())
	}
	want := []uint64{90, 9, 0, 1}
	if got := h.BucketCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("buckets %v, want %v", got, want)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(SizeBounds())
	b := NewHistogram(SizeBounds())
	c := NewHistogram(SizeBounds())
	for i := int64(1); i <= 100; i++ {
		a.Observe(i * 17)
		if i%2 == 0 {
			b.Observe(i * 17)
		} else {
			c.Observe(i * 17)
		}
	}
	b.Merge(c)
	if !reflect.DeepEqual(a.BucketCounts(), b.BucketCounts()) {
		t.Fatalf("merge not exact: %v vs %v", a.BucketCounts(), b.BucketCounts())
	}
	if a.Max() != b.Max() || a.Count() != b.Count() {
		t.Fatal("merge lost count or max")
	}
}

// echoDriver answers every request on the step after it was sent, shedding
// every shedEvery-th request.
type echoDriver struct {
	nextID    uint64
	pending   map[int][]Reply
	inflight  map[int][]Reply
	shedEvery int
	sends     uint64
}

func newEchoDriver(shedEvery int) *echoDriver {
	return &echoDriver{pending: make(map[int][]Reply), inflight: make(map[int][]Reply), shedEvery: shedEvery}
}

func (d *echoDriver) Send(client int, tenant string, reqs []Request) ([]uint64, error) {
	ids := make([]uint64, len(reqs))
	for i := range reqs {
		d.nextID++
		d.sends++
		ids[i] = d.nextID
		shed := d.shedEvery > 0 && d.sends%uint64(d.shedEvery) == 0
		d.inflight[client] = append(d.inflight[client], Reply{ID: d.nextID, Shed: shed})
	}
	return ids, nil
}

func (d *echoDriver) Poll(client int) ([]Reply, error) {
	out := d.pending[client]
	delete(d.pending, client)
	return out, nil
}

func (d *echoDriver) Step() error {
	for c, reps := range d.inflight {
		d.pending[c] = append(d.pending[c], reps...)
	}
	d.inflight = make(map[int][]Reply)
	return nil
}

func testSpec() Spec {
	var tick int64
	return Spec{
		Clients:    4,
		Seed:       42,
		Keys:       16,
		Tenants:    []string{"a", "b"},
		PayloadMin: 32,
		PayloadMax: 512,
		Phases: []Phase{
			{Name: "warmup", Ticks: 3, PerClient: 2},
			{Name: "inject", Ticks: 5, PerClient: 4},
			{Name: "recover", Ticks: 3, PerClient: 1},
		},
		DrainTicks: 2,
		Now:        func() int64 { tick += 1500; return tick },
	}
}

func TestRunDeterministic(t *testing.T) {
	r1, err := Run(testSpec(), newEchoDriver(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testSpec(), newEchoDriver(5))
	if err != nil {
		t.Fatal(err)
	}
	wantSent := uint64(4 * (3*2 + 5*4 + 3*1))
	if r1.Sent != wantSent {
		t.Fatalf("sent %d, want %d", r1.Sent, wantSent)
	}
	if r1.Served+r1.Shed != r1.Sent || r1.Lost != 0 {
		t.Fatalf("served %d + shed %d != sent %d (lost %d)", r1.Served, r1.Shed, r1.Sent, r1.Lost)
	}
	if r1.Shed == 0 {
		t.Fatal("expected some shed replies")
	}
	if r1.Sent != r2.Sent || r1.Served != r2.Served || r1.Shed != r2.Shed || r1.BytesSent != r2.BytesSent {
		t.Fatalf("counters differ across identical runs: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(r1.Sizes.BucketCounts(), r2.Sizes.BucketCounts()) {
		t.Fatal("size histograms differ across identical runs")
	}
	if !reflect.DeepEqual(r1.PhaseSent, r2.PhaseSent) {
		t.Fatal("phase counters differ across identical runs")
	}
	if r1.PhaseSent["inject"] != uint64(4*5*4) {
		t.Fatalf("inject phase sent %d", r1.PhaseSent["inject"])
	}
	// Latency is wall-clock: with the injected clock every reply is
	// observed some fixed number of ticks after its send.
	if r1.Latency.Count() != r1.Sent {
		t.Fatalf("latency observations %d, want %d", r1.Latency.Count(), r1.Sent)
	}
}

func TestRunValidatesSpec(t *testing.T) {
	bad := []Spec{
		{Clients: 0, Keys: 1, PayloadMin: 1, PayloadMax: 1},
		{Clients: 1, Keys: 0, PayloadMin: 1, PayloadMax: 1},
		{Clients: 1, Keys: 1, PayloadMin: 8, PayloadMax: 4},
	}
	for i, spec := range bad {
		if _, err := Run(spec, newEchoDriver(0)); err == nil {
			t.Fatalf("spec %d should fail validation", i)
		}
	}
}

// openLoopSpec is testSpec with open-loop pacing under an injected clock:
// 4 clients at an aggregate 800 RPS over 10ms ticks — 2 requests per
// client per tick at multiplier 1, 8 during the 4× inject phase.
func openLoopSpec(rps float64) Spec {
	spec := testSpec()
	spec.OpenLoop = &OpenLoopSpec{TargetRPS: rps, TickMillis: 10}
	return spec
}

func TestRunOpenLoopDeterministicRate(t *testing.T) {
	r1, err := Run(openLoopSpec(800), newEchoDriver(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(openLoopSpec(800), newEchoDriver(5))
	if err != nil {
		t.Fatal(err)
	}
	// 800 RPS * 10ms / 4 clients = 2 per client per tick at multiplier 1:
	// warmup 3 ticks * 2 * 2, inject 5 ticks * 8 * 4... PerClient scales the
	// rate, so the phase plan is (3*2*2 + 5*2*4 + 3*2*1) per client.
	wantSent := uint64(4 * (3*2*2 + 5*2*4 + 3*2*1))
	if r1.Sent != wantSent {
		t.Fatalf("sent %d, want %d", r1.Sent, wantSent)
	}
	if r1.Sent != r2.Sent || r1.Served != r2.Served || r1.Shed != r2.Shed || r1.BytesSent != r2.BytesSent {
		t.Fatalf("open-loop counters differ across identical runs: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(r1.Sizes.BucketCounts(), r2.Sizes.BucketCounts()) {
		t.Fatal("open-loop size histograms differ across identical runs")
	}
	if r1.Lost != 0 || r1.Served+r1.Shed != r1.Sent {
		t.Fatalf("open-loop run lost replies: %+v", r1)
	}
}

// TestRunOpenLoopFractionalCredit pins the credit accumulator: a rate that
// works out to a fractional per-tick count must inject floor(rate*ticks)
// requests per client — fractions carry across ticks instead of rounding
// away (or up) every tick.
func TestRunOpenLoopFractionalCredit(t *testing.T) {
	var tick int64
	spec := Spec{
		Clients: 4, Seed: 7, Keys: 8, PayloadMin: 16, PayloadMax: 64,
		Phases:   []Phase{{Name: "steady", Ticks: 40, PerClient: 1}},
		OpenLoop: &OpenLoopSpec{TargetRPS: 350, TickMillis: 3},
		Now:      func() int64 { tick += 1000; return tick },
	}
	r, err := Run(spec, newEchoDriver(0))
	if err != nil {
		t.Fatal(err)
	}
	// 350 RPS * 3ms / 4 clients = 0.2625 per client per tick; over 40
	// ticks the credit sums to 10.5, so each client sends exactly 10.
	if want := uint64(4 * 10); r.Sent != want {
		t.Fatalf("sent %d, want %d", r.Sent, want)
	}
}

func TestRunOpenLoopValidatesRate(t *testing.T) {
	spec := testSpec()
	spec.OpenLoop = &OpenLoopSpec{TargetRPS: 0}
	if _, err := Run(spec, newEchoDriver(0)); err == nil {
		t.Fatal("zero target RPS should fail validation")
	}
}
