// Package loadgen is the deterministic closed-loop load harness of the
// wire front end: a fixed client population drives a Driver (the
// HTTP-fronted plane, or the in-process plane for contrast) in lockstep
// ticks through warmup/inject/recover phases, with a seeded key/tenant/
// payload mix. Counters and payload-size bucket counts are pure functions
// of the spec (gated by bench-check); wall-clock latency quantiles are
// informational — the host-speed figures the sim-cycle metrics can't see.
package loadgen

import "fmt"

// Histogram is a fixed-bucket histogram with exponential upper bounds.
// Observations land in the first bucket whose bound is >= the value; the
// final bucket is unbounded. Bucket counts are a pure function of the
// observed values, so two histograms fed the same observations are
// identical and Merge is exact (no rebinning).
type Histogram struct {
	bounds []int64
	counts []uint64
	total  uint64
	max    int64
	sum    uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (plus an implicit overflow bucket).
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("loadgen: bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// LatencyBounds is the fixed latency bucket ladder: 1µs to ~4.3s in
// doublings (values in nanoseconds).
func LatencyBounds() []int64 {
	bounds := make([]int64, 23)
	b := int64(1000)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// SizeBounds is the fixed payload-size ladder: 16 B to 64 KiB in
// doublings (values in bytes).
func SizeBounds() []int64 {
	bounds := make([]int64, 13)
	b := int64(16)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
}

// Merge folds other (same bucket ladder) into h.
func (h *Histogram) Merge(other *Histogram) {
	if len(other.counts) != len(h.counts) {
		panic("loadgen: merging histograms with different bucket ladders")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the upper bound of the bucket where the cumulative
// count reaches q of the total — the standard histogram-quantile estimate.
// Overflow-bucket hits report the observed max. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	want := uint64(float64(h.total) * q)
	if want < 1 {
		want = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= want {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// BucketCounts returns a copy of the per-bucket counts (last = overflow) —
// the deterministic figures the bench gate pins.
func (h *Histogram) BucketCounts() []uint64 {
	return append([]uint64(nil), h.counts...)
}
