package loadgen

import (
	"fmt"
	"math/rand"
	"time"
)

// Request is one generated plane request.
type Request struct {
	Key  string
	Body []byte
}

// Reply is one observed plane reply.
type Reply struct {
	ID   uint64
	Shed bool
}

// Driver is the closed-loop system under test. Run calls Send for each
// client in client order within a tick, then Step to advance the serving
// plane, then Poll for each client — so a Driver backed by the simulated
// plane sees exactly one deterministic arrival order per tick.
type Driver interface {
	// Send submits reqs on behalf of client and returns the assigned
	// request IDs in submission order.
	Send(client int, tenant string, reqs []Request) ([]uint64, error)
	// Poll drains the replies currently available to client.
	Poll(client int) ([]Reply, error)
	// Step advances the serving plane by one tick.
	Step() error
}

// Phase is one stretch of the workload with a fixed per-client rate.
type Phase struct {
	Name      string
	Ticks     int
	PerClient int // requests per client per tick
}

// OpenLoopSpec switches Run from closed-loop (a fixed request count per
// client per tick, however long the plane takes) to open-loop pacing: the
// generator injects at a target aggregate arrival rate, independent of how
// fast replies come back — the load a latency-under-load measurement needs.
//
// In open-loop mode a phase's PerClient becomes a rate multiplier:
// PerClient 1 injects at TargetRPS, PerClient 4 at 4×TargetRPS, and
// PerClient 0 stays a quiet phase. Per-tick counts come from deterministic
// per-client credit accumulation, so the request stream — counts, keys,
// payload bytes — is still a pure function of the spec. Only the wall-clock
// tick pacing (sleeping to tick boundaries when no Now override is
// installed) touches the host clock.
type OpenLoopSpec struct {
	// TargetRPS is the aggregate arrival rate across all clients at
	// multiplier 1.
	TargetRPS float64
	// TickMillis is the simulated duration of one tick (default 5ms): it
	// converts TargetRPS into per-tick credit and, when Run is pacing the
	// real clock, sets the tick deadline spacing.
	TickMillis int
}

// Spec pins the workload. Every field feeds the seeded generators, so two
// runs of the same spec against deterministic drivers produce identical
// request streams — byte for byte.
type Spec struct {
	Clients    int
	Seed       int64
	Keys       int      // distinct routing keys, k0000..k{Keys-1}
	Tenants    []string // client i sends as Tenants[i%len(Tenants)]; empty = untenanted
	PayloadMin int
	PayloadMax int
	Phases     []Phase
	DrainTicks int // post-phase ticks with no sends, to let replies drain

	// OpenLoop, when set, paces sends at a target arrival rate instead of
	// a fixed per-tick count. See OpenLoopSpec.
	OpenLoop *OpenLoopSpec

	// Now overrides the wall clock for latency measurement (tests).
	Now func() int64
}

// Result aggregates one run. Sent/Served/Shed/BytesSent/Sizes/PhaseSent
// are deterministic under a fixed spec; Latency is wall-clock and
// informational only.
type Result struct {
	Sent      uint64
	Served    uint64
	Shed      uint64
	Lost      uint64 // sent but never answered within the run
	BytesSent uint64
	PhaseSent map[string]uint64
	Sizes     *Histogram // payload bytes, deterministic
	Latency   *Histogram // wall-clock ns, informational
	Elapsed   time.Duration
}

// Run drives the spec against d in lockstep ticks and aggregates the
// outcome. Sends within a tick are sequential in client order; replies are
// matched to sends by request ID for latency accounting.
func Run(spec Spec, d Driver) (*Result, error) {
	if spec.Clients <= 0 {
		return nil, fmt.Errorf("loadgen: spec needs at least one client")
	}
	if spec.Keys <= 0 {
		return nil, fmt.Errorf("loadgen: spec needs at least one key")
	}
	if spec.PayloadMin <= 0 || spec.PayloadMax < spec.PayloadMin {
		return nil, fmt.Errorf("loadgen: bad payload range [%d,%d]", spec.PayloadMin, spec.PayloadMax)
	}
	if spec.OpenLoop != nil && spec.OpenLoop.TargetRPS <= 0 {
		return nil, fmt.Errorf("loadgen: open-loop spec needs a positive target RPS")
	}
	now := spec.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}

	// Open-loop pacing state: deterministic per-client credit (fractional
	// requests carried across ticks) plus the real-clock tick deadline.
	tickMillis := 5
	if spec.OpenLoop != nil && spec.OpenLoop.TickMillis > 0 {
		tickMillis = spec.OpenLoop.TickMillis
	}
	var credit []float64
	if spec.OpenLoop != nil {
		credit = make([]float64, spec.Clients)
	}
	// sendCount is the number of requests client injects this tick: the
	// phase's fixed PerClient in closed-loop mode, the accrued open-loop
	// credit (PerClient acting as a rate multiplier) otherwise.
	sendCount := func(client int, ph Phase) int {
		if spec.OpenLoop == nil || ph.PerClient == 0 {
			return ph.PerClient
		}
		credit[client] += spec.OpenLoop.TargetRPS * float64(ph.PerClient) *
			float64(tickMillis) / 1000 / float64(spec.Clients)
		n := int(credit[client])
		credit[client] -= float64(n)
		return n
	}
	wallStart := time.Now()
	tickIdx := 0
	// pace sleeps to the next open-loop tick boundary — arrival times stay
	// anchored to the generator's clock, not the plane's service rate. Only
	// active when the real clock is in play; under a Now override (tests,
	// simulation) the stream is already fully deterministic.
	pace := func() {
		tickIdx++
		if spec.OpenLoop == nil || spec.Now != nil {
			return
		}
		deadline := wallStart.Add(time.Duration(tickIdx) * time.Duration(tickMillis) * time.Millisecond)
		if d := time.Until(deadline); d > 0 {
			time.Sleep(d)
		}
	}

	rngs := make([]*rand.Rand, spec.Clients)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(spec.Seed + int64(i)*7919))
	}
	tenantOf := func(client int) string {
		if len(spec.Tenants) == 0 {
			return ""
		}
		return spec.Tenants[client%len(spec.Tenants)]
	}

	res := &Result{
		PhaseSent: make(map[string]uint64),
		Sizes:     NewHistogram(SizeBounds()),
		Latency:   NewHistogram(LatencyBounds()),
	}
	// Request IDs are per-driver-client counters, so the pending map is
	// keyed by (client, id) — IDs from different clients may collide.
	type pendingKey struct {
		client int
		id     uint64
	}
	sentAt := make(map[pendingKey]int64) // (client, request ID) -> send wall-clock
	start := now()

	poll := func(client int) error {
		replies, err := d.Poll(client)
		if err != nil {
			return fmt.Errorf("loadgen: poll client %d: %w", client, err)
		}
		t := now()
		for _, rep := range replies {
			k := pendingKey{client: client, id: rep.ID}
			if at, ok := sentAt[k]; ok {
				res.Latency.Observe(t - at)
				delete(sentAt, k)
			}
			if rep.Shed {
				res.Shed++
			} else {
				res.Served++
			}
		}
		return nil
	}

	for _, ph := range spec.Phases {
		for tick := 0; tick < ph.Ticks; tick++ {
			for client := 0; client < spec.Clients; client++ {
				n := sendCount(client, ph)
				if n == 0 {
					continue
				}
				rng := rngs[client]
				reqs := make([]Request, n)
				for i := range reqs {
					size := spec.PayloadMin + rng.Intn(spec.PayloadMax-spec.PayloadMin+1)
					body := make([]byte, size)
					for j := range body {
						body[j] = byte(rng.Intn(256))
					}
					reqs[i] = Request{Key: fmt.Sprintf("k%04d", rng.Intn(spec.Keys)), Body: body}
					res.Sizes.Observe(int64(size))
					res.BytesSent += uint64(size)
				}
				t := now()
				ids, err := d.Send(client, tenantOf(client), reqs)
				if err != nil {
					return nil, fmt.Errorf("loadgen: send client %d: %w", client, err)
				}
				if len(ids) != len(reqs) {
					return nil, fmt.Errorf("loadgen: client %d sent %d requests, got %d ids", client, len(reqs), len(ids))
				}
				for _, id := range ids {
					sentAt[pendingKey{client: client, id: id}] = t
				}
				res.Sent += uint64(len(reqs))
				res.PhaseSent[ph.Name] += uint64(len(reqs))
			}
			if err := d.Step(); err != nil {
				return nil, fmt.Errorf("loadgen: step: %w", err)
			}
			for client := 0; client < spec.Clients; client++ {
				if err := poll(client); err != nil {
					return nil, err
				}
			}
			pace()
		}
	}
	for tick := 0; tick < spec.DrainTicks; tick++ {
		if err := d.Step(); err != nil {
			return nil, fmt.Errorf("loadgen: drain step: %w", err)
		}
		for client := 0; client < spec.Clients; client++ {
			if err := poll(client); err != nil {
				return nil, err
			}
		}
		pace()
	}

	res.Lost = uint64(len(sentAt))
	res.Elapsed = time.Duration(now() - start)
	return res, nil
}
