package cluster

import (
	"fmt"
	"sync/atomic"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/image"
	"securecloud/internal/orchestrator"
	"securecloud/internal/sim"
	"securecloud/internal/transfer"
)

// Node is one simulated cluster node: its own blob cache, its own
// attested session with the cluster's attestation service, and a link to
// the origin registry that charges every crossing chunk the cluster's
// LinkCost. Enclave platforms are per-launch (container.LaunchNode), kept
// disjoint for determinism, but namespaced under the node.
type Node struct {
	cl    *Cluster
	name  string
	index int
	cache *container.BlobCache
	// quoter is the node's own attested KeyBroker session — provisioned at
	// construction, proving the node joined the cluster's trust domain.
	quoter *attest.Quoter
	link   *link

	// Placement and fault state, guarded by cl.mu: these feed NodeInfo
	// and only change in the serial scenario loop.
	live        int
	down        bool
	partitioned bool
	isolated    bool
	byzantine   bool

	// Transfer and boot counters. Atomics: link charges arrive from
	// concurrent fetch workers, but each is a commutative sum of a pure
	// per-chunk cost, so totals are order-independent.
	linkCycles     atomic.Uint64
	chunksOverLink atomic.Uint64
	bytesOverLink  atomic.Uint64
	boots          atomic.Uint64
	warmBoots      atomic.Uint64
	coldBoots      atomic.Uint64
	chunksFetched  atomic.Uint64
	cacheHits      atomic.Uint64
	chunksFailed   atomic.Uint64
	pullCycles     atomic.Uint64
	pullFaults     atomic.Uint64
}

func newNode(cl *Cluster, i int) (*Node, error) {
	n := &Node{
		cl:    cl,
		name:  fmt.Sprintf("node%02d", i),
		index: i,
		cache: container.NewBlobCache(),
	}
	p := enclave.NewPlatform(cl.cfg.Platform)
	q, err := cl.svc.Provision(p, "cluster/"+n.name)
	if err != nil {
		return nil, err
	}
	n.quoter = q
	n.link = &link{node: n}
	return n, nil
}

// Name returns the node's stable identity ("node00", "node01", ...).
func (n *Node) Name() string { return n.name }

// Index returns the node's topology slot.
func (n *Node) Index() int { return n.index }

// Cache returns the node-local blob cache.
func (n *Node) Cache() *container.BlobCache { return n.cache }

// Source returns the node's pull source: the origin registry behind the
// node's link (cost-charged, partition-aware, byzantine-injectable).
func (n *Node) Source() container.PullSource { return n.link }

// Launch allocates a container engine on this node: a fresh simulated
// platform namespaced under the node, attested with the cluster's
// service, pulling through the node's link into the node's cache.
func (n *Node) Launch(id string) (*container.Engine, error) {
	eng, err := container.LaunchNode(n.cl.svc, n.name+"/"+id, n.link, n.cl.cfg.Platform)
	if err != nil {
		return nil, err
	}
	eng.Cache = n.cache
	return eng, nil
}

// RecordBoot folds one successful boot's pull stats into the node and
// cluster totals and classifies it: warm (≥1 chunk served from the node
// cache) or cold. Returns "warm" or "cold".
func (n *Node) RecordBoot(ps container.PullStats) string {
	n.boots.Add(1)
	n.chunksFetched.Add(uint64(ps.ChunksFetch))
	n.cacheHits.Add(uint64(ps.CacheHits))
	n.pullCycles.Add(uint64(ps.SerialCycles))
	n.pullFaults.Add(ps.Faults)
	kind := "cold"
	if ps.CacheHits > 0 {
		kind = "warm"
		n.warmBoots.Add(1)
	} else {
		n.coldBoots.Add(1)
	}
	n.cl.recordBootProfile(kind, ps.ChunksFetch)
	return kind
}

// RecordFailedPull folds a failed pull's stats into the node totals (the
// byzantine fail-closed path: chunks crossed the link, none were cached).
func (n *Node) RecordFailedPull(ps container.PullStats) {
	n.chunksFailed.Add(uint64(ps.ChunksFailed))
	n.pullCycles.Add(uint64(ps.SerialCycles))
	n.pullFaults.Add(ps.Faults)
}

// LinkTotals returns the node's lifetime link charges.
func (n *Node) LinkTotals() (cycles sim.Cycles, chunks, bytes uint64) {
	return sim.Cycles(n.linkCycles.Load()), n.chunksOverLink.Load(), n.bytesOverLink.Load()
}

// infoLocked snapshots the node as a placement candidate (cl.mu held).
func (n *Node) infoLocked(chunks []cryptbox.Digest) orchestrator.NodeInfo {
	warm := 0
	for _, d := range chunks {
		if n.cache.Contains(d) {
			warm++
		}
	}
	return orchestrator.NodeInfo{
		Name:        n.name,
		Index:       n.index,
		Live:        n.live,
		Capacity:    n.cl.cfg.NodeCapacity,
		WarmChunks:  warm,
		TotalChunks: len(chunks),
		Down:        n.down,
		Unreachable: n.partitioned,
		Isolated:    n.isolated,
	}
}

// snapshotLocked emits the node's metrics into out (cl.mu held).
func (n *Node) snapshotLocked(out map[string]float64) {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	cs := n.cache.Stats()
	pre := n.name + "."
	out[pre+"live"] = float64(n.live)
	out[pre+"down"] = b(n.down)
	out[pre+"partitioned"] = b(n.partitioned)
	out[pre+"isolated"] = b(n.isolated)
	out[pre+"boots"] = float64(n.boots.Load())
	out[pre+"warm_boots"] = float64(n.warmBoots.Load())
	out[pre+"cold_boots"] = float64(n.coldBoots.Load())
	out[pre+"chunks_fetched"] = float64(n.chunksFetched.Load())
	out[pre+"cache_hits"] = float64(n.cacheHits.Load())
	out[pre+"chunks_failed"] = float64(n.chunksFailed.Load())
	out[pre+"pull_cycles"] = float64(n.pullCycles.Load())
	out[pre+"pull_faults"] = float64(n.pullFaults.Load())
	out[pre+"link_cycles"] = float64(n.linkCycles.Load())
	out[pre+"chunks_over_link"] = float64(n.chunksOverLink.Load())
	out[pre+"bytes_over_link"] = float64(n.bytesOverLink.Load())
	out[pre+"cache_blobs"] = float64(cs.Blobs)
	out[pre+"cache_bytes"] = float64(cs.Bytes)
}

// link is the node's view of the origin registry: every chunk that
// crosses is charged the cluster's LinkCost (a pure function of its
// length, summed atomically — order-independent); a crashed or
// partitioned node's link refuses; a byzantine-targeted node receives
// tampered bytes, which the digest verification downstream rejects before
// they can reach the cache.
type link struct {
	node *Node
}

// state reads the fault flags the link acts on, consistently.
func (l *link) state() (unreachable, byzantine bool) {
	cl := l.node.cl
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return l.node.down || l.node.partitioned, l.node.byzantine
}

// Manifest implements container.PullSource.
func (l *link) Manifest(name, tag string) (image.Manifest, error) {
	if unreachable, _ := l.state(); unreachable {
		return image.Manifest{}, fmt.Errorf("%w: %s", ErrNodeUnreachable, l.node.name)
	}
	return l.node.cl.origin.Manifest(name, tag)
}

// LayerManifest implements container.PullSource.
func (l *link) LayerManifest(d cryptbox.Digest) (*transfer.Manifest, error) {
	if unreachable, _ := l.state(); unreachable {
		return nil, fmt.Errorf("%w: %s", ErrNodeUnreachable, l.node.name)
	}
	return l.node.cl.origin.LayerManifest(d)
}

// Blob implements container.PullSource: fetch from the origin, charge the
// link, and — when the registry is byzantine toward this node — flip one
// byte of a copy so the chunk fails digest verification downstream.
func (l *link) Blob(d cryptbox.Digest) ([]byte, error) {
	unreachable, byzantine := l.state()
	if unreachable {
		return nil, fmt.Errorf("%w: %s", ErrNodeUnreachable, l.node.name)
	}
	b, err := l.node.cl.origin.Blob(d)
	if err != nil {
		return nil, err
	}
	n := l.node
	n.linkCycles.Add(uint64(n.cl.cfg.Link.ChunkCycles(len(b))))
	n.chunksOverLink.Add(1)
	n.bytesOverLink.Add(uint64(len(b)))
	if byzantine {
		b = append([]byte(nil), b...)
		if len(b) > 0 {
			b[0] ^= 0x5A
		}
	}
	return b, nil
}
