package cluster

import (
	"crypto/ed25519"
	"errors"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/image"
	"securecloud/internal/orchestrator"
	"securecloud/internal/registry"
	"securecloud/internal/sconert"
	"securecloud/internal/sim"
	"securecloud/internal/transfer"
)

const (
	testImage = "cluster/app"
	testTag   = "1.0"
)

// newTestCluster builds a cluster over a registry holding one deterministic
// secure image, returning the cluster, the CAS needed to run it, and the
// image's unique chunk set.
func newTestCluster(t *testing.T, nodes, capacity int) (*Cluster, *sconert.CAS, []cryptbox.Digest) {
	t.Helper()
	svc := attest.NewService()
	var seed [ed25519.SeedSize]byte
	seed[0] = 0xC1
	priv := ed25519.NewKeyFromSeed(seed[:])

	entry := make([]byte, 192<<10)
	sim.NewRand(7).Read(entry)
	img, err := image.NewBuilder(testImage, testTag).
		AddLayer(map[string][]byte{container.EntrypointPath: entry}).
		SetEntrypoint(container.EntrypointPath).
		SetEnclaveSize(8 << 20).
		Build(priv)
	if err != nil {
		t.Fatal(err)
	}
	cas := sconert.NewCAS(svc)
	sc := container.NewSCONEClient(priv, cas)
	secured, secrets, err := sc.BuildSecure(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Deploy(secured, secrets, nil, nil); err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	if err := reg.Push(secured); err != nil {
		t.Fatal(err)
	}
	cl, err := New(svc, reg, Config{Nodes: nodes, NodeCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := cl.ImageChunks(testImage, testTag)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("test image should span several chunks, got %d", len(chunks))
	}
	return cl, cas, chunks
}

// boot launches one container on a node and records the boot, returning
// the pull stats.
func boot(t *testing.T, n *Node, cas *sconert.CAS, id string) container.PullStats {
	t.Helper()
	eng, err := n.Launch(id)
	if err != nil {
		t.Fatal(err)
	}
	c, err := eng.Run(testImage, testTag, cas)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ps := eng.LastPullStats()
	n.RecordBoot(ps)
	return ps
}

// TestLinkChargesAndWarmBoot pins the link cost model: a cold boot charges
// LatencyCycles + ceil(bytes/KiB)·CyclesPerKiB per crossing chunk, and a
// second boot on the same node is warm — every chunk served from the node
// cache, nothing new over the link.
func TestLinkChargesAndWarmBoot(t *testing.T) {
	cl, cas, _ := newTestCluster(t, 1, 0)
	n := cl.Node(0)

	cold := boot(t, n, cas, "c0")
	if cold.ChunksFetch == 0 || cold.CacheHits != 0 {
		t.Fatalf("first boot should be fully cold: %+v", cold)
	}
	cycles, chunks, bytes := n.LinkTotals()
	if chunks != uint64(cold.ChunksFetch) {
		t.Fatalf("chunks over link %d != chunks fetched %d", chunks, cold.ChunksFetch)
	}
	minCycles := sim.Cycles(chunks)*cl.cfg.Link.LatencyCycles +
		transfer.LinkCost{CyclesPerKiB: cl.cfg.Link.CyclesPerKiB}.ChunkCycles(int(bytes))
	if cycles < minCycles {
		t.Fatalf("link cycles %d below analytic floor %d", cycles, minCycles)
	}

	warm := boot(t, n, cas, "c1")
	if warm.CacheHits == 0 || warm.ChunksFetch >= cold.ChunksFetch {
		t.Fatalf("second boot should be warm: %+v vs cold %+v", warm, cold)
	}
	bp := cl.Boots()
	if bp.WarmBoots != 1 || bp.ColdBoots != 1 || bp.WarmFetchMax >= bp.ColdFetchMin {
		t.Fatalf("boot profile wrong: %+v", bp)
	}
}

// TestLinkTotalsDeterministic pins the commutativity property at the unit
// level: two identically-configured clusters booting the same image report
// bit-identical link and pull totals.
func TestLinkTotalsDeterministic(t *testing.T) {
	var ref [3]uint64
	for trial := 0; trial < 2; trial++ {
		cl, cas, _ := newTestCluster(t, 2, 0)
		boot(t, cl.Node(0), cas, "a")
		boot(t, cl.Node(1), cas, "b")
		cy0, ch0, by0 := cl.Node(0).LinkTotals()
		cy1, ch1, by1 := cl.Node(1).LinkTotals()
		got := [3]uint64{uint64(cy0 + cy1), ch0 + ch1, by0 + by1}
		if trial == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("link totals drifted between identical runs: %v != %v", got, ref)
		}
	}
}

// TestPartitionRefusesThenHeals: a partitioned node's link fails closed
// with ErrNodeUnreachable before any chunk crosses; healing restores it.
func TestPartitionRefusesThenHeals(t *testing.T) {
	cl, cas, _ := newTestCluster(t, 2, 0)
	cl.PartitionNode(1)
	n := cl.Node(1)

	eng, err := n.Launch("p0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(testImage, testTag, cas); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("partitioned pull: got %v, want ErrNodeUnreachable", err)
	}
	if _, chunks, _ := n.LinkTotals(); chunks != 0 {
		t.Fatalf("%d chunks crossed a partitioned link", chunks)
	}

	cl.HealNode(1)
	if ps := boot(t, n, cas, "p1"); ps.ChunksFetch == 0 {
		t.Fatalf("healed boot fetched nothing: %+v", ps)
	}
}

// TestByzantineFailsClosed: tampered chunks from the registry fail digest
// verification, never enter the node cache, and the node can be isolated
// exactly once — after which placement routes around it.
func TestByzantineFailsClosed(t *testing.T) {
	cl, cas, chunks := newTestCluster(t, 2, 0)
	cl.SetByzantine(1, true)
	n := cl.Node(1)

	eng, err := n.Launch("z0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(testImage, testTag, cas); !errors.Is(err, container.ErrChunkVerify) {
		t.Fatalf("byzantine pull: got %v, want ErrChunkVerify", err)
	}
	n.RecordFailedPull(eng.LastPullStats())
	if got := n.Cache().Stats(); got.Blobs != 0 {
		t.Fatalf("tampered pull left %d blobs in the cache", got.Blobs)
	}
	if cl.Audit() != 0 {
		t.Fatalf("audit found tampered cached chunks")
	}

	if !cl.Isolate(n) || cl.Isolate(n) {
		t.Fatal("Isolate should report newly-isolated exactly once")
	}
	for i := 0; i < 3; i++ {
		pl, err := cl.Place(chunks)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Node().Index() == 1 {
			t.Fatal("placement chose the isolated node")
		}
	}
}

// TestPlacementPrefersWarmThenSpreads: with node 0's cache warmed, the
// placer puts the first replica there; with capacity 1 the next placement
// spreads to the lowest-index cold node; releasing frees the slot.
func TestPlacementPrefersWarmThenSpreads(t *testing.T) {
	cl, cas, chunks := newTestCluster(t, 3, 1)
	boot(t, cl.Node(0), cas, "fe")

	p0, err := cl.Place(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Node().Index() != 0 {
		t.Fatalf("first placement chose %s, want the warm node00", p0.Node().Name())
	}
	p1, err := cl.Place(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Node().Index() != 1 {
		t.Fatalf("second placement chose %s, want the cold node01", p1.Node().Name())
	}
	p2, err := cl.Place(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Node().Index() != 2 {
		t.Fatalf("third placement chose %s, want node02", p2.Node().Name())
	}
	if _, err := cl.Place(chunks); !errors.Is(err, orchestrator.ErrNoEligibleNode) {
		t.Fatalf("full cluster: got %v, want ErrNoEligibleNode", err)
	}
	p1.Release()
	p1.Release() // idempotent
	again, err := cl.Place(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if again.Node().Index() != 1 {
		t.Fatalf("post-release placement chose %s, want node01", again.Node().Name())
	}
}
