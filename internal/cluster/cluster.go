// Package cluster simulates a multi-node SGX cluster for the application
// plane (paper §VI): N nodes, each owning its own enclave platforms, its
// own node-local container.BlobCache, and its own attested KeyBroker
// session, joined by links whose chunk-transfer cost is charged through
// the transfer substrate's analytic LinkCost model. The orchestrator's
// Placer decides which node hosts each replica; the cluster tracks
// per-node placement, boot/pull totals and fault state (crashed,
// partitioned, byzantine, isolated).
//
// Topology vs execution: everything this package counts — link cycles,
// chunks over the link, boots, warm/cold classification, pull totals — is
// a pure function of the config and the observation order (which launch
// happened when). Link charges are commutative atomic sums of a pure
// per-chunk cost, so concurrent fetch workers cannot reorder them into
// different totals; per-node figures are bit-identical across host worker
// counts.
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/orchestrator"
	"securecloud/internal/transfer"
)

// ErrNodeUnreachable marks a pull over a link whose node is crashed or
// partitioned away: the fetch fails closed before any chunk crosses.
var ErrNodeUnreachable = errors.New("cluster: node unreachable")

// DefaultLinkCost is the inter-node link model used when Config.Link is
// zero: 2000 cycles per-chunk latency plus 400 cycles per KiB.
var DefaultLinkCost = transfer.LinkCost{LatencyCycles: 2000, CyclesPerKiB: 400}

// Config shapes a simulated cluster.
type Config struct {
	// Nodes is the node count (default 1).
	Nodes int
	// NodeCapacity bounds replicas per node (0 = unbounded). The gateway
	// front-end does not consume a slot.
	NodeCapacity int
	// Link is the per-node registry link's cost model (zero = DefaultLinkCost).
	Link transfer.LinkCost
	// Platform configures the simulated platforms of enclaves launched on
	// the nodes (zero value = platform defaults).
	Platform enclave.Config
	// Placer scores candidate nodes for each placement (nil =
	// orchestrator.LocalityPlacer{} defaults).
	Placer orchestrator.Placer
}

// Cluster is a set of simulated nodes sharing one origin registry.
type Cluster struct {
	cfg    Config
	svc    *attest.Service
	origin container.PullSource
	placer orchestrator.Placer

	// mu serializes placement (Place/Release and the fault transitions
	// that feed NodeInfo). Launches happen in observation order — the
	// orchestrator's serial Observe loop — so placement stays a pure
	// function of config + observation order.
	mu    sync.Mutex
	nodes []*Node

	// Cluster-wide boot profile (cl.mu): warm vs cold boot counts and the
	// extreme fetch counts of each class. Min/max are commutative, so the
	// profile is independent of boot observation order too.
	warmBoots    int
	coldBoots    int
	warmFetchMax int // max chunks fetched by any warm boot (-1 until one)
	coldFetchMin int // min chunks fetched by any cold boot (-1 until one)
}

// BootProfile summarises the cluster's lifetime boots: how many were warm
// (≥1 chunk served from the node cache) vs cold, and the extreme
// chunks-fetched counts of each class — the locality story's headline
// figure (every warm boot must fetch strictly fewer chunks than every
// cold one).
type BootProfile struct {
	WarmBoots    int
	ColdBoots    int
	WarmFetchMax int // -1 when no warm boot happened
	ColdFetchMin int // -1 when no cold boot happened
}

// Boots returns the cluster-wide boot profile.
func (cl *Cluster) Boots() BootProfile {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return BootProfile{
		WarmBoots: cl.warmBoots, ColdBoots: cl.coldBoots,
		WarmFetchMax: cl.warmFetchMax, ColdFetchMin: cl.coldFetchMin,
	}
}

// recordBootProfile folds one boot classification into the cluster-wide
// profile.
func (cl *Cluster) recordBootProfile(kind string, chunksFetched int) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if kind == "warm" {
		if cl.warmBoots == 0 || chunksFetched > cl.warmFetchMax {
			cl.warmFetchMax = chunksFetched
		}
		cl.warmBoots++
		return
	}
	if cl.coldBoots == 0 || chunksFetched < cl.coldFetchMin {
		cl.coldFetchMin = chunksFetched
	}
	cl.coldBoots++
}

// New builds a cluster of cfg.Nodes nodes against the origin pull source.
// Each node gets its own blob cache and its own attested session with svc
// (platform "cluster/node<i>"), the node's identity on the key-broker
// plane.
func New(svc *attest.Service, origin container.PullSource, cfg Config) (*Cluster, error) {
	if svc == nil || origin == nil {
		return nil, errors.New("cluster: needs an attestation service and an origin pull source")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Link == (transfer.LinkCost{}) {
		cfg.Link = DefaultLinkCost
	}
	cl := &Cluster{
		cfg: cfg, svc: svc, origin: origin, placer: cfg.Placer,
		warmFetchMax: -1, coldFetchMin: -1,
	}
	if cl.placer == nil {
		cl.placer = orchestrator.LocalityPlacer{}
	}
	for i := 0; i < cfg.Nodes; i++ {
		n, err := newNode(cl, i)
		if err != nil {
			return nil, err
		}
		cl.nodes = append(cl.nodes, n)
	}
	return cl, nil
}

// Nodes returns the node count.
func (cl *Cluster) Nodes() int { return len(cl.nodes) }

// Node returns node i (panics out of range, like a slice).
func (cl *Cluster) Node(i int) *Node { return cl.nodes[i] }

// ImageChunks resolves the unique chunk-digest set of name:tag through the
// origin — the warm-chunk reference set placement scores nodes against.
func (cl *Cluster) ImageChunks(name, tag string) ([]cryptbox.Digest, error) {
	m, err := cl.origin.Manifest(name, tag)
	if err != nil {
		return nil, err
	}
	seen := make(map[cryptbox.Digest]struct{})
	var unique []cryptbox.Digest
	for _, ld := range m.LayerDigests {
		lm, err := cl.origin.LayerManifest(ld)
		if err != nil {
			return nil, err
		}
		for _, leaf := range lm.Leaves {
			if _, dup := seen[leaf]; dup {
				continue
			}
			seen[leaf] = struct{}{}
			unique = append(unique, leaf)
		}
	}
	return unique, nil
}

// Placement is one granted replica slot on a node. Release returns the
// slot (idempotent); the cluster keeps counting the node's boots either
// way.
type Placement struct {
	node     *Node
	released bool
}

// Node returns the placed-on node.
func (p *Placement) Node() *Node { return p.node }

// Release returns the slot to the node.
func (p *Placement) Release() {
	cl := p.node.cl
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if p.released {
		return
	}
	p.released = true
	p.node.live--
}

// Place asks the placer for a node able to host one more replica, scoring
// blob-cache locality against the given chunk set, and reserves a slot on
// it. Returns orchestrator.ErrNoEligibleNode (wrapped) when every node is
// down, isolated, unreachable or full.
func (cl *Cluster) Place(chunks []cryptbox.Digest) (*Placement, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	infos := make([]orchestrator.NodeInfo, len(cl.nodes))
	for i, n := range cl.nodes {
		infos[i] = n.infoLocked(chunks)
	}
	idx, err := cl.placer.Place(infos)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(cl.nodes) {
		return nil, fmt.Errorf("cluster: placer chose node %d of %d", idx, len(cl.nodes))
	}
	n := cl.nodes[idx]
	n.live++
	return &Placement{node: n}, nil
}

// CrashNode marks node i down: its replicas are dead and its link refuses
// fetches. Returns the node name.
func (cl *Cluster) CrashNode(i int) string {
	n := cl.nodes[i]
	cl.mu.Lock()
	n.down = true
	cl.mu.Unlock()
	return n.name
}

// PartitionNode cuts node i off the network: placement skips it and its
// link refuses fetches until HealNode. Returns the node name.
func (cl *Cluster) PartitionNode(i int) string {
	n := cl.nodes[i]
	cl.mu.Lock()
	n.partitioned = true
	cl.mu.Unlock()
	return n.name
}

// HealNode reverses a partition. Returns the node name.
func (cl *Cluster) HealNode(i int) string {
	n := cl.nodes[i]
	cl.mu.Lock()
	n.partitioned = false
	cl.mu.Unlock()
	return n.name
}

// SetByzantine makes the registry serve node i tampered chunks (or stops
// doing so). The node's pulls fail closed on digest verification; nothing
// tampered ever enters its cache. Returns the node name.
func (cl *Cluster) SetByzantine(i int, v bool) string {
	n := cl.nodes[i]
	cl.mu.Lock()
	n.byzantine = v
	cl.mu.Unlock()
	return n.name
}

// Isolate quarantines a node after a fail-closed pull: placement routes
// around it until un-isolated. Returns whether the node was newly
// isolated.
func (cl *Cluster) Isolate(n *Node) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if n.isolated {
		return false
	}
	n.isolated = true
	return true
}

// Audit verifies every cached chunk on every node against its digest and
// returns the number of tampered entries — the cache-poisoning tripwire
// the bench gate pins to zero (BlobCache.Put verifies before storing, so
// a nonzero count means the poisoning guard itself is broken).
func (cl *Cluster) Audit() int {
	total := 0
	for _, n := range cl.nodes {
		total += n.Cache().Audit()
	}
	return total
}

// StatsName implements stats.Source.
func (cl *Cluster) StatsName() string { return "cluster" }

// Snapshot implements stats.Source: the flat per-node metric map, every
// value a deterministic simulated figure.
func (cl *Cluster) Snapshot() map[string]float64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make(map[string]float64, len(cl.nodes)*18+4)
	for _, n := range cl.nodes {
		n.snapshotLocked(out)
	}
	out["warm_boots"] = float64(cl.warmBoots)
	out["cold_boots"] = float64(cl.coldBoots)
	out["warm_fetch_max"] = float64(cl.warmFetchMax)
	out["cold_fetch_min"] = float64(cl.coldFetchMin)
	return out
}
