package httpx

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"securecloud/internal/cryptbox"
)

func TestParseDigest(t *testing.T) {
	d := cryptbox.Sum([]byte("hello"))
	got, err := ParseDigest("test", d.String())
	if err != nil || got != d {
		t.Fatalf("sha256-prefixed form: %v %v", got, err)
	}
	got, err = ParseDigest("test", strings.TrimPrefix(d.String(), "sha256:"))
	if err != nil || got != d {
		t.Fatalf("bare hex form: %v %v", got, err)
	}
	if _, err := ParseDigest("scope", "nope"); err == nil || !strings.Contains(err.Error(), `scope: bad digest "nope"`) {
		t.Fatalf("bad digest error rendering: %v", err)
	}
	if _, err := ParseDigest("scope", "sha256:abcd"); err == nil {
		t.Fatal("short digest should fail")
	}
}

func TestWriteConditional(t *testing.T) {
	d := cryptbox.Sum([]byte("body"))
	handler := func(w http.ResponseWriter, req *http.Request) {
		WriteConditional(w, req, d, "application/octet-stream", func() ([]byte, error) {
			return []byte("body"), nil
		})
	}
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	rec := httptest.NewRecorder()
	handler(rec, req)
	if rec.Code != http.StatusOK || rec.Body.String() != "body" {
		t.Fatalf("plain GET: %d %q", rec.Code, rec.Body.String())
	}
	etag := rec.Header().Get("ETag")
	if etag != `"`+d.String()+`"` {
		t.Fatalf("etag %q", etag)
	}
	req = httptest.NewRequest(http.MethodGet, "/x", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	handler(rec, req)
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("conditional GET: %d %q", rec.Code, rec.Body.String())
	}
}

func TestReadBodyBounds(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/x", bytes.NewReader(make([]byte, 100)))
	rec := httptest.NewRecorder()
	if body, ok := ReadBody(rec, req, 100); !ok || len(body) != 100 {
		t.Fatalf("at-limit body rejected: ok=%v len=%d", ok, len(body))
	}
	req = httptest.NewRequest(http.MethodPost, "/x", bytes.NewReader(make([]byte, 101)))
	rec = httptest.NewRecorder()
	if _, ok := ReadBody(rec, req, 100); ok {
		t.Fatal("over-limit body accepted")
	}
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit status %d, want 413", rec.Code)
	}
}
