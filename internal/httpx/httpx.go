// Package httpx holds the HTTP plumbing shared by the repo's front ends —
// the registry's chunk-granular endpoints and the wire plane's SCBR /
// ReplicaSet endpoints. It standardizes digest parsing, digest-conditional
// GET (ETag / If-None-Match), JSON responses, and bounded request-body
// reads, so each front end carries routing logic only.
package httpx

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"securecloud/internal/cryptbox"
)

// ParseDigest parses a digest in the "sha256:<hex>" rendering (the bare
// hex form is accepted too). scope prefixes the error text, so callers
// keep their package-local error rendering (e.g. `registry: bad digest`).
func ParseDigest(scope, s string) (cryptbox.Digest, error) {
	var d cryptbox.Digest
	b, err := hex.DecodeString(strings.TrimPrefix(s, "sha256:"))
	if err != nil || len(b) != len(d) {
		return d, fmt.Errorf("%s: bad digest %q", scope, s)
	}
	copy(d[:], b)
	return d, nil
}

// WriteConditional serves a content-addressed response: the ETag is the
// digest, and a matching If-None-Match short-circuits to 304 with no body
// — the digest IS the content, so a client that has it needs nothing else.
func WriteConditional(w http.ResponseWriter, req *http.Request, d cryptbox.Digest, contentType string, body func() ([]byte, error)) {
	etag := `"` + d.String() + `"`
	w.Header().Set("ETag", etag)
	if match := req.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	b, err := body()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(b)
}

// WriteJSON writes v as a JSON response body.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// MethodNotAllowed rejects a request with 405 and the registry's historic
// error text.
func MethodNotAllowed(w http.ResponseWriter) {
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
}

// ReadBody reads the whole request body, rejecting bodies over maxBytes
// with 413 (the oversize guard mirroring the codec forged-count checks).
// On failure it writes the error response and returns ok=false.
func ReadBody(w http.ResponseWriter, req *http.Request, maxBytes int64) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body over %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return nil, false
	}
	return body, true
}
