package registry

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"

	"securecloud/internal/transfer"
)

func packSnapshot(t *testing.T, name string, payload []byte) (*transfer.Manifest, [][]byte) {
	t.Helper()
	m, chunks, err := transfer.PackConvergent(name, payload, 64)
	if err != nil {
		t.Fatal(err)
	}
	return m, chunks
}

func TestPutBlobSetDedup(t *testing.T) {
	r := New()
	payload := bytes.Repeat([]byte("shard-table."), 40)
	m, chunks := packSnapshot(t, "snap/a", payload)
	if err := r.PutBlobSet(m, chunks); err != nil {
		t.Fatal(err)
	}
	before := r.Stats()
	// Re-publishing the identical blob set stores nothing new: every chunk
	// is a dedup hit against the convergent-sealed blobs already present.
	if err := r.PutBlobSet(m, chunks); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.Blobs != before.Blobs {
		t.Fatalf("blob count grew %d -> %d on identical blob set", before.Blobs, after.Blobs)
	}
	if got := after.DedupHits - before.DedupHits; got != uint64(len(chunks)) {
		t.Fatalf("dedup hits %d, want %d", got, len(chunks))
	}
}

func TestPutBlobSetRejectsMismatch(t *testing.T) {
	r := New()
	m, chunks := packSnapshot(t, "snap/a", bytes.Repeat([]byte("x"), 300))
	if err := r.PutBlobSet(m, chunks[:len(chunks)-1]); err == nil {
		t.Fatal("accepted short chunk list")
	}
	tampered := make([][]byte, len(chunks))
	copy(tampered, chunks)
	tampered[0] = append([]byte(nil), chunks[0]...)
	tampered[0][0] ^= 0xFF
	if err := r.PutBlobSet(m, tampered); err == nil {
		t.Fatal("accepted chunk that does not match its manifest digest")
	}
}

func TestPublishSnapshotRollbackRejected(t *testing.T) {
	r := New()
	if err := r.PublishSnapshot("svc/shard-0", 3, []byte("sealed-3")); err != nil {
		t.Fatal(err)
	}
	// Replaying an old (or equal) sequence is a rollback attempt and must
	// not displace the newer manifest.
	for _, seq := range []uint64{3, 2} {
		if err := r.PublishSnapshot("svc/shard-0", seq, []byte("stale")); !errors.Is(err, ErrConflict) {
			t.Fatalf("seq %d: got %v, want ErrConflict", seq, err)
		}
	}
	seq, sealed, ok := r.LatestSnapshot("svc/shard-0")
	if !ok || seq != 3 || !bytes.Equal(sealed, []byte("sealed-3")) {
		t.Fatalf("latest = %d %q %v", seq, sealed, ok)
	}
	if err := r.PublishSnapshot("svc/shard-0", 4, []byte("sealed-4")); err != nil {
		t.Fatal(err)
	}
	if seq, _, _ := r.LatestSnapshot("svc/shard-0"); seq != 4 {
		t.Fatalf("latest seq = %d after advance", seq)
	}
}

func TestLatestSnapshotMissing(t *testing.T) {
	if _, _, ok := New().LatestSnapshot("nope/shard-0"); ok {
		t.Fatal("found a snapshot in an empty registry")
	}
}

func TestHTTPSnapshotRoundTrip(t *testing.T) {
	r := New()
	if err := r.PublishSnapshot("svc/shard-1", 7, []byte("sealed-manifest")); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	seq, sealed, ok := c.LatestSnapshot("svc/shard-1")
	if !ok || seq != 7 || !bytes.Equal(sealed, []byte("sealed-manifest")) {
		t.Fatalf("client latest = %d %q %v", seq, sealed, ok)
	}
	if _, _, ok := c.LatestSnapshot("svc/shard-2"); ok {
		t.Fatal("client found a snapshot that was never published")
	}
}
