package registry

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"

	"securecloud/internal/transfer"
)

func packSnapshot(t *testing.T, name string, payload []byte) (*transfer.Manifest, [][]byte) {
	t.Helper()
	m, chunks, err := transfer.PackConvergent(name, payload, 64)
	if err != nil {
		t.Fatal(err)
	}
	return m, chunks
}

func TestPutBlobSetDedup(t *testing.T) {
	r := New()
	payload := bytes.Repeat([]byte("shard-table."), 40)
	m, chunks := packSnapshot(t, "snap/a", payload)
	stored, err := r.PutBlobSet(m, chunks)
	if err != nil {
		t.Fatal(err)
	}
	// The repeating payload chunks convergently to repeating sealed bytes, so
	// duplicates dedup even within the first set: stored = unique leaves.
	unique := map[string]bool{}
	for _, d := range m.Leaves {
		unique[d.String()] = true
	}
	if stored != len(unique) {
		t.Fatalf("first publish stored %d, want %d unique of %d chunks", stored, len(unique), len(chunks))
	}
	before := r.Stats()
	// Re-publishing the identical blob set stores nothing new: every chunk
	// is a dedup hit against the convergent-sealed blobs already present.
	stored, err = r.PutBlobSet(m, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 0 {
		t.Fatalf("identical republish stored %d chunks", stored)
	}
	after := r.Stats()
	if after.Blobs != before.Blobs {
		t.Fatalf("blob count grew %d -> %d on identical blob set", before.Blobs, after.Blobs)
	}
	if got := after.DedupHits - before.DedupHits; got != uint64(len(chunks)) {
		t.Fatalf("dedup hits %d, want %d", got, len(chunks))
	}
}

func TestPutBlobSetRejectsMismatch(t *testing.T) {
	r := New()
	m, chunks := packSnapshot(t, "snap/a", bytes.Repeat([]byte("x"), 300))
	if _, err := r.PutBlobSet(m, chunks[:len(chunks)-1]); err == nil {
		t.Fatal("accepted short chunk list")
	}
	tampered := make([][]byte, len(chunks))
	copy(tampered, chunks)
	tampered[0] = append([]byte(nil), chunks[0]...)
	tampered[0][0] ^= 0xFF
	if _, err := r.PutBlobSet(m, tampered); err == nil {
		t.Fatal("accepted chunk that does not match its manifest digest")
	}
}

func TestPublishSnapshotRollbackRejected(t *testing.T) {
	r := New()
	if err := r.PublishSnapshot("svc/shard-0", 3, []byte("sealed-3")); err != nil {
		t.Fatal(err)
	}
	// Replaying an old (or equal) sequence is a rollback attempt and must
	// not displace the newer manifest.
	for _, seq := range []uint64{3, 2} {
		if err := r.PublishSnapshot("svc/shard-0", seq, []byte("stale")); !errors.Is(err, ErrConflict) {
			t.Fatalf("seq %d: got %v, want ErrConflict", seq, err)
		}
	}
	seq, sealed, ok := r.LatestSnapshot("svc/shard-0")
	if !ok || seq != 3 || !bytes.Equal(sealed, []byte("sealed-3")) {
		t.Fatalf("latest = %d %q %v", seq, sealed, ok)
	}
	if err := r.PublishSnapshot("svc/shard-0", 4, []byte("sealed-4")); err != nil {
		t.Fatal(err)
	}
	if seq, _, _ := r.LatestSnapshot("svc/shard-0"); seq != 4 {
		t.Fatalf("latest seq = %d after advance", seq)
	}
}

func TestLatestSnapshotMissing(t *testing.T) {
	if _, _, ok := New().LatestSnapshot("nope/shard-0"); ok {
		t.Fatal("found a snapshot in an empty registry")
	}
}

func TestSnapshotAtServesHistory(t *testing.T) {
	r := New()
	for seq := uint64(1); seq <= 3; seq++ {
		if err := r.PublishSnapshot("svc/shard-0", seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	// Every published link stays retrievable — delta chains walk backwards.
	for seq := uint64(1); seq <= 3; seq++ {
		sealed, ok := r.SnapshotAt("svc/shard-0", seq)
		if !ok || !bytes.Equal(sealed, []byte{byte(seq)}) {
			t.Fatalf("seq %d: %q %v", seq, sealed, ok)
		}
	}
	if _, ok := r.SnapshotAt("svc/shard-0", 4); ok {
		t.Fatal("found a record that was never published")
	}
	if _, ok := r.SnapshotAt("svc/shard-9", 1); ok {
		t.Fatal("found a record under an unbound name")
	}
}

func TestHTTPSnapshotRoundTrip(t *testing.T) {
	r := New()
	if err := r.PublishSnapshot("svc/shard-1", 7, []byte("sealed-manifest")); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	seq, sealed, ok := c.LatestSnapshot("svc/shard-1")
	if !ok || seq != 7 || !bytes.Equal(sealed, []byte("sealed-manifest")) {
		t.Fatalf("client latest = %d %q %v", seq, sealed, ok)
	}
	if _, _, ok := c.LatestSnapshot("svc/shard-2"); ok {
		t.Fatal("client found a snapshot that was never published")
	}
	if err := r.PublishSnapshot("svc/shard-1", 8, []byte("sealed-manifest-8")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.SnapshotAt("svc/shard-1", 7); !ok || !bytes.Equal(got, []byte("sealed-manifest")) {
		t.Fatalf("client seq 7 = %q %v", got, ok)
	}
	if _, ok := c.SnapshotAt("svc/shard-1", 9); ok {
		t.Fatal("client found a historical record that was never published")
	}
}
