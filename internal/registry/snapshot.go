// The snapshot surface: the registry as the durable home of sealed state
// snapshots. A durable store publishes each shard snapshot as a
// content-addressed blob set (the chunks of a transfer.PackConvergent run)
// plus one small sealed manifest record under a stable name. The chunks
// land in the same blob namespace as image layers, so successive snapshots
// of mostly-unchanged state dedup chunk-for-chunk against their
// predecessors — the registry stores deltas without knowing it. The sealed
// manifest record is opaque to the registry: what it names, and under which
// key it opens, is the publishing service's business. The registry only
// enforces ordering — a snapshot's sequence number must grow, so a replayed
// or lagging publisher cannot roll a name back to older state.
package registry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"securecloud/internal/httpx"
	"securecloud/internal/transfer"
)

// snapshotRecord is the latest published snapshot under one name.
type snapshotRecord struct {
	Seq    uint64 `json:"seq"`
	Sealed []byte `json:"sealed"`
}

// PutBlobSet stores the chunks of a packed blob set under their manifest's
// leaf digests — the push half of the chunk-granular pull path, reusable by
// anything that packs with transfer.PackConvergent. Chunks already present
// (earlier snapshots, image layers) count as dedup hits; the return value
// is how many chunks were newly stored, so publishers can see their delta.
func (r *Registry) PutBlobSet(m *transfer.Manifest, chunks [][]byte) (stored int, err error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if len(chunks) != len(m.Leaves) {
		return 0, fmt.Errorf("%w: %d chunks, %d leaves", ErrManifest, len(chunks), len(m.Leaves))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range chunks {
		_, had := r.blobs[m.Leaves[i]]
		if err := r.storeBlobLocked(m.Leaves[i], c); err != nil {
			return stored, err
		}
		if !had {
			stored++
		}
	}
	return stored, nil
}

// PublishSnapshot binds name to a new sealed snapshot record. Sequence
// numbers must strictly increase per name — the rollback guard. Earlier
// records stay retrievable through SnapshotAt: they are the links of the
// delta chains incremental snapshots publish.
func (r *Registry) PublishSnapshot(name string, seq uint64, sealed []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.snapshots[name]; ok && seq <= have.Seq {
		return fmt.Errorf("%w: snapshot %s seq %d not after %d", ErrConflict, name, seq, have.Seq)
	}
	cp := append([]byte(nil), sealed...)
	r.snapshots[name] = snapshotRecord{Seq: seq, Sealed: cp}
	hist := r.snapshotHist[name]
	if hist == nil {
		hist = make(map[uint64][]byte)
		r.snapshotHist[name] = hist
	}
	hist[seq] = cp
	return nil
}

// SnapshotAt returns the sealed snapshot record published under name at
// exactly seq — the chain-walk lookup for delta recovery.
func (r *Registry) SnapshotAt(name string, seq uint64) (sealed []byte, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.snapshotHist[name][seq]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), rec...), true
}

// LatestSnapshot returns the newest sealed snapshot record under name.
func (r *Registry) LatestSnapshot(name string) (seq uint64, sealed []byte, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.snapshots[name]
	if !ok {
		return 0, nil, false
	}
	return rec.Seq, append([]byte(nil), rec.Sealed...), true
}

// Snapshots returns how many snapshot names are bound.
func (r *Registry) Snapshots() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.snapshots)
}

// snapshotHandler serves GET /v2/snapshots/{name} (names may contain
// slashes) as a JSON snapshot record — the latest by default, or the
// historical record at ?seq=N for chain walks.
func (r *Registry) snapshotHandler(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpx.MethodNotAllowed(w)
		return
	}
	name := strings.TrimPrefix(req.URL.Path, "/v2/snapshots/")
	if name == "" {
		http.Error(w, "want /v2/snapshots/{name}[?seq=N]", http.StatusBadRequest)
		return
	}
	if q := req.URL.Query().Get("seq"); q != "" {
		seq, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "seq must be an unsigned integer", http.StatusBadRequest)
			return
		}
		sealed, ok := r.SnapshotAt(name, seq)
		if !ok {
			http.Error(w, fmt.Sprintf("%v: snapshot %s seq %d", ErrNotFound, name, seq), http.StatusNotFound)
			return
		}
		httpx.WriteJSON(w, snapshotRecord{Seq: seq, Sealed: sealed})
		return
	}
	seq, sealed, ok := r.LatestSnapshot(name)
	if !ok {
		http.Error(w, fmt.Sprintf("%v: snapshot %s", ErrNotFound, name), http.StatusNotFound)
		return
	}
	httpx.WriteJSON(w, snapshotRecord{Seq: seq, Sealed: sealed})
}

// LatestSnapshot mirrors Registry.LatestSnapshot over HTTP.
func (c *Client) LatestSnapshot(name string) (seq uint64, sealed []byte, ok bool) {
	raw, err := c.get(fmt.Sprintf("%s/v2/snapshots/%s", c.BaseURL, name), "snapshot "+name)
	if err != nil {
		return 0, nil, false
	}
	var rec snapshotRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return 0, nil, false
	}
	return rec.Seq, rec.Sealed, true
}

// SnapshotAt mirrors Registry.SnapshotAt over HTTP (?seq=N).
func (c *Client) SnapshotAt(name string, seq uint64) (sealed []byte, ok bool) {
	raw, err := c.get(fmt.Sprintf("%s/v2/snapshots/%s?seq=%d", c.BaseURL, name, seq),
		fmt.Sprintf("snapshot %s seq %d", name, seq))
	if err != nil {
		return nil, false
	}
	var rec snapshotRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, false
	}
	return rec.Sealed, true
}
