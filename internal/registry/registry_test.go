package registry

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"securecloud/internal/image"
)

func testImage(t *testing.T, name, tag string) *image.Image {
	t.Helper()
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	img, err := image.NewBuilder(name, tag).
		AddLayer(map[string][]byte{"/bin/app": []byte("code-" + name)}).
		SetEntrypoint("/bin/app").
		Build(priv)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPushPullRoundTrip(t *testing.T) {
	r := New()
	img := testImage(t, "svc/a", "1.0")
	if err := r.Push(img); err != nil {
		t.Fatal(err)
	}
	got, err := r.Pull("svc/a", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("pulled image failed verification: %v", err)
	}
	if got.Ref() != "svc/a:1.0" {
		t.Fatalf("Ref = %q", got.Ref())
	}
}

func TestPullMissing(t *testing.T) {
	r := New()
	if _, err := r.Pull("ghost", "latest"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPushRejectsInconsistentDigests(t *testing.T) {
	r := New()
	img := testImage(t, "svc/a", "1.0")
	img.Layers[0].Files["/bin/app"] = []byte("swapped")
	if err := r.Push(img); err == nil {
		t.Fatal("honest registry ingested inconsistent image")
	}
}

func TestLayerDedupAcrossImages(t *testing.T) {
	r := New()
	_, priv, _ := ed25519.GenerateKey(rand.Reader)
	shared := map[string][]byte{"/lib/base": []byte("shared-layer")}
	a, _ := image.NewBuilder("a", "1").AddLayer(shared).AddLayer(map[string][]byte{"/bin/app": []byte("A")}).Build(priv)
	b, _ := image.NewBuilder("b", "1").AddLayer(shared).AddLayer(map[string][]byte{"/bin/app": []byte("B")}).Build(priv)
	if err := r.Push(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(b); err != nil {
		t.Fatal(err)
	}
	if len(r.layers) != 3 {
		t.Fatalf("stored %d layers, want 3 (base layer deduplicated)", len(r.layers))
	}
}

func TestClientDetectsTamperedLayer(t *testing.T) {
	r := New()
	img := testImage(t, "svc/a", "1.0")
	if err := r.Push(img); err != nil {
		t.Fatal(err)
	}
	if !r.TamperLayer(img.Manifest.LayerDigests[0], func(l *image.Layer) {
		l.Files["/bin/app"] = []byte("BACKDOORED")
	}) {
		t.Fatal("tamper hook missed layer")
	}
	got, err := r.Pull("svc/a", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err == nil {
		t.Fatal("client accepted image tampered in the registry")
	}
}

func TestClientDetectsTamperedManifest(t *testing.T) {
	r := New()
	img := testImage(t, "svc/a", "1.0")
	if err := r.Push(img); err != nil {
		t.Fatal(err)
	}
	r.TamperManifest("svc/a:1.0", func(m *image.Manifest) {
		m.Config.Entrypoint = []string{"/bin/evil"}
	})
	got, err := r.Pull("svc/a", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err == nil {
		t.Fatal("client accepted manifest tampered in the registry")
	}
}

func TestList(t *testing.T) {
	r := New()
	_ = r.Push(testImage(t, "a", "1"))
	_ = r.Push(testImage(t, "b", "2"))
	if got := len(r.List()); got != 2 {
		t.Fatalf("List returned %d refs, want 2", got)
	}
}

func TestHTTPPushPull(t *testing.T) {
	r := New()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)

	img := testImage(t, "svc/http", "2.0")
	if err := c.Push(img); err != nil {
		t.Fatal(err)
	}
	got, err := c.Pull("svc/http", "2.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("image pulled over HTTP failed verification: %v", err)
	}
}

func TestHTTPPullMissing(t *testing.T) {
	srv := httptest.NewServer(New().Handler())
	defer srv.Close()
	if _, err := NewClient(srv.URL).Pull("nope", "1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestHTTPRejectsRefMismatch(t *testing.T) {
	r := New()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	img := testImage(t, "real-name", "1.0")
	body, _ := json.Marshal(img)
	// PUT under a different name than the manifest claims.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v2/images/other-name/1.0", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated {
		t.Fatal("HTTP push with mismatched reference accepted")
	}
}
