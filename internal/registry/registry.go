// Package registry implements the image registry of the secure Docker
// workflow (paper Figure 2) as a content-addressed sealed blob store. The
// registry is untrusted: it stores secure images whose security-relevant
// content is protected by the FS protection file, so clients verify digests
// and manifest signatures after every pull instead of trusting the store.
//
// Storage is chunk-granular: every layer is encoded deterministically
// (image.Layer.Encode), packed into convergently sealed chunks
// (transfer.PackConvergent) and stored as blobs keyed by chunk content
// digest. Identical chunks — shared base layers across images, repeated
// content across layers — are stored once; the dedup is exact because
// convergent sealing makes identical content produce bit-identical sealed
// bytes. The registry holds the sealed chunks and the layer manifests
// that name them (per-chunk keys included — the registry ingests
// plaintext layers on push, so the sealing is the dedup mechanism, not a
// confidentiality boundary; secret image content is protected one level
// down by the FS protection file, per the paper's model).
//
// The package offers both an in-process store and an HTTP front end
// (net/http) with a matching client. The HTTP surface is chunk-granular
// too: image manifests, layer (transfer) manifests and individual blobs
// each have endpoints, with digest-conditional GET (ETag/If-None-Match)
// on the content-addressed ones so a caching puller revalidates for free.
package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/httpx"
	"securecloud/internal/image"
	"securecloud/internal/transfer"
)

// LayerChunkSize is the chunk granularity of layer storage. All images in
// one registry share it so identical layer content chunks identically.
const LayerChunkSize = 64 << 10

// Errors returned by the registry and client.
var (
	ErrNotFound = errors.New("registry: not found")
	ErrConflict = errors.New("registry: digest already bound to different content")
	ErrManifest = errors.New("registry: manifest inconsistent with layers")
)

// Stats summarizes the store: how much the chunk-granular dedup saved.
type Stats struct {
	Manifests int
	Layers    int
	Blobs     int
	BlobBytes int64
	// DedupHits counts chunk stores satisfied by an existing blob, across
	// images and layers.
	DedupHits uint64
}

// Registry is an in-memory content-addressed image store.
type Registry struct {
	mu        sync.RWMutex
	manifests map[string]image.Manifest             // "name:tag" -> manifest
	layers    map[cryptbox.Digest]transfer.Manifest // layer digest -> chunk manifest
	blobs     map[cryptbox.Digest][]byte            // chunk digest -> sealed chunk
	snapshots map[string]snapshotRecord             // snapshot name -> latest record
	// snapshotHist keeps every published record per name: the links of the
	// delta chains incremental publishers build (SnapshotAt serves them).
	snapshotHist map[string]map[uint64][]byte
	blobBytes    int64
	dedupHits    uint64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		manifests:    make(map[string]image.Manifest),
		layers:       make(map[cryptbox.Digest]transfer.Manifest),
		blobs:        make(map[cryptbox.Digest][]byte),
		snapshots:    make(map[string]snapshotRecord),
		snapshotHist: make(map[string]map[uint64][]byte),
	}
}

// Push stores an image chunk-granularly. An honest registry checks layer
// digests on ingest; the Tamper* methods below simulate a dishonest one.
// A manifest whose LayerDigests disagree with the carried layers — in
// count or content — is rejected before anything is indexed.
func (r *Registry) Push(img *image.Image) error {
	if len(img.Layers) != len(img.Manifest.LayerDigests) {
		return fmt.Errorf("%w: %d layers, %d digests", ErrManifest,
			len(img.Layers), len(img.Manifest.LayerDigests))
	}
	for i, l := range img.Layers {
		if l.Digest() != img.Manifest.LayerDigests[i] {
			return fmt.Errorf("%w: layer %d", image.ErrDigestMismatch, i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, l := range img.Layers {
		d := img.Manifest.LayerDigests[i]
		if have, ok := r.layers[d]; ok {
			// Whole layer already chunked and stored (cross-image dedup).
			r.dedupHits += uint64(have.Chunks())
			continue
		}
		m, chunks, err := transfer.PackConvergent(d.String(), l.Encode(), LayerChunkSize)
		if err != nil {
			return err
		}
		for j, c := range chunks {
			if err := r.storeBlobLocked(m.Leaves[j], c); err != nil {
				return err
			}
		}
		r.layers[d] = *m
	}
	r.manifests[img.Ref()] = img.Manifest
	return nil
}

// storeBlobLocked inserts one sealed chunk under its content digest,
// counting dedup hits. Holding r.mu.
func (r *Registry) storeBlobLocked(d cryptbox.Digest, chunk []byte) error {
	if have, ok := r.blobs[d]; ok {
		if !bytes.Equal(have, chunk) {
			return fmt.Errorf("%w: %s", ErrConflict, d)
		}
		r.dedupHits++
		return nil
	}
	r.blobs[d] = append([]byte(nil), chunk...)
	r.blobBytes += int64(len(chunk))
	return nil
}

// Manifest returns the image manifest for a reference. Clients must verify
// its signature — the registry is untrusted.
func (r *Registry) Manifest(name, tag string) (image.Manifest, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.manifests[name+":"+tag]
	if !ok {
		return image.Manifest{}, fmt.Errorf("%w: %s:%s", ErrNotFound, name, tag)
	}
	return m, nil
}

// LayerManifest returns the chunk manifest of one layer digest.
func (r *Registry) LayerManifest(d cryptbox.Digest) (*transfer.Manifest, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.layers[d]
	if !ok {
		return nil, fmt.Errorf("%w: layer %s", ErrNotFound, d)
	}
	cp := m
	return &cp, nil
}

// Blob returns one sealed chunk by content digest.
func (r *Registry) Blob(d cryptbox.Digest) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.blobs[d]
	if !ok {
		return nil, fmt.Errorf("%w: blob %s", ErrNotFound, d)
	}
	return append([]byte(nil), b...), nil
}

// Stats returns store-level counters.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{
		Manifests: len(r.manifests),
		Layers:    len(r.layers),
		Blobs:     len(r.blobs),
		BlobBytes: r.blobBytes,
		DedupHits: r.dedupHits,
	}
}

// StatsName implements stats.Source.
func (r *Registry) StatsName() string { return "registry" }

// Snapshot implements stats.Source.
func (r *Registry) Snapshot() map[string]float64 {
	s := r.Stats()
	return map[string]float64{
		"manifests":  float64(s.Manifests),
		"layers":     float64(s.Layers),
		"blobs":      float64(s.Blobs),
		"blob_bytes": float64(s.BlobBytes),
		"dedup_hits": float64(s.DedupHits),
	}
}

// layerSnapshot is one layer's manifest plus its chunk slices, captured
// under the lock. Stored blobs are replaced, never mutated in place, so
// the slices stay valid (and immutable) after the lock is released.
type layerSnapshot struct {
	manifest transfer.Manifest
	chunks   [][]byte
}

// snapshotLayerLocked captures one layer's manifest and chunks.
// Holding at least r.mu.RLock.
func (r *Registry) snapshotLayerLocked(d cryptbox.Digest) (layerSnapshot, error) {
	m, ok := r.layers[d]
	if !ok {
		return layerSnapshot{}, fmt.Errorf("%w: layer %s", ErrNotFound, d)
	}
	s := layerSnapshot{manifest: m, chunks: make([][]byte, len(m.Leaves))}
	for i, leaf := range m.Leaves {
		b, ok := r.blobs[leaf]
		if !ok {
			return layerSnapshot{}, fmt.Errorf("%w: blob %s", ErrNotFound, leaf)
		}
		s.chunks[i] = b
	}
	return s, nil
}

// assemble decrypts and decompresses the snapshot into layer bytes — the
// expensive half of a pull, run outside the registry lock.
func (s layerSnapshot) assemble() ([]byte, error) {
	var buf bytes.Buffer
	err := transfer.Unpack(&s.manifest, cryptbox.Key{}, &buf, func(idx int) ([]byte, error) {
		return s.chunks[idx], nil
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Pull retrieves an image by reference, reassembling every layer from its
// chunks. Callers must img.Verify() — the registry is not trusted to
// return what was pushed. (The container engine's chunk-granular pull with
// caching lives in internal/container; Pull is the whole-image path.)
// Only the map lookups run under the lock; the per-chunk decrypt and
// decompress work does not block concurrent pushes.
func (r *Registry) Pull(name, tag string) (*image.Image, error) {
	r.mu.RLock()
	m, ok := r.manifests[name+":"+tag]
	if !ok {
		r.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s:%s", ErrNotFound, name, tag)
	}
	snaps := make([]layerSnapshot, len(m.LayerDigests))
	for i, d := range m.LayerDigests {
		s, err := r.snapshotLayerLocked(d)
		if err != nil {
			r.mu.RUnlock()
			return nil, err
		}
		snaps[i] = s
	}
	r.mu.RUnlock()

	img := &image.Image{Manifest: m}
	for _, s := range snaps {
		raw, err := s.assemble()
		if err != nil {
			return nil, err
		}
		l, err := image.DecodeLayer(raw)
		if err != nil {
			return nil, err
		}
		img.Layers = append(img.Layers, l)
	}
	return img, nil
}

// List returns all stored references.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.manifests))
	for ref := range r.manifests {
		out = append(out, ref)
	}
	return out
}

// TamperLayer overwrites the stored content behind a layer digest without
// updating the digest — what a malicious registry operator can do. The
// mutated layer is re-chunked and its manifest replaced, so the forgery is
// self-consistent at the transfer level; clients must detect it on Verify
// against the signed image manifest.
func (r *Registry) TamperLayer(d cryptbox.Digest, mutate func(*image.Layer)) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, err := r.snapshotLayerLocked(d)
	if err != nil {
		return false
	}
	raw, err := s.assemble()
	if err != nil {
		return false
	}
	l, err := image.DecodeLayer(raw)
	if err != nil {
		return false
	}
	mutate(&l)
	m, chunks, err := transfer.PackConvergent(d.String(), l.Encode(), LayerChunkSize)
	if err != nil {
		return false
	}
	for j, c := range chunks {
		if err := r.storeBlobLocked(m.Leaves[j], c); err != nil {
			return false
		}
	}
	r.layers[d] = *m
	return true
}

// TamperBlob flips bytes inside one stored chunk without touching any
// manifest — the crudest dishonest-registry move. Pulling clients must
// reject exactly that chunk on digest verification.
func (r *Registry) TamperBlob(d cryptbox.Digest, mutate func([]byte) []byte) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.blobs[d]
	if !ok {
		return false
	}
	nb := mutate(append([]byte(nil), b...))
	r.blobBytes += int64(len(nb) - len(b))
	r.blobs[d] = nb
	return true
}

// RestoreBlob re-binds a chunk digest to the given bytes if they match the
// digest — healing a tampered blob (e.g. re-fetched from an honest mirror).
func (r *Registry) RestoreBlob(d cryptbox.Digest, chunk []byte) bool {
	if cryptbox.Sum(chunk) != d {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.blobs[d]; ok {
		r.blobBytes += int64(len(chunk) - len(old))
	} else {
		r.blobBytes += int64(len(chunk))
	}
	r.blobs[d] = append([]byte(nil), chunk...)
	return true
}

// TamperManifest rewrites a stored manifest in place.
func (r *Registry) TamperManifest(ref string, mutate func(*image.Manifest)) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.manifests[ref]
	if !ok {
		return false
	}
	mutate(&m)
	r.manifests[ref] = m
	return true
}

// ---- HTTP front end ----

// parseDigest parses a digest in the "sha256:<hex>" rendering (the bare
// hex form is accepted too). Shared plumbing lives in httpx; this wrapper
// pins the registry's historic error scope.
func parseDigest(s string) (cryptbox.Digest, error) {
	return httpx.ParseDigest("registry", s)
}

// writeConditional serves a content-addressed response with the shared
// digest-conditional helper (ETag = digest, If-None-Match → 304).
func writeConditional(w http.ResponseWriter, req *http.Request, d cryptbox.Digest, contentType string, body func() ([]byte, error)) {
	httpx.WriteConditional(w, req, d, contentType, body)
}

// Handler returns an http.Handler exposing the registry:
//
//	PUT  /v2/images/{name}/{tag}      (full image JSON — ingest path)
//	GET  /v2/images/{name}/{tag}      (full image JSON — legacy whole-image pull)
//	GET  /v2/manifests/{name}/{tag}   (image manifest JSON)
//	GET  /v2/layers/{digest}          (layer chunk manifest JSON, conditional)
//	GET  /v2/blobs/{digest}           (one sealed chunk, conditional)
//	GET  /v2/snapshots/{name}         (latest sealed snapshot record JSON)
//	GET  /v2/list
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	splitRef := func(w http.ResponseWriter, req *http.Request, prefix string) (name, tag string, ok bool) {
		// Image names may contain slashes (e.g. smartgrid/analytics); the
		// final path segment is the tag, everything before it the name.
		ref := strings.TrimPrefix(req.URL.Path, prefix)
		cut := strings.LastIndex(ref, "/")
		if cut <= 0 || cut == len(ref)-1 {
			http.Error(w, "want "+prefix+"{name}/{tag}", http.StatusBadRequest)
			return "", "", false
		}
		return ref[:cut], ref[cut+1:], true
	}
	mux.HandleFunc("/v2/images/", func(w http.ResponseWriter, req *http.Request) {
		name, tag, ok := splitRef(w, req, "/v2/images/")
		if !ok {
			return
		}
		switch req.Method {
		case http.MethodPut:
			body, err := io.ReadAll(io.LimitReader(req.Body, 64<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			var img image.Image
			if err := json.Unmarshal(body, &img); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if img.Manifest.Name != name || img.Manifest.Tag != tag {
				http.Error(w, "manifest reference mismatch", http.StatusBadRequest)
				return
			}
			if err := r.Push(&img); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			w.WriteHeader(http.StatusCreated)
		case http.MethodGet:
			img, err := r.Pull(name, tag)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			httpx.WriteJSON(w, img)
		default:
			httpx.MethodNotAllowed(w)
		}
	})
	mux.HandleFunc("/v2/manifests/", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			httpx.MethodNotAllowed(w)
			return
		}
		name, tag, ok := splitRef(w, req, "/v2/manifests/")
		if !ok {
			return
		}
		m, err := r.Manifest(name, tag)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		httpx.WriteJSON(w, m)
	})
	mux.HandleFunc("/v2/layers/", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			httpx.MethodNotAllowed(w)
			return
		}
		d, err := parseDigest(strings.TrimPrefix(req.URL.Path, "/v2/layers/"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeConditional(w, req, d, "application/json", func() ([]byte, error) {
			m, err := r.LayerManifest(d)
			if err != nil {
				return nil, err
			}
			return json.Marshal(m)
		})
	})
	mux.HandleFunc("/v2/blobs/", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			httpx.MethodNotAllowed(w)
			return
		}
		d, err := parseDigest(strings.TrimPrefix(req.URL.Path, "/v2/blobs/"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeConditional(w, req, d, "application/octet-stream", func() ([]byte, error) {
			return r.Blob(d)
		})
	})
	mux.HandleFunc("/v2/snapshots/", r.snapshotHandler)
	mux.HandleFunc("/v2/list", func(w http.ResponseWriter, req *http.Request) {
		httpx.WriteJSON(w, r.List())
	})
	return mux
}

// Client talks to a registry HTTP front end. It implements the same
// chunk-granular pull surface as the in-process Registry, so the container
// engine can pull through either.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: http.DefaultClient}
}

// Push uploads an image.
func (c *Client) Push(img *image.Image) error {
	body, err := json.Marshal(img)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v2/images/%s/%s", c.BaseURL, img.Manifest.Name, img.Manifest.Tag)
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("registry: push failed: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// get fetches one URL, mapping 404 to ErrNotFound.
func (c *Client) get(url, what string) ([]byte, error) {
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, what)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("registry: fetching %s: %s", what, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// Pull downloads and returns an image. The caller must Verify it.
func (c *Client) Pull(name, tag string) (*image.Image, error) {
	raw, err := c.get(fmt.Sprintf("%s/v2/images/%s/%s", c.BaseURL, name, tag), name+":"+tag)
	if err != nil {
		return nil, err
	}
	var img image.Image
	if err := json.Unmarshal(raw, &img); err != nil {
		return nil, err
	}
	return &img, nil
}

// Manifest fetches an image manifest. The caller must verify its signature.
func (c *Client) Manifest(name, tag string) (image.Manifest, error) {
	raw, err := c.get(fmt.Sprintf("%s/v2/manifests/%s/%s", c.BaseURL, name, tag), name+":"+tag)
	if err != nil {
		return image.Manifest{}, err
	}
	var m image.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return image.Manifest{}, err
	}
	return m, nil
}

// LayerManifest fetches and validates one layer's chunk manifest.
func (c *Client) LayerManifest(d cryptbox.Digest) (*transfer.Manifest, error) {
	raw, err := c.get(fmt.Sprintf("%s/v2/layers/%s", c.BaseURL, d), d.String())
	if err != nil {
		return nil, err
	}
	return transfer.DecodeManifest(raw)
}

// Blob fetches one sealed chunk by content digest.
func (c *Client) Blob(d cryptbox.Digest) ([]byte, error) {
	return c.get(fmt.Sprintf("%s/v2/blobs/%s", c.BaseURL, d), d.String())
}
