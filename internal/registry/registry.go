// Package registry implements the image registry of the secure Docker
// workflow (paper Figure 2). The registry is untrusted: it stores secure
// images whose security-relevant content is protected by the FS protection
// file, so clients verify digests and manifest signatures after every pull
// instead of trusting the store. The package offers both an in-process
// store and an HTTP front end (net/http) with a matching client.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/image"
)

// Errors returned by the registry and client.
var (
	ErrNotFound = errors.New("registry: not found")
	ErrConflict = errors.New("registry: digest already bound to different content")
)

// Registry is an in-memory content-addressed image store.
type Registry struct {
	mu        sync.RWMutex
	manifests map[string]image.Manifest       // "name:tag" -> manifest
	layers    map[cryptbox.Digest]image.Layer // digest -> layer
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		manifests: make(map[string]image.Manifest),
		layers:    make(map[cryptbox.Digest]image.Layer),
	}
}

// Push stores an image. An honest registry checks layer digests on ingest;
// the Tamper* methods below simulate a dishonest one.
func (r *Registry) Push(img *image.Image) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, l := range img.Layers {
		d := l.Digest()
		if d != img.Manifest.LayerDigests[i] {
			return fmt.Errorf("%w: layer %d", image.ErrDigestMismatch, i)
		}
		r.layers[d] = l
	}
	r.manifests[img.Ref()] = img.Manifest
	return nil
}

// Pull retrieves an image by reference. Callers must img.Verify() — the
// registry is not trusted to return what was pushed.
func (r *Registry) Pull(name, tag string) (*image.Image, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.manifests[name+":"+tag]
	if !ok {
		return nil, fmt.Errorf("%w: %s:%s", ErrNotFound, name, tag)
	}
	img := &image.Image{Manifest: m}
	for _, d := range m.LayerDigests {
		l, ok := r.layers[d]
		if !ok {
			return nil, fmt.Errorf("%w: layer %s", ErrNotFound, d)
		}
		img.Layers = append(img.Layers, l)
	}
	return img, nil
}

// List returns all stored references.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.manifests))
	for ref := range r.manifests {
		out = append(out, ref)
	}
	return out
}

// TamperLayer overwrites the stored layer bytes behind a digest without
// updating the digest — what a malicious registry operator can do. Clients
// must detect this on Verify.
func (r *Registry) TamperLayer(d cryptbox.Digest, mutate func(*image.Layer)) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.layers[d]
	if !ok {
		return false
	}
	mutate(&l)
	r.layers[d] = l
	return true
}

// TamperManifest rewrites a stored manifest in place.
func (r *Registry) TamperManifest(ref string, mutate func(*image.Manifest)) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.manifests[ref]
	if !ok {
		return false
	}
	mutate(&m)
	r.manifests[ref] = m
	return true
}

// ---- HTTP front end ----

// Handler returns an http.Handler exposing the registry:
//
//	PUT  /v2/images/{name}/{tag}   (full image JSON)
//	GET  /v2/images/{name}/{tag}
//	GET  /v2/list
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/images/", func(w http.ResponseWriter, req *http.Request) {
		// Image names may contain slashes (e.g. smartgrid/analytics); the
		// final path segment is the tag, everything before it the name.
		ref := strings.TrimPrefix(req.URL.Path, "/v2/images/")
		cut := strings.LastIndex(ref, "/")
		if cut <= 0 || cut == len(ref)-1 {
			http.Error(w, "want /v2/images/{name}/{tag}", http.StatusBadRequest)
			return
		}
		name, tag := ref[:cut], ref[cut+1:]
		switch req.Method {
		case http.MethodPut:
			body, err := io.ReadAll(io.LimitReader(req.Body, 64<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			var img image.Image
			if err := json.Unmarshal(body, &img); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if img.Manifest.Name != name || img.Manifest.Tag != tag {
				http.Error(w, "manifest reference mismatch", http.StatusBadRequest)
				return
			}
			if err := r.Push(&img); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			w.WriteHeader(http.StatusCreated)
		case http.MethodGet:
			img, err := r.Pull(name, tag)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(img); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/v2/list", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(r.List()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Client talks to a registry HTTP front end.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: http.DefaultClient}
}

// Push uploads an image.
func (c *Client) Push(img *image.Image) error {
	body, err := json.Marshal(img)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v2/images/%s/%s", c.BaseURL, img.Manifest.Name, img.Manifest.Tag)
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("registry: push failed: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Pull downloads and returns an image. The caller must Verify it.
func (c *Client) Pull(name, tag string) (*image.Image, error) {
	resp, err := c.HTTP.Get(fmt.Sprintf("%s/v2/images/%s/%s", c.BaseURL, name, tag))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s:%s", ErrNotFound, name, tag)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("registry: pull failed: %s", resp.Status)
	}
	var img image.Image
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&img); err != nil {
		return nil, err
	}
	return &img, nil
}
