package registry

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"securecloud/internal/image"
	"securecloud/internal/sim"
)

// bigImage builds an image whose layers span multiple chunks.
func bigImage(t *testing.T, name string, shared []byte, unique byte) *image.Image {
	t.Helper()
	priv := ed25519.NewKeyFromSeed(bytes.Repeat([]byte{unique}, ed25519.SeedSize))
	uniq := make([]byte, 3*LayerChunkSize/2)
	rng := sim.NewRand(int64(unique))
	rng.Read(uniq)
	img, err := image.NewBuilder(name, "1.0").
		AddLayer(map[string][]byte{"/lib/base": shared}).
		AddLayer(map[string][]byte{"/bin/app": uniq}).
		SetEntrypoint("/bin/app").
		Build(priv)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func sharedBase(t *testing.T) []byte {
	t.Helper()
	base := make([]byte, 4*LayerChunkSize)
	sim.NewRand(7).Read(base)
	return base
}

func TestPushRejectsShortManifestBeforeIndexing(t *testing.T) {
	r := New()
	img := testImage(t, "svc/a", "1.0")
	img.Manifest.LayerDigests = nil // short manifest, layers still attached
	if err := r.Push(img); !errors.Is(err, ErrManifest) {
		t.Fatalf("short manifest: err = %v, want ErrManifest", err)
	}
	if st := r.Stats(); st.Manifests != 0 || st.Layers != 0 || st.Blobs != 0 {
		t.Fatalf("short manifest left state behind: %+v", st)
	}
	// The converse: more digests than layers.
	img2 := testImage(t, "svc/b", "1.0")
	img2.Layers = nil
	if err := r.Push(img2); !errors.Is(err, ErrManifest) {
		t.Fatalf("manifest without layers: err = %v, want ErrManifest", err)
	}
}

func TestChunkDedupAcrossImages(t *testing.T) {
	r := New()
	base := sharedBase(t)
	a := bigImage(t, "svc/a", base, 1)
	b := bigImage(t, "svc/b", base, 2)
	if err := r.Push(a); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if err := r.Push(b); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	// The 4-chunk base layer is shared: pushing b added only b's unique
	// app layer chunks and counted the base chunks as dedup hits.
	baseChunks := 0
	if lm, err := r.LayerManifest(a.Manifest.LayerDigests[0]); err == nil {
		baseChunks = lm.Chunks()
	} else {
		t.Fatal(err)
	}
	if baseChunks < 4 {
		t.Fatalf("base layer only %d chunks; test wants a multi-chunk layer", baseChunks)
	}
	if got := st.DedupHits - after.DedupHits; got != uint64(baseChunks) {
		t.Fatalf("dedup hits from second push = %d, want %d (the shared base)", got, baseChunks)
	}
	if st.Layers != 3 {
		t.Fatalf("stored %d layers, want 3 (base deduplicated)", st.Layers)
	}
	// Pull both and verify bit-identical reconstruction.
	for _, img := range []*image.Image{a, b} {
		got, err := r.Pull(img.Manifest.Name, "1.0")
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Verify(); err != nil {
			t.Fatal(err)
		}
		want := img.Flatten()
		have := got.Flatten()
		if len(want) != len(have) {
			t.Fatalf("flatten size mismatch")
		}
		for p, wb := range want {
			if !bytes.Equal(have[p], wb) {
				t.Fatalf("file %q differs after chunked round trip", p)
			}
		}
	}
}

func TestTamperBlobBreaksExactlyThatLayer(t *testing.T) {
	r := New()
	base := sharedBase(t)
	img := bigImage(t, "svc/a", base, 3)
	if err := r.Push(img); err != nil {
		t.Fatal(err)
	}
	lm, err := r.LayerManifest(img.Manifest.LayerDigests[0])
	if err != nil {
		t.Fatal(err)
	}
	victim := lm.Leaves[1]
	orig, err := r.Blob(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !r.TamperBlob(victim, func(b []byte) []byte { b[3] ^= 1; return b }) {
		t.Fatal("tamper hook missed blob")
	}
	if _, err := r.Pull("svc/a", "1.0"); err == nil {
		t.Fatal("pull reassembled a layer from a tampered chunk")
	}
	// Healing the blob restores the image.
	if r.RestoreBlob(victim, orig[:len(orig)-1]) {
		t.Fatal("RestoreBlob accepted bytes that do not match the digest")
	}
	if !r.RestoreBlob(victim, orig) {
		t.Fatal("RestoreBlob rejected the original bytes")
	}
	got, err := r.Pull("svc/a", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPChunkEndpoints(t *testing.T) {
	r := New()
	img := bigImage(t, "svc/http", sharedBase(t), 4)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	if err := c.Push(img); err != nil {
		t.Fatal(err)
	}

	m, err := c.Manifest("svc/http", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "svc/http" || len(m.LayerDigests) != 2 {
		t.Fatalf("manifest = %+v", m)
	}
	lm, err := c.LayerManifest(m.LayerDigests[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := lm.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, leaf := range lm.Leaves {
		chunk, err := c.Blob(leaf)
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		want, err := r.Blob(leaf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(chunk, want) {
			t.Fatalf("blob %d differs over HTTP", i)
		}
	}
	if _, err := c.LayerManifest(img.Layers[0].Digest()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Manifest("ghost", "1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing manifest: %v", err)
	}
}

func TestHTTPDigestConditionalGet(t *testing.T) {
	r := New()
	img := bigImage(t, "svc/cond", sharedBase(t), 5)
	if err := r.Push(img); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	lm, err := r.LayerManifest(img.Manifest.LayerDigests[0])
	if err != nil {
		t.Fatal(err)
	}
	leaf := lm.Leaves[0]
	url := srv.URL + "/v2/blobs/" + leaf.String()

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("unconditional GET: %s, etag %q", resp.Status, etag)
	}

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET with matching digest: %s, want 304", resp2.Status)
	}
	// Layer manifests revalidate the same way.
	lurl := srv.URL + "/v2/layers/" + img.Manifest.LayerDigests[0].String()
	lreq, _ := http.NewRequest(http.MethodGet, lurl, nil)
	lreq.Header.Set("If-None-Match", `"`+img.Manifest.LayerDigests[0].String()+`"`)
	resp3, err := http.DefaultClient.Do(lreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional layer GET: %s, want 304", resp3.Status)
	}
	if _, err := http.Get(srv.URL + "/v2/blobs/not-a-digest"); err != nil {
		t.Fatal(err)
	}
}
