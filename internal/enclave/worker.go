package enclave

import "securecloud/internal/cryptbox"

// NewWorker builds the shard-per-core deployment unit the concurrent
// layers (scbr.ShardedIndex, kvstore.ShardedStore, the parallel map/reduce
// engine) are assembled from: a fresh simulated platform from cfg hosting
// one initialized enclave of the given size, measured over name, with its
// heap arena ready for allocation. Because every worker owns a whole
// platform, workers share no simulated state — LLC, EPC and clock are
// private — so parallel execution across workers charges exactly the same
// totals as sequential execution, which is what keeps the sharded layers'
// figures deterministic.
func NewWorker(cfg Config, size uint64, name string) (*Enclave, *Arena, error) {
	return NewSignedWorker(cfg, size, name, cryptbox.Sum([]byte(name)))
}

// NewSignedWorker is NewWorker with a caller-chosen MRSIGNER. Layers whose
// key-release policies select on the signer identity use it so every
// worker of one logical service shares a signer — the application plane's
// replica fleets attest this way: one MRSIGNER per service, however many
// replicas are launched or restarted over the service's lifetime.
func NewSignedWorker(cfg Config, size uint64, name string, signer cryptbox.Digest) (*Enclave, *Arena, error) {
	p := NewPlatform(cfg)
	enc, err := p.ECreate(size, signer)
	if err != nil {
		return nil, nil, err
	}
	if _, err := enc.EAdd([]byte(name)); err != nil {
		return nil, nil, err
	}
	if err := enc.EInit(); err != nil {
		return nil, nil, err
	}
	arena, err := enc.HeapArena()
	if err != nil {
		return nil, nil, err
	}
	return enc, arena, nil
}
