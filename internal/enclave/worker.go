package enclave

import "securecloud/internal/cryptbox"

// NewWorker builds the shard-per-core deployment unit the concurrent
// layers (scbr.ShardedIndex, kvstore.ShardedStore, the parallel map/reduce
// engine) are assembled from: a fresh simulated platform from cfg hosting
// one initialized enclave of the given size, measured over name, with its
// heap arena ready for allocation. Because every worker owns a whole
// platform, workers share no simulated state — LLC, EPC and clock are
// private — so parallel execution across workers charges exactly the same
// totals as sequential execution, which is what keeps the sharded layers'
// figures deterministic.
func NewWorker(cfg Config, size uint64, name string) (*Enclave, *Arena, error) {
	p := NewPlatform(cfg)
	enc, err := p.ECreate(size, cryptbox.Sum([]byte(name)))
	if err != nil {
		return nil, nil, err
	}
	if _, err := enc.EAdd([]byte(name)); err != nil {
		return nil, nil, err
	}
	if err := enc.EInit(); err != nil {
		return nil, nil, err
	}
	arena, err := enc.HeapArena()
	if err != nil {
		return nil, nil, err
	}
	return enc, arena, nil
}
