package enclave

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenMemoryHierarchy pins the exact accounting outcome of a fixed
// pseudo-random access pattern over the simulated memory hierarchy: total
// cycles, fault count, and the per-cause event counts (which encode the
// LLC hit/miss sequence and the EPC CLOCK eviction sequence). The golden
// file was recorded on the reference implementation; the batched fast path
// must reproduce every value exactly. Regenerate deliberately with
// GOLDEN_UPDATE=1 when the cost model itself changes.
func TestGoldenMemoryHierarchy(t *testing.T) {
	type outcome struct {
		Cycles      uint64 `json:"cycles"`
		Faults      uint64 `json:"faults"`
		LLCHits     uint64 `json:"llc_hit_events"`
		MEE         uint64 `json:"mee_events"`
		DRAM        uint64 `json:"dram_events"`
		EPCFaults   uint64 `json:"epc_fault_events"`
		MinorFaults uint64 `json:"minor_fault_events"`
		AEX         uint64 `json:"aex"`
	}
	type golden struct {
		Inside  outcome `json:"inside"`
		Outside outcome `json:"outside"`
	}

	run := func(inside bool) outcome {
		p := smallPlatform() // 48 usable EPC pages, 256-line LLC
		var mem *Memory
		var base uint64
		const ws = 80 * 4096 // 80 pages: beyond the EPC, beyond the LLC
		if inside {
			e := buildEnclave(t, p, ws+(1<<16), []byte("golden"))
			a, err := e.HeapArena()
			if err != nil {
				t.Fatal(err)
			}
			base = a.Alloc(ws)
			mem = e.Memory()
		} else {
			mem = p.UntrustedMemory()
			base = p.AllocUntrusted(ws)
		}
		mem.ResetAccounting()
		// Deterministic xorshift pattern of mixed-size accesses, including
		// multi-line and page-crossing ones.
		rng := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < 5000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			addr := base + rng%(ws-512)
			size := int(1 + rng%500)
			mem.Access(addr, size, i%3 == 0)
		}
		o := outcome{
			Cycles:      uint64(mem.Cycles()),
			Faults:      mem.Faults(),
			LLCHits:     mem.Events(CauseLLCHit),
			MEE:         mem.Events(CauseMEE),
			DRAM:        mem.Events(CauseDRAM),
			EPCFaults:   mem.Events(CauseEPCFault),
			MinorFaults: mem.Events(CauseMinorFault),
		}
		if inside {
			o.AEX = mem.enc.AEXCount()
		}
		return o
	}

	got := golden{Inside: run(true), Outside: run(false)}

	path := filepath.Join("testdata", "golden_memory.json")
	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded golden metrics: %s", raw)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (record with GOLDEN_UPDATE=1): %v", err)
	}
	var want golden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("memory-hierarchy metrics drifted:\n got %+v\nwant %+v", got, want)
	}
}
