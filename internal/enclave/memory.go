package enclave

import (
	"fmt"
	"sync"
	"sync/atomic"

	"securecloud/internal/sim"
)

// Memory is an accounting view of the platform memory hierarchy for one
// protection domain: either the inside of a specific enclave or the
// untrusted world. Higher layers run ordinary Go data structures but route
// a simulated Access for every logical memory touch; the view charges
// cache, MEE and paging costs into its ledger and advances the platform
// clock.
//
// Accounting is batched: each Access (or bulk AccessN/AccessStride) walks
// its cache lines accumulating per-cause event counts in locals and commits
// once — one ledger charge and one clock advance per call instead of per
// line. The committed totals are bit-identical to per-line charging because
// every per-event cost is a fixed platform constant.
type Memory struct {
	p   *Platform
	enc *Enclave // nil for the untrusted view

	ledger  ledger
	faults  uint64 // page faults (EPC faults inside, minor faults outside); guarded by p.mu
	touched map[uint64]struct{}
}

// ledger is Memory's per-cause accounting store. All mutations happen with
// the platform mutex held — one lock discipline for every counter this view
// owns — while the running total is additionally kept atomically so the
// hot Cycles() read never takes a lock.
type ledger struct {
	total  atomic.Uint64
	costs  [sim.MaxCauses]sim.Cycles
	events [sim.MaxCauses]uint64
}

// addLocked records events occurrences of cause costing cost in total.
// Caller holds p.mu.
func (l *ledger) addLocked(cause sim.Cause, cost sim.Cycles, events uint64) {
	l.costs[cause] += cost
	l.events[cause] += events
	l.total.Add(uint64(cost))
}

// eventsLocked returns the event count of cause. Caller holds p.mu.
func (l *ledger) eventsLocked(cause sim.Cause) uint64 { return l.events[cause] }

// acct accumulates one batch's per-cause event counts while p.mu is held.
type acct struct {
	hits   uint64
	mee    uint64
	dram   uint64
	epcF   uint64
	minorF uint64
	cpu    sim.Cycles // pure-CPU cycles folded into the same commit
	cpuN   uint64     // number of CPU charges folded in
}

// accessLocked walks the cache lines of [addr, addr+size) updating cache
// and pager state, accumulating event counts into st. Caller holds p.mu.
// The walk goes page by page — one residency touch and one set of division
// results per page, with the inner loop iterating line tags directly.
func (m *Memory) accessLocked(st *acct, addr uint64, size int) {
	p := m.p
	line := p.cfg.LineSize
	pageSize := p.cfg.PageSize
	first := addr / line
	last := (addr + uint64(size) - 1) / line
	inside := m.enc != nil
	if first == last {
		// Single-line access: the dominant case for data-structure probes.
		// The page derives from the line-start address, as in the loop
		// below — addr itself may sit on a later page when LineSize does
		// not divide PageSize.
		page := first * line / pageSize
		m.touchPageLocked(st, page)
		if p.cache.accessTag(first, page) {
			st.hits++
		} else if inside {
			st.mee++
		} else {
			st.dram++
		}
		return
	}
	for l := first; l <= last; {
		la := l * line
		page := la / pageSize
		m.touchPageLocked(st, page)
		var end uint64 // last tag on this page
		if lpp := p.linesPerPage; lpp != 0 {
			end = (page+1)*lpp - 1
		} else {
			end = ((page+1)*pageSize - 1) / line
		}
		if end > last {
			end = last
		}
		for ; l <= end; l++ {
			if p.cache.accessTag(l, page) {
				st.hits++
			} else if inside {
				st.mee++
			} else {
				st.dram++
			}
		}
	}
}

// commitLocked charges the accumulated batch: one ledger commit, one fault
// update and one clock advance. Caller holds p.mu.
func (m *Memory) commitLocked(st *acct) {
	cost := m.p.cfg.Cost
	var total sim.Cycles
	add := func(cause sim.Cause, c sim.Cycles, events uint64) {
		if events == 0 {
			return
		}
		m.ledger.addLocked(cause, c, events)
		total += c
	}
	add(causeLLCHit, sim.Cycles(st.hits)*cost.LLCHit, st.hits)
	add(causeMEE, sim.Cycles(st.mee)*cost.MEEAccess, st.mee)
	add(causeDRAM, sim.Cycles(st.dram)*cost.DRAMAccess, st.dram)
	add(causeEPCFault, sim.Cycles(st.epcF)*cost.EPCFault, st.epcF)
	add(causeMinorFault, sim.Cycles(st.minorF)*cost.MinorFault, st.minorF)
	if st.cpu > 0 {
		add(causeCPU, st.cpu, st.cpuN)
	}
	m.faults += st.epcF + st.minorF
	if m.enc != nil {
		m.enc.aex += st.epcF // every EPC fault implies an asynchronous exit
	}
	if total > 0 {
		m.p.clock.Advance(total)
	}
}

// Access simulates a read (write=false) or write (write=true) of size bytes
// at the simulated address addr.
func (m *Memory) Access(addr uint64, size int, write bool) {
	m.AccessRange(addr, size, write)
}

// AccessRange simulates one contiguous access of size bytes at addr,
// charging all touched lines and pages in a single batched commit. Reads
// and writes cost the same in this model.
func (m *Memory) AccessRange(addr uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	_ = write
	var st acct
	m.p.mu.Lock()
	m.accessLocked(&st, addr, size)
	m.commitLocked(&st)
	m.p.mu.Unlock()
}

// AccessRangeCPU is AccessRange plus cpu cycles of pure computation folded
// into the same commit — the shape of one data-structure probe (read the
// node, pay the comparison), charged with a single lock round-trip.
func (m *Memory) AccessRangeCPU(addr uint64, size int, write bool, cpu sim.Cycles) {
	if size <= 0 {
		if cpu > 0 {
			m.ChargeCPU(cpu)
		}
		return
	}
	_ = write
	var st acct
	if cpu > 0 {
		st.cpu, st.cpuN = cpu, 1
	}
	m.p.mu.Lock()
	m.accessLocked(&st, addr, size)
	m.commitLocked(&st)
	m.p.mu.Unlock()
}

// Span is an open accounting batch over one Memory view: an arbitrary
// sequence of accesses and CPU charges — e.g. one whole index traversal —
// accumulated under a single platform-lock acquisition and committed once
// by End. Cache and paging state evolve access by access exactly as with
// individual calls; only the lock round-trips and ledger commits collapse.
// The platform mutex is held from BeginSpan to End, so spans must be
// short-lived, must not nest, and must not call other Memory or Platform
// methods. Counters read by other goroutines (Cycles, Faults) only reflect
// a span after End.
type Span struct {
	m  *Memory
	st acct

	// ro marks a snapshot span: accesses probe the frozen cache and
	// residency state without mutating it (see BeginSnapshotSpan). roLines
	// and roPages are the span-local overlay — lines and pages this span
	// already touched, which behave as cached/resident for the rest of the
	// span, exactly as they would after a mutating first touch.
	ro      bool
	roLines map[uint64]struct{}
	roPages map[uint64]struct{}
}

// BeginSpan opens a span. Every span must be closed with End.
func (m *Memory) BeginSpan() *Span {
	sp := &Span{m: m}
	m.p.mu.Lock()
	return sp
}

// roSpanPool recycles snapshot spans (and their overlay maps), since the
// concurrent match path opens one per operation.
var roSpanPool = sync.Pool{New: func() any {
	return &Span{
		ro:      true,
		roLines: make(map[uint64]struct{}, 512),
		roPages: make(map[uint64]struct{}, 64),
	}
}}

// BeginSnapshotSpan opens a read-only accounting span: every Access is
// charged against the platform's current cache and residency state as a
// pure probe — no LRU stamps move, no CLOCK bits flip, no pages load — so
// the global simulation state is bit-identical before and after the span.
// Within the span a local overlay makes re-touches of the same line or page
// behave as hits, mirroring what a mutating first touch would have made
// them; evictions a real execution might trigger are deferred (never
// modeled), which is the documented snapshot approximation.
//
// Because snapshot spans mutate nothing, any interleaving of concurrent
// snapshot spans charges the same totals — the property the sharded SCBR
// broker relies on for deterministic parallel matching. The platform mutex
// is only taken briefly by End to commit the ledger; the probe phase runs
// lock-free. Callers must therefore guarantee no mutating access (ordinary
// Access/Span, EEnter, allocation) runs on this platform while a snapshot
// span is open — e.g. by holding the read side of a lock whose write side
// covers all mutators.
func (m *Memory) BeginSnapshotSpan() *Span {
	sp := roSpanPool.Get().(*Span)
	sp.m = m
	return sp
}

// Access records one access of size bytes at addr within the span.
func (sp *Span) Access(addr uint64, size int, write bool) {
	_ = write
	if size <= 0 {
		return
	}
	if sp.ro {
		sp.probe(addr, size)
		return
	}
	sp.m.accessLocked(&sp.st, addr, size)
}

// AccessCPU records one access plus cpu cycles of pure computation — the
// shape of one data-structure probe.
func (sp *Span) AccessCPU(addr uint64, size int, write bool, cpu sim.Cycles) {
	_ = write
	if cpu > 0 {
		sp.st.cpu += cpu
		sp.st.cpuN++
	}
	if size <= 0 {
		return
	}
	if sp.ro {
		sp.probe(addr, size)
		return
	}
	sp.m.accessLocked(&sp.st, addr, size)
}

// ChargeCPU records pure computation cycles within the span.
func (sp *Span) ChargeCPU(c sim.Cycles) {
	if c > 0 {
		sp.st.cpu += c
		sp.st.cpuN++
	}
}

// probe walks the cache lines of [addr, addr+size) read-only, accumulating
// hit/miss/fault counts against frozen platform state plus the span-local
// overlay. Mirrors accessLocked's page-by-page walk.
func (sp *Span) probe(addr uint64, size int) {
	m := sp.m
	p := m.p
	line := p.cfg.LineSize
	pageSize := p.cfg.PageSize
	first := addr / line
	last := (addr + uint64(size) - 1) / line
	inside := m.enc != nil
	for l := first; l <= last; {
		la := l * line
		page := la / pageSize
		sp.probePage(page)
		var end uint64 // last tag on this page
		if lpp := p.linesPerPage; lpp != 0 {
			end = (page+1)*lpp - 1
		} else {
			end = ((page+1)*pageSize - 1) / line
		}
		if end > last {
			end = last
		}
		for ; l <= end; l++ {
			hit := true
			if _, ok := sp.roLines[l]; !ok {
				sp.roLines[l] = struct{}{}
				hit = p.cache.probeTag(l, page)
			}
			if hit {
				sp.st.hits++
			} else if inside {
				sp.st.mee++
			} else {
				sp.st.dram++
			}
		}
	}
}

// probePage accounts residency for one page read-only: the first touch of a
// non-resident page in this span charges a fault; afterwards the page is
// locally resident.
func (sp *Span) probePage(page uint64) {
	if _, ok := sp.roPages[page]; ok {
		return
	}
	sp.roPages[page] = struct{}{}
	m := sp.m
	if m.enc != nil {
		if !m.p.pager.isResident(page) {
			sp.st.epcF++
		}
		return
	}
	if _, ok := m.touched[page]; !ok {
		sp.st.minorF++
	}
}

// End commits the span's accumulated accounting and releases the platform.
// Snapshot spans take the platform mutex only here, for the commit itself,
// and are recycled.
func (sp *Span) End() {
	if sp.ro {
		m := sp.m
		m.p.mu.Lock()
		m.commitLocked(&sp.st)
		m.p.mu.Unlock()
		sp.m = nil
		sp.st = acct{}
		clear(sp.roLines)
		clear(sp.roPages)
		roSpanPool.Put(sp)
		return
	}
	sp.m.commitLocked(&sp.st)
	sp.m.p.mu.Unlock()
	sp.m = nil
}

// AccessN simulates one access of size bytes at each address in addrs — a
// scattered bulk access, e.g. every node of a bucket or every record of a
// batch — under a single platform lock acquisition and a single accounting
// commit. Addresses are touched in slice order, so cache and paging state
// evolve exactly as for individual Access calls.
func (m *Memory) AccessN(addrs []uint64, size int, write bool) {
	if size <= 0 || len(addrs) == 0 {
		return
	}
	_ = write
	var st acct
	m.p.mu.Lock()
	for _, addr := range addrs {
		m.accessLocked(&st, addr, size)
	}
	m.commitLocked(&st)
	m.p.mu.Unlock()
}

// AccessStride simulates n accesses of size bytes at base, base+stride,
// base+2*stride, ... under a single lock acquisition and accounting commit.
// It is the bulk form of the classic touch-every-page warm-up loop.
func (m *Memory) AccessStride(base, stride uint64, n, size int, write bool) {
	if size <= 0 || n <= 0 {
		return
	}
	_ = write
	var st acct
	m.p.mu.Lock()
	addr := base
	for i := 0; i < n; i++ {
		m.accessLocked(&st, addr, size)
		addr += stride
	}
	m.commitLocked(&st)
	m.p.mu.Unlock()
}

// touchPageLocked handles residency for one page, accumulating fault
// events into st. Caller holds p.mu.
func (m *Memory) touchPageLocked(st *acct, page uint64) {
	p := m.p
	if m.enc != nil {
		faulted, evicted, ok := p.pager.touchPage(page)
		if faulted {
			st.epcF++
			if ok {
				// The victim's cached lines are flushed on EWB.
				p.cache.invalidatePage(evicted)
			}
		}
		return
	}
	if _, ok := m.touched[page]; !ok {
		m.touched[page] = struct{}{}
		st.minorF++
	}
}

// charge records a single non-memory cost (transition, AEX, CPU) against
// the ledger and the platform clock.
func (m *Memory) charge(cause sim.Cause, c sim.Cycles) {
	m.p.mu.Lock()
	m.ledger.addLocked(cause, c, 1)
	m.p.mu.Unlock()
	m.p.clock.Advance(c)
}

// CauseCPU labels pure computation charged via ChargeCPU.
const CauseCPU = "cpu"

// ChargeCPU charges pure computation cycles. Arithmetic costs the same
// inside and outside an enclave — SGX taxes memory, not ALUs — so harness
// code charges it symmetrically to both views.
func (m *Memory) ChargeCPU(c sim.Cycles) { m.charge(causeCPU, c) }

// Cycles returns the total simulated cycles charged to this view.
func (m *Memory) Cycles() sim.Cycles { return sim.Cycles(m.ledger.total.Load()) }

// Faults returns the number of page faults charged to this view.
func (m *Memory) Faults() uint64 {
	m.p.mu.Lock()
	defer m.p.mu.Unlock()
	return m.faults
}

// Breakdown returns the per-cause cycle ledger, keyed by cause name.
func (m *Memory) Breakdown() map[string]sim.Cycles {
	m.p.mu.Lock()
	defer m.p.mu.Unlock()
	out := make(map[string]sim.Cycles)
	for i := range m.ledger.costs {
		if m.ledger.events[i] > 0 {
			out[sim.Cause(i).String()] = m.ledger.costs[i]
		}
	}
	return out
}

// Events returns how many times the named cause was charged to this view.
func (m *Memory) Events(cause string) uint64 {
	c, ok := sim.LookupCause(cause)
	if !ok {
		return 0
	}
	m.p.mu.Lock()
	defer m.p.mu.Unlock()
	return m.ledger.eventsLocked(c)
}

// ResetAccounting zeroes the ledger and fault counter without touching
// residency state, so a harness can warm up and then measure. Every
// accounting mutation — charges, fault counts, and this reset — happens
// under the platform mutex, so no concurrent accessor can observe a torn
// half-reset where the fault counter is zeroed but the ledger still
// carries pre-reset charges.
func (m *Memory) ResetAccounting() {
	m.p.mu.Lock()
	m.faults = 0
	m.ledger.costs = [sim.MaxCauses]sim.Cycles{}
	m.ledger.events = [sim.MaxCauses]uint64{}
	m.ledger.total.Store(0)
	m.p.mu.Unlock()
}

// Accounting bundles the memory view and arena a data structure charges
// its simulated costs through. The zero value means "unaccounted": the
// structure runs as plain Go data with no simulated-cost bookkeeping.
// Consumer packages (kvstore, fsshield, eventbus) alias this type.
type Accounting struct {
	Mem   *Memory
	Arena *Arena
}

// Enabled reports whether both halves of the accounting wiring are set.
func (a Accounting) Enabled() bool { return a.Mem != nil && a.Arena != nil }

// Arena is a bump allocator handing out simulated addresses from a fixed
// region of one Memory view. Data-structure nodes in the higher layers
// carry these addresses so their traversals can be charged to the memory
// model.
type Arena struct {
	mem  *Memory
	base uint64
	next uint64
	end  uint64
}

// NewArena returns an arena over [base, base+size).
func NewArena(mem *Memory, base, size uint64) *Arena {
	return &Arena{mem: mem, base: base, next: base, end: base + size}
}

// Alloc reserves size bytes (8-byte aligned) and returns the address.
// It panics when the region is exhausted — a simulated out-of-memory.
func (a *Arena) Alloc(size int) uint64 {
	if size <= 0 {
		size = 1
	}
	addr := a.next
	a.next = align(a.next+uint64(size), 8)
	if a.next > a.end {
		panic(fmt.Sprintf("enclave: arena exhausted at %d bytes (capacity %d)",
			a.next-a.base, a.end-a.base))
	}
	return addr
}

// Memory returns the accounting view this arena allocates from.
func (a *Arena) Memory() *Memory { return a.mem }

// Used returns the number of bytes allocated so far.
func (a *Arena) Used() uint64 { return a.next - a.base }

// Capacity returns the total arena size in bytes.
func (a *Arena) Capacity() uint64 { return a.end - a.base }
