package enclave

import (
	"fmt"

	"securecloud/internal/sim"
)

// Memory is an accounting view of the platform memory hierarchy for one
// protection domain: either the inside of a specific enclave or the
// untrusted world. Higher layers run ordinary Go data structures but route
// a simulated Access for every logical memory touch; the view charges
// cache, MEE and paging costs into its ledger and advances the platform
// clock.
type Memory struct {
	p   *Platform
	enc *Enclave // nil for the untrusted view

	ledger  sim.Counter
	faults  uint64 // page faults (EPC faults inside, minor faults outside)
	touched map[uint64]struct{}
}

// Access simulates a read (write=false) or write (write=true) of size bytes
// at the simulated address addr.
func (m *Memory) Access(addr uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	p := m.p
	p.mu.Lock()
	defer p.mu.Unlock()

	line := p.cfg.LineSize
	first := addr / line
	last := (addr + uint64(size) - 1) / line
	var lastPage uint64 = ^uint64(0)
	for l := first; l <= last; l++ {
		la := l * line
		page := la / p.cfg.PageSize
		if page != lastPage {
			m.touchPageLocked(la)
			lastPage = page
		}
		if p.cache.access(la) {
			m.charge(CauseLLCHit, p.cfg.Cost.LLCHit)
		} else if m.enc != nil {
			m.charge(CauseMEE, p.cfg.Cost.MEEAccess)
		} else {
			m.charge(CauseDRAM, p.cfg.Cost.DRAMAccess)
		}
	}
	_ = write // reads and writes cost the same in this model
}

// touchPageLocked handles page residency for the line address la.
func (m *Memory) touchPageLocked(la uint64) {
	p := m.p
	if m.enc != nil {
		faulted, evicted, ok := p.pager.touch(la)
		if faulted {
			m.faults++
			m.charge(CauseEPCFault, p.cfg.Cost.EPCFault)
			m.enc.aex++ // an EPC fault implies an asynchronous exit
			if ok {
				// The victim's cached lines are flushed on EWB.
				p.cache.invalidateRange(evicted*p.cfg.PageSize, p.cfg.PageSize)
			}
		}
		return
	}
	page := la / p.cfg.PageSize
	if _, ok := m.touched[page]; !ok {
		m.touched[page] = struct{}{}
		m.faults++
		m.charge(CauseMinorFault, p.cfg.Cost.MinorFault)
	}
}

func (m *Memory) charge(cause string, c sim.Cycles) {
	m.ledger.Charge(cause, c)
	m.p.clock.Advance(c)
}

// CauseCPU labels pure computation charged via ChargeCPU.
const CauseCPU = "cpu"

// ChargeCPU charges pure computation cycles. Arithmetic costs the same
// inside and outside an enclave — SGX taxes memory, not ALUs — so harness
// code charges it symmetrically to both views.
func (m *Memory) ChargeCPU(c sim.Cycles) { m.charge(CauseCPU, c) }

// Cycles returns the total simulated cycles charged to this view.
func (m *Memory) Cycles() sim.Cycles { return m.ledger.Total() }

// Faults returns the number of page faults charged to this view.
func (m *Memory) Faults() uint64 {
	m.p.mu.Lock()
	defer m.p.mu.Unlock()
	return m.faults
}

// Breakdown returns the per-cause cycle ledger.
func (m *Memory) Breakdown() map[string]sim.Cycles { return m.ledger.Snapshot() }

// ResetAccounting zeroes the ledger and fault counter without touching
// residency state, so a harness can warm up and then measure.
func (m *Memory) ResetAccounting() {
	m.p.mu.Lock()
	m.faults = 0
	m.p.mu.Unlock()
	m.ledger.Reset()
}

// Arena is a bump allocator handing out simulated addresses from a fixed
// region of one Memory view. Data-structure nodes in the higher layers
// carry these addresses so their traversals can be charged to the memory
// model.
type Arena struct {
	mem  *Memory
	base uint64
	next uint64
	end  uint64
}

// NewArena returns an arena over [base, base+size).
func NewArena(mem *Memory, base, size uint64) *Arena {
	return &Arena{mem: mem, base: base, next: base, end: base + size}
}

// Alloc reserves size bytes (8-byte aligned) and returns the address.
// It panics when the region is exhausted — a simulated out-of-memory.
func (a *Arena) Alloc(size int) uint64 {
	if size <= 0 {
		size = 1
	}
	addr := a.next
	a.next = align(a.next+uint64(size), 8)
	if a.next > a.end {
		panic(fmt.Sprintf("enclave: arena exhausted at %d bytes (capacity %d)",
			a.next-a.base, a.end-a.base))
	}
	return addr
}

// Memory returns the accounting view this arena allocates from.
func (a *Arena) Memory() *Memory { return a.mem }

// Used returns the number of bytes allocated so far.
func (a *Arena) Used() uint64 { return a.next - a.base }

// Capacity returns the total arena size in bytes.
func (a *Arena) Capacity() uint64 { return a.end - a.base }
