package enclave

import (
	"testing"
)

// smallPlatform returns a platform with a tiny EPC and LLC so paging
// behaviour can be exercised quickly.
func smallPlatform() *Platform {
	return NewPlatform(Config{
		EPCBytes:         64 * 4096, // 64 pages total
		EPCReservedBytes: 16 * 4096, // 48 usable
		LLCBytes:         16 << 10,  // 256 lines
		LLCWays:          4,
		LineSize:         64,
		PageSize:         4096,
	})
}

func TestUntrustedAccessChargesMinorFaultOnce(t *testing.T) {
	p := smallPlatform()
	m := p.UntrustedMemory()
	base := p.AllocUntrusted(4096)
	m.Access(base, 8, false)
	if m.Faults() != 1 {
		t.Fatalf("first touch faults = %d, want 1", m.Faults())
	}
	m.Access(base+64, 8, false)
	if m.Faults() != 1 {
		t.Fatalf("second touch on same page faulted again: %d", m.Faults())
	}
}

func TestUntrustedLLCHitCheaperThanMiss(t *testing.T) {
	p := smallPlatform()
	m := p.UntrustedMemory()
	base := p.AllocUntrusted(4096)
	m.Access(base, 8, false) // cold: fault + DRAM
	cold := m.Cycles()
	m.Access(base, 8, false) // hot: LLC hit
	hot := m.Cycles() - cold
	if hot >= cold {
		t.Fatalf("hot access (%d) not cheaper than cold (%d)", hot, cold)
	}
	if hot != p.Config().Cost.LLCHit {
		t.Fatalf("hot access = %d cycles, want LLCHit %d", hot, p.Config().Cost.LLCHit)
	}
}

func TestEnclaveAccessFaultsWhenExceedingEPC(t *testing.T) {
	p := smallPlatform()
	e := buildEnclave(t, p, 1<<20, []byte("code")) // 256 pages >> 48 EPC pages
	a, err := e.HeapArena()
	if err != nil {
		t.Fatal(err)
	}
	mem := e.Memory()
	mem.ResetAccounting()

	// Touch 100 distinct pages: more than the EPC can hold.
	addrs := make([]uint64, 100)
	for i := range addrs {
		addrs[i] = a.Alloc(4096)
		mem.Access(addrs[i], 8, true)
	}
	firstPass := mem.Faults()
	if firstPass != 100 {
		t.Fatalf("first pass faults = %d, want 100 (every page cold)", firstPass)
	}
	// Second pass must fault again for most pages (working set > EPC).
	for _, addr := range addrs {
		mem.Access(addr, 8, false)
	}
	secondPass := mem.Faults() - firstPass
	if secondPass == 0 {
		t.Fatal("no faults on second pass despite working set exceeding EPC")
	}
}

func TestEnclaveAccessNoFaultsWhenFittingEPC(t *testing.T) {
	p := smallPlatform()
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	a, _ := e.HeapArena()
	mem := e.Memory()
	mem.ResetAccounting()

	// 20 pages fit comfortably in 48 EPC pages.
	addrs := make([]uint64, 20)
	for i := range addrs {
		addrs[i] = a.Alloc(4096)
		mem.Access(addrs[i], 8, true)
	}
	cold := mem.Faults()
	for _, addr := range addrs {
		mem.Access(addr, 8, false)
	}
	if mem.Faults() != cold {
		t.Fatalf("re-touching resident pages faulted: %d -> %d", cold, mem.Faults())
	}
}

func TestEPCFaultCostDominates(t *testing.T) {
	p := smallPlatform()
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	a, _ := e.HeapArena()
	mem := e.Memory()
	mem.ResetAccounting()
	addr := a.Alloc(4096)
	mem.Access(addr, 8, true)
	bd := mem.Breakdown()
	if bd[CauseEPCFault] == 0 {
		t.Fatal("EPC fault not charged for cold enclave access")
	}
	if bd[CauseEPCFault] <= bd[CauseMEE] {
		t.Fatal("EPC fault cost should dominate the MEE line fill")
	}
}

func TestEPCFaultCountsAsAEX(t *testing.T) {
	p := smallPlatform()
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	a, _ := e.HeapArena()
	before := e.AEXCount()
	mem := e.Memory()
	mem.Access(a.Alloc(4096), 8, true)
	if e.AEXCount() != before+1 {
		t.Fatalf("AEXCount = %d, want %d (EPC fault exits the enclave)", e.AEXCount(), before+1)
	}
}

func TestAccessSpansMultipleLines(t *testing.T) {
	p := smallPlatform()
	m := p.UntrustedMemory()
	base := p.AllocUntrusted(4096)
	m.Access(base, 8, false)
	one := m.Events(CauseDRAM) + m.Events(CauseLLCHit)
	m.Access(base+1024, 256, false) // 4 lines
	total := m.Events(CauseDRAM) + m.Events(CauseLLCHit)
	if total-one != 4 {
		t.Fatalf("256-byte access touched %d lines, want 4", total-one)
	}
}

func TestResetAccountingKeepsResidency(t *testing.T) {
	p := smallPlatform()
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	a, _ := e.HeapArena()
	mem := e.Memory()
	addr := a.Alloc(4096)
	mem.Access(addr, 8, true) // fault in
	mem.ResetAccounting()
	mem.Access(addr, 8, false) // still resident: no fault
	if mem.Faults() != 0 {
		t.Fatal("ResetAccounting evicted pages")
	}
	if mem.Cycles() == 0 {
		t.Fatal("no cycles charged after reset")
	}
}

func TestDestroyReleasesEPC(t *testing.T) {
	p := smallPlatform()
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	a, _ := e.HeapArena()
	mem := e.Memory()
	for i := 0; i < 10; i++ {
		mem.Access(a.Alloc(4096), 8, true)
	}
	if p.EPCResidentPages() == 0 {
		t.Fatal("no resident pages before destroy")
	}
	before := p.EPCResidentPages()
	e.Destroy()
	if got := p.EPCResidentPages(); got >= before {
		t.Fatalf("EPC pages not released: %d -> %d", before, got)
	}
}

func TestEnclavesCompeteForEPC(t *testing.T) {
	p := smallPlatform() // 48 usable pages
	a := buildEnclave(t, p, 1<<20, []byte("A"))
	b := buildEnclave(t, p, 1<<20, []byte("B"))
	aa, _ := a.HeapArena()
	ba, _ := b.HeapArena()

	// A fills the EPC.
	aAddrs := make([]uint64, 40)
	for i := range aAddrs {
		aAddrs[i] = aa.Alloc(4096)
		a.Memory().Access(aAddrs[i], 8, true)
	}
	// B streams through, evicting A.
	for i := 0; i < 40; i++ {
		b.Memory().Access(ba.Alloc(4096), 8, true)
	}
	a.Memory().ResetAccounting()
	for _, addr := range aAddrs {
		a.Memory().Access(addr, 8, false)
	}
	if a.Memory().Faults() == 0 {
		t.Fatal("enclave A kept all pages despite B streaming through the shared EPC")
	}
}

func TestLLCSimBasics(t *testing.T) {
	c := newLLC(1024, 64, 4096, 2) // 16 lines, 8 sets, 2-way
	if c.access(0) {
		t.Fatal("cold access hit")
	}
	if !c.access(0) {
		t.Fatal("warm access missed")
	}
	// Fill the set of address 0 (same set every 8 lines * 64B = 512B stride).
	c.access(512)
	c.access(1024) // evicts LRU (which is addr 0 after its last touch? order: 0 touched, 512, now 1024 evicts 0)
	if c.access(0) {
		t.Fatal("evicted line still present")
	}
}

func TestLLCInvalidateRange(t *testing.T) {
	c := newLLC(4096, 64, 4096, 4)
	c.access(0)    // page 0
	c.access(64)   // page 0
	c.access(4096) // page 1
	n := c.lines()
	c.invalidateRange(0, 4096) // flushes page 0: drops lines at 0 and 64
	if got := c.lines(); got != n-2 {
		t.Fatalf("lines after invalidate = %d, want %d", got, n-2)
	}
	if c.access(0) {
		t.Fatal("invalidated line still hit")
	}
	if !c.access(4096) {
		t.Fatal("line on untouched page was dropped")
	}
}

func TestLLCStampRenormalizationPreservesLRU(t *testing.T) {
	c := newLLC(4096, 64, 4096, 4) // 16 sets, 4-way
	// Fill one set in a known recency order: strides of numSets*lineSize
	// land in the same set.
	const stride = 16 * 64
	for i := uint64(0); i < 4; i++ {
		c.access(i * stride) // LRU order after fills: 0,1,2,3 (0 oldest)
	}
	c.access(1 * stride) // now 0 is oldest, then 2, 3, 1
	c.renormalizeStamps()
	if c.tick != 4 {
		t.Fatalf("tick after renormalization = %d, want assoc (4)", c.tick)
	}
	// A fifth line must evict the LRU, which is line 0.
	c.access(4 * stride)
	if !c.access(2*stride) || !c.access(3*stride) || !c.access(1*stride) {
		t.Fatal("non-LRU line was evicted after stamp renormalization")
	}
	if c.access(0) {
		t.Fatal("LRU line survived eviction after stamp renormalization")
	}
}

func TestEPCSimCLOCK(t *testing.T) {
	e := newEPC(4*4096, 0, 4096) // 4 pages
	for p := uint64(0); p < 4; p++ {
		faulted, _, evicted := e.touch(p * 4096)
		if !faulted || evicted {
			t.Fatalf("page %d: faulted=%v evicted=%v, want fault without eviction", p, faulted, evicted)
		}
	}
	// Re-touch: all resident.
	for p := uint64(0); p < 4; p++ {
		if faulted, _, _ := e.touch(p * 4096); faulted {
			t.Fatalf("resident page %d faulted", p)
		}
	}
	// Fifth page evicts someone.
	faulted, _, evicted := e.touch(4 * 4096)
	if !faulted || !evicted {
		t.Fatal("fifth page into 4-page EPC did not evict")
	}
	if e.residentPages() != 4 {
		t.Fatalf("resident = %d, want 4", e.residentPages())
	}
}

func TestUsableEPCBytes(t *testing.T) {
	p := NewPlatform(Config{})
	usable := p.UsableEPCBytes()
	if usable >= 128<<20 {
		t.Fatalf("usable EPC %d not below 128 MiB (metadata must be reserved)", usable)
	}
	if usable < 80<<20 {
		t.Fatalf("usable EPC %d implausibly small", usable)
	}
}
