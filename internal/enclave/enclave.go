package enclave

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"

	"securecloud/internal/cryptbox"
)

// State tracks the enclave lifecycle.
type State int

// Enclave lifecycle states.
const (
	StateCreated State = iota // after ECREATE, pages may be added
	StateInitialized
	StateDestroyed
)

func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateInitialized:
		return "initialized"
	case StateDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Lifecycle errors.
var (
	ErrNotInitialized = errors.New("enclave: not initialized")
	ErrInitialized    = errors.New("enclave: already initialized")
	ErrDestroyed      = errors.New("enclave: destroyed")
	ErrNotEntered     = errors.New("enclave: EEXIT without matching EENTER")
	ErrRangeFull      = errors.New("enclave: ELRANGE exhausted")
)

// Enclave is one simulated SGX enclave on a Platform.
type Enclave struct {
	p      *Platform
	id     uint64
	base   uint64
	size   uint64
	signer cryptbox.Digest
	svn    uint16

	state     State
	measuring hash.Hash
	mrenclave cryptbox.Digest

	mem      *Memory
	addNext  uint64 // next EADD offset
	heapNext uint64 // bump pointer for Alloc after EINIT

	depth int    // EENTER nesting depth
	aex   uint64 // asynchronous exits (interrupts + EPC faults)
}

// ECreate allocates a new enclave of the given virtual size (rounded up to
// a whole number of pages) signed by signer (MRSIGNER). This mirrors the
// SGX ECREATE instruction: it fixes the ELRANGE and starts the MRENCLAVE
// measurement.
func (p *Platform) ECreate(size uint64, signer cryptbox.Digest) (*Enclave, error) {
	if size == 0 {
		return nil, errors.New("enclave: ECREATE with zero size")
	}
	size = align(size, p.cfg.PageSize)

	p.mu.Lock()
	id := p.nextID
	p.nextID++
	base := p.nextBase
	p.nextBase += size + p.cfg.PageSize // guard page between ranges
	p.mu.Unlock()

	e := &Enclave{
		p:         p,
		id:        id,
		base:      base,
		size:      size,
		signer:    signer,
		state:     StateCreated,
		measuring: sha256.New(),
	}
	e.mem = &Memory{p: p, enc: e}
	e.extend("ECREATE", binaryU64(size))

	p.mu.Lock()
	p.enclaves[id] = e
	p.mu.Unlock()
	return e, nil
}

// ID returns the platform-local enclave identifier.
func (e *Enclave) ID() uint64 { return e.id }

// Platform returns the platform hosting this enclave.
func (e *Enclave) Platform() *Platform { return e.p }

// Base returns the start of the enclave's simulated ELRANGE.
func (e *Enclave) Base() uint64 { return e.base }

// Size returns the ELRANGE size in bytes.
func (e *Enclave) Size() uint64 { return e.size }

// State returns the lifecycle state.
func (e *Enclave) State() State { return e.state }

// Signer returns MRSIGNER: the identity of the enclave author.
func (e *Enclave) Signer() cryptbox.Digest { return e.signer }

// SetSVN sets the enclave's security version number (ISVSVN in the SGX
// SIGSTRUCT): the author bumps it when shipping a security fix, so relying
// parties can refuse older, vulnerable builds (TCB recovery). It must be
// set before EInit.
func (e *Enclave) SetSVN(svn uint16) error {
	if e.state != StateCreated {
		return ErrInitialized
	}
	e.svn = svn
	return nil
}

// SVN returns the enclave's security version number.
func (e *Enclave) SVN() uint16 { return e.svn }

// Memory returns the enclave's accounting view of protected memory.
func (e *Enclave) Memory() *Memory { return e.mem }

// EAdd copies data into the enclave at the next free offset before
// initialization, extending the measurement over both the page metadata and
// contents (EADD + EEXTEND). It returns the simulated address of the data.
func (e *Enclave) EAdd(data []byte) (uint64, error) {
	switch e.state {
	case StateInitialized:
		return 0, ErrInitialized
	case StateDestroyed:
		return 0, ErrDestroyed
	}
	n := align(uint64(len(data)), e.p.cfg.PageSize)
	if n == 0 {
		n = e.p.cfg.PageSize
	}
	if e.addNext+n > e.size {
		return 0, fmt.Errorf("%w: need %d bytes, %d free", ErrRangeFull, n, e.size-e.addNext)
	}
	addr := e.base + e.addNext
	e.extend("EADD", binaryU64(e.addNext))
	e.extend("EEXTEND", data)
	e.addNext += n
	e.heapNext = e.addNext
	// Copying the pages into the EPC touches them.
	e.mem.Access(addr, len(data), true)
	return addr, nil
}

// EInit finalizes the measurement and makes the enclave executable. After
// EInit no further pages can be added (SGX v1 semantics — no EDMM).
func (e *Enclave) EInit() error {
	switch e.state {
	case StateInitialized:
		return ErrInitialized
	case StateDestroyed:
		return ErrDestroyed
	}
	copy(e.mrenclave[:], e.measuring.Sum(nil))
	e.measuring = nil
	e.state = StateInitialized
	// SGX v1 has no dynamic memory management: every page of the ELRANGE
	// was EADDed at build time, which loads it into the EPC. Model that
	// by touching all pages through the pager (no cost: build time). For
	// enclaves larger than the EPC, only the most recently loaded pages
	// remain resident — exactly the hardware behaviour.
	e.p.mu.Lock()
	for addr := e.base; addr < e.base+e.size; addr += e.p.cfg.PageSize {
		e.p.pager.touch(addr)
	}
	e.p.mu.Unlock()
	return nil
}

// Measurement returns MRENCLAVE. It is only defined once initialized.
func (e *Enclave) Measurement() (cryptbox.Digest, error) {
	if e.state != StateInitialized {
		return cryptbox.Digest{}, ErrNotInitialized
	}
	return e.mrenclave, nil
}

// EEnter performs a synchronous entry into the enclave, charging the
// transition cost for the EENTER/EEXIT pair. Entries may nest (one per
// logical thread / TCS).
func (e *Enclave) EEnter() error {
	if e.state != StateInitialized {
		return ErrNotInitialized
	}
	e.p.mu.Lock()
	e.depth++
	e.p.mu.Unlock()
	e.mem.charge(causeTransition, e.p.cfg.Cost.Transition)
	return nil
}

// EExit leaves the enclave.
func (e *Enclave) EExit() error {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	if e.depth == 0 {
		return ErrNotEntered
	}
	e.depth--
	return nil
}

// Entered reports whether any logical thread is currently inside.
func (e *Enclave) Entered() bool {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return e.depth > 0
}

// OCall charges the cost of one synchronous world switch (EEXIT to execute
// a system call outside, then EENTER back), as incurred by a conventional
// syscall from enclave code. SCONE's asynchronous syscall interface exists
// precisely to avoid this cost.
func (e *Enclave) OCall() {
	e.mem.charge(causeTransition, e.p.cfg.Cost.Transition)
}

// Interrupt simulates an asynchronous enclave exit (AEX) plus ERESUME, as
// caused by interrupts and exceptions while executing enclave code.
func (e *Enclave) Interrupt() {
	e.p.mu.Lock()
	e.aex++
	e.p.mu.Unlock()
	e.mem.charge(causeAEX, e.p.cfg.Cost.AEX)
}

// AEXCount returns the number of asynchronous exits so far (interrupts and
// EPC faults).
func (e *Enclave) AEXCount() uint64 {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return e.aex
}

// Alloc reserves size bytes of enclave heap and returns its simulated
// address. Allocation is only valid after EInit (the heap pages were added,
// zeroed, at build time as in SGX v1).
func (e *Enclave) Alloc(size int) (uint64, error) {
	if e.state != StateInitialized {
		return 0, ErrNotInitialized
	}
	n := align(uint64(size), 8)
	if e.heapNext+n > e.size {
		return 0, ErrRangeFull
	}
	addr := e.base + e.heapNext
	e.heapNext += n
	return addr, nil
}

// HeapArena returns an Arena over the remaining enclave heap.
func (e *Enclave) HeapArena() (*Arena, error) {
	if e.state != StateInitialized {
		return nil, ErrNotInitialized
	}
	a := NewArena(e.mem, e.base+e.heapNext, e.size-e.heapNext)
	e.heapNext = e.size
	return a, nil
}

// HeapUsed returns the bytes of enclave heap handed out by Alloc.
func (e *Enclave) HeapUsed() uint64 { return e.heapNext - e.addNext }

// Destroy releases the enclave's EPC pages (EREMOVE).
func (e *Enclave) Destroy() {
	if e.state == StateDestroyed {
		return
	}
	e.state = StateDestroyed
	e.p.mu.Lock()
	e.p.pager.release(e.base, e.size)
	delete(e.p.enclaves, e.id)
	e.p.mu.Unlock()
}

func (e *Enclave) extend(op string, data []byte) {
	e.measuring.Write([]byte(op))
	e.measuring.Write(binaryU64(uint64(len(data))))
	e.measuring.Write(data)
}

func binaryU64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}
