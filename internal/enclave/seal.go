package enclave

import (
	"fmt"

	"securecloud/internal/cryptbox"
)

// SealPolicy selects the identity a sealing key is bound to, mirroring the
// SGX KEYREQUEST policy bits.
type SealPolicy int

const (
	// SealToEnclave binds the key to MRENCLAVE: only the exact same
	// enclave code can unseal. Used for the FS protection file hash chain.
	SealToEnclave SealPolicy = iota
	// SealToSigner binds the key to MRSIGNER: any enclave from the same
	// author (e.g. an upgraded micro-service) can unseal.
	SealToSigner
)

func (sp SealPolicy) String() string {
	if sp == SealToEnclave {
		return "MRENCLAVE"
	}
	return "MRSIGNER"
}

// SealKey derives this enclave's sealing key under the given policy. The
// key is a deterministic function of the platform device key and the chosen
// identity, as with the SGX EGETKEY instruction: the same enclave on the
// same platform always gets the same key, a different enclave or platform
// never does.
func (e *Enclave) SealKey(policy SealPolicy) (cryptbox.Key, error) {
	if e.state != StateInitialized {
		return cryptbox.Key{}, ErrNotInitialized
	}
	var ident cryptbox.Digest
	switch policy {
	case SealToEnclave:
		ident = e.mrenclave
	case SealToSigner:
		ident = e.signer
	default:
		return cryptbox.Key{}, fmt.Errorf("enclave: unknown seal policy %d", policy)
	}
	raw, err := cryptbox.HKDF(e.p.deviceKey[:], ident[:], []byte("seal:"+policy.String()), cryptbox.KeySize)
	if err != nil {
		return cryptbox.Key{}, err
	}
	return cryptbox.KeyFromBytes(raw)
}

// Seal encrypts-and-authenticates data under the enclave's sealing key.
func (e *Enclave) Seal(plaintext, aad []byte, policy SealPolicy) ([]byte, error) {
	key, err := e.SealKey(policy)
	if err != nil {
		return nil, err
	}
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return box.Seal(plaintext, aad)
}

// Unseal reverses Seal. It fails with cryptbox.ErrAuth when the blob was
// sealed by a different identity or tampered with.
func (e *Enclave) Unseal(sealed, aad []byte, policy SealPolicy) ([]byte, error) {
	key, err := e.SealKey(policy)
	if err != nil {
		return nil, err
	}
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return box.Open(sealed, aad)
}
