// Package enclave implements a deterministic simulator of Intel SGX v1
// enclaves: the enclave page cache (EPC) with OS-serviced paging, the memory
// encryption engine (MEE) cost on last-level-cache misses, the enclave
// lifecycle (ECREATE / EADD / EEXTEND / EINIT / EENTER / EEXIT / AEX),
// MRENCLAVE measurement, and sealing-key derivation.
//
// SecureCloud's published evaluation (Figure 3 of the paper) is entirely a
// memory-hierarchy effect: content-based-routing performance collapses by
// ~18x once the subscription database outgrows the EPC, because evicted
// pages must be encrypted, integrity-protected and swapped by the untrusted
// OS. This package reproduces exactly those mechanisms as a cycle-cost
// model over simulated addresses, so the higher layers (SCBR, SCONE, the
// micro-service runtime) can run real Go data structures while charging
// faithful SGX costs for every memory access and every enclave transition.
package enclave

import "securecloud/internal/sim"

// CostModel holds the per-event cycle costs of the simulated platform. The
// defaults are calibrated against public SGX v1 measurements (SCONE,
// OSDI '16; Costan & Devadas, "Intel SGX Explained"). Absolute values scale
// reported times; the experiments in this repository evaluate ratios, which
// depend only on the relative magnitudes.
type CostModel struct {
	// LLCHit is charged for every access that hits the last-level cache,
	// inside or outside an enclave: the MEE sits behind the LLC, so cache
	// hits are unencrypted and cost the same in both worlds.
	LLCHit sim.Cycles

	// DRAMAccess is charged for an LLC miss outside an enclave.
	DRAMAccess sim.Cycles

	// MEEAccess is charged for an LLC miss inside an enclave whose page is
	// EPC-resident: the memory encryption engine decrypts the line and
	// walks its integrity tree (counter + MAC verification).
	MEEAccess sim.Cycles

	// EPCFault is charged when an enclave touches a page that has been
	// evicted from the EPC. It covers the asynchronous exit, the OS page
	// fault handler, EWB of a victim page (encrypt + version + MAC,
	// preceded by the cross-core TLB shootdown EBLOCK/ETRACK requires),
	// ELDU of the faulting page (decrypt + verify), and the resume.
	// Published measurements put the end-to-end cost at tens of
	// microseconds — vastly above a normal minor fault.
	EPCFault sim.Cycles

	// MinorFault is charged for a first-touch (demand-zero) fault on
	// untrusted memory.
	MinorFault sim.Cycles

	// Transition is charged for one synchronous EENTER/EEXIT pair.
	Transition sim.Cycles

	// AEX is charged for an asynchronous enclave exit plus ERESUME.
	AEX sim.Cycles
}

// DefaultCostModel returns the calibrated SGX v1 cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		LLCHit:     40,
		DRAMAccess: 100,
		MEEAccess:  300,
		EPCFault:   120_000,
		MinorFault: 3_000,
		Transition: 8_000,
		AEX:        7_000,
	}
}

// Cause labels used in the cycle ledger. Exposed so harnesses can report a
// cost breakdown per cause (the string keys of Memory.Breakdown).
const (
	CauseLLCHit     = "llc-hit"
	CauseDRAM       = "dram"
	CauseMEE        = "mee"
	CauseEPCFault   = "epc-fault"
	CauseMinorFault = "minor-fault"
	CauseTransition = "transition"
	CauseAEX        = "aex"
)

// Typed causes: interned once at package init so the accounting hot path
// charges by array index instead of hashing a string per cache line.
var (
	causeLLCHit     = sim.RegisterCause(CauseLLCHit)
	causeDRAM       = sim.RegisterCause(CauseDRAM)
	causeMEE        = sim.RegisterCause(CauseMEE)
	causeEPCFault   = sim.RegisterCause(CauseEPCFault)
	causeMinorFault = sim.RegisterCause(CauseMinorFault)
	causeTransition = sim.RegisterCause(CauseTransition)
	causeAEX        = sim.RegisterCause(CauseAEX)
	causeCPU        = sim.RegisterCause(CauseCPU)
)
