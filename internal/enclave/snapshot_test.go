package enclave

import (
	"sync"
	"testing"

	"securecloud/internal/cryptbox"
)

// snapshotEnclave builds a small enclave on a shrunken platform whose EPC
// holds only part of the ELRANGE, so both resident and evicted pages exist.
func snapshotEnclave(t testing.TB) (*Platform, *Enclave, uint64) {
	t.Helper()
	p := NewPlatform(Config{
		EPCBytes:         1 << 20,
		EPCReservedBytes: 512 << 10,
		LLCBytes:         64 << 10,
		LLCWays:          8,
		LineSize:         64,
		PageSize:         4096,
	})
	var signer cryptbox.Digest
	e, err := p.ECreate(4<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EAdd([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	return p, e, e.Base() + (8 << 10)
}

// TestSnapshotSpanChargesWithoutMutating: snapshot probes charge cycles and
// faults into the view's ledger but leave every piece of platform state —
// EPC residency, cache contents, CLOCK/LRU metadata — untouched, verified
// by comparing a follow-up mutating access sequence against a twin platform
// that never saw the snapshot.
func TestSnapshotSpanChargesWithoutMutating(t *testing.T) {
	runTwin := func(withSnapshots bool) (afterCost uint64, snapCost uint64, snapFaults uint64) {
		p, e, base := snapshotEnclave(t)
		mem := e.Memory()
		// Deterministic warm-up: stride over half the range.
		mem.AccessStride(base, 4096, 256, 64, false)

		if withSnapshots {
			resBefore := p.EPCResidentPages()
			c0, f0 := uint64(mem.Cycles()), mem.Faults()
			for i := 0; i < 10; i++ {
				sp := mem.BeginSnapshotSpan()
				// Probe a spread of addresses: warm, cold, repeated.
				sp.Access(base, 256, false)
				sp.Access(base+(3<<20), 256, false) // far: evicted/cold page
				sp.Access(base+(3<<20), 256, false) // re-touch: overlay hit
				sp.AccessCPU(base+512, 64, false, 100)
				sp.End()
			}
			snapCost = uint64(mem.Cycles()) - c0
			snapFaults = mem.Faults() - f0
			if p.EPCResidentPages() != resBefore {
				t.Fatalf("snapshot probes changed EPC residency: %d -> %d",
					resBefore, p.EPCResidentPages())
			}
		}

		// The follow-up mutating sequence must cost the same on both twins.
		c1 := uint64(mem.Cycles())
		mem.AccessStride(base, 4096, 512, 64, false)
		mem.AccessRange(base+(2<<20), 8192, true)
		return uint64(mem.Cycles()) - c1, snapCost, snapFaults
	}

	plainCost, _, _ := runTwin(false)
	snappedCost, snapCost, snapFaults := runTwin(true)
	if plainCost != snappedCost {
		t.Fatalf("snapshot spans perturbed platform state: follow-up cost %d, want %d",
			snappedCost, plainCost)
	}
	if snapCost == 0 {
		t.Fatal("snapshot probes charged nothing")
	}
	if snapFaults == 0 {
		t.Fatal("cold-page snapshot probes charged no faults")
	}
}

// TestSnapshotSpanDeterministicTotals: with mutators excluded, the total
// charged by a set of snapshot spans is independent of how they interleave
// across goroutines.
func TestSnapshotSpanDeterministicTotals(t *testing.T) {
	run := func(workers int) uint64 {
		_, e, base := snapshotEnclave(t)
		mem := e.Memory()
		mem.AccessStride(base, 4096, 256, 64, false)
		mem.ResetAccounting()
		const ops = 64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := w; i < ops; i += workers {
					sp := mem.BeginSnapshotSpan()
					sp.Access(base+uint64(i)*8192, 4096, false)
					sp.AccessCPU(base, 64, false, 50)
					sp.End()
				}
			}(w)
		}
		wg.Wait()
		return uint64(mem.Cycles())
	}
	seq := run(1)
	par := run(4)
	if seq != par {
		t.Fatalf("interleaving changed snapshot totals: %d vs %d", seq, par)
	}
	if seq == 0 {
		t.Fatal("snapshot spans charged nothing")
	}
}
