package enclave

// epc simulates the enclave page cache: the limited pool of physically
// protected memory that all enclaves on a platform share. SGX v1 provisions
// 128 MiB of processor-reserved memory, of which a substantial slice is
// consumed by the enclave page cache map (EPCM) and other SGX metadata —
// which is why, as the paper observes, "the performance drop is evident
// before" the 128 MB line.
//
// Replacement is CLOCK (second chance), approximating the Linux SGX
// driver's reclaim behaviour.
//
// Residency is tracked two-level: ELRANGEs are allocated contiguously
// upward from enclaveRangeBase, so pages in the enclave range live in a
// dense page-offset array (one array load on the touch fast path). Pages
// below the range — untrusted addresses routed through an enclave view,
// e.g. the shield's shared-memory syscall queue — fall back to a small map.
type epc struct {
	pageSize uint64
	capacity int // usable pages

	// basePage is enclaveRangeBase/pageSize: the origin of index.
	basePage uint64
	// index maps page-basePage -> ring slot (or -1) for enclave-range
	// pages. It grows on demand with the highest page touched.
	index []int32
	// low tracks pages below basePage (rare; untrusted regions accessed
	// through an enclave view).
	low      map[uint64]int32
	resident int
	// lastPage/lastIdx memoize the most recent resident hit so repeated
	// touches of one page (consecutive probes of the same node) skip the
	// index lookup. lastIdx is -1 when invalid.
	lastPage uint64
	lastIdx  int32
	// The CLOCK ring, split into parallel arrays: refd is the hot byte the
	// touch fast path sets (kept dense so it stays cache-resident), pages
	// and occupied are only read when the hand sweeps.
	pages    []uint64
	refd     []bool
	occupied []bool
	hand     int

	evictions uint64
	loads     uint64
}

func newEPC(totalBytes, reservedBytes, pageSize uint64) *epc {
	if pageSize == 0 {
		pageSize = 4096
	}
	usable := int64(totalBytes) - int64(reservedBytes)
	if usable < int64(pageSize) {
		usable = int64(pageSize)
	}
	cap := int(uint64(usable) / pageSize)
	return &epc{
		pageSize: pageSize,
		capacity: cap,
		basePage: enclaveRangeBase / pageSize,
		pages:    make([]uint64, cap),
		refd:     make([]bool, cap),
		occupied: make([]bool, cap),
		lastIdx:  -1,
	}
}

// lookup returns the ring slot of page, or -1 when not resident.
func (e *epc) lookup(page uint64) int32 {
	if page >= e.basePage {
		off := page - e.basePage
		if off >= uint64(len(e.index)) {
			return -1
		}
		return e.index[off]
	}
	if idx, ok := e.low[page]; ok {
		return idx
	}
	return -1
}

// set records page as resident in ring slot idx.
func (e *epc) set(page uint64, idx int32) {
	if page >= e.basePage {
		off := page - e.basePage
		if off >= uint64(len(e.index)) {
			grown := make([]int32, off+1+1024)
			for i := len(e.index); i < len(grown); i++ {
				grown[i] = -1
			}
			copy(grown, e.index)
			e.index = grown
		}
		e.index[off] = idx
		return
	}
	if e.low == nil {
		e.low = make(map[uint64]int32)
	}
	e.low[page] = idx
}

// clear removes page from the residency index.
func (e *epc) clear(page uint64) {
	if page >= e.basePage {
		off := page - e.basePage
		if off < uint64(len(e.index)) {
			e.index[off] = -1
		}
		return
	}
	delete(e.low, page)
}

// touch ensures the page containing addr is EPC-resident. It returns
// (faulted, evictedPage, evictedValid): faulted is true when the page had to
// be loaded (an EPC page fault in SGX terms), and evictedPage identifies a
// victim page written back to untrusted memory, if any.
func (e *epc) touch(addr uint64) (faulted bool, evicted uint64, evictedValid bool) {
	return e.touchPage(addr / e.pageSize)
}

// touchPage is the hot-path form of touch for callers that already know
// the page number.
func (e *epc) touchPage(page uint64) (faulted bool, evicted uint64, evictedValid bool) {
	if e.lastIdx >= 0 && page == e.lastPage {
		e.refd[e.lastIdx] = true
		return false, 0, false
	}
	if idx := e.lookup(page); idx >= 0 {
		e.refd[idx] = true
		e.lastPage, e.lastIdx = page, idx
		return false, 0, false
	}
	e.loads++
	// Find a free or victim slot with CLOCK.
	for {
		h := e.hand
		if !e.occupied[h] {
			e.pages[h], e.refd[h], e.occupied[h] = page, true, true
			e.set(page, int32(h))
			e.lastPage, e.lastIdx = page, int32(h)
			e.resident++
			e.hand = (h + 1) % e.capacity
			return true, 0, false
		}
		if e.refd[h] {
			e.refd[h] = false
			e.hand = (h + 1) % e.capacity
			continue
		}
		// Evict this page.
		evicted, evictedValid = e.pages[h], true
		e.clear(evicted)
		e.evictions++
		e.pages[h], e.refd[h] = page, true
		e.set(page, int32(h))
		e.lastPage, e.lastIdx = page, int32(h)
		e.hand = (h + 1) % e.capacity
		return true, evicted, evictedValid
	}
}

// isResident reports whether page is EPC-resident without touching any
// replacement state: no reference bit, no memo update, no load. The
// read-only twin of touchPage used by snapshot accounting spans; safe for
// concurrent readers while mutators are externally serialized.
func (e *epc) isResident(page uint64) bool { return e.lookup(page) >= 0 }

// release drops all resident pages in [base, base+size), e.g. on EREMOVE
// when an enclave is destroyed.
func (e *epc) release(base, size uint64) {
	first := base / e.pageSize
	last := (base + size - 1) / e.pageSize
	for p := first; p <= last; p++ {
		if idx := e.lookup(p); idx >= 0 {
			e.pages[idx], e.refd[idx], e.occupied[idx] = 0, false, false
			e.clear(p)
			e.resident--
		}
	}
	e.lastIdx = -1
}

// residentPages returns how many pages are currently resident.
func (e *epc) residentPages() int { return e.resident }
