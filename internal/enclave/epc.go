package enclave

// epc simulates the enclave page cache: the limited pool of physically
// protected memory that all enclaves on a platform share. SGX v1 provisions
// 128 MiB of processor-reserved memory, of which a substantial slice is
// consumed by the enclave page cache map (EPCM) and other SGX metadata —
// which is why, as the paper observes, "the performance drop is evident
// before" the 128 MB line.
//
// Replacement is CLOCK (second chance), approximating the Linux SGX
// driver's reclaim behaviour.
type epc struct {
	pageSize uint64
	capacity int // usable pages

	// resident maps page number -> index in the clock ring.
	resident map[uint64]int
	ring     []epcSlot
	hand     int

	evictions uint64
	loads     uint64
}

type epcSlot struct {
	page     uint64
	refd     bool
	occupied bool
}

func newEPC(totalBytes, reservedBytes, pageSize uint64) *epc {
	if pageSize == 0 {
		pageSize = 4096
	}
	usable := int64(totalBytes) - int64(reservedBytes)
	if usable < int64(pageSize) {
		usable = int64(pageSize)
	}
	cap := int(uint64(usable) / pageSize)
	return &epc{
		pageSize: pageSize,
		capacity: cap,
		resident: make(map[uint64]int, cap),
		ring:     make([]epcSlot, cap),
	}
}

// touch ensures the page containing addr is EPC-resident. It returns
// (faulted, evictedPage, evictedValid): faulted is true when the page had to
// be loaded (an EPC page fault in SGX terms), and evictedPage identifies a
// victim page written back to untrusted memory, if any.
func (e *epc) touch(addr uint64) (faulted bool, evicted uint64, evictedValid bool) {
	page := addr / e.pageSize
	if idx, ok := e.resident[page]; ok {
		e.ring[idx].refd = true
		return false, 0, false
	}
	e.loads++
	// Find a free or victim slot with CLOCK.
	for {
		slot := &e.ring[e.hand]
		if !slot.occupied {
			slot.page, slot.refd, slot.occupied = page, true, true
			e.resident[page] = e.hand
			e.hand = (e.hand + 1) % e.capacity
			return true, 0, false
		}
		if slot.refd {
			slot.refd = false
			e.hand = (e.hand + 1) % e.capacity
			continue
		}
		// Evict this page.
		evicted, evictedValid = slot.page, true
		delete(e.resident, slot.page)
		e.evictions++
		slot.page, slot.refd = page, true
		e.resident[page] = e.hand
		e.hand = (e.hand + 1) % e.capacity
		return true, evicted, evictedValid
	}
}

// release drops all resident pages in [base, base+size), e.g. on EREMOVE
// when an enclave is destroyed.
func (e *epc) release(base, size uint64) {
	first := base / e.pageSize
	last := (base + size - 1) / e.pageSize
	for p := first; p <= last; p++ {
		if idx, ok := e.resident[p]; ok {
			e.ring[idx] = epcSlot{}
			delete(e.resident, p)
		}
	}
}

// residentPages returns how many pages are currently resident.
func (e *epc) residentPages() int { return len(e.resident) }
