package enclave

import (
	"bytes"
	"testing"
	"testing/quick"

	"securecloud/internal/cryptbox"
)

func testSigner(b byte) cryptbox.Digest {
	var d cryptbox.Digest
	for i := range d {
		d[i] = b
	}
	return d
}

// buildEnclave creates and initializes a small enclave for tests.
func buildEnclave(t *testing.T, p *Platform, size uint64, code []byte) *Enclave {
	t.Helper()
	e, err := p.ECreate(size, testSigner(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EAdd(code); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLifecycleHappyPath(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	if e.State() != StateInitialized {
		t.Fatalf("state = %v, want initialized", e.State())
	}
	m, err := e.Measurement()
	if err != nil {
		t.Fatal(err)
	}
	if m.IsZero() {
		t.Fatal("measurement is zero")
	}
	if err := e.EEnter(); err != nil {
		t.Fatal(err)
	}
	if !e.Entered() {
		t.Fatal("Entered() = false after EEnter")
	}
	if err := e.EExit(); err != nil {
		t.Fatal(err)
	}
	e.Destroy()
	if e.State() != StateDestroyed {
		t.Fatal("not destroyed")
	}
}

func TestECreateRejectsZeroSize(t *testing.T) {
	p := NewPlatform(Config{})
	if _, err := p.ECreate(0, testSigner(1)); err == nil {
		t.Fatal("zero-size ECREATE accepted")
	}
}

func TestEAddAfterInitRejected(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	if _, err := e.EAdd([]byte("more")); err == nil {
		t.Fatal("EADD after EINIT accepted (SGX v1 has no EDMM)")
	}
}

func TestEAddBeyondRangeRejected(t *testing.T) {
	p := NewPlatform(Config{})
	e, _ := p.ECreate(8192, testSigner(1))
	if _, err := e.EAdd(make([]byte, 16384)); err == nil {
		t.Fatal("EADD beyond ELRANGE accepted")
	}
}

func TestMeasurementDependsOnContent(t *testing.T) {
	p := NewPlatform(Config{})
	a := buildEnclave(t, p, 1<<20, []byte("code-A"))
	b := buildEnclave(t, p, 1<<20, []byte("code-B"))
	c := buildEnclave(t, p, 1<<20, []byte("code-A"))
	ma, _ := a.Measurement()
	mb, _ := b.Measurement()
	mc, _ := c.Measurement()
	if ma == mb {
		t.Fatal("different code produced identical MRENCLAVE")
	}
	if ma != mc {
		t.Fatal("identical code produced different MRENCLAVE")
	}
}

func TestMeasurementDependsOnSize(t *testing.T) {
	p := NewPlatform(Config{})
	a, _ := p.ECreate(1<<20, testSigner(1))
	b, _ := p.ECreate(2<<20, testSigner(1))
	for _, e := range []*Enclave{a, b} {
		if _, err := e.EAdd([]byte("code")); err != nil {
			t.Fatal(err)
		}
		if err := e.EInit(); err != nil {
			t.Fatal(err)
		}
	}
	ma, _ := a.Measurement()
	mb, _ := b.Measurement()
	if ma == mb {
		t.Fatal("different ELRANGE sizes produced identical MRENCLAVE")
	}
}

func TestMeasurementBeforeInitFails(t *testing.T) {
	p := NewPlatform(Config{})
	e, _ := p.ECreate(1<<20, testSigner(1))
	if _, err := e.Measurement(); err == nil {
		t.Fatal("Measurement before EINIT succeeded")
	}
}

func TestEEnterBeforeInitFails(t *testing.T) {
	p := NewPlatform(Config{})
	e, _ := p.ECreate(1<<20, testSigner(1))
	if err := e.EEnter(); err == nil {
		t.Fatal("EENTER before EINIT succeeded")
	}
}

func TestEExitWithoutEnterFails(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	if err := e.EExit(); err == nil {
		t.Fatal("EEXIT without EENTER succeeded")
	}
}

func TestTransitionCostCharged(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	before := e.Memory().Cycles()
	if err := e.EEnter(); err != nil {
		t.Fatal(err)
	}
	_ = e.EExit()
	got := e.Memory().Cycles() - before
	if got != p.Config().Cost.Transition {
		t.Fatalf("transition charged %d cycles, want %d", got, p.Config().Cost.Transition)
	}
}

func TestInterruptChargesAEX(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	before := e.AEXCount() // EADD already faulted pages in
	e.Interrupt()
	if e.AEXCount() != before+1 {
		t.Fatalf("AEXCount = %d, want %d", e.AEXCount(), before+1)
	}
	if e.Memory().Breakdown()[CauseAEX] != p.Config().Cost.AEX {
		t.Fatal("AEX cost not charged")
	}
}

func TestAllocWithinHeap(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 64<<10, []byte("code"))
	a1, err := e.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a2 <= a1 {
		t.Fatal("allocations not monotone")
	}
	if a2-a1 < 100 {
		t.Fatal("allocations overlap")
	}
	if _, err := e.Alloc(1 << 20); err == nil {
		t.Fatal("oversized Alloc succeeded")
	}
}

func TestHeapArena(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 64<<10, []byte("code"))
	a, err := e.HeapArena()
	if err != nil {
		t.Fatal(err)
	}
	if a.Capacity() == 0 {
		t.Fatal("empty heap arena")
	}
	addr := a.Alloc(64)
	if addr < e.Base() || addr >= e.Base()+e.Size() {
		t.Fatalf("arena address %#x outside ELRANGE [%#x,%#x)", addr, e.Base(), e.Base()+e.Size())
	}
	if a.Used() != 64 {
		t.Fatalf("Used = %d, want 64", a.Used())
	}
	// The heap is consumed: further Alloc must fail.
	if _, err := e.Alloc(8); err == nil {
		t.Fatal("Alloc after HeapArena succeeded")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	for _, policy := range []SealPolicy{SealToEnclave, SealToSigner} {
		sealed, err := e.Seal([]byte("secret"), []byte("aad"), policy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Unseal(sealed, []byte("aad"), policy)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte("secret")) {
			t.Fatalf("policy %v: round trip mismatch", policy)
		}
	}
}

func TestSealToEnclaveIsolatesDifferentCode(t *testing.T) {
	p := NewPlatform(Config{})
	a := buildEnclave(t, p, 1<<20, []byte("code-A"))
	b := buildEnclave(t, p, 1<<20, []byte("code-B"))
	sealed, _ := a.Seal([]byte("secret"), nil, SealToEnclave)
	if _, err := b.Unseal(sealed, nil, SealToEnclave); err == nil {
		t.Fatal("different enclave unsealed MRENCLAVE-bound data")
	}
}

func TestSealToSignerSharedAcrossVersions(t *testing.T) {
	p := NewPlatform(Config{})
	v1 := buildEnclave(t, p, 1<<20, []byte("service-v1"))
	v2 := buildEnclave(t, p, 1<<20, []byte("service-v2"))
	sealed, _ := v1.Seal([]byte("state"), nil, SealToSigner)
	got, err := v2.Unseal(sealed, nil, SealToSigner)
	if err != nil {
		t.Fatalf("same-signer unseal failed: %v", err)
	}
	if !bytes.Equal(got, []byte("state")) {
		t.Fatal("unsealed data mismatch")
	}
}

func TestSealPlatformBound(t *testing.T) {
	p1 := NewPlatform(Config{})
	p2 := NewPlatform(Config{})
	a := buildEnclave(t, p1, 1<<20, []byte("code"))
	b := buildEnclave(t, p2, 1<<20, []byte("code"))
	ma, _ := a.Measurement()
	mb, _ := b.Measurement()
	if ma != mb {
		t.Fatal("identical enclaves measured differently across platforms")
	}
	sealed, _ := a.Seal([]byte("secret"), nil, SealToEnclave)
	if _, err := b.Unseal(sealed, nil, SealToEnclave); err == nil {
		t.Fatal("sealed data moved across platforms (device key leak)")
	}
}

func TestReportVerifiesLocally(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	r, err := e.CreateReport([]byte("channel-binding"))
	if err != nil {
		t.Fatal(err)
	}
	if !p.VerifyReport(r) {
		t.Fatal("genuine report rejected")
	}
	r.Data[0] ^= 1
	if p.VerifyReport(r) {
		t.Fatal("tampered report accepted")
	}
}

func TestReportRejectedCrossPlatform(t *testing.T) {
	p1, p2 := NewPlatform(Config{}), NewPlatform(Config{})
	e := buildEnclave(t, p1, 1<<20, []byte("code"))
	r, _ := e.CreateReport(nil)
	if p2.VerifyReport(r) {
		t.Fatal("report verified on a different platform")
	}
}

func TestReportMarshalRoundTrip(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	r, _ := e.CreateReport([]byte("data"))
	got, ok := UnmarshalReport(r.Marshal())
	if !ok {
		t.Fatal("unmarshal failed")
	}
	if got != r {
		t.Fatal("marshal round trip mismatch")
	}
	if _, ok := UnmarshalReport(r.Marshal()[:10]); ok {
		t.Fatal("truncated report unmarshalled")
	}
}

func TestPropSealRoundTripAnyData(t *testing.T) {
	p := NewPlatform(Config{})
	e := buildEnclave(t, p, 1<<20, []byte("code"))
	f := func(data, aad []byte) bool {
		sealed, err := e.Seal(data, aad, SealToEnclave)
		if err != nil {
			return false
		}
		got, err := e.Unseal(sealed, aad, SealToEnclave)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
