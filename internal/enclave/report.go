package enclave

import (
	"bytes"

	"securecloud/internal/cryptbox"
)

// ReportDataSize is the caller-chosen payload bound into a report (SGX uses
// 64 bytes; typically a hash of a public key or channel binding).
const ReportDataSize = 64

// Report is a locally verifiable attestation statement: "an enclave with
// this MRENCLAVE/MRSIGNER, on this platform, produced this report data".
// It is authenticated with the platform's symmetric report key, so it can
// only be verified on the same machine — exactly SGX local attestation.
// Remote attestation (package attest) wraps reports into quotes.
type Report struct {
	MREnclave cryptbox.Digest
	MRSigner  cryptbox.Digest
	SVN       uint16
	Data      [ReportDataSize]byte
	MAC       [cryptbox.MACSize]byte
}

// CreateReport produces a report binding up to ReportDataSize bytes of user
// data to this enclave's identity.
func (e *Enclave) CreateReport(userData []byte) (Report, error) {
	if e.state != StateInitialized {
		return Report{}, ErrNotInitialized
	}
	var r Report
	r.MREnclave = e.mrenclave
	r.MRSigner = e.signer
	r.SVN = e.svn
	copy(r.Data[:], userData)
	r.MAC = cryptbox.MAC(e.p.reportKey, r.body())
	return r, nil
}

// VerifyReport checks that a report was produced by an enclave on this
// platform (local attestation, as performed by SGX's EREPORT/EGETKEY pair).
func (p *Platform) VerifyReport(r Report) bool {
	return cryptbox.VerifyMAC(p.reportKey, r.body(), r.MAC)
}

// body serializes the authenticated portion of the report.
func (r Report) body() []byte {
	var buf bytes.Buffer
	buf.Write(r.MREnclave[:])
	buf.Write(r.MRSigner[:])
	buf.WriteByte(byte(r.SVN))
	buf.WriteByte(byte(r.SVN >> 8))
	buf.Write(r.Data[:])
	return buf.Bytes()
}

// Marshal encodes the full report for transport.
func (r Report) Marshal() []byte {
	var buf bytes.Buffer
	buf.Write(r.body())
	buf.Write(r.MAC[:])
	return buf.Bytes()
}

// UnmarshalReport decodes a report produced by Marshal.
func UnmarshalReport(b []byte) (Report, bool) {
	const want = 32 + 32 + 2 + ReportDataSize + cryptbox.MACSize
	if len(b) != want {
		return Report{}, false
	}
	var r Report
	copy(r.MREnclave[:], b[0:32])
	copy(r.MRSigner[:], b[32:64])
	r.SVN = uint16(b[64]) | uint16(b[65])<<8
	copy(r.Data[:], b[66:66+ReportDataSize])
	copy(r.MAC[:], b[66+ReportDataSize:])
	return r, true
}
