package enclave

// llc is a set-associative last-level-cache simulator with LRU replacement
// within each set. It tracks which cache lines are present so the memory
// model can decide whether an access is served by the cache (same cost in
// and out of an enclave) or goes to memory (where the MEE tax applies
// inside enclaves).
//
// The simulator is shared between the trusted and untrusted views of one
// platform, mirroring hardware: enclave and normal lines compete for the
// same physical cache.
type llc struct {
	lineSize uint64
	numSets  uint64
	ways     int
	// sets[s] is an LRU-ordered slice of line tags, most recent last.
	sets [][]uint64
}

func newLLC(totalBytes, lineSize uint64, ways int) *llc {
	if lineSize == 0 {
		lineSize = 64
	}
	if ways <= 0 {
		ways = 16
	}
	numLines := totalBytes / lineSize
	numSets := numLines / uint64(ways)
	if numSets == 0 {
		numSets = 1
	}
	return &llc{
		lineSize: lineSize,
		numSets:  numSets,
		ways:     ways,
		sets:     make([][]uint64, numSets),
	}
}

// access touches the line containing addr and reports whether it hit.
func (c *llc) access(addr uint64) bool {
	tag := addr / c.lineSize
	s := tag % c.numSets
	set := c.sets[s]
	for i, t := range set {
		if t == tag {
			// Move to MRU position.
			copy(set[i:], set[i+1:])
			set[len(set)-1] = tag
			return true
		}
	}
	if len(set) < c.ways {
		c.sets[s] = append(set, tag)
		return false
	}
	// Evict LRU (front), insert at MRU (back).
	copy(set, set[1:])
	set[len(set)-1] = tag
	return false
}

// invalidateRange drops all lines overlapping [addr, addr+size). Used when
// EPC pages are evicted: their cached lines are flushed and re-encrypted.
func (c *llc) invalidateRange(addr, size uint64) {
	first := addr / c.lineSize
	last := (addr + size - 1) / c.lineSize
	for tag := first; tag <= last; tag++ {
		s := tag % c.numSets
		set := c.sets[s]
		for i, t := range set {
			if t == tag {
				c.sets[s] = append(set[:i], set[i+1:]...)
				break
			}
		}
	}
}

// lines returns the number of resident lines (test hook).
func (c *llc) lines() int {
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}
