package enclave

import "math/bits"

// llc is a set-associative last-level-cache simulator with LRU replacement
// within each set. It tracks which cache lines are present so the memory
// model can decide whether an access is served by the cache (same cost in
// and out of an enclave) or goes to memory (where the MEE tax applies
// inside enclaves).
//
// The simulator is shared between the trusted and untrusted views of one
// platform, mirroring hardware: enclave and normal lines compete for the
// same physical cache.
//
// Layout: one flat array of per-way records (tag, last-use stamp, insert
// epoch) indexed by set*assoc+way, so probing a set walks a single
// contiguous block of host memory. The hit path is a single-compare scan
// plus one page-epoch check; a hit updates one stamp (no memmove into
// recency order). Eviction picks the way with the minimum stamp — exactly
// classic LRU.
//
// Invalidation is lazy: invalidateRange bumps a per-page epoch instead of
// scanning sets for every tag in the range. A way whose recorded epoch no
// longer matches its page's current epoch is dead — it never hits, and the
// victim scan treats it like an empty way (stamp 0). Dead ways are
// observationally identical to eagerly-cleared ways, so hit/miss and
// eviction sequences — and with them all simulated cycle counts — are
// unchanged; but flushing an EPC page costs one counter bump instead of a
// scan of a page's worth of sets.
type llc struct {
	lineSize uint64
	pageSize uint64
	numSets  uint64
	// setMask is numSets-1 when numSets is a power of two (every realistic
	// geometry), letting the set lookup use a mask instead of a modulo;
	// otherwise ^0 as a sentinel for the slow path.
	setMask uint64
	// lppShift is log2(PageSize/LineSize) when that ratio is a power of
	// two, so a way's page derives from its tag by one shift; -1 selects
	// the general multiply/divide path.
	lppShift int8
	assoc    int
	ways     []llcWay
	// hints[s] is the way of set s that hit or filled most recently.
	// Probing it first turns the common re-touch of a hot line into a
	// single compare; it is only a scan-order shortcut for the equality
	// search, so LRU state evolves identically with or without it.
	hints []uint8
	tick  uint64

	// Per-page invalidation epochs, two-level like the EPC residency
	// index: dense array for pages at or above enclaveRangeBase, map for
	// the rare low (untrusted-range) pages.
	epochBase  uint64
	pageEpochs []uint32
	lowEpochs  map[uint64]uint32
}

// llcWay is the metadata of one cache way, packed to 16 bytes so one
// 16-way set spans four host cache lines: the tag, and a second word
// holding the last-use stamp (high 40 bits) next to the insert-time page
// epoch (low 24 bits).
type llcWay struct {
	tag uint64
	se  uint64 // stamp<<epochBits | (epoch & epochMask); stamp 0 = empty
}

const (
	epochBits = 24
	epochMask = (1 << epochBits) - 1
	// maxStamp bounds the use-time counter; reaching it triggers a
	// renormalization that compresses every set's stamps to their ranks
	// (order-preserving, so LRU behaviour is unchanged). A 40-bit stamp
	// lasts ~10^12 accesses between renormalizations.
	maxStamp = (uint64(1) << 40) - 1
)

// emptyTag marks a free way. Real tags are addr/lineSize and cannot reach
// it (that would need an address in the top line of the address space).
const emptyTag = ^uint64(0)

func newLLC(totalBytes, lineSize, pageSize uint64, assoc int) *llc {
	if lineSize == 0 {
		lineSize = 64
	}
	if pageSize == 0 {
		pageSize = 4096
	}
	if assoc <= 0 {
		assoc = 16
	}
	numLines := totalBytes / lineSize
	numSets := numLines / uint64(assoc)
	if numSets == 0 {
		numSets = 1
	}
	ways := make([]llcWay, numSets*uint64(assoc))
	for i := range ways {
		ways[i].tag = emptyTag
	}
	setMask := ^uint64(0)
	if numSets&(numSets-1) == 0 {
		setMask = numSets - 1
	}
	lppShift := int8(-1)
	if pageSize%lineSize == 0 {
		if lpp := pageSize / lineSize; lpp&(lpp-1) == 0 {
			lppShift = int8(bits.TrailingZeros64(lpp))
		}
	}
	return &llc{
		lineSize:  lineSize,
		pageSize:  pageSize,
		numSets:   numSets,
		setMask:   setMask,
		lppShift:  lppShift,
		assoc:     assoc,
		ways:      ways,
		hints:     make([]uint8, numSets),
		epochBase: enclaveRangeBase / pageSize,
	}
}

// pageEpoch returns the current invalidation epoch of page.
func (c *llc) pageEpoch(page uint64) uint32 {
	if page >= c.epochBase {
		off := page - c.epochBase
		if off < uint64(len(c.pageEpochs)) {
			return c.pageEpochs[off]
		}
		return 0
	}
	return c.lowEpochs[page]
}

// tagPage returns the page of a way's line, derived from its tag.
func (c *llc) tagPage(tag uint64) uint64 {
	if c.lppShift >= 0 {
		return tag >> uint8(c.lppShift)
	}
	return tag * c.lineSize / c.pageSize
}

// access touches the line containing addr and reports whether it hit.
func (c *llc) access(addr uint64) bool {
	return c.accessTag(addr/c.lineSize, addr/c.pageSize)
}

// accessTag is the hot-path form of access: the caller already knows the
// line tag and the page, so no divisions are repeated here.
func (c *llc) accessTag(tag, page uint64) bool {
	pe := uint64(c.pageEpoch(page)) & epochMask
	s := tag & c.setMask
	if c.setMask == ^uint64(0) {
		s = tag % c.numSets
	}
	base := int(s) * c.assoc
	set := c.ways[base : base+c.assoc]
	if c.tick >= maxStamp-1 {
		c.renormalizeStamps()
	}
	c.tick++
	se := c.tick<<epochBits | pe
	if h := c.hints[s]; int(h) < len(set) {
		if w := &set[h]; w.tag == tag && w.se&epochMask == pe {
			w.se = se
			return true
		}
	}
	for i := range set {
		if set[i].tag == tag {
			if set[i].se&epochMask != pe {
				continue // dead way: invalidated since insert
			}
			set[i].se = se
			c.hints[s] = uint8(i)
			return true
		}
	}
	// Miss: evict the LRU way. Empty and dead ways count as stamp 0 and
	// are chosen before any live line.
	victim := 0
	min := ^uint64(0)
	for i := range set {
		st := set[i].se >> epochBits
		if st != 0 && set[i].se&epochMask != uint64(c.pageEpoch(c.tagPage(set[i].tag)))&epochMask {
			st = 0 // dead way: as good as empty
		}
		if st < min {
			min, victim = st, i
			if st == 0 {
				break // nothing beats an empty way, and ties pick the first
			}
		}
	}
	set[victim] = llcWay{tag: tag, se: se}
	c.hints[s] = uint8(victim)
	return false
}

// probeTag reports whether the line is cached without touching any cache
// state: no stamp update, no tick, no fill, no hint move. It is the
// read-only twin of accessTag used by snapshot accounting spans — safe to
// call concurrently from many goroutines provided no mutating access runs
// at the same time (callers serialize mutators externally).
func (c *llc) probeTag(tag, page uint64) bool {
	pe := uint64(c.pageEpoch(page)) & epochMask
	s := tag & c.setMask
	if c.setMask == ^uint64(0) {
		s = tag % c.numSets
	}
	base := int(s) * c.assoc
	set := c.ways[base : base+c.assoc]
	for i := range set {
		if set[i].tag == tag {
			// Live iff its insert epoch matches the page's current epoch
			// and the way is non-empty (stamp != 0).
			return set[i].se>>epochBits != 0 && set[i].se&epochMask == pe
		}
	}
	return false
}

// renormalizeStamps compresses every set's stamps to their within-set rank
// (1..assoc), preserving relative order — and therefore LRU behaviour —
// exactly, then rewinds the tick. Runs once per ~10^12 accesses.
func (c *llc) renormalizeStamps() {
	orig := make([]uint64, c.assoc)
	for base := 0; base < len(c.ways); base += c.assoc {
		set := c.ways[base : base+c.assoc]
		for i := range set {
			orig[i] = set[i].se >> epochBits
		}
		// Rank assignment: a live way's new stamp is 1 + the number of
		// live ways in its set with a strictly smaller original stamp.
		for i := range set {
			if orig[i] == 0 {
				continue
			}
			rank := uint64(1)
			for j := range orig {
				if orig[j] != 0 && orig[j] < orig[i] {
					rank++
				}
			}
			set[i].se = rank<<epochBits | set[i].se&epochMask
		}
	}
	c.tick = uint64(c.assoc)
}

// invalidateRange drops all cached lines of the pages overlapping
// [addr, addr+size). Invalidation is page-granular, mirroring EWB: SGX
// evicts and re-encrypts whole EPC pages, and the only caller flushes
// exactly one evicted page. Lazy: bumps the epoch of every page in the
// range; resident lines of those pages become dead in place.
func (c *llc) invalidateRange(addr, size uint64) {
	first := addr / c.pageSize
	last := (addr + size - 1) / c.pageSize
	for p := first; p <= last; p++ {
		c.invalidatePage(p)
	}
}

// invalidatePage flushes all cached lines of one page: a single epoch bump.
// Ways store epochs truncated to epochBits, so just before a page's epoch
// would wrap back into an in-use value its stale ways are cleared eagerly
// and its epoch rewinds to zero — dead lines can never resurrect.
func (c *llc) invalidatePage(page uint64) {
	if page >= c.epochBase {
		off := page - c.epochBase
		if off >= uint64(len(c.pageEpochs)) {
			grown := make([]uint32, off+1+1024)
			copy(grown, c.pageEpochs)
			c.pageEpochs = grown
		}
		if c.pageEpochs[off] >= epochMask-1 {
			c.purgePage(page)
			c.pageEpochs[off] = 0
			return
		}
		c.pageEpochs[off]++
		return
	}
	if c.lowEpochs == nil {
		c.lowEpochs = make(map[uint64]uint32)
	}
	if c.lowEpochs[page] >= epochMask-1 {
		c.purgePage(page)
		c.lowEpochs[page] = 0
		return
	}
	c.lowEpochs[page]++
}

// purgePage eagerly empties every way holding a line of page. Runs once per
// ~16.7M invalidations of one page, keeping the lazy epoch scheme exact
// across epoch wrap-around.
func (c *llc) purgePage(page uint64) {
	for i := range c.ways {
		if w := &c.ways[i]; w.tag != emptyTag && c.tagPage(w.tag) == page {
			w.tag = emptyTag
			w.se = 0
		}
	}
}

// lines returns the number of live resident lines (test hook).
func (c *llc) lines() int {
	n := 0
	for i := range c.ways {
		w := &c.ways[i]
		if w.tag != emptyTag && w.se>>epochBits != 0 &&
			w.se&epochMask == uint64(c.pageEpoch(c.tagPage(w.tag)))&epochMask {
			n++
		}
	}
	return n
}
