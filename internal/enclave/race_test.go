package enclave

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMemoryViews hammers one platform from several goroutines —
// two enclave views, two untrusted views, plus readers and resetters — so
// `go test -race ./internal/enclave` exercises the whole accounting path:
// batched Access commits, bulk AccessN/AccessStride, fault counting, ledger
// snapshots and the single-lock reset discipline.
func TestConcurrentMemoryViews(t *testing.T) {
	p := smallPlatform()
	encs := make([]*Enclave, 2)
	arenas := make([]*Arena, 2)
	for i := range encs {
		e := buildEnclave(t, p, 1<<20, []byte(fmt.Sprintf("enc-%d", i)))
		a, err := e.HeapArena()
		if err != nil {
			t.Fatal(err)
		}
		encs[i], arenas[i] = e, a
	}
	untr := make([]*Memory, 2)
	bases := make([]uint64, 2)
	for i := range untr {
		untr[i] = p.UntrustedMemory()
		bases[i] = p.AllocUntrusted(1 << 20)
	}

	const iters = 300
	var wg sync.WaitGroup

	// Enclave writers: single, scattered and strided accesses.
	for i, e := range encs {
		wg.Add(1)
		go func(i int, e *Enclave, base uint64) {
			defer wg.Done()
			mem := e.Memory()
			addrs := make([]uint64, 8)
			for j := 0; j < iters; j++ {
				mem.Access(base+uint64(j%4096)*64, 128, j%2 == 0)
				for k := range addrs {
					addrs[k] = base + uint64((j+k*37)%8192)*32
				}
				mem.AccessN(addrs, 16, false)
				mem.AccessStride(base, 4096, 4, 8, true)
				mem.ChargeCPU(5)
			}
		}(i, e, arenas[i].Alloc(512<<10))
	}

	// Untrusted writers.
	for i, m := range untr {
		wg.Add(1)
		go func(m *Memory, base uint64) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				m.Access(base+uint64(j%2048)*64, 64, true)
			}
		}(m, bases[i])
	}

	// Readers: snapshots, totals, fault counts, platform stats.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < iters; j++ {
			for _, e := range encs {
				_ = e.Memory().Cycles()
				_ = e.Memory().Faults()
				_ = e.Memory().Breakdown()
				_ = e.AEXCount()
			}
			_ = p.EPCResidentPages()
			_ = p.Clock().Now()
		}
	}()

	// Resetter: the torn-half-reset regression this test guards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < iters/10; j++ {
			encs[0].Memory().ResetAccounting()
		}
	}()

	wg.Wait()

	// After the dust settles the ledgers must be internally consistent:
	// enclave 1 was never reset, so its total must equal the sum of its
	// per-cause costs.
	bd := encs[1].Memory().Breakdown()
	var sum uint64
	for _, v := range bd {
		sum += uint64(v)
	}
	if total := uint64(encs[1].Memory().Cycles()); total != sum {
		t.Fatalf("ledger inconsistent after concurrency: total %d, per-cause sum %d", total, sum)
	}
}

// TestConcurrentTransitions exercises EEnter/EExit/OCall/Interrupt next to
// Access traffic under -race.
func TestConcurrentTransitions(t *testing.T) {
	p := smallPlatform()
	e := buildEnclave(t, p, 1<<20, []byte("trans"))
	a, err := e.HeapArena()
	if err != nil {
		t.Fatal(err)
	}
	base := a.Alloc(64 << 10)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := e.EEnter(); err != nil {
				t.Error(err)
				return
			}
			e.OCall()
			if err := e.EExit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			e.Interrupt()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			e.Memory().Access(base+uint64(i%512)*64, 8, false)
		}
	}()
	wg.Wait()
	if e.AEXCount() == 0 {
		t.Fatal("no AEX recorded")
	}
}
