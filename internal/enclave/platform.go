package enclave

import (
	"fmt"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/sim"
)

// Config describes the simulated platform.
type Config struct {
	// EPCBytes is the total processor-reserved memory (SGX v1: 128 MiB).
	EPCBytes uint64
	// EPCReservedBytes is consumed by the EPCM and SGX internal metadata
	// and unavailable to enclave pages. The paper notes the slowdown knee
	// appears before the 128 MB line for exactly this reason.
	EPCReservedBytes uint64
	// LLCBytes is the last-level cache size shared by all cores.
	LLCBytes uint64
	// LLCWays is the cache associativity.
	LLCWays int
	// LineSize is the cache line size in bytes.
	LineSize uint64
	// PageSize is the MMU page size in bytes.
	PageSize uint64
	// Cost is the per-event cycle model.
	Cost CostModel
}

// DefaultConfig returns the SGX v1 reference platform: 128 MiB EPC with
// 35 MiB reserved, 8 MiB 16-way LLC, 64 B lines, 4 KiB pages.
func DefaultConfig() Config {
	return Config{
		EPCBytes:         128 << 20,
		EPCReservedBytes: 35 << 20,
		LLCBytes:         8 << 20,
		LLCWays:          16,
		LineSize:         64,
		PageSize:         4096,
		Cost:             DefaultCostModel(),
	}
}

// Platform is one simulated SGX-capable machine: a shared EPC, a shared
// LLC, a fused device key, and the set of enclaves running on it.
// Platform methods are safe for concurrent use; the memory cost model is
// serialized internally, mirroring a single memory subsystem.
type Platform struct {
	cfg   Config
	clock *sim.Clock
	// linesPerPage is PageSize/LineSize when PageSize divides evenly (every
	// realistic geometry), letting the access walk derive page boundaries
	// by multiplication; 0 selects the general division path.
	linesPerPage uint64

	mu       sync.Mutex
	cache    *llc
	pager    *epc
	nextID   uint64
	nextBase uint64
	untrBump uint64
	enclaves map[uint64]*Enclave

	deviceKey cryptbox.Key
	reportKey cryptbox.Key
}

// enclaveRangeBase is where simulated ELRANGEs are allocated. Untrusted
// allocations live below it; the two address regions never overlap.
const enclaveRangeBase = 1 << 44

// NewPlatform builds a platform from cfg; zero fields take defaults.
func NewPlatform(cfg Config) *Platform {
	def := DefaultConfig()
	if cfg.EPCBytes == 0 {
		cfg.EPCBytes = def.EPCBytes
	}
	if cfg.EPCReservedBytes == 0 {
		cfg.EPCReservedBytes = def.EPCReservedBytes
	}
	if cfg.LLCBytes == 0 {
		cfg.LLCBytes = def.LLCBytes
	}
	if cfg.LLCWays == 0 {
		cfg.LLCWays = def.LLCWays
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = def.LineSize
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = def.PageSize
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = def.Cost
	}
	deviceKey, err := cryptbox.NewRandomKey()
	if err != nil {
		panic(fmt.Sprintf("enclave: device key: %v", err))
	}
	reportKey, err := cryptbox.DeriveKey(deviceKey, "report")
	if err != nil {
		panic(fmt.Sprintf("enclave: report key: %v", err))
	}
	var linesPerPage uint64
	if cfg.LineSize > 0 && cfg.PageSize%cfg.LineSize == 0 {
		linesPerPage = cfg.PageSize / cfg.LineSize
	}
	return &Platform{
		cfg:          cfg,
		clock:        sim.NewClock(),
		linesPerPage: linesPerPage,
		cache:        newLLC(cfg.LLCBytes, cfg.LineSize, cfg.PageSize, cfg.LLCWays),
		pager:        newEPC(cfg.EPCBytes, cfg.EPCReservedBytes, cfg.PageSize),
		nextBase:     enclaveRangeBase,
		untrBump:     1 << 20,
		enclaves:     make(map[uint64]*Enclave),
		deviceKey:    deviceKey,
		reportKey:    reportKey,
	}
}

// Config returns the platform configuration.
func (p *Platform) Config() Config { return p.cfg }

// Clock returns the platform's simulated clock.
func (p *Platform) Clock() *sim.Clock { return p.clock }

// UsableEPCBytes returns the EPC capacity available to enclave pages.
func (p *Platform) UsableEPCBytes() uint64 {
	return uint64(p.pager.capacity) * p.cfg.PageSize
}

// EPCResidentPages returns the number of currently resident EPC pages
// across all enclaves.
func (p *Platform) EPCResidentPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pager.residentPages()
}

// UntrustedMemory returns a fresh accounting view of normal (unprotected)
// memory on this platform.
func (p *Platform) UntrustedMemory() *Memory {
	return &Memory{p: p, touched: make(map[uint64]struct{})}
}

// AllocUntrusted reserves size bytes of untrusted address space and returns
// its base address. The allocation itself is free; costs accrue on access.
func (p *Platform) AllocUntrusted(size uint64) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	base := p.untrBump
	p.untrBump += align(size, 8)
	if p.untrBump >= enclaveRangeBase {
		panic("enclave: untrusted address space exhausted")
	}
	return base
}

func align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
