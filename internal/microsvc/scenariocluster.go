package microsvc

import (
	"securecloud/internal/orchestrator"
)

// ClusterLabScenarios is the node-level fault matrix riding on the
// simulated multi-node cluster: a node crash (replicas rescheduled onto
// surviving nodes, warm vs cold boot cost visible in the pull stats), a
// network partition (requests to unreachable replicas shed
// deterministically until the orchestrator converges on the reachable
// side), and a byzantine registry serving one node tampered chunks
// (pulls fail closed, the node isolates, placement routes around it).
// Like LabScenarios, every assertion table and TraceHash is gated by
// cmd/bench-check and pinned bit-identical across Workers {1,2,4,8}.
func ClusterLabScenarios() []ScenarioSpec {
	// Three nodes with one replica slot each force the placer to spread:
	// the front-end warms the gateway (node00), the first replica boots
	// warm there, and every further replica is a cold boot on a fresh
	// node — which is exactly the contrast the warm_lt_cold_ok gate pins.
	clusterSpec := &ClusterSpec{Nodes: 3, NodeCapacity: 1}

	target := orchestrator.Target{
		MaxQueueDepth:    32,
		MinReplicas:      2,
		MaxReplicas:      4,
		ScaleInBelow:     4,
		MaxServiceCycles: 200_000,
	}

	admission := &AdmissionConfig{
		Default:        TenantPolicy{Weight: 1, MaxQueue: 256},
		MaxGlobalQueue: 512,
		TickMillis:     1,
	}

	// node-crash: node01 dies at t13, taking its replica with it. The
	// orchestrator reschedules within its detection tick; the placer
	// skips the dead node, and the replacement cold-boots on node02 —
	// the full image crosses the link, so the cold pull dwarfs the warm
	// gateway boot in the per-node fetch counts.
	nodeCrash := ScenarioSpec{
		Name: "node-crash", Seed: 42,
		Ticks: 36, WarmupTicks: 12, InjectTicks: 8,
		Replicas: 2, TickMillis: 1, RequestCycles: 60_000,
		Target:    target,
		Admission: admission,
		Cluster:   clusterSpec,
		Tenants:   []TenantLoad{{Tenant: "web", BaseLoad: 24, Keys: 64, BodyBytes: 192}},
		Faults:    []FaultSpec{{Kind: "node-crash", At: 13, Node: 1}},
		Assert: []Assertion{
			Equals("cluster.node01.down", 1),
			Equals("warm_lt_cold_ok", 1),
			AtLeast("cluster.warm_boots", 1),
			AtLeast("cluster.cold_boots", 2),
			AtLeast("cluster.node02.boots", 1),
			Equals("served_via_unreachable", 0),
			Equals("failed", 0),
		},
	}

	// node-partition: node01 is cut off the network at t13 (its replica
	// stays alive but unreachable — routed requests shed with a
	// retry-after, none are served through the partition) and heals at
	// t21. The orchestrator replaces the unreachable replica on the
	// reachable side, so the plane converges before the heal even lands.
	nodePartition := ScenarioSpec{
		Name: "node-partition", Seed: 42,
		Ticks: 36, WarmupTicks: 12, InjectTicks: 8,
		Replicas: 2, TickMillis: 1, RequestCycles: 60_000,
		Target:    target,
		Admission: admission,
		Cluster:   clusterSpec,
		Tenants:   []TenantLoad{{Tenant: "web", BaseLoad: 24, Keys: 64, BodyBytes: 192}},
		Faults: []FaultSpec{
			{Kind: "partition", At: 13, Node: 1},
			{Kind: "heal", At: 21, Node: 1},
		},
		Assert: []Assertion{
			AtLeast("partition_shed", 1),
			Equals("served_via_unreachable", 0),
			Equals("final_replicas", 2),
			AtLeast("cluster.node02.boots", 1),
			Equals("failed", 0),
		},
	}

	// byzantine-registry: the registry serves node01 tampered chunks
	// from t5. A load spike at t13 drives scale-out; the placer prefers
	// the idle node01, whose pull fails closed on chunk verification —
	// the tampered bytes never enter its BlobCache — and the node
	// isolates. The next tick's retry routes around it onto node02.
	byzTarget := orchestrator.Target{
		MaxQueueDepth:    24,
		MinReplicas:      1,
		MaxReplicas:      2,
		MaxServiceCycles: 200_000,
	}
	byzantine := ScenarioSpec{
		Name: "byzantine-registry", Seed: 42,
		Ticks: 36, WarmupTicks: 12, InjectTicks: 8,
		Replicas: 1, TickMillis: 1, RequestCycles: 60_000,
		Target:    byzTarget,
		Admission: admission,
		Cluster:   clusterSpec,
		Tenants: []TenantLoad{{
			Tenant: "web", BaseLoad: 12, Keys: 64, BodyBytes: 192,
			SpikeAt: 13, SpikeTicks: 8, SpikeFactor: 8,
		}},
		Faults: []FaultSpec{{Kind: "byzantine", At: 5, Node: 1}},
		Assert: []Assertion{
			Equals("tampered_cached", 0),
			AtLeast("launch_failed", 1),
			Equals("cluster.node01.isolated", 1),
			Equals("cluster.node01.cache_blobs", 0),
			Equals("final_replicas", 2),
			Equals("failed", 0),
		},
	}

	return []ScenarioSpec{nodeCrash, nodePartition, byzantine}
}
