package microsvc

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"strings"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/eventbus"
	"securecloud/internal/image"
	"securecloud/internal/orchestrator"
	"securecloud/internal/registry"
	"securecloud/internal/sconert"
)

// planeFixture assembles the minimal plane: bus, attestation service, key
// broker with keys registered for name under its replica signer.
func planeFixture(t *testing.T, name string, topics ...string) (*eventbus.Bus, *attest.Service, *attest.KeyBroker, attest.ServiceKeys) {
	t.Helper()
	bus := eventbus.New()
	svc := attest.NewService()
	kb := attest.NewKeyBroker(svc)
	var root cryptbox.Key
	root[0] = 0x5E
	keys, err := NewServiceKeys(root, name, topics...)
	if err != nil {
		t.Fatal(err)
	}
	kb.Register(name, attest.Policy{AllowedMRSigner: []cryptbox.Digest{ReplicaSigner(name)}}, keys)
	return bus, svc, kb, keys
}

func TestReplicaSetServesOnPlane(t *testing.T) {
	bus, svc, kb, keys := planeFixture(t, "plane/upper", "up/req", "up/resp")
	rs, err := NewReplicaSet(bus, svc, kb, "plane/upper",
		func(req []byte) ([]byte, error) { return bytes.ToUpper(req), nil },
		ReplicaSetConfig{Replicas: 3, InTopic: "up/req", OutTopic: "up/resp"})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()
	client, err := NewPlaneClient(bus, "plane/upper", keys, "up/req", "up/resp")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reqs := make([]PlaneRequest, 20)
	for i := range reqs {
		reqs[i] = PlaneRequest{Key: fmt.Sprintf("meter-%02d", i), Body: []byte(fmt.Sprintf("reading %d", i))}
	}
	if err := client.SendBatch(reqs); err != nil {
		t.Fatal(err)
	}
	st, err := rs.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Polled != 20 || st.Served != 20 || st.Failed != 0 {
		t.Fatalf("step = %+v", st)
	}
	replies, err := client.Replies()
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 20 {
		t.Fatalf("replies = %d", len(replies))
	}
	byKey := make(map[string]string, len(replies))
	for _, r := range replies {
		byKey[r.Key] = string(r.Body)
	}
	for i := range reqs {
		want := strings.ToUpper(fmt.Sprintf("reading %d", i))
		if got := byKey[fmt.Sprintf("meter-%02d", i)]; got != want {
			t.Fatalf("reply for meter-%02d = %q, want %q", i, got, want)
		}
	}
	tot := rs.Totals()
	if tot.Served != 20 || tot.Launched != 3 || tot.Live != 3 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.SerialCycles == 0 || tot.FrontCycles == 0 {
		t.Fatal("no cycles charged on the plane")
	}
}

// TestNoKeysWithoutAttestation is the acceptance property: a service whose
// enclaves do not satisfy the key broker's policy never comes up — there
// is no API path onto the plane that bypasses the verified-quote release.
func TestNoKeysWithoutAttestation(t *testing.T) {
	bus, svc, kb, _ := planeFixture(t, "plane/app", "a/req", "a/resp")
	// The broker's policy for "plane/app" allows ReplicaSigner("plane/app").
	// An impostor service reusing the same topics but a different identity
	// is denied keys, so its replica set cannot boot.
	var root cryptbox.Key
	root[0] = 0x66
	keys, err := NewServiceKeys(root, "plane/evil", "a/req", "a/resp")
	if err != nil {
		t.Fatal(err)
	}
	kb.Register("plane/evil",
		attest.Policy{AllowedMRSigner: []cryptbox.Digest{ReplicaSigner("plane/app")}}, keys)
	_, err = NewReplicaSet(bus, svc, kb, "plane/evil",
		func(req []byte) ([]byte, error) { return req, nil },
		ReplicaSetConfig{Replicas: 1, InTopic: "a/req", OutTopic: "a/resp"})
	if !errors.Is(err, attest.ErrPolicy) {
		t.Fatalf("impostor replica set booted: err = %v, want ErrPolicy", err)
	}
	// A service with no registration at all is denied outright.
	_, err = NewReplicaSet(bus, svc, kb, "plane/unknown",
		func(req []byte) ([]byte, error) { return req, nil },
		ReplicaSetConfig{Replicas: 1, InTopic: "a/req", OutTopic: "a/resp"})
	if !errors.Is(err, attest.ErrUnknownService) {
		t.Fatalf("unregistered service booted: err = %v, want ErrUnknownService", err)
	}
	// Revoking the service stops scale-out: the next Launch is denied keys.
	rs, err := NewReplicaSet(bus, svc, kb, "plane/app",
		func(req []byte) ([]byte, error) { return req, nil },
		ReplicaSetConfig{Replicas: 1, InTopic: "a/req", OutTopic: "a/resp"})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()
	kb.Revoke("plane/app")
	if _, err := rs.Launch(); !errors.Is(err, attest.ErrServiceRevoked) {
		t.Fatalf("launch after revocation: err = %v, want ErrServiceRevoked", err)
	}
}

func TestReplicaSetKeyAffinity(t *testing.T) {
	bus, svc, kb, keys := planeFixture(t, "plane/aff", "f/req", "f/resp")
	rs, err := NewReplicaSet(bus, svc, kb, "plane/aff",
		func(req []byte) ([]byte, error) { return req, nil },
		ReplicaSetConfig{Replicas: 4, InTopic: "f/req", OutTopic: "f/resp"})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()
	client, err := NewPlaneClient(bus, "plane/aff", keys, "f/req", "f/resp")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// All requests share one routing key: exactly one replica serves them.
	for tick := 0; tick < 3; tick++ {
		var batch []PlaneRequest
		for i := 0; i < 10; i++ {
			batch = append(batch, PlaneRequest{Key: "feeder-7", Body: []byte("x")})
		}
		if err := client.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := rs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	busy := 0
	for _, h := range rs.ReplicaHandles() {
		if h.(*Replica).Stats().Served > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("single-key load spread over %d replicas, want 1", busy)
	}
}

func TestRetireRequeuesPending(t *testing.T) {
	bus, svc, kb, keys := planeFixture(t, "plane/rq", "q/req", "q/resp")
	rs, err := NewReplicaSet(bus, svc, kb, "plane/rq",
		func(req []byte) ([]byte, error) { return req, nil },
		ReplicaSetConfig{Replicas: 2, InTopic: "q/req", OutTopic: "q/resp",
			// A tiny budget: one request per replica per tick.
			TickBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()
	client, err := NewPlaneClient(bus, "plane/rq", keys, "q/req", "q/resp")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var batch []PlaneRequest
	for i := 0; i < 12; i++ {
		batch = append(batch, PlaneRequest{Key: fmt.Sprintf("k%d", i), Body: []byte("b")})
	}
	if err := client.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Step(); err != nil {
		t.Fatal(err)
	}
	if got := rs.Backlog(); got != 10 {
		t.Fatalf("backlog after budgeted step = %d, want 10", got)
	}
	// Retiring a replica must not lose its pending work.
	handles := rs.ReplicaHandles()
	if err := rs.Retire(handles[0].ID()); err != nil {
		t.Fatal(err)
	}
	if got := rs.Backlog(); got != 10 {
		t.Fatalf("backlog after retire = %d, want 10 (no work lost)", got)
	}
	// Unbudgeted steps drain everything through the survivor.
	rs.cfg.TickBudget = 0
	if _, err := rs.Step(); err != nil {
		t.Fatal(err)
	}
	if got := rs.Backlog(); got != 0 {
		t.Fatalf("backlog after drain = %d", got)
	}
	if tot := rs.Totals(); tot.Served != 12 {
		t.Fatalf("served = %d, want 12 (retired replica's work redistributed)", tot.Served)
	}
}

func TestStepWithNoReplicasRequeues(t *testing.T) {
	bus, svc, kb, keys := planeFixture(t, "plane/none", "n/req", "n/resp")
	rs, err := NewReplicaSet(bus, svc, kb, "plane/none",
		func(req []byte) ([]byte, error) { return req, nil },
		ReplicaSetConfig{Replicas: 1, InTopic: "n/req", OutTopic: "n/resp"})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()
	client, _ := NewPlaneClient(bus, "plane/none", keys, "n/req", "n/resp")
	defer client.Close()
	if err := rs.Retire(rs.ReplicaHandles()[0].ID()); err != nil {
		t.Fatal(err)
	}
	if err := client.Send("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Step(); !errors.Is(err, ErrNoLiveReplicas) {
		t.Fatalf("err = %v, want ErrNoLiveReplicas", err)
	}
	// The polled frame was not lost: a relaunched replica serves it.
	if _, err := rs.Launch(); err != nil {
		t.Fatal(err)
	}
	st, err := rs.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Served != 1 {
		t.Fatalf("served = %d after relaunch, want 1", st.Served)
	}
}

func TestFrameCodec(t *testing.T) {
	f := encodeFrame("feeder-07", []byte("sealed-bytes"))
	key, sealed, err := decodeFrame(f)
	if err != nil || key != "feeder-07" || string(sealed) != "sealed-bytes" {
		t.Fatalf("roundtrip = %q %q %v", key, sealed, err)
	}
	for _, bad := range [][]byte{nil, {0x00}, {0x00, 0x10, 'x'}} {
		if _, _, err := decodeFrame(bad); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("decodeFrame(%v) err = %v, want ErrBadFrame", bad, err)
		}
	}
}

// TestContainerReplicaSetBootSequence: replicas launched through the
// container path run the full paper boot sequence — image pull + verify,
// enclave build, SCONE boot with SCF release, then service-key release —
// and serve exactly like direct-mode replicas.
func TestContainerReplicaSetBootSequence(t *testing.T) {
	reg := registry.New()
	svc := attest.NewService()
	cas := sconert.NewCAS(svc)
	bus := eventbus.New()
	kb := attest.NewKeyBroker(svc)

	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	img, err := image.NewBuilder("plane/worker", "1.0").
		AddLayer(map[string][]byte{container.EntrypointPath: []byte("PLANE-WORKER-BINARY")}).
		SetEntrypoint(container.EntrypointPath).
		SetEnclaveSize(2 << 20).
		Build(priv)
	if err != nil {
		t.Fatal(err)
	}
	client := container.NewSCONEClient(priv, cas)
	secured, secrets, err := client.BuildSecure(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Deploy(secured, secrets, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Push(secured); err != nil {
		t.Fatal(err)
	}

	// The key broker's policy pins the image's expected measurement: only
	// enclaves built from exactly this image receive the service keys.
	m, err := container.ExpectedMeasurement(secured)
	if err != nil {
		t.Fatal(err)
	}
	var root cryptbox.Key
	root[0] = 0x7C
	keys, err := NewServiceKeys(root, "plane/worker", "w/req", "w/resp")
	if err != nil {
		t.Fatal(err)
	}
	kb.Register("plane/worker", attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}, keys)

	rs, err := NewContainerReplicaSet(bus, svc, kb, "plane/worker",
		func(req []byte) ([]byte, error) { return append([]byte("ack:"), req...), nil },
		ReplicaSetConfig{Replicas: 2, InTopic: "w/req", OutTopic: "w/resp"},
		ContainerSpec{Registry: reg, CAS: cas, Image: "plane/worker", Tag: "1.0"})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()

	pc, err := NewPlaneClient(bus, "plane/worker", keys, "w/req", "w/resp")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if err := pc.Send("tenant-1", []byte("job")); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Step(); err != nil {
		t.Fatal(err)
	}
	replies, err := pc.Replies()
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || string(replies[0].Body) != "ack:job" {
		t.Fatalf("replies = %+v", replies)
	}

	// Scale-out goes through the same container path.
	if _, err := rs.Launch(); err != nil {
		t.Fatal(err)
	}
	if rs.Replicas() != 3 {
		t.Fatalf("replicas = %d", rs.Replicas())
	}
}

// TestContainerReplicaSetSharesBlobCache: the replicas of one set pull
// through one node-local blob cache, so only the very first boot (the
// front-end's) fetches chunks; every subsequent replica — including
// scale-out — boots warm, fetching zero.
func TestContainerReplicaSetSharesBlobCache(t *testing.T) {
	reg := registry.New()
	svc := attest.NewService()
	cas := sconert.NewCAS(svc)
	bus := eventbus.New()
	kb := attest.NewKeyBroker(svc)

	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	img, err := image.NewBuilder("plane/cached", "1.0").
		AddLayer(map[string][]byte{container.EntrypointPath: []byte("CACHED-WORKER-BINARY")}).
		SetEntrypoint(container.EntrypointPath).
		SetEnclaveSize(2 << 20).
		Build(priv)
	if err != nil {
		t.Fatal(err)
	}
	client := container.NewSCONEClient(priv, cas)
	secured, secrets, err := client.BuildSecure(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Deploy(secured, secrets, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Push(secured); err != nil {
		t.Fatal(err)
	}
	m, err := container.ExpectedMeasurement(secured)
	if err != nil {
		t.Fatal(err)
	}
	var root cryptbox.Key
	root[0] = 0x7D
	keys, err := NewServiceKeys(root, "plane/cached", "c/req", "c/resp")
	if err != nil {
		t.Fatal(err)
	}
	kb.Register("plane/cached", attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}, keys)

	cache := container.NewBlobCache()
	rs, err := NewContainerReplicaSet(bus, svc, kb, "plane/cached",
		func(req []byte) ([]byte, error) { return req, nil },
		ReplicaSetConfig{Replicas: 2, InTopic: "c/req", OutTopic: "c/resp"},
		ContainerSpec{Registry: reg, CAS: cas, Image: "plane/cached", Tag: "1.0", Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()

	st := cache.Stats()
	if st.Stores == 0 {
		t.Fatal("first boot stored no chunks")
	}
	if st.Misses != st.Stores {
		t.Fatalf("misses %d != stores %d: some boot refetched", st.Misses, st.Stores)
	}
	// Front-end + 2 replicas = 3 boots; all chunks after the first boot hit.
	if st.Hits != 2*st.Stores {
		t.Fatalf("hits = %d, want %d (two warm boots)", st.Hits, 2*st.Stores)
	}
	// Scale-out boots warm too: no new stores, only hits.
	if _, err := rs.Launch(); err != nil {
		t.Fatal(err)
	}
	st2 := cache.Stats()
	if st2.Stores != st.Stores || st2.Misses != st.Misses {
		t.Fatalf("scale-out refetched: before %+v after %+v", st, st2)
	}
	if st2.Hits != 3*st.Stores {
		t.Fatalf("scale-out hits = %d, want %d", st2.Hits, 3*st.Stores)
	}
}

// TestOrchestratedReplicaSetClosedLoop drives a real ReplicaSet through
// the orchestrator: a burst overloads the budgeted replicas, the
// orchestrator scales out, the burst drains, and it scales back in.
func TestOrchestratedReplicaSetClosedLoop(t *testing.T) {
	bus, svc, kb, keys := planeFixture(t, "plane/loop", "l/req", "l/resp")
	rs, err := NewReplicaSet(bus, svc, kb, "plane/loop",
		func(req []byte) ([]byte, error) { return nil, nil },
		ReplicaSetConfig{Replicas: 1, InTopic: "l/req", OutTopic: "l/resp",
			RequestCycles: 100_000, TickBudget: 1_000_000}) // ~9 req/tick/replica
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()
	o, err := orchestrator.New(orchestrator.Target{
		MaxQueueDepth: 8, MinReplicas: 1, MaxReplicas: 6, ScaleInBelow: 2,
	}, rs, rs.ReplicaHandles()...)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewPlaneClient(bus, "plane/loop", keys, "l/req", "l/resp")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	maxReplicas := 1
	for tick := 0; tick < 40; tick++ {
		if tick < 8 { // burst: 40 req/tick vs ~9/replica capacity
			var batch []PlaneRequest
			for i := 0; i < 40; i++ {
				batch = append(batch, PlaneRequest{Key: fmt.Sprintf("k%d", i%16), Body: []byte("r")})
			}
			if err := client.SendBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rs.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := o.Observe(); err != nil {
			t.Fatal(err)
		}
		if n := o.Replicas(); n > maxReplicas {
			maxReplicas = n
		}
	}
	if maxReplicas < 2 {
		t.Fatal("burst never triggered scale-out")
	}
	if got := o.Replicas(); got != 1 {
		t.Fatalf("did not scale back in: %d replicas", got)
	}
	if rs.Backlog() != 0 {
		t.Fatalf("backlog = %d after drain", rs.Backlog())
	}
	if tot := rs.Totals(); tot.Served != 8*40 {
		t.Fatalf("served = %d, want %d", tot.Served, 8*40)
	}
}

// TestRetireUnderAdmissionNoLossNoDoubleServe drives the two recovery
// paths against each other: work a retired replica requeues re-enters
// Step ahead of admission (no second token charge, no second shed
// decision), while fresh arrivals keep flowing through the controller.
// Every request is either shed exactly once at arrival or served exactly
// once — nothing lost, nothing duplicated.
func TestRetireUnderAdmissionNoLossNoDoubleServe(t *testing.T) {
	bus, svc, kb, keys := planeFixture(t, "plane/armq", "aq/req", "aq/resp")
	rs, err := NewReplicaSet(bus, svc, kb, "plane/armq",
		func(req []byte) ([]byte, error) { return req, nil },
		ReplicaSetConfig{Replicas: 2, InTopic: "aq/req", OutTopic: "aq/resp",
			// One request per replica per tick, so retire catches pending work.
			TickBudget: 1,
			Admission: &AdmissionConfig{
				Default:         TenantPolicy{Weight: 4, MaxQueue: 8},
				DispatchPerStep: 4,
				TickMillis:      1,
			}})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()
	client, err := NewPlaneClient(bus, "plane/armq", keys, "aq/req", "aq/resp")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var batch []PlaneRequest
	for i := 0; i < 12; i++ {
		batch = append(batch, PlaneRequest{Key: fmt.Sprintf("rq-%02d", i), Body: []byte{byte(i)}})
	}
	if err := client.SendTenant("t", batch); err != nil {
		t.Fatal(err)
	}
	// Step 1: the tenant queue (MaxQueue 8) admits 8 and sheds 4 at
	// arrival; 4 dispatch, and the tick budget leaves some pending.
	st, err := rs.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != 4 {
		t.Fatalf("shed at arrival = %d, want 4", st.Shed)
	}
	// Retire one replica mid-backlog: its pending work requeues.
	if err := rs.Retire(rs.ReplicaHandles()[0].ID()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && rs.Backlog() > 0; i++ {
		if _, err := rs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := rs.Backlog(); got != 0 {
		t.Fatalf("backlog = %d after drain", got)
	}

	replies, err := client.Replies()
	if err != nil {
		t.Fatal(err)
	}
	perKey := make(map[string]int)
	served, shed := 0, 0
	for _, r := range replies {
		perKey[r.Key]++
		if r.Shed {
			shed++
			if r.RetryAfterSimMS <= 0 {
				t.Fatalf("shed reply for %s has no retry-after", r.Key)
			}
		} else {
			served++
		}
	}
	if served != 8 || shed != 4 {
		t.Fatalf("served = %d, shed = %d; want 8 served, 4 shed", served, shed)
	}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("rq-%02d", i)
		if perKey[key] != 1 {
			t.Fatalf("key %s got %d replies, want exactly 1", key, perKey[key])
		}
	}
	if tot := rs.Totals(); tot.Served != 8 || tot.Shed != 4 {
		t.Fatalf("totals = %+v, want Served 8 Shed 4", tot)
	}
	adm := rs.AdmissionStats()
	ts, ok := adm.ByTenant["t"]
	if !ok || ts.Admitted != 8 || ts.Dispatched != 8 || ts.Shed != 4 {
		t.Fatalf("tenant stats = %+v, want Admitted 8 Dispatched 8 Shed 4", ts)
	}
}
