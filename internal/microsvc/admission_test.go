package microsvc

import (
	"fmt"
	"testing"
)

func admReq(tenant, key string) request {
	return request{key: key, sealed: []byte{1}, meta: frameMeta{tenant: tenant}}
}

func TestAdmissionTokenBucketRefillAndBurst(t *testing.T) {
	a := newAdmission(AdmissionConfig{Default: TenantPolicy{Rate: 2, Burst: 5}})
	// First sight: full bucket (Burst).
	ts := a.state("t1")
	if ts.tokens != 5 {
		t.Fatalf("initial tokens = %d, want burst 5", ts.tokens)
	}
	// Drain via dispatch.
	for i := 0; i < 7; i++ {
		if shed, _ := a.offer(admReq("t1", fmt.Sprintf("k%d", i))); shed {
			t.Fatalf("offer %d unexpectedly shed", i)
		}
	}
	out := a.dispatch()
	if len(out) != 5 {
		t.Fatalf("dispatched %d, want 5 (token-bounded)", len(out))
	}
	if ts.tokens != 0 {
		t.Fatalf("tokens after drain = %d, want 0", ts.tokens)
	}
	// Refill adds Rate, capped at Burst.
	a.beginStep()
	if ts.tokens != 2 {
		t.Fatalf("tokens after one refill = %d, want 2", ts.tokens)
	}
	for i := 0; i < 10; i++ {
		a.beginStep()
	}
	if ts.tokens != 5 {
		t.Fatalf("tokens after many refills = %d, want burst cap 5", ts.tokens)
	}
}

func TestAdmissionWeightedFairDequeue(t *testing.T) {
	a := newAdmission(AdmissionConfig{
		Default: TenantPolicy{Weight: 1},
		Tenants: map[string]TenantPolicy{"heavy": {Weight: 3}},
	})
	for i := 0; i < 6; i++ {
		a.offer(admReq("heavy", fmt.Sprintf("h%d", i)))
		a.offer(admReq("light", fmt.Sprintf("l%d", i)))
	}
	a.beginStep()
	out := a.dispatch()
	if len(out) != 12 {
		t.Fatalf("dispatched %d, want 12", len(out))
	}
	// Round structure over sorted order {heavy, light}: 3 heavy, 1 light, per
	// round — so the first 8 dispatches hold 6 heavy and 2 light.
	heavy := 0
	for _, q := range out[:8] {
		if q.meta.tenant == "heavy" {
			heavy++
		}
	}
	if heavy != 6 {
		t.Fatalf("heavy in first 8 dispatches = %d, want 6 (3:1 weighting)", heavy)
	}
	// Deterministic: same offers, same order ⇒ identical dispatch sequence.
	b := newAdmission(AdmissionConfig{
		Default: TenantPolicy{Weight: 1},
		Tenants: map[string]TenantPolicy{"heavy": {Weight: 3}},
	})
	for i := 0; i < 6; i++ {
		b.offer(admReq("heavy", fmt.Sprintf("h%d", i)))
		b.offer(admReq("light", fmt.Sprintf("l%d", i)))
	}
	b.beginStep()
	out2 := b.dispatch()
	for i := range out {
		if out[i].key != out2[i].key {
			t.Fatalf("dispatch order diverged at %d: %q vs %q", i, out[i].key, out2[i].key)
		}
	}
}

func TestAdmissionShedAtExactlyFullTenantQueue(t *testing.T) {
	a := newAdmission(AdmissionConfig{Default: TenantPolicy{MaxQueue: 3, Rate: 2}, TickMillis: 1})
	for i := 0; i < 3; i++ {
		if shed, _ := a.offer(admReq("t", fmt.Sprintf("k%d", i))); shed {
			t.Fatalf("offer %d shed below the bound", i)
		}
	}
	shed, retry := a.offer(admReq("t", "k3"))
	if !shed {
		t.Fatal("offer at exactly-full queue not shed")
	}
	// retry-after = ceil((3+1)/2) = 2 steps × 1 sim-ms.
	if retry != 2 {
		t.Fatalf("retry-after = %v sim-ms, want 2", retry)
	}
	if a.depth() != 3 {
		t.Fatalf("depth = %d, want 3", a.depth())
	}
}

func TestAdmissionGlobalQueueBound(t *testing.T) {
	a := newAdmission(AdmissionConfig{Default: TenantPolicy{MaxQueue: 100}, MaxGlobalQueue: 4, TickMillis: 1})
	for i := 0; i < 4; i++ {
		tenant := fmt.Sprintf("t%d", i)
		if shed, _ := a.offer(admReq(tenant, "k")); shed {
			t.Fatalf("offer %d shed below global bound", i)
		}
	}
	shed, retry := a.offer(admReq("t9", "k"))
	if !shed {
		t.Fatal("offer beyond global bound not shed")
	}
	if retry != 1 {
		t.Fatalf("retry-after = %v sim-ms, want 1 (unlimited-rate tenant)", retry)
	}
	snap := a.snapshot()
	if snap.Shed != 1 || snap.Queued != 4 {
		t.Fatalf("snapshot shed=%d queued=%d, want 1/4", snap.Shed, snap.Queued)
	}
}

func TestAdmissionRetryAfterCapped(t *testing.T) {
	a := newAdmission(AdmissionConfig{Default: TenantPolicy{MaxQueue: 1000, Rate: 1}, TickMillis: 2})
	for i := 0; i < 1000; i++ {
		a.offer(admReq("t", "k"))
	}
	_, retry := a.offer(admReq("t", "k"))
	if retry != float64(maxRetrySteps)*2 {
		t.Fatalf("retry-after = %v, want capped %v", retry, float64(maxRetrySteps)*2)
	}
}

func TestAdmissionHotKeySplit(t *testing.T) {
	a := newAdmission(AdmissionConfig{
		Default:       TenantPolicy{},
		HotKeyPerStep: 2,
		SplitWays:     2,
		SplitDepth:    3,
	})
	const n = 4
	cold := []int{0, 0, 0, 0}
	home := routeIndex("hot", n)

	// Below the per-step count the key stays home regardless of depth.
	deep := []int{9, 9, 9, 9}
	for i := 0; i < 2; i++ {
		if got := a.routeFor("hot", n, deep); got != home {
			t.Fatalf("dispatch %d routed to %d, want home %d", i, got, home)
		}
	}
	// Above the count but with a shallow home queue: still home.
	a.beginStep()
	for i := 0; i < 5; i++ {
		if got := a.routeFor("hot", n, cold); got != home {
			t.Fatalf("shallow-home dispatch %d routed to %d, want home %d", i, got, home)
		}
	}
	// Hot AND straggling: rotation across 2 ways starting at home.
	a.beginStep()
	for i := 0; i < 2; i++ {
		a.routeFor("hot", n, deep) // burn the per-step allowance
	}
	want := []int{home, (home + 1) % n, home, (home + 1) % n}
	for i, w := range want {
		if got := a.routeFor("hot", n, deep); got != w {
			t.Fatalf("split dispatch %d routed to %d, want %d", i, got, w)
		}
	}
	if a.splits != 4 {
		t.Fatalf("splits = %d, want 4", a.splits)
	}
	// Other keys are untouched.
	if got := a.routeFor("cold-key", n, deep); got != routeIndex("cold-key", n) {
		t.Fatalf("cold key rerouted to %d", got)
	}
}

func TestAdmissionDispatchBudget(t *testing.T) {
	a := newAdmission(AdmissionConfig{Default: TenantPolicy{Weight: 2}, DispatchPerStep: 3})
	for i := 0; i < 4; i++ {
		a.offer(admReq("a", fmt.Sprintf("a%d", i)))
		a.offer(admReq("b", fmt.Sprintf("b%d", i)))
	}
	out := a.dispatch()
	if len(out) != 3 {
		t.Fatalf("dispatched %d, want budget 3", len(out))
	}
	// Sorted order {a, b}, weight 2: a0 a1 b0.
	wantKeys := []string{"a0", "a1", "b0"}
	for i, w := range wantKeys {
		if out[i].key != w {
			t.Fatalf("dispatch %d = %q, want %q", i, out[i].key, w)
		}
	}
	if a.depth() != 5 {
		t.Fatalf("depth after budgeted dispatch = %d, want 5", a.depth())
	}
}
