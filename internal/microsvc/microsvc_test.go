package microsvc

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
)

func testEnclave(t *testing.T) *enclave.Enclave {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	e, err := p.ECreate(1<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EAdd([]byte("svc")); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	return e
}

func reqKey() cryptbox.Key {
	var k cryptbox.Key
	k[1] = 0x77
	return k
}

func upperService(t *testing.T) *Service {
	t.Helper()
	svc, err := New("upper", testEnclave(t), reqKey(), func(req []byte) ([]byte, error) {
		return []byte(strings.ToUpper(string(req))), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestCallRoundTrip(t *testing.T) {
	svc := upperService(t)
	cli, err := NewClient(svc, reqKey())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Call([]byte("hello grid"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "HELLO GRID" {
		t.Fatalf("resp = %q", resp)
	}
	if svc.Served() != 1 {
		t.Fatalf("Served = %d", svc.Served())
	}
}

func TestInvokeRejectsForgedRequest(t *testing.T) {
	svc := upperService(t)
	wrong, _ := cryptbox.NewBox(cryptbox.Key{0xEE})
	sealed, _ := wrong.Seal([]byte("req"), []byte("req|upper"))
	if _, err := svc.Invoke(sealed); !errors.Is(err, ErrSealedRequest) {
		t.Fatalf("err = %v, want ErrSealedRequest", err)
	}
}

func TestResponseCannotBeReplayedAsRequest(t *testing.T) {
	svc := upperService(t)
	cli, _ := NewClient(svc, reqKey())
	box, _ := cryptbox.NewBox(reqKey())
	sealedReq, _ := box.Seal([]byte("x"), []byte("req|upper"))
	sealedResp, err := svc.Invoke(sealedReq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(sealedResp); !errors.Is(err, ErrSealedRequest) {
		t.Fatalf("response replayed as request: %v", err)
	}
	_ = cli
}

func TestCrossServiceRequestRejected(t *testing.T) {
	a := upperService(t)
	b, err := New("other", testEnclave(t), reqKey(), func(req []byte) ([]byte, error) { return req, nil })
	if err != nil {
		t.Fatal(err)
	}
	box, _ := cryptbox.NewBox(reqKey())
	forA, _ := box.Seal([]byte("x"), []byte("req|upper"))
	if _, err := b.Invoke(forA); !errors.Is(err, ErrSealedRequest) {
		t.Fatalf("request for service A accepted by service B: %v", err)
	}
	_ = a
}

func TestHandlerErrorPropagates(t *testing.T) {
	svc, err := New("failing", testEnclave(t), reqKey(), func(req []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, _ := NewClient(svc, reqKey())
	if _, err := cli.Call([]byte("x")); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	if svc.Served() != 0 {
		t.Fatal("failed request counted as served")
	}
}

func TestStoppedService(t *testing.T) {
	svc := upperService(t)
	cli, _ := NewClient(svc, reqKey())
	svc.Stop()
	if _, err := cli.Call([]byte("x")); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	if _, err := New("x", testEnclave(t), reqKey(), nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestInvokeChargesEnclaveEntry(t *testing.T) {
	svc := upperService(t)
	cli, _ := NewClient(svc, reqKey())
	before := svc.Enclave().Memory().Breakdown()[enclave.CauseTransition]
	if _, err := cli.Call([]byte("x")); err != nil {
		t.Fatal(err)
	}
	after := svc.Enclave().Memory().Breakdown()[enclave.CauseTransition]
	if after <= before {
		t.Fatal("invocation did not enter the enclave")
	}
}

func TestBusWorkerPipeline(t *testing.T) {
	// Figure 1: micro-services connected by an event bus, end to end.
	bus := eventbus.New()
	var appRoot cryptbox.Key
	appRoot[2] = 0x33

	filter, err := New("filter", testEnclave(t), reqKey(), func(m []byte) ([]byte, error) {
		if bytes.Contains(m, []byte("anomaly")) {
			return m, nil
		}
		return nil, nil // drop normal readings
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewBusWorker(filter, bus, appRoot, "readings", "alerts")
	if err != nil {
		t.Fatal(err)
	}

	inKey, _ := eventbus.TopicKey(appRoot, "readings")
	pub, _ := eventbus.NewPublisher(bus, "readings", inKey)
	alertKey, _ := eventbus.TopicKey(appRoot, "alerts")
	alertSub, _ := eventbus.NewSubscriber(bus, "alerts", alertKey)

	for _, m := range []string{"normal 1", "anomaly feeder-3", "normal 2"} {
		if _, err := pub.Publish([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("processed %d, want 3", n)
	}
	alerts, err := alertSub.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || !bytes.Contains(alerts[0], []byte("anomaly")) {
		t.Fatalf("alerts = %q", alerts)
	}
}

func TestBusWorkerEmptyStep(t *testing.T) {
	bus := eventbus.New()
	var appRoot cryptbox.Key
	svc := upperService(t)
	w, err := NewBusWorker(svc, bus, appRoot, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.Step()
	if err != nil || n != 0 {
		t.Fatalf("empty step: n=%d err=%v", n, err)
	}
}
