package microsvc

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"securecloud/internal/attest"
	"securecloud/internal/cluster"
	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/eventbus"
	"securecloud/internal/genpack"
	"securecloud/internal/kvstore"
	"securecloud/internal/orchestrator"
	"securecloud/internal/sim"
	"securecloud/internal/smartgrid"
)

// This file is the declarative fault-scenario engine (ROADMAP item 3): a
// ScenarioSpec is pure data — tenant load profiles, a fault table, the
// admission and retry configuration, and an assertion table — and RunSpec
// is the one generic closed loop that executes any spec. The four
// hand-coded legacy scenarios are now 10-line Spec() conversions run
// through this engine (bit-identical to their pre-engine traces), and a
// new scenario is a ~20-line literal in scenariolab.go.

// TenantLoad is one tenant's deterministic load schedule. The zero tenant
// name sends untagged legacy frames (exactly the pre-tenant wire format);
// named tenants send v2 frames the admission controller accounts.
type TenantLoad struct {
	Tenant string
	// BaseLoad is requests per tick (uniform profile), the mean arrival
	// rate (genpack-batch) or the fleet size (smartgrid-stream).
	BaseLoad int
	// Keys / KeyPrefix span the routing-key space: KeyPrefix + %03d.
	Keys      int
	KeyPrefix string
	BodyBytes int
	// Profile selects the generator: "" = uniform random keys (the legacy
	// schedule), "genpack-batch" = bursty Poisson batch arrivals from a
	// genpack trace, "smartgrid-stream" = one request per meter reading
	// from a smartgrid fleet, keyed by feeder, with a theft detector and
	// a forecaster consuming the same readings client-side.
	Profile string

	// Load spike: BaseLoad × SpikeFactor during [SpikeAt, SpikeAt+SpikeTicks).
	SpikeAt     int
	SpikeTicks  int
	SpikeFactor int
	// Hot-key skew: from SkewAt on, SkewPercent% of requests use SkewKey.
	SkewAt      int
	SkewPercent int
	SkewKey     string
}

// FaultSpec is one injected infrastructure fault.
type FaultSpec struct {
	// Kind is "crash" (replica dies), "slow" (replica charged Extra cycles
	// per request — a degraded NIC or noisy neighbour), "crash-state"
	// (replica dies AND the durable store loses all in-memory state, then
	// recovers from snapshot + WAL tail; needs spec.Durability), "revoke"
	// (the KeyBroker revokes the service — replacement replicas are denied
	// keys and fail closed) or "reinstate" (re-registers the service,
	// letting replacements re-attest).
	//
	// Cluster scenarios (spec.Cluster set) add the node-level kinds:
	// "node-crash" (node Node goes down, its replicas crash and are
	// rescheduled to surviving nodes), "partition" (node Node is cut off —
	// requests to its replicas shed deterministically until the
	// orchestrator converges on the reachable side), "heal" (reverses a
	// partition) and "byzantine" (the registry serves node Node tampered
	// chunks — its pulls fail closed and the node isolates).
	Kind    string
	At      int // injection tick
	Replica int // routing-order index at injection time
	Node    int // cluster node index, for the node-level kinds
	Extra   sim.Cycles
}

// Assertion bounds one result metric; the bench harness turns failures
// into gate problems. Build with AtLeast/AtMost/Between/Equals.
type Assertion struct {
	Metric string
	Min    float64
	Max    float64
}

// AtLeast asserts metric ≥ v.
func AtLeast(metric string, v float64) Assertion {
	return Assertion{Metric: metric, Min: v, Max: math.Inf(1)}
}

// AtMost asserts metric ≤ v.
func AtMost(metric string, v float64) Assertion {
	return Assertion{Metric: metric, Min: math.Inf(-1), Max: v}
}

// Between asserts lo ≤ metric ≤ hi.
func Between(metric string, lo, hi float64) Assertion {
	return Assertion{Metric: metric, Min: lo, Max: hi}
}

// Equals asserts metric == v (exactly — these are deterministic figures).
func Equals(metric string, v float64) Assertion {
	return Assertion{Metric: metric, Min: v, Max: v}
}

// ScenarioSpec is one declarative fault-injection experiment. Everything
// that shapes the simulated figures is data in this struct; Workers is
// execution-only and must never change any figure.
type ScenarioSpec struct {
	Name string
	Seed int64
	// Ticks is the closed-loop length. WarmupTicks and InjectTicks split
	// it into the three phases of a fault experiment — warmup
	// [1, WarmupTicks], inject (WarmupTicks, WarmupTicks+InjectTicks],
	// recovery (the rest) — for the shed_phase_* metrics. Zero WarmupTicks
	// disables phase accounting.
	Ticks       int
	WarmupTicks int
	InjectTicks int

	Replicas      int
	Workers       int // execution-only
	TickMillis    float64
	RequestCycles sim.Cycles
	PollBatch     int
	Target        orchestrator.Target

	// Admission enables the tenant-aware admission controller; Retry
	// enables deterministic client retry honoring shed retry-after hints.
	Admission *AdmissionConfig
	Retry     *RetryPolicy

	// Durability attaches a durable sealed store mirroring the request
	// stream (see DurabilitySpec); required by "crash-state" faults.
	Durability *DurabilitySpec

	// Cluster places replicas on a simulated multi-node cluster (container
	// boots through per-node links and caches, locality-aware placement);
	// nil keeps the single-node direct-mode plane. Required by the
	// node-level fault kinds.
	Cluster *ClusterSpec

	Tenants []TenantLoad
	Faults  []FaultSpec
	Assert  []Assertion
}

// InjectTick returns the spec's first fault-injection tick (the earliest
// of fault At, tenant SpikeAt and tenant SkewAt), or -1 for a fault-free
// run. Adaptation latency is measured from it.
func (spec ScenarioSpec) InjectTick() int {
	first := -1
	consider := func(at int) {
		if at > 0 && (first < 0 || at < first) {
			first = at
		}
	}
	for _, tl := range spec.Tenants {
		consider(tl.SpikeAt)
		consider(tl.SkewAt)
	}
	for _, f := range spec.Faults {
		consider(f.At)
	}
	return first
}

// WithoutAdmission returns the spec with admission, retry and assertions
// stripped — the ungoverned control arm of the overload contrast the
// bench harness runs alongside the governed spec.
func (spec ScenarioSpec) WithoutAdmission() ScenarioSpec {
	spec.Admission = nil
	spec.Retry = nil
	spec.Assert = nil
	spec.Name += "-noadm"
	return spec
}

// tenantGen drives one tenant's load schedule: the per-tenant RNG plus
// whatever profile state (a genpack arrival trace, a smartgrid fleet and
// its client-side analytics) the profile needs.
type tenantGen struct {
	load TenantLoad
	rng  *rand.Rand

	// genpack-batch: arrivals per tick, materialized once.
	batchAt map[int]int

	// smartgrid-stream: the fleet plus the detect/forecast consumers.
	fleet     *smartgrid.Fleet
	det       *smartgrid.TheftDetector
	fc        *smartgrid.Forecaster
	alerts    int
	forecasts int
}

func newTenantGen(tl TenantLoad, seed int64, ticks int) (*tenantGen, error) {
	if tl.KeyPrefix == "" {
		tl.KeyPrefix = "k-"
	}
	g := &tenantGen{load: tl, rng: sim.NewRand(seed)}
	switch tl.Profile {
	case "":
		if tl.BaseLoad <= 0 || tl.Keys <= 0 {
			return nil, fmt.Errorf("microsvc: tenant %q underspecified", tl.Tenant)
		}
	case "genpack-batch":
		if tl.BaseLoad <= 0 {
			return nil, fmt.Errorf("microsvc: tenant %q needs a BaseLoad arrival rate", tl.Tenant)
		}
		cfg := genpack.DefaultTrace(seed)
		cfg.Ticks = int64(ticks)
		cfg.ArrivalsPerTick = float64(tl.BaseLoad)
		g.batchAt = make(map[int]int)
		for _, a := range genpack.GenerateTrace(cfg) {
			// Trace ticks are 0-based; scenario ticks are 1-based.
			g.batchAt[int(a.Tick)+1]++
		}
	case "smartgrid-stream":
		if tl.BaseLoad <= 0 {
			return nil, fmt.Errorf("microsvc: tenant %q needs a BaseLoad fleet size", tl.Tenant)
		}
		fcfg := smartgrid.FleetConfig{
			Seed:            seed,
			Meters:          tl.BaseLoad,
			MetersPerFeeder: 8,
			TicksPerDay:     96,
			BaseLoadKW:      0.8,
		}
		g.fleet = smartgrid.NewFleet(fcfg)
		// One meter under-reports from the start: ground truth for the
		// detector riding along on the stream.
		g.fleet.InjectTheft(3, 1, 0.4)
		g.det = smartgrid.NewTheftDetector()
		g.det.WindowTicks = 12
		g.fc = smartgrid.NewForecaster(12)
	default:
		return nil, fmt.Errorf("microsvc: tenant %q has unknown profile %q", tl.Tenant, tl.Profile)
	}
	return g, nil
}

// requests produces the tenant's deterministic batch for tick t.
func (g *tenantGen) requests(t int) []PlaneRequest {
	tl := g.load
	switch tl.Profile {
	case "genpack-batch":
		n := g.batchAt[t]
		reqs := make([]PlaneRequest, n)
		for i := range reqs {
			key := fmt.Sprintf("%s%03d", tl.KeyPrefix, g.rng.Intn(maxInt(tl.Keys, 1)))
			body := make([]byte, tl.BodyBytes+i%33)
			g.rng.Read(body)
			reqs[i] = PlaneRequest{Key: key, Body: body}
		}
		return reqs
	case "smartgrid-stream":
		readings, feederKW := g.fleet.Tick(int64(t))
		if alerts := g.det.Observe(int64(t), readings, feederKW); len(alerts) > 0 {
			g.alerts += len(alerts)
		}
		var totalKW float64
		for _, r := range readings {
			totalKW += r.PowerKW
		}
		g.fc.Observe(int64(t), totalKW)
		if _, err := g.fc.Forecast(int64(t) + 1); err == nil {
			g.forecasts++
		}
		reqs := make([]PlaneRequest, len(readings))
		for i, r := range readings {
			body := make([]byte, tl.BodyBytes)
			g.rng.Read(body)
			reqs[i] = PlaneRequest{Key: r.Feeder, Body: body}
		}
		return reqs
	default: // uniform — the legacy schedule, RNG-stream identical
		n := tl.BaseLoad
		if tl.SpikeAt > 0 && t >= tl.SpikeAt && t < tl.SpikeAt+tl.SpikeTicks {
			n *= tl.SpikeFactor
		}
		reqs := make([]PlaneRequest, n)
		for i := range reqs {
			key := fmt.Sprintf("%s%03d", tl.KeyPrefix, g.rng.Intn(tl.Keys))
			if tl.SkewAt > 0 && t >= tl.SkewAt && g.rng.Intn(100) < tl.SkewPercent {
				key = tl.SkewKey
			}
			body := make([]byte, tl.BodyBytes+i%33)
			g.rng.Read(body)
			reqs[i] = PlaneRequest{Key: key, Body: body}
		}
		return reqs
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RunSpec executes one declarative scenario and returns its deterministic
// result. Per tick, in order: inject due faults, re-send due client
// retries, send every tenant's batch, Step the replica set, Observe the
// orchestrator, poll replies, record the trace line. Every figure in the
// result is a pure function of the spec.
func RunSpec(spec ScenarioSpec) (ScenarioResult, error) {
	if spec.Ticks <= 0 || spec.Replicas <= 0 || len(spec.Tenants) == 0 {
		return ScenarioResult{}, fmt.Errorf("microsvc: scenario %q underspecified", spec.Name)
	}
	bus := eventbus.New()
	svc := attest.NewService()
	kb := attest.NewKeyBroker(svc)

	var appRoot cryptbox.Key
	appRoot[0] = 0xA7
	appRoot[1] = byte(spec.Seed)
	inTopic, outTopic := "plane/req", "plane/resp"
	keys, err := NewServiceKeys(appRoot, scenarioService, inTopic, outTopic)
	if err != nil {
		return ScenarioResult{}, err
	}
	// The handler echoes a fixed-size ack; the modeled per-request compute
	// comes from RequestCycles, charged inside the replica's span.
	handler := func(req []byte) ([]byte, error) { return []byte{byte(len(req))}, nil }

	rsCfg := ReplicaSetConfig{
		Replicas:      spec.Replicas,
		Workers:       spec.Workers,
		InTopic:       inTopic,
		OutTopic:      outTopic,
		PollBatch:     spec.PollBatch,
		TickBudget:    sim.MillisToCycles(spec.TickMillis),
		RequestCycles: spec.RequestCycles,
		Admission:     spec.Admission,
	}
	var (
		rs     *ReplicaSet
		cs     *ClusterSet
		policy attest.Policy
		durH   *durabilityHarness
	)
	if spec.Cluster != nil {
		// Cluster mode: container boots placed on simulated nodes; the
		// key-release policy pins the image's expected measurement (the
		// durability harness is registered first, below, like always).
		var durErr error
		if spec.Durability != nil {
			if durH, durErr = newDurabilityHarness(spec, svc, kb); durErr != nil {
				return ScenarioResult{}, durErr
			}
		}
		cs, policy, err = buildClusterPlane(spec, bus, svc, kb, keys, handler, rsCfg)
		if err != nil {
			return ScenarioResult{}, err
		}
		rs = cs.ReplicaSet
	} else {
		policy = attest.Policy{AllowedMRSigner: []cryptbox.Digest{ReplicaSigner(scenarioService)}}
		kb.Register(scenarioService, policy, keys)
		if spec.Durability != nil {
			if durH, err = newDurabilityHarness(spec, svc, kb); err != nil {
				return ScenarioResult{}, err
			}
		}
		rs, err = NewReplicaSet(bus, svc, kb, scenarioService, handler, rsCfg)
		if err != nil {
			return ScenarioResult{}, err
		}
	}
	defer rs.Stop()
	o, err := orchestrator.New(spec.Target, rs, rs.ReplicaHandles()...)
	if err != nil {
		return ScenarioResult{}, err
	}
	client, err := NewPlaneClient(bus, scenarioService, keys, inTopic, outTopic)
	if err != nil {
		return ScenarioResult{}, err
	}
	defer client.Close()
	if spec.Retry != nil {
		client.EnableRetry(*spec.Retry)
	}

	gens := make([]*tenantGen, len(spec.Tenants))
	for i, tl := range spec.Tenants {
		// Tenant 0 inherits the spec seed unchanged, so a single-tenant
		// spec replays the exact RNG stream of the pre-engine scenarios.
		g, err := newTenantGen(tl, spec.Seed+int64(i)*7919, spec.Ticks)
		if err != nil {
			return ScenarioResult{}, err
		}
		gens[i] = g
	}

	res := ScenarioResult{
		Name: spec.Name, Workers: spec.Workers, Ticks: spec.Ticks,
		InjectTick: spec.InjectTick(), FirstReactionTick: -1,
	}
	sentByTenant := make(map[string]int)
	shedByPhase := [3]int{}
	servedByPhase := [3]int{}
	launchDenied := 0
	launchFailed := 0
	if cs != nil {
		// The construction-time placements (front-end gateway + initial
		// replicas) open the trace at tick zero.
		for _, ev := range cs.DrainEvents() {
			res.Trace = append(res.Trace, "t0000 "+ev)
		}
	}
	phaseOf := func(t int) int {
		if spec.WarmupTicks <= 0 {
			return 1
		}
		switch {
		case t <= spec.WarmupTicks:
			return 0
		case t <= spec.WarmupTicks+spec.InjectTicks:
			return 1
		default:
			return 2
		}
	}
	for t := 1; t <= spec.Ticks; t++ {
		now := float64(t) * spec.TickMillis
		for _, f := range spec.Faults {
			if f.At != t {
				continue
			}
			switch f.Kind {
			case "crash":
				if id := rs.InjectCrash(f.Replica); id != "" {
					res.Trace = append(res.Trace, fmt.Sprintf("t%04d inject crash %s", t, id))
				}
			case "slow":
				if id := rs.InjectSlow(f.Replica, f.Extra); id != "" {
					res.Trace = append(res.Trace, fmt.Sprintf("t%04d inject slow %s +%d", t, id, f.Extra))
				}
			case "crash-state":
				if durH == nil {
					return res, fmt.Errorf("microsvc: scenario %q has crash-state fault but no Durability", spec.Name)
				}
				if id := rs.InjectCrash(f.Replica); id != "" {
					res.Trace = append(res.Trace, fmt.Sprintf("t%04d inject crash-state %s", t, id))
				}
				line, err := durH.crash(t)
				if err != nil {
					return res, err
				}
				res.Trace = append(res.Trace, line)
			case "revoke":
				kb.Revoke(scenarioService)
				res.Trace = append(res.Trace, fmt.Sprintf("t%04d inject revoke %s", t, scenarioService))
			case "reinstate":
				kb.Register(scenarioService, policy, keys)
				res.Trace = append(res.Trace, fmt.Sprintf("t%04d reinstate %s", t, scenarioService))
			case "node-crash", "partition", "heal", "byzantine":
				if cs == nil {
					return res, fmt.Errorf("microsvc: scenario %q has %s fault but no Cluster", spec.Name, f.Kind)
				}
				switch f.Kind {
				case "node-crash":
					name, ids := cs.CrashNode(f.Node)
					res.Trace = append(res.Trace, fmt.Sprintf("t%04d inject node-crash %s (%d replicas)", t, name, len(ids)))
				case "partition":
					name, ids := cs.PartitionNode(f.Node)
					res.Trace = append(res.Trace, fmt.Sprintf("t%04d inject partition %s (%d replicas)", t, name, len(ids)))
				case "heal":
					name := cs.HealNode(f.Node)
					res.Trace = append(res.Trace, fmt.Sprintf("t%04d heal %s", t, name))
				case "byzantine":
					name := cs.SetByzantineNode(f.Node)
					res.Trace = append(res.Trace, fmt.Sprintf("t%04d inject byzantine registry for %s", t, name))
				}
			}
		}
		if spec.Retry != nil {
			if _, err := client.DueRetries(now); err != nil {
				return res, err
			}
		}
		var durPairs []kvstore.Pair
		for _, g := range gens {
			reqs := g.requests(t)
			if len(reqs) == 0 {
				continue
			}
			if g.load.Tenant == "" {
				err = client.SendBatch(reqs)
			} else {
				err = client.SendTenant(g.load.Tenant, reqs)
			}
			if err != nil {
				return res, err
			}
			res.Sent += len(reqs)
			sentByTenant[g.load.Tenant] += len(reqs)
			if durH != nil {
				for _, rq := range reqs {
					durPairs = append(durPairs, kvstore.Pair{Key: g.load.Tenant + "/" + rq.Key, Value: rq.Body})
				}
			}
		}
		if durH != nil {
			if err := durH.put(durPairs); err != nil {
				return res, err
			}
			line, err := durH.maybeSnapshot(t, spec.Durability.SnapshotEvery)
			if err != nil {
				return res, err
			}
			if line != "" {
				res.Trace = append(res.Trace, line)
			}
			line, err = durH.maybeGC(t, spec.Durability.GCEvery)
			if err != nil {
				return res, err
			}
			if line != "" {
				res.Trace = append(res.Trace, line)
			}
		}

		st, err := rs.Step()
		if err != nil {
			return res, err
		}
		shedByPhase[phaseOf(t)] += st.Shed
		servedByPhase[phaseOf(t)] += st.Served
		actions, err := o.Observe()
		if err != nil {
			// A revoked service denies keys to replacement replicas: the
			// orchestrator's launch fails closed, the dead replica stays
			// down, and the retry next tick either re-attests (after a
			// reinstate) or is denied again. Cluster mode adds two more
			// fail-closed launch outcomes the loop must survive: a pull
			// rejecting tampered chunks (the node isolates and placement
			// routes around it next tick) and no node being eligible for
			// placement. Any other error is fatal.
			switch {
			case errors.Is(err, attest.ErrServiceRevoked):
				launchDenied++
				res.Trace = append(res.Trace, fmt.Sprintf("t%04d launch denied (revoked)", t))
			case cs != nil && errors.Is(err, container.ErrChunkVerify):
				launchFailed++
				res.Trace = append(res.Trace, fmt.Sprintf("t%04d launch failed (chunk verify)", t))
			case cs != nil && errors.Is(err, orchestrator.ErrNoEligibleNode):
				launchFailed++
				res.Trace = append(res.Trace, fmt.Sprintf("t%04d launch failed (no eligible node)", t))
			case cs != nil && errors.Is(err, cluster.ErrNodeUnreachable):
				launchFailed++
				res.Trace = append(res.Trace, fmt.Sprintf("t%04d launch failed (node unreachable)", t))
			default:
				return res, err
			}
		}
		if cs != nil {
			for _, ev := range cs.DrainEvents() {
				res.Trace = append(res.Trace, fmt.Sprintf("t%04d %s", t, ev))
			}
		}
		if len(actions) > 0 && res.FirstReactionTick < 0 &&
			(res.InjectTick < 0 || t >= res.InjectTick) {
			res.FirstReactionTick = t
		}
		replies, err := client.Poll(now)
		if err != nil {
			return res, err
		}
		for _, rep := range replies {
			if !rep.Shed {
				res.Replies++
			}
		}

		line := fmt.Sprintf("t%04d replicas=%d backlog=%d", t, o.Replicas(), rs.Backlog())
		if spec.Admission != nil {
			line += fmt.Sprintf(" shed=%d", st.Shed)
		}
		if len(actions) > 0 {
			parts := make([]string, len(actions))
			for i, a := range actions {
				parts[i] = a.String()
			}
			line += " | " + strings.Join(parts, "; ")
		}
		res.Trace = append(res.Trace, line)
	}

	sum := sha256.Sum256([]byte(strings.Join(res.Trace, "\n")))
	res.TraceHash = hex.EncodeToString(sum[:])
	tot := rs.Totals()
	res.Served = tot.Served
	res.Failed = tot.Failed
	res.Backlog = rs.Backlog()
	res.Launched = tot.Launched
	res.FinalReplicas = tot.Live
	if tot.Launched > 0 {
		res.RequestsPerReplica = float64(tot.Served) / float64(tot.Launched)
	}
	res.SerialCycles = tot.SerialCycles
	res.CriticalCycles = tot.CriticalCycles
	if tot.CriticalCycles > 0 {
		res.SimSpeedup = float64(tot.SerialCycles) / float64(tot.CriticalCycles)
	}
	res.Faults = tot.Faults
	res.FrontCycles = tot.FrontCycles
	if res.InjectTick > 0 && res.FirstReactionTick > 0 {
		res.AdaptLatencySimMS = float64(res.FirstReactionTick-res.InjectTick+1) * spec.TickMillis
	}
	res.Shed = tot.Shed
	res.Splits = tot.Splits
	res.RetriesSent, res.RetriesAbandoned, _ = client.RetryStats()
	res.P50WaitSimMS, res.P95WaitSimMS, res.MaxWaitSimMS = rs.LatencyPercentiles()

	// The flat metric table assertions bound and the bench harness gates.
	m := map[string]float64{
		"sent":                 float64(res.Sent),
		"served":               float64(res.Served),
		"failed":               float64(res.Failed),
		"shed":                 float64(res.Shed),
		"splits":               float64(res.Splits),
		"replies":              float64(res.Replies),
		"backlog_final":        float64(res.Backlog),
		"replicas_launched":    float64(res.Launched),
		"final_replicas":       float64(res.FinalReplicas),
		"requests_per_replica": res.RequestsPerReplica,
		"sim_cycles_serial":    float64(res.SerialCycles),
		"sim_cycles_critical":  float64(res.CriticalCycles),
		"sim_cycles_front":     float64(res.FrontCycles),
		"faults":               float64(res.Faults),
		"trace_len":            float64(len(res.Trace)),
		"first_reaction_tick":  float64(res.FirstReactionTick),
		"adapt_latency_sim_ms": res.AdaptLatencySimMS,
		"p50_wait_sim_ms":      res.P50WaitSimMS,
		"p95_wait_sim_ms":      res.P95WaitSimMS,
		"max_wait_sim_ms":      res.MaxWaitSimMS,
		"retries_sent":         float64(res.RetriesSent),
		"retries_abandoned":    float64(res.RetriesAbandoned),
	}
	if spec.WarmupTicks > 0 {
		m["shed_phase_warmup"] = float64(shedByPhase[0])
		m["shed_phase_inject"] = float64(shedByPhase[1])
		m["shed_phase_recover"] = float64(shedByPhase[2])
		m["served_phase_warmup"] = float64(servedByPhase[0])
		m["served_phase_inject"] = float64(servedByPhase[1])
		m["served_phase_recover"] = float64(servedByPhase[2])
	}
	m["launch_denied"] = float64(launchDenied)
	if cs != nil {
		m["launch_failed"] = float64(launchFailed)
		cs.foldMetrics(m)
	}
	if durH != nil {
		durH.metrics(m)
	}
	adm := rs.AdmissionStats()
	var dispatchedAll uint64
	for _, ts := range adm.ByTenant {
		dispatchedAll += ts.Dispatched
	}
	for name, ts := range adm.ByTenant {
		if name == "" {
			name = "default"
		}
		m["sent:"+name] = float64(sentByTenant[nameOrEmpty(name)])
		m["shed:"+name] = float64(ts.Shed)
		m["dispatched:"+name] = float64(ts.Dispatched)
		if dispatchedAll > 0 {
			m["served_share:"+name] = float64(ts.Dispatched) / float64(dispatchedAll)
		}
	}
	for _, g := range gens {
		if g.load.Profile == "smartgrid-stream" {
			m["alerts:"+g.load.Tenant] = float64(g.alerts)
			m["forecasts:"+g.load.Tenant] = float64(g.forecasts)
		}
	}
	res.Metrics = m

	res.AssertionsPassed = true
	for _, a := range spec.Assert {
		v, ok := m[a.Metric]
		switch {
		case !ok:
			res.AssertionsPassed = false
			res.AssertionFailures = append(res.AssertionFailures,
				fmt.Sprintf("%s: no such metric", a.Metric))
		case v < a.Min || v > a.Max:
			res.AssertionsPassed = false
			res.AssertionFailures = append(res.AssertionFailures,
				fmt.Sprintf("%s = %g outside [%g, %g]", a.Metric, v, a.Min, a.Max))
		}
	}
	return res, nil
}

// nameOrEmpty maps the display name "default" back to the wire tenant "".
func nameOrEmpty(name string) string {
	if name == "default" {
		return ""
	}
	return name
}
