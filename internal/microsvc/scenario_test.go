package microsvc

import (
	"testing"
)

// shrink returns a scenario reduced for test runtime while keeping every
// injection inside the horizon.
func shrink(sc Scenario) Scenario {
	sc.Ticks = 24
	return sc
}

// TestScenariosDeterministicAcrossWorkerCounts is the plane's determinism
// property: for every fault-injection scenario, the adaptation trace and
// all simulated totals are bit-identical at worker counts 1, 2, 4 and 8.
// Worker count is execution-only; topology decisions (scale-out/in,
// restarts) and cycle accounting may never depend on it.
func TestScenariosDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, sc := range DefaultScenarios() {
		sc := shrink(sc)
		t.Run(sc.Name, func(t *testing.T) {
			var ref ScenarioResult
			for i, w := range []int{1, 2, 4, 8} {
				sc.Workers = w
				got, err := RunScenario(sc)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if i == 0 {
					ref = got
					if len(ref.Trace) == 0 || ref.Served == 0 {
						t.Fatalf("degenerate scenario: %+v", ref)
					}
					continue
				}
				if got.TraceHash != ref.TraceHash {
					for j := range got.Trace {
						if j < len(ref.Trace) && got.Trace[j] != ref.Trace[j] {
							t.Errorf("trace[%d]: workers=%d %q != workers=1 %q", j, w, got.Trace[j], ref.Trace[j])
							break
						}
					}
					t.Fatalf("workers=%d trace hash %s != %s", w, got.TraceHash, ref.TraceHash)
				}
				if got.SerialCycles != ref.SerialCycles || got.CriticalCycles != ref.CriticalCycles {
					t.Fatalf("workers=%d cycles %d/%d != %d/%d", w,
						got.SerialCycles, got.CriticalCycles, ref.SerialCycles, ref.CriticalCycles)
				}
				if got.Faults != ref.Faults || got.Served != ref.Served || got.Failed != ref.Failed {
					t.Fatalf("workers=%d faults/served/failed %d/%d/%d != %d/%d/%d", w,
						got.Faults, got.Served, got.Failed, ref.Faults, ref.Served, ref.Failed)
				}
				if got.FrontCycles != ref.FrontCycles || got.Launched != ref.Launched {
					t.Fatalf("workers=%d front/launched %d/%d != %d/%d", w,
						got.FrontCycles, got.Launched, ref.FrontCycles, ref.Launched)
				}
			}
		})
	}
}

// TestScenariosReact pins each scenario's qualitative behaviour: the
// injected fault provokes at least one adaptation at or after the
// injection tick, and the latency is reported in sim-ms.
func TestScenariosReact(t *testing.T) {
	for _, sc := range DefaultScenarios() {
		sc := shrink(sc)
		t.Run(sc.Name, func(t *testing.T) {
			res, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.InjectTick <= 0 {
				t.Fatalf("scenario has no injection: %+v", res)
			}
			if res.FirstReactionTick < res.InjectTick {
				t.Fatalf("first reaction t%d before injection t%d", res.FirstReactionTick, res.InjectTick)
			}
			if res.AdaptLatencySimMS <= 0 {
				t.Fatalf("no adaptation latency recorded: %+v", res)
			}
			// Millisecond-scale reaction is the paper's §VI requirement;
			// our tick is 1 sim-ms, so single-digit ticks qualify.
			if res.AdaptLatencySimMS > 10 {
				t.Fatalf("adaptation took %.1f sim-ms", res.AdaptLatencySimMS)
			}
			if res.Launched <= sc.Replicas && sc.Name != "hot-key-skew" {
				t.Fatalf("no replica was ever launched in reaction: launched=%d", res.Launched)
			}
		})
	}
}

// TestScenarioRerunIdentical: the same scenario twice in one process gives
// byte-identical traces (no hidden global state leaks between runs).
func TestScenarioRerunIdentical(t *testing.T) {
	sc := shrink(DefaultScenarios()[0])
	sc.Workers = 4
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash || a.SerialCycles != b.SerialCycles {
		t.Fatalf("rerun diverged: %s/%d vs %s/%d", a.TraceHash, a.SerialCycles, b.TraceHash, b.SerialCycles)
	}
}
