package microsvc

import (
	"securecloud/internal/orchestrator"
)

// LabScenarios is the declarative fault-scenario matrix riding on the
// admission controller: overload, noisy-neighbor (genpack batch vs
// smartgrid streaming tenants), cascading replica failure, slow-network
// replica with hot-key splitting, and three-phase recovery with client
// retry. Every spec's assertion table and TraceHash are gated by
// cmd/bench-check and pinned bit-identical across Workers {1,2,4,8};
// change them only with the same deliberation as a golden file.
func LabScenarios() []ScenarioSpec {
	target := orchestrator.Target{
		MaxQueueDepth:    32,
		MinReplicas:      1,
		MaxReplicas:      4,
		ScaleInBelow:     4,
		MaxServiceCycles: 200_000,
		MaxShedPerTick:   24,
	}

	// pinnedTarget caps the fleet at its initial size: the overload and
	// recovery scenarios are about admission under a fixed capacity, not
	// about scale-out riding to the rescue (that is the load-spike legacy
	// scenario's job). It is also what makes the ungoverned contrast arm
	// diverge: without admission and without spare replicas the backlog
	// can only grow across the spike.
	pinnedTarget := orchestrator.Target{
		MaxQueueDepth:    32,
		MinReplicas:      1,
		MaxReplicas:      2,
		ScaleInBelow:     4,
		MaxServiceCycles: 200_000,
	}

	// overload: one tenant spikes to ~8× the fleet's capacity for 12
	// ticks. Admission bounds every queue and sheds the excess with
	// retry-after replies; the ungoverned contrast arm (WithoutAdmission,
	// run by cmd/app-bench) lets Backlog() grow without bound instead.
	overload := ScenarioSpec{
		Name: "overload", Seed: 42,
		Ticks: 36, WarmupTicks: 12, InjectTicks: 12,
		Replicas: 2, TickMillis: 1, RequestCycles: 60_000,
		Target: pinnedTarget,
		Admission: &AdmissionConfig{
			Default:        TenantPolicy{Weight: 1, Rate: 90, Burst: 180, MaxQueue: 96},
			MaxGlobalQueue: 192,
			TickMillis:     1,
		},
		Tenants: []TenantLoad{{
			Tenant: "web", BaseLoad: 40, Keys: 64, BodyBytes: 192,
			SpikeAt: 13, SpikeTicks: 12, SpikeFactor: 8,
		}},
		Assert: []Assertion{
			AtLeast("shed", 100),
			Equals("shed_phase_warmup", 0),
			AtMost("backlog_final", 64),
			AtMost("max_wait_sim_ms", 8),
			Equals("failed", 0),
		},
	}

	// noisy-neighbor: a bursty genpack batch tenant floods the plane while
	// a smartgrid streaming tenant (theft detection + load forecasting on
	// the same readings) keeps its weighted-fair share — the batch tenant
	// sheds, the streaming tenant does not.
	noisy := ScenarioSpec{
		Name: "noisy-neighbor", Seed: 42,
		Ticks:    48,
		Replicas: 2, TickMillis: 1, RequestCycles: 60_000,
		Target: target,
		Admission: &AdmissionConfig{
			Default: TenantPolicy{Weight: 1, Rate: 60, Burst: 120, MaxQueue: 64},
			Tenants: map[string]TenantPolicy{
				"grid":  {Weight: 3, Rate: 48, Burst: 96, MaxQueue: 64},
				"batch": {Weight: 1, Rate: 40, Burst: 60, MaxQueue: 48},
			},
			MaxGlobalQueue: 256,
			TickMillis:     1,
		},
		Tenants: []TenantLoad{
			{Tenant: "grid", Profile: "smartgrid-stream", BaseLoad: 24, BodyBytes: 96},
			{Tenant: "batch", Profile: "genpack-batch", BaseLoad: 90, Keys: 32, KeyPrefix: "job-", BodyBytes: 192},
		},
		Assert: []Assertion{
			Equals("shed:grid", 0),
			AtLeast("shed:batch", 50),
			AtLeast("served_share:grid", 0.2),
			AtLeast("alerts:grid", 1),
			AtLeast("forecasts:grid", 1),
			Equals("failed", 0),
		},
	}

	// cascade: three replicas crash back to back; the orchestrator
	// replaces each within its detection tick and no request is lost.
	// MinReplicas pins the fleet at three so the light steady load cannot
	// scale the victims away before their crash tick arrives.
	cascadeTarget := target
	cascadeTarget.MinReplicas = 3
	cascadeTarget.MaxReplicas = 6
	cascade := ScenarioSpec{
		Name: "cascade", Seed: 42,
		Ticks:    48,
		Replicas: 3, TickMillis: 1, RequestCycles: 60_000,
		Target: cascadeTarget,
		Admission: &AdmissionConfig{
			Default:        TenantPolicy{Weight: 1, MaxQueue: 256},
			MaxGlobalQueue: 512,
			TickMillis:     1,
		},
		Tenants: []TenantLoad{{Tenant: "web", BaseLoad: 48, Keys: 64, BodyBytes: 192}},
		Faults: []FaultSpec{
			{Kind: "crash", At: 10, Replica: 0},
			{Kind: "crash", At: 14, Replica: 1},
			{Kind: "crash", At: 18, Replica: 2},
		},
		Assert: []Assertion{
			AtMost("adapt_latency_sim_ms", 2),
			AtLeast("replicas_launched", 6), // 3 initial + 3 crash replacements
			Equals("final_replicas", 3),
			Equals("failed", 0),
			AtMost("backlog_final", 16),
		},
	}

	// slow-network: one replica turns slow right as a hot key starts
	// dominating the load. The straggler rule replaces the replica, and
	// hot-key splitting spreads the key off its backlogged home.
	slownet := ScenarioSpec{
		Name: "slow-network", Seed: 42,
		Ticks:    48,
		Replicas: 2, TickMillis: 1, RequestCycles: 60_000,
		Target: target,
		Admission: &AdmissionConfig{
			Default:        TenantPolicy{Weight: 1, Rate: 100, Burst: 200, MaxQueue: 128},
			MaxGlobalQueue: 256,
			TickMillis:     1,
			HotKeyPerStep:  8,
			SplitWays:      2,
			SplitDepth:     8,
		},
		Tenants: []TenantLoad{{
			Tenant: "web", BaseLoad: 72, Keys: 64, BodyBytes: 192,
			SkewAt: 10, SkewPercent: 80, SkewKey: "hot",
		}},
		Faults: []FaultSpec{{Kind: "slow", At: 12, Replica: 0, Extra: 400_000}},
		Assert: []Assertion{
			AtLeast("splits", 50),
			Equals("failed", 0),
			AtMost("adapt_latency_sim_ms", 4),
			AtMost("p95_wait_sim_ms", 2),
		},
	}

	// recovery: a spike sheds under admission; the client retries with
	// exponential backoff anchored on the servers' retry-after hints, and
	// by the end of the recovery phase every retried request was served —
	// none abandoned, queues drained.
	recovery := ScenarioSpec{
		Name: "recovery", Seed: 42,
		Ticks: 44, WarmupTicks: 12, InjectTicks: 6,
		Replicas: 2, TickMillis: 1, RequestCycles: 60_000,
		Target: pinnedTarget,
		Admission: &AdmissionConfig{
			Default:        TenantPolicy{Weight: 1, Rate: 90, Burst: 180, MaxQueue: 96},
			MaxGlobalQueue: 192,
			TickMillis:     1,
		},
		Retry: &RetryPolicy{MaxAttempts: 6},
		Tenants: []TenantLoad{{
			Tenant: "api", BaseLoad: 40, Keys: 64, BodyBytes: 192,
			SpikeAt: 13, SpikeTicks: 6, SpikeFactor: 4,
		}},
		Assert: []Assertion{
			AtLeast("retries_sent", 1),
			Equals("retries_abandoned", 0),
			Equals("shed_phase_warmup", 0),
			AtMost("backlog_final", 64),
			Equals("failed", 0),
		},
	}

	// crash-state: replicas crash WITH total state loss. The durable store
	// mirrors the request stream (sealed WAL per shard, snapshots every 10
	// ticks); each crash recovers from the latest snapshot — pulled through
	// the engine's verified chunk path — plus the WAL tail, and must come
	// back bit-identical to a never-crashed twin. The second crash recovers
	// through the warm node BlobCache, so it fetches nothing.
	crashState := ScenarioSpec{
		Name: "crash-state", Seed: 42,
		Ticks: 40, WarmupTicks: 10, InjectTicks: 14,
		Replicas: 2, TickMillis: 1, RequestCycles: 60_000,
		Target: pinnedTarget,
		Admission: &AdmissionConfig{
			Default:        TenantPolicy{Weight: 1, MaxQueue: 256},
			MaxGlobalQueue: 512,
			TickMillis:     1,
		},
		Durability: &DurabilitySpec{Shards: 4, SnapshotEvery: 10},
		Tenants:    []TenantLoad{{Tenant: "web", BaseLoad: 40, Keys: 64, BodyBytes: 192}},
		Faults: []FaultSpec{
			{Kind: "crash-state", At: 13, Replica: 0},
			{Kind: "crash-state", At: 17, Replica: 1},
		},
		Assert: []Assertion{
			Equals("recovered_state_equal", 1),
			Equals("recoveries", 2),
			AtLeast("snapshot_bootstrap_cycles", 1),
			AtLeast("log_replay_cycles", 1),
			AtLeast("wal_records_replayed", 1),
			AtLeast("recovery_chunks_fetched", 1),
			AtLeast("recovery_cache_hits", 1),
			Equals("failed", 0),
		},
	}

	// key-revocation: the KeyBroker revokes the service mid-run just as
	// both replicas crash. Replacements fail closed — the broker denies
	// their key release every tick, nothing is served during the inject
	// phase — until a reinstate lets them re-attest and drain the backlog.
	revocation := ScenarioSpec{
		Name: "key-revocation", Seed: 42,
		Ticks: 48, WarmupTicks: 12, InjectTicks: 8,
		Replicas: 2, TickMillis: 1, RequestCycles: 60_000,
		Target: pinnedTarget,
		Admission: &AdmissionConfig{
			Default:        TenantPolicy{Weight: 1, MaxQueue: 256},
			MaxGlobalQueue: 512,
			TickMillis:     1,
		},
		Tenants: []TenantLoad{{Tenant: "api", BaseLoad: 24, Keys: 64, BodyBytes: 192}},
		Faults: []FaultSpec{
			{Kind: "revoke", At: 13},
			{Kind: "crash", At: 13, Replica: 0},
			{Kind: "crash", At: 13, Replica: 1},
			{Kind: "reinstate", At: 21},
		},
		Assert: []Assertion{
			Equals("served_phase_inject", 0),
			AtLeast("served_phase_warmup", 1),
			AtLeast("served_phase_recover", 1),
			AtLeast("launch_denied", 1),
			Equals("failed", 0),
			AtMost("backlog_final", 64),
		},
	}

	// delta-durability: a narrow working set (4 hot keys over 8 shards)
	// makes most shards cold, so the 8-tick snapshot cadence exercises the
	// incremental path: cold shards publish reuse records chaining to their
	// last packed manifest, GC retires snapshot-covered WAL epochs behind a
	// one-epoch retention margin, and each crash recovers by walking the
	// delta chain — still bit-identical to the never-crashed twin.
	deltaDurability := ScenarioSpec{
		Name: "delta-durability", Seed: 42,
		Ticks: 36, WarmupTicks: 8, InjectTicks: 16,
		Replicas: 2, TickMillis: 1, RequestCycles: 60_000,
		Target: pinnedTarget,
		Admission: &AdmissionConfig{
			Default:        TenantPolicy{Weight: 1, MaxQueue: 256},
			MaxGlobalQueue: 512,
			TickMillis:     1,
		},
		Durability: &DurabilitySpec{Shards: 8, SnapshotEvery: 8, GCEvery: 8, RetainEpochs: 1},
		Tenants:    []TenantLoad{{Tenant: "web", BaseLoad: 24, Keys: 4, BodyBytes: 192}},
		Faults: []FaultSpec{
			{Kind: "crash-state", At: 20, Replica: 0},
			{Kind: "crash-state", At: 28, Replica: 1},
		},
		Assert: []Assertion{
			Equals("recovered_state_equal", 1),
			Equals("recoveries", 2),
			AtLeast("snapshot_shards_reused", 1),
			AtLeast("gc_segments_retired", 1),
			AtLeast("recovery_chain_links", 1),
			AtLeast("wal_records_replayed", 1),
			Equals("failed", 0),
		},
	}

	return []ScenarioSpec{overload, noisy, cascade, slownet, recovery, crashState, revocation, deltaDurability}
}
