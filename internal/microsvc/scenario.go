package microsvc

import (
	"fmt"

	"securecloud/internal/orchestrator"
	"securecloud/internal/sim"
)

// A Scenario is one closed-loop fault-injection experiment on the
// application plane: a deterministic load schedule driven through an
// attested ReplicaSet while an orchestrator samples queue depths and
// service cycles each tick and adapts. Everything that shapes the
// simulated figures — the load, the routing, the injections, the tick
// budget — is a pure function of this struct, so two runs of the same
// Scenario (at any Workers setting) produce bit-identical adaptation
// traces and cycle totals. Injection ticks use 0 = disabled; scenarios
// inject at positive ticks.
type Scenario struct {
	Name string
	Seed int64
	// Ticks is the monitoring-loop length; each tick grants every replica
	// TickMillis sim-ms of service and ends with one orchestrator Observe.
	Ticks      int
	Replicas   int
	Workers    int // execution-only; never changes figures
	BaseLoad   int // requests per tick
	Keys       int // routing-key space ("k-000" .. "k-<Keys-1>")
	BodyBytes  int // request body size (plus a small deterministic jitter)
	TickMillis float64
	// RequestCycles is the modeled application compute per request.
	RequestCycles sim.Cycles
	Target        orchestrator.Target

	// Load spike: BaseLoad × SpikeFactor during [SpikeAt, SpikeAt+SpikeTicks).
	SpikeAt     int
	SpikeTicks  int
	SpikeFactor int
	// Replica crash: replica CrashReplica (routing order) dies at CrashAt.
	CrashAt      int
	CrashReplica int
	// Hot-key skew: from SkewAt on, SkewPercent% of requests route to SkewKey.
	SkewAt      int
	SkewPercent int
	SkewKey     string
	// Slow replica: replica SlowReplica is charged SlowExtra extra cycles
	// per request from SlowAt on.
	SlowAt      int
	SlowReplica int
	SlowExtra   sim.Cycles
}

// InjectTick returns the scenario's first fault-injection tick, or -1 for
// a fault-free run. Adaptation latency is measured from it.
func (sc Scenario) InjectTick() int {
	first := -1
	for _, at := range []int{sc.SpikeAt, sc.CrashAt, sc.SkewAt, sc.SlowAt} {
		if at > 0 && (first < 0 || at < first) {
			first = at
		}
	}
	return first
}

// ScenarioResult is the deterministic outcome of one scenario run. Every
// field except Workers is invariant to the Workers setting; the benchmark
// harness asserts exactly that before gating the values.
type ScenarioResult struct {
	Name    string
	Workers int
	Ticks   int
	// Trace is the per-tick adaptation record: replica count, backlog and
	// orchestrator actions, plus injection markers. TraceHash is the
	// SHA-256 of the joined trace — the single value CI gates.
	Trace     []string
	TraceHash string

	Sent    int
	Served  uint64
	Failed  uint64
	Replies int
	Backlog int

	Launched           int
	FinalReplicas      int
	RequestsPerReplica float64

	SerialCycles   sim.Cycles
	CriticalCycles sim.Cycles
	SimSpeedup     float64
	Faults         uint64
	FrontCycles    sim.Cycles

	InjectTick        int
	FirstReactionTick int
	// AdaptLatencySimMS is the simulated time from the injection tick to
	// the end of the tick whose Observe reacted: one tick of latency means
	// the same monitoring period that saw the fault also repaired it.
	AdaptLatencySimMS float64

	// Admission figures (zero without an AdmissionConfig): shed and
	// hot-key-split totals, admission queue-wait percentiles in sim-ms,
	// and the client's retry counters.
	Shed             uint64
	Splits           uint64
	P50WaitSimMS     float64
	P95WaitSimMS     float64
	MaxWaitSimMS     float64
	RetriesSent      uint64
	RetriesAbandoned uint64

	// Metrics is the flat deterministic metric table the spec's assertion
	// table binds against and the bench harness gates (includes per-tenant
	// sent/shed/dispatched/served_share entries).
	Metrics map[string]float64
	// AssertionsPassed / AssertionFailures report the spec's assertion
	// table verdict (vacuously true for a spec without assertions).
	AssertionsPassed  bool
	AssertionFailures []string
}

// scenarioService is the service name scenarios run under.
const scenarioService = "plane/scenario"

// Spec converts the legacy scenario shape into its declarative
// equivalent: one untagged tenant carrying the whole load schedule plus a
// fault table. RunSpec on the conversion replays the exact RNG stream and
// closed loop of the pre-engine RunScenario, so the pinned traces and
// cycle totals are bit-identical.
func (sc Scenario) Spec() ScenarioSpec {
	spec := ScenarioSpec{
		Name:          sc.Name,
		Seed:          sc.Seed,
		Ticks:         sc.Ticks,
		Replicas:      sc.Replicas,
		Workers:       sc.Workers,
		TickMillis:    sc.TickMillis,
		RequestCycles: sc.RequestCycles,
		Target:        sc.Target,
		Tenants: []TenantLoad{{
			BaseLoad:    sc.BaseLoad,
			Keys:        sc.Keys,
			KeyPrefix:   "k-",
			BodyBytes:   sc.BodyBytes,
			SpikeAt:     sc.SpikeAt,
			SpikeTicks:  sc.SpikeTicks,
			SpikeFactor: sc.SpikeFactor,
			SkewAt:      sc.SkewAt,
			SkewPercent: sc.SkewPercent,
			SkewKey:     sc.SkewKey,
		}},
	}
	if sc.CrashAt > 0 {
		spec.Faults = append(spec.Faults, FaultSpec{Kind: "crash", At: sc.CrashAt, Replica: sc.CrashReplica})
	}
	if sc.SlowAt > 0 {
		spec.Faults = append(spec.Faults, FaultSpec{Kind: "slow", At: sc.SlowAt, Replica: sc.SlowReplica, Extra: sc.SlowExtra})
	}
	return spec
}

// RunScenario executes one legacy scenario through the declarative engine.
func RunScenario(sc Scenario) (ScenarioResult, error) {
	if sc.Ticks <= 0 || sc.Replicas <= 0 || sc.BaseLoad <= 0 || sc.Keys <= 0 {
		return ScenarioResult{}, fmt.Errorf("microsvc: scenario %q underspecified", sc.Name)
	}
	return RunSpec(sc.Spec())
}

// DefaultScenarios returns the four gated fault-injection scenarios:
// replica crash, load spike, hot-key skew and slow replica. Their
// adaptation traces and cycle totals are pinned in BENCH_4.json and
// checked against the baseline in CI; change them only with the same
// deliberation as a golden file.
func DefaultScenarios() []Scenario {
	target := orchestrator.Target{
		MaxQueueDepth:    32,
		MinReplicas:      1,
		MaxReplicas:      8,
		ScaleInBelow:     4,
		MaxServiceCycles: 200_000,
	}
	base := Scenario{
		Seed:          42,
		Ticks:         48,
		Replicas:      2,
		BaseLoad:      48,
		Keys:          64,
		BodyBytes:     192,
		TickMillis:    1,
		RequestCycles: 60_000,
		Target:        target,
	}
	crash := base
	crash.Name = "crash"
	crash.CrashAt, crash.CrashReplica = 12, 0

	spike := base
	spike.Name = "load-spike"
	spike.SpikeAt, spike.SpikeTicks, spike.SpikeFactor = 16, 8, 6

	skew := base
	skew.Name = "hot-key-skew"
	skew.BaseLoad = 96
	skew.SkewAt, skew.SkewPercent, skew.SkewKey = 10, 85, "hot"

	slow := base
	slow.Name = "slow-replica"
	slow.SlowAt, slow.SlowReplica, slow.SlowExtra = 12, 0, 400_000

	return []Scenario{crash, spike, skew, slow}
}
