package microsvc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/eventbus"
	"securecloud/internal/orchestrator"
	"securecloud/internal/sim"
)

// A Scenario is one closed-loop fault-injection experiment on the
// application plane: a deterministic load schedule driven through an
// attested ReplicaSet while an orchestrator samples queue depths and
// service cycles each tick and adapts. Everything that shapes the
// simulated figures — the load, the routing, the injections, the tick
// budget — is a pure function of this struct, so two runs of the same
// Scenario (at any Workers setting) produce bit-identical adaptation
// traces and cycle totals. Injection ticks use 0 = disabled; scenarios
// inject at positive ticks.
type Scenario struct {
	Name string
	Seed int64
	// Ticks is the monitoring-loop length; each tick grants every replica
	// TickMillis sim-ms of service and ends with one orchestrator Observe.
	Ticks      int
	Replicas   int
	Workers    int // execution-only; never changes figures
	BaseLoad   int // requests per tick
	Keys       int // routing-key space ("k-000" .. "k-<Keys-1>")
	BodyBytes  int // request body size (plus a small deterministic jitter)
	TickMillis float64
	// RequestCycles is the modeled application compute per request.
	RequestCycles sim.Cycles
	Target        orchestrator.Target

	// Load spike: BaseLoad × SpikeFactor during [SpikeAt, SpikeAt+SpikeTicks).
	SpikeAt     int
	SpikeTicks  int
	SpikeFactor int
	// Replica crash: replica CrashReplica (routing order) dies at CrashAt.
	CrashAt      int
	CrashReplica int
	// Hot-key skew: from SkewAt on, SkewPercent% of requests route to SkewKey.
	SkewAt      int
	SkewPercent int
	SkewKey     string
	// Slow replica: replica SlowReplica is charged SlowExtra extra cycles
	// per request from SlowAt on.
	SlowAt      int
	SlowReplica int
	SlowExtra   sim.Cycles
}

// InjectTick returns the scenario's first fault-injection tick, or -1 for
// a fault-free run. Adaptation latency is measured from it.
func (sc Scenario) InjectTick() int {
	first := -1
	for _, at := range []int{sc.SpikeAt, sc.CrashAt, sc.SkewAt, sc.SlowAt} {
		if at > 0 && (first < 0 || at < first) {
			first = at
		}
	}
	return first
}

// ScenarioResult is the deterministic outcome of one scenario run. Every
// field except Workers is invariant to the Workers setting; the benchmark
// harness asserts exactly that before gating the values.
type ScenarioResult struct {
	Name    string
	Workers int
	Ticks   int
	// Trace is the per-tick adaptation record: replica count, backlog and
	// orchestrator actions, plus injection markers. TraceHash is the
	// SHA-256 of the joined trace — the single value CI gates.
	Trace     []string
	TraceHash string

	Sent    int
	Served  uint64
	Failed  uint64
	Replies int
	Backlog int

	Launched           int
	FinalReplicas      int
	RequestsPerReplica float64

	SerialCycles   sim.Cycles
	CriticalCycles sim.Cycles
	SimSpeedup     float64
	Faults         uint64
	FrontCycles    sim.Cycles

	InjectTick        int
	FirstReactionTick int
	// AdaptLatencySimMS is the simulated time from the injection tick to
	// the end of the tick whose Observe reacted: one tick of latency means
	// the same monitoring period that saw the fault also repaired it.
	AdaptLatencySimMS float64
}

// scenarioService is the service name scenarios run under.
const scenarioService = "plane/scenario"

// RunScenario executes one scenario and returns its deterministic result.
func RunScenario(sc Scenario) (ScenarioResult, error) {
	if sc.Ticks <= 0 || sc.Replicas <= 0 || sc.BaseLoad <= 0 || sc.Keys <= 0 {
		return ScenarioResult{}, fmt.Errorf("microsvc: scenario %q underspecified", sc.Name)
	}
	bus := eventbus.New()
	svc := attest.NewService()
	kb := attest.NewKeyBroker(svc)

	var appRoot cryptbox.Key
	appRoot[0] = 0xA7
	appRoot[1] = byte(sc.Seed)
	inTopic, outTopic := "plane/req", "plane/resp"
	keys, err := NewServiceKeys(appRoot, scenarioService, inTopic, outTopic)
	if err != nil {
		return ScenarioResult{}, err
	}
	kb.Register(scenarioService,
		attest.Policy{AllowedMRSigner: []cryptbox.Digest{ReplicaSigner(scenarioService)}}, keys)

	// The handler echoes a fixed-size ack; the modeled per-request compute
	// comes from RequestCycles, charged inside the replica's span.
	handler := func(req []byte) ([]byte, error) { return []byte{byte(len(req))}, nil }

	rs, err := NewReplicaSet(bus, svc, kb, scenarioService, handler, ReplicaSetConfig{
		Replicas:      sc.Replicas,
		Workers:       sc.Workers,
		InTopic:       inTopic,
		OutTopic:      outTopic,
		TickBudget:    sim.MillisToCycles(sc.TickMillis),
		RequestCycles: sc.RequestCycles,
	})
	if err != nil {
		return ScenarioResult{}, err
	}
	defer rs.Stop()
	o, err := orchestrator.New(sc.Target, rs, rs.ReplicaHandles()...)
	if err != nil {
		return ScenarioResult{}, err
	}
	client, err := NewPlaneClient(bus, scenarioService, keys, inTopic, outTopic)
	if err != nil {
		return ScenarioResult{}, err
	}
	defer client.Close()

	res := ScenarioResult{
		Name: sc.Name, Workers: sc.Workers, Ticks: sc.Ticks,
		InjectTick: sc.InjectTick(), FirstReactionTick: -1,
	}
	rng := sim.NewRand(sc.Seed)
	for t := 1; t <= sc.Ticks; t++ {
		// Fault injection.
		if sc.CrashAt > 0 && t == sc.CrashAt {
			if id := rs.InjectCrash(sc.CrashReplica); id != "" {
				res.Trace = append(res.Trace, fmt.Sprintf("t%04d inject crash %s", t, id))
			}
		}
		if sc.SlowAt > 0 && t == sc.SlowAt {
			if id := rs.InjectSlow(sc.SlowReplica, sc.SlowExtra); id != "" {
				res.Trace = append(res.Trace, fmt.Sprintf("t%04d inject slow %s +%d", t, id, sc.SlowExtra))
			}
		}

		// Deterministic load schedule.
		n := sc.BaseLoad
		if sc.SpikeAt > 0 && t >= sc.SpikeAt && t < sc.SpikeAt+sc.SpikeTicks {
			n *= sc.SpikeFactor
		}
		reqs := make([]PlaneRequest, n)
		for i := range reqs {
			key := fmt.Sprintf("k-%03d", rng.Intn(sc.Keys))
			if sc.SkewAt > 0 && t >= sc.SkewAt && rng.Intn(100) < sc.SkewPercent {
				key = sc.SkewKey
			}
			body := make([]byte, sc.BodyBytes+i%33)
			rng.Read(body)
			reqs[i] = PlaneRequest{Key: key, Body: body}
		}
		if err := client.SendBatch(reqs); err != nil {
			return res, err
		}
		res.Sent += n

		// Serve + observe: the closed loop.
		if _, err := rs.Step(); err != nil {
			return res, err
		}
		actions, err := o.Observe()
		if err != nil {
			return res, err
		}
		if len(actions) > 0 && res.FirstReactionTick < 0 &&
			(res.InjectTick < 0 || t >= res.InjectTick) {
			res.FirstReactionTick = t
		}
		replies, err := client.Replies()
		if err != nil {
			return res, err
		}
		res.Replies += len(replies)

		line := fmt.Sprintf("t%04d replicas=%d backlog=%d", t, o.Replicas(), rs.Backlog())
		if len(actions) > 0 {
			parts := make([]string, len(actions))
			for i, a := range actions {
				parts[i] = a.String()
			}
			line += " | " + strings.Join(parts, "; ")
		}
		res.Trace = append(res.Trace, line)
	}

	sum := sha256.Sum256([]byte(strings.Join(res.Trace, "\n")))
	res.TraceHash = hex.EncodeToString(sum[:])
	tot := rs.Totals()
	res.Served = tot.Served
	res.Failed = tot.Failed
	res.Backlog = rs.Backlog()
	res.Launched = tot.Launched
	res.FinalReplicas = tot.Live
	if tot.Launched > 0 {
		res.RequestsPerReplica = float64(tot.Served) / float64(tot.Launched)
	}
	res.SerialCycles = tot.SerialCycles
	res.CriticalCycles = tot.CriticalCycles
	if tot.CriticalCycles > 0 {
		res.SimSpeedup = float64(tot.SerialCycles) / float64(tot.CriticalCycles)
	}
	res.Faults = tot.Faults
	res.FrontCycles = tot.FrontCycles
	if res.InjectTick > 0 && res.FirstReactionTick > 0 {
		res.AdaptLatencySimMS = float64(res.FirstReactionTick-res.InjectTick+1) * sc.TickMillis
	}
	return res, nil
}

// DefaultScenarios returns the four gated fault-injection scenarios:
// replica crash, load spike, hot-key skew and slow replica. Their
// adaptation traces and cycle totals are pinned in BENCH_4.json and
// checked against the baseline in CI; change them only with the same
// deliberation as a golden file.
func DefaultScenarios() []Scenario {
	target := orchestrator.Target{
		MaxQueueDepth:    32,
		MinReplicas:      1,
		MaxReplicas:      8,
		ScaleInBelow:     4,
		MaxServiceCycles: 200_000,
	}
	base := Scenario{
		Seed:          42,
		Ticks:         48,
		Replicas:      2,
		BaseLoad:      48,
		Keys:          64,
		BodyBytes:     192,
		TickMillis:    1,
		RequestCycles: 60_000,
		Target:        target,
	}
	crash := base
	crash.Name = "crash"
	crash.CrashAt, crash.CrashReplica = 12, 0

	spike := base
	spike.Name = "load-spike"
	spike.SpikeAt, spike.SpikeTicks, spike.SpikeFactor = 16, 8, 6

	skew := base
	skew.Name = "hot-key-skew"
	skew.BaseLoad = 96
	skew.SkewAt, skew.SkewPercent, skew.SkewKey = 10, 85, "hot"

	slow := base
	slow.Name = "slow-replica"
	slow.SlowAt, slow.SlowReplica, slow.SlowExtra = 12, 0, 400_000

	return []Scenario{crash, spike, skew, slow}
}
