package microsvc

import (
	"fmt"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/enclave"
	"securecloud/internal/kvstore"
	"securecloud/internal/registry"
	"securecloud/internal/shield"
	"securecloud/internal/sim"
)

// DurabilitySpec attaches a durable sealed store to a scenario: every
// served tick's requests are also applied to a kvstore.DurableStore (WAL
// group commit per tick), snapshots publish on a fixed cadence, and the
// "crash-state" fault kind recovers the store from snapshot + WAL tail and
// pins it bit-identical to a never-crashed twin.
type DurabilitySpec struct {
	// Shards is the durable store's shard count (topology).
	Shards int
	// SnapshotEvery publishes a snapshot every N ticks (0 = never).
	// Snapshots are incremental: shards untouched since their last packed
	// snapshot publish reuse records chaining to the parent manifest.
	SnapshotEvery int
	// GCEvery runs WAL-segment GC every N ticks (0 = never).
	GCEvery int
	// RetainEpochs is GC's retention margin (kvstore.DurableConfig
	// .GCRetainEpochs; 0 = kvstore default of 1).
	RetainEpochs int
	// ShardBytes sizes each shard enclave (0 = kvstore default).
	ShardBytes uint64
}

// durabilityHarness is the scenario engine's durable-state rig: the durable
// store under test, a never-crashed unaccounted twin receiving the same
// writes, and the registry + engine that survive the "crash" (they model
// off-node services). Its seal key comes through the full attested release
// path — an enclave signed as the scenario service quotes itself to the
// KeyBroker — so durable state is rooted in attestation exactly like the
// replicas' request keys.
type durabilityHarness struct {
	cfg   kvstore.DurableConfig
	store *kvstore.DurableStore
	twin  *kvstore.ShardedStore

	snapshots     int
	recoveries    int
	mismatches    int
	replayed      int
	snapshotPairs int
	chunksFetched int
	cacheHits     int
	bootCycles    sim.Cycles
	replayCycles  sim.Cycles

	shardsPacked    int
	shardsReused    int
	chunksPublished int
	chunksDeduped   int
	packCycles      sim.Cycles
	chainLinks      int
	gcSegments      int
	gcBytes         int64
}

func newDurabilityHarness(spec ScenarioSpec, svc *attest.Service, kb *attest.KeyBroker) (*durabilityHarness, error) {
	d := spec.Durability
	enc, _, err := enclave.NewSignedWorker(enclave.Config{}, 1<<20, scenarioService, ReplicaSigner(scenarioService))
	if err != nil {
		return nil, err
	}
	defer enc.Destroy()
	quoter, err := svc.Provision(enc.Platform(), "durable-node")
	if err != nil {
		return nil, err
	}
	skeys, err := attest.FetchServiceKeys(enc, quoter, kb, scenarioService)
	if err != nil {
		return nil, fmt.Errorf("microsvc: durability key release: %w", err)
	}
	sealKey, err := skeys.Derive("durability")
	if err != nil {
		return nil, err
	}

	reg := registry.New()
	eng := container.NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), reg, nil)
	eng.Cache = container.NewBlobCache()
	eng.PullWorkers = spec.Workers

	cfg := kvstore.DurableConfig{
		Shards: d.Shards, Workers: spec.Workers, Seed: spec.Seed,
		ShardBytes: d.ShardBytes,
		Service:    "durable/" + scenarioService,
		SealKey:    sealKey,
		Registry:   reg, Engine: eng,
		GCRetainEpochs: d.RetainEpochs,
	}
	store, err := kvstore.NewDurableStore(cfg)
	if err != nil {
		return nil, err
	}
	twin, err := kvstore.NewShardedStore(sealKey, kvstore.ShardedStoreConfig{
		Shards: d.Shards, Workers: spec.Workers, Seed: spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &durabilityHarness{cfg: cfg, store: store, twin: twin}, nil
}

// put applies one tick's pairs to both the durable store and the twin.
func (h *durabilityHarness) put(pairs []kvstore.Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	if err := h.store.PutBatch(pairs); err != nil {
		return err
	}
	return h.twin.PutBatch(pairs)
}

// maybeSnapshot publishes an incremental snapshot on the spec's cadence,
// returning a trace line.
func (h *durabilityHarness) maybeSnapshot(t, every int) (string, error) {
	if every <= 0 || t%every != 0 {
		return "", nil
	}
	st, err := h.store.Snapshot()
	if err != nil {
		return "", err
	}
	h.snapshots++
	h.shardsPacked += st.ShardsPacked
	h.shardsReused += st.ShardsReused
	h.chunksPublished += st.ChunksPublished
	h.chunksDeduped += st.ChunksDeduped
	h.packCycles += st.PackCycles
	return fmt.Sprintf("t%04d snapshot seq=%d packed=%d reused=%d chunks=%d",
		t, st.Seq, st.ShardsPacked, st.ShardsReused, st.ChunksPublished), nil
}

// maybeGC retires snapshot-covered WAL segments on the spec's cadence,
// returning a trace line when a pass ran.
func (h *durabilityHarness) maybeGC(t, every int) (string, error) {
	if every <= 0 || t%every != 0 {
		return "", nil
	}
	g := h.store.GC()
	h.gcSegments += g.SegmentsRetired
	h.gcBytes += g.BytesRetired
	return fmt.Sprintf("t%04d gc retired=%d bytes=%d", t, g.SegmentsRetired, g.BytesRetired), nil
}

// crash kills the durable store with total state loss — only the WAL
// segments and the off-node registry survive — then recovers a fresh store
// (walking the snapshot delta chain, pulling only cache-missing chunks)
// and checks it bit-identical to the never-crashed twin. Returns a trace
// line.
func (h *durabilityHarness) crash(t int) (string, error) {
	segs := h.store.WALSegments()
	recovered, rstats, err := kvstore.RecoverDurableStore(h.cfg, segs)
	if err != nil {
		return "", err
	}
	h.store = recovered
	h.recoveries++
	h.replayed += rstats.RecordsReplayed
	h.snapshotPairs += rstats.SnapshotPairs
	h.chunksFetched += rstats.ChunksFetched
	h.cacheHits += rstats.CacheHits
	h.bootCycles += rstats.SnapshotBootstrapCycles
	h.replayCycles += rstats.LogReplayCycles
	h.chainLinks += rstats.ChainLinks
	got, err := recovered.StateDigest()
	if err != nil {
		return "", err
	}
	want, err := h.twin.StateDigest()
	if err != nil {
		return "", err
	}
	equal := got == want
	if !equal {
		h.mismatches++
	}
	return fmt.Sprintf("t%04d recover state pairs=%d replayed=%d fetched=%d cached=%d equal=%v",
		t, rstats.SnapshotPairs, rstats.RecordsReplayed, rstats.ChunksFetched, rstats.CacheHits, equal), nil
}

// metrics folds the harness counters into the scenario metric table.
func (h *durabilityHarness) metrics(m map[string]float64) {
	equal := 1.0
	if h.mismatches > 0 {
		equal = 0
	}
	m["recovered_state_equal"] = equal
	m["recoveries"] = float64(h.recoveries)
	m["snapshots_published"] = float64(h.snapshots)
	m["wal_records_replayed"] = float64(h.replayed)
	m["snapshot_pairs_restored"] = float64(h.snapshotPairs)
	m["recovery_chunks_fetched"] = float64(h.chunksFetched)
	m["recovery_cache_hits"] = float64(h.cacheHits)
	m["snapshot_bootstrap_cycles"] = float64(h.bootCycles)
	m["log_replay_cycles"] = float64(h.replayCycles)
	m["snapshot_shards_packed"] = float64(h.shardsPacked)
	m["snapshot_shards_reused"] = float64(h.shardsReused)
	m["snapshot_chunks_published"] = float64(h.chunksPublished)
	m["snapshot_chunks_deduped"] = float64(h.chunksDeduped)
	m["snapshot_pack_cycles"] = float64(h.packCycles)
	m["recovery_chain_links"] = float64(h.chainLinks)
	m["gc_segments_retired"] = float64(h.gcSegments)
	m["gc_bytes_retired"] = float64(h.gcBytes)
}
