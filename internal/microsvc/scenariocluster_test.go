package microsvc

import (
	"testing"
)

// TestClusterScenariosDeterministicAcrossWorkerCounts extends the plane's
// determinism property to the cluster matrix: trace and every metric —
// including the per-node figures folded in from cluster.Snapshot — are
// bit-identical at worker counts 1, 2, 4 and 8.
func TestClusterScenariosDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, spec := range ClusterLabScenarios() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			var ref ScenarioResult
			for i, w := range []int{1, 2, 4, 8} {
				spec.Workers = w
				got, err := RunSpec(spec)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if i == 0 {
					ref = got
					if len(ref.Trace) == 0 || ref.Served == 0 {
						t.Fatalf("degenerate scenario: %+v", ref)
					}
					continue
				}
				if got.TraceHash != ref.TraceHash {
					for j := range got.Trace {
						if j < len(ref.Trace) && got.Trace[j] != ref.Trace[j] {
							t.Errorf("trace[%d]: workers=%d %q != workers=1 %q", j, w, got.Trace[j], ref.Trace[j])
							break
						}
					}
					t.Fatalf("workers=%d trace hash %s != %s", w, got.TraceHash, ref.TraceHash)
				}
				if len(got.Metrics) != len(ref.Metrics) {
					t.Fatalf("workers=%d metric count %d != %d", w, len(got.Metrics), len(ref.Metrics))
				}
				for k, v := range ref.Metrics {
					if gv, ok := got.Metrics[k]; !ok || gv != v {
						t.Fatalf("workers=%d metric %s = %v != %v", w, k, gv, v)
					}
				}
			}
		})
	}
}

// TestClusterScenarioAssertions runs each cluster scenario's own
// assertion table — the same table cmd/bench-check gates in CI.
func TestClusterScenarioAssertions(t *testing.T) {
	for _, spec := range ClusterLabScenarios() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := RunSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AssertionsPassed {
				for _, f := range res.AssertionFailures {
					t.Errorf("assertion failed: %s", f)
				}
			}
		})
	}
}

// TestClusterWarmColdBootContrast pins the locality story end to end: in
// the node-crash scenario the gateway-warmed replica boots with strictly
// fewer fetched chunks than any cold boot on a fresh node.
func TestClusterWarmColdBootContrast(t *testing.T) {
	for _, spec := range ClusterLabScenarios() {
		if spec.Name != "node-crash" {
			continue
		}
		res, err := RunSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		warmMax := res.Metrics["cluster.warm_fetch_max"]
		coldMin := res.Metrics["cluster.cold_fetch_min"]
		if res.Metrics["cluster.warm_boots"] < 1 || res.Metrics["cluster.cold_boots"] < 1 {
			t.Fatalf("scenario produced no warm/cold contrast: %v", res.Metrics)
		}
		if warmMax < 0 || coldMin < 0 || warmMax >= coldMin {
			t.Fatalf("warm boot fetched %v chunks, cold boot fetched %v — want strictly fewer", warmMax, coldMin)
		}
		return
	}
	t.Fatal("node-crash scenario missing")
}
