// Package microsvc implements SecureCloud's dependable micro-service
// framework (paper §III-B(2)): the application logic of each micro-service
// runs inside an enclave; the micro-service runtime outside the enclave
// only ever handles encrypted data. Requests, responses and bus traffic
// cross the boundary as sealed blobs, with the encryption and decryption
// performed "automatically and transparently within the enclave"
// (paper §IV).
//
// Micro-services compose into applications over the event bus: a service
// subscribes to input topics, processes each sealed message inside its
// enclave, and publishes sealed results to output topics.
package microsvc

import (
	"errors"
	"fmt"
	"sync/atomic"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
)

// Handler is the application logic living inside the enclave. It sees
// plaintext; nothing outside the Service ever does.
type Handler func(req []byte) ([]byte, error)

// Errors returned by services.
var (
	ErrSealedRequest = errors.New("microsvc: request failed authentication")
	ErrStopped       = errors.New("microsvc: service stopped")
)

// Service is one running micro-service: an enclave, its request key, and
// the handler inside. Request counters are atomics so monitoring reads
// (Served, Stats) never contend with the serve path.
type Service struct {
	name    string
	enc     *enclave.Enclave
	key     cryptbox.Key
	box     *cryptbox.Box
	handler Handler

	stopped atomic.Bool
	served  atomic.Uint64
	failed  atomic.Uint64
}

// New wraps handler into a micro-service bound to enc. The request key is
// what clients (holding it via the CAS) use to talk to the service.
func New(name string, enc *enclave.Enclave, key cryptbox.Key, handler Handler) (*Service, error) {
	if handler == nil {
		return nil, errors.New("microsvc: nil handler")
	}
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return &Service{name: name, enc: enc, key: key, box: box, handler: handler}, nil
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// Enclave returns the service's enclave.
func (s *Service) Enclave() *enclave.Enclave { return s.enc }

// Served returns the number of successfully handled requests.
func (s *Service) Served() uint64 { return s.served.Load() }

// Stats is a monitoring snapshot of one service or replica. All fields
// are read from atomics: sampling never blocks the serve path.
type Stats struct {
	// Served counts successfully handled requests; Failed counts requests
	// that failed authentication, whose handler returned an error, or
	// whose response could not be sealed.
	Served uint64
	Failed uint64
}

// Stats returns the service's counters without taking any lock.
func (s *Service) Stats() Stats {
	return Stats{Served: s.served.Load(), Failed: s.failed.Load()}
}

// Stop marks the service stopped; subsequent invocations fail.
func (s *Service) Stop() { s.stopped.Store(true) }

// reqAAD/respAAD bind blobs to the service and direction, so a response
// cannot be replayed as a request or routed to another service. They are
// the same AADs the ReplicaSet frames use (reqAADFor/respAADFor), so a
// single Service and a replica fleet of the same name interoperate.
func (s *Service) reqAAD() []byte  { return reqAADFor(s.name) }
func (s *Service) respAAD() []byte { return respAADFor(s.name) }

// Invoke processes one sealed request and returns the sealed response.
// The runtime outside the enclave calls this with ciphertext; decryption,
// handling and re-encryption all happen past the EENTER.
func (s *Service) Invoke(sealedReq []byte) ([]byte, error) {
	if s.stopped.Load() {
		return nil, ErrStopped
	}

	if err := s.enc.EEnter(); err != nil {
		return nil, err
	}
	defer func() { _ = s.enc.EExit() }()

	req, err := s.box.Open(sealedReq, s.reqAAD())
	if err != nil {
		s.failed.Add(1)
		return nil, ErrSealedRequest
	}
	resp, err := s.handler(req)
	if err != nil {
		s.failed.Add(1)
		return nil, fmt.Errorf("microsvc %s: %w", s.name, err)
	}
	sealedResp, err := s.box.Seal(resp, s.respAAD())
	if err != nil {
		s.failed.Add(1)
		return nil, err
	}
	s.served.Add(1)
	return sealedResp, nil
}

// Client invokes a service from its trusted peer side (another enclave or
// the application owner) holding the request key.
type Client struct {
	svc *Service
	box *cryptbox.Box
}

// NewClient builds a client for svc with the shared request key.
func NewClient(svc *Service, key cryptbox.Key) (*Client, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return &Client{svc: svc, box: box}, nil
}

// Call seals req, invokes the service and opens the response.
func (c *Client) Call(req []byte) ([]byte, error) {
	sealed, err := c.box.Seal(req, c.svc.reqAAD())
	if err != nil {
		return nil, err
	}
	sealedResp, err := c.svc.Invoke(sealed)
	if err != nil {
		return nil, err
	}
	resp, err := c.box.Open(sealedResp, c.svc.respAAD())
	if err != nil {
		return nil, ErrSealedRequest
	}
	return resp, nil
}

// BusWorker connects a service to the event bus: messages from the input
// topic are processed inside the enclave and results published to the
// output topic. This is the composition primitive of Figure 1.
type BusWorker struct {
	svc *Service
	in  *eventbus.Subscriber
	out *eventbus.Publisher
}

// NewBusWorker wires svc between two topics of bus, deriving topic keys
// from the application root key.
func NewBusWorker(svc *Service, bus *eventbus.Bus, appRoot cryptbox.Key, inTopic, outTopic string) (*BusWorker, error) {
	inKey, err := eventbus.TopicKey(appRoot, inTopic)
	if err != nil {
		return nil, err
	}
	outKey, err := eventbus.TopicKey(appRoot, outTopic)
	if err != nil {
		return nil, err
	}
	in, err := eventbus.NewSubscriber(bus, inTopic, inKey)
	if err != nil {
		return nil, err
	}
	out, err := eventbus.NewPublisher(bus, outTopic, outKey)
	if err != nil {
		return nil, err
	}
	return &BusWorker{svc: svc, in: in, out: out}, nil
}

// Step drains pending input messages through the service and publishes
// every non-empty result. It returns the number of messages processed.
// Processing happens inside the enclave; the bus only carries ciphertext.
func (w *BusWorker) Step() (int, error) {
	msgs, err := w.in.Receive()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, m := range msgs {
		if err := w.svc.enc.EEnter(); err != nil {
			return n, err
		}
		resp, err := w.svc.handler(m)
		_ = w.svc.enc.EExit()
		if err != nil {
			return n, fmt.Errorf("microsvc %s: %w", w.svc.name, err)
		}
		n++
		if len(resp) == 0 {
			continue
		}
		if _, err := w.out.Publish(resp); err != nil {
			return n, err
		}
	}
	return n, nil
}
