package microsvc

import (
	"math"
	"sort"
)

// This file implements the plane's tenant-aware admission controller
// (ROADMAP item 2): the front-end load manager that stands between the
// event bus and the replica fleet. Requests carry a tenant ID in the frame
// routing envelope; the controller runs one token bucket and one bounded
// FIFO queue per tenant, dequeues across tenants weighted-fair, bounds the
// global queued total, sheds overflow with an explicit reply carrying a
// deterministic retry-after (in sim-ms), and splits hot routing keys
// across replicas when their home replica is straggling.
//
// Determinism is the design constraint everything here bends around:
// every admission decision — admit, queue, shed, dispatch order, split
// target — is a pure function of the configuration, the arrival order on
// the bus, and the per-step replica-depth snapshot. Nothing reads the host
// clock, host scheduling, or map iteration order (tenants are kept in a
// sorted slice). A scenario run at Workers=8 therefore sheds exactly the
// same requests, in the same ticks, as the same scenario at Workers=1.

// TenantPolicy shapes one tenant's admission treatment.
type TenantPolicy struct {
	// Weight is the tenant's weighted-fair share: each dequeue round grants
	// the tenant up to Weight requests before the next tenant's turn.
	// Default 1.
	Weight int
	// Rate refills the tenant's token bucket by this many requests per
	// Step; a request is dispatched only against a token. 0 = unlimited
	// (no bucket — the tenant is bounded by queues and weights only).
	Rate int
	// Burst caps the bucket (default: Rate — no extra burst allowance).
	Burst int
	// MaxQueue bounds the tenant's admission queue; arrivals beyond it are
	// shed with a retry-after reply. Default DefaultTenantQueue.
	MaxQueue int
}

// DefaultTenantQueue bounds a tenant queue when the policy leaves MaxQueue
// zero.
const DefaultTenantQueue = 1024

// AdmissionConfig enables and shapes the admission controller of a
// ReplicaSet. The zero value is not meaningful — a nil *AdmissionConfig in
// ReplicaSetConfig disables admission entirely (the pre-admission fast
// path, byte-identical to the historical Step behaviour).
type AdmissionConfig struct {
	// Default is the policy applied to tenants not listed in Tenants —
	// including the default tenant "" that untagged legacy frames map to.
	Default TenantPolicy
	// Tenants holds per-tenant policy overrides keyed by tenant ID.
	Tenants map[string]TenantPolicy
	// MaxGlobalQueue bounds the queued total across all tenant queues;
	// arrivals beyond it are shed regardless of per-tenant headroom.
	// 0 = no global bound.
	MaxGlobalQueue int
	// DispatchPerStep bounds how many requests one Step hands to the
	// replica fleet across all tenants. 0 = bounded by tokens only.
	DispatchPerStep int
	// TickMillis is the simulated duration of one Step, used to state
	// retry-after hints in sim-ms. Default 1.
	TickMillis float64
	// HotKeyPerStep enables hot-key splitting: once a routing key has been
	// dispatched more than this many times within one Step AND its home
	// replica's queue is at least SplitDepth deep, further requests for the
	// key rotate across SplitWays consecutive replicas instead of pinning
	// to the home. 0 disables splitting.
	HotKeyPerStep int
	// SplitWays is the number of replicas a hot key spreads over
	// (default 2; clamped to the live replica count).
	SplitWays int
	// SplitDepth is the home-replica queue depth at which a hot key is
	// considered straggling (default 1).
	SplitDepth int
}

// shedVerdict describes one shed decision: which request was rejected and
// the deterministic retry-after hint the front end replies with.
type shedVerdict struct {
	req          request
	retryAfterMS float64
}

// tenantState is the controller's per-tenant runtime: policy, bucket,
// queue and counters.
type tenantState struct {
	name   string
	pol    TenantPolicy
	tokens int
	queue  []request

	admitted   uint64
	dispatched uint64
	shed       uint64
}

// admission is the front-end load manager of one ReplicaSet. All methods
// are called from Step with the set's step serialization — the controller
// itself takes no locks and keeps no goroutines.
type admission struct {
	cfg     AdmissionConfig
	tenants map[string]*tenantState
	order   []string // tenant names, sorted — the deterministic iteration order
	queued  int      // total across tenant queues

	// Hot-key state: per-step dispatch counts and the per-key rotation
	// sequence that spreads a split key across replicas.
	hotCount map[string]int
	hotSeq   map[string]uint64
	splits   uint64
	shedAll  uint64

	// step numbers admission steps; each admitted request records the step
	// it arrived in, and dispatch turns the difference into a queue-wait
	// histogram (in steps — the caller scales by TickMillis for sim-ms).
	// Indexed by whole steps waited (index 0 unused: one step is the
	// floor), grown on demand — a dense slice instead of a map, so the
	// per-dispatch increment on the hot path hashes nothing.
	step      uint64
	latCounts []uint64
}

// newAdmission normalizes the configuration and returns an empty
// controller.
func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.TickMillis <= 0 {
		cfg.TickMillis = 1
	}
	if cfg.SplitWays <= 1 {
		cfg.SplitWays = 2
	}
	if cfg.SplitDepth <= 0 {
		cfg.SplitDepth = 1
	}
	return &admission{
		cfg:      cfg,
		tenants:  make(map[string]*tenantState),
		hotCount: make(map[string]int),
		hotSeq:   make(map[string]uint64),
	}
}

// observeWait counts one dispatched request that waited the given whole
// steps, growing the histogram as needed.
func (a *admission) observeWait(steps int) {
	for len(a.latCounts) <= steps {
		a.latCounts = append(a.latCounts, 0)
	}
	a.latCounts[steps]++
}

// normalizePolicy fills a policy's defaults.
func normalizePolicy(p TenantPolicy) TenantPolicy {
	if p.Weight <= 0 {
		p.Weight = 1
	}
	if p.Burst <= 0 {
		p.Burst = p.Rate
	}
	if p.MaxQueue <= 0 {
		p.MaxQueue = DefaultTenantQueue
	}
	return p
}

// state returns (creating on first sight) the tenant's runtime. New
// tenants start with a full bucket and are inserted into the sorted order.
func (a *admission) state(tenant string) *tenantState {
	if ts, ok := a.tenants[tenant]; ok {
		return ts
	}
	pol, ok := a.cfg.Tenants[tenant]
	if !ok {
		pol = a.cfg.Default
	}
	pol = normalizePolicy(pol)
	ts := &tenantState{name: tenant, pol: pol, tokens: pol.Burst}
	a.tenants[tenant] = ts
	i := sort.SearchStrings(a.order, tenant)
	a.order = append(a.order, "")
	copy(a.order[i+1:], a.order[i:])
	a.order[i] = tenant
	return ts
}

// offer presents one arrival to the controller: it is either queued on its
// tenant's admission queue or shed. Shedding happens only here, at arrival
// — a request that makes it into a queue is eventually dispatched.
func (a *admission) offer(q request) (shed bool, retryAfterMS float64) {
	ts := a.state(q.meta.tenant)
	if len(ts.queue) >= ts.pol.MaxQueue ||
		(a.cfg.MaxGlobalQueue > 0 && a.queued >= a.cfg.MaxGlobalQueue) {
		ts.shed++
		a.shedAll++
		return true, a.retryAfter(ts)
	}
	q.admitStep = a.step
	ts.queue = append(ts.queue, q)
	ts.admitted++
	a.queued++
	return false, 0
}

// retryAfter computes the shed reply's deterministic hint: the simulated
// time the tenant's current queue needs to drain at its refill rate,
// rounded up to whole steps. A tenant without a bucket (unlimited rate)
// was shed by a queue bound alone and is told to retry next step.
func (a *admission) retryAfter(ts *tenantState) float64 {
	steps := 1
	if ts.pol.Rate > 0 {
		steps = (len(ts.queue) + ts.pol.Rate) / ts.pol.Rate // ceil((len+1)/rate)
		if steps < 1 {
			steps = 1
		}
	}
	if steps > maxRetrySteps {
		steps = maxRetrySteps
	}
	return float64(steps) * a.cfg.TickMillis
}

// maxRetrySteps caps retry-after hints so a deeply backlogged tenant is
// still told to come back within a bounded horizon.
const maxRetrySteps = 64

// beginStep starts a new admission step: buckets refill, per-step hot-key
// counts reset. (The hot-key rotation sequence persists across steps so a
// key that stays hot keeps rotating rather than re-hammering its home.)
func (a *admission) beginStep() {
	a.step++
	for _, name := range a.order {
		ts := a.tenants[name]
		if ts.pol.Rate <= 0 {
			continue
		}
		ts.tokens += ts.pol.Rate
		if ts.tokens > ts.pol.Burst {
			ts.tokens = ts.pol.Burst
		}
	}
	for k := range a.hotCount {
		delete(a.hotCount, k)
	}
}

// dispatch drains the tenant queues weighted-fair: repeated rounds over
// the sorted tenant order, each round granting a tenant up to Weight
// requests (bounded by its tokens and the global per-step budget), until
// no tenant can make progress. The returned order is the routing order —
// a pure function of queue contents and policies.
func (a *admission) dispatch() []request {
	budget := a.cfg.DispatchPerStep
	if budget <= 0 {
		budget = math.MaxInt
	}
	var out []request
	for budget > 0 {
		progress := false
		for _, name := range a.order {
			ts := a.tenants[name]
			take := ts.pol.Weight
			if take > len(ts.queue) {
				take = len(ts.queue)
			}
			if ts.pol.Rate > 0 && take > ts.tokens {
				take = ts.tokens
			}
			if take > budget {
				take = budget
			}
			if take <= 0 {
				continue
			}
			for _, q := range ts.queue[:take] {
				a.observeWait(int(a.step - q.admitStep + 1))
			}
			out = append(out, ts.queue[:take]...)
			ts.queue = append(ts.queue[:0], ts.queue[take:]...)
			if ts.pol.Rate > 0 {
				ts.tokens -= take
			}
			ts.dispatched += uint64(take)
			a.queued -= take
			budget -= take
			progress = true
			if budget == 0 {
				break
			}
		}
		if !progress {
			break
		}
	}
	return out
}

// routeFor picks the replica slot for one dispatched request: the key's
// home slot, unless the key is hot this step and its home replica is
// straggling — then the key rotates across SplitWays consecutive slots.
// depths is the per-replica queue-depth snapshot taken at the start of
// the step, so the decision is independent of serve parallelism.
func (a *admission) routeFor(key string, n int, depths []int) int {
	home := routeIndex(key, n)
	if a.cfg.HotKeyPerStep <= 0 || n <= 1 {
		return home
	}
	a.hotCount[key]++
	if a.hotCount[key] <= a.cfg.HotKeyPerStep || depths[home] < a.cfg.SplitDepth {
		return home
	}
	ways := a.cfg.SplitWays
	if ways > n {
		ways = n
	}
	seq := a.hotSeq[key]
	a.hotSeq[key] = seq + 1
	a.splits++
	return (home + int(seq%uint64(ways))) % n
}

// depth is the queued total across all tenant queues.
func (a *admission) depth() int { return a.queued }

// latencyPercentiles reduces the queue-wait histogram to p50/p95/max in
// sim-ms (waits are whole steps; one step of wait is the floor — a request
// dispatched in its arrival step waited one step).
func (a *admission) latencyPercentiles(tickMS float64) (p50, p95, max float64) {
	var total uint64
	last := 0
	for s, c := range a.latCounts {
		if c > 0 {
			total += c
			last = s
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	pick := func(q float64) float64 {
		want := uint64(math.Ceil(q * float64(total)))
		if want < 1 {
			want = 1
		}
		var seen uint64
		for s, c := range a.latCounts {
			seen += c
			if seen >= want {
				return float64(s) * tickMS
			}
		}
		return float64(last) * tickMS
	}
	return pick(0.50), pick(0.95), float64(last) * tickMS
}

// TenantSnapshot is one tenant's admission counters.
type TenantSnapshot struct {
	Admitted   uint64
	Dispatched uint64
	Shed       uint64
	Queued     int
	Tokens     int
}

// AdmissionSnapshot is a point-in-time view of the controller, taken
// between steps.
type AdmissionSnapshot struct {
	Queued   int
	Shed     uint64
	Splits   uint64
	ByTenant map[string]TenantSnapshot
}

// snapshot captures the controller state (called under the set mutex).
func (a *admission) snapshot() AdmissionSnapshot {
	s := AdmissionSnapshot{
		Queued:   a.queued,
		Shed:     a.shedAll,
		Splits:   a.splits,
		ByTenant: make(map[string]TenantSnapshot, len(a.order)),
	}
	for _, name := range a.order {
		ts := a.tenants[name]
		s.ByTenant[name] = TenantSnapshot{
			Admitted:   ts.admitted,
			Dispatched: ts.dispatched,
			Shed:       ts.shed,
			Queued:     len(ts.queue),
			Tokens:     ts.tokens,
		}
	}
	return s
}
