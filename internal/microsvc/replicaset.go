package microsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/orchestrator"
	"securecloud/internal/sconert"
	"securecloud/internal/sim"
)

// This file implements the application plane's replicated micro-service
// runtime (paper §III-B(2) + §VI): a ReplicaSet runs N enclave-per-replica
// workers behind one attested front-end dispatcher. The boot sequence of
// every component — front-end and replicas alike — is the paper's:
// attest → key release through the KeyBroker → subscribe. No constructor
// accepts raw keys; an enclave that fails attestation never joins the set.
//
// Requests travel as frames: a cleartext routing key (metadata, like a
// topic name — the untrusted bus already sees message boundaries) followed
// by the body sealed under the service's request key. The front-end routes
// on the key with consistent hashing over the live replica order, so one
// logical entity (a smart meter, a feeder, a tenant) always lands on the
// same replica; the body is opened only inside the owning replica's
// enclave. Replies are sealed the same way in the opposite direction.
//
// Determinism: every replica (and the front-end) owns a whole simulated
// platform, so per-replica cycle and fault totals depend only on which
// requests the replica processed — routing is a pure function of the key
// and the replica order, serve budgets are per-replica clock deltas, and
// replies are flushed in replica order after the parallel serve phase.
// Execution parallelism (ReplicaSetConfig.Workers) therefore never changes
// any simulated figure: the property tests pin bit-identical totals and
// adaptation traces across worker counts.

// Replica-set errors.
var (
	ErrNoLiveReplicas = errors.New("microsvc: replica set has no replicas")
	ErrBadFrame       = errors.New("microsvc: malformed request frame")
)

// replicaStageBytes is the per-replica staging window through which sealed
// requests and responses are charged to the replica's simulated memory.
const replicaStageBytes = 64 << 10

// ReplicaSigner returns the MRSIGNER identity shared by every direct-mode
// replica of service name. Key-release policies for replica fleets
// allow-list this signer: replicas launched or restarted at any point in
// the service's lifetime attest under it, while any other code does not.
func ReplicaSigner(name string) cryptbox.Digest {
	return cryptbox.Sum([]byte("replica-signer|" + name))
}

// NewServiceKeys derives the deterministic key set of one service from the
// application root key: its request key plus the stream keys of the given
// bus topics. The owner registers the result with the KeyBroker; clients
// holding the root key derive the same keys locally.
func NewServiceKeys(appRoot cryptbox.Key, name string, topics ...string) (attest.ServiceKeys, error) {
	req, err := cryptbox.DeriveKey(appRoot, "svc-req:"+name)
	if err != nil {
		return attest.ServiceKeys{}, err
	}
	keys := attest.ServiceKeys{Request: req, Topics: make(map[string]cryptbox.Key, len(topics))}
	for _, t := range topics {
		k, err := eventbus.TopicKey(appRoot, t)
		if err != nil {
			return attest.ServiceKeys{}, err
		}
		keys.Topics[t] = k
	}
	return keys, nil
}

// ReplicaSetConfig shapes a replica set. Replicas and Platform are
// topology (they change placement and therefore the simulated figures);
// Workers is execution-only and never changes any figure.
type ReplicaSetConfig struct {
	// Replicas is the initial replica count (default 1).
	Replicas int
	// Workers bounds the goroutines serving replicas in parallel during
	// Step (0 = GOMAXPROCS). Execution-only.
	Workers int
	// Platform configures each replica's simulated platform (zero value =
	// platform defaults).
	Platform enclave.Config
	// EnclaveBytes sizes each direct-mode replica enclave (default 8 MiB).
	// Container-mode replicas take their size from the image manifest.
	EnclaveBytes uint64
	// InTopic / OutTopic are the bus topics the set consumes and produces.
	InTopic  string
	OutTopic string
	// PollBatch bounds how many inbound frames one Step drains (0 = all).
	PollBatch int
	// TickBudget is the per-replica serve budget per Step in simulated
	// cycles (0 = unlimited). A replica with pending work always serves at
	// least one request per Step, so progress is guaranteed.
	TickBudget sim.Cycles
	// RequestCycles is the modeled application compute charged inside the
	// enclave for every request, on top of the memory-hierarchy charges.
	RequestCycles sim.Cycles
}

// bootResult is what a boot path yields: an initialized enclave with its
// heap arena, the quoting identity of its platform, and a teardown hook.
type bootResult struct {
	enc    *enclave.Enclave
	arena  *enclave.Arena
	quoter *attest.Quoter
	stop   func()
}

// ReplicaSet is a replicated micro-service on the application plane.
// It implements orchestrator.Launcher, so an orchestrator scales it
// out/in and restarts replicas; each *Replica implements
// orchestrator.Replica for sampling.
type ReplicaSet struct {
	name    string
	bus     *eventbus.Bus
	broker  *attest.KeyBroker
	handler Handler
	cfg     ReplicaSetConfig
	boot    func(id string) (bootResult, error)

	front *frontEnd

	mu       sync.Mutex
	replicas []*Replica
	requeue  []request
	nextID   int
	launched int
	retired  retiredTotals
}

// retiredTotals accumulates the final accounting of retired replicas so
// set-lifetime totals include every replica that ever served.
type retiredTotals struct {
	cycles    sim.Cycles
	maxCycles sim.Cycles
	faults    uint64
	served    uint64
	failed    uint64
}

// frontEnd is the set's attested dispatcher: the enclave that holds the
// topic stream keys and owns the bus endpoints.
type frontEnd struct {
	enc  *enclave.Enclave
	stop func()
	sub  *eventbus.Subscriber
	pub  *eventbus.Publisher
}

// request is one routed unit of work: the cleartext routing key and the
// still-sealed body.
type request struct {
	key    string
	sealed []byte
}

// NewReplicaSet builds a direct-mode replica set: each replica boots on a
// fresh simulated platform (enclave.NewSignedWorker under the service's
// ReplicaSigner), attests through svc, and obtains its keys exclusively
// from kb. Construction fails if any replica is denied keys.
func NewReplicaSet(bus *eventbus.Bus, svc *attest.Service, kb *attest.KeyBroker, name string, handler Handler, cfg ReplicaSetConfig) (*ReplicaSet, error) {
	size := cfg.EnclaveBytes
	if size == 0 {
		size = 8 << 20
	}
	boot := func(id string) (bootResult, error) {
		enc, arena, err := enclave.NewSignedWorker(cfg.Platform, size, name, ReplicaSigner(name))
		if err != nil {
			return bootResult{}, err
		}
		quoter, err := svc.Provision(enc.Platform(), id)
		if err != nil {
			enc.Destroy()
			return bootResult{}, err
		}
		return bootResult{enc: enc, arena: arena, quoter: quoter, stop: enc.Destroy}, nil
	}
	return newReplicaSet(bus, kb, name, handler, cfg, boot)
}

// ContainerSpec names the image a container-mode replica set boots from.
type ContainerSpec struct {
	// Registry is the (untrusted) pull source replicas pull from: the
	// in-process registry or its HTTP client.
	Registry container.PullSource
	// CAS releases each replica's SCF during sconert.Boot.
	CAS *sconert.CAS
	// Image / Tag name the secure image.
	Image string
	Tag   string
	// Cache is the node-local blob cache the replicas' engines share, so
	// only the first boot fetches chunks from the registry. Nil gets a
	// cache private to this replica set.
	Cache *container.BlobCache
}

// NewContainerReplicaSet builds a replica set whose replicas launch
// through the full secure-container path: every launch allocates a fresh
// node (container.LaunchNode), pulls and verifies the image, builds the
// enclave, boots the SCONE runtime — attestation #1, releasing the SCF —
// and then fetches its service keys from kb — attestation #2, releasing
// the request and stream keys. This is the paper's complete boot sequence:
// attest → key release → subscribe.
func NewContainerReplicaSet(bus *eventbus.Bus, svc *attest.Service, kb *attest.KeyBroker, name string, handler Handler, cfg ReplicaSetConfig, spec ContainerSpec) (*ReplicaSet, error) {
	if spec.Registry == nil || spec.CAS == nil || spec.Image == "" {
		return nil, errors.New("microsvc: incomplete container spec")
	}
	if spec.Cache == nil {
		spec.Cache = container.NewBlobCache()
	}
	boot := func(id string) (bootResult, error) {
		eng, err := container.LaunchNode(svc, id, spec.Registry, cfg.Platform)
		if err != nil {
			return bootResult{}, err
		}
		eng.Cache = spec.Cache
		c, err := eng.Run(spec.Image, spec.Tag, spec.CAS)
		if err != nil {
			return bootResult{}, err
		}
		enc := c.Runtime.Enclave()
		arena, err := enc.HeapArena()
		if err != nil {
			c.Stop()
			return bootResult{}, err
		}
		return bootResult{enc: enc, arena: arena, quoter: eng.Quoter, stop: c.Stop}, nil
	}
	return newReplicaSet(bus, kb, name, handler, cfg, boot)
}

func newReplicaSet(bus *eventbus.Bus, kb *attest.KeyBroker, name string, handler Handler, cfg ReplicaSetConfig, boot func(string) (bootResult, error)) (*ReplicaSet, error) {
	if handler == nil {
		return nil, errors.New("microsvc: nil handler")
	}
	if bus == nil || kb == nil {
		return nil, errors.New("microsvc: replica set needs a bus and a key broker")
	}
	if cfg.InTopic == "" || cfg.OutTopic == "" {
		return nil, errors.New("microsvc: replica set needs in and out topics")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	rs := &ReplicaSet{
		name: name, bus: bus, broker: kb,
		handler: handler, cfg: cfg, boot: boot,
	}
	fe, err := rs.bootFront()
	if err != nil {
		return nil, err
	}
	rs.front = fe
	for i := 0; i < cfg.Replicas; i++ {
		if _, err := rs.Launch(); err != nil {
			rs.Stop()
			return nil, err
		}
	}
	return rs, nil
}

// bootFront boots the dispatcher through the same attested sequence as a
// replica and wires its accounted bus endpoints.
func (rs *ReplicaSet) bootFront() (*frontEnd, error) {
	br, err := rs.boot(rs.name + "/fe")
	if err != nil {
		return nil, err
	}
	keys, err := attest.FetchServiceKeys(br.enc, br.quoter, rs.broker, rs.name)
	if err != nil {
		br.stop()
		return nil, fmt.Errorf("microsvc %s: front-end key release: %w", rs.name, err)
	}
	inKey, ok := keys.Topic(rs.cfg.InTopic)
	if !ok {
		br.stop()
		return nil, fmt.Errorf("microsvc %s: no stream key released for topic %s", rs.name, rs.cfg.InTopic)
	}
	outKey, ok := keys.Topic(rs.cfg.OutTopic)
	if !ok {
		br.stop()
		return nil, fmt.Errorf("microsvc %s: no stream key released for topic %s", rs.name, rs.cfg.OutTopic)
	}
	acct := enclave.Accounting{Mem: br.enc.Memory(), Arena: br.arena}
	sub, err := eventbus.NewSubscriberAccounted(rs.bus, rs.cfg.InTopic, inKey, acct)
	if err != nil {
		br.stop()
		return nil, err
	}
	pub, err := eventbus.NewPublisherAccounted(rs.bus, rs.cfg.OutTopic, outKey, acct)
	if err != nil {
		sub.Close()
		br.stop()
		return nil, err
	}
	return &frontEnd{enc: br.enc, stop: br.stop, sub: sub, pub: pub}, nil
}

// Replica is one enclave-per-replica worker of a ReplicaSet. All counters
// are atomics; sampling never blocks the serve path.
type Replica struct {
	id    string
	set   *ReplicaSet
	enc   *enclave.Enclave
	box   *cryptbox.Box
	stage uint64
	stop  func()

	served     atomic.Uint64
	failed     atomic.Uint64
	lastCycles atomic.Uint64
	lastServed atomic.Uint64
	crashed    atomic.Bool
	retired    atomic.Bool
	slow       atomic.Uint64

	mu      sync.Mutex
	pending []request
}

// launchReplica runs the boot sequence for one replica.
func (rs *ReplicaSet) launchReplica(id string) (*Replica, error) {
	br, err := rs.boot(id)
	if err != nil {
		return nil, err
	}
	keys, err := attest.FetchServiceKeys(br.enc, br.quoter, rs.broker, rs.name)
	if err != nil {
		br.stop()
		return nil, fmt.Errorf("microsvc %s: replica %s key release: %w", rs.name, id, err)
	}
	box, err := cryptbox.NewBox(keys.Request)
	if err != nil {
		br.stop()
		return nil, err
	}
	return &Replica{
		id: id, set: rs, enc: br.enc, box: box,
		stage: br.arena.Alloc(replicaStageBytes),
		stop:  br.stop,
	}, nil
}

// Launch boots a new attested replica and adds it to the routing order.
// It implements orchestrator.Launcher.
func (rs *ReplicaSet) Launch() (orchestrator.Replica, error) {
	rs.mu.Lock()
	rs.nextID++
	id := fmt.Sprintf("%s/r%04d", rs.name, rs.nextID)
	rs.mu.Unlock()
	r, err := rs.launchReplica(id)
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	rs.replicas = append(rs.replicas, r)
	rs.launched++
	rs.mu.Unlock()
	return r, nil
}

// Retire removes a replica from the routing order, requeues its unserved
// requests for redistribution on the next Step, folds its final accounting
// into the set-lifetime totals, and tears its enclave down. It implements
// orchestrator.Launcher.
func (rs *ReplicaSet) Retire(id string) error {
	rs.mu.Lock()
	idx := -1
	for i, r := range rs.replicas {
		if r.id == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		rs.mu.Unlock()
		return fmt.Errorf("microsvc %s: no replica %s", rs.name, id)
	}
	r := rs.replicas[idx]
	rs.replicas = append(rs.replicas[:idx:idx], rs.replicas[idx+1:]...)
	r.retired.Store(true)
	r.mu.Lock()
	rs.requeue = append(rs.requeue, r.pending...)
	r.pending = nil
	r.mu.Unlock()
	c := r.enc.Memory().Cycles()
	rs.retired.cycles += c
	if c > rs.retired.maxCycles {
		rs.retired.maxCycles = c
	}
	rs.retired.faults += r.enc.Memory().Faults()
	rs.retired.served += r.served.Load()
	rs.retired.failed += r.failed.Load()
	rs.mu.Unlock()
	r.stop()
	return nil
}

// Stop tears the whole set down: every replica and the front-end. The
// final accounting of live replicas is folded into the retired totals
// first, so Totals() after Stop still reports set-lifetime figures.
func (rs *ReplicaSet) Stop() {
	rs.mu.Lock()
	reps := rs.replicas
	rs.replicas = nil
	for _, r := range reps {
		r.retired.Store(true)
		c := r.enc.Memory().Cycles()
		rs.retired.cycles += c
		if c > rs.retired.maxCycles {
			rs.retired.maxCycles = c
		}
		rs.retired.faults += r.enc.Memory().Faults()
		rs.retired.served += r.served.Load()
		rs.retired.failed += r.failed.Load()
	}
	rs.mu.Unlock()
	for _, r := range reps {
		r.stop()
	}
	if rs.front != nil {
		rs.front.sub.Close()
		rs.front.stop()
	}
}

// Name returns the service name.
func (rs *ReplicaSet) Name() string { return rs.name }

// Replicas returns the current replica count.
func (rs *ReplicaSet) Replicas() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.replicas)
}

// ReplicaHandles returns the current replicas as orchestrator handles, in
// routing order — what orchestrator.New takes as the initial set.
func (rs *ReplicaSet) ReplicaHandles() []orchestrator.Replica {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]orchestrator.Replica, len(rs.replicas))
	for i, r := range rs.replicas {
		out[i] = r
	}
	return out
}

// Backlog is the set's total unserved work: frames still queued on the
// bus (via the subscriber's Depth hook — one lock acquisition, nothing
// drained), requeued requests awaiting redistribution, and every
// replica's pending queue.
func (rs *ReplicaSet) Backlog() int {
	n := rs.front.sub.Depth()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n += len(rs.requeue)
	for _, r := range rs.replicas {
		n += r.Depth()
	}
	return n
}

// InjectCrash marks the i-th replica (routing order) crashed: it stops
// serving and samples unhealthy until the orchestrator replaces it.
// Returns the replica ID, or "" when the index is out of range.
func (rs *ReplicaSet) InjectCrash(i int) string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if i < 0 || i >= len(rs.replicas) {
		return ""
	}
	rs.replicas[i].crashed.Store(true)
	return rs.replicas[i].id
}

// InjectSlow charges the i-th replica (routing order) extra cycles per
// request — a degraded node or a noisy neighbour. Returns the replica ID,
// or "" when the index is out of range.
func (rs *ReplicaSet) InjectSlow(i int, extra sim.Cycles) string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if i < 0 || i >= len(rs.replicas) {
		return ""
	}
	rs.replicas[i].slow.Store(uint64(extra))
	return rs.replicas[i].id
}

// PlaneTotals is the set-lifetime accounting across every replica ever
// launched (live and retired). SerialCycles is the summed per-replica
// total; CriticalCycles the largest single replica's — the shard-per-core
// decomposition the storage and routing layers also report.
type PlaneTotals struct {
	SerialCycles   sim.Cycles
	CriticalCycles sim.Cycles
	Faults         uint64
	Served         uint64
	Failed         uint64
	Launched       int
	Live           int
	FrontCycles    sim.Cycles
	FrontFaults    uint64
}

// Totals returns the set-lifetime accounting.
func (rs *ReplicaSet) Totals() PlaneTotals {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	t := PlaneTotals{
		SerialCycles:   rs.retired.cycles,
		CriticalCycles: rs.retired.maxCycles,
		Faults:         rs.retired.faults,
		Served:         rs.retired.served,
		Failed:         rs.retired.failed,
		Launched:       rs.launched,
		Live:           len(rs.replicas),
	}
	for _, r := range rs.replicas {
		c := r.enc.Memory().Cycles()
		t.SerialCycles += c
		if c > t.CriticalCycles {
			t.CriticalCycles = c
		}
		t.Faults += r.enc.Memory().Faults()
		t.Served += r.served.Load()
		t.Failed += r.failed.Load()
	}
	t.FrontCycles = rs.front.enc.Memory().Cycles()
	t.FrontFaults = rs.front.enc.Memory().Faults()
	return t
}

// ID implements orchestrator.Replica.
func (r *Replica) ID() string { return r.id }

// Depth returns the replica's pending-queue length.
func (r *Replica) Depth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Stats returns the replica's request counters without blocking the serve
// path.
func (r *Replica) Stats() Stats {
	return Stats{Served: r.served.Load(), Failed: r.failed.Load()}
}

// Sample implements orchestrator.Replica: queue depth, the per-request
// service cost of the last serve tick, and health.
func (r *Replica) Sample() orchestrator.Metrics {
	m := orchestrator.Metrics{
		QueueDepth: r.Depth(),
		Healthy:    !r.crashed.Load(),
	}
	if n := r.lastServed.Load(); n > 0 {
		m.ServiceCycles = sim.Cycles(r.lastCycles.Load() / n)
	}
	return m
}

// enqueue appends a routed request to the replica's pending queue.
func (r *Replica) enqueue(q request) {
	r.mu.Lock()
	r.pending = append(r.pending, q)
	r.mu.Unlock()
}

// chargeStage charges n bytes through the replica's staging window in
// window-sized chunks, within the given span.
func (r *Replica) chargeStage(sp *enclave.Span, n int, write bool) {
	for n > 0 {
		c := n
		if c > replicaStageBytes {
			c = replicaStageBytes
		}
		sp.Access(r.stage, c, write)
		n -= c
	}
}

// serveOne processes one request inside the replica's enclave: charge the
// sealed request through the staging window, open it with the request key,
// run the handler, seal and charge the reply. Returns the sealed reply
// frame body (nil for a dropped message) and whether the request counted
// as served.
func (r *Replica) serveOne(q request) ([]byte, bool) {
	mem := r.enc.Memory()
	sp := mem.BeginSpan()
	r.chargeStage(sp, len(q.sealed), false)
	if extra := r.slow.Load(); extra > 0 {
		sp.ChargeCPU(sim.Cycles(extra))
	}
	if rc := r.set.cfg.RequestCycles; rc > 0 {
		sp.ChargeCPU(rc)
	}
	body, err := r.box.Open(q.sealed, reqAADFor(r.set.name))
	if err != nil {
		sp.End()
		r.failed.Add(1)
		return nil, false
	}
	resp, err := r.set.handler(body)
	if err != nil {
		sp.End()
		r.failed.Add(1)
		return nil, false
	}
	var sealedResp []byte
	if len(resp) > 0 {
		sealedResp, err = r.box.Seal(resp, respAADFor(r.set.name))
		if err != nil {
			sp.End()
			r.failed.Add(1)
			return nil, false
		}
		r.chargeStage(sp, len(sealedResp), true)
	}
	sp.End()
	r.served.Add(1)
	return sealedResp, true
}

// serveTick serves pending requests up to the set's tick budget (always at
// least one when any are pending), entering the enclave once for the whole
// batch. It returns the sealed reply frames in request order plus the
// served/failed counts of this tick.
func (r *Replica) serveTick() (replies [][]byte, served, failed int) {
	if r.crashed.Load() {
		r.lastCycles.Store(0)
		r.lastServed.Store(0)
		return nil, 0, 0
	}
	// Take ownership of the current queue: a Retire racing with this tick
	// requeues only what it can see, so no request is ever served twice or
	// trimmed away unserved.
	r.mu.Lock()
	pending := r.pending
	r.pending = nil
	r.mu.Unlock()
	if len(pending) == 0 {
		r.lastCycles.Store(0)
		r.lastServed.Store(0)
		return nil, 0, 0
	}
	mem := r.enc.Memory()
	start := mem.Cycles()
	if err := r.enc.EEnter(); err != nil {
		// The enclave is gone (torn down by a racing Retire, or broken).
		// Mark the replica unhealthy and hand the snapshot back so the
		// work is requeued, not stranded.
		r.crashed.Store(true)
		r.mu.Lock()
		r.pending = append(pending, r.pending...)
		r.mu.Unlock()
		r.requeueIfRetired()
		return nil, 0, 0
	}
	budget := r.set.cfg.TickBudget
	n := 0
	for _, q := range pending {
		sealedResp, ok := r.serveOne(q)
		n++
		if ok {
			served++
			if sealedResp != nil {
				replies = append(replies, encodeFrame(q.key, sealedResp))
			}
		} else {
			failed++
		}
		if budget > 0 && mem.Cycles()-start >= budget {
			break
		}
	}
	_ = r.enc.EExit()
	// Hand the unserved remainder back, ahead of anything enqueued since
	// the snapshot. If the replica was retired mid-tick its queue belongs
	// to the set now — requeue rather than strand the work.
	rest := pending[n:len(pending):len(pending)]
	r.mu.Lock()
	r.pending = append(rest, r.pending...)
	r.mu.Unlock()
	r.requeueIfRetired()
	r.lastCycles.Store(uint64(mem.Cycles() - start))
	r.lastServed.Store(uint64(served))
	return replies, served, failed
}

// requeueIfRetired moves the replica's queue back to the set when a Retire
// raced with the current serve tick — its queue belongs to the set now.
func (r *Replica) requeueIfRetired() {
	if !r.retired.Load() {
		return
	}
	rs := r.set
	rs.mu.Lock()
	r.mu.Lock()
	rs.requeue = append(rs.requeue, r.pending...)
	r.pending = nil
	r.mu.Unlock()
	rs.mu.Unlock()
}

// StepStats summarises one Step.
type StepStats struct {
	// Polled counts frames drained from the bus this step.
	Polled int
	// Dropped counts malformed frames discarded during routing.
	Dropped int
	// Routed counts requests distributed to replicas (polled + requeued).
	Routed int
	// Served / Failed count requests processed this step.
	Served int
	Failed int
	// Replies counts reply frames published to the out topic.
	Replies int
}

// Step runs one serve tick of the whole set: the front-end polls a batch
// of sealed frames off the bus, routes them (plus any requeued work) to
// replicas by routing-key hash over the current replica order, the
// replicas serve their pending queues within the tick budget — in parallel
// across at most Workers goroutines, each replica on its own simulated
// platform — and the replies are published in replica order.
func (rs *ReplicaSet) Step() (StepStats, error) {
	var st StepStats
	frames, err := rs.front.sub.PollBatch(rs.cfg.PollBatch)
	if err != nil {
		return st, err
	}
	st.Polled = len(frames)

	rs.mu.Lock()
	reqs := rs.requeue
	rs.requeue = nil
	reps := append([]*Replica(nil), rs.replicas...)
	rs.mu.Unlock()
	for _, f := range frames {
		key, sealed, err := decodeFrame(f)
		if err != nil {
			// A malformed frame means a buggy or malicious holder of the
			// topic key (the topic seal already authenticated). Drop it
			// and keep going: aborting here would lose the requeued work
			// and every valid frame of the batch.
			st.Dropped++
			continue
		}
		reqs = append(reqs, request{key: key, sealed: sealed})
	}
	if len(reps) == 0 {
		if len(reqs) > 0 {
			rs.mu.Lock()
			rs.requeue = append(reqs, rs.requeue...)
			rs.mu.Unlock()
			return st, ErrNoLiveReplicas
		}
		return st, nil
	}
	for _, q := range reqs {
		reps[routeIndex(q.key, len(reps))].enqueue(q)
	}
	st.Routed = len(reqs)

	workers := rs.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type tickResult struct {
		replies        [][]byte
		served, failed int
	}
	results := make([]tickResult, len(reps))
	sim.ParallelFor(len(reps), workers, func(i int) {
		var res tickResult
		res.replies, res.served, res.failed = reps[i].serveTick()
		results[i] = res
	})
	var pubErr error
	for _, res := range results {
		st.Served += res.served
		st.Failed += res.failed
		if len(res.replies) == 0 {
			continue
		}
		// A publish failure (bus closed, back-pressure) must not discard
		// the later replicas' replies unattempted: keep flushing and
		// report the first error.
		if _, err := rs.front.pub.PublishBatch(res.replies); err != nil {
			if pubErr == nil {
				pubErr = err
			}
			continue
		}
		st.Replies += len(res.replies)
	}
	return st, pubErr
}

// routeIndex hashes a routing key onto a replica slot (FNV-1a mod n) — a
// pure function of the key and the replica order, so routing is identical
// across runs and worker counts.
func routeIndex(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// reqAADFor / respAADFor bind plane frames to the service and direction,
// matching the single-service AADs so a reply can never replay as a
// request.
func reqAADFor(name string) []byte  { return []byte("req|" + name) }
func respAADFor(name string) []byte { return []byte("resp|" + name) }

// encodeFrame frames a routing key and a sealed body for the bus: 2-byte
// big-endian key length, the key, the sealed body. The key is cleartext
// routing metadata (like a topic name); the body stays sealed end to end.
func encodeFrame(key string, sealed []byte) []byte {
	b := make([]byte, 2+len(key)+len(sealed))
	binary.BigEndian.PutUint16(b, uint16(len(key)))
	copy(b[2:], key)
	copy(b[2+len(key):], sealed)
	return b
}

// decodeFrame splits a frame into routing key and sealed body.
func decodeFrame(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrBadFrame
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, ErrBadFrame
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// PlaneRequest is one client request: a cleartext routing key and the
// plaintext body (sealed by the client before it touches the bus).
type PlaneRequest struct {
	Key  string
	Body []byte
}

// PlaneReply is one opened reply.
type PlaneReply struct {
	Key  string
	Body []byte
}

// PlaneClient is the owner-side endpoint of a replica set: it holds the
// service keys (the owner registered them with the KeyBroker in the first
// place), seals requests onto the in topic and opens replies off the out
// topic.
type PlaneClient struct {
	name string
	box  *cryptbox.Box
	pub  *eventbus.Publisher
	sub  *eventbus.Subscriber
}

// NewPlaneClient builds a client for the named service from its key set.
func NewPlaneClient(bus *eventbus.Bus, name string, keys attest.ServiceKeys, inTopic, outTopic string) (*PlaneClient, error) {
	box, err := cryptbox.NewBox(keys.Request)
	if err != nil {
		return nil, err
	}
	inKey, ok := keys.Topic(inTopic)
	if !ok {
		return nil, fmt.Errorf("microsvc: client has no stream key for %s", inTopic)
	}
	outKey, ok := keys.Topic(outTopic)
	if !ok {
		return nil, fmt.Errorf("microsvc: client has no stream key for %s", outTopic)
	}
	pub, err := eventbus.NewPublisher(bus, inTopic, inKey)
	if err != nil {
		return nil, err
	}
	sub, err := eventbus.NewSubscriber(bus, outTopic, outKey)
	if err != nil {
		return nil, err
	}
	return &PlaneClient{name: name, box: box, pub: pub, sub: sub}, nil
}

// SendBatch seals a batch of requests and publishes it in one bus
// transaction.
func (c *PlaneClient) SendBatch(reqs []PlaneRequest) error {
	if len(reqs) == 0 {
		return nil
	}
	frames := make([][]byte, len(reqs))
	for i, q := range reqs {
		if len(q.Key) > 0xFFFF {
			return fmt.Errorf("%w: routing key longer than 64 KiB", ErrBadFrame)
		}
		sealed, err := c.box.Seal(q.Body, reqAADFor(c.name))
		if err != nil {
			return err
		}
		frames[i] = encodeFrame(q.Key, sealed)
	}
	_, err := c.pub.PublishBatch(frames)
	return err
}

// Send seals and publishes one request.
func (c *PlaneClient) Send(key string, body []byte) error {
	return c.SendBatch([]PlaneRequest{{Key: key, Body: body}})
}

// Replies drains, authenticates and opens every pending reply.
func (c *PlaneClient) Replies() ([]PlaneReply, error) {
	frames, err := c.sub.Receive()
	if err != nil {
		return nil, err
	}
	out := make([]PlaneReply, 0, len(frames))
	for _, f := range frames {
		key, sealed, err := decodeFrame(f)
		if err != nil {
			return nil, err
		}
		body, err := c.box.Open(sealed, respAADFor(c.name))
		if err != nil {
			return nil, ErrSealedRequest
		}
		out = append(out, PlaneReply{Key: key, Body: body})
	}
	return out, nil
}

// Close releases the client's bus subscription.
func (c *PlaneClient) Close() { c.sub.Close() }
