package microsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/orchestrator"
	"securecloud/internal/sconert"
	"securecloud/internal/sim"
)

// This file implements the application plane's replicated micro-service
// runtime (paper §III-B(2) + §VI): a ReplicaSet runs N enclave-per-replica
// workers behind one attested front-end dispatcher. The boot sequence of
// every component — front-end and replicas alike — is the paper's:
// attest → key release through the KeyBroker → subscribe. No constructor
// accepts raw keys; an enclave that fails attestation never joins the set.
//
// Requests travel as frames: a cleartext routing key (metadata, like a
// topic name — the untrusted bus already sees message boundaries) followed
// by the body sealed under the service's request key. The front-end routes
// on the key with consistent hashing over the live replica order, so one
// logical entity (a smart meter, a feeder, a tenant) always lands on the
// same replica; the body is opened only inside the owning replica's
// enclave. Replies are sealed the same way in the opposite direction.
//
// Determinism: every replica (and the front-end) owns a whole simulated
// platform, so per-replica cycle and fault totals depend only on which
// requests the replica processed — routing is a pure function of the key
// and the replica order, serve budgets are per-replica clock deltas, and
// replies are flushed in replica order after the parallel serve phase.
// Execution parallelism (ReplicaSetConfig.Workers) therefore never changes
// any simulated figure: the property tests pin bit-identical totals and
// adaptation traces across worker counts.

// Replica-set errors.
var (
	ErrNoLiveReplicas = errors.New("microsvc: replica set has no replicas")
	ErrBadFrame       = errors.New("microsvc: malformed request frame")
)

// replicaStageBytes is the per-replica staging window through which sealed
// requests and responses are charged to the replica's simulated memory.
const replicaStageBytes = 64 << 10

// ReplicaSigner returns the MRSIGNER identity shared by every direct-mode
// replica of service name. Key-release policies for replica fleets
// allow-list this signer: replicas launched or restarted at any point in
// the service's lifetime attest under it, while any other code does not.
func ReplicaSigner(name string) cryptbox.Digest {
	return cryptbox.Sum([]byte("replica-signer|" + name))
}

// NewServiceKeys derives the deterministic key set of one service from the
// application root key: its request key plus the stream keys of the given
// bus topics. The owner registers the result with the KeyBroker; clients
// holding the root key derive the same keys locally.
func NewServiceKeys(appRoot cryptbox.Key, name string, topics ...string) (attest.ServiceKeys, error) {
	req, err := cryptbox.DeriveKey(appRoot, "svc-req:"+name)
	if err != nil {
		return attest.ServiceKeys{}, err
	}
	keys := attest.ServiceKeys{Request: req, Topics: make(map[string]cryptbox.Key, len(topics))}
	for _, t := range topics {
		k, err := eventbus.TopicKey(appRoot, t)
		if err != nil {
			return attest.ServiceKeys{}, err
		}
		keys.Topics[t] = k
	}
	return keys, nil
}

// ReplicaSetConfig shapes a replica set. Replicas and Platform are
// topology (they change placement and therefore the simulated figures);
// Workers is execution-only and never changes any figure.
type ReplicaSetConfig struct {
	// Replicas is the initial replica count (default 1).
	Replicas int
	// Workers bounds the goroutines serving replicas in parallel during
	// Step (0 = GOMAXPROCS). Execution-only.
	Workers int
	// Platform configures each replica's simulated platform (zero value =
	// platform defaults).
	Platform enclave.Config
	// EnclaveBytes sizes each direct-mode replica enclave (default 8 MiB).
	// Container-mode replicas take their size from the image manifest.
	EnclaveBytes uint64
	// InTopic / OutTopic are the bus topics the set consumes and produces.
	InTopic  string
	OutTopic string
	// PollBatch bounds how many inbound frames one Step drains (0 = all).
	PollBatch int
	// TickBudget is the per-replica serve budget per Step in simulated
	// cycles (0 = unlimited). A replica with pending work always serves at
	// least one request per Step, so progress is guaranteed.
	TickBudget sim.Cycles
	// RequestCycles is the modeled application compute charged inside the
	// enclave for every request, on top of the memory-hierarchy charges.
	RequestCycles sim.Cycles
	// Admission enables the tenant-aware admission controller (see
	// admission.go): per-tenant token buckets, weighted-fair dequeue,
	// bounded queues with shed replies, hot-key splitting. Nil disables
	// admission entirely — Step behaves exactly as before.
	Admission *AdmissionConfig
}

// bootResult is what a boot path yields: an initialized enclave with its
// heap arena, the quoting identity of its platform, and a teardown hook.
type bootResult struct {
	enc    *enclave.Enclave
	arena  *enclave.Arena
	quoter *attest.Quoter
	stop   func()
}

// ReplicaSet is a replicated micro-service on the application plane.
// It implements orchestrator.Launcher, so an orchestrator scales it
// out/in and restarts replicas; each *Replica implements
// orchestrator.Replica for sampling.
type ReplicaSet struct {
	name    string
	bus     *eventbus.Bus
	broker  *attest.KeyBroker
	handler Handler
	cfg     ReplicaSetConfig
	boot    func(id string) (bootResult, error)

	front *frontEnd

	// adm is the admission controller (nil unless cfg.Admission is set);
	// lastShed is the shed count of the last Step, the overload signal
	// Sample() reports to the orchestrator.
	adm      *admission
	lastShed atomic.Uint64

	// shedUnreachable counts requests shed because their route landed on
	// an unreachable (partitioned-away) replica. servedViaUnreachable is
	// the fail-open tripwire: requests an unreachable replica actually
	// served — structurally zero (routing diverts and serveTick refuses),
	// gated to zero by the bench harness.
	shedUnreachable      atomic.Uint64
	servedViaUnreachable atomic.Uint64

	mu       sync.Mutex
	replicas []*Replica
	requeue  []request
	nextID   int
	launched int
	retired  retiredTotals
}

// retiredTotals accumulates the final accounting of retired replicas so
// set-lifetime totals include every replica that ever served.
type retiredTotals struct {
	cycles    sim.Cycles
	maxCycles sim.Cycles
	faults    uint64
	served    uint64
	failed    uint64
}

// frontEnd is the set's attested dispatcher: the enclave that holds the
// topic stream keys and owns the bus endpoints. box holds the service
// request key, used only to seal shed replies (the front end never opens
// request bodies — routing stays on cleartext metadata).
type frontEnd struct {
	enc     *enclave.Enclave
	stop    func()
	sub     *eventbus.Subscriber
	pub     *eventbus.Publisher
	box     *cryptbox.Box
	shedAAD []byte // "shed|<name>", precomputed once per set
}

// frameMeta is the tenant envelope of a v2 frame: the tenant ID the
// admission controller accounts the request to and the client-assigned
// request ID echoed in replies (served and shed alike) so clients can
// correlate. Legacy frames decode to the zero meta (default tenant "").
type frameMeta struct {
	v2     bool
	tenant string
	id     uint64
}

// request is one routed unit of work: the cleartext routing key, the
// still-sealed body, the tenant envelope, and — once admitted — the
// admission step it arrived in (queue-wait accounting).
type request struct {
	key       string
	sealed    []byte
	meta      frameMeta
	admitStep uint64
}

// NewReplicaSet builds a direct-mode replica set: each replica boots on a
// fresh simulated platform (enclave.NewSignedWorker under the service's
// ReplicaSigner), attests through svc, and obtains its keys exclusively
// from kb. Construction fails if any replica is denied keys.
func NewReplicaSet(bus *eventbus.Bus, svc *attest.Service, kb *attest.KeyBroker, name string, handler Handler, cfg ReplicaSetConfig) (*ReplicaSet, error) {
	size := cfg.EnclaveBytes
	if size == 0 {
		size = 8 << 20
	}
	boot := func(id string) (bootResult, error) {
		enc, arena, err := enclave.NewSignedWorker(cfg.Platform, size, name, ReplicaSigner(name))
		if err != nil {
			return bootResult{}, err
		}
		quoter, err := svc.Provision(enc.Platform(), id)
		if err != nil {
			enc.Destroy()
			return bootResult{}, err
		}
		return bootResult{enc: enc, arena: arena, quoter: quoter, stop: enc.Destroy}, nil
	}
	return newReplicaSet(bus, kb, name, handler, cfg, boot)
}

// ContainerSpec names the image a container-mode replica set boots from.
type ContainerSpec struct {
	// Registry is the (untrusted) pull source replicas pull from: the
	// in-process registry or its HTTP client.
	Registry container.PullSource
	// CAS releases each replica's SCF during sconert.Boot.
	CAS *sconert.CAS
	// Image / Tag name the secure image.
	Image string
	Tag   string
	// Cache is the node-local blob cache the replicas' engines share, so
	// only the first boot fetches chunks from the registry. Nil gets a
	// cache private to this replica set.
	Cache *container.BlobCache
}

// NewContainerReplicaSet builds a replica set whose replicas launch
// through the full secure-container path: every launch allocates a fresh
// node (container.LaunchNode), pulls and verifies the image, builds the
// enclave, boots the SCONE runtime — attestation #1, releasing the SCF —
// and then fetches its service keys from kb — attestation #2, releasing
// the request and stream keys. This is the paper's complete boot sequence:
// attest → key release → subscribe.
func NewContainerReplicaSet(bus *eventbus.Bus, svc *attest.Service, kb *attest.KeyBroker, name string, handler Handler, cfg ReplicaSetConfig, spec ContainerSpec) (*ReplicaSet, error) {
	if spec.Registry == nil || spec.CAS == nil || spec.Image == "" {
		return nil, errors.New("microsvc: incomplete container spec")
	}
	if spec.Cache == nil {
		spec.Cache = container.NewBlobCache()
	}
	boot := func(id string) (bootResult, error) {
		eng, err := container.LaunchNode(svc, id, spec.Registry, cfg.Platform)
		if err != nil {
			return bootResult{}, err
		}
		eng.Cache = spec.Cache
		c, err := eng.Run(spec.Image, spec.Tag, spec.CAS)
		if err != nil {
			return bootResult{}, err
		}
		enc := c.Runtime.Enclave()
		arena, err := enc.HeapArena()
		if err != nil {
			c.Stop()
			return bootResult{}, err
		}
		return bootResult{enc: enc, arena: arena, quoter: eng.Quoter, stop: c.Stop}, nil
	}
	return newReplicaSet(bus, kb, name, handler, cfg, boot)
}

func newReplicaSet(bus *eventbus.Bus, kb *attest.KeyBroker, name string, handler Handler, cfg ReplicaSetConfig, boot func(string) (bootResult, error)) (*ReplicaSet, error) {
	if handler == nil {
		return nil, errors.New("microsvc: nil handler")
	}
	if bus == nil || kb == nil {
		return nil, errors.New("microsvc: replica set needs a bus and a key broker")
	}
	if cfg.InTopic == "" || cfg.OutTopic == "" {
		return nil, errors.New("microsvc: replica set needs in and out topics")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	rs := &ReplicaSet{
		name: name, bus: bus, broker: kb,
		handler: handler, cfg: cfg, boot: boot,
	}
	if cfg.Admission != nil {
		rs.adm = newAdmission(*cfg.Admission)
	}
	fe, err := rs.bootFront()
	if err != nil {
		return nil, err
	}
	rs.front = fe
	for i := 0; i < cfg.Replicas; i++ {
		if _, err := rs.Launch(); err != nil {
			rs.Stop()
			return nil, err
		}
	}
	return rs, nil
}

// bootFront boots the dispatcher through the same attested sequence as a
// replica and wires its accounted bus endpoints.
func (rs *ReplicaSet) bootFront() (*frontEnd, error) {
	br, err := rs.boot(rs.name + "/fe")
	if err != nil {
		return nil, err
	}
	keys, err := attest.FetchServiceKeys(br.enc, br.quoter, rs.broker, rs.name)
	if err != nil {
		br.stop()
		return nil, fmt.Errorf("microsvc %s: front-end key release: %w", rs.name, err)
	}
	inKey, ok := keys.Topic(rs.cfg.InTopic)
	if !ok {
		br.stop()
		return nil, fmt.Errorf("microsvc %s: no stream key released for topic %s", rs.name, rs.cfg.InTopic)
	}
	outKey, ok := keys.Topic(rs.cfg.OutTopic)
	if !ok {
		br.stop()
		return nil, fmt.Errorf("microsvc %s: no stream key released for topic %s", rs.name, rs.cfg.OutTopic)
	}
	acct := enclave.Accounting{Mem: br.enc.Memory(), Arena: br.arena}
	sub, err := eventbus.OpenSubscriber(eventbus.EndpointConfig{
		Bus: rs.bus, Topic: rs.cfg.InTopic, Key: inKey, Accounting: acct,
	})
	if err != nil {
		br.stop()
		return nil, err
	}
	pub, err := eventbus.OpenPublisher(eventbus.EndpointConfig{
		Bus: rs.bus, Topic: rs.cfg.OutTopic, Key: outKey, Accounting: acct,
	})
	if err != nil {
		sub.Close()
		br.stop()
		return nil, err
	}
	box, err := cryptbox.NewBox(keys.Request)
	if err != nil {
		sub.Close()
		br.stop()
		return nil, err
	}
	return &frontEnd{
		enc: br.enc, stop: br.stop, sub: sub, pub: pub, box: box,
		shedAAD: shedAADFor(rs.name),
	}, nil
}

// Replica is one enclave-per-replica worker of a ReplicaSet. All counters
// are atomics; sampling never blocks the serve path.
type Replica struct {
	id    string
	set   *ReplicaSet
	enc   *enclave.Enclave
	box   *cryptbox.Box
	stage uint64
	stop  func()

	// reqAAD / respAAD are the service-bound frame AADs, precomputed at
	// launch so the serve loop never rebuilds the strings per request.
	reqAAD  []byte
	respAAD []byte

	served      atomic.Uint64
	failed      atomic.Uint64
	lastCycles  atomic.Uint64
	lastServed  atomic.Uint64
	crashed     atomic.Bool
	retired     atomic.Bool
	unreachable atomic.Bool
	slow        atomic.Uint64

	mu      sync.Mutex
	pending []request
}

// launchReplica runs the boot sequence for one replica.
func (rs *ReplicaSet) launchReplica(id string) (*Replica, error) {
	br, err := rs.boot(id)
	if err != nil {
		return nil, err
	}
	keys, err := attest.FetchServiceKeys(br.enc, br.quoter, rs.broker, rs.name)
	if err != nil {
		br.stop()
		return nil, fmt.Errorf("microsvc %s: replica %s key release: %w", rs.name, id, err)
	}
	box, err := cryptbox.NewBox(keys.Request)
	if err != nil {
		br.stop()
		return nil, err
	}
	return &Replica{
		id: id, set: rs, enc: br.enc, box: box,
		stage:   br.arena.Alloc(replicaStageBytes),
		stop:    br.stop,
		reqAAD:  reqAADFor(rs.name),
		respAAD: respAADFor(rs.name),
	}, nil
}

// Launch boots a new attested replica and adds it to the routing order.
// It implements orchestrator.Launcher.
func (rs *ReplicaSet) Launch() (orchestrator.Replica, error) {
	rs.mu.Lock()
	rs.nextID++
	id := fmt.Sprintf("%s/r%04d", rs.name, rs.nextID)
	rs.mu.Unlock()
	r, err := rs.launchReplica(id)
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	rs.replicas = append(rs.replicas, r)
	rs.launched++
	rs.mu.Unlock()
	return r, nil
}

// Retire removes a replica from the routing order, requeues its unserved
// requests for redistribution on the next Step, folds its final accounting
// into the set-lifetime totals, and tears its enclave down. It implements
// orchestrator.Launcher.
func (rs *ReplicaSet) Retire(id string) error {
	rs.mu.Lock()
	idx := -1
	for i, r := range rs.replicas {
		if r.id == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		rs.mu.Unlock()
		return fmt.Errorf("microsvc %s: no replica %s", rs.name, id)
	}
	r := rs.replicas[idx]
	rs.replicas = append(rs.replicas[:idx:idx], rs.replicas[idx+1:]...)
	r.retired.Store(true)
	r.mu.Lock()
	rs.requeue = append(rs.requeue, r.pending...)
	r.pending = nil
	r.mu.Unlock()
	c := r.enc.Memory().Cycles()
	rs.retired.cycles += c
	if c > rs.retired.maxCycles {
		rs.retired.maxCycles = c
	}
	rs.retired.faults += r.enc.Memory().Faults()
	rs.retired.served += r.served.Load()
	rs.retired.failed += r.failed.Load()
	rs.mu.Unlock()
	r.stop()
	return nil
}

// Stop tears the whole set down: every replica and the front-end. The
// final accounting of live replicas is folded into the retired totals
// first, so Totals() after Stop still reports set-lifetime figures.
func (rs *ReplicaSet) Stop() {
	rs.mu.Lock()
	reps := rs.replicas
	rs.replicas = nil
	for _, r := range reps {
		r.retired.Store(true)
		c := r.enc.Memory().Cycles()
		rs.retired.cycles += c
		if c > rs.retired.maxCycles {
			rs.retired.maxCycles = c
		}
		rs.retired.faults += r.enc.Memory().Faults()
		rs.retired.served += r.served.Load()
		rs.retired.failed += r.failed.Load()
	}
	rs.mu.Unlock()
	for _, r := range reps {
		r.stop()
	}
	if rs.front != nil {
		rs.front.sub.Close()
		rs.front.stop()
	}
}

// Name returns the service name.
func (rs *ReplicaSet) Name() string { return rs.name }

// Replicas returns the current replica count.
func (rs *ReplicaSet) Replicas() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.replicas)
}

// ReplicaHandles returns the current replicas as orchestrator handles, in
// routing order — what orchestrator.New takes as the initial set.
func (rs *ReplicaSet) ReplicaHandles() []orchestrator.Replica {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]orchestrator.Replica, len(rs.replicas))
	for i, r := range rs.replicas {
		out[i] = r
	}
	return out
}

// Backlog is the set's total unserved work: frames still queued on the
// bus (via the subscriber's Depth hook — one lock acquisition, nothing
// drained), requeued requests awaiting redistribution, and every
// replica's pending queue.
func (rs *ReplicaSet) Backlog() int {
	n := rs.front.sub.Depth()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n += len(rs.requeue)
	if rs.adm != nil {
		n += rs.adm.depth()
	}
	for _, r := range rs.replicas {
		n += r.Depth()
	}
	return n
}

// InjectCrash marks the i-th replica (routing order) crashed: it stops
// serving and samples unhealthy until the orchestrator replaces it.
// Returns the replica ID, or "" when the index is out of range.
func (rs *ReplicaSet) InjectCrash(i int) string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if i < 0 || i >= len(rs.replicas) {
		return ""
	}
	rs.replicas[i].crashed.Store(true)
	return rs.replicas[i].id
}

// InjectCrashID crashes the replica with the given ID (the node-failure
// path, where the cluster knows which replicas lived on the dead node).
// Returns whether the ID named a live replica.
func (rs *ReplicaSet) InjectCrashID(id string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, r := range rs.replicas {
		if r.id == id {
			r.crashed.Store(true)
			return true
		}
	}
	return false
}

// SetReplicaUnreachable marks the replica with the given ID unreachable
// (a network partition cut its node off) or reachable again. An
// unreachable replica sheds everything routed to it, refuses to serve its
// queue, and samples unhealthy until the orchestrator reschedules it.
// Returns whether the ID named a live replica.
func (rs *ReplicaSet) SetReplicaUnreachable(id string, v bool) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, r := range rs.replicas {
		if r.id == id {
			r.unreachable.Store(v)
			return true
		}
	}
	return false
}

// UnreachableStats returns the partition counters: requests shed because
// their route landed on an unreachable replica, and the fail-open
// tripwire of requests an unreachable replica actually served (must stay
// zero).
func (rs *ReplicaSet) UnreachableStats() (shed, served uint64) {
	return rs.shedUnreachable.Load(), rs.servedViaUnreachable.Load()
}

// InjectSlow charges the i-th replica (routing order) extra cycles per
// request — a degraded node or a noisy neighbour. Returns the replica ID,
// or "" when the index is out of range.
func (rs *ReplicaSet) InjectSlow(i int, extra sim.Cycles) string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if i < 0 || i >= len(rs.replicas) {
		return ""
	}
	rs.replicas[i].slow.Store(uint64(extra))
	return rs.replicas[i].id
}

// PlaneTotals is the set-lifetime accounting across every replica ever
// launched (live and retired). SerialCycles is the summed per-replica
// total; CriticalCycles the largest single replica's — the shard-per-core
// decomposition the storage and routing layers also report.
type PlaneTotals struct {
	SerialCycles   sim.Cycles
	CriticalCycles sim.Cycles
	Faults         uint64
	Served         uint64
	Failed         uint64
	Launched       int
	Live           int
	FrontCycles    sim.Cycles
	FrontFaults    uint64
	// Shed / Splits are admission-controller lifetime totals (zero when
	// admission is disabled).
	Shed   uint64
	Splits uint64
}

// Totals returns the set-lifetime accounting.
func (rs *ReplicaSet) Totals() PlaneTotals {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	t := PlaneTotals{
		SerialCycles:   rs.retired.cycles,
		CriticalCycles: rs.retired.maxCycles,
		Faults:         rs.retired.faults,
		Served:         rs.retired.served,
		Failed:         rs.retired.failed,
		Launched:       rs.launched,
		Live:           len(rs.replicas),
	}
	for _, r := range rs.replicas {
		c := r.enc.Memory().Cycles()
		t.SerialCycles += c
		if c > t.CriticalCycles {
			t.CriticalCycles = c
		}
		t.Faults += r.enc.Memory().Faults()
		t.Served += r.served.Load()
		t.Failed += r.failed.Load()
	}
	t.FrontCycles = rs.front.enc.Memory().Cycles()
	t.FrontFaults = rs.front.enc.Memory().Faults()
	if rs.adm != nil {
		t.Shed = rs.adm.shedAll
		t.Splits = rs.adm.splits
	}
	return t
}

// StatsName implements stats.Source.
func (rs *ReplicaSet) StatsName() string { return "plane" }

// Snapshot implements stats.Source: the set-lifetime totals as a flat
// metric map.
func (rs *ReplicaSet) Snapshot() map[string]float64 {
	t := rs.Totals()
	shedU, servedU := rs.UnreachableStats()
	return map[string]float64{
		"serial_cycles":          float64(t.SerialCycles),
		"critical_cycles":        float64(t.CriticalCycles),
		"faults":                 float64(t.Faults),
		"served":                 float64(t.Served),
		"failed":                 float64(t.Failed),
		"launched":               float64(t.Launched),
		"live":                   float64(t.Live),
		"front_cycles":           float64(t.FrontCycles),
		"front_faults":           float64(t.FrontFaults),
		"shed":                   float64(t.Shed),
		"splits":                 float64(t.Splits),
		"shed_unreachable":       float64(shedU),
		"served_via_unreachable": float64(servedU),
	}
}

// AdmissionStats returns a snapshot of the admission controller — queue
// depths, per-tenant admit/dispatch/shed counters. The zero snapshot when
// admission is disabled.
func (rs *ReplicaSet) AdmissionStats() AdmissionSnapshot {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.adm == nil {
		return AdmissionSnapshot{ByTenant: map[string]TenantSnapshot{}}
	}
	return rs.adm.snapshot()
}

// LatencyPercentiles reduces the admission queue-wait histogram to
// p50/p95/max in sim-ms (zeros when admission is disabled).
func (rs *ReplicaSet) LatencyPercentiles() (p50, p95, max float64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.adm == nil {
		return 0, 0, 0
	}
	return rs.adm.latencyPercentiles(rs.adm.cfg.TickMillis)
}

// ID implements orchestrator.Replica.
func (r *Replica) ID() string { return r.id }

// Depth returns the replica's pending-queue length.
func (r *Replica) Depth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Stats returns the replica's request counters without blocking the serve
// path.
func (r *Replica) Stats() Stats {
	return Stats{Served: r.served.Load(), Failed: r.failed.Load()}
}

// Sample implements orchestrator.Replica: queue depth, the per-request
// service cost of the last serve tick, and health.
func (r *Replica) Sample() orchestrator.Metrics {
	m := orchestrator.Metrics{
		QueueDepth: r.Depth(),
		Healthy:    !r.crashed.Load() && !r.unreachable.Load(),
		// Shed is a set-level figure (admission happens before routing);
		// every replica reports the same last-step count, per the
		// orchestrator.Metrics contract.
		Shed: int(r.set.lastShed.Load()),
	}
	if n := r.lastServed.Load(); n > 0 {
		m.ServiceCycles = sim.Cycles(r.lastCycles.Load() / n)
	}
	return m
}

// enqueue appends a routed request to the replica's pending queue.
func (r *Replica) enqueue(q request) {
	r.mu.Lock()
	r.pending = append(r.pending, q)
	r.mu.Unlock()
}

// chargeStage charges n bytes through the replica's staging window in
// window-sized chunks, within the given span.
func (r *Replica) chargeStage(sp *enclave.Span, n int, write bool) {
	for n > 0 {
		c := n
		if c > replicaStageBytes {
			c = replicaStageBytes
		}
		sp.Access(r.stage, c, write)
		n -= c
	}
}

// serveOne processes one request inside the replica's enclave: charge the
// sealed request through the staging window, open it with the request key,
// run the handler, seal and charge the reply. Returns the complete reply
// frame (nil for a dropped or reply-less message) and whether the request
// counted as served. The frame header is laid out first and the reply
// sealed directly after it with SealAppend, so frame assembly costs one
// exact-capacity allocation instead of seal-then-copy.
func (r *Replica) serveOne(q request) ([]byte, bool) {
	mem := r.enc.Memory()
	sp := mem.BeginSpan()
	r.chargeStage(sp, len(q.sealed), false)
	if extra := r.slow.Load(); extra > 0 {
		sp.ChargeCPU(sim.Cycles(extra))
	}
	if rc := r.set.cfg.RequestCycles; rc > 0 {
		sp.ChargeCPU(rc)
	}
	body, err := r.box.Open(q.sealed, r.reqAAD)
	if err != nil {
		sp.End()
		r.failed.Add(1)
		return nil, false
	}
	resp, err := r.set.handler(body)
	if err != nil {
		sp.End()
		r.failed.Add(1)
		return nil, false
	}
	var frame []byte
	if len(resp) > 0 {
		hdr := appendReplyHeader(make([]byte, 0, replyFrameCap(q, len(resp)+r.box.Overhead())), q)
		sealedStart := len(hdr)
		frame, err = r.box.SealAppend(hdr, resp, r.respAAD)
		if err != nil {
			sp.End()
			r.failed.Add(1)
			return nil, false
		}
		r.chargeStage(sp, len(frame)-sealedStart, true)
	}
	sp.End()
	r.served.Add(1)
	return frame, true
}

// serveTick serves pending requests up to the set's tick budget (always at
// least one when any are pending), entering the enclave once for the whole
// batch. It returns the sealed reply frames in request order plus the
// served/failed counts of this tick.
func (r *Replica) serveTick() (replies [][]byte, served, failed int) {
	if r.crashed.Load() || r.unreachable.Load() {
		// Crashed replicas are gone; unreachable ones are cut off by a
		// partition — neither may serve. An unreachable replica's pending
		// queue stays put until the orchestrator retires it (requeue).
		r.lastCycles.Store(0)
		r.lastServed.Store(0)
		return nil, 0, 0
	}
	// Take ownership of the current queue: a Retire racing with this tick
	// requeues only what it can see, so no request is ever served twice or
	// trimmed away unserved.
	r.mu.Lock()
	pending := r.pending
	r.pending = nil
	r.mu.Unlock()
	if len(pending) == 0 {
		r.lastCycles.Store(0)
		r.lastServed.Store(0)
		return nil, 0, 0
	}
	mem := r.enc.Memory()
	start := mem.Cycles()
	if err := r.enc.EEnter(); err != nil {
		// The enclave is gone (torn down by a racing Retire, or broken).
		// Mark the replica unhealthy and hand the snapshot back so the
		// work is requeued, not stranded.
		r.crashed.Store(true)
		r.mu.Lock()
		r.pending = append(pending, r.pending...)
		r.mu.Unlock()
		r.requeueIfRetired()
		return nil, 0, 0
	}
	budget := r.set.cfg.TickBudget
	n := 0
	for _, q := range pending {
		frame, ok := r.serveOne(q)
		n++
		if ok {
			served++
			if frame != nil {
				replies = append(replies, frame)
			}
		} else {
			failed++
		}
		if budget > 0 && mem.Cycles()-start >= budget {
			break
		}
	}
	_ = r.enc.EExit()
	// Hand the unserved remainder back, ahead of anything enqueued since
	// the snapshot. If the replica was retired mid-tick its queue belongs
	// to the set now — requeue rather than strand the work.
	rest := pending[n:len(pending):len(pending)]
	r.mu.Lock()
	r.pending = append(rest, r.pending...)
	r.mu.Unlock()
	r.requeueIfRetired()
	r.lastCycles.Store(uint64(mem.Cycles() - start))
	r.lastServed.Store(uint64(served))
	if served > 0 && r.unreachable.Load() {
		// Fail-open tripwire: an unreachable replica served traffic. The
		// entry guard makes this structurally impossible; the bench gate
		// pins the counter to zero so a future regression cannot silently
		// serve through a partition.
		r.set.servedViaUnreachable.Add(uint64(served))
	}
	return replies, served, failed
}

// requeueIfRetired moves the replica's queue back to the set when a Retire
// raced with the current serve tick — its queue belongs to the set now.
func (r *Replica) requeueIfRetired() {
	if !r.retired.Load() {
		return
	}
	rs := r.set
	rs.mu.Lock()
	r.mu.Lock()
	rs.requeue = append(rs.requeue, r.pending...)
	r.pending = nil
	r.mu.Unlock()
	rs.mu.Unlock()
}

// StepStats summarises one Step.
type StepStats struct {
	// Polled counts frames drained from the bus this step.
	Polled int
	// Dropped counts malformed frames discarded during routing.
	Dropped int
	// Routed counts requests distributed to replicas (polled + requeued).
	Routed int
	// Served / Failed count requests processed this step.
	Served int
	Failed int
	// Replies counts reply frames published to the out topic.
	Replies int
	// Shed counts arrivals the admission controller rejected this step
	// (each answered with a retry-after reply; always 0 without admission).
	Shed int
}

// Step runs one serve tick of the whole set: the front-end polls a batch
// of sealed frames off the bus, routes them (plus any requeued work) to
// replicas by routing-key hash over the current replica order, the
// replicas serve their pending queues within the tick budget — in parallel
// across at most Workers goroutines, each replica on its own simulated
// platform — and the replies are published in replica order.
func (rs *ReplicaSet) Step() (StepStats, error) {
	var st StepStats
	frames, err := rs.front.sub.PollBatch(rs.cfg.PollBatch)
	if err != nil {
		return st, err
	}
	st.Polled = len(frames)

	rs.mu.Lock()
	reqs := rs.requeue
	rs.requeue = nil
	reps := append([]*Replica(nil), rs.replicas...)
	adm := rs.adm
	rs.mu.Unlock()
	var arrivals []request
	for _, f := range frames {
		q, shedFlag, err := decodeFrameAny(f)
		if err != nil || shedFlag {
			// A malformed frame means a buggy or malicious holder of the
			// topic key (the topic seal already authenticated); a shed
			// reply on the in topic is equally out of place. Drop it
			// and keep going: aborting here would lose the requeued work
			// and every valid frame of the batch.
			st.Dropped++
			continue
		}
		arrivals = append(arrivals, q)
	}

	// Admission: arrivals pass the controller — queued per tenant, shed
	// with a retry-after reply on overflow, dispatched weighted-fair.
	// Requeued work (reqs) was already admitted once and bypasses the
	// controller: no double token charge, and no admitted request is ever
	// shed after the fact.
	var sheds []shedVerdict
	var dispatched []request
	if adm != nil {
		rs.mu.Lock()
		adm.beginStep()
		for _, q := range arrivals {
			if shed, retry := adm.offer(q); shed {
				sheds = append(sheds, shedVerdict{req: q, retryAfterMS: retry})
			}
		}
		if len(reps) > 0 {
			dispatched = adm.dispatch()
		}
		rs.mu.Unlock()
		st.Shed = len(sheds)
		rs.lastShed.Store(uint64(len(sheds)))
	} else {
		dispatched = arrivals
	}

	if len(reps) == 0 {
		// With admission, admitted-but-undispatched arrivals stay inside
		// the controller's tenant queues; without it they join the requeue
		// list like before.
		if adm == nil {
			reqs = append(reqs, dispatched...)
			dispatched = nil
		}
		if len(reqs) > 0 {
			rs.mu.Lock()
			rs.requeue = append(reqs, rs.requeue...)
			rs.mu.Unlock()
		}
		pubErr := rs.publishSheds(sheds, &st)
		if len(reqs) > 0 || (adm != nil && len(arrivals) > len(sheds)) {
			return st, ErrNoLiveReplicas
		}
		return st, pubErr
	}
	// deliver hands a routed request to its replica — unless the replica
	// is unreachable (its node partitioned away), in which case the
	// request is shed deterministically with a retry-after reply instead
	// of vanishing into a queue nothing will serve.
	unreachableRetry := 1.0
	if adm != nil && adm.cfg.TickMillis > 0 {
		unreachableRetry = adm.cfg.TickMillis
	}
	routed := 0
	deliver := func(q request, idx int) {
		r := reps[idx]
		if r.unreachable.Load() {
			sheds = append(sheds, shedVerdict{req: q, retryAfterMS: unreachableRetry})
			rs.shedUnreachable.Add(1)
			return
		}
		r.enqueue(q)
		routed++
	}
	for _, q := range reqs {
		deliver(q, routeIndex(q.key, len(reps)))
	}
	if adm != nil && len(dispatched) > 0 {
		// Hot-key routing works off a depth snapshot taken after the
		// requeue pass, so the split decision sees the straggler backlog
		// but never the effects of this step's own parallel serve.
		depths := make([]int, len(reps))
		for i, r := range reps {
			depths[i] = r.Depth()
		}
		rs.mu.Lock()
		for _, q := range dispatched {
			deliver(q, adm.routeFor(q.key, len(reps), depths))
		}
		rs.mu.Unlock()
	} else {
		for _, q := range dispatched {
			deliver(q, routeIndex(q.key, len(reps)))
		}
	}
	st.Routed = routed
	st.Shed = len(sheds)
	rs.lastShed.Store(uint64(len(sheds)))

	workers := rs.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type tickResult struct {
		replies        [][]byte
		served, failed int
	}
	results := make([]tickResult, len(reps))
	sim.ParallelFor(len(reps), workers, func(i int) {
		var res tickResult
		res.replies, res.served, res.failed = reps[i].serveTick()
		results[i] = res
	})
	var pubErr error
	for _, res := range results {
		st.Served += res.served
		st.Failed += res.failed
		if len(res.replies) == 0 {
			continue
		}
		// A publish failure (bus closed, back-pressure) must not discard
		// the later replicas' replies unattempted: keep flushing and
		// report the first error.
		if _, err := rs.front.pub.PublishBatch(res.replies); err != nil {
			if pubErr == nil {
				pubErr = err
			}
			continue
		}
		st.Replies += len(res.replies)
	}
	if err := rs.publishSheds(sheds, &st); err != nil && pubErr == nil {
		pubErr = err
	}
	return st, pubErr
}

// publishSheds seals and publishes the step's shed replies, after the
// serve replies: each carries the retry-after hint (8-byte float64 sim-ms)
// sealed under the shed AAD, framed v2 with the shed flag and the original
// request's tenant envelope so the client can correlate.
func (rs *ReplicaSet) publishSheds(sheds []shedVerdict, st *StepStats) error {
	if len(sheds) == 0 {
		return nil
	}
	frames := make([][]byte, 0, len(sheds))
	var firstErr error
	overhead := rs.front.box.Overhead()
	for _, sv := range sheds {
		var body [8]byte
		binary.BigEndian.PutUint64(body[:], math.Float64bits(sv.retryAfterMS))
		hdr := appendFrameV2Header(
			make([]byte, 0, frameV2HeaderLen(sv.req.key, sv.req.meta)+8+overhead),
			sv.req.key, sv.req.meta, frameFlagShed)
		frame, err := rs.front.box.SealAppend(hdr, body[:], rs.front.shedAAD)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		frames = append(frames, frame)
	}
	if len(frames) > 0 {
		if _, err := rs.front.pub.PublishBatch(frames); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			st.Replies += len(frames)
		}
	}
	return firstErr
}

// routeIndex hashes a routing key onto a replica slot (FNV-1a mod n) — a
// pure function of the key and the replica order, so routing is identical
// across runs and worker counts.
func routeIndex(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// reqAADFor / respAADFor / shedAADFor bind plane frames to the service and
// direction, matching the single-service AADs so a reply can never replay
// as a request — and a shed notice can never replay as a served reply.
func reqAADFor(name string) []byte  { return []byte("req|" + name) }
func respAADFor(name string) []byte { return []byte("resp|" + name) }
func shedAADFor(name string) []byte { return []byte("shed|" + name) }

// appendFrameHeader appends the legacy frame header (2-byte big-endian key
// length, then the key) to b.
func appendFrameHeader(b []byte, key string) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(key)))
	b = append(b, l[:]...)
	return append(b, key...)
}

// encodeFrame frames a routing key and a sealed body for the bus: 2-byte
// big-endian key length, the key, the sealed body. The key is cleartext
// routing metadata (like a topic name); the body stays sealed end to end.
func encodeFrame(key string, sealed []byte) []byte {
	b := appendFrameHeader(make([]byte, 0, 2+len(key)+len(sealed)), key)
	return append(b, sealed...)
}

// decodeFrame splits a frame into routing key and sealed body.
func decodeFrame(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrBadFrame
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, ErrBadFrame
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// v2 frames carry the tenant envelope. The leading key-length slot holds
// the reserved magic (no legacy key is 64 KiB−1 long — SendBatch rejects
// it), so the two formats coexist on one topic:
//
//	0xFF 0xFF | flags u8 | tlen u8 | tenant | id u64 | klen u16 | key | sealed
//
// flags bit 0 marks a shed reply (sealed body = retry-after, not a
// response). Everything before sealed is cleartext routing metadata, like
// the legacy key — tenant IDs are account names, not payload.
const (
	frameMagic    = 0xFFFF
	frameFlagShed = 0x01
)

// appendFrameV2Header appends everything of a v2 frame before the sealed
// body: magic, flags, tenant envelope, request ID and routing key.
func appendFrameV2Header(b []byte, key string, meta frameMeta, flags byte) []byte {
	var w [8]byte
	binary.BigEndian.PutUint16(w[:2], frameMagic)
	b = append(b, w[0], w[1], flags, byte(len(meta.tenant)))
	b = append(b, meta.tenant...)
	binary.BigEndian.PutUint64(w[:], meta.id)
	b = append(b, w[:]...)
	binary.BigEndian.PutUint16(w[:2], uint16(len(key)))
	b = append(b, w[0], w[1])
	return append(b, key...)
}

// frameV2HeaderLen is the byte length appendFrameV2Header emits.
func frameV2HeaderLen(key string, meta frameMeta) int {
	return 2 + 1 + 1 + len(meta.tenant) + 8 + 2 + len(key)
}

// encodeFrameV2 frames a request or reply with its tenant envelope.
func encodeFrameV2(key string, sealed []byte, meta frameMeta, flags byte) []byte {
	b := appendFrameV2Header(make([]byte, 0, frameV2HeaderLen(key, meta)+len(sealed)), key, meta, flags)
	return append(b, sealed...)
}

// replyFrameCap is the exact frame size of a reply to q whose sealed body
// is sealedLen bytes — the capacity serveOne preallocates so SealAppend
// never regrows the buffer.
func replyFrameCap(q request, sealedLen int) int {
	if q.meta.v2 {
		return frameV2HeaderLen(q.key, q.meta) + sealedLen
	}
	return 2 + len(q.key) + sealedLen
}

// appendReplyHeader appends the header of a reply to q in the same frame
// version as the request (see encodeReply).
func appendReplyHeader(b []byte, q request) []byte {
	if q.meta.v2 {
		return appendFrameV2Header(b, q.key, q.meta, 0)
	}
	return appendFrameHeader(b, q.key)
}

// decodeFrameAny decodes either frame version into a request; the bool
// reports the v2 shed flag (always false for legacy frames).
func decodeFrameAny(b []byte) (request, bool, error) {
	if len(b) < 2 || binary.BigEndian.Uint16(b) != frameMagic {
		key, sealed, err := decodeFrame(b)
		if err != nil {
			return request{}, false, err
		}
		return request{key: key, sealed: sealed}, false, nil
	}
	if len(b) < 4 {
		return request{}, false, ErrBadFrame
	}
	flags := b[2]
	tn := int(b[3])
	off := 4
	if len(b) < off+tn+8+2 {
		return request{}, false, ErrBadFrame
	}
	tenant := string(b[off : off+tn])
	off += tn
	id := binary.BigEndian.Uint64(b[off:])
	off += 8
	kn := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+kn {
		return request{}, false, ErrBadFrame
	}
	q := request{
		key:    string(b[off : off+kn]),
		sealed: b[off+kn:],
		meta:   frameMeta{v2: true, tenant: tenant, id: id},
	}
	return q, flags&frameFlagShed != 0, nil
}

// encodeReply frames a served reply in the same version as its request, so
// tenant-tagged requests get their envelope (tenant, id) echoed back and
// legacy clients see byte-identical legacy frames. The serve path fuses
// framing into the seal (appendReplyHeader + SealAppend); this whole-frame
// form remains for tests pinning the byte layout.
func encodeReply(q request, sealed []byte) []byte {
	return append(appendReplyHeader(make([]byte, 0, replyFrameCap(q, len(sealed))), q), sealed...)
}

// PlaneRequest is one client request: a cleartext routing key and the
// plaintext body (sealed by the client before it touches the bus).
type PlaneRequest struct {
	Key  string
	Body []byte
}

// PlaneReply is one opened reply. Tenant and ID echo the request envelope
// for tenant-tagged requests (zero values for legacy ones). Shed marks an
// admission rejection: Body is nil and RetryAfterSimMS carries the
// server's deterministic hint.
type PlaneReply struct {
	Key             string
	Body            []byte
	Tenant          string
	ID              uint64
	Shed            bool
	RetryAfterSimMS float64
}

// RetryPolicy shapes a client's deterministic retry behaviour: a shed
// request is re-sent after the server's retry-after hint scaled by
// exponential backoff (hint × 2^(attempt−1), all in sim-ms), up to
// MaxAttempts total sends.
type RetryPolicy struct {
	// MaxAttempts bounds total send attempts per request, the first
	// included (default 4).
	MaxAttempts int
}

// inflightReq is one tenant-tagged request the client can still re-send.
type inflightReq struct {
	meta    frameMeta
	key     string
	body    []byte
	attempt int
	dueMS   float64
}

// Transport moves sealed plane frames between a client and a service's
// topics. The default is the in-process bus transport; the wire package
// provides an HTTP transport with identical semantics. SendFrames must
// deliver a batch atomically in order; RecvFrames drains every frame
// currently pending for this client.
type Transport interface {
	SendFrames(frames [][]byte) error
	RecvFrames() ([][]byte, error)
	Close()
}

// busTransport is the in-process Transport: a bus publisher/subscriber
// pair on the service's in/out topics.
type busTransport struct {
	pub *eventbus.Publisher
	sub *eventbus.Subscriber
}

func (t *busTransport) SendFrames(frames [][]byte) error {
	_, err := t.pub.PublishBatch(frames)
	return err
}

func (t *busTransport) RecvFrames() ([][]byte, error) { return t.sub.Receive() }

func (t *busTransport) Close() { t.sub.Close() }

// PlaneClient is the owner-side endpoint of a replica set: it holds the
// service request key (the owner registered the keys with the KeyBroker in
// the first place), seals request bodies before they touch the transport
// and opens replies coming back — so the transport, in-process bus or HTTP
// wire alike, only ever carries sealed frames.
type PlaneClient struct {
	name string
	box  *cryptbox.Box
	tr   Transport

	// Frame AADs, precomputed once per client instead of per request.
	reqAAD  []byte
	respAAD []byte
	shedAAD []byte

	// Retry state (nil retry = fire-and-forget, the legacy behaviour).
	// All of it is driven by the caller's sim-ms clock, never a host
	// clock: Poll schedules, DueRetries re-sends.
	retry            *RetryPolicy
	nextID           uint64
	inflight         map[uint64]*inflightReq
	retryQ           []*inflightReq
	retriesSent      uint64
	retriesAbandoned uint64
}

// NewPlaneClient builds a client for the named service from its key set,
// wired to the in-process bus transport.
func NewPlaneClient(bus *eventbus.Bus, name string, keys attest.ServiceKeys, inTopic, outTopic string) (*PlaneClient, error) {
	inKey, ok := keys.Topic(inTopic)
	if !ok {
		return nil, fmt.Errorf("microsvc: client has no stream key for %s", inTopic)
	}
	outKey, ok := keys.Topic(outTopic)
	if !ok {
		return nil, fmt.Errorf("microsvc: client has no stream key for %s", outTopic)
	}
	pub, err := eventbus.NewPublisher(bus, inTopic, inKey)
	if err != nil {
		return nil, err
	}
	sub, err := eventbus.NewSubscriber(bus, outTopic, outKey)
	if err != nil {
		return nil, err
	}
	return NewPlaneClientTransport(name, keys.Request, &busTransport{pub: pub, sub: sub})
}

// NewPlaneClientTransport builds a client that reaches the service through
// an arbitrary Transport (e.g. the wire package's HTTP transport). The
// request key stays client-side: bodies are sealed before SendFrames ever
// sees them.
func NewPlaneClientTransport(name string, requestKey cryptbox.Key, tr Transport) (*PlaneClient, error) {
	if tr == nil {
		return nil, errors.New("microsvc: nil transport")
	}
	box, err := cryptbox.NewBox(requestKey)
	if err != nil {
		return nil, err
	}
	return &PlaneClient{
		name: name, box: box, tr: tr,
		reqAAD:  reqAADFor(name),
		respAAD: respAADFor(name),
		shedAAD: shedAADFor(name),
	}, nil
}

// SendBatch seals a batch of requests and publishes it in one bus
// transaction.
func (c *PlaneClient) SendBatch(reqs []PlaneRequest) error {
	if len(reqs) == 0 {
		return nil
	}
	frames := make([][]byte, len(reqs))
	for i, q := range reqs {
		if len(q.Key) >= 0xFFFF {
			// 0xFFFF is the v2 frame magic, reserved.
			return fmt.Errorf("%w: routing key longer than 64 KiB-2", ErrBadFrame)
		}
		hdr := appendFrameHeader(make([]byte, 0, 2+len(q.Key)+len(q.Body)+c.box.Overhead()), q.Key)
		frame, err := c.box.SealAppend(hdr, q.Body, c.reqAAD)
		if err != nil {
			return err
		}
		frames[i] = frame
	}
	return c.tr.SendFrames(frames)
}

// SendTenant seals and publishes a batch of requests tagged with the given
// tenant ID (v2 frames). Each request gets a fresh monotonically
// increasing ID, echoed in its reply; with retry enabled the client keeps
// the request re-sendable until it is served or abandoned.
func (c *PlaneClient) SendTenant(tenant string, reqs []PlaneRequest) error {
	_, err := c.SendTenantIDs(tenant, reqs)
	return err
}

// SendTenantIDs is SendTenant returning the request IDs it assigned, in
// request order — what a load generator needs to correlate replies (served
// and shed alike) back to send timestamps.
func (c *PlaneClient) SendTenantIDs(tenant string, reqs []PlaneRequest) ([]uint64, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if len(tenant) > 0xFF {
		return nil, fmt.Errorf("%w: tenant ID longer than 255 bytes", ErrBadFrame)
	}
	frames := make([][]byte, len(reqs))
	metas := make([]frameMeta, len(reqs))
	ids := make([]uint64, len(reqs))
	for i, q := range reqs {
		if len(q.Key) >= 0xFFFF {
			return nil, fmt.Errorf("%w: routing key longer than 64 KiB-2", ErrBadFrame)
		}
		c.nextID++
		metas[i] = frameMeta{v2: true, tenant: tenant, id: c.nextID}
		ids[i] = c.nextID
		hdr := appendFrameV2Header(
			make([]byte, 0, frameV2HeaderLen(q.Key, metas[i])+len(q.Body)+c.box.Overhead()),
			q.Key, metas[i], 0)
		frame, err := c.box.SealAppend(hdr, q.Body, c.reqAAD)
		if err != nil {
			return nil, err
		}
		frames[i] = frame
	}
	if err := c.tr.SendFrames(frames); err != nil {
		return nil, err
	}
	if c.retry != nil {
		for i, q := range reqs {
			c.inflight[metas[i].id] = &inflightReq{
				meta: metas[i], key: q.Key, body: q.Body, attempt: 1,
			}
		}
	}
	return ids, nil
}

// Send seals and publishes one request.
func (c *PlaneClient) Send(key string, body []byte) error {
	return c.SendBatch([]PlaneRequest{{Key: key, Body: body}})
}

// EnableRetry turns on deterministic shed-driven retry for tenant-tagged
// requests.
func (c *PlaneClient) EnableRetry(p RetryPolicy) {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	c.retry = &p
	if c.inflight == nil {
		c.inflight = make(map[uint64]*inflightReq)
	}
}

// RetryStats reports retry totals: re-sends, abandons (MaxAttempts
// exhausted), and requests still awaiting a served reply.
func (c *PlaneClient) RetryStats() (sent, abandoned uint64, inflight int) {
	return c.retriesSent, c.retriesAbandoned, len(c.inflight)
}

// Replies drains, authenticates and opens every pending reply. Equivalent
// to Poll(0) — use Poll from simulated-time loops so retry backoff is
// anchored at the right sim-ms.
func (c *PlaneClient) Replies() ([]PlaneReply, error) {
	return c.Poll(0)
}

// Poll drains pending replies at simulated time nowMS. Served replies
// clear their in-flight entries; shed replies schedule a retry at
// nowMS + retryAfter × 2^(attempt−1) sim-ms (or abandon the request once
// MaxAttempts is exhausted). The caller re-sends due retries with
// DueRetries.
func (c *PlaneClient) Poll(nowMS float64) ([]PlaneReply, error) {
	frames, err := c.tr.RecvFrames()
	if err != nil {
		return nil, err
	}
	out := make([]PlaneReply, 0, len(frames))
	for _, f := range frames {
		q, shedFlag, err := decodeFrameAny(f)
		if err != nil {
			return nil, err
		}
		if shedFlag {
			raw, err := c.box.Open(q.sealed, c.shedAAD)
			if err != nil || len(raw) != 8 {
				return nil, ErrSealedRequest
			}
			rep := PlaneReply{
				Key: q.key, Tenant: q.meta.tenant, ID: q.meta.id,
				Shed:            true,
				RetryAfterSimMS: math.Float64frombits(binary.BigEndian.Uint64(raw)),
			}
			if c.retry != nil {
				if fl, ok := c.inflight[q.meta.id]; ok {
					if fl.attempt >= c.retry.MaxAttempts {
						delete(c.inflight, q.meta.id)
						c.retriesAbandoned++
					} else {
						fl.dueMS = nowMS + rep.RetryAfterSimMS*float64(uint64(1)<<(fl.attempt-1))
						c.retryQ = append(c.retryQ, fl)
					}
				}
			}
			out = append(out, rep)
			continue
		}
		body, err := c.box.Open(q.sealed, c.respAAD)
		if err != nil {
			return nil, ErrSealedRequest
		}
		if q.meta.v2 && c.retry != nil {
			delete(c.inflight, q.meta.id)
		}
		out = append(out, PlaneReply{Key: q.key, Body: body, Tenant: q.meta.tenant, ID: q.meta.id})
	}
	return out, nil
}

// DueRetries re-sends every scheduled retry due at simulated time nowMS,
// in (due time, request ID) order — deterministic regardless of reply
// arrival interleavings. Returns how many were re-sent.
func (c *PlaneClient) DueRetries(nowMS float64) (int, error) {
	if c.retry == nil || len(c.retryQ) == 0 {
		return 0, nil
	}
	var due []*inflightReq
	rest := c.retryQ[:0]
	for _, fl := range c.retryQ {
		if fl.dueMS <= nowMS {
			due = append(due, fl)
		} else {
			rest = append(rest, fl)
		}
	}
	c.retryQ = rest
	if len(due) == 0 {
		return 0, nil
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].dueMS != due[j].dueMS {
			return due[i].dueMS < due[j].dueMS
		}
		return due[i].meta.id < due[j].meta.id
	})
	frames := make([][]byte, len(due))
	for i, fl := range due {
		hdr := appendFrameV2Header(
			make([]byte, 0, frameV2HeaderLen(fl.key, fl.meta)+len(fl.body)+c.box.Overhead()),
			fl.key, fl.meta, 0)
		frame, err := c.box.SealAppend(hdr, fl.body, c.reqAAD)
		if err != nil {
			return 0, err
		}
		fl.attempt++
		frames[i] = frame
	}
	if err := c.tr.SendFrames(frames); err != nil {
		return 0, err
	}
	c.retriesSent += uint64(len(frames))
	return len(frames), nil
}

// Close releases the client's transport (for the bus transport, its
// subscription).
func (c *PlaneClient) Close() { c.tr.Close() }

// CheckFrame validates a sealed plane frame without decrypting anything:
// it must decode as either frame version and must not carry the shed flag
// (sheds are server→client only). Gateways use it to reject malformed
// ingress before a frame reaches a topic.
func CheckFrame(b []byte) error {
	_, shed, err := decodeFrameAny(b)
	if err != nil {
		return err
	}
	if shed {
		return fmt.Errorf("%w: shed flag on a request frame", ErrBadFrame)
	}
	return nil
}

// PeekFrameTenant reads a frame's cleartext tenant envelope and shed flag
// without materializing the rest (legacy frames map to the default tenant
// "") — the lean form gateways route reply mailboxes with.
func PeekFrameTenant(b []byte) (tenant string, shed bool, err error) {
	if len(b) < 2 || binary.BigEndian.Uint16(b) != frameMagic {
		if _, _, err := decodeFrame(b); err != nil {
			return "", false, err
		}
		return "", false, nil
	}
	if len(b) < 4 {
		return "", false, ErrBadFrame
	}
	tn := int(b[3])
	off := 4 + tn
	if len(b) < off+8+2 {
		return "", false, ErrBadFrame
	}
	kn := int(binary.BigEndian.Uint16(b[off+8:]))
	if len(b) < off+8+2+kn {
		return "", false, ErrBadFrame
	}
	return string(b[4:off]), b[2]&frameFlagShed != 0, nil
}
