package microsvc

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"securecloud/internal/attest"
	"securecloud/internal/cluster"
	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/eventbus"
	"securecloud/internal/image"
	"securecloud/internal/orchestrator"
	"securecloud/internal/registry"
	"securecloud/internal/sconert"
	"securecloud/internal/sim"
	"securecloud/internal/transfer"
)

// This file wires the replica set onto a simulated multi-node cluster:
// every replica launch asks the cluster's Placer for a node (scored by
// blob-cache locality against the service image's chunk set, and current
// load), boots through that node's link and cache, and the node-level
// fault operations (crash, partition, byzantine registry) map onto the
// replica-level primitives the orchestrator already reacts to.

// ClusterSpec configures a scenario's simulated cluster. Everything here
// is topology: it shapes placement, link charges and pull totals, and
// therefore the simulated figures.
type ClusterSpec struct {
	// Nodes is the node count (default 1); node 0 is the gateway the
	// front-end boots on.
	Nodes int
	// NodeCapacity bounds serving replicas per node (0 = unbounded). The
	// gateway front-end does not consume a slot.
	NodeCapacity int
	// Link is the inter-node chunk-transfer cost model (zero =
	// cluster.DefaultLinkCost).
	Link transfer.LinkCost
	// WarmWeight / LoadPenalty tune the locality placer (zero = defaults).
	WarmWeight  float64
	LoadPenalty float64
}

// scenarioImageKiB sizes the scenario image's entrypoint: big enough that
// a cold pull crosses the link as a double-digit chunk count, so warm vs
// cold boot cost is unmistakable in the pull stats.
const scenarioImageKiB = 640

// ClusterSet is a ReplicaSet whose replicas are placed on the nodes of a
// simulated cluster. It embeds the set (so it is the same
// orchestrator.Launcher) and adds the node-level fault surface.
type ClusterSet struct {
	*ReplicaSet
	cl          *cluster.Cluster
	imageChunks []cryptbox.Digest

	mu         sync.Mutex
	onNode     map[string]string // replica id → node name
	placements map[string]*cluster.Placement
	events     []string
}

// Cluster returns the underlying cluster.
func (cs *ClusterSet) Cluster() *cluster.Cluster { return cs.cl }

// NewClusterReplicaSet builds a replica set whose boots go through the
// cluster: the front-end boots on the gateway (node 0), every replica on
// the node the placer chooses. A boot that fails chunk verification
// isolates its node (fail closed) before the error propagates.
func NewClusterReplicaSet(bus *eventbus.Bus, kb *attest.KeyBroker, name string, handler Handler, cfg ReplicaSetConfig, spec ContainerSpec, cl *cluster.Cluster) (*ClusterSet, error) {
	if spec.CAS == nil || spec.Image == "" {
		return nil, errors.New("microsvc: incomplete container spec for cluster set")
	}
	chunks, err := cl.ImageChunks(spec.Image, spec.Tag)
	if err != nil {
		return nil, err
	}
	cs := &ClusterSet{
		cl: cl, imageChunks: chunks,
		onNode:     make(map[string]string),
		placements: make(map[string]*cluster.Placement),
	}
	boot := func(id string) (bootResult, error) {
		var node *cluster.Node
		var pl *cluster.Placement
		if strings.HasSuffix(id, "/fe") {
			// The front-end is the service's gateway: it lives on node 0
			// and does not consume a replica slot — but its image pull
			// warms the gateway's cache like any other boot.
			node = cl.Node(0)
		} else {
			placed, perr := cl.Place(chunks)
			if perr != nil {
				return bootResult{}, perr
			}
			pl = placed
			node = pl.Node()
		}
		release := func() {
			if pl != nil {
				pl.Release()
			}
		}
		eng, err := node.Launch(id)
		if err != nil {
			release()
			return bootResult{}, err
		}
		c, err := eng.Run(spec.Image, spec.Tag, spec.CAS)
		if err != nil {
			node.RecordFailedPull(eng.LastPullStats())
			if errors.Is(err, container.ErrChunkVerify) && cl.Isolate(node) {
				cs.noteEvent(fmt.Sprintf("isolate %s (chunk verify)", node.Name()))
			}
			release()
			return bootResult{}, err
		}
		ps := eng.LastPullStats()
		kind := node.RecordBoot(ps)
		cs.noteEvent(fmt.Sprintf("place %s on %s (%s, fetched=%d cached=%d)",
			id, node.Name(), kind, ps.ChunksFetch, ps.CacheHits))
		cs.track(id, node.Name(), pl)
		enc := c.Runtime.Enclave()
		arena, err := enc.HeapArena()
		if err != nil {
			c.Stop()
			cs.untrack(id)
			release()
			return bootResult{}, err
		}
		stop := func() {
			c.Stop()
			cs.untrack(id)
			release()
		}
		return bootResult{enc: enc, arena: arena, quoter: eng.Quoter, stop: stop}, nil
	}
	rs, err := newReplicaSet(bus, kb, name, handler, cfg, boot)
	if err != nil {
		return nil, err
	}
	cs.ReplicaSet = rs
	return cs, nil
}

func (cs *ClusterSet) track(id, node string, pl *cluster.Placement) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.onNode[id] = node
	if pl != nil {
		cs.placements[id] = pl
	}
}

func (cs *ClusterSet) untrack(id string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	delete(cs.onNode, id)
	delete(cs.placements, id)
}

// replicasOn returns the sorted replica IDs currently tracked on a node —
// sorted so node-fault fan-out is independent of map-iteration order.
func (cs *ClusterSet) replicasOn(node string) []string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var ids []string
	for id, n := range cs.onNode {
		if n == node {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// noteEvent records one placement/isolation event for the scenario trace.
func (cs *ClusterSet) noteEvent(s string) {
	cs.mu.Lock()
	cs.events = append(cs.events, s)
	cs.mu.Unlock()
}

// DrainEvents returns and clears the recorded events, in order.
func (cs *ClusterSet) DrainEvents() []string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ev := cs.events
	cs.events = nil
	return ev
}

// CrashNode kills a node: the node goes down (link refuses, placement
// skips it) and every replica on it crashes — the orchestrator reschedules
// them onto surviving nodes. The front-end survives a gateway crash (the
// gateway going down is out of this model's scope). Returns the node name
// and the crashed replica IDs.
func (cs *ClusterSet) CrashNode(i int) (string, []string) {
	name := cs.cl.CrashNode(i)
	ids := cs.replicasOn(name)
	for _, id := range ids {
		cs.InjectCrashID(id)
	}
	return name, ids
}

// PartitionNode cuts a node off the network: its link refuses, placement
// skips it, and its replicas become unreachable — routed requests shed
// deterministically until the orchestrator reschedules. Returns the node
// name and the affected replica IDs.
func (cs *ClusterSet) PartitionNode(i int) (string, []string) {
	name := cs.cl.PartitionNode(i)
	ids := cs.replicasOn(name)
	for _, id := range ids {
		cs.SetReplicaUnreachable(id, true)
	}
	return name, ids
}

// HealNode reverses a partition; replicas still tracked on the node (if
// the orchestrator has not already rescheduled them) become reachable
// again. Returns the node name.
func (cs *ClusterSet) HealNode(i int) string {
	name := cs.cl.HealNode(i)
	for _, id := range cs.replicasOn(name) {
		cs.SetReplicaUnreachable(id, false)
	}
	return name
}

// SetByzantineNode makes the registry serve node i tampered chunks: its
// pulls fail closed on digest verification and the node isolates on first
// use. Returns the node name.
func (cs *ClusterSet) SetByzantineNode(i int) string {
	return cs.cl.SetByzantine(i, true)
}

// foldMetrics merges the cluster's per-node snapshot and the cluster-level
// derived figures into a scenario metric map.
func (cs *ClusterSet) foldMetrics(m map[string]float64) {
	for k, v := range cs.cl.Snapshot() {
		m["cluster."+k] = v
	}
	bp := cs.cl.Boots()
	ok := 0.0
	if bp.WarmBoots > 0 && bp.ColdBoots > 0 && bp.WarmFetchMax < bp.ColdFetchMin {
		ok = 1
	}
	m["warm_lt_cold_ok"] = ok
	m["tampered_cached"] = float64(cs.cl.Audit())
	shedU, servedU := cs.UnreachableStats()
	m["partition_shed"] = float64(shedU)
	m["served_via_unreachable"] = float64(servedU)
}

// buildClusterPlane constructs the cluster-mode application plane for one
// scenario: a deterministic secure image (signing key and entrypoint bytes
// derived from the spec seed), an in-process registry holding it, a CAS,
// the cluster itself, and the cluster-placed replica set. Returns the set
// and the key-release policy (pinned to the image's expected measurement)
// for revoke/reinstate faults.
func buildClusterPlane(spec ScenarioSpec, bus *eventbus.Bus, svc *attest.Service, kb *attest.KeyBroker, keys attest.ServiceKeys, handler Handler, rsCfg ReplicaSetConfig) (*ClusterSet, attest.Policy, error) {
	cspec := *spec.Cluster
	var seed [ed25519.SeedSize]byte
	seed[0] = 0x5C
	seed[1] = byte(spec.Seed)
	seed[2] = byte(spec.Seed >> 8)
	priv := ed25519.NewKeyFromSeed(seed[:])

	entry := make([]byte, scenarioImageKiB<<10)
	sim.NewRand(spec.Seed*7919 + 17).Read(entry)
	img, err := image.NewBuilder("scenario/app", "1.0").
		AddLayer(map[string][]byte{container.EntrypointPath: entry}).
		SetEntrypoint(container.EntrypointPath).
		SetEnclaveSize(8 << 20).
		Build(priv)
	if err != nil {
		return nil, attest.Policy{}, err
	}
	cas := sconert.NewCAS(svc)
	sc := container.NewSCONEClient(priv, cas)
	secured, secrets, err := sc.BuildSecure(img, nil)
	if err != nil {
		return nil, attest.Policy{}, err
	}
	if _, err := sc.Deploy(secured, secrets, nil, nil); err != nil {
		return nil, attest.Policy{}, err
	}
	reg := registry.New()
	if err := reg.Push(secured); err != nil {
		return nil, attest.Policy{}, err
	}
	meas, err := container.ExpectedMeasurement(secured)
	if err != nil {
		return nil, attest.Policy{}, err
	}
	policy := attest.Policy{AllowedMREnclave: []cryptbox.Digest{meas}}
	kb.Register(scenarioService, policy, keys)

	cl, err := cluster.New(svc, reg, cluster.Config{
		Nodes:        cspec.Nodes,
		NodeCapacity: cspec.NodeCapacity,
		Link:         cspec.Link,
		Placer:       orchestrator.LocalityPlacer{WarmWeight: cspec.WarmWeight, LoadPenalty: cspec.LoadPenalty},
	})
	if err != nil {
		return nil, attest.Policy{}, err
	}
	cs, err := NewClusterReplicaSet(bus, kb, scenarioService, handler, rsCfg,
		ContainerSpec{CAS: cas, Image: "scenario/app", Tag: "1.0"}, cl)
	if err != nil {
		return nil, attest.Policy{}, err
	}
	return cs, policy, nil
}
