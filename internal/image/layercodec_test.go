package image

import (
	"bytes"
	"testing"
	"testing/quick"

	"securecloud/internal/sim"
)

func TestLayerCodecRoundTrip(t *testing.T) {
	l := Layer{Files: map[string][]byte{
		"/bin/app":        []byte("BINARY\x00WITH\x00NULS"),
		"/etc/empty":      nil,
		"/etc/model.cfg":  []byte("sensitivity=0.97"),
		"/data/blob\x00x": bytes.Repeat([]byte{0, 1, 2}, 1000),
	}}
	got, err := DecodeLayer(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != l.Digest() {
		t.Fatal("round trip changed the layer digest")
	}
	if len(got.Files) != len(l.Files) {
		t.Fatalf("round trip has %d files, want %d", len(got.Files), len(l.Files))
	}
	for p, want := range l.Files {
		if !bytes.Equal(got.Files[p], want) {
			t.Fatalf("file %q mismatch", p)
		}
	}
}

func TestLayerEncodeDeterministic(t *testing.T) {
	l := Layer{Files: map[string][]byte{"/a": []byte("1"), "/b": []byte("2"), "/c": []byte("3")}}
	first := l.Encode()
	for i := 0; i < 20; i++ {
		if !bytes.Equal(l.Encode(), first) {
			t.Fatal("Encode not deterministic across calls")
		}
	}
}

func TestDecodeLayerRejectsMalformed(t *testing.T) {
	l := Layer{Files: map[string][]byte{"/bin/app": []byte("code")}}
	enc := l.Encode()
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeLayer(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	// A forged huge length prefix must not allocate.
	if _, err := DecodeLayer([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Fatal("absurd length prefix decoded")
	}
	// Duplicate paths cannot smuggle content past digest checks.
	dup := append(append([]byte(nil), enc...), enc...)
	if _, err := DecodeLayer(dup); err == nil {
		t.Fatal("duplicate path decoded")
	}
}

func TestPropLayerCodec(t *testing.T) {
	f := func(seed int64, nFiles uint8) bool {
		rng := sim.NewRand(seed)
		l := Layer{Files: make(map[string][]byte)}
		for i := 0; i < int(nFiles%16); i++ {
			name := make([]byte, 1+rng.Intn(20))
			rng.Read(name)
			data := make([]byte, rng.Intn(500))
			rng.Read(data)
			l.Files["/"+string(name)] = data
		}
		got, err := DecodeLayer(l.Encode())
		if err != nil {
			return false
		}
		return got.Digest() == l.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
