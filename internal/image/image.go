// Package image implements the container image model of SecureCloud's
// secure Docker workflow (paper §V-A, Figure 2): layered, content-addressed
// images that can carry an encrypted file system plus a sealed FS
// protection file, signed by their creator. Secure images are
// indistinguishable from regular images to the registry and engine — all
// security-relevant parts are protected by the FS protection file, so the
// registry does not need to be trusted.
package image

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"securecloud/internal/cryptbox"
	"securecloud/internal/fsshield"
)

// ProtectionFilePath is the well-known image path of the sealed FS
// protection file in secure images.
const ProtectionFilePath = "/scone/fs.protection"

// Layer is one file-system layer. Layers stack; later layers override
// earlier paths (Docker union-FS semantics).
type Layer struct {
	Files map[string][]byte `json:"files"`
}

// Digest returns the content digest of the layer (its canonical encoding).
func (l Layer) Digest() cryptbox.Digest {
	return cryptbox.Sum(l.canonical())
}

// sortedPaths returns the layer's paths in canonical order.
func (l Layer) sortedPaths() []string {
	paths := make([]string, 0, len(l.Files))
	for p := range l.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// canonical renders the layer deterministically (sorted paths).
func (l Layer) canonical() []byte {
	paths := l.sortedPaths()
	var buf []byte
	for _, p := range paths {
		buf = append(buf, p...)
		buf = append(buf, 0)
		buf = append(buf, l.Files[p]...)
		buf = append(buf, 0)
	}
	return buf
}

// Config is the runtime configuration baked into an image.
type Config struct {
	Entrypoint []string          `json:"entrypoint"`
	Env        map[string]string `json:"env"`
	// EnclaveSize is the ELRANGE the micro-service requests (bytes).
	EnclaveSize uint64 `json:"enclave_size"`
}

// Manifest names the image and pins its layers by digest.
type Manifest struct {
	Name         string            `json:"name"`
	Tag          string            `json:"tag"`
	LayerDigests []cryptbox.Digest `json:"layers"`
	Config       Config            `json:"config"`
	// Secure marks images whose protected files require an SCF to open.
	Secure bool `json:"secure"`
	// SignerPublicKey and Signature authenticate the manifest: end users
	// verify them after pulling from the untrusted registry.
	SignerPublicKey []byte `json:"signer_public_key"`
	Signature       []byte `json:"signature"`
}

// signedBytes is the canonical signed portion of the manifest.
func (m Manifest) signedBytes() []byte {
	c := m
	c.Signature = nil
	raw, err := json.Marshal(c)
	if err != nil {
		panic("image: manifest marshal cannot fail: " + err.Error())
	}
	return raw
}

// Image is a manifest plus its layers.
type Image struct {
	Manifest Manifest `json:"manifest"`
	Layers   []Layer  `json:"layers"`
}

// Validation errors.
var (
	ErrDigestMismatch = errors.New("image: layer digest mismatch")
	ErrBadSignature   = errors.New("image: manifest signature invalid")
	ErrNoFile         = errors.New("image: file not found")
)

// Verify checks that every layer matches its manifest digest and that the
// manifest signature is valid. This is the client-side check after pulling
// from an untrusted registry.
func (img *Image) Verify() error {
	if len(img.Layers) != len(img.Manifest.LayerDigests) {
		return fmt.Errorf("%w: %d layers, %d digests", ErrDigestMismatch,
			len(img.Layers), len(img.Manifest.LayerDigests))
	}
	for i, l := range img.Layers {
		if l.Digest() != img.Manifest.LayerDigests[i] {
			return fmt.Errorf("%w: layer %d", ErrDigestMismatch, i)
		}
	}
	if len(img.Manifest.SignerPublicKey) != ed25519.PublicKeySize ||
		!ed25519.Verify(img.Manifest.SignerPublicKey, img.Manifest.signedBytes(), img.Manifest.Signature) {
		return ErrBadSignature
	}
	return nil
}

// Flatten resolves the union file system: later layers win.
func (img *Image) Flatten() map[string][]byte {
	out := make(map[string][]byte)
	for _, l := range img.Layers {
		for p, b := range l.Files {
			out[p] = append([]byte(nil), b...)
		}
	}
	return out
}

// File returns one path from the flattened image.
func (img *Image) File(path string) ([]byte, error) {
	files := img.Flatten()
	b, ok := files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoFile, path)
	}
	return b, nil
}

// Ref returns the name:tag reference.
func (img *Image) Ref() string { return img.Manifest.Name + ":" + img.Manifest.Tag }

// Builder assembles images.
type Builder struct {
	name, tag string
	layers    []Layer
	config    Config
	secure    bool
}

// NewBuilder starts an image build.
func NewBuilder(name, tag string) *Builder {
	return &Builder{name: name, tag: tag, config: Config{Env: map[string]string{}}}
}

// AddLayer appends a file-system layer.
func (b *Builder) AddLayer(files map[string][]byte) *Builder {
	cp := make(map[string][]byte, len(files))
	for p, data := range files {
		cp[p] = append([]byte(nil), data...)
	}
	b.layers = append(b.layers, Layer{Files: cp})
	return b
}

// SetEntrypoint sets the command the container runs.
func (b *Builder) SetEntrypoint(args ...string) *Builder {
	b.config.Entrypoint = args
	return b
}

// SetEnv adds an environment variable.
func (b *Builder) SetEnv(k, v string) *Builder {
	b.config.Env[k] = v
	return b
}

// SetEnclaveSize requests an ELRANGE size for the micro-service.
func (b *Builder) SetEnclaveSize(n uint64) *Builder {
	b.config.EnclaveSize = n
	return b
}

// markSecure flags the image as secure (set by SecureBuild).
func (b *Builder) markSecure() *Builder {
	b.secure = true
	return b
}

// Build signs and returns the image.
func (b *Builder) Build(priv ed25519.PrivateKey) (*Image, error) {
	if len(b.layers) == 0 {
		return nil, errors.New("image: build with no layers")
	}
	m := Manifest{
		Name:            b.name,
		Tag:             b.tag,
		Config:          b.config,
		Secure:          b.secure,
		SignerPublicKey: priv.Public().(ed25519.PublicKey),
	}
	for _, l := range b.layers {
		m.LayerDigests = append(m.LayerDigests, l.Digest())
	}
	m.Signature = ed25519.Sign(priv, m.signedBytes())
	return &Image{Manifest: m, Layers: b.layers}, nil
}

// chunkFile is the on-image encoding of a protected file's ciphertext
// chunks.
type chunkFile struct {
	Chunks [][]byte `json:"chunks"`
}

// EncodeChunks serializes ciphertext chunks for storage as an image file.
func EncodeChunks(chunks [][]byte) []byte {
	raw, err := json.Marshal(chunkFile{Chunks: chunks})
	if err != nil {
		panic("image: chunk marshal cannot fail: " + err.Error())
	}
	return raw
}

// DecodeChunks reverses EncodeChunks.
func DecodeChunks(b []byte) ([][]byte, error) {
	var cf chunkFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return nil, fmt.Errorf("image: decoding chunk file: %w", err)
	}
	return cf.Chunks, nil
}

// BuildSecrets are the outputs of a secure build that must reach the CAS
// (never the registry): the key and hash of the sealed protection file.
type BuildSecrets struct {
	ProtectionFileKey  cryptbox.Key
	ProtectionFileHash cryptbox.Digest
}

// SecureBuildSpec describes which image paths to protect and how.
type SecureBuildSpec struct {
	// Protect maps image paths to their protection mode.
	Protect map[string]fsshield.Mode
	// ChunkSize overrides the shield chunk size (0 = default).
	ChunkSize int
	// RootKey derives all per-file keys; generate fresh per image.
	RootKey cryptbox.Key
}

// SecureBuild converts a plain image into a secure image: the listed files
// are encrypted/authenticated chunk-wise, the FS protection file is sealed
// and embedded at ProtectionFilePath, and the result is re-signed. This is
// the image-creation step the paper assigns to the trusted environment of
// the image creator.
func SecureBuild(img *Image, spec SecureBuildSpec, priv ed25519.PrivateKey) (*Image, *BuildSecrets, error) {
	if err := img.Verify(); err != nil {
		return nil, nil, fmt.Errorf("image: secure build over unverified image: %w", err)
	}
	files := img.Flatten()
	pfs := fsshield.NewFS(spec.ChunkSize)
	out := make(map[string][]byte, len(files))
	protected := make([]string, 0, len(spec.Protect))
	for path, data := range files {
		mode, protect := spec.Protect[path]
		if !protect {
			out[path] = data
			continue
		}
		if err := pfs.WriteFile(path, data, mode, spec.RootKey); err != nil {
			return nil, nil, err
		}
		protected = append(protected, path)
	}
	// Blobs() deep-copies the whole store, so take one copy for all
	// protected paths rather than one per path.
	blobs := pfs.Blobs()
	for _, path := range protected {
		out[path] = EncodeChunks(blobs[path])
	}
	pfKey, err := cryptbox.DeriveKey(spec.RootKey, "protection-file")
	if err != nil {
		return nil, nil, err
	}
	sealedPF, err := pfs.ProtectionFile().Seal(pfKey)
	if err != nil {
		return nil, nil, err
	}
	out[ProtectionFilePath] = sealedPF

	b := NewBuilder(img.Manifest.Name, img.Manifest.Tag).
		AddLayer(out).
		SetEnclaveSize(img.Manifest.Config.EnclaveSize).
		markSecure()
	b.config.Entrypoint = img.Manifest.Config.Entrypoint
	for k, v := range img.Manifest.Config.Env {
		b.config.Env[k] = v
	}
	secured, err := b.Build(priv)
	if err != nil {
		return nil, nil, err
	}
	return secured, &BuildSecrets{
		ProtectionFileKey:  pfKey,
		ProtectionFileHash: cryptbox.Sum(sealedPF),
	}, nil
}

// ProtectedBlobs extracts the ciphertext chunk map from a secure image for
// handing to the runtime's protected FS.
func (img *Image) ProtectedBlobs() (map[string][][]byte, error) {
	files := img.Flatten()
	sealedPF, ok := files[ProtectionFilePath]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoFile, ProtectionFilePath)
	}
	_ = sealedPF
	blobs := make(map[string][][]byte)
	for path, data := range files {
		if path == ProtectionFilePath {
			continue
		}
		chunks, err := DecodeChunks(data)
		if err != nil {
			continue // unprotected plain file
		}
		blobs[path] = chunks
	}
	return blobs, nil
}

// SealedProtectionFile returns the embedded sealed protection file.
func (img *Image) SealedProtectionFile() ([]byte, error) {
	return img.File(ProtectionFilePath)
}
