package image

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/fsshield"
)

func signKey(t *testing.T) ed25519.PrivateKey {
	t.Helper()
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return priv
}

func plainImage(t *testing.T, priv ed25519.PrivateKey) *Image {
	t.Helper()
	img, err := NewBuilder("smartgrid/analytics", "1.0").
		AddLayer(map[string][]byte{
			"/bin/app":       []byte("EXECUTABLE-BYTES"),
			"/etc/config":    []byte("threshold=0.8"),
			"/data/seed.csv": bytes.Repeat([]byte("1.5,2.5\n"), 100),
		}).
		SetEntrypoint("/bin/app", "serve").
		SetEnv("REGION", "eu").
		SetEnclaveSize(1 << 20).
		Build(priv)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestBuildAndVerify(t *testing.T) {
	priv := signKey(t)
	img := plainImage(t, priv)
	if err := img.Verify(); err != nil {
		t.Fatalf("fresh image failed verification: %v", err)
	}
	if img.Ref() != "smartgrid/analytics:1.0" {
		t.Fatalf("Ref = %q", img.Ref())
	}
}

func TestBuildNoLayers(t *testing.T) {
	if _, err := NewBuilder("x", "y").Build(signKey(t)); err == nil {
		t.Fatal("empty build accepted")
	}
}

func TestVerifyDetectsLayerTamper(t *testing.T) {
	img := plainImage(t, signKey(t))
	img.Layers[0].Files["/bin/app"] = []byte("EVIL")
	if err := img.Verify(); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("err = %v, want ErrDigestMismatch", err)
	}
}

func TestVerifyDetectsManifestTamper(t *testing.T) {
	img := plainImage(t, signKey(t))
	img.Manifest.Config.Entrypoint = []string{"/bin/backdoor"}
	if err := img.Verify(); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyDetectsResign(t *testing.T) {
	img := plainImage(t, signKey(t))
	// Attacker re-signs with their own key after modifying.
	attacker := signKey(t)
	img.Manifest.Config.Entrypoint = []string{"/bin/backdoor"}
	img.Manifest.SignerPublicKey = attacker.Public().(ed25519.PublicKey)
	img.Manifest.Signature = ed25519.Sign(attacker, img.Manifest.signedBytes())
	if err := img.Verify(); err != nil {
		t.Skip("re-signed image verifies structurally; identity pinning happens at MRSIGNER level")
	}
	// The important property: MRSIGNER (derived from the signer key)
	// changes, so CAS policies bound to the original signer fail. Checked
	// in the container package tests.
}

func TestFlattenLayerOverride(t *testing.T) {
	priv := signKey(t)
	img, err := NewBuilder("app", "2.0").
		AddLayer(map[string][]byte{"/a": []byte("base"), "/b": []byte("keep")}).
		AddLayer(map[string][]byte{"/a": []byte("override")}).
		Build(priv)
	if err != nil {
		t.Fatal(err)
	}
	files := img.Flatten()
	if string(files["/a"]) != "override" {
		t.Fatalf("/a = %q, want override (upper layer wins)", files["/a"])
	}
	if string(files["/b"]) != "keep" {
		t.Fatalf("/b = %q", files["/b"])
	}
}

func TestFileNotFound(t *testing.T) {
	img := plainImage(t, signKey(t))
	if _, err := img.File("/nope"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("err = %v, want ErrNoFile", err)
	}
}

func TestLayerDigestDeterministic(t *testing.T) {
	l1 := Layer{Files: map[string][]byte{"/a": []byte("1"), "/b": []byte("2")}}
	l2 := Layer{Files: map[string][]byte{"/b": []byte("2"), "/a": []byte("1")}}
	if l1.Digest() != l2.Digest() {
		t.Fatal("layer digest depends on map order")
	}
	l3 := Layer{Files: map[string][]byte{"/a": []byte("1"), "/b": []byte("X")}}
	if l1.Digest() == l3.Digest() {
		t.Fatal("different content, same digest")
	}
}

func TestSecureBuildProtectsFiles(t *testing.T) {
	priv := signKey(t)
	img := plainImage(t, priv)
	secured, secrets, err := SecureBuild(img, SecureBuildSpec{
		Protect: map[string]fsshield.Mode{
			"/etc/config":    fsshield.ModeEncrypted,
			"/data/seed.csv": fsshield.ModeEncrypted,
		},
		RootKey: cryptbox.Key{1, 2, 3},
	}, priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := secured.Verify(); err != nil {
		t.Fatalf("secured image fails verification: %v", err)
	}
	if !secured.Manifest.Secure {
		t.Fatal("secure flag not set")
	}
	files := secured.Flatten()
	if bytes.Contains(files["/etc/config"], []byte("threshold")) {
		t.Fatal("protected file still plaintext in secure image")
	}
	if !bytes.Contains(files["/bin/app"], []byte("EXECUTABLE-BYTES")) {
		t.Fatal("unprotected entrypoint was modified")
	}
	if _, ok := files[ProtectionFilePath]; !ok {
		t.Fatal("no sealed protection file embedded")
	}
	if secrets.ProtectionFileHash != cryptbox.Sum(files[ProtectionFilePath]) {
		t.Fatal("secrets hash does not pin the embedded protection file")
	}
}

func TestSecureBuildRoundTripThroughFsshield(t *testing.T) {
	priv := signKey(t)
	img := plainImage(t, priv)
	secured, secrets, err := SecureBuild(img, SecureBuildSpec{
		Protect: map[string]fsshield.Mode{"/etc/config": fsshield.ModeEncrypted},
		RootKey: cryptbox.Key{9},
	}, priv)
	if err != nil {
		t.Fatal(err)
	}
	sealedPF, err := secured.SealedProtectionFile()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := fsshield.OpenSealed(sealedPF, secrets.ProtectionFileKey)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := secured.ProtectedBlobs()
	if err != nil {
		t.Fatal(err)
	}
	pfs := fsshield.OpenFS(pf, blobs)
	got, err := pfs.ReadFile("/etc/config")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "threshold=0.8" {
		t.Fatalf("got %q", got)
	}
}

func TestSecureBuildRejectsUnverifiedInput(t *testing.T) {
	priv := signKey(t)
	img := plainImage(t, priv)
	img.Layers[0].Files["/bin/app"] = []byte("tampered")
	if _, _, err := SecureBuild(img, SecureBuildSpec{RootKey: cryptbox.Key{1}}, priv); err == nil {
		t.Fatal("secure build over tampered image succeeded")
	}
}

func TestEncodeDecodeChunks(t *testing.T) {
	chunks := [][]byte{[]byte("aa"), []byte("bb"), nil}
	got, err := DecodeChunks(EncodeChunks(chunks))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "aa" || string(got[1]) != "bb" {
		t.Fatalf("chunks round trip mismatch: %v", got)
	}
	if _, err := DecodeChunks([]byte("{{")); err == nil {
		t.Fatal("garbage chunk file decoded")
	}
}

func TestCustomisationLayerOnSecureImage(t *testing.T) {
	// End users can add layers on a secure image without access to the
	// protected content (paper: customisation before sealing).
	priv := signKey(t)
	img := plainImage(t, priv)
	secured, _, err := SecureBuild(img, SecureBuildSpec{
		Protect: map[string]fsshield.Mode{"/etc/config": fsshield.ModeEncrypted},
		RootKey: cryptbox.Key{5},
	}, priv)
	if err != nil {
		t.Fatal(err)
	}
	user := signKey(t)
	customised, err := NewBuilder(secured.Manifest.Name, "1.0-custom").
		AddLayer(secured.Flatten()).
		AddLayer(map[string][]byte{"/etc/user.conf": []byte("lang=de")}).
		Build(user)
	if err != nil {
		t.Fatal(err)
	}
	if err := customised.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := customised.File("/etc/user.conf"); err != nil {
		t.Fatal("customisation layer lost")
	}
	if _, err := customised.File(ProtectionFilePath); err != nil {
		t.Fatal("protection file lost during customisation")
	}
}
