package image

import (
	"encoding/binary"
	"fmt"
)

// The data plane moves layers as chunked transfer payloads, which needs a
// byte form that is both deterministic (identical layers must chunk to
// identical sealed bytes for cross-image dedup) and parseable (the puller
// reconstructs the layer from reassembled bytes). Layer.canonical is
// deterministic but not parseable — file contents may contain its NUL
// separators — so the codec below length-prefixes every field instead.
// Layer.Digest intentionally stays defined over canonical: the digest is
// the layer's identity, the encoding is its wire form.

// maxLayerEntry bounds a single decoded path or file against forged
// length prefixes demanding absurd allocations.
const maxLayerEntry = 1 << 30

// Encode renders the layer deterministically for chunking: paths sorted,
// every path and content uvarint-length-prefixed.
func (l Layer) Encode() []byte {
	paths := l.sortedPaths()
	size := 0
	for _, p := range paths {
		size += binary.MaxVarintLen64 * 2
		size += len(p) + len(l.Files[p])
	}
	buf := make([]byte, 0, size)
	var tmp [binary.MaxVarintLen64]byte
	for _, p := range paths {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(p)))]...)
		buf = append(buf, p...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(l.Files[p])))]...)
		buf = append(buf, l.Files[p]...)
	}
	return buf
}

// DecodeLayer reverses Layer.Encode. The caller must still check the
// decoded layer's Digest against a trusted manifest — the encoding crosses
// the untrusted registry.
func DecodeLayer(b []byte) (Layer, error) {
	l := Layer{Files: make(map[string][]byte)}
	off := 0
	field := func(what string) ([]byte, error) {
		n, w := binary.Uvarint(b[off:])
		if w <= 0 || n > maxLayerEntry {
			return nil, fmt.Errorf("image: decoding layer: bad %s length at offset %d", what, off)
		}
		off += w
		if uint64(len(b)-off) < n {
			return nil, fmt.Errorf("image: decoding layer: truncated %s at offset %d", what, off)
		}
		out := b[off : off+int(n)]
		off += int(n)
		return out, nil
	}
	for off < len(b) {
		path, err := field("path")
		if err != nil {
			return Layer{}, err
		}
		data, err := field("content")
		if err != nil {
			return Layer{}, err
		}
		if _, dup := l.Files[string(path)]; dup {
			return Layer{}, fmt.Errorf("image: decoding layer: duplicate path %q", path)
		}
		l.Files[string(path)] = append([]byte(nil), data...)
	}
	return l, nil
}
