// Package eventbus implements the event bus of Figure 1: the encrypted
// topic-based transport that connects the micro-services of a SecureCloud
// application. The bus itself is untrusted infrastructure — it stores and
// forwards opaque sealed messages; only micro-services holding a topic key
// (distributed through the CAS, not through the bus) can read them.
//
// For content-based (rather than topic-based) routing, applications use
// the SCBR broker instead; the bus is the simpler substrate that carries
// point-to-point and fan-out traffic between micro-services.
package eventbus

import (
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// Message is one sealed bus message. Topic and sequence number are visible
// to the untrusted bus (it needs them to route and order); the body is not.
type Message struct {
	Topic  string
	Seq    uint64
	Sealed []byte
}

// Errors returned by the bus and endpoints.
var (
	ErrNoTopic  = errors.New("eventbus: topic does not exist")
	ErrBadSeal  = errors.New("eventbus: message failed authentication")
	ErrClosed   = errors.New("eventbus: bus closed")
	ErrBackPres = errors.New("eventbus: subscriber queue full")
)

// QueueLimit bounds each subscriber queue; the bus applies back-pressure
// beyond it rather than growing unboundedly. Individual topics can tighten
// or relax the bound with SetQueueLimit.
const QueueLimit = 4096

// Bus is the untrusted message store-and-forward fabric.
type Bus struct {
	mu     sync.Mutex
	seqs   map[string]uint64
	queues map[string]map[int][]Message // topic -> subscriber handle -> queue
	leased map[string]map[int]map[uint64]bool
	limits map[string]int // topic -> queue limit override (0/absent = QueueLimit)
	nextID int
	closed bool
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{
		seqs:   make(map[string]uint64),
		queues: make(map[string]map[int][]Message),
	}
}

// SetQueueLimit overrides the per-subscriber queue bound of one topic
// (limit <= 0 restores the default QueueLimit). The limit is topology
// configuration: it persists across subscriber churn, including the
// last-unsubscriber prune of the topic's queues. A queue may hold exactly
// `limit` messages; the publish that would exceed it is rejected whole
// (all-or-nothing, like the default bound).
func (b *Bus) SetQueueLimit(topic string, limit int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if limit <= 0 {
		delete(b.limits, topic)
		return
	}
	if b.limits == nil {
		b.limits = make(map[string]int)
	}
	b.limits[topic] = limit
}

// queueLimit returns the effective per-subscriber bound of one topic.
// Caller holds b.mu.
func (b *Bus) queueLimit(topic string) int {
	if lim, ok := b.limits[topic]; ok {
		return lim
	}
	return QueueLimit
}

// Close shuts the bus down; further operations fail.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}

// subscribe registers a queue on a topic and returns its handle.
func (b *Bus) subscribe(topic string) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	if b.queues[topic] == nil {
		b.queues[topic] = make(map[int][]Message)
	}
	b.nextID++
	b.queues[topic][b.nextID] = nil
	return b.nextID, nil
}

// publish appends a sealed message to all subscriber queues of the topic.
func (b *Bus) publish(topic string, sealed []byte) (uint64, error) {
	seqs, err := b.publishBatch(topic, [][]byte{sealed})
	if err != nil {
		return 0, err
	}
	return seqs[0], nil
}

// publishBatch appends a batch of sealed messages to all subscriber queues
// of the topic under a single lock acquisition — the fan-out fast path.
// All-or-nothing: back-pressure on any subscriber rejects the whole batch
// before anything is enqueued.
func (b *Bus) publishBatch(topic string, sealed [][]byte) ([]uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	lim := b.queueLimit(topic)
	qs := b.queues[topic]
	for id, q := range qs {
		if len(q)+len(sealed) > lim {
			return nil, fmt.Errorf("%w: topic %s subscriber %d", ErrBackPres, topic, id)
		}
	}
	// Build the message batch once, then append it whole per subscriber:
	// the per-message topic-map lookups (seq bump + queue fetch × fan-out)
	// collapse to one lookup per batch.
	seq := b.seqs[topic]
	seqs := make([]uint64, len(sealed))
	msgs := make([]Message, len(sealed))
	for i, s := range sealed {
		seq++
		seqs[i] = seq
		msgs[i] = Message{Topic: topic, Seq: seq, Sealed: s}
	}
	b.seqs[topic] = seq
	for id, q := range qs {
		qs[id] = append(q, msgs...)
	}
	return seqs, nil
}

// drain pops all queued messages of a subscription handle.
func (b *Bus) drain(topic string, id int) []Message {
	return b.drainN(topic, id, 0)
}

// drainN pops up to max queued messages (0 = all) of a subscription handle
// under one lock acquisition. Like drain, it pops messages regardless of
// outstanding leases — mixing Lease with Receive/PollBatch on one handle
// is unsupported.
func (b *Bus) drainN(topic string, id int, max int) []Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queues[topic][id]
	if max <= 0 || max >= len(q) {
		if q != nil {
			b.queues[topic][id] = nil
		}
		return q
	}
	out := append([]Message(nil), q[:max]...)
	b.queues[topic][id] = append(q[:0:0], q[max:]...)
	return out
}

// unsubscribe removes a subscription handle, pruning its queue and leases.
// When the topic's last subscriber leaves, the topic's queue and lease maps
// are dropped entirely (sequence numbers persist so a re-created topic
// never regresses and replay protection holds across churn).
func (b *Bus) unsubscribe(topic string, id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if qs := b.queues[topic]; qs != nil {
		delete(qs, id)
		if len(qs) == 0 {
			delete(b.queues, topic)
		}
	}
	b.pruneLease(topic, id)
}

// pruneLease drops the lease map of one subscriber handle and any empty
// enclosing maps. Caller holds b.mu.
func (b *Bus) pruneLease(topic string, id int) {
	l := b.leased[topic]
	if l == nil {
		return
	}
	delete(l, id)
	if len(l) == 0 {
		delete(b.leased, topic)
	}
}

// peek returns up to max queued messages, marking them leased (still
// queued until acked). Lease maps are created only when a message is
// actually leased, so peeking an empty queue leaves no bookkeeping behind
// (e.g. from a stale handle after Close).
func (b *Bus) peek(topic string, id int, max int) []Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	mine := b.leased[topic][id]
	var out []Message
	for _, m := range b.queues[topic][id] {
		if max > 0 && len(out) >= max {
			break
		}
		if mine[m.Seq] {
			continue
		}
		if mine == nil {
			if b.leased == nil {
				b.leased = make(map[string]map[int]map[uint64]bool)
			}
			if b.leased[topic] == nil {
				b.leased[topic] = make(map[int]map[uint64]bool)
			}
			mine = make(map[uint64]bool)
			b.leased[topic][id] = mine
		}
		mine[m.Seq] = true
		out = append(out, m)
	}
	return out
}

// ack drops a leased message permanently, pruning emptied lease maps so a
// subscriber that consumed everything holds no residual bookkeeping.
func (b *Bus) ack(topic string, id int, seq uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queues[topic][id]
	for i, m := range q {
		if m.Seq == seq {
			b.queues[topic][id] = append(q[:i:i], q[i+1:]...)
			if l := b.leased[topic]; l != nil && l[id] != nil {
				delete(l[id], seq)
				if len(l[id]) == 0 {
					b.pruneLease(topic, id)
				}
			}
			return true
		}
	}
	return false
}

// nack releases a lease so the message is delivered again.
func (b *Bus) nack(topic string, id int, seq uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	l := b.leased[topic]
	if l == nil || l[id] == nil || !l[id][seq] {
		return false
	}
	delete(l[id], seq)
	if len(l[id]) == 0 {
		b.pruneLease(topic, id)
	}
	return true
}

// depth returns the queued message count of one subscription handle.
func (b *Bus) depth(topic string, id int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queues[topic][id])
}

// Depth returns the queued message count of a topic across subscribers
// (monitoring hook for the orchestration layer).
func (b *Bus) Depth(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, q := range b.queues[topic] {
		n += len(q)
	}
	return n
}

// TopicKey derives the key protecting one topic from an application root
// key. Keys are provisioned to micro-services via their SCFs; the bus
// never sees them.
func TopicKey(appRoot cryptbox.Key, topic string) (cryptbox.Key, error) {
	return cryptbox.DeriveKey(appRoot, "topic:"+topic)
}

// stageBytes is the size of the simulated staging window through which an
// accounted endpoint copies sealed messages to or from the untrusted bus.
const stageBytes = 64 << 10

// Accounting wires a bus endpoint to the simulated SGX memory hierarchy:
// the enclave-side copy of every sealed message (out on publish, in on
// receive) is charged through the endpoint's Memory view. A zero Accounting
// leaves the endpoint unaccounted.
type Accounting = enclave.Accounting

// acctStage is the per-endpoint staging window in simulated memory.
type acctStage struct {
	mem  *enclave.Memory
	addr uint64
}

func newAcctStage(acct Accounting) *acctStage {
	if !acct.Enabled() {
		return nil
	}
	return &acctStage{mem: acct.Mem, addr: acct.Arena.Alloc(stageBytes)}
}

// chargeCopy charges a copy of total bytes through the staging window as a
// handful of bulk accesses (one commit per window-full) instead of one
// access per message.
func (st *acctStage) chargeCopy(total int, write bool) {
	if st == nil || total <= 0 {
		return
	}
	for total > 0 {
		n := total
		if n > stageBytes {
			n = stageBytes
		}
		st.mem.AccessRange(st.addr, n, write)
		total -= n
	}
}

// Publisher seals messages onto one topic.
type Publisher struct {
	bus   *Bus
	topic string
	box   *cryptbox.Box
	aad   []byte // "topic|<topic>", precomputed once
	stage *acctStage
}

// EndpointConfig configures one bus endpoint — publisher or subscriber.
// It replaces the NewX/NewXAccounted constructor pairs with a single
// config-struct shape: the zero Accounting leaves the endpoint
// unaccounted, exactly like the old unaccounted constructors.
type EndpointConfig struct {
	Bus   *Bus
	Topic string
	// Key is the topic's stream key (obtained via attested key release).
	Key cryptbox.Key
	// Accounting optionally wires the endpoint's enclave-side copies to a
	// simulated memory view.
	Accounting Accounting
}

// OpenPublisher builds a publisher from cfg. The AEAD context is built
// once per endpoint and dies with it — endpoints are the unit callers
// already manage, so per-topic churn cannot grow any process-wide state.
func OpenPublisher(cfg EndpointConfig) (*Publisher, error) {
	box, err := cryptbox.NewBox(cfg.Key)
	if err != nil {
		return nil, err
	}
	return &Publisher{
		bus: cfg.Bus, topic: cfg.Topic, box: box,
		aad:   []byte("topic|" + cfg.Topic),
		stage: newAcctStage(cfg.Accounting),
	}, nil
}

// NewPublisher builds a publisher for topic with its topic key.
//
// Deprecated: use OpenPublisher.
func NewPublisher(bus *Bus, topic string, key cryptbox.Key) (*Publisher, error) {
	return OpenPublisher(EndpointConfig{Bus: bus, Topic: topic, Key: key})
}

// NewPublisherAccounted builds a publisher whose outbound copies are
// charged to the given simulated memory view.
//
// Deprecated: use OpenPublisher with EndpointConfig.Accounting.
func NewPublisherAccounted(bus *Bus, topic string, key cryptbox.Key, acct Accounting) (*Publisher, error) {
	return OpenPublisher(EndpointConfig{Bus: bus, Topic: topic, Key: key, Accounting: acct})
}

// Publish seals body and hands it to the bus, returning its sequence
// number. The seal binds the topic, so messages cannot be replayed across
// topics by the bus.
func (p *Publisher) Publish(body []byte) (uint64, error) {
	sealed, err := p.box.Seal(body, p.aad)
	if err != nil {
		return 0, err
	}
	p.stage.chargeCopy(len(sealed), true)
	return p.bus.publish(p.topic, sealed)
}

// PublishBatch seals a batch of bodies and enqueues them onto all
// subscriber queues under one bus lock acquisition — each message is
// sealed exactly once however many subscribers fan out, and the mutex is
// not re-acquired per message. All-or-nothing under back-pressure. Returns
// the assigned sequence numbers.
func (p *Publisher) PublishBatch(bodies [][]byte) ([]uint64, error) {
	if len(bodies) == 0 {
		return nil, nil
	}
	// Seal the whole batch into one contiguous buffer: the AEAD overhead is
	// fixed per message, so the exact capacity is known up front and
	// SealAppend never reallocates — two allocations per batch instead of
	// one per message. Sub-slices are capacity-capped so they stay
	// independent views of the shared backing array.
	overhead := p.box.Overhead()
	capTotal := 0
	for _, body := range bodies {
		capTotal += len(body) + overhead
	}
	buf := make([]byte, 0, capTotal)
	sealed := make([][]byte, len(bodies))
	for i, body := range bodies {
		start := len(buf)
		var err error
		buf, err = p.box.SealAppend(buf, body, p.aad)
		if err != nil {
			return nil, err
		}
		sealed[i] = buf[start:len(buf):len(buf)]
	}
	p.stage.chargeCopy(len(buf), true)
	return p.bus.publishBatch(p.topic, sealed)
}

// Subscriber receives and opens messages from one topic.
type Subscriber struct {
	bus     *Bus
	topic   string
	box     *cryptbox.Box
	aad     []byte // "topic|<topic>", precomputed once
	handle  int
	lastSeq uint64
	stage   *acctStage
}

// OpenSubscriber registers a subscription from cfg. The whole drained
// batch is charged as bulk accesses through one staging window, not per
// message; the AEAD context is per-endpoint, as in OpenPublisher.
func OpenSubscriber(cfg EndpointConfig) (*Subscriber, error) {
	box, err := cryptbox.NewBox(cfg.Key)
	if err != nil {
		return nil, err
	}
	h, err := cfg.Bus.subscribe(cfg.Topic)
	if err != nil {
		return nil, err
	}
	return &Subscriber{
		bus: cfg.Bus, topic: cfg.Topic, box: box,
		aad:    []byte("topic|" + cfg.Topic),
		handle: h, stage: newAcctStage(cfg.Accounting),
	}, nil
}

// NewSubscriber registers a subscription on topic with its topic key.
//
// Deprecated: use OpenSubscriber.
func NewSubscriber(bus *Bus, topic string, key cryptbox.Key) (*Subscriber, error) {
	return OpenSubscriber(EndpointConfig{Bus: bus, Topic: topic, Key: key})
}

// NewSubscriberAccounted registers a subscription whose inbound copies
// are charged to the given simulated memory view.
//
// Deprecated: use OpenSubscriber with EndpointConfig.Accounting.
func NewSubscriberAccounted(bus *Bus, topic string, key cryptbox.Key, acct Accounting) (*Subscriber, error) {
	return OpenSubscriber(EndpointConfig{Bus: bus, Topic: topic, Key: key, Accounting: acct})
}

// Depth reports this subscriber's pending-queue length in one bus-lock
// acquisition, without draining, peeking or leasing anything — the
// monitoring hook the orchestrator samples between serve batches. Leased
// messages still count: they remain queued until acked.
func (s *Subscriber) Depth() int {
	return s.bus.depth(s.topic, s.handle)
}

// Close unregisters the subscription, releasing its queue and any lease
// bookkeeping on the bus. When the topic's last subscriber closes, the
// topic's queue and lease maps are pruned entirely — previously they
// accumulated forever under subscriber churn. Safe to call more than once.
func (s *Subscriber) Close() {
	s.bus.unsubscribe(s.topic, s.handle)
}

// Receive drains, authenticates and decrypts pending messages. It fails on
// any tampered message and on sequence regression (a bus replaying or
// reordering traffic).
func (s *Subscriber) Receive() ([][]byte, error) {
	msgs := s.bus.drain(s.topic, s.handle)
	if s.stage != nil {
		total := 0
		for _, m := range msgs {
			total += len(m.Sealed)
		}
		s.stage.chargeCopy(total, false)
	}
	out := make([][]byte, 0, len(msgs))
	for _, m := range msgs {
		if m.Seq <= s.lastSeq {
			return nil, fmt.Errorf("%w: sequence %d replayed", ErrBadSeal, m.Seq)
		}
		body, err := s.box.Open(m.Sealed, s.aad)
		if err != nil {
			return nil, fmt.Errorf("%w: topic %s seq %d", ErrBadSeal, m.Topic, m.Seq)
		}
		s.lastSeq = m.Seq
		out = append(out, body)
	}
	return out, nil
}

// PollBatch is Receive bounded to max messages (0 = all): it consumes up
// to max queued messages under a single bus lock acquisition — the shape a
// micro-service's poll loop wants when it processes fixed-size batches
// without holding everything the bus buffered in memory at once. As with
// Receive, an authentication or replay failure is fatal for the stream:
// the remaining drained messages are discarded, because a bus caught
// tampering or reordering cannot be trusted to deliver the rest. Consumers
// that must survive poison messages use Lease/Ack instead.
func (s *Subscriber) PollBatch(max int) ([][]byte, error) {
	msgs := s.bus.drainN(s.topic, s.handle, max)
	if s.stage != nil {
		total := 0
		for _, m := range msgs {
			total += len(m.Sealed)
		}
		s.stage.chargeCopy(total, false)
	}
	out := make([][]byte, 0, len(msgs))
	for _, m := range msgs {
		if m.Seq <= s.lastSeq {
			return nil, fmt.Errorf("%w: sequence %d replayed", ErrBadSeal, m.Seq)
		}
		body, err := s.box.Open(m.Sealed, s.aad)
		if err != nil {
			return nil, fmt.Errorf("%w: topic %s seq %d", ErrBadSeal, m.Topic, m.Seq)
		}
		s.lastSeq = m.Seq
		out = append(out, body)
	}
	return out, nil
}

// Pending is one unacknowledged message leased to a consumer.
type Pending struct {
	Seq  uint64
	Body []byte
}

// Lease authenticates, decrypts and returns up to max pending messages
// without consuming them: each must be Acked once processed, or Nacked to
// requeue — the at-least-once consumption mode micro-services use when a
// crash between receive and process must not lose grid telemetry.
func (s *Subscriber) Lease(max int) ([]Pending, error) {
	msgs := s.bus.peek(s.topic, s.handle, max)
	if s.stage != nil {
		total := 0
		for _, m := range msgs {
			total += len(m.Sealed)
		}
		s.stage.chargeCopy(total, false)
	}
	out := make([]Pending, 0, len(msgs))
	for _, m := range msgs {
		body, err := s.box.Open(m.Sealed, s.aad)
		if err != nil {
			return nil, fmt.Errorf("%w: topic %s seq %d", ErrBadSeal, m.Topic, m.Seq)
		}
		out = append(out, Pending{Seq: m.Seq, Body: body})
	}
	return out, nil
}

// Ack removes a leased message permanently.
func (s *Subscriber) Ack(seq uint64) bool {
	return s.bus.ack(s.topic, s.handle, seq)
}

// Nack returns a leased message to the queue for redelivery.
func (s *Subscriber) Nack(seq uint64) bool {
	return s.bus.nack(s.topic, s.handle, seq)
}
