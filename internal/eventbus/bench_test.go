package eventbus

import (
	"fmt"
	"testing"

	"securecloud/internal/cryptbox"
)

// benchEndpoints builds a publisher and nsubs subscribers on one topic.
func benchEndpoints(b *testing.B, bus *Bus, nsubs int) (*Publisher, []*Subscriber) {
	b.Helper()
	var root cryptbox.Key
	root[0] = 0xBE
	key, err := TopicKey(root, "bench/topic")
	if err != nil {
		b.Fatal(err)
	}
	pub, err := OpenPublisher(EndpointConfig{Bus: bus, Topic: "bench/topic", Key: key})
	if err != nil {
		b.Fatal(err)
	}
	subs := make([]*Subscriber, nsubs)
	for i := range subs {
		subs[i], err = OpenSubscriber(EndpointConfig{Bus: bus, Topic: "bench/topic", Key: key})
		if err != nil {
			b.Fatal(err)
		}
	}
	return pub, subs
}

// BenchmarkPublishBatch measures the frame fast path: seal a batch of
// bodies and enqueue them onto every subscriber queue under one bus lock.
// Run with -benchmem: the per-publish allocation count is the figure the
// wire front end exposed as a hot path.
func BenchmarkPublishBatch(b *testing.B) {
	for _, nsubs := range []int{1, 4} {
		b.Run(fmt.Sprintf("subs=%d", nsubs), func(b *testing.B) {
			bus := New()
			pub, subs := benchEndpoints(b, bus, nsubs)
			const batch = 64
			bodies := make([][]byte, batch)
			for i := range bodies {
				bodies[i] = make([]byte, 1024)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pub.PublishBatch(bodies); err != nil {
					b.Fatal(err)
				}
				// Keep queues bounded: drain without leaving the timer.
				for _, s := range subs {
					if _, err := s.PollBatch(0); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.SetBytes(int64(batch * 1024))
		})
	}
}

// BenchmarkPollBatch measures the drain fast path alone: open a batch of
// sealed frames off one subscriber queue.
func BenchmarkPollBatch(b *testing.B) {
	bus := New()
	pub, subs := benchEndpoints(b, bus, 1)
	const batch = 64
	bodies := make([][]byte, batch)
	for i := range bodies {
		bodies[i] = make([]byte, 1024)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := pub.PublishBatch(bodies); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		out, err := subs[0].PollBatch(0)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != batch {
			b.Fatalf("polled %d, want %d", len(out), batch)
		}
	}
	b.SetBytes(int64(batch * 1024))
}
