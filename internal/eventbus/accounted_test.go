package eventbus

import (
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

func acctView(t *testing.T) Accounting {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	enc, err := p.ECreate(8<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("svc")); err != nil {
		t.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		t.Fatal(err)
	}
	arena, err := enc.HeapArena()
	if err != nil {
		t.Fatal(err)
	}
	return Accounting{Mem: enc.Memory(), Arena: arena}
}

func TestAccountedPublishSubscribe(t *testing.T) {
	bus := New()
	var root cryptbox.Key
	key, err := TopicKey(root, "grid/readings")
	if err != nil {
		t.Fatal(err)
	}

	pubAcct := acctView(t)
	subAcct := acctView(t)
	pub, err := NewPublisherAccounted(bus, "grid/readings", key, pubAcct)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewSubscriberAccounted(bus, "grid/readings", key, subAcct)
	if err != nil {
		t.Fatal(err)
	}

	pubAcct.Mem.ResetAccounting()
	subAcct.Mem.ResetAccounting()
	for i := 0; i < 32; i++ {
		if _, err := pub.Publish([]byte("meter-00042 1.234 kW")); err != nil {
			t.Fatal(err)
		}
	}
	if pubAcct.Mem.Cycles() == 0 {
		t.Fatal("accounted publisher charged no cycles")
	}
	got, err := sub.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("received %d messages, want 32", len(got))
	}
	if subAcct.Mem.Cycles() == 0 {
		t.Fatal("accounted subscriber charged no cycles")
	}
}

func TestAccountedEndpointsMatchPlainSemantics(t *testing.T) {
	bus := New()
	var root cryptbox.Key
	key, err := TopicKey(root, "t")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisherAccounted(bus, "t", key, acctView(t))
	if err != nil {
		t.Fatal(err)
	}
	plainSub, err := NewSubscriber(bus, "t", key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	msgs, err := plainSub.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0]) != "hello" {
		t.Fatalf("plain subscriber got %q from accounted publisher", msgs)
	}
}
