package eventbus

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"securecloud/internal/cryptbox"
)

func appRoot() cryptbox.Key {
	var k cryptbox.Key
	k[0] = 0xA9
	return k
}

func topicPair(t *testing.T, bus *Bus, topic string) (*Publisher, *Subscriber) {
	t.Helper()
	key, err := TopicKey(appRoot(), topic)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPublisher(bus, topic, key)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSubscriber(bus, topic, key)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestPublishReceive(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "meters/region-1")
	for i := 0; i < 3; i++ {
		if _, err := p.Publish([]byte(fmt.Sprintf("reading-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "reading-0" || string(got[2]) != "reading-2" {
		t.Fatalf("received %q", got)
	}
	// Drained: next receive is empty.
	got, err = s.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("drained queue returned messages")
	}
}

func TestFanOut(t *testing.T) {
	bus := New()
	key, _ := TopicKey(appRoot(), "alerts")
	p, _ := NewPublisher(bus, "alerts", key)
	var subs []*Subscriber
	for i := 0; i < 3; i++ {
		s, err := NewSubscriber(bus, "alerts", key)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	if _, err := p.Publish([]byte("overload feeder-9")); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		got, err := s.Receive()
		if err != nil || len(got) != 1 {
			t.Fatalf("subscriber %d: got %d messages, err %v", i, len(got), err)
		}
	}
}

func TestCiphertextOnBus(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "secrets")
	if _, err := p.Publish([]byte("CONSUMPTION-PROFILE")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	for _, q := range bus.queues["secrets"] {
		for _, m := range q {
			if bytes.Contains(m.Sealed, []byte("CONSUMPTION-PROFILE")) {
				bus.mu.Unlock()
				t.Fatal("plaintext on the bus")
			}
		}
	}
	bus.mu.Unlock()
	if _, err := s.Receive(); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedMessageRejected(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	if _, err := p.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	for id, q := range bus.queues["t"] {
		q[0].Sealed[5] ^= 1
		bus.queues["t"][id] = q
	}
	bus.mu.Unlock()
	if _, err := s.Receive(); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("err = %v, want ErrBadSeal", err)
	}
}

func TestCrossTopicReplayRejected(t *testing.T) {
	bus := New()
	keyA, _ := TopicKey(appRoot(), "a")
	pA, _ := NewPublisher(bus, "a", keyA)
	// Subscriber on topic b using the key of topic b — but the bus
	// maliciously moves a's message into b's queue.
	keyB, _ := TopicKey(appRoot(), "b")
	sB, _ := NewSubscriber(bus, "b", keyB)
	if _, err := pA.Publish([]byte("for-a")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	var stolen Message
	// No subscriber on a: publish stored nothing. Re-publish directly.
	bus.mu.Unlock()
	sealed, _ := func() ([]byte, error) {
		box, _ := cryptbox.NewBox(keyA)
		return box.Seal([]byte("for-a"), []byte("topic|a"))
	}()
	stolen = Message{Topic: "b", Seq: 1, Sealed: sealed}
	bus.mu.Lock()
	for id := range bus.queues["b"] {
		bus.queues["b"][id] = append(bus.queues["b"][id], stolen)
	}
	bus.mu.Unlock()
	if _, err := sB.Receive(); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("cross-topic replay accepted: %v", err)
	}
}

func TestSequenceReplayRejected(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	if _, err := p.Publish([]byte("one")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	var copyMsg Message
	for _, q := range bus.queues["t"] {
		copyMsg = q[0]
	}
	bus.mu.Unlock()
	if _, err := s.Receive(); err != nil {
		t.Fatal(err)
	}
	// Bus replays the same message.
	bus.mu.Lock()
	for id := range bus.queues["t"] {
		bus.queues["t"][id] = append(bus.queues["t"][id], copyMsg)
	}
	bus.mu.Unlock()
	if _, err := s.Receive(); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("sequence replay accepted: %v", err)
	}
}

func TestTopicKeysIndependent(t *testing.T) {
	a, _ := TopicKey(appRoot(), "a")
	b, _ := TopicKey(appRoot(), "b")
	if a == b {
		t.Fatal("distinct topics derived the same key")
	}
}

func TestWrongKeyCannotRead(t *testing.T) {
	bus := New()
	keyA, _ := TopicKey(appRoot(), "a")
	p, _ := NewPublisher(bus, "a", keyA)
	wrong, _ := TopicKey(appRoot(), "other")
	s, err := NewSubscriber(bus, "a", wrong)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Receive(); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("wrong key read message: %v", err)
	}
}

func TestClosedBus(t *testing.T) {
	bus := New()
	p, _ := topicPair(t, bus, "t")
	bus.Close()
	if _, err := p.Publish([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish on closed bus: %v", err)
	}
	key, _ := TopicKey(appRoot(), "t")
	if _, err := NewSubscriber(bus, "t", key); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe on closed bus: %v", err)
	}
}

func TestBackPressure(t *testing.T) {
	bus := New()
	p, _ := topicPair(t, bus, "t")
	for i := 0; i < QueueLimit; i++ {
		if _, err := p.Publish([]byte("x")); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if _, err := p.Publish([]byte("overflow")); !errors.Is(err, ErrBackPres) {
		t.Fatalf("err = %v, want ErrBackPres", err)
	}
}

func TestDepthMonitoring(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	for i := 0; i < 5; i++ {
		if _, err := p.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := bus.Depth("t"); got != 5 {
		t.Fatalf("Depth = %d, want 5", got)
	}
	if _, err := s.Receive(); err != nil {
		t.Fatal(err)
	}
	if got := bus.Depth("t"); got != 0 {
		t.Fatalf("Depth after drain = %d", got)
	}
}

func TestLeaseAckConsumes(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	for i := 0; i < 3; i++ {
		if _, err := p.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pending, err := s.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 {
		t.Fatalf("leased %d, want 2", len(pending))
	}
	// Leased messages are not re-leased until nacked.
	again, err := s.Lease(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 {
		t.Fatalf("second lease got %d, want the 1 unleased message", len(again))
	}
	for _, m := range pending {
		if !s.Ack(m.Seq) {
			t.Fatalf("ack %d failed", m.Seq)
		}
	}
	if s.Ack(pending[0].Seq) {
		t.Fatal("double ack succeeded")
	}
	if got := bus.Depth("t"); got != 1 {
		t.Fatalf("Depth = %d after acking 2 of 3", got)
	}
}

func TestNackRedelivers(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	if _, err := p.Publish([]byte("critical-alert")); err != nil {
		t.Fatal(err)
	}
	pending, err := s.Lease(1)
	if err != nil || len(pending) != 1 {
		t.Fatalf("lease: %v, %d", err, len(pending))
	}
	// Consumer crashes before processing: nack.
	if !s.Nack(pending[0].Seq) {
		t.Fatal("nack failed")
	}
	if s.Nack(pending[0].Seq) {
		t.Fatal("double nack succeeded")
	}
	redelivered, err := s.Lease(1)
	if err != nil || len(redelivered) != 1 {
		t.Fatalf("redelivery: %v, %d", err, len(redelivered))
	}
	if string(redelivered[0].Body) != "critical-alert" {
		t.Fatalf("redelivered %q", redelivered[0].Body)
	}
}

func TestLeaseTamperDetected(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	if _, err := p.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	for id, q := range bus.queues["t"] {
		q[0].Sealed[3] ^= 1
		bus.queues["t"][id] = q
	}
	bus.mu.Unlock()
	if _, err := s.Lease(1); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("err = %v, want ErrBadSeal", err)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	bus := New()
	key, _ := TopicKey(appRoot(), "t")
	s, _ := NewSubscriber(bus, "t", key)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, _ := NewPublisher(bus, "t", key)
			for i := 0; i < 100; i++ {
				if _, err := p.Publish([]byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := s.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("received %d of 400", len(got))
	}
}
